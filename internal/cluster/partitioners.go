package cluster

import (
	"fmt"
	"math"

	"fedclust/internal/linalg"
	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// KMeans clusters n points (rows of x) into k clusters with Lloyd's
// algorithm and k-means++ seeding, returning the assignment and centroids.
// Used by IFCA-style initializations and as a comparison clusterer.
func KMeans(x *tensor.Tensor, k int, r *rng.Rng, maxIter int) (labels []int, centroids *tensor.Tensor) {
	if len(x.Shape) != 2 {
		panic("cluster: KMeans requires a rank-2 tensor")
	}
	n, dim := x.Shape[0], x.Shape[1]
	if k < 1 || k > n {
		panic(fmt.Sprintf("cluster: KMeans k=%d out of range [1,%d]", k, n))
	}
	centroids = tensor.New(k, dim)
	// k-means++ seeding.
	first := r.Intn(n)
	copy(centroids.Row(0), x.Row(first))
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = sqDist(x.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range minD {
			total += d
		}
		var pick int
		if total == 0 {
			pick = r.Intn(n)
		} else {
			target := r.Float64() * total
			acc := 0.0
			for i, d := range minD {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), x.Row(pick))
		for i := range minD {
			if d := sqDist(x.Row(i), centroids.Row(c)); d < minD[i] {
				minD[i] = d
			}
		}
	}
	labels = make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := sqDist(x.Row(i), centroids.Row(c)); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		centroids.Zero()
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			row := centroids.Row(c)
			for j, v := range x.Row(i) {
				row[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centroids.Row(c), x.Row(r.Intn(n)))
				continue
			}
			row := centroids.Row(c)
			inv := 1 / float64(counts[c])
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return labels, centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SpectralBipartition splits n items into two groups from a similarity
// matrix (higher = more similar) by the sign of the second eigenvector of
// the unnormalized graph Laplacian (the Fiedler vector). CFL (Sattler et
// al.) uses exactly this on the cosine-similarity matrix of client updates.
// Returns a 0/1 assignment. Degenerate inputs (n < 2) return all-zeros.
func SpectralBipartition(sim *tensor.Tensor) []int {
	if len(sim.Shape) != 2 || sim.Shape[0] != sim.Shape[1] {
		panic(fmt.Sprintf("cluster: SpectralBipartition requires a square matrix, got %v", sim.Shape))
	}
	n := sim.Shape[0]
	labels := make([]int, n)
	if n < 2 {
		return labels
	}
	// Laplacian L = D - W, with W = sim clipped to non-negative and
	// zero diagonal.
	lap := tensor.New(n, n)
	for i := 0; i < n; i++ {
		var deg float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			w := sim.At(i, j)
			if w < 0 {
				w = 0
			}
			lap.Set(-w, i, j)
			deg += w
		}
		lap.Set(deg, i, i)
	}
	vals, vecs := eigAscending(lap)
	_ = vals
	// Fiedler vector: eigenvector of the second-smallest eigenvalue.
	f := make([]float64, n)
	for i := 0; i < n; i++ {
		f[i] = vecs.At(i, 1)
	}
	for i, v := range f {
		if v >= 0 {
			labels[i] = 0
		} else {
			labels[i] = 1
		}
	}
	// Guard against a degenerate all-one-side split: fall back to a
	// median split of the Fiedler vector.
	if NumClusters(labels) == 1 {
		med := medianOf(f)
		for i, v := range f {
			if v > med {
				labels[i] = 1
			} else {
				labels[i] = 0
			}
		}
		if NumClusters(labels) == 1 {
			labels[0] = 1 - labels[0] // last resort: peel one element
		}
	}
	return labels
}

// eigAscending returns eigenvalues ascending with matching eigenvector
// columns, reusing the descending Jacobi solver.
func eigAscending(a *tensor.Tensor) ([]float64, *tensor.Tensor) {
	valsDesc, vDesc := linalg.SymEig(a)
	n := len(valsDesc)
	vals := make([]float64, n)
	v := tensor.New(n, n)
	for j := 0; j < n; j++ {
		src := n - 1 - j
		vals[j] = valsDesc[src]
		for i := 0; i < n; i++ {
			v.Set(vDesc.At(i, src), i, j)
		}
	}
	return vals, v
}

func medianOf(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	// insertion sort: n is small here
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

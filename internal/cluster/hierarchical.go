// Package cluster implements the clustering machinery of the reproduction:
// agglomerative hierarchical clustering with the standard linkages (the
// server-side algorithm of FedClust and PACFL), dendrogram cutting rules —
// fixed-k, distance threshold, largest gap, and the silhouette-parsimony
// cut that frees FedClust from a predefined cluster count — external
// cluster-quality metrics (ARI, NMI, purity), k-means, and the spectral
// bipartition used by CFL.
package cluster

import (
	"fmt"
	"math"

	"fedclust/internal/tensor"
)

// Linkage selects how inter-cluster distance is derived from point
// distances during agglomeration.
type Linkage int

const (
	// Single linkage: minimum pairwise distance.
	Single Linkage = iota
	// Complete linkage: maximum pairwise distance.
	Complete
	// Average linkage (UPGMA): mean pairwise distance. This is the
	// default linkage for FedClust's one-shot clustering.
	Average
	// Ward linkage: minimizes within-cluster variance increase.
	Ward
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	case Ward:
		return "ward"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step. Cluster ids 0..n-1 are the leaves;
// merge i creates cluster id n+i from A and B at the given distance.
type Merge struct {
	A, B     int
	Distance float64
	Size     int // number of leaves in the new cluster
}

// Dendrogram is the full agglomeration history over n leaves.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Agglomerate runs agglomerative hierarchical clustering on a symmetric
// n×n proximity matrix using the Lance-Williams update for the chosen
// linkage. The input matrix is not modified. It panics on non-square
// input. A 0- or 1-point input yields an empty merge list.
func Agglomerate(dist *tensor.Tensor, linkage Linkage) *Dendrogram {
	if len(dist.Shape) != 2 || dist.Shape[0] != dist.Shape[1] {
		panic(fmt.Sprintf("cluster: Agglomerate requires a square matrix, got %v", dist.Shape))
	}
	n := dist.Shape[0]
	den := &Dendrogram{N: n}
	if n < 2 {
		return den
	}
	// Working distance matrix, active flags, cluster sizes, and the
	// current cluster id held at each slot.
	d := dist.Clone()
	active := make([]bool, n)
	size := make([]int, n)
	id := make([]int, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		id[i] = i
	}
	nextID := n
	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if v := d.At(i, j); v < best {
					best, bi, bj = v, i, j
				}
			}
		}
		// Merge slot bj into slot bi; bi now holds the new cluster.
		ni, nj := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			dik, djk := d.At(bi, k), d.At(bj, k)
			var nd float64
			switch linkage {
			case Single:
				nd = math.Min(dik, djk)
			case Complete:
				nd = math.Max(dik, djk)
			case Average:
				nd = (ni*dik + nj*djk) / (ni + nj)
			case Ward:
				nk := float64(size[k])
				tot := ni + nj + nk
				nd = math.Sqrt(((ni+nk)*dik*dik + (nj+nk)*djk*djk - nk*best*best) / tot)
			default:
				panic(fmt.Sprintf("cluster: unknown linkage %d", int(linkage)))
			}
			d.Set(nd, bi, k)
			d.Set(nd, k, bi)
		}
		den.Merges = append(den.Merges, Merge{
			A: id[bi], B: id[bj], Distance: best, Size: size[bi] + size[bj],
		})
		size[bi] += size[bj]
		id[bi] = nextID
		nextID++
		active[bj] = false
	}
	return den
}

// CutK cuts the dendrogram into exactly k clusters (1 <= k <= n) and
// returns a length-n assignment with labels 0..k-1 (renumbered by first
// appearance).
func (den *Dendrogram) CutK(k int) []int {
	if k < 1 || k > den.N {
		panic(fmt.Sprintf("cluster: CutK k=%d out of range [1,%d]", k, den.N))
	}
	// Apply the first n-k merges.
	return den.assignAfter(den.N - k)
}

// CutThreshold cuts the dendrogram at a distance threshold: all merges with
// Distance <= t are applied. This is how FedClust clusters without a
// predefined cluster count.
func (den *Dendrogram) CutThreshold(t float64) []int {
	applied := 0
	for _, m := range den.Merges {
		if m.Distance <= t {
			applied++
		} else {
			break
		}
	}
	return den.assignAfter(applied)
}

// CutLargestGap finds the largest jump in consecutive merge distances and
// cuts just before it — a parameter-free heuristic for the natural number
// of clusters. With fewer than 2 merges it returns the finest/coarsest
// valid cut. minK/maxK bound the admissible cluster counts (pass 1 and n
// to leave unbounded).
func (den *Dendrogram) CutLargestGap(minK, maxK int) []int {
	n := den.N
	if minK < 1 {
		minK = 1
	}
	if maxK > n {
		maxK = n
	}
	if minK > maxK {
		panic(fmt.Sprintf("cluster: CutLargestGap minK=%d > maxK=%d", minK, maxK))
	}
	if len(den.Merges) == 0 {
		return den.assignAfter(0)
	}
	// Cutting after merge i yields n-i clusters. Admissible i range:
	// k in [minK,maxK] ⇒ i in [n-maxK, n-minK].
	loI, hiI := n-maxK, n-minK
	// The "gap" before merge i is Merges[i].Distance - Merges[i-1].Distance;
	// choosing to stop before merge i means applying i merges.
	bestI, bestGap := hiI, -1.0
	for i := loI; i <= hiI; i++ {
		if i <= 0 || i >= len(den.Merges) {
			// stopping before merge 0 (no merges) has no defined gap; treat
			// the first merge distance itself as its gap so singleton-heavy
			// cuts are only chosen when the first merge is already huge.
			var gap float64
			if i == 0 {
				gap = den.Merges[0].Distance
			} else {
				continue
			}
			if gap > bestGap {
				bestGap, bestI = gap, i
			}
			continue
		}
		gap := den.Merges[i].Distance - den.Merges[i-1].Distance
		if gap > bestGap {
			bestGap, bestI = gap, i
		}
	}
	return den.assignAfter(bestI)
}

// assignAfter applies the first `applied` merges and returns leaf labels
// renumbered to 0..k-1 in order of first appearance.
func (den *Dendrogram) assignAfter(applied int) []int {
	if applied < 0 {
		applied = 0
	}
	if applied > len(den.Merges) {
		applied = len(den.Merges)
	}
	parent := make(map[int]int, den.N+applied)
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for i := 0; i < applied; i++ {
		m := den.Merges[i]
		newID := den.N + i
		parent[find(m.A)] = newID
		parent[find(m.B)] = newID
	}
	labels := make([]int, den.N)
	next := 0
	seen := make(map[int]int)
	for i := 0; i < den.N; i++ {
		r := find(i)
		l, ok := seen[r]
		if !ok {
			l = next
			seen[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}

// MergeDistances returns the sequence of merge distances, useful for
// inspecting monotonicity and choosing thresholds.
func (den *Dendrogram) MergeDistances() []float64 {
	out := make([]float64, len(den.Merges))
	for i, m := range den.Merges {
		out[i] = m.Distance
	}
	return out
}

// NumClusters returns the number of distinct labels in an assignment.
func NumClusters(labels []int) int {
	seen := make(map[int]bool)
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

// Members returns, for each cluster label, the sorted member indices.
func Members(labels []int) map[int][]int {
	out := make(map[int][]int)
	for i, l := range labels {
		out[l] = append(out[l], i)
	}
	return out
}

package cluster

import (
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

func blobMatrix(r *rng.Rng, perBlob int, centers [][]float64, noise float64) (*tensor.Tensor, []int) {
	dim := len(centers[0])
	n := perBlob * len(centers)
	x := tensor.New(n, dim)
	truth := make([]int, n)
	for c, center := range centers {
		for i := 0; i < perBlob; i++ {
			row := x.Row(c*perBlob + i)
			truth[c*perBlob+i] = c
			for j := 0; j < dim; j++ {
				row[j] = center[j] + noise*r.NormFloat64()
			}
		}
	}
	return x, truth
}

func TestKMeansRecoverseparatedBlobs(t *testing.T) {
	r := rng.New(1)
	x, truth := blobMatrix(r, 10, [][]float64{{0, 0}, {50, 0}, {0, 50}}, 0.5)
	labels, centroids := KMeans(x, 3, r, 50)
	if ari := ARI(labels, truth); ari != 1 {
		t.Fatalf("k-means ARI = %v on separated blobs", ari)
	}
	if centroids.Shape[0] != 3 || centroids.Shape[1] != 2 {
		t.Fatalf("centroid shape = %v", centroids.Shape)
	}
}

func TestKMeansK1(t *testing.T) {
	r := rng.New(2)
	x, _ := blobMatrix(r, 5, [][]float64{{0, 0}, {10, 10}}, 0.1)
	labels, centroids := KMeans(x, 1, r, 20)
	for _, l := range labels {
		if l != 0 {
			t.Fatal("k=1 must assign everything to cluster 0")
		}
	}
	// Centroid should be near the grand mean (5,5).
	if c := centroids.Row(0); c[0] < 4 || c[0] > 6 || c[1] < 4 || c[1] > 6 {
		t.Fatalf("k=1 centroid = %v", c)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	r := rng.New(3)
	x, _ := blobMatrix(r, 1, [][]float64{{0}, {10}, {20}, {30}}, 0)
	labels, _ := KMeans(x, 4, r, 20)
	if NumClusters(labels) != 4 {
		t.Fatalf("k=n should give n clusters, got %d", NumClusters(labels))
	}
}

func TestKMeansPanicsOnBadK(t *testing.T) {
	r := rng.New(4)
	x := tensor.New(3, 2)
	for _, k := range []int{0, 4} {
		func(k int) {
			defer func() {
				if recover() == nil {
					t.Fatalf("KMeans k=%d did not panic", k)
				}
			}()
			KMeans(x, k, r, 10)
		}(k)
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	x, _ := blobMatrix(rng.New(5), 8, [][]float64{{0, 0}, {20, 20}}, 1)
	l1, _ := KMeans(x, 2, rng.New(42), 30)
	l2, _ := KMeans(x, 2, rng.New(42), 30)
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("k-means not deterministic under fixed seed")
		}
	}
}

func TestSpectralBipartitionTwoGroups(t *testing.T) {
	// Similarity: high within groups {0,1,2} and {3,4,5}, low across.
	n := 6
	sim := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			same := (i < 3) == (j < 3)
			if same {
				sim.Set(1.0, i, j)
			} else {
				sim.Set(0.01, i, j)
			}
		}
	}
	labels := SpectralBipartition(sim)
	truth := []int{0, 0, 0, 1, 1, 1}
	if ari := ARI(labels, truth); ari != 1 {
		t.Fatalf("spectral bipartition ARI = %v (labels %v)", ari, labels)
	}
}

func TestSpectralBipartitionNegativeSimilarities(t *testing.T) {
	// CFL feeds cosine similarities which can be negative across clusters.
	n := 8
	sim := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			same := (i%2 == 0) == (j%2 == 0)
			if same {
				sim.Set(0.9, i, j)
			} else {
				sim.Set(-0.8, i, j)
			}
		}
	}
	labels := SpectralBipartition(sim)
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i % 2
	}
	if ari := ARI(labels, truth); ari != 1 {
		t.Fatalf("bipartition with negative sims ARI = %v", ari)
	}
}

func TestSpectralBipartitionAlwaysTwoSided(t *testing.T) {
	// Fully uniform similarity has no structure; the bipartition must
	// still return two non-empty sides (CFL requires a proper split).
	n := 5
	sim := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				sim.Set(1, i, j)
			}
		}
	}
	labels := SpectralBipartition(sim)
	if NumClusters(labels) != 2 {
		t.Fatalf("degenerate bipartition returned %d side(s)", NumClusters(labels))
	}
}

func TestSpectralBipartitionTiny(t *testing.T) {
	if got := SpectralBipartition(tensor.New(1, 1)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("n=1 bipartition = %v", got)
	}
}

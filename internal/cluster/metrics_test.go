package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"fedclust/internal/rng"
)

func TestARIIdenticalPartitions(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if ARI(a, a) != 1 {
		t.Fatalf("ARI(a,a) = %v", ARI(a, a))
	}
	// Label permutation must not matter.
	b := []int{5, 5, 3, 3, 9, 9}
	if ARI(a, b) != 1 {
		t.Fatalf("ARI under relabeling = %v", ARI(a, b))
	}
}

func TestARIIndependentPartitionsNearZero(t *testing.T) {
	r := rng.New(1)
	n := 2000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = r.Intn(4)
		b[i] = r.Intn(4)
	}
	if v := ARI(a, b); math.Abs(v) > 0.02 {
		t.Fatalf("ARI of independent labelings = %v, want ~0", v)
	}
}

func TestARIPartialAgreement(t *testing.T) {
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 0, 1, 1, 1, 1}
	v := ARI(a, b)
	if v <= 0 || v >= 1 {
		t.Fatalf("partial agreement ARI = %v, want in (0,1)", v)
	}
}

func TestARISymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(3)
			b[i] = r.Intn(4)
		}
		return math.Abs(ARI(a, b)-ARI(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestARITrivialPartitions(t *testing.T) {
	all0 := []int{0, 0, 0, 0}
	if ARI(all0, all0) != 1 {
		t.Fatal("single-cluster vs itself should be 1")
	}
	singletons := []int{0, 1, 2, 3}
	if ARI(singletons, singletons) != 1 {
		t.Fatal("all-singletons vs itself should be 1")
	}
}

func TestARILengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	ARI([]int{0}, []int{0, 1})
}

func TestNMIIdenticalAndIndependent(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if v := NMI(a, a); math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI(a,a) = %v", v)
	}
	r := rng.New(2)
	n := 3000
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = r.Intn(3)
		y[i] = r.Intn(3)
	}
	if v := NMI(x, y); v > 0.01 {
		t.Fatalf("NMI of independent labelings = %v, want ~0", v)
	}
}

func TestNMIRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(40)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(5)
			b[i] = r.Intn(2)
		}
		v := NMI(a, b)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNMISingleClusterEdge(t *testing.T) {
	a := []int{0, 0, 0}
	b := []int{0, 1, 2}
	if v := NMI(a, b); v != 0 {
		t.Fatalf("NMI single-cluster vs singletons = %v, want 0", v)
	}
	if v := NMI(a, a); v != 1 {
		t.Fatalf("NMI single-cluster vs itself = %v, want 1", v)
	}
}

func TestPurity(t *testing.T) {
	pred := []int{0, 0, 0, 1, 1, 1}
	truth := []int{0, 0, 1, 1, 1, 1}
	// cluster 0: majority truth 0 (2/3); cluster 1: majority 1 (3/3) → 5/6.
	if v := Purity(pred, truth); math.Abs(v-5.0/6.0) > 1e-12 {
		t.Fatalf("Purity = %v, want 5/6", v)
	}
	if Purity(truth, truth) != 1 {
		t.Fatal("Purity of perfect clustering should be 1")
	}
	// All-singleton prediction is trivially pure.
	if Purity([]int{0, 1, 2, 3}, []int{0, 0, 1, 1}) != 1 {
		t.Fatal("singleton prediction should be pure")
	}
}

func TestPurityEmpty(t *testing.T) {
	if Purity(nil, nil) != 1 {
		t.Fatal("empty purity should be 1")
	}
}

func TestNumClusters(t *testing.T) {
	if NumClusters([]int{3, 3, 7, 1}) != 3 {
		t.Fatal("NumClusters wrong")
	}
	if NumClusters(nil) != 0 {
		t.Fatal("NumClusters(nil) should be 0")
	}
}

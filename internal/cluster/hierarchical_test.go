package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"fedclust/internal/linalg"
	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// twoBlobs builds n points in two well-separated 1-D blobs and returns the
// distance matrix plus ground-truth labels.
func twoBlobs(n int, sep float64, r *rng.Rng) (*tensor.Tensor, []int) {
	vecs := make([][]float64, n)
	truth := make([]int, n)
	for i := range vecs {
		g := 0
		if i >= n/2 {
			g = 1
		}
		truth[i] = g
		vecs[i] = []float64{float64(g)*sep + 0.1*r.NormFloat64()}
	}
	return linalg.PairwiseDistances(linalg.Euclidean, vecs), truth
}

func TestAgglomerateTwoBlobsAllLinkages(t *testing.T) {
	r := rng.New(1)
	d, truth := twoBlobs(12, 50, r)
	for _, l := range []Linkage{Single, Complete, Average, Ward} {
		den := Agglomerate(d, l)
		if len(den.Merges) != 11 {
			t.Fatalf("%v: %d merges, want 11", l, len(den.Merges))
		}
		labels := den.CutK(2)
		if ari := ARI(labels, truth); ari != 1 {
			t.Fatalf("%v: ARI = %v, want 1 on well-separated blobs", l, ari)
		}
	}
}

func TestCutKExactClusterCounts(t *testing.T) {
	r := rng.New(2)
	d, _ := twoBlobs(10, 10, r)
	den := Agglomerate(d, Average)
	for k := 1; k <= 10; k++ {
		labels := den.CutK(k)
		if got := NumClusters(labels); got != k {
			t.Fatalf("CutK(%d) produced %d clusters", k, got)
		}
	}
}

func TestCutKPanicsOutOfRange(t *testing.T) {
	r := rng.New(3)
	d, _ := twoBlobs(6, 10, r)
	den := Agglomerate(d, Average)
	for _, k := range []int{0, 7, -1} {
		func(k int) {
			defer func() {
				if recover() == nil {
					t.Fatalf("CutK(%d) did not panic", k)
				}
			}()
			den.CutK(k)
		}(k)
	}
}

func TestMergeDistancesMonotoneForReducibleLinkages(t *testing.T) {
	// Complete, average, and Ward are reducible: merge distances must be
	// non-decreasing. (Single linkage is too, with Lance-Williams.)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(12)
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		}
		d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
		for _, l := range []Linkage{Single, Complete, Average, Ward} {
			den := Agglomerate(d, l)
			md := den.MergeDistances()
			for i := 1; i < len(md); i++ {
				if md[i] < md[i-1]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCutThreshold(t *testing.T) {
	// Distances: {0,1} at 1, {2,3} at 1, the two pairs 100 apart.
	vecs := [][]float64{{0}, {1}, {100}, {101}}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	den := Agglomerate(d, Average)
	labels := den.CutThreshold(5)
	if NumClusters(labels) != 2 {
		t.Fatalf("threshold 5 should give 2 clusters, got %d (%v)", NumClusters(labels), labels)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Fatalf("wrong grouping: %v", labels)
	}
	if got := NumClusters(den.CutThreshold(0.5)); got != 4 {
		t.Fatalf("threshold 0.5 should keep singletons, got %d", got)
	}
	if got := NumClusters(den.CutThreshold(1e6)); got != 1 {
		t.Fatalf("huge threshold should merge all, got %d", got)
	}
}

func TestCutLargestGapFindsNaturalClusters(t *testing.T) {
	// Three tight triples far apart: the gap cut should find k=3 without
	// being told.
	r := rng.New(4)
	var vecs [][]float64
	var truth []int
	for g := 0; g < 3; g++ {
		for i := 0; i < 3; i++ {
			vecs = append(vecs, []float64{float64(g) * 100, float64(g) * -50})
			truth = append(truth, g)
		}
	}
	for i := range vecs {
		vecs[i][0] += 0.5 * r.NormFloat64()
		vecs[i][1] += 0.5 * r.NormFloat64()
	}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	den := Agglomerate(d, Average)
	labels := den.CutLargestGap(1, len(vecs))
	if NumClusters(labels) != 3 {
		t.Fatalf("gap cut found %d clusters, want 3 (%v)", NumClusters(labels), labels)
	}
	if ARI(labels, truth) != 1 {
		t.Fatalf("gap cut ARI = %v", ARI(labels, truth))
	}
}

func TestCutLargestGapRespectsBounds(t *testing.T) {
	r := rng.New(5)
	d, _ := twoBlobs(10, 40, r)
	den := Agglomerate(d, Average)
	labels := den.CutLargestGap(3, 5)
	k := NumClusters(labels)
	if k < 3 || k > 5 {
		t.Fatalf("bounded gap cut gave k=%d outside [3,5]", k)
	}
}

func TestAgglomerateDegenerate(t *testing.T) {
	if den := Agglomerate(tensor.New(0, 0), Average); len(den.Merges) != 0 {
		t.Fatal("empty input should have no merges")
	}
	den := Agglomerate(tensor.New(1, 1), Average)
	if len(den.Merges) != 0 {
		t.Fatal("single point should have no merges")
	}
	if labels := den.CutK(1); len(labels) != 1 || labels[0] != 0 {
		t.Fatalf("single point labels = %v", labels)
	}
}

func TestAgglomerateTiedDistances(t *testing.T) {
	// Four identical points: all distances zero; must not crash and a
	// k=1 cut groups everything.
	vecs := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	den := Agglomerate(d, Ward)
	if NumClusters(den.CutK(1)) != 1 {
		t.Fatal("identical points should merge into one cluster")
	}
	if NumClusters(den.CutThreshold(0)) != 1 {
		t.Fatal("threshold 0 should still merge zero-distance points")
	}
}

func TestDendrogramLabelsAreCanonical(t *testing.T) {
	// Labels must be 0..k-1 renumbered by first appearance.
	r := rng.New(6)
	d, _ := twoBlobs(8, 30, r)
	labels := Agglomerate(d, Complete).CutK(2)
	if labels[0] != 0 {
		t.Fatalf("first label must be 0, got %v", labels)
	}
	maxL := 0
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	if maxL != 1 {
		t.Fatalf("labels not compact: %v", labels)
	}
}

func TestMembers(t *testing.T) {
	m := Members([]int{0, 1, 0, 2, 1})
	if len(m) != 3 || len(m[0]) != 2 || m[0][0] != 0 || m[0][1] != 2 {
		t.Fatalf("Members = %v", m)
	}
}

func TestLinkageString(t *testing.T) {
	if Single.String() != "single" || Ward.String() != "ward" ||
		Average.String() != "average" || Complete.String() != "complete" {
		t.Fatal("Linkage.String wrong")
	}
}

func TestWardPrefersCompactClusters(t *testing.T) {
	// Two elongated but separated strips; Ward with k=2 must split on the
	// big gap, not inside a strip.
	var vecs [][]float64
	var truth []int
	for i := 0; i < 6; i++ {
		vecs = append(vecs, []float64{float64(i) * 1.0, 0})
		truth = append(truth, 0)
		vecs = append(vecs, []float64{float64(i) * 1.0, 100})
		truth = append(truth, 1)
	}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	labels := Agglomerate(d, Ward).CutK(2)
	if ARI(labels, truth) != 1 {
		t.Fatalf("Ward split ARI = %v", ARI(labels, truth))
	}
}

func TestSingleLinkageChains(t *testing.T) {
	// A chain 0-1-2-...-7 with unit gaps plus one far point: single
	// linkage at k=2 isolates the far point.
	var vecs [][]float64
	for i := 0; i < 8; i++ {
		vecs = append(vecs, []float64{float64(i)})
	}
	vecs = append(vecs, []float64{1000})
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	labels := Agglomerate(d, Single).CutK(2)
	for i := 0; i < 8; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("chain broken by single linkage: %v", labels)
		}
	}
	if labels[8] == labels[0] {
		t.Fatalf("far point not isolated: %v", labels)
	}
}

func TestAgglomerateMatchesBruteForceAverage(t *testing.T) {
	// Cross-check the Lance-Williams average linkage against a brute-force
	// recomputation from the original distance matrix.
	r := rng.New(7)
	n := 9
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = []float64{r.NormFloat64(), r.NormFloat64()}
	}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	den := Agglomerate(d, Average)

	// Brute force: maintain explicit member lists.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	avgDist := func(a, b []int) float64 {
		var s float64
		for _, i := range a {
			for _, j := range b {
				s += d.At(i, j)
			}
		}
		return s / float64(len(a)*len(b))
	}
	for step := 0; step < n-1; step++ {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if v := avgDist(clusters[i], clusters[j]); v < best {
					best, bi, bj = v, i, j
				}
			}
		}
		if math.Abs(den.Merges[step].Distance-best) > 1e-9 {
			t.Fatalf("merge %d: Lance-Williams distance %v != brute force %v",
				step, den.Merges[step].Distance, best)
		}
		merged := append(append([]int{}, clusters[bi]...), clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		clusters[bi] = merged
	}
}

func BenchmarkAgglomerate50(b *testing.B) {
	r := rng.New(1)
	vecs := make([][]float64, 50)
	for i := range vecs {
		vecs[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Agglomerate(d, Average)
	}
}

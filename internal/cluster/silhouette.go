package cluster

import (
	"fmt"
	"math"

	"fedclust/internal/tensor"
)

// Silhouette computes the mean silhouette coefficient of a labeling
// against a precomputed distance matrix. For each point, a is the mean
// distance to its own cluster (excluding itself) and b the smallest mean
// distance to any other cluster; the coefficient is (b-a)/max(a,b).
// Singleton clusters contribute 0 (the standard convention). The result
// lies in [-1, 1]; higher means tighter, better-separated clusters.
func Silhouette(dist *tensor.Tensor, labels []int) float64 {
	n := len(labels)
	if dist.Shape[0] != n || dist.Shape[1] != n {
		panic(fmt.Sprintf("cluster: Silhouette labels/matrix mismatch: %d vs %v", n, dist.Shape))
	}
	if n == 0 {
		return 0
	}
	members := Members(labels)
	if len(members) < 2 {
		return 0 // silhouette undefined for a single cluster
	}
	var total float64
	for i := 0; i < n; i++ {
		own := members[labels[i]]
		if len(own) == 1 {
			continue // singleton: contributes 0
		}
		var a float64
		for _, j := range own {
			if j != i {
				a += dist.At(i, j)
			}
		}
		a /= float64(len(own) - 1)
		b := math.Inf(1)
		for l, m := range members {
			if l == labels[i] {
				continue
			}
			var d float64
			for _, j := range m {
				d += dist.At(i, j)
			}
			d /= float64(len(m))
			if d < b {
				b = d
			}
		}
		denom := math.Max(a, b)
		if denom > 0 {
			total += (b - a) / denom
		}
	}
	return total / float64(n)
}

// SilhouetteTolerance is the default parsimony tolerance for
// CutBestSilhouette: among cluster counts whose silhouette is within this
// much of the maximum, the smallest count wins. This is the
// one-standard-error rule of model selection adapted to silhouettes —
// finer cuts must earn their keep, since each extra cluster halves the
// data its federated model trains on.
const SilhouetteTolerance = 0.05

// CutBestSilhouette cuts the dendrogram at a cluster count in
// [minK, maxK] chosen by silhouette over the given distance matrix: the
// smallest k whose mean silhouette is within tol of the best. This is the
// selector FedClust uses when no cluster count is specified: it needs
// neither a predefined K (IFCA's weakness) nor a distance threshold.
// Pass tol = 0 for the strict argmax. minK is clamped to 2 (silhouette is
// undefined below that); if maxK < 2 the trivial one-cluster labeling is
// returned.
func (den *Dendrogram) CutBestSilhouette(dist *tensor.Tensor, minK, maxK int, tol float64) []int {
	if tol < 0 {
		panic(fmt.Sprintf("cluster: negative silhouette tolerance %v", tol))
	}
	if minK < 2 {
		minK = 2
	}
	if maxK > den.N {
		maxK = den.N
	}
	if maxK < minK {
		return den.CutK(1)
	}
	scores := make([]float64, 0, maxK-minK+1)
	best := math.Inf(-1)
	for k := minK; k <= maxK; k++ {
		s := Silhouette(dist, den.CutK(k))
		scores = append(scores, s)
		if s > best {
			best = s
		}
	}
	for i, s := range scores {
		if s >= best-tol {
			return den.CutK(minK + i)
		}
	}
	return den.CutK(minK) // unreachable; defensive
}

package cluster

import (
	"fmt"
	"math"
)

// contingency builds the contingency table between two labelings plus the
// marginal counts.
func contingency(a, b []int) (table map[[2]int]int, rowSum, colSum map[int]int, n int) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("cluster: labelings differ in length: %d vs %d", len(a), len(b)))
	}
	table = make(map[[2]int]int)
	rowSum = make(map[int]int)
	colSum = make(map[int]int)
	for i := range a {
		table[[2]int{a[i], b[i]}]++
		rowSum[a[i]]++
		colSum[b[i]]++
	}
	return table, rowSum, colSum, len(a)
}

// comb2 returns C(n, 2) as a float.
func comb2(n int) float64 { return float64(n) * float64(n-1) / 2 }

// ARI computes the Adjusted Rand Index between two labelings: 1 for
// identical partitions, ~0 for independent ones (can be negative).
func ARI(a, b []int) float64 {
	table, rowSum, colSum, n := contingency(a, b)
	if n < 2 {
		return 1
	}
	var sumComb, sumRow, sumCol float64
	for _, c := range table {
		sumComb += comb2(c)
	}
	for _, c := range rowSum {
		sumRow += comb2(c)
	}
	for _, c := range colSum {
		sumCol += comb2(c)
	}
	total := comb2(n)
	expected := sumRow * sumCol / total
	maxIdx := (sumRow + sumCol) / 2
	if maxIdx == expected {
		// Both partitions are trivial (all-singletons or single-cluster);
		// they agree exactly iff the index equals the max.
		return 1
	}
	return (sumComb - expected) / (maxIdx - expected)
}

// NMI computes the Normalized Mutual Information between two labelings
// (arithmetic-mean normalization): 1 for identical partitions, 0 for
// independent ones. If either partition has a single cluster, NMI is 0
// unless both are identical single-cluster partitions (then 1).
func NMI(a, b []int) float64 {
	table, rowSum, colSum, n := contingency(a, b)
	if n == 0 {
		return 1
	}
	fn := float64(n)
	var mi, ha, hb float64
	for key, c := range table {
		pij := float64(c) / fn
		pi := float64(rowSum[key[0]]) / fn
		pj := float64(colSum[key[1]]) / fn
		if pij > 0 {
			mi += pij * math.Log(pij/(pi*pj))
		}
	}
	for _, c := range rowSum {
		p := float64(c) / fn
		ha -= p * math.Log(p)
	}
	for _, c := range colSum {
		p := float64(c) / fn
		hb -= p * math.Log(p)
	}
	if ha == 0 && hb == 0 {
		return 1 // both single-cluster: identical
	}
	denom := (ha + hb) / 2
	if denom == 0 {
		return 0
	}
	v := mi / denom
	if v < 0 {
		v = 0 // numerical noise
	}
	if v > 1 {
		v = 1
	}
	return v
}

// Purity computes clustering purity of predicted labels against truth:
// the fraction of points assigned to the majority true class of their
// predicted cluster. In [0,1]; 1 when every cluster is class-pure.
func Purity(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("cluster: labelings differ in length: %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return 1
	}
	counts := make(map[int]map[int]int)
	for i := range pred {
		m, ok := counts[pred[i]]
		if !ok {
			m = make(map[int]int)
			counts[pred[i]] = m
		}
		m[truth[i]]++
	}
	var correct int
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred))
}

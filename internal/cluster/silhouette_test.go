package cluster

import (
	"math"
	"testing"

	"fedclust/internal/linalg"
	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

func TestSilhouetteWellSeparated(t *testing.T) {
	// Two tight, far-apart pairs: silhouette of the true labeling ≈ 1.
	vecs := [][]float64{{0}, {0.1}, {100}, {100.1}}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	s := Silhouette(d, []int{0, 0, 1, 1})
	if s < 0.99 {
		t.Fatalf("silhouette = %v, want ≈1", s)
	}
	// A wrong labeling must score strictly lower.
	bad := Silhouette(d, []int{0, 1, 0, 1})
	if bad >= s {
		t.Fatalf("bad labeling silhouette %v >= good %v", bad, s)
	}
}

func TestSilhouetteSingleClusterZero(t *testing.T) {
	vecs := [][]float64{{0}, {1}, {2}}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	if s := Silhouette(d, []int{0, 0, 0}); s != 0 {
		t.Fatalf("single-cluster silhouette = %v, want 0", s)
	}
}

func TestSilhouetteSingletonsContributeZero(t *testing.T) {
	vecs := [][]float64{{0}, {1}, {100}}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	// {0,1} together, {100} singleton: only the pair contributes.
	s := Silhouette(d, []int{0, 0, 1})
	if s <= 0.5 {
		t.Fatalf("silhouette with singleton = %v", s)
	}
}

func TestSilhouetteMismatchedSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch did not panic")
		}
	}()
	Silhouette(tensor.New(2, 2), []int{0, 0, 1})
}

func TestCutBestSilhouetteFindsTrueK(t *testing.T) {
	// Three clean blobs: the silhouette cut must pick k=3 from the range
	// [2, 6] without being told.
	r := rng.New(1)
	var vecs [][]float64
	var truth []int
	for g := 0; g < 3; g++ {
		for i := 0; i < 4; i++ {
			vecs = append(vecs, []float64{float64(g)*50 + r.NormFloat64(), float64(g)*-30 + r.NormFloat64()})
			truth = append(truth, g)
		}
	}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	den := Agglomerate(d, Average)
	labels := den.CutBestSilhouette(d, 2, 6, SilhouetteTolerance)
	if NumClusters(labels) != 3 {
		t.Fatalf("silhouette cut k = %d, want 3", NumClusters(labels))
	}
	if ARI(labels, truth) != 1 {
		t.Fatalf("silhouette cut ARI = %v", ARI(labels, truth))
	}
}

func TestCutBestSilhouetteDegenerateRange(t *testing.T) {
	vecs := [][]float64{{0}, {1}}
	d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
	den := Agglomerate(d, Average)
	// maxK < 2 → trivial single cluster.
	labels := den.CutBestSilhouette(d, 2, 1, 0)
	if NumClusters(labels) != 1 {
		t.Fatalf("degenerate range should give 1 cluster, got %d", NumClusters(labels))
	}
}

func TestSilhouetteRange(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(10)
		vecs := make([][]float64, n)
		labels := make([]int, n)
		for i := range vecs {
			vecs[i] = []float64{r.NormFloat64(), r.NormFloat64()}
			labels[i] = r.Intn(3)
		}
		d := linalg.PairwiseDistances(linalg.Euclidean, vecs)
		s := Silhouette(d, labels)
		if math.IsNaN(s) || s < -1 || s > 1 {
			t.Fatalf("silhouette out of range: %v", s)
		}
	}
}

package scenario_test

// Property-style suite for the scenario layer and its interaction with
// participation sampling: outcome invariants hold for all drawn
// configurations, reported stays a subset of invited, communication
// accounting matches the sampled set sizes exactly, and identical seeds
// give identical traces across two independently built environments.

import (
	"testing"
	"testing/quick"

	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/scenario"
)

// The model must satisfy the fl-side contract.
var _ fl.RoundScenario = (*scenario.Model)(nil)

// testEnv builds a small two-group environment with the given
// participation settings. Each call constructs everything from scratch —
// the cross-env determinism tests rely on that.
func testEnv(seed uint64, p fl.Participation) *fl.Env {
	cfg := data.SynthConfig{
		Name: "scen4", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: 30, TestPerClass: 12,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
	}
	train, test := data.Generate(cfg)
	clients, _ := fl.BuildGroupClients(train, test,
		[][]int{{0, 1}, {2, 3}}, []int{4, 4}, rng.New(seed))
	return &fl.Env{
		Clients:       clients,
		Factory:       func(fr *rng.Rng) *nn.Sequential { return nn.MLP(fr, 64, 12, 4) },
		Rounds:        4,
		Local:         fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1},
		Seed:          seed,
		Workers:       2,
		Participation: p,
	}
}

// TestOutcomeInvariants: for arbitrary configurations, every (client,
// round) outcome respects the fl.RoundScenario contract — done in
// [0, epochs], done == epochs ⇔ on time, done == 0 ⇒ late or offline.
func TestOutcomeInvariants(t *testing.T) {
	f := func(seed uint64, fracRaw, dropRaw, deadRaw, jitRaw uint8) bool {
		cfg := scenario.Config{
			StragglerFrac: float64(fracRaw%101) / 100,
			DropoutRate:   float64(dropRaw%90) / 100,
			SlowdownMax:   1 + float64(deadRaw%8),
			Deadline:      0.25 + float64(deadRaw%8)/4,
			Jitter:        float64(jitRaw%4) / 10,
		}
		m := scenario.New(cfg, seed, 7)
		for c := 0; c < 7; c++ {
			for r := 0; r < 6; r++ {
				done, lag := m.Outcome(c, r, 3)
				if done < 0 || done > 3 {
					return false
				}
				if (done == 3) != (lag == 0) {
					return false
				}
				if done == 0 && lag == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestOutcomePureAndRepeatable: two models built from the same
// (Config, seed, n) agree on every outcome, profiles included, and
// repeated queries (any order) return the same answers.
func TestOutcomePureAndRepeatable(t *testing.T) {
	cfg := scenario.Config{StragglerFrac: 0.4, DropoutRate: 0.2, Jitter: 0.2}
	a := scenario.New(cfg, 99, 12)
	b := scenario.New(cfg, 99, 12)
	for i, p := range a.Profiles() {
		if b.Profiles()[i] != p {
			t.Fatalf("profiles diverge at client %d: %+v vs %+v", i, p, b.Profiles()[i])
		}
	}
	for r := 5; r >= 0; r-- { // query b in reverse order
		for c := 0; c < 12; c++ {
			ad, al := a.Outcome(c, r, 2)
			bd, bl := b.Outcome(11-c, 5-r, 2)
			ad2, al2 := a.Outcome(c, r, 2)
			if ad != ad2 || al != al2 {
				t.Fatalf("outcome of (%d,%d) changed on re-query", c, r)
			}
			cd, cl := b.Outcome(c, r, 2)
			if ad != cd || al != cl {
				t.Fatalf("models diverge at (%d,%d): (%d,%d) vs (%d,%d)", c, r, ad, al, cd, cl)
			}
			_, _ = bd, bl
		}
	}
}

// TestSampleRoundScenarioProperties: for all seeds and rates, reported
// remains a duplicate-free subset of invited under the scenario filter,
// and identical seeds give identical traces across two fresh Envs.
func TestSampleRoundScenarioProperties(t *testing.T) {
	f := func(seed uint64, fracRaw, dropRaw, sfracRaw uint8) bool {
		p := fl.Participation{
			Fraction: float64(fracRaw%100) / 100,
			DropRate: float64(dropRaw%90) / 100,
		}
		cfg := scenario.Config{
			StragglerFrac: float64(sfracRaw%101) / 100,
			DropoutRate:   float64(dropRaw%80) / 100,
			Deadline:      0.75,
			Jitter:        0.2,
		}
		envA := testEnv(seed, p)
		envB := testEnv(seed, p)
		envA.Participation.Scenario = scenario.New(cfg, seed, len(envA.Clients))
		envB.Participation.Scenario = scenario.New(cfg, seed, len(envB.Clients))
		for r := 0; r < 4; r++ {
			invA, repA := envA.SampleRound(r)
			invB, repB := envB.SampleRound(r)
			if len(invA) != len(invB) || len(repA) != len(repB) {
				return false
			}
			inv := map[int]bool{}
			for j, c := range invA {
				if c != invB[j] || c < 0 || c >= len(envA.Clients) || inv[c] {
					return false
				}
				inv[c] = true
			}
			seen := map[int]bool{}
			for j, c := range repA {
				if c != repB[j] || !inv[c] || seen[c] {
					return false
				}
				seen[c] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioCommStatsMatchSampledSizes: a FedAvg run under a scenario
// accounts exactly one framed request per invited client downlink and
// one framed update per reported client uplink per round — resampling
// the same environment reproduces the recorded per-round traffic.
func TestScenarioCommStatsMatchSampledSizes(t *testing.T) {
	p := fl.Participation{Fraction: 0.75, DropRate: 0.2}
	env := testEnv(17, p)
	env.Participation.Scenario = scenario.New(scenario.Config{
		StragglerFrac: 0.5, DropoutRate: 0.3, Deadline: 0.75, Jitter: 0.2,
	}, 17, len(env.Clients))
	res := methods.FedAvg{}.Run(env)
	nParams := env.NewModel().NumParams()
	if len(res.Comm.PerRound) != env.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(res.Comm.PerRound), env.Rounds)
	}
	for r, rc := range res.Comm.PerRound {
		invited, reported := env.SampleRound(r)
		wantDown := int64(len(invited)) * (fl.CommPricing{}).DownloadBytesFor(nParams)
		wantUp := int64(len(reported)) * (fl.CommPricing{}).UploadBytesFor(nParams)
		if rc.DownBytes != wantDown || rc.UpBytes != wantUp {
			t.Fatalf("round %d traffic (up %d, down %d), want (up %d, down %d) for %d invited / %d reported",
				r, rc.UpBytes, rc.DownBytes, wantUp, wantDown, len(invited), len(reported))
		}
	}
}

// TestScenarioRunsAreBitIdentical: the full trainer stack under a
// scenario is reproducible — two fresh environments with the same seed
// produce identical results, for both the synchronous and the
// staleness-aware aggregators.
func TestScenarioRunsAreBitIdentical(t *testing.T) {
	cfg := scenario.Config{StragglerFrac: 0.4, DropoutRate: 0.3, Deadline: 0.75, Jitter: 0.2}
	for _, tr := range []fl.Trainer{methods.FedAvg{}, methods.FedAvgStale{}, methods.FedBuff{}} {
		envA := testEnv(23, fl.Participation{})
		envB := testEnv(23, fl.Participation{})
		envA.Participation.Scenario = scenario.New(cfg, 23, len(envA.Clients))
		envB.Participation.Scenario = scenario.New(cfg, 23, len(envB.Clients))
		ra, rb := tr.Run(envA), tr.Run(envB)
		if ra.FinalAcc != rb.FinalAcc || ra.FinalLoss != rb.FinalLoss {
			t.Fatalf("%s: fresh envs diverge: (%v, %v) vs (%v, %v)",
				tr.Name(), ra.FinalAcc, ra.FinalLoss, rb.FinalAcc, rb.FinalLoss)
		}
		for i := range ra.PerClientAcc {
			if ra.PerClientAcc[i] != rb.PerClientAcc[i] {
				t.Fatalf("%s: per-client accuracy diverges at %d", tr.Name(), i)
			}
		}
		if ra.Comm.UpBytes != rb.Comm.UpBytes || ra.Comm.DownBytes != rb.Comm.DownBytes {
			t.Fatalf("%s: traffic diverges", tr.Name())
		}
	}
}

// TestConfigValidate rejects out-of-range settings.
func TestConfigValidate(t *testing.T) {
	for _, cfg := range []scenario.Config{
		{StragglerFrac: -0.1},
		{StragglerFrac: 1.1},
		{DropoutRate: 1},
		{DropoutRate: -0.5},
		{SlowdownMax: 0.5},
		{Deadline: -1},
		{Jitter: -0.1},
	} {
		func(cfg scenario.Config) {
			defer func() {
				if recover() == nil {
					t.Fatalf("invalid config %+v did not panic", cfg)
				}
			}()
			scenario.New(cfg, 1, 4)
		}(cfg)
	}
}

// TestDropoutRateDoesNotShiftJitterStream: sweeping the dropout rate
// must change only the dropout decisions — the jitter draws behind them
// stay put, so a rate→0 sweep column is comparable to the rate=0 one.
func TestDropoutRateDoesNotShiftJitterStream(t *testing.T) {
	cfg := scenario.Config{StragglerFrac: 0.5, SlowdownMax: 4, Deadline: 0.9, Jitter: 0.3}
	zero := scenario.New(cfg, 41, 10)
	cfg.DropoutRate = 1e-12 // never triggers, but enables the dropout branch
	eps := scenario.New(cfg, 41, 10)
	for c := 0; c < 10; c++ {
		for r := 0; r < 8; r++ {
			zd, zl := zero.Outcome(c, r, 2)
			ed, el := eps.Outcome(c, r, 2)
			if zd != ed || zl != el {
				t.Fatalf("(%d,%d): rate=0 gives (%d,%d), rate→0 gives (%d,%d): jitter stream shifted",
					c, r, zd, zl, ed, el)
			}
		}
	}
}

// Package scenario is a deterministic system-heterogeneity model for the
// federated simulator: per-client compute-speed profiles and availability
// traces drawn from configurable distributions, layered over participation
// sampling through fl.Participation.Scenario.
//
// The model gives every round a virtual deadline. A client that cannot
// finish its full local pass by the deadline becomes a straggler (it
// reports partial work — fewer completed epochs) or a dropout (nothing
// usable arrives on time); a client whose availability draw fails is
// offline for the round and never reports. Semi-async aggregators
// (methods.FedBuff) additionally read how many rounds late a slow
// client's full update would arrive.
//
// Determinism contract: every draw derives from the model seed via
// rng.Derive — profiles from (profileLabel, client), per-round traces
// from (traceLabel, client, round) — so Outcome is a pure function of
// (client, round) that allocates nothing. Two models built from the same
// (Config, seed, n) produce identical traces forever, regardless of call
// order, worker count, or what else ran in the process.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"fedclust/internal/data"
	"fedclust/internal/rng"
)

// Derivation labels for the model's independent streams. The hostile
// labels (byz/churn/drift/attack/noise) are separate streams so enabling
// any adversarial knob never disturbs the benign profile and trace draws
// — a benign config's outcomes are bit-identical with or without the
// hostile machinery compiled in.
const (
	profileLabel = 0x5ce7a0f11e // per-client speed profiles
	traceLabel   = 0x5ce7a77ace // per-(client, round) availability/jitter
	byzLabel     = 0x5ce7ab12a7 // per-client byzantine cohort + attack kind
	churnLabel   = 0x5ce7ac4192 // per-client join/leave windows
	driftLabel   = 0x5ce7ad21f7 // per-client concept-drift cohort
	attackLabel  = 0x5ce7a66a4b // per-(client, round) garbage payloads
	noiseLabel   = 0x5ce7a10abe // per-client label-noise flips
)

// Config parameterizes the heterogeneity distributions. The zero value
// (with defaults applied) is a benign scenario: every client is nominal
// speed, always available, and finishes exactly on time — a no-op layer.
type Config struct {
	// StragglerFrac is the fraction of clients given a slow compute
	// profile (drawn per client, not per round — slow devices stay slow).
	StragglerFrac float64
	// SlowdownMax bounds how much slower a straggler is than a nominal
	// client: straggler speeds are drawn uniformly from
	// [1/SlowdownMax, 1). Default 4.
	SlowdownMax float64
	// DropoutRate is the per-round probability that a client is offline
	// (crashed, out of battery, off-network) and does no work at all.
	DropoutRate float64
	// Deadline is the round's virtual time budget, in units of the time
	// a nominal (speed-1, jitter-free) client needs for its full local
	// pass. Default 1: nominal clients finish exactly on time; 2 gives
	// 2×-slow stragglers room to finish.
	Deadline float64
	// Jitter is the σ of per-(client, round) lognormal compute noise
	// multiplying each client's pass time (0 = none). Small values
	// (0.1–0.3) make straggling intermittent instead of structural.
	Jitter float64

	// ByzantineFrac is the fraction of clients drawn into the byzantine
	// cohort: exactly ⌊frac·n⌋ clients, selected by per-client rank in
	// the byzantine stream (attackers stay attackers for the run). The
	// exact count keeps the sweep variable honest — per-client Bernoulli
	// draws overshoot small populations (a 0.3 point drawing 8 of 20
	// clients tests a 40% regime under a 30% label) — and makes cohorts
	// nest: the cohort at a smaller fraction is a subset of the cohort at
	// a larger one, so a sweep varies only cohort size, not membership.
	ByzantineFrac float64
	// Attack is the byzantine cohort's behavior. AttackNone with a
	// positive ByzantineFrac defaults to AttackSignFlip; AttackMixed
	// draws each attacker's kind from its own profile stream.
	Attack AttackKind
	// AttackScale is the noise magnitude of AttackGarbage uplinks, in
	// units of parameter standard normals (default 10).
	AttackScale float64
	// LabelNoiseRate is the per-example flip probability of
	// AttackLabelNoise clients' training labels (default 0.5).
	LabelNoiseRate float64

	// ChurnFrac is the fraction of clients that churn: each churner is
	// (50/50, per its own stream) either a late joiner — offline for
	// every round before its drawn join round — or an early leaver,
	// offline from its drawn leave round on. Generalizes the newcomer
	// experiment to mid-training membership change.
	ChurnFrac float64
	// ChurnHorizon bounds the drawn join/leave rounds to [1, ChurnHorizon)
	// — typically the run's round count. Required (≥ 2) when ChurnFrac
	// is positive.
	ChurnHorizon int

	// DriftFrac is the fraction of clients whose training distribution
	// migrates at DriftRound: from that round on, their training labels
	// are rotated by DriftShift classes (test distributions stay put, so
	// measured accuracy reflects how aggregation absorbs the shift).
	DriftFrac float64
	// DriftRound is the 0-based round the drift cohort migrates at.
	DriftRound int
	// DriftShift is the label rotation amount (default 1).
	DriftShift int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.SlowdownMax == 0 {
		c.SlowdownMax = 4
	}
	if c.Deadline == 0 {
		c.Deadline = 1
	}
	if c.AttackScale == 0 {
		c.AttackScale = 10
	}
	if c.LabelNoiseRate == 0 {
		c.LabelNoiseRate = 0.5
	}
	if c.DriftShift == 0 {
		c.DriftShift = 1
	}
	if c.ByzantineFrac > 0 && c.Attack == AttackNone {
		c.Attack = AttackSignFlip
	}
	return c
}

// Hostile reports whether any adversarial knob is enabled. A non-hostile
// config keeps the pre-hostile fingerprint and outcome streams exactly,
// so old checkpoints stay resumable.
func (c Config) Hostile() bool {
	return c.ByzantineFrac > 0 || c.ChurnFrac > 0 || c.DriftFrac > 0
}

// Check returns an error on out-of-range settings: NaN or infinite
// values anywhere, fractions outside [0,1], a DropoutRate of 1, a
// negative Deadline or Jitter, a SlowdownMax below 1, a churn cohort
// without a horizon, or an unknown attack kind. Zero-valued fields that
// withDefaults replaces (SlowdownMax, Deadline, AttackScale,
// LabelNoiseRate, DriftShift) are accepted as "use the default". fedsim
// runs this on its parsed flags so a hostile config dies with a clean
// message instead of being silently clamped.
func (c Config) Check() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"straggler fraction", c.StragglerFrac},
		{"slowdown max", c.SlowdownMax},
		{"dropout rate", c.DropoutRate},
		{"deadline", c.Deadline},
		{"jitter", c.Jitter},
		{"byzantine fraction", c.ByzantineFrac},
		{"attack scale", c.AttackScale},
		{"label noise rate", c.LabelNoiseRate},
		{"churn fraction", c.ChurnFrac},
		{"drift fraction", c.DriftFrac},
	} {
		if math.IsNaN(f.v) {
			return fmt.Errorf("scenario: %s is NaN", f.name)
		}
		if math.IsInf(f.v, 0) {
			return fmt.Errorf("scenario: %s is infinite", f.name)
		}
	}
	if c.StragglerFrac < 0 || c.StragglerFrac > 1 {
		return fmt.Errorf("scenario: straggler fraction %v out of [0,1]", c.StragglerFrac)
	}
	if c.DropoutRate < 0 || c.DropoutRate >= 1 {
		return fmt.Errorf("scenario: dropout rate %v out of [0,1)", c.DropoutRate)
	}
	if c.SlowdownMax != 0 && c.SlowdownMax < 1 {
		return fmt.Errorf("scenario: slowdown max %v below 1", c.SlowdownMax)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("scenario: non-positive deadline %v", c.Deadline)
	}
	if c.Jitter < 0 {
		return fmt.Errorf("scenario: negative jitter %v", c.Jitter)
	}
	if c.ByzantineFrac < 0 || c.ByzantineFrac > 1 {
		return fmt.Errorf("scenario: byzantine fraction %v out of [0,1]", c.ByzantineFrac)
	}
	if c.Attack < AttackNone || c.Attack > AttackMixed {
		return fmt.Errorf("scenario: unknown attack kind %d", int(c.Attack))
	}
	if c.AttackScale < 0 {
		return fmt.Errorf("scenario: negative attack scale %v", c.AttackScale)
	}
	if c.LabelNoiseRate < 0 || c.LabelNoiseRate > 1 {
		return fmt.Errorf("scenario: label noise rate %v out of [0,1]", c.LabelNoiseRate)
	}
	if c.ChurnFrac < 0 || c.ChurnFrac > 1 {
		return fmt.Errorf("scenario: churn fraction %v out of [0,1]", c.ChurnFrac)
	}
	if c.ChurnHorizon < 0 {
		return fmt.Errorf("scenario: negative churn horizon %d", c.ChurnHorizon)
	}
	if c.ChurnFrac > 0 && c.ChurnHorizon < 2 {
		return fmt.Errorf("scenario: churn fraction %v needs a churn horizon of at least 2 rounds, got %d", c.ChurnFrac, c.ChurnHorizon)
	}
	if c.DriftFrac < 0 || c.DriftFrac > 1 {
		return fmt.Errorf("scenario: drift fraction %v out of [0,1]", c.DriftFrac)
	}
	if c.DriftRound < 0 {
		return fmt.Errorf("scenario: negative drift round %d", c.DriftRound)
	}
	if c.DriftShift < 0 {
		return fmt.Errorf("scenario: negative drift shift %d", c.DriftShift)
	}
	return nil
}

// Validate panics on out-of-range settings (Check's panic form).
func (c Config) Validate() {
	if err := c.Check(); err != nil {
		panic(err.Error())
	}
}

// Profile is one client's fixed compute and adversarial character.
type Profile struct {
	// Speed is the client's relative compute speed: a nominal client is
	// 1; a straggler in (0, 1) needs 1/Speed times as long per epoch.
	Speed float64
	// Straggler marks clients drawn into the slow cohort.
	Straggler bool
	// Byzantine marks clients drawn into the attacker cohort; Attack is
	// the per-client resolved attack kind (AttackNone for benign clients).
	Byzantine bool
	Attack    AttackKind
	// Drift marks clients whose training distribution migrates at the
	// configured drift round.
	Drift bool
	// JoinRound is the first round the client exists (0: from the start);
	// LeaveRound is the first round it is gone (-1: never leaves). Rounds
	// outside [JoinRound, LeaveRound) are offline regardless of the
	// availability trace.
	JoinRound, LeaveRound int
}

// Model is an immutable, seeded heterogeneity model for a fixed client
// population. It implements fl.RoundScenario (and fl.HostileScenario
// when adversarial knobs are set). Safe for concurrent use: all methods
// are read-only after New, except the lazily built hostile training
// views, which are mutex-guarded.
type Model struct {
	cfg      Config
	seed     uint64
	profiles []Profile

	// viewMu guards views, the lazily built per-(client, phase) hostile
	// training datasets (see TrainData). The contents are a pure function
	// of (cfg, seed, client, base), so laziness never breaks determinism.
	viewMu sync.Mutex
	views  map[viewKey]*data.Dataset
}

// New draws the per-client profiles for a population of n clients. The
// same (cfg, seed, n) always yields the same model.
func New(cfg Config, seed uint64, n int) *Model {
	cfg = cfg.withDefaults()
	cfg.Validate()
	if n < 1 {
		panic(fmt.Sprintf("scenario: non-positive population %d", n))
	}
	m := &Model{cfg: cfg, seed: seed, profiles: make([]Profile, n)}
	var root, r rng.Rng
	root.Reseed(seed)
	for i := range m.profiles {
		root.DeriveInto(&r, profileLabel, uint64(i))
		p := Profile{Speed: 1, LeaveRound: -1}
		if r.Float64() < cfg.StragglerFrac {
			p.Straggler = true
			// Uniform over [1/SlowdownMax, 1): a straggler is between
			// barely and SlowdownMax-times slower than nominal.
			lo := 1 / cfg.SlowdownMax
			p.Speed = lo + r.Float64()*(1-lo)
		}
		m.profiles[i] = p
	}
	// Each hostile cohort has its own per-client stream: sweeping one
	// fraction redraws only its own cohort, and a zero fraction consumes
	// nothing — benign models draw exactly what they drew before PR 8.
	if k := int(cfg.ByzantineFrac * float64(len(m.profiles))); k > 0 {
		// Rank selection: the k clients with the smallest variates in the
		// byzantine stream form the cohort (ties broken by index). Each
		// client's draw comes from its own derived stream, so the ranking
		// — hence the cohort — is independent of iteration order.
		type draw struct {
			u float64
			i int
		}
		draws := make([]draw, len(m.profiles))
		for i := range m.profiles {
			root.DeriveInto(&r, byzLabel, uint64(i))
			draws[i] = draw{u: r.Float64(), i: i}
		}
		sort.Slice(draws, func(a, b int) bool {
			if draws[a].u != draws[b].u {
				return draws[a].u < draws[b].u
			}
			return draws[a].i < draws[b].i
		})
		for _, d := range draws[:k] {
			p := &m.profiles[d.i]
			p.Byzantine = true
			p.Attack = cfg.Attack
			if cfg.Attack == AttackMixed {
				// The kind is the next draw in the client's own stream.
				root.DeriveInto(&r, byzLabel, uint64(d.i))
				_ = r.Float64()
				p.Attack = [...]AttackKind{AttackLabelNoise, AttackSignFlip, AttackGarbage}[r.Intn(3)]
			}
		}
	}
	if cfg.ChurnFrac > 0 {
		for i := range m.profiles {
			root.DeriveInto(&r, churnLabel, uint64(i))
			if r.Float64() >= cfg.ChurnFrac {
				continue
			}
			p := &m.profiles[i]
			round := 1 + r.Intn(cfg.ChurnHorizon-1)
			if r.Uint64()&1 == 0 {
				p.JoinRound = round // late joiner (the newcomer case)
			} else {
				p.LeaveRound = round // early leaver
			}
		}
	}
	if cfg.DriftFrac > 0 {
		for i := range m.profiles {
			root.DeriveInto(&r, driftLabel, uint64(i))
			if r.Float64() < cfg.DriftFrac {
				m.profiles[i].Drift = true
			}
		}
	}
	return m
}

// Config returns the model's effective (defaults-applied) configuration.
func (m *Model) Config() Config { return m.cfg }

// Profiles returns the per-client compute profiles (read-only).
func (m *Model) Profiles() []Profile { return m.profiles }

// Stragglers counts the clients drawn into the slow cohort.
func (m *Model) Stragglers() int {
	k := 0
	for _, p := range m.profiles {
		if p.Straggler {
			k++
		}
	}
	return k
}

// Outcome implements fl.RoundScenario: how many of the configured local
// epochs client c finishes before the round's virtual deadline, and how
// many rounds late its full-epoch update would arrive (lag < 0: offline).
// Pure and allocation-free — see the package comment for the contract.
func (m *Model) Outcome(client, round, epochs int) (done, lag int) {
	if client < 0 || client >= len(m.profiles) {
		panic(fmt.Sprintf("scenario: client %d outside population of %d", client, len(m.profiles)))
	}
	if epochs < 1 {
		epochs = 1
	}
	// Churn window: a pure comparison, no draws — so the availability and
	// jitter streams below are untouched by churn membership, and a
	// churn-free profile (join 0, leave -1) takes exactly the old path.
	if p := &m.profiles[client]; round < p.JoinRound || (p.LeaveRound >= 0 && round >= p.LeaveRound) {
		return 0, -1
	}
	var root, r rng.Rng
	root.Reseed(m.seed)
	root.DeriveInto(&r, traceLabel, uint64(client), uint64(round))
	// The availability variate is always consumed, so sweeping
	// DropoutRate (0 included) never shifts the jitter draws that follow
	// — only the dropout decision itself varies across rates.
	if avail := r.Float64(); m.cfg.DropoutRate > 0 && avail < m.cfg.DropoutRate {
		return 0, -1
	}
	// pass is the client's time for its full local pass, in units of a
	// nominal client's pass. Nominal, jitter-free clients get exactly 1.
	pass := 1 / m.profiles[client].Speed
	if m.cfg.Jitter > 0 {
		pass *= math.Exp(m.cfg.Jitter * r.NormFloat64())
	}
	d := m.cfg.Deadline
	if pass <= d {
		return epochs, 0 // finishes everything on time
	}
	done = int(float64(epochs) * d / pass) // epochs completed at the deadline
	if done >= epochs {
		// Guard against float rounding pushing a just-late client to a
		// full count: done == epochs is reserved for lag == 0.
		done = epochs - 1
	}
	lag = int(math.Ceil(pass/d)) - 1
	if lag < 1 {
		lag = 1 // pass > d: the full update is at least one round late
	}
	return done, lag
}

// Fingerprint identifies the model for checkpoint/resume validation: two
// models produce identical traces iff they were built from the same
// (Config, seed, n), so hashing that identity pins the whole trace. A
// resumed run whose scenario fingerprint differs from the checkpoint's
// would silently replay under different failures, so fl refuses it.
func (m *Model) Fingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV-1a 64 offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(m.seed)
	mix(uint64(len(m.profiles)))
	mix(math.Float64bits(m.cfg.StragglerFrac))
	mix(math.Float64bits(m.cfg.SlowdownMax))
	mix(math.Float64bits(m.cfg.DropoutRate))
	mix(math.Float64bits(m.cfg.Deadline))
	mix(math.Float64bits(m.cfg.Jitter))
	// Hostile identity is mixed only when a hostile knob is set, so
	// benign models keep their pre-hostile fingerprint — checkpoints from
	// earlier versions resume unchanged.
	if m.cfg.Hostile() {
		mix(math.Float64bits(m.cfg.ByzantineFrac))
		mix(uint64(m.cfg.Attack))
		mix(math.Float64bits(m.cfg.AttackScale))
		mix(math.Float64bits(m.cfg.LabelNoiseRate))
		mix(math.Float64bits(m.cfg.ChurnFrac))
		mix(uint64(m.cfg.ChurnHorizon))
		mix(math.Float64bits(m.cfg.DriftFrac))
		mix(uint64(m.cfg.DriftRound))
		mix(uint64(m.cfg.DriftShift))
	}
	return h
}

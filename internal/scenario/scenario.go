// Package scenario is a deterministic system-heterogeneity model for the
// federated simulator: per-client compute-speed profiles and availability
// traces drawn from configurable distributions, layered over participation
// sampling through fl.Participation.Scenario.
//
// The model gives every round a virtual deadline. A client that cannot
// finish its full local pass by the deadline becomes a straggler (it
// reports partial work — fewer completed epochs) or a dropout (nothing
// usable arrives on time); a client whose availability draw fails is
// offline for the round and never reports. Semi-async aggregators
// (methods.FedBuff) additionally read how many rounds late a slow
// client's full update would arrive.
//
// Determinism contract: every draw derives from the model seed via
// rng.Derive — profiles from (profileLabel, client), per-round traces
// from (traceLabel, client, round) — so Outcome is a pure function of
// (client, round) that allocates nothing. Two models built from the same
// (Config, seed, n) produce identical traces forever, regardless of call
// order, worker count, or what else ran in the process.
package scenario

import (
	"fmt"
	"math"

	"fedclust/internal/rng"
)

// Derivation labels for the model's independent streams.
const (
	profileLabel = 0x5ce7a0f11e // per-client speed profiles
	traceLabel   = 0x5ce7a77ace // per-(client, round) availability/jitter
)

// Config parameterizes the heterogeneity distributions. The zero value
// (with defaults applied) is a benign scenario: every client is nominal
// speed, always available, and finishes exactly on time — a no-op layer.
type Config struct {
	// StragglerFrac is the fraction of clients given a slow compute
	// profile (drawn per client, not per round — slow devices stay slow).
	StragglerFrac float64
	// SlowdownMax bounds how much slower a straggler is than a nominal
	// client: straggler speeds are drawn uniformly from
	// [1/SlowdownMax, 1). Default 4.
	SlowdownMax float64
	// DropoutRate is the per-round probability that a client is offline
	// (crashed, out of battery, off-network) and does no work at all.
	DropoutRate float64
	// Deadline is the round's virtual time budget, in units of the time
	// a nominal (speed-1, jitter-free) client needs for its full local
	// pass. Default 1: nominal clients finish exactly on time; 2 gives
	// 2×-slow stragglers room to finish.
	Deadline float64
	// Jitter is the σ of per-(client, round) lognormal compute noise
	// multiplying each client's pass time (0 = none). Small values
	// (0.1–0.3) make straggling intermittent instead of structural.
	Jitter float64
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.SlowdownMax == 0 {
		c.SlowdownMax = 4
	}
	if c.Deadline == 0 {
		c.Deadline = 1
	}
	return c
}

// Validate panics on out-of-range settings.
func (c Config) Validate() {
	if c.StragglerFrac < 0 || c.StragglerFrac > 1 {
		panic(fmt.Sprintf("scenario: straggler fraction %v out of [0,1]", c.StragglerFrac))
	}
	if c.DropoutRate < 0 || c.DropoutRate >= 1 {
		panic(fmt.Sprintf("scenario: dropout rate %v out of [0,1)", c.DropoutRate))
	}
	if c.SlowdownMax < 1 {
		panic(fmt.Sprintf("scenario: slowdown max %v below 1", c.SlowdownMax))
	}
	if c.Deadline <= 0 {
		panic(fmt.Sprintf("scenario: non-positive deadline %v", c.Deadline))
	}
	if c.Jitter < 0 {
		panic(fmt.Sprintf("scenario: negative jitter %v", c.Jitter))
	}
}

// Profile is one client's fixed compute character.
type Profile struct {
	// Speed is the client's relative compute speed: a nominal client is
	// 1; a straggler in (0, 1) needs 1/Speed times as long per epoch.
	Speed float64
	// Straggler marks clients drawn into the slow cohort.
	Straggler bool
}

// Model is an immutable, seeded heterogeneity model for a fixed client
// population. It implements fl.RoundScenario. Safe for concurrent use:
// all methods are read-only after New.
type Model struct {
	cfg      Config
	seed     uint64
	profiles []Profile
}

// New draws the per-client profiles for a population of n clients. The
// same (cfg, seed, n) always yields the same model.
func New(cfg Config, seed uint64, n int) *Model {
	cfg = cfg.withDefaults()
	cfg.Validate()
	if n < 1 {
		panic(fmt.Sprintf("scenario: non-positive population %d", n))
	}
	m := &Model{cfg: cfg, seed: seed, profiles: make([]Profile, n)}
	var root, r rng.Rng
	root.Reseed(seed)
	for i := range m.profiles {
		root.DeriveInto(&r, profileLabel, uint64(i))
		p := Profile{Speed: 1}
		if r.Float64() < cfg.StragglerFrac {
			p.Straggler = true
			// Uniform over [1/SlowdownMax, 1): a straggler is between
			// barely and SlowdownMax-times slower than nominal.
			lo := 1 / cfg.SlowdownMax
			p.Speed = lo + r.Float64()*(1-lo)
		}
		m.profiles[i] = p
	}
	return m
}

// Config returns the model's effective (defaults-applied) configuration.
func (m *Model) Config() Config { return m.cfg }

// Profiles returns the per-client compute profiles (read-only).
func (m *Model) Profiles() []Profile { return m.profiles }

// Stragglers counts the clients drawn into the slow cohort.
func (m *Model) Stragglers() int {
	k := 0
	for _, p := range m.profiles {
		if p.Straggler {
			k++
		}
	}
	return k
}

// Outcome implements fl.RoundScenario: how many of the configured local
// epochs client c finishes before the round's virtual deadline, and how
// many rounds late its full-epoch update would arrive (lag < 0: offline).
// Pure and allocation-free — see the package comment for the contract.
func (m *Model) Outcome(client, round, epochs int) (done, lag int) {
	if client < 0 || client >= len(m.profiles) {
		panic(fmt.Sprintf("scenario: client %d outside population of %d", client, len(m.profiles)))
	}
	if epochs < 1 {
		epochs = 1
	}
	var root, r rng.Rng
	root.Reseed(m.seed)
	root.DeriveInto(&r, traceLabel, uint64(client), uint64(round))
	// The availability variate is always consumed, so sweeping
	// DropoutRate (0 included) never shifts the jitter draws that follow
	// — only the dropout decision itself varies across rates.
	if avail := r.Float64(); m.cfg.DropoutRate > 0 && avail < m.cfg.DropoutRate {
		return 0, -1
	}
	// pass is the client's time for its full local pass, in units of a
	// nominal client's pass. Nominal, jitter-free clients get exactly 1.
	pass := 1 / m.profiles[client].Speed
	if m.cfg.Jitter > 0 {
		pass *= math.Exp(m.cfg.Jitter * r.NormFloat64())
	}
	d := m.cfg.Deadline
	if pass <= d {
		return epochs, 0 // finishes everything on time
	}
	done = int(float64(epochs) * d / pass) // epochs completed at the deadline
	if done >= epochs {
		// Guard against float rounding pushing a just-late client to a
		// full count: done == epochs is reserved for lag == 0.
		done = epochs - 1
	}
	lag = int(math.Ceil(pass/d)) - 1
	if lag < 1 {
		lag = 1 // pass > d: the full update is at least one round late
	}
	return done, lag
}

// Fingerprint identifies the model for checkpoint/resume validation: two
// models produce identical traces iff they were built from the same
// (Config, seed, n), so hashing that identity pins the whole trace. A
// resumed run whose scenario fingerprint differs from the checkpoint's
// would silently replay under different failures, so fl refuses it.
func (m *Model) Fingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV-1a 64 offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(m.seed)
	mix(uint64(len(m.profiles)))
	mix(math.Float64bits(m.cfg.StragglerFrac))
	mix(math.Float64bits(m.cfg.SlowdownMax))
	mix(math.Float64bits(m.cfg.DropoutRate))
	mix(math.Float64bits(m.cfg.Deadline))
	mix(math.Float64bits(m.cfg.Jitter))
	return h
}

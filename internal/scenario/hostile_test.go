package scenario_test

// Hostile-layer suite: cohort draws, uplink corruption, training views,
// and churn windows are all pure functions of (Config, seed, client,
// round) — plus the Config.Check domain for every adversarial knob.

import (
	"math"
	"testing"

	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/rng"
	"fedclust/internal/scenario"
	"fedclust/internal/tensor"
)

// A hostile model must satisfy the full fl-side contract, not just the
// benign RoundScenario half.
var _ fl.HostileScenario = (*scenario.Model)(nil)

func hostileCfg() scenario.Config {
	return scenario.Config{
		ByzantineFrac: 0.3, Attack: scenario.AttackMixed,
		ChurnFrac: 0.25, ChurnHorizon: 10,
		DriftFrac: 0.3, DriftRound: 4,
	}
}

// TestHostileCohortsAreSeedDeterministic: two models from the same
// (cfg, seed, n) draw identical cohorts; a different seed draws a
// different one (with overwhelming probability at this size).
func TestHostileCohortsAreSeedDeterministic(t *testing.T) {
	a := scenario.New(hostileCfg(), 5, 200)
	b := scenario.New(hostileCfg(), 5, 200)
	for i, pa := range a.Profiles() {
		if pb := b.Profiles()[i]; pa != pb {
			t.Fatalf("client %d profile diverged across identical builds: %+v vs %+v", i, pa, pb)
		}
	}
	c := scenario.New(hostileCfg(), 6, 200)
	same := true
	for i, pa := range a.Profiles() {
		if c.Profiles()[i] != pa {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical hostile cohorts")
	}
	if a.Byzantines() == 0 {
		t.Fatal("0.3 byzantine fraction over 200 clients drew nobody")
	}
	if !a.Hostile() {
		t.Fatal("hostile config reports Hostile() == false")
	}
}

// TestHostileDrawsLeaveBenignStreamsUntouched: enabling the adversarial
// knobs must not move a single benign draw — speed profiles and
// availability traces come from their own streams.
func TestHostileDrawsLeaveBenignStreamsUntouched(t *testing.T) {
	benign := scenario.Config{StragglerFrac: 0.3, SlowdownMax: 4, DropoutRate: 0.2, Jitter: 0.2}
	hostile := benign
	hostile.ByzantineFrac = 0.3
	hostile.ChurnFrac = 0 // churn changes outcomes by design; keep it off here
	hostile.DriftFrac = 0.3
	hostile.DriftRound = 2
	mb := scenario.New(benign, 9, 50)
	mh := scenario.New(hostile, 9, 50)
	for i, pb := range mb.Profiles() {
		ph := mh.Profiles()[i]
		if pb.Speed != ph.Speed || pb.Straggler != ph.Straggler {
			t.Fatalf("client %d compute profile moved when hostile knobs turned on", i)
		}
	}
	for client := 0; client < 50; client++ {
		for round := 0; round < 6; round++ {
			bd, bl := mb.Outcome(client, round, 3)
			hd, hl := mh.Outcome(client, round, 3)
			if bd != hd || bl != hl {
				t.Fatalf("outcome(%d,%d) moved: (%d,%d) vs (%d,%d)", client, round, bd, bl, hd, hl)
			}
		}
	}
}

// TestChurnWindows: joiners are offline before their join round, leavers
// from their leave round, and every drawn round sits inside the horizon.
func TestChurnWindows(t *testing.T) {
	cfg := scenario.Config{ChurnFrac: 0.5, ChurnHorizon: 8}
	m := scenario.New(cfg, 11, 100)
	churned := 0
	for i, p := range m.Profiles() {
		if p.JoinRound == 0 && p.LeaveRound == -1 {
			continue
		}
		churned++
		if p.JoinRound != 0 && (p.JoinRound < 1 || p.JoinRound >= 8) {
			t.Fatalf("client %d join round %d outside [1, 8)", i, p.JoinRound)
		}
		if p.LeaveRound != -1 && (p.LeaveRound < 1 || p.LeaveRound >= 8) {
			t.Fatalf("client %d leave round %d outside [1, 8)", i, p.LeaveRound)
		}
		for round := 0; round < 10; round++ {
			done, lag := m.Outcome(i, round, 2)
			inWindow := round >= p.JoinRound && (p.LeaveRound < 0 || round < p.LeaveRound)
			if !inWindow && (done != 0 || lag != -1) {
				t.Fatalf("client %d outside its window at round %d still reported (%d, %d)",
					i, round, done, lag)
			}
			if inWindow && lag < 0 {
				t.Fatalf("client %d inside its window at round %d is offline with no dropout configured", i, round)
			}
		}
	}
	if churned == 0 {
		t.Fatal("0.5 churn fraction over 100 clients drew nobody")
	}
}

// TestCorruptUpdateSignFlip: the reflected uplink is start − (out −
// start), exactly; with no reference it negates.
func TestCorruptUpdateSignFlip(t *testing.T) {
	m := scenario.New(scenario.Config{ByzantineFrac: 1, Attack: scenario.AttackSignFlip}, 3, 4)
	out := []float64{1, 2, -3}
	start := []float64{0.5, 0.5, 0.5}
	if !m.CorruptUpdate(0, 2, out, start) {
		t.Fatal("sign-flip attacker did not corrupt")
	}
	for j, want := range []float64{0, -1, 4} {
		if out[j] != want {
			t.Fatalf("coord %d = %v, want %v", j, out[j], want)
		}
	}
	out = []float64{1, -2, 3}
	m.CorruptUpdate(0, 2, out, nil)
	for j, want := range []float64{-1, 2, -3} {
		if out[j] != want {
			t.Fatalf("nil-start coord %d = %v, want %v", j, out[j], want)
		}
	}
}

// TestCorruptUpdateGarbageIsVisitDeterministic: the garbage payload is a
// pure function of (seed, client, round) — resuming or re-running a
// visit uplinks the same bytes — and distinct visits differ.
func TestCorruptUpdateGarbageIsVisitDeterministic(t *testing.T) {
	m := scenario.New(scenario.Config{ByzantineFrac: 1, Attack: scenario.AttackGarbage, AttackScale: 5}, 3, 4)
	start := []float64{1, 2, 3, 4}
	a := append([]float64(nil), start...)
	b := append([]float64(nil), start...)
	m.CorruptUpdate(1, 7, a, start)
	m.CorruptUpdate(1, 7, b, start)
	for j := range a {
		if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
			t.Fatalf("coord %d differs across identical visits", j)
		}
	}
	c := append([]float64(nil), start...)
	m.CorruptUpdate(1, 8, c, start)
	same := true
	for j := range a {
		if a[j] != c[j] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct rounds drew identical garbage")
	}
	// Label-noise and benign clients leave the wire honest.
	m2 := scenario.New(scenario.Config{ByzantineFrac: 1, Attack: scenario.AttackLabelNoise}, 3, 4)
	d := append([]float64(nil), start...)
	if m2.CorruptUpdate(0, 0, d, start) {
		t.Fatal("label-noise attacker corrupted its uplink")
	}
}

// hostileBase builds a small labeled dataset for TrainData tests.
func hostileBase(n, classes int) *data.Dataset {
	d := &data.Dataset{
		Name: "hostile-base", X: tensor.New(n, 4), Y: make([]int, n),
		Classes: classes, C: 1, H: 1, W: 4,
	}
	r := rng.New(3)
	for i := range d.Y {
		d.Y[i] = i % classes
		for j := 0; j < 4; j++ {
			d.X.Data[i*4+j] = r.NormFloat64()
		}
	}
	return d
}

// TestTrainDataViews: benign clients get the base dataset back
// untouched; label-noise views flip deterministically; drifted views
// rotate labels from DriftRound on; X is shared, never copied.
func TestTrainDataViews(t *testing.T) {
	base := hostileBase(40, 4)
	cfg := scenario.Config{
		ByzantineFrac: 1, Attack: scenario.AttackLabelNoise, LabelNoiseRate: 0.5,
		DriftFrac: 1, DriftRound: 3, DriftShift: 1,
	}
	m := scenario.New(cfg, 21, 2)
	pre := m.TrainData(0, 0, base)
	if pre == base {
		t.Fatal("label-noise client got the base dataset back")
	}
	if &pre.X.Data[0] != &base.X.Data[0] {
		t.Fatal("view copied X instead of sharing it")
	}
	flips := 0
	for i := range pre.Y {
		if pre.Y[i] != base.Y[i] {
			flips++
		}
	}
	if flips == 0 || flips == len(pre.Y) {
		t.Fatalf("label noise flipped %d/%d labels", flips, len(pre.Y))
	}
	if again := m.TrainData(0, 1, base); again != pre {
		t.Fatal("pre-drift view not cached")
	}
	post := m.TrainData(0, 3, base)
	if post == pre {
		t.Fatal("drift round did not switch the view")
	}
	for i := range post.Y {
		if post.Y[i] != (pre.Y[i]+1)%4 {
			t.Fatalf("drifted label %d = %d, want noise-then-rotate %d", i, post.Y[i], (pre.Y[i]+1)%4)
		}
	}
	// A benign model hands the base back by identity.
	mb := scenario.New(scenario.Config{StragglerFrac: 0.5}, 21, 2)
	if mb.TrainData(0, 0, base) != base {
		t.Fatal("benign model built a view")
	}
	// Determinism across an independently built model.
	m2 := scenario.New(cfg, 21, 2)
	pre2 := m2.TrainData(0, 0, base)
	for i := range pre.Y {
		if pre.Y[i] != pre2.Y[i] {
			t.Fatalf("label flips diverged across identical builds at %d", i)
		}
	}
}

// TestParseAttack: flag spellings round-trip through String.
func TestParseAttack(t *testing.T) {
	for _, k := range []scenario.AttackKind{
		scenario.AttackNone, scenario.AttackLabelNoise, scenario.AttackSignFlip,
		scenario.AttackGarbage, scenario.AttackMixed,
	} {
		got, err := scenario.ParseAttack(k.String())
		if err != nil || got != k {
			t.Errorf("ParseAttack(%q) = (%v, %v), want %v", k.String(), got, err, k)
		}
	}
	if _, err := scenario.ParseAttack("bogus"); err == nil {
		t.Error("ParseAttack(bogus): want error")
	}
}

// TestConfigCheckHostileDomains: every adversarial knob has its domain
// enforced — NaN and infinities anywhere, fractions outside [0,1], churn
// without a horizon, negative rounds and shifts.
func TestConfigCheckHostileDomains(t *testing.T) {
	bad := []scenario.Config{
		{ByzantineFrac: math.NaN()},
		{ByzantineFrac: math.Inf(1)},
		{ByzantineFrac: -0.1},
		{ByzantineFrac: 1.5},
		{ByzantineFrac: 0.2, Attack: scenario.AttackKind(99)},
		{AttackScale: -1},
		{LabelNoiseRate: 1.5},
		{LabelNoiseRate: math.NaN()},
		{ChurnFrac: -0.2, ChurnHorizon: 10},
		{ChurnFrac: 0.2},                  // no horizon
		{ChurnFrac: 0.2, ChurnHorizon: 1}, // horizon too short to draw from
		{ChurnFrac: 0.2, ChurnHorizon: -3},
		{DriftFrac: 2},
		{DriftFrac: math.Inf(-1)},
		{DriftFrac: 0.2, DriftRound: -1},
		{DriftFrac: 0.2, DriftShift: -2},
		{StragglerFrac: math.NaN()},
		{Deadline: -1},
		{SlowdownMax: 0.5},
		{DropoutRate: 1},
	}
	for _, c := range bad {
		if err := c.Check(); err == nil {
			t.Errorf("Check accepted %+v", c)
		}
	}
	good := []scenario.Config{
		{},
		{ByzantineFrac: 0.3, Attack: scenario.AttackGarbage, AttackScale: 2},
		{ChurnFrac: 0.3, ChurnHorizon: 2},
		{DriftFrac: 0.3, DriftRound: 5, DriftShift: 2},
		{StragglerFrac: 0.3, SlowdownMax: 4, DropoutRate: 0.3, Deadline: 0.5, Jitter: 0.2},
	}
	for _, c := range good {
		if err := c.Check(); err != nil {
			t.Errorf("Check rejected %+v: %v", c, err)
		}
	}
}

// TestBenignConfigKeepsPreHostileFingerprint: a config with no hostile
// knobs must fingerprint identically whether or not the hostile fields
// exist — old checkpoints resume against new binaries.
func TestBenignConfigKeepsPreHostileFingerprint(t *testing.T) {
	benign := scenario.New(scenario.Config{StragglerFrac: 0.3}, 7, 10)
	// The hostile defaults (AttackScale 10 etc.) are applied by
	// withDefaults even on benign configs; they must not leak into the
	// fingerprint.
	if benign.Config().AttackScale == 0 {
		t.Fatal("expected withDefaults to set AttackScale")
	}
	hostile := scenario.New(scenario.Config{StragglerFrac: 0.3, ByzantineFrac: 0.2}, 7, 10)
	if benign.Fingerprint() == hostile.Fingerprint() {
		t.Fatal("hostile knob did not change the fingerprint")
	}
	benign2 := scenario.New(scenario.Config{StragglerFrac: 0.3, AttackScale: 10, LabelNoiseRate: 0.5, DriftShift: 1}, 7, 10)
	if benign.Fingerprint() != benign2.Fingerprint() {
		t.Fatal("explicitly spelled hostile defaults changed a benign fingerprint")
	}
}

// FuzzHostileConfig: any accepted configuration must build a model and
// answer Outcome / CorruptUpdate / TrainData without panicking, and two
// models from the same draw must agree bit for bit.
func FuzzHostileConfig(f *testing.F) {
	f.Add(uint64(1), 0.2, 0.25, 0.3, byte(2), 8, 3)
	f.Add(uint64(9), 1.0, 0.0, 0.0, byte(4), 0, 0)
	f.Add(uint64(3), 0.0, 1.0, 1.0, byte(1), 2, 1)
	f.Fuzz(func(t *testing.T, seed uint64, byz, churn, drift float64, attack byte, horizon, driftRound int) {
		cfg := scenario.Config{
			ByzantineFrac: byz, Attack: scenario.AttackKind(attack % 5),
			ChurnFrac: churn, ChurnHorizon: horizon,
			DriftFrac: drift, DriftRound: driftRound,
		}
		if cfg.Check() != nil {
			return
		}
		const n = 6
		a := scenario.New(cfg, seed, n)
		b := scenario.New(cfg, seed, n)
		base := hostileBase(12, 3)
		start := []float64{1, -1, 0.5}
		for client := 0; client < n; client++ {
			for round := 0; round < 4; round++ {
				ad, al := a.Outcome(client, round, 2)
				bd, bl := b.Outcome(client, round, 2)
				if ad != bd || al != bl {
					t.Fatalf("outcome(%d,%d) diverged", client, round)
				}
				av := append([]float64(nil), start...)
				bv := append([]float64(nil), start...)
				if a.CorruptUpdate(client, round, av, start) != b.CorruptUpdate(client, round, bv, start) {
					t.Fatalf("corruption decision diverged at (%d,%d)", client, round)
				}
				for j := range av {
					if math.Float64bits(av[j]) != math.Float64bits(bv[j]) {
						t.Fatalf("corrupted bytes diverged at (%d,%d)", client, round)
					}
				}
				ta, tb := a.TrainData(client, round, base), b.TrainData(client, round, base)
				for i := range ta.Y {
					if ta.Y[i] != tb.Y[i] {
						t.Fatalf("training labels diverged at (%d,%d)", client, round)
					}
				}
			}
		}
	})
}

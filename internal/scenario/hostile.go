// Hostile-world extensions of the scenario model: per-client byzantine
// attack profiles (label-noise, sign-flip, scaled-garbage uplinks),
// mid-training churn windows, and scheduled concept drift. Everything
// here derives from the model seed through dedicated rng.Derive streams
// (see the label block in scenario.go), so a hostile run is bit-identical
// across worker counts, GOMAXPROCS, and checkpoint/resume — exactly the
// contract the benign model keeps.

package scenario

import (
	"fmt"

	"fedclust/internal/data"
	"fedclust/internal/rng"
)

// AttackKind identifies a byzantine client's behavior.
type AttackKind int

const (
	// AttackNone marks a benign client.
	AttackNone AttackKind = iota
	// AttackLabelNoise poisons the client's training data: each example's
	// label is flipped to a different class with probability
	// Config.LabelNoiseRate. The uplink itself is honest — the update is
	// genuinely trained, just on poisoned data.
	AttackLabelNoise
	// AttackSignFlip reflects the client's update about its starting
	// point: the server receives start − (trained − start), the exact
	// opposite direction of the honest step.
	AttackSignFlip
	// AttackGarbage replaces the uplink with start + scale·N(0, I): pure
	// seeded noise at Config.AttackScale magnitude.
	AttackGarbage
	// AttackMixed draws each byzantine client's kind uniformly from the
	// three concrete attacks (per-client, fixed for the run).
	AttackMixed
)

// ParseAttack maps a fedsim flag value to an AttackKind.
func ParseAttack(name string) (AttackKind, error) {
	switch name {
	case "", "none":
		return AttackNone, nil
	case "label-noise", "labelnoise":
		return AttackLabelNoise, nil
	case "sign-flip", "signflip":
		return AttackSignFlip, nil
	case "garbage":
		return AttackGarbage, nil
	case "mixed":
		return AttackMixed, nil
	default:
		return AttackNone, fmt.Errorf("scenario: unknown attack %q (want none, label-noise, sign-flip, garbage, or mixed)", name)
	}
}

// String returns the flag spelling of the attack kind.
func (k AttackKind) String() string {
	switch k {
	case AttackNone:
		return "none"
	case AttackLabelNoise:
		return "label-noise"
	case AttackSignFlip:
		return "sign-flip"
	case AttackGarbage:
		return "garbage"
	case AttackMixed:
		return "mixed"
	default:
		return fmt.Sprintf("AttackKind(%d)", int(k))
	}
}

// Byzantines counts the clients drawn into the attacker cohort.
func (m *Model) Byzantines() int {
	k := 0
	for _, p := range m.profiles {
		if p.Byzantine {
			k++
		}
	}
	return k
}

// Hostile reports whether the model carries any adversarial behavior.
func (m *Model) Hostile() bool { return m.cfg.Hostile() }

// CorruptUpdate applies client c's byzantine uplink corruption in place:
// sign-flip reflects out about start, garbage overwrites it with seeded
// noise around start. Label-noise clients (and benign ones) leave the
// uplink untouched — their poison is in the data, not the wire. The
// garbage payload derives from (attackLabel, client, round), so the same
// visit always uplinks the same bytes regardless of worker count or
// resume point. Allocation-free, like Outcome. Returns whether the
// vector was modified.
func (m *Model) CorruptUpdate(client, round int, out, start []float64) bool {
	if client < 0 || client >= len(m.profiles) {
		panic(fmt.Sprintf("scenario: client %d outside population of %d", client, len(m.profiles)))
	}
	switch m.profiles[client].Attack {
	case AttackSignFlip:
		if start == nil {
			// No broadcast reference: flip the parameters themselves —
			// still adversarial, still deterministic.
			for j := range out {
				out[j] = -out[j]
			}
			return true
		}
		for j := range out {
			out[j] = 2*start[j] - out[j]
		}
		return true
	case AttackGarbage:
		var root, r rng.Rng
		root.Reseed(m.seed)
		root.DeriveInto(&r, attackLabel, uint64(client), uint64(round))
		scale := m.cfg.AttackScale
		if start == nil {
			for j := range out {
				out[j] = scale * r.NormFloat64()
			}
			return true
		}
		for j := range out {
			out[j] = start[j] + scale*r.NormFloat64()
		}
		return true
	default:
		return false
	}
}

// viewKey identifies one lazily built hostile training view.
type viewKey struct {
	client  int
	drifted bool
}

// TrainData returns the dataset client c actually trains on at round:
// the base set for benign stationary clients, a label-noised view for
// AttackLabelNoise attackers, and a label-rotated view for drifted
// clients from DriftRound on (composed when a client is both). Views
// share the base X tensor — only labels are rewritten — and are cached
// per (client, phase), so each client pays the label remap once.
// Callers pass the same base for a given client every time (the engine
// passes the client's training split); the first call wins the cache
// slot. Safe for concurrent use.
func (m *Model) TrainData(client, round int, base *data.Dataset) *data.Dataset {
	if client < 0 || client >= len(m.profiles) {
		panic(fmt.Sprintf("scenario: client %d outside population of %d", client, len(m.profiles)))
	}
	p := &m.profiles[client]
	noisy := p.Attack == AttackLabelNoise
	drifted := p.Drift && round >= m.cfg.DriftRound
	if !noisy && !drifted {
		return base
	}
	key := viewKey{client: client, drifted: drifted}
	m.viewMu.Lock()
	defer m.viewMu.Unlock()
	if v, ok := m.views[key]; ok {
		return v
	}
	v := &data.Dataset{
		Name:    base.Name,
		X:       base.X,
		Y:       append([]int(nil), base.Y...),
		Classes: base.Classes,
		C:       base.C, H: base.H, W: base.W,
	}
	if noisy && base.Classes > 1 {
		// Seeded per-client flips: each flipped label moves to a uniform
		// *different* class, from the client's own noise stream — the
		// same flips whether the view is built at round 0 or round 40.
		var root, r rng.Rng
		root.Reseed(m.seed)
		root.DeriveInto(&r, noiseLabel, uint64(client))
		for i, y := range v.Y {
			if r.Float64() < m.cfg.LabelNoiseRate {
				v.Y[i] = (y + 1 + r.Intn(base.Classes-1)) % base.Classes
			}
		}
	}
	if drifted {
		for i, y := range v.Y {
			v.Y[i] = (y + m.cfg.DriftShift) % base.Classes
		}
	}
	if m.views == nil {
		m.views = make(map[viewKey]*data.Dataset)
	}
	m.views[key] = v
	return v
}

// Package partition splits a dataset's example indices across simulated
// clients. It implements the Dir(α) label-skew partitioner the paper's
// evaluation uses ("Non-IID Dir(0.1)", after Li et al., ICDE 2022), the
// label-group partitioner behind Fig. 1's two-cluster probe, the classic
// shard partitioner of McMahan et al., and an IID control, plus
// diagnostics over the resulting label skew.
package partition

import (
	"fmt"

	"fedclust/internal/rng"
	"fedclust/internal/stats"
)

// Assignment maps each client to the dataset rows it owns.
type Assignment [][]int

// NumClients returns the number of clients in the assignment.
func (a Assignment) NumClients() int { return len(a) }

// TotalExamples returns the number of assigned example indices.
func (a Assignment) TotalExamples() int {
	n := 0
	for _, idx := range a {
		n += len(idx)
	}
	return n
}

// Validate panics unless the assignment is a partition of exactly the
// indices [0, n): disjoint, complete, in-range.
func (a Assignment) Validate(n int) {
	seen := make([]bool, n)
	count := 0
	for c, idx := range a {
		for _, i := range idx {
			if i < 0 || i >= n {
				panic(fmt.Sprintf("partition: client %d has out-of-range index %d", c, i))
			}
			if seen[i] {
				panic(fmt.Sprintf("partition: index %d assigned twice", i))
			}
			seen[i] = true
			count++
		}
	}
	if count != n {
		panic(fmt.Sprintf("partition: %d of %d indices assigned", count, n))
	}
}

// Dirichlet assigns examples to clients with label-skew controlled by
// alpha: for each class, a proportion vector over clients is drawn from
// Dir(alpha) and the class's examples are split accordingly. Small alpha
// (e.g. 0.1, the paper's setting) concentrates each class on few clients;
// large alpha approaches IID. Every client is guaranteed at least
// minPerClient examples (indices are rebalanced from the largest clients
// if a draw leaves someone short).
func Dirichlet(labels []int, numClients int, alpha float64, minPerClient int, r *rng.Rng) Assignment {
	if numClients < 1 {
		panic(fmt.Sprintf("partition: numClients must be positive, got %d", numClients))
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("partition: alpha must be positive, got %v", alpha))
	}
	if minPerClient*numClients > len(labels) {
		panic(fmt.Sprintf("partition: cannot guarantee %d examples for %d clients with %d total",
			minPerClient, numClients, len(labels)))
	}
	// Bucket indices by class, shuffled.
	byClass := make(map[int][]int)
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}
	classes := make([]int, 0, len(byClass))
	for k := range byClass {
		classes = append(classes, k)
	}
	// Deterministic class order (map iteration is random).
	sortInts(classes)
	out := make(Assignment, numClients)
	for _, k := range classes {
		idx := byClass[k]
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		p := r.Dirichlet(alpha, numClients)
		// Convert proportions to integer counts summing to len(idx).
		counts := proportionsToCounts(p, len(idx))
		lo := 0
		for c, cnt := range counts {
			out[c] = append(out[c], idx[lo:lo+cnt]...)
			lo += cnt
		}
	}
	rebalanceMin(out, minPerClient, r)
	return out
}

// LabelGroups splits clients into groups, where group g's clients hold
// only the classes in groups[g]. Class examples are spread uniformly over
// the group's clients. This is the construction behind the paper's Fig. 1
// (two groups: classes {0..4} and {5..9}) and the ground truth for
// cluster-recovery metrics. clientsPerGroup[g] gives the group sizes.
func LabelGroups(labels []int, groups [][]int, clientsPerGroup []int, r *rng.Rng) Assignment {
	if len(groups) != len(clientsPerGroup) {
		panic(fmt.Sprintf("partition: %d groups but %d sizes", len(groups), len(clientsPerGroup)))
	}
	classToGroup := make(map[int]int)
	for g, cls := range groups {
		for _, k := range cls {
			if prev, dup := classToGroup[k]; dup {
				panic(fmt.Sprintf("partition: class %d in both group %d and %d", k, prev, g))
			}
			classToGroup[k] = g
		}
	}
	totalClients := 0
	firstClient := make([]int, len(groups))
	for g, n := range clientsPerGroup {
		if n < 1 {
			panic(fmt.Sprintf("partition: group %d has %d clients", g, n))
		}
		firstClient[g] = totalClients
		totalClients += n
	}
	out := make(Assignment, totalClients)
	byClass := make(map[int][]int)
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}
	classes := make([]int, 0, len(byClass))
	for k := range byClass {
		classes = append(classes, k)
	}
	sortInts(classes)
	for _, k := range classes {
		g, ok := classToGroup[k]
		if !ok {
			continue // class not owned by any group: dropped
		}
		idx := byClass[k]
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		n := clientsPerGroup[g]
		for i, row := range idx {
			c := firstClient[g] + i%n
			out[c] = append(out[c], row)
		}
	}
	return out
}

// GroupTruth returns the ground-truth group label of every client produced
// by LabelGroups with the given sizes.
func GroupTruth(clientsPerGroup []int) []int {
	var out []int
	for g, n := range clientsPerGroup {
		for i := 0; i < n; i++ {
			out = append(out, g)
		}
	}
	return out
}

// Shards implements the McMahan et al. pathological partitioner: sort by
// label, slice into numClients*shardsPerClient shards, deal shardsPerClient
// random shards to each client. Each client ends up with roughly
// shardsPerClient distinct classes.
func Shards(labels []int, numClients, shardsPerClient int, r *rng.Rng) Assignment {
	if numClients < 1 || shardsPerClient < 1 {
		panic("partition: Shards needs positive clients and shards")
	}
	n := len(labels)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort indices by label (stable by index for determinism).
	sortByLabel(order, labels)
	numShards := numClients * shardsPerClient
	if numShards > n {
		panic(fmt.Sprintf("partition: %d shards for %d examples", numShards, n))
	}
	shardSize := n / numShards
	shardIDs := r.Perm(numShards)
	out := make(Assignment, numClients)
	for c := 0; c < numClients; c++ {
		for s := 0; s < shardsPerClient; s++ {
			sid := shardIDs[c*shardsPerClient+s]
			lo := sid * shardSize
			hi := lo + shardSize
			if sid == numShards-1 {
				hi = n
			}
			out[c] = append(out[c], order[lo:hi]...)
		}
	}
	return out
}

// IID deals examples uniformly at random to clients (near-equal sizes).
func IID(n, numClients int, r *rng.Rng) Assignment {
	if numClients < 1 {
		panic("partition: IID needs positive clients")
	}
	order := r.Perm(n)
	out := make(Assignment, numClients)
	for i, row := range order {
		c := i % numClients
		out[c] = append(out[c], row)
	}
	return out
}

// proportionsToCounts converts a probability vector to integer counts
// summing exactly to total (largest-remainder rounding).
func proportionsToCounts(p []float64, total int) []int {
	counts := make([]int, len(p))
	rem := make([]float64, len(p))
	used := 0
	for i, v := range p {
		exact := v * float64(total)
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		used += counts[i]
	}
	for used < total {
		best := stats.ArgMax(rem)
		counts[best]++
		rem[best] = -1
		used++
	}
	return counts
}

// rebalanceMin moves examples from the largest clients to any client below
// the minimum until all satisfy it.
func rebalanceMin(a Assignment, minPerClient int, r *rng.Rng) {
	if minPerClient <= 0 {
		return
	}
	for {
		short := -1
		for c, idx := range a {
			if len(idx) < minPerClient {
				short = c
				break
			}
		}
		if short == -1 {
			return
		}
		// Donate from the largest client.
		big := 0
		for c := range a {
			if len(a[c]) > len(a[big]) {
				big = c
			}
		}
		if len(a[big]) <= minPerClient {
			panic("partition: cannot satisfy minimum client size")
		}
		// Move a random example from big to short.
		j := r.Intn(len(a[big]))
		a[short] = append(a[short], a[big][j])
		a[big][j] = a[big][len(a[big])-1]
		a[big] = a[big][:len(a[big])-1]
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// sortByLabel stably sorts order by labels[order[i]] (counting sort).
func sortByLabel(order []int, labels []int) {
	maxL := 0
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	buckets := make([][]int, maxL+1)
	for _, i := range order {
		buckets[labels[i]] = append(buckets[labels[i]], i)
	}
	pos := 0
	for _, b := range buckets {
		for _, i := range b {
			order[pos] = i
			pos++
		}
	}
}

package partition

import (
	"fmt"
	"math"

	"fedclust/internal/rng"
)

// QuantitySkew assigns examples to clients with IID labels but power-law
// sized shares (Li et al. ICDE'22's "quantity skew" setting): client c
// receives a share proportional to (c+1)^(-beta) of a random shuffle.
// beta = 0 gives equal sizes; larger beta concentrates data on few
// clients. Every client receives at least minPerClient examples.
func QuantitySkew(n, numClients int, beta float64, minPerClient int, r *rng.Rng) Assignment {
	if numClients < 1 {
		panic(fmt.Sprintf("partition: numClients must be positive, got %d", numClients))
	}
	if beta < 0 {
		panic(fmt.Sprintf("partition: beta must be non-negative, got %v", beta))
	}
	if minPerClient*numClients > n {
		panic(fmt.Sprintf("partition: cannot guarantee %d examples for %d clients with %d total",
			minPerClient, numClients, n))
	}
	props := make([]float64, numClients)
	var sum float64
	for c := range props {
		props[c] = math.Pow(float64(c+1), -beta)
		sum += props[c]
	}
	for c := range props {
		props[c] /= sum
	}
	counts := proportionsToCounts(props, n)
	order := r.Perm(n)
	out := make(Assignment, numClients)
	lo := 0
	for c, cnt := range counts {
		out[c] = append(out[c], order[lo:lo+cnt]...)
		lo += cnt
	}
	rebalanceMin(out, minPerClient, r)
	return out
}

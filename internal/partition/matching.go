package partition

import (
	"fmt"

	"fedclust/internal/rng"
)

// MatchingTest distributes test-set indices to clients so each client's
// test label distribution matches its train label distribution — the
// personalized evaluation protocol of the clustered-FL literature (each
// device is tested on the kind of data it actually sees).
//
// trainHists is the per-client class histogram of the training partition
// (from ClientLabelHistograms); testLabels are the labels of the test set
// being split. Classes a client never trains on are never placed in its
// test set.
func MatchingTest(trainHists [][]int, testLabels []int, classes int, r *rng.Rng) Assignment {
	numClients := len(trainHists)
	if numClients == 0 {
		panic("partition: MatchingTest with no clients")
	}
	byClass := make([][]int, classes)
	for i, y := range testLabels {
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("partition: test label %d out of range", y))
		}
		byClass[y] = append(byClass[y], i)
	}
	out := make(Assignment, numClients)
	for k := 0; k < classes; k++ {
		idx := byClass[k]
		if len(idx) == 0 {
			continue
		}
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		// Client weights = train counts of class k.
		total := 0
		for _, h := range trainHists {
			total += h[k]
		}
		if total == 0 {
			continue // nobody trains on this class; drop its test examples
		}
		props := make([]float64, numClients)
		for c, h := range trainHists {
			props[c] = float64(h[k]) / float64(total)
		}
		counts := proportionsToCounts(props, len(idx))
		lo := 0
		for c, cnt := range counts {
			out[c] = append(out[c], idx[lo:lo+cnt]...)
			lo += cnt
		}
	}
	return out
}

package partition

import (
	"fmt"
	"math"

	"fedclust/internal/stats"
)

// ClientLabelHistograms returns per-client class counts for an assignment.
func ClientLabelHistograms(a Assignment, labels []int, classes int) [][]int {
	out := make([][]int, len(a))
	for c, idx := range a {
		h := make([]int, classes)
		for _, i := range idx {
			h[labels[i]]++
		}
		out[c] = h
	}
	return out
}

// ClientLabelDistributions returns per-client class proportions.
func ClientLabelDistributions(a Assignment, labels []int, classes int) [][]float64 {
	hists := ClientLabelHistograms(a, labels, classes)
	out := make([][]float64, len(hists))
	for c, h := range hists {
		p := make([]float64, classes)
		total := 0
		for _, v := range h {
			total += v
		}
		if total > 0 {
			for k, v := range h {
				p[k] = float64(v) / float64(total)
			}
		}
		out[c] = p
	}
	return out
}

// AvgLabelEntropy returns the mean Shannon entropy (nats) of client label
// distributions — high under IID, low under severe label skew.
func AvgLabelEntropy(a Assignment, labels []int, classes int) float64 {
	dists := ClientLabelDistributions(a, labels, classes)
	var sum float64
	for _, p := range dists {
		sum += stats.Entropy(p)
	}
	if len(dists) == 0 {
		return 0
	}
	return sum / float64(len(dists))
}

// SkewEMD returns the mean earth-mover-style L1 distance between each
// client's label distribution and the global one — 0 under perfect IID.
func SkewEMD(a Assignment, labels []int, classes int) float64 {
	global := make([]float64, classes)
	for _, y := range labels {
		global[y]++
	}
	stats.Normalize(global)
	dists := ClientLabelDistributions(a, labels, classes)
	var sum float64
	for _, p := range dists {
		var d float64
		for k := range p {
			d += math.Abs(p[k] - global[k])
		}
		sum += d
	}
	if len(dists) == 0 {
		return 0
	}
	return sum / float64(len(dists))
}

// SizeSummary formats min/median/max client sizes for logging.
func SizeSummary(a Assignment) string {
	if len(a) == 0 {
		return "no clients"
	}
	sizes := make([]float64, len(a))
	for i, idx := range a {
		sizes[i] = float64(len(idx))
	}
	return fmt.Sprintf("sizes min=%d med=%.0f max=%d",
		int(stats.Min(sizes)), stats.Median(sizes), int(stats.Max(sizes)))
}

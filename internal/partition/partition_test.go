package partition

import (
	"math"
	"testing"
	"testing/quick"

	"fedclust/internal/rng"
)

// balancedLabels returns n labels cycling through the given class count.
func balancedLabels(n, classes int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % classes
	}
	return out
}

func TestDirichletIsAPartition(t *testing.T) {
	labels := balancedLabels(500, 10)
	a := Dirichlet(labels, 10, 0.1, 5, rng.New(1))
	a.Validate(len(labels))
	if a.NumClients() != 10 {
		t.Fatalf("clients = %d", a.NumClients())
	}
	for c, idx := range a {
		if len(idx) < 5 {
			t.Fatalf("client %d has %d < 5 examples", c, len(idx))
		}
	}
}

func TestDirichletPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 200 + r.Intn(300)
		clients := 2 + r.Intn(10)
		labels := balancedLabels(n, 1+r.Intn(10))
		a := Dirichlet(labels, clients, 0.1, 1, r)
		defer func() { recover() }()
		a.Validate(n)
		return a.TotalExamples() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletSkewDecreasesWithAlpha(t *testing.T) {
	labels := balancedLabels(2000, 10)
	skewLow := SkewEMD(Dirichlet(labels, 10, 0.05, 1, rng.New(2)), labels, 10)
	skewHigh := SkewEMD(Dirichlet(labels, 10, 100, 1, rng.New(2)), labels, 10)
	if skewLow <= skewHigh {
		t.Fatalf("skew(α=0.05)=%v should exceed skew(α=100)=%v", skewLow, skewHigh)
	}
	if skewHigh > 0.3 {
		t.Fatalf("large-α partition too skewed: %v", skewHigh)
	}
	if skewLow < 0.8 {
		t.Fatalf("small-α partition not skewed enough: %v", skewLow)
	}
}

func TestDirichletEntropyMatchesSkewDirection(t *testing.T) {
	labels := balancedLabels(2000, 10)
	hLow := AvgLabelEntropy(Dirichlet(labels, 10, 0.05, 1, rng.New(3)), labels, 10)
	hHigh := AvgLabelEntropy(Dirichlet(labels, 10, 100, 1, rng.New(3)), labels, 10)
	if hLow >= hHigh {
		t.Fatalf("entropy under α=0.05 (%v) should be below α=100 (%v)", hLow, hHigh)
	}
	if math.Abs(hHigh-math.Log(10)) > 0.2 {
		t.Fatalf("IID-ish entropy = %v, want ≈ ln10", hHigh)
	}
}

func TestDirichletValidation(t *testing.T) {
	labels := balancedLabels(20, 2)
	for _, f := range []func(){
		func() { Dirichlet(labels, 0, 0.1, 1, rng.New(1)) },
		func() { Dirichlet(labels, 2, 0, 1, rng.New(1)) },
		func() { Dirichlet(labels, 10, 0.1, 5, rng.New(1)) }, // 50 > 20
	} {
		func(f func()) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid Dirichlet config did not panic")
				}
			}()
			f()
		}(f)
	}
}

func TestDirichletDeterministic(t *testing.T) {
	labels := balancedLabels(300, 10)
	a := Dirichlet(labels, 5, 0.1, 1, rng.New(9))
	b := Dirichlet(labels, 5, 0.1, 1, rng.New(9))
	for c := range a {
		if len(a[c]) != len(b[c]) {
			t.Fatal("same seed gave different partition sizes")
		}
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatal("same seed gave different partitions")
			}
		}
	}
}

func TestLabelGroups(t *testing.T) {
	labels := balancedLabels(1000, 10)
	groups := [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}
	a := LabelGroups(labels, groups, []int{5, 5}, rng.New(4))
	a.Validate(len(labels))
	if a.NumClients() != 10 {
		t.Fatalf("clients = %d", a.NumClients())
	}
	// Clients 0-4 must hold only classes 0-4, clients 5-9 only 5-9.
	hists := ClientLabelHistograms(a, labels, 10)
	for c := 0; c < 5; c++ {
		for k := 5; k < 10; k++ {
			if hists[c][k] != 0 {
				t.Fatalf("client %d (group 0) holds class %d", c, k)
			}
		}
	}
	for c := 5; c < 10; c++ {
		for k := 0; k < 5; k++ {
			if hists[c][k] != 0 {
				t.Fatalf("client %d (group 1) holds class %d", c, k)
			}
		}
	}
	truth := GroupTruth([]int{5, 5})
	if len(truth) != 10 || truth[0] != 0 || truth[9] != 1 {
		t.Fatalf("GroupTruth = %v", truth)
	}
}

func TestLabelGroupsDuplicateClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate class did not panic")
		}
	}()
	LabelGroups(balancedLabels(10, 3), [][]int{{0, 1}, {1, 2}}, []int{1, 1}, rng.New(1))
}

func TestLabelGroupsUnownedClassDropped(t *testing.T) {
	labels := balancedLabels(30, 3)
	a := LabelGroups(labels, [][]int{{0}, {1}}, []int{1, 1}, rng.New(5))
	// Class 2's 10 examples are dropped.
	if a.TotalExamples() != 20 {
		t.Fatalf("total = %d, want 20", a.TotalExamples())
	}
}

func TestShards(t *testing.T) {
	labels := balancedLabels(200, 10)
	a := Shards(labels, 10, 2, rng.New(6))
	a.Validate(len(labels))
	// Each client should hold at most ~2-3 distinct classes (2 shards of
	// a label-sorted array touch at most 4 class boundaries, typically 2).
	hists := ClientLabelHistograms(a, labels, 10)
	for c, h := range hists {
		distinct := 0
		for _, v := range h {
			if v > 0 {
				distinct++
			}
		}
		if distinct > 4 {
			t.Fatalf("client %d holds %d distinct classes, shards too diffuse", c, distinct)
		}
	}
}

func TestIID(t *testing.T) {
	a := IID(103, 10, rng.New(7))
	a.Validate(103)
	for _, idx := range a {
		if len(idx) < 10 || len(idx) > 11 {
			t.Fatalf("IID sizes unbalanced: %d", len(idx))
		}
	}
	labels := balancedLabels(1000, 10)
	iid := IID(1000, 10, rng.New(8))
	if skew := SkewEMD(iid, labels, 10); skew > 0.3 {
		t.Fatalf("IID skew = %v, want small", skew)
	}
}

func TestProportionsToCounts(t *testing.T) {
	c := proportionsToCounts([]float64{0.5, 0.3, 0.2}, 10)
	if c[0]+c[1]+c[2] != 10 {
		t.Fatalf("counts sum = %v", c)
	}
	if c[0] != 5 || c[1] != 3 || c[2] != 2 {
		t.Fatalf("counts = %v", c)
	}
	// Rounding case
	c2 := proportionsToCounts([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 10)
	sum := 0
	for _, v := range c2 {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("rounded counts sum = %d", sum)
	}
}

func TestSizeSummary(t *testing.T) {
	a := Assignment{{1, 2, 3}, {4}, {5, 6}}
	if got := SizeSummary(a); got != "sizes min=1 med=2 max=3" {
		t.Fatalf("SizeSummary = %q", got)
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	a := Assignment{{0, 1}, {1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate index did not panic")
		}
	}()
	a.Validate(3)
}

func TestValidateCatchesMissing(t *testing.T) {
	a := Assignment{{0}, {2}}
	defer func() {
		if recover() == nil {
			t.Fatal("missing index did not panic")
		}
	}()
	a.Validate(3)
}

func TestQuantitySkewIsAPartition(t *testing.T) {
	a := QuantitySkew(500, 10, 1.0, 5, rng.New(44))
	a.Validate(500)
	for c, idx := range a {
		if len(idx) < 5 {
			t.Fatalf("client %d has %d < 5 examples", c, len(idx))
		}
	}
	// Sizes must be monotone non-increasing-ish (power law): first client
	// largest.
	if len(a[0]) <= len(a[9]) {
		t.Fatalf("power-law skew not visible: first=%d last=%d", len(a[0]), len(a[9]))
	}
}

func TestQuantitySkewBetaZeroBalanced(t *testing.T) {
	a := QuantitySkew(100, 10, 0, 1, rng.New(45))
	a.Validate(100)
	for _, idx := range a {
		if len(idx) != 10 {
			t.Fatalf("beta=0 should balance, got %d", len(idx))
		}
	}
}

func TestQuantitySkewLabelsStayIID(t *testing.T) {
	labels := balancedLabels(2000, 10)
	a := QuantitySkew(2000, 8, 1.2, 20, rng.New(46))
	if skew := SkewEMD(a, labels, 10); skew > 0.4 {
		t.Fatalf("quantity skew should leave labels near-IID, EMD=%v", skew)
	}
}

func TestQuantitySkewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { QuantitySkew(10, 0, 1, 1, rng.New(1)) },
		func() { QuantitySkew(10, 2, -1, 1, rng.New(1)) },
		func() { QuantitySkew(10, 5, 1, 3, rng.New(1)) },
	} {
		func(f func()) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid QuantitySkew did not panic")
				}
			}()
			f()
		}(f)
	}
}

package engine

import (
	"fmt"

	"fedclust/internal/fl"
	"fedclust/internal/obs"
)

// Clustered-schedule checkpoint section names (RunClusteredFedAvg owns
// these; PACFL and FedClust read them back through ResumeClustered).
const (
	secClusteredLabels = "clustered/labels"
	secClusteredModels = "clustered/models"
	secClusteredMeta   = "clustered/meta"
)

// secRobustAgg records the aggregation strategy a checkpoint was written
// under (FNV-1a of its identity name), so a resume under a different
// defense is refused — the restored server state embeds every past
// combine's choice of strategy.
const secRobustAgg = "robust/agg"

// aggIdentity hashes the run's aggregation strategy name for the
// checkpoint identity section.
func aggIdentity(a fl.Aggregator) int64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range []byte(fl.AggregatorName(a)) {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return int64(h)
}

// verifyAggIdentity refuses a resume whose aggregation strategy differs
// from the checkpoint's. Checkpoints that predate the robust layer carry
// no section and resume only under the plain mean.
func (d *RoundDriver) verifyAggIdentity(c *fl.Checkpoint) {
	if !c.HasInts(secRobustAgg) {
		if d.Env.Aggregator != nil {
			panic(fmt.Sprintf("engine: resume: checkpoint written under plain mean aggregation but run uses %s", fl.AggregatorName(d.Env.Aggregator)))
		}
		return
	}
	got, err := c.Ints(secRobustAgg, 1)
	if err != nil {
		panic("engine: resume: " + err.Error())
	}
	if got[0] != aggIdentity(d.Env.Aggregator) {
		panic(fmt.Sprintf("engine: resume: checkpoint aggregation strategy differs from run's %s", fl.AggregatorName(d.Env.Aggregator)))
	}
}

// resume validates the checkpoint against this run and restores the
// accumulated Result and the method's server state. It returns the round
// index the loop continues from. Mismatches panic: cmd-level callers are
// expected to pre-validate with Checkpoint.Matches for a clean error, so
// reaching a mismatch here is a wiring bug, and silently training a
// different run would be worse than dying.
func (d *RoundDriver) resume(c *fl.Checkpoint) int {
	if err := c.Matches(d.Env, d.Res.Method, d.NumParams); err != nil {
		panic("engine: resume: " + err.Error())
	}
	d.verifyAggIdentity(c)
	if d.Hooks.LoadState == nil {
		panic(fmt.Sprintf("engine: %s cannot resume: method has no LoadState hook", d.Res.Method))
	}
	if err := c.RestoreResult(d.Res); err != nil {
		panic("engine: resume: " + err.Error())
	}
	if err := d.Hooks.LoadState(c); err != nil {
		panic("engine: resume: " + err.Error())
	}
	// Error-feedback residuals are part of the run's exact state: a
	// compressed run resumed without them would re-send coordinates the
	// original run had already fed back. The codec selection is identity,
	// like the aggregation strategy above.
	if d.es.ef != nil {
		if !fl.HasEFState(c) {
			panic("engine: resume: run uses a sparse codec but checkpoint carries no error-feedback state")
		}
		if err := d.es.ef.LoadFrom(c); err != nil {
			panic("engine: resume: " + err.Error())
		}
	} else if fl.HasEFState(c) {
		panic("engine: resume: checkpoint carries error-feedback state but run uses a dense codec")
	}
	return c.Round
}

// maybeCheckpoint emits a snapshot after a completed round when the
// environment's plan says so — every plan.Every rounds, or on a pulled
// trigger. The emitted checkpoint is self-contained (all state copied),
// so the sink may hold it while training keeps mutating the live buffers.
func (d *RoundDriver) maybeCheckpoint(round int) {
	plan := d.Env.Ckpt
	if plan == nil || plan.Sink == nil {
		return
	}
	due := plan.Every > 0 && (round+1)%plan.Every == 0
	if !due && plan.Trigger != nil && plan.Trigger() {
		due = true
	}
	if !due {
		return
	}
	// Re-arm the phase clock at the checkpoint body: the gap since the
	// round's last lap is glue, not checkpoint time (TotalNS still covers
	// it).
	if d.es.timing {
		d.es.stamp = obs.Now()
	}
	if d.Hooks.SaveState == nil {
		panic(fmt.Sprintf("engine: %s checkpoint requested but method has no SaveState hook", d.Res.Method))
	}
	c := fl.NewCheckpoint(d.Env, d.Res.Method, round+1, d.NumParams, plan.SpecHash)
	c.CaptureResult(d.Res)
	c.SetInts(secRobustAgg, []int64{aggIdentity(d.Env.Aggregator)})
	if d.es.ef != nil {
		d.es.ef.SaveTo(c)
	}
	d.Hooks.SaveState(c)
	plan.Sink(c)
	if ob := d.Env.Observer; ob != nil {
		ob.ObserveCheckpoint(round + 1)
	}
	d.es.lap(phCheckpoint)
	if obs.Enabled() {
		engineM().checkpoints.Inc()
	}
}

// ResumeClustered reads a clustered-FedAvg schedule's state (written by
// the SaveState hook RunClusteredFedAvg installs) from the environment's
// pending resume checkpoint. ok is false when there is nothing to resume
// for this method — the caller then runs its one-shot clustering phase as
// usual. On ok, the caller skips that phase entirely (its traffic and
// formation bookkeeping live in the restored Result) and passes the
// returned assignment and models straight to RunClusteredFedAvg.
func (d *RoundDriver) ResumeClustered() (labels []int, k int, models [][]float64, ok bool) {
	plan := d.Env.Ckpt
	if plan == nil || plan.Resume == nil || plan.Resume.Method != d.Res.Method {
		return nil, 0, nil, false
	}
	c := plan.Resume
	meta, err := c.Ints(secClusteredMeta, 1)
	if err != nil {
		panic("engine: resume: " + err.Error())
	}
	k = int(meta[0])
	if k < 1 || k > len(d.Env.Clients) {
		panic(fmt.Sprintf("engine: resume: checkpoint cluster count %d out of range", k))
	}
	labels, err = c.IntSlice(secClusteredLabels, len(d.Env.Clients))
	if err != nil {
		panic("engine: resume: " + err.Error())
	}
	for i, l := range labels {
		if l < 0 || l >= k {
			panic(fmt.Sprintf("engine: resume: client %d labeled %d outside [0,%d)", i, l, k))
		}
	}
	flat, err := c.Vec(secClusteredModels, k*d.NumParams)
	if err != nil {
		panic("engine: resume: " + err.Error())
	}
	models = make([][]float64, k)
	for i := range models {
		models[i] = append([]float64(nil), flat[i*d.NumParams:(i+1)*d.NumParams]...)
	}
	return labels, k, models, true
}

// bindClusteredCheckpoint installs the Save/Load hooks for the fixed
// assignment + per-cluster models schedule. LoadState only revalidates:
// ResumeClustered already delivered the restored state to the caller,
// which passed it into RunClusteredFedAvg.
func (d *RoundDriver) bindClusteredCheckpoint(labels []int, k int, models [][]float64) {
	d.Hooks.SaveState = func(c *fl.Checkpoint) {
		c.SetIntSlice(secClusteredLabels, labels)
		flat := make([]float64, 0, k*d.NumParams)
		for _, m := range models {
			flat = append(flat, m...)
		}
		c.SetVec(secClusteredModels, flat)
		c.SetInts(secClusteredMeta, []int64{int64(k)})
	}
	d.Hooks.LoadState = func(c *fl.Checkpoint) error {
		if _, err := c.Ints(secClusteredMeta, 1); err != nil {
			return err
		}
		if _, err := c.IntSlice(secClusteredLabels, len(labels)); err != nil {
			return err
		}
		_, err := c.Vec(secClusteredModels, k*d.NumParams)
		return err
	}
}

package engine_test

// Hostile-world suite at the engine seam: byzantine uplinks, churn
// windows, and concept drift must keep every determinism guarantee the
// benign scenario holds (worker counts, GOMAXPROCS, resume), the
// non-finite mask must stop a NaN-poisoned uplink before it reaches any
// aggregation, and the robust strategies must be exactly invisible at
// byzantine fraction 0.

import (
	"math"
	"runtime"
	"testing"

	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/scenario"
)

// hostileModel draws the full adversarial stack over the golden
// population: a sign-flip cohort, churners, and a drift cohort.
func hostileModel(n int) *scenario.Model {
	return scenario.New(scenario.Config{
		ByzantineFrac: 0.35, Attack: scenario.AttackSignFlip,
		ChurnFrac: 0.3, ChurnHorizon: 6,
		DriftFrac: 0.3, DriftRound: 2,
	}, 34, n)
}

// hostileTrainers covers both scenario interpretations (synchronous
// partial work and semi-async late delivery) plus the warmup-clustering
// methods whose feature phase sees corrupted uplinks.
func hostileTrainers() []fl.Trainer {
	return []fl.Trainer{
		methods.FedAvg{},
		methods.IFCA{K: 2},
		&core.FedClust{},
		methods.FedAvgStale{},
		methods.FedBuff{},
	}
}

// TestHostileResultsBitIdenticalAcrossWorkerCounts extends the
// determinism matrix to the full hostile stack under a robust
// aggregator: which worker trains (and corrupts) an attacker's visit
// must not move a single bit.
func TestHostileResultsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, tr := range hostileTrainers() {
		var want string
		for _, workers := range []int{1, 2, 8} {
			env := goldenEnv(34, 3, fl.Participation{})
			env.EvalEvery = 1
			env.Workers = workers
			env.Participation.Scenario = hostileModel(len(env.Clients))
			env.Aggregator = &fl.TrimmedMean{Frac: 0.35}
			got := fingerprint(tr.Run(env))
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: workers=%d diverged:\n  got  %s\n  want %s",
					tr.Name(), workers, got, want)
			}
		}
	}
}

// TestHostileResultsBitIdenticalAcrossGOMAXPROCS: same matrix, runtime
// parallelism axis, and a different defense (Krum exercises the distance
// matrix path).
func TestHostileResultsBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	for _, tr := range hostileTrainers() {
		var want string
		for _, procs := range []int{1, 2, 4} {
			old := runtime.GOMAXPROCS(procs)
			env := goldenEnv(34, 3, fl.Participation{})
			env.EvalEvery = 1
			env.Workers = 4
			env.Participation.Scenario = hostileModel(len(env.Clients))
			env.Aggregator = &fl.Krum{Frac: 0.2, M: 3}
			got := fingerprint(tr.Run(env))
			runtime.GOMAXPROCS(old)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: GOMAXPROCS=%d diverged:\n  got  %s\n  want %s",
					tr.Name(), procs, got, want)
			}
		}
	}
}

// TestBenignHostileConfigReproducesGoldenFingerprints: satellite no-op
// pin — a scenario whose hostile knobs are all zero (with the hostile
// defaults explicitly spelled) must reproduce the PR 1 fingerprints bit
// for bit on the historical nil-aggregator path. A trimmed aggregator
// with nothing to trim is the mean of the same updates but computed in
// delta space (Combine aggregates {local − start} and re-adds the
// start), so it reproduces the golden run to rounding, not to the bit —
// that weaker, mathematical form of the byzantine-fraction-0 identity is
// pinned alongside.
func TestBenignHostileConfigReproducesGoldenFingerprints(t *testing.T) {
	benignScenario := func(n int) *scenario.Model {
		return scenario.New(scenario.Config{
			Deadline: 1, ByzantineFrac: 0, Attack: scenario.AttackSignFlip,
			AttackScale: 10, LabelNoiseRate: 0.5,
			ChurnFrac: 0, DriftFrac: 0, DriftShift: 1,
		}, 77, n)
	}
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			env := goldenEnv(77, 6, c.part)
			env.Participation.Scenario = benignScenario(len(env.Clients))
			res := c.trainer().Run(env)
			if got := fingerprint(res); got != c.want {
				t.Errorf("benign hostile config perturbed the result\n got: %s\nwant: %s", got, c.want)
			}

			env = goldenEnv(77, 6, c.part)
			env.Participation.Scenario = benignScenario(len(env.Clients))
			env.Aggregator = &fl.TrimmedMean{Frac: 0}
			rob := c.trainer().Run(env)
			if rob.FinalAcc != res.FinalAcc {
				t.Errorf("no-trim aggregator moved accuracy: %v != %v", rob.FinalAcc, res.FinalAcc)
			}
			if diff := math.Abs(rob.FinalLoss - res.FinalLoss); diff > 1e-9*math.Abs(res.FinalLoss) {
				t.Errorf("no-trim aggregator moved loss beyond rounding: %v != %v", rob.FinalLoss, res.FinalLoss)
			}
			if rob.Comm.UpBytes != res.Comm.UpBytes || rob.Comm.DownBytes != res.Comm.DownBytes {
				t.Errorf("no-trim aggregator changed communication: %+v != %+v", rob.Comm, res.Comm)
			}
		})
	}
}

// poisonScenario is a HostileScenario that uplinks NaN from one client —
// the byzantine payload no aggregator can average away, which the
// engine's non-finite mask must therefore stop up front.
type poisonScenario struct {
	client int
	value  float64
}

func (p *poisonScenario) Outcome(client, round, epochs int) (done, lag int) { return epochs, 0 }
func (p *poisonScenario) Fingerprint() uint64                               { return 0xbad }
func (p *poisonScenario) CorruptUpdate(client, round int, out, start []float64) bool {
	if client != p.client {
		return false
	}
	for j := range out {
		out[j] = p.value
	}
	return true
}
func (p *poisonScenario) TrainData(client, round int, base *data.Dataset) *data.Dataset {
	return base
}

// defenseLog records ObserveDefense calls (and satisfies RoundObserver
// with no-ops).
type defenseLog struct {
	masked, suspects int
	rounds           int
}

func (d *defenseLog) ObserveRunStart(string, int, int, int)       {}
func (d *defenseLog) ObserveRoundStart(int, int)                  {}
func (d *defenseLog) ObserveOutcome(int, int, int, bool)          {}
func (d *defenseLog) ObserveRoundEnd(int, int, *fl.CommStats)     {}
func (d *defenseLog) ObserveEval(int, float64, float64)           {}
func (d *defenseLog) ObserveCheckpoint(int)                       {}
func (d *defenseLog) ObserveDefense(round, masked, suspects int) {
	d.masked += masked
	d.suspects += suspects
	d.rounds++
}

// TestNonFiniteUplinkIsMaskedNotAggregated: a client streaming NaN (and
// ±Inf) must be counted as failed and excluded — the global model stays
// finite, the run completes, and the defense observer sees the mask.
func TestNonFiniteUplinkIsMaskedNotAggregated(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		env := goldenEnv(77, 3, fl.Participation{})
		env.EvalEvery = 1
		log := &defenseLog{}
		env.Observer = log
		env.Participation.Scenario = &poisonScenario{client: 2, value: v}
		res := methods.FedAvg{}.Run(env)
		if math.IsNaN(res.FinalAcc) || math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
			t.Fatalf("poison %v reached the global model: acc=%v loss=%v", v, res.FinalAcc, res.FinalLoss)
		}
		if log.masked != env.Rounds {
			t.Fatalf("poison %v: masked %d uplinks over %d rounds, want one per round",
				v, log.masked, env.Rounds)
		}
		if log.rounds != env.Rounds {
			t.Fatalf("ObserveDefense fired %d times, want %d", log.rounds, env.Rounds)
		}
	}
}

// TestDefenseSuspectCountsReachObserver: with a sign-flip cohort and a
// trimming defense, the per-round suspect tallies must reach the
// observer (2k per global combine).
func TestDefenseSuspectCountsReachObserver(t *testing.T) {
	env := goldenEnv(34, 3, fl.Participation{})
	log := &defenseLog{}
	env.Observer = log
	env.Participation.Scenario = scenario.New(scenario.Config{
		ByzantineFrac: 0.35, Attack: scenario.AttackSignFlip,
	}, 34, len(env.Clients))
	env.Aggregator = &fl.TrimmedMean{Frac: 0.2}
	methods.FedAvg{}.Run(env)
	// 6 clients, frac 0.2 → k=1 per side → 2 suspects per round.
	if want := 2 * env.Rounds; log.suspects != want {
		t.Fatalf("suspects=%d, want %d", log.suspects, want)
	}
	if log.masked != 0 {
		t.Fatalf("masked=%d for finite uplinks, want 0", log.masked)
	}
}

// TestHostileResumeEquivalence extends the resume matrix: a hostile run
// (byzantine + churn + drift, robust aggregator) restored from any
// checkpoint must finish bit-identically to the uninterrupted run.
func TestHostileResumeEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		trainer func() fl.Trainer
		agg     func() fl.Aggregator
	}{
		{"FedAvg+trimmed", func() fl.Trainer { return methods.FedAvg{} },
			func() fl.Aggregator { return &fl.TrimmedMean{Frac: 0.35} }},
		{"FedClust+krum", func() fl.Trainer { return &core.FedClust{} },
			func() fl.Aggregator { return &fl.Krum{Frac: 0.2, M: 3} }},
		{"FedBuff+median", func() fl.Trainer { return methods.FedBuff{} },
			func() fl.Aggregator { return &fl.Median{} }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mkEnv := func() *fl.Env {
				env := goldenEnv(34, 6, fl.Participation{})
				env.EvalEvery = 2
				env.Participation.Scenario = hostileModel(len(env.Clients))
				env.Aggregator = tc.agg()
				return env
			}
			want, snaps := captureRun(t, tc.trainer(), mkEnv())
			for _, round := range []int{1, 3, 6} {
				if got := resumeRun(t, tc.trainer(), mkEnv(), snaps[round]); got != want {
					t.Errorf("resume from round %d diverged\n got: %s\nwant: %s", round, got, want)
				}
			}
		})
	}
}

// TestResumeRejectsAggregatorChange: the defense is part of a run's
// identity — a checkpoint taken under one aggregator (or none) must
// refuse to resume under another, since the arithmetic it pins would
// silently change.
func TestResumeRejectsAggregatorChange(t *testing.T) {
	for _, tc := range []struct {
		name            string
		capture, resume fl.Aggregator
	}{
		{"trimmed->krum", &fl.TrimmedMean{Frac: 0.2}, &fl.Krum{Frac: 0.2}},
		{"trimmed-frac-change", &fl.TrimmedMean{Frac: 0.2}, &fl.TrimmedMean{Frac: 0.3}},
		{"nil->median", nil, &fl.Median{}},
		{"median->nil", &fl.Median{}, nil},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			env := goldenEnv(77, 6, fl.Participation{})
			env.Aggregator = tc.capture
			_, snaps := captureRun(t, methods.FedAvg{}, env)
			ck, err := fl.DecodeCheckpoint(snaps[3])
			if err != nil {
				t.Fatal(err)
			}
			env = goldenEnv(77, 6, fl.Participation{})
			env.Aggregator = tc.resume
			env.Ckpt = &fl.CheckpointPlan{Resume: ck}
			defer func() {
				if recover() == nil {
					t.Fatal("resuming under a different aggregator did not panic")
				}
			}()
			methods.FedAvg{}.Run(env)
		})
	}
}

// TestResumeSameAggregatorSucceeds: the identity check accepts the
// matching defense — including parameter equality through the name.
func TestResumeSameAggregatorSucceeds(t *testing.T) {
	env := goldenEnv(77, 6, fl.Participation{})
	env.Aggregator = &fl.Krum{Frac: 0.2, M: 3}
	want, snaps := captureRun(t, methods.FedAvg{}, env)
	env = goldenEnv(77, 6, fl.Participation{})
	env.Aggregator = &fl.Krum{Frac: 0.2, M: 3}
	if got := resumeRun(t, methods.FedAvg{}, env, snaps[3]); got != want {
		t.Fatalf("same-aggregator resume diverged\n got: %s\nwant: %s", got, want)
	}
}

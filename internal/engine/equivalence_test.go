package engine_test

// Golden-equivalence tests: the engine-based trainers must reproduce,
// bit for bit, the results of the seed's hand-rolled round loops. The
// fingerprints below were captured by running the pre-refactor
// implementations (commit b15c818 plus go.mod) on the fixed workload in
// goldenEnv; any change to training arithmetic, communication accounting,
// participation sampling, evaluation, or cluster bookkeeping shows up as
// a fingerprint mismatch.
//
// The cases are chosen to cover every engine code path: full and partial
// participation with drop-outs (FedAvg), the proximal objective
// (FedProx), the recursive split machinery (CFL with permissive
// thresholds), multi-model broadcast with a custom Local hook (IFCA), and
// the one-shot pre-clustering phases (PACFL, FedClust).

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

// goldenEnv builds the fixed equivalence workload: 6 clients in two label
// groups ({0,1} vs {2,3}) on 8×8 synthetic images, an MLP(64,20,4), 6
// rounds with eval every 2, 3 executor workers. Do not change any of
// these constants — the golden fingerprints are tied to them.
func goldenEnv(seed uint64, rounds int, p fl.Participation) *fl.Env {
	cfg := data.SynthConfig{
		Name: "golden4", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: 40, TestPerClass: 16,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
	}
	train, test := data.Generate(cfg)
	clients, _ := fl.BuildGroupClients(train, test,
		[][]int{{0, 1}, {2, 3}}, []int{3, 3}, rng.New(seed))
	return &fl.Env{
		Clients:       clients,
		Factory:       func(fr *rng.Rng) *nn.Sequential { return nn.MLP(fr, 64, 20, 4) },
		Rounds:        rounds,
		Local:         fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9},
		Seed:          seed,
		EvalEvery:     2,
		Workers:       3,
		Participation: p,
	}
}

// fingerprint reduces a Result to an exact (float-bit-level) signature of
// everything the paper's experiments read off it.
func fingerprint(res *fl.Result) string {
	h := fnv.New64a()
	w := func(v uint64) { _ = binary.Write(h, binary.LittleEndian, v) }
	for _, a := range res.PerClientAcc {
		w(math.Float64bits(a))
	}
	for _, m := range res.History {
		w(uint64(m.Round))
		w(math.Float64bits(m.MeanAcc))
		w(math.Float64bits(m.MeanLoss))
	}
	return fmt.Sprintf("acc=%016x loss=%016x up=%d down=%d form=%d formUp=%d clusters=%v h=%016x",
		math.Float64bits(res.FinalAcc), math.Float64bits(res.FinalLoss),
		res.Comm.UpBytes, res.Comm.DownBytes,
		res.ClusterFormationRound, res.ClusterFormationUpBytes,
		res.Clusters, h.Sum64())
}

// goldenCases pairs each trainer configuration with the fingerprint its
// pre-engine implementation produced on goldenEnv(77, 6, part). The
// traffic fields (up/down/formUp) were re-pinned when comm accounting
// switched from the 8·scalars estimate to full framed transport bytes
// (envelope + metadata + wire frame); every learning field — accuracies,
// losses, history hash, clusters — is still the seed's, bit for bit.
var goldenCases = []struct {
	name    string
	trainer func() fl.Trainer
	part    fl.Participation
	want    string
}{
	{"FedAvg", func() fl.Trainer { return methods.FedAvg{} }, fl.Participation{},
		"acc=3fecfa4fa4fa4fa4 loss=3fcaf81f04cee325 up=399384 down=401364 form=-1 formUp=0 clusters=[] h=8a7b5f0b9a50518a"},
	{"FedAvg/partial", func() fl.Trainer { return methods.FedAvg{} }, fl.Participation{Fraction: 0.5, DropRate: 0.25},
		"acc=3fef05b05b05b05b loss=3fc5cfc7c63ed6a9 up=144222 down=200682 form=-1 formUp=0 clusters=[] h=18d18fbbdcad4dc3"},
	{"FedProx", func() fl.Trainer { return methods.FedProx{Mu: 0.1} }, fl.Participation{},
		"acc=3fecfa4fa4fa4fa4 loss=3fcb7191c1d88124 up=399384 down=401364 form=-1 formUp=0 clusters=[] h=fee58494db1a1633"},
	{"CFL", func() fl.Trainer { return methods.CFL{} }, fl.Participation{},
		"acc=3fecfa4fa4fa4fa4 loss=3fcaf81f04cee325 up=399384 down=401364 form=0 formUp=0 clusters=[0 0 0 0 0 0] h=8a7b5f0b9a50518a"},
	{"CFL/split", func() fl.Trainer { return methods.CFL{WarmupRounds: 2, Eps1: 0.8, Eps2: 0.1} }, fl.Participation{},
		"acc=3fef05b05b05b05b loss=3fb809773bae14e8 up=399384 down=401364 form=3 formUp=199692 clusters=[0 0 0 1 1 1] h=01e8190dda165dfa"},
	{"IFCA", func() fl.Trainer { return methods.IFCA{K: 2} }, fl.Participation{},
		"acc=3fecfa4fa4fa4fa4 loss=3fcaf81f04cee325 up=399384 down=799956 form=1 formUp=66564 clusters=[0 0 0 0 0 0] h=8a7b5f0b9a50518a"},
	{"PACFL", func() fl.Trainer { return methods.PACFL{} }, fl.Participation{},
		"acc=3fef05b05b05b05b loss=3fb5c43da15c46f3 up=408732 down=401364 form=0 formUp=9348 clusters=[0 0 0 1 1 1] h=40c8a6da5fbfc6a7"},
	{"FedClust", func() fl.Trainer { return &core.FedClust{} }, fl.Participation{},
		"acc=3fef05b05b05b05b loss=3fb5c43da15c46f3 up=403548 down=468258 form=0 formUp=4164 clusters=[0 0 0 1 1 1] h=40c8a6da5fbfc6a7"},
}

// TestEngineReproducesSeedResults runs every trainer through the shared
// round engine and compares against the pre-refactor fingerprints.
func TestEngineReproducesSeedResults(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			env := goldenEnv(77, 6, c.part)
			res := c.trainer().Run(env)
			if got := fingerprint(res); got != c.want {
				t.Errorf("result drifted from seed implementation\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
}

// TestEngineWorkerCountInvariance: results must not depend on executor
// parallelism — the pool gives each worker its own model, and every
// client's arithmetic is keyed by client index, not worker.
func TestEngineWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("worker sweep is covered by the golden cases in -short mode")
	}
	for _, workers := range []int{1, 2, 5, 16} {
		env := goldenEnv(77, 6, fl.Participation{})
		env.Workers = workers
		res := (&core.FedClust{}).Run(env)
		want := goldenCases[len(goldenCases)-1].want
		if got := fingerprint(res); got != want {
			t.Errorf("workers=%d drifted\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

package engine_test

// Golden no-op regression: the scenario layer must be invisible when it
// does nothing. Two levels are pinned against the pre-scenario
// (seed-equivalent) fingerprints in goldenCases:
//
//  1. Scenario == nil (the `-scenario` off path) — covered by
//     TestEngineReproducesSeedResults, which runs the exact goldenCases.
//  2. A benign scenario attached (zero straggler cohort, zero dropout,
//     deadline 1): every client finishes on time, so the filtered
//     reported set, the per-visit epoch counts, and the aggregation
//     weights must all collapse to the scenario-free values — per-method
//     accuracy trajectories, traffic, and cluster bookkeeping included,
//     bit for bit.
//
// Together they prove enabling the machinery without hostile settings is
// a no-op, i.e. every scenario branch in the engine is exactly neutral
// at the benign point.

import (
	"testing"

	"fedclust/internal/scenario"
)

func TestBenignScenarioReproducesGoldenFingerprints(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			env := goldenEnv(77, 6, c.part)
			env.Participation.Scenario = scenario.New(scenario.Config{
				StragglerFrac: 0, DropoutRate: 0, Deadline: 1,
			}, 77, len(env.Clients))
			res := c.trainer().Run(env)
			if got := fingerprint(res); got != c.want {
				t.Errorf("benign scenario perturbed the result\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
}

package engine_test

// Parallelism-determinism suite: results must be bit-identical however
// the work is spread — any Env.Workers, any GOMAXPROCS, first run or
// warm cached runtime. The guarantees under test: client tasks and
// evaluation are partitioning-insensitive (per-client work depends only
// on the (client, round) stream, never on which worker runs it), the
// executor's dynamic index handoff does not reorder any aggregation
// arithmetic (Locals are written to fixed arena slots and folded in
// client order), and the tensor kernels' parallel row blocks preserve
// per-element summation order.

import (
	"runtime"
	"testing"

	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/scenario"
)

// trainersUnderTest covers the default Local hook (FedAvg), partial
// participation with drop-outs (sampling buffers), a custom Local hook
// with per-visit rng (IFCA), and the one-shot clustering + clustered
// FedAvg schedule (FedClust).
func determinismTrainers() []fl.Trainer {
	return []fl.Trainer{
		methods.FedAvg{},
		methods.IFCA{K: 2},
		&core.FedClust{},
	}
}

func TestResultsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	part := fl.Participation{Fraction: 0.8, DropRate: 0.2}
	for _, tr := range determinismTrainers() {
		var want string
		for _, workers := range []int{1, 2, 8} {
			env := goldenEnv(31, 3, part)
			env.EvalEvery = 1
			env.Workers = workers
			got := fingerprint(tr.Run(env))
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: workers=%d diverged:\n  got  %s\n  want %s",
					tr.Name(), workers, got, want)
			}
		}
	}
}

func TestResultsBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	for _, tr := range determinismTrainers() {
		var want string
		for _, procs := range []int{1, 2, 4} {
			old := runtime.GOMAXPROCS(procs)
			env := goldenEnv(32, 3, fl.Participation{})
			env.EvalEvery = 1
			env.Workers = 4
			got := fingerprint(tr.Run(env))
			runtime.GOMAXPROCS(old)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: GOMAXPROCS=%d diverged:\n  got  %s\n  want %s",
					tr.Name(), procs, got, want)
			}
		}
	}
}

// TestScenarioResultsBitIdenticalAcrossWorkerCounts extends the matrix
// to scenario-enabled rounds: straggler rates 0 and 0.3 (with dropouts
// and jitter alongside) × Workers 1/2/8. The scenario outcomes are
// computed serially before the parallel phase and keyed only by
// (client, round), so which worker trains a straggler's partial pass —
// or skips a dropout — must not move a single bit. The matrix also
// covers both scenario interpretations: synchronous partial work
// (FedAvg, IFCA, FedClust) and semi-async late delivery (FedAvgStale,
// FedBuff).
func TestScenarioResultsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	trainers := append(determinismTrainers(),
		methods.FedAvgStale{}, methods.FedBuff{})
	for _, rate := range []float64{0, 0.3} {
		for _, tr := range trainers {
			var want string
			for _, workers := range []int{1, 2, 8} {
				env := goldenEnv(34, 3, fl.Participation{})
				env.EvalEvery = 1
				env.Workers = workers
				env.Participation.Scenario = scenario.New(scenario.Config{
					StragglerFrac: rate, SlowdownMax: 4, DropoutRate: rate / 2,
					Deadline: 0.75, Jitter: 0.2,
				}, 34, len(env.Clients))
				got := fingerprint(tr.Run(env))
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s (straggler rate %v): workers=%d diverged:\n  got  %s\n  want %s",
						tr.Name(), rate, workers, got, want)
				}
			}
		}
	}
}

// TestResultsBitIdenticalOnWarmRuntime: rerunning a method on the same
// environment reuses the cached runtime (model pool, arenas, scratch);
// the results must match the cold run exactly, and an interleaved other
// method must not perturb either.
func TestResultsBitIdenticalOnWarmRuntime(t *testing.T) {
	env := goldenEnv(33, 3, fl.Participation{})
	env.EvalEvery = 1
	cold := fingerprint(methods.FedAvg{}.Run(env))
	if warm := fingerprint(methods.FedAvg{}.Run(env)); warm != cold {
		t.Fatalf("warm FedAvg diverged:\n  cold %s\n  warm %s", cold, warm)
	}
	methods.IFCA{K: 2}.Run(env)
	if warm := fingerprint(methods.FedAvg{}.Run(env)); warm != cold {
		t.Fatalf("FedAvg after interleaved IFCA diverged:\n  cold %s\n  warm %s", cold, warm)
	}
}

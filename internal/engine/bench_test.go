package engine_test

import (
	"testing"

	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/scenario"
)

// benchEnv mirrors the golden equivalence workload: 6 clients in two
// label groups on 1×8×8 synthetic images, MLP(64,20,4), 3 workers.
func benchEnv(rounds int) *fl.Env {
	cfg := data.SynthConfig{
		Name: "bench4", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: 40, TestPerClass: 16,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: 21,
	}
	train, test := data.Generate(cfg)
	clients, _ := fl.BuildGroupClients(train, test,
		[][]int{{0, 1}, {2, 3}}, []int{3, 3}, rng.New(21))
	return &fl.Env{
		Clients: clients,
		Factory: func(fr *rng.Rng) *nn.Sequential { return nn.MLP(fr, 64, 20, 4) },
		Rounds:  rounds,
		Local:   fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9},
		Seed:    21,
		Workers: 3,
	}
}

// BenchmarkRoundDriverRound measures one full FedAvg round through the
// shared engine — participation, parallel local training over the model
// pool, aggregation, and the final-round personalized evaluation.
func BenchmarkRoundDriverRound(b *testing.B) {
	env := benchEnv(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		methods.FedAvg{}.Run(env)
	}
}

// BenchmarkRoundDriverRound32 is BenchmarkRoundDriverRound on the
// float32 compute path — the whole-round speedup pair for
// BENCH_pr7.json (local training, aggregation plumbing, and the
// final-round evaluation all included).
func BenchmarkRoundDriverRound32(b *testing.B) {
	env := benchEnv(1)
	env.DType = fl.Float32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		methods.FedAvg{}.Run(env)
	}
}

// BenchmarkRoundDriverRoundScenario is BenchmarkRoundDriverRound with
// the system-heterogeneity layer active (stragglers, dropouts, jitter,
// partial-work weighting) — the direct scenario-on/off comparison for
// BENCH_pr4.json. Skipped dropouts make scenario rounds cheaper than
// ideal ones; the point of the pair is that the layer's own bookkeeping
// adds no allocations and negligible time.
func BenchmarkRoundDriverRoundScenario(b *testing.B) {
	env := benchEnv(1)
	env.Participation.Scenario = scenario.New(scenario.Config{
		StragglerFrac: 0.3, SlowdownMax: 4, DropoutRate: 0.2,
		Deadline: 0.75, Jitter: 0.2,
	}, 21, len(env.Clients))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		methods.FedAvg{}.Run(env)
	}
}

// BenchmarkScenarioOutcome measures one per-(client, round) outcome
// query — the engine calls this n times per round, so it must stay in
// the tens of nanoseconds with zero allocations.
func BenchmarkScenarioOutcome(b *testing.B) {
	m := scenario.New(scenario.Config{
		StragglerFrac: 0.3, SlowdownMax: 4, DropoutRate: 0.2,
		Deadline: 0.75, Jitter: 0.2,
	}, 21, 64)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		done, lag := m.Outcome(i&63, i>>6, 2)
		sink += done + lag
	}
	_ = sink
}

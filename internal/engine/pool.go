package engine

import (
	"fedclust/internal/fl"
	"fedclust/internal/nn"
)

// ModelPool holds one nn.Sequential per executor worker so the round loop
// trains and evaluates thousands of client visits without rebuilding the
// network. Every use loads the client's starting weights in place with
// nn.LoadParams, which overwrites all parameters, so reuse is
// bit-equivalent to a freshly built model.
//
// Invariants (see DESIGN.md §model pool):
//   - Slot w is only ever touched by executor worker w (fl.ParallelForWorker
//     guarantees worker ids are goroutine-stable), so no locking is needed.
//   - The environment's Factory must not embed mutable cross-call state
//     that survives LoadParams — e.g. an nn.Dropout layer's private RNG
//     stream would advance across pooled reuses where a fresh model would
//     restart it. The models in nn's zoo (Dense/Conv2D/ReLU/MaxPool2) are
//     all safe: their only mutable non-parameter state is forward caches
//     that each Forward call fully overwrites.
type ModelPool struct {
	env    *fl.Env
	models []*nn.Sequential
}

// NewModelPool sizes a pool for the environment's worker count.
func NewModelPool(env *fl.Env) *ModelPool {
	return &ModelPool{env: env, models: make([]*nn.Sequential, env.WorkerCount())}
}

// Get returns worker w's model, building it on first use (the pool's only
// env.NewModel call per worker). The weights are whatever the previous
// use left behind; callers must nn.LoadParams before relying on them.
func (p *ModelPool) Get(w int) *nn.Sequential {
	if p.models[w] == nil {
		p.models[w] = p.env.NewModel()
	}
	return p.models[w]
}

// Size returns the number of worker slots.
func (p *ModelPool) Size() int { return len(p.models) }

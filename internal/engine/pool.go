package engine

import (
	"fedclust/internal/fl"
	"fedclust/internal/nn"
)

// ModelPool holds one nn.Sequential per executor worker so the round loop
// trains and evaluates thousands of client visits without rebuilding the
// network. Every use loads the client's starting weights in place with
// nn.LoadParams, which overwrites all parameters, so reuse is
// bit-equivalent to a freshly built model.
//
// Invariants (see DESIGN.md §model pool):
//   - Slot w is only ever touched by executor worker w (fl.ParallelForWorker
//     guarantees worker ids are goroutine-stable), so no locking is needed.
//   - The environment's Factory must not embed mutable cross-call state
//     that survives LoadParams and changes behaviour. Forward caches and
//     layer workspaces are safe (every use overwrites them), and
//     stochastic layers are safe because local training rebases their
//     streams per visit via nn.Sequential.SeedStep — an nn.Dropout draws
//     its masks from the visit's (client, round) stream, not a stream
//     carried across pooled reuses.
type ModelPool struct {
	env    *fl.Env
	models []*nn.Sequential
}

// NewModelPool sizes a pool for the environment's worker count.
func NewModelPool(env *fl.Env) *ModelPool {
	return &ModelPool{env: env, models: make([]*nn.Sequential, env.WorkerCount())}
}

// Get returns worker w's model, building it on first use (the pool's only
// env.NewModel call per worker). The weights are whatever the previous
// use left behind; callers must nn.LoadParams before relying on them.
func (p *ModelPool) Get(w int) *nn.Sequential {
	if p.models[w] == nil {
		p.models[w] = p.env.NewModel()
	}
	return p.models[w]
}

// Size returns the number of worker slots.
func (p *ModelPool) Size() int { return len(p.models) }

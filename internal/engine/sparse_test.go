package engine_test

// Sparse-codec engine suite: top-k uplinks with error feedback must keep
// every determinism guarantee the dense paths have — bit-identical
// results across executor parallelism, across checkpoint/resume with
// live residual state, and (degenerately) against the Float64 golden
// path when the frame keeps everything.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"testing"

	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/scenario"
	"fedclust/internal/wire"
)

// learnFingerprint is fingerprint without the traffic fields: sparse
// frames are priced differently from dense ones by construction, so
// codec-equivalence claims compare only what training computed.
func learnFingerprint(res *fl.Result) string {
	h := fnv.New64a()
	w := func(v uint64) { _ = binary.Write(h, binary.LittleEndian, v) }
	for _, a := range res.PerClientAcc {
		w(math.Float64bits(a))
	}
	for _, m := range res.History {
		w(uint64(m.Round))
		w(math.Float64bits(m.MeanAcc))
		w(math.Float64bits(m.MeanLoss))
	}
	return fmt.Sprintf("acc=%016x loss=%016x clusters=%v h=%016x",
		math.Float64bits(res.FinalAcc), math.Float64bits(res.FinalLoss),
		res.Clusters, h.Sum64())
}

func sparseEnv(c wire.Codec, frac float64) *fl.Env {
	env := goldenEnv(77, 6, fl.Participation{})
	env.Codec = c
	env.TopKFrac = frac
	return env
}

// TestTopKFracOneMatchesFloat64Golden: at frac 1.0 a TopK frame carries
// all n coordinates as raw float64 bits and fresh residuals stay exactly
// zero (target == reconstruction), so every learning quantity must equal
// the dense golden run bit for bit — the identity that anchors the
// sparse path to the seed fingerprints.
func TestTopKFracOneMatchesFloat64Golden(t *testing.T) {
	for _, trainer := range []func() fl.Trainer{
		func() fl.Trainer { return methods.FedAvg{} },
		func() fl.Trainer { return &core.FedClust{} },
	} {
		dense := trainer().Run(sparseEnv(wire.Float64, 0))
		sparse := trainer().Run(sparseEnv(wire.TopK, 1.0))
		if got, want := learnFingerprint(sparse), learnFingerprint(dense); got != want {
			t.Errorf("%s: TopK frac=1.0 diverged from Float64\n got: %s\nwant: %s",
				dense.Method, got, want)
		}
		if sparse.Comm.UpBytes >= dense.Comm.UpBytes*2 {
			t.Errorf("%s: frac=1.0 sparse uplink %d bytes looks mispriced (dense %d)",
				dense.Method, sparse.Comm.UpBytes, dense.Comm.UpBytes)
		}
	}
}

// sparseDeterminismTrainers: the default Local hook (FedAvg), the
// clustered schedule (FedClust), and semi-async late delivery
// (FedAvgStale) — each exercises the EF accumulator from a different
// engine path.
func sparseDeterminismTrainers() []fl.Trainer {
	return []fl.Trainer{
		methods.FedAvg{},
		&core.FedClust{},
		methods.FedAvgStale{},
	}
}

// TestSparseResultsBitIdenticalAcrossWorkerCounts extends the
// determinism matrix to compressed runs: residual rows are owned per
// client and EF scratch per worker, so which worker compresses a visit
// must not move a single bit.
func TestSparseResultsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, c := range []wire.Codec{wire.TopK, wire.TopKQuant8} {
		for _, tr := range sparseDeterminismTrainers() {
			var want string
			for _, workers := range []int{1, 2, 8} {
				env := sparseEnv(c, 0.01)
				env.Workers = workers
				got := fingerprint(tr.Run(env))
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s/%s: workers=%d diverged:\n  got  %s\n  want %s",
						tr.Name(), c, workers, got, want)
				}
			}
		}
	}
}

func TestSparseResultsBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	for _, tr := range sparseDeterminismTrainers() {
		var want string
		for _, procs := range []int{1, 2, 4} {
			old := runtime.GOMAXPROCS(procs)
			env := sparseEnv(wire.TopK, 0.01)
			env.Workers = 4
			got := fingerprint(tr.Run(env))
			runtime.GOMAXPROCS(old)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: GOMAXPROCS=%d diverged:\n  got  %s\n  want %s",
					tr.Name(), procs, got, want)
			}
		}
	}
}

// TestSparseResumeEquivalence: a compressed run interrupted mid-schedule
// carries live error-feedback residuals in its checkpoint (ef/ sections)
// and must resume to the exact uninterrupted fingerprint. Round 1 and 3
// resumes restore non-trivial residual state; round 6 restores the
// finished Result alone.
func TestSparseResumeEquivalence(t *testing.T) {
	for _, c := range []wire.Codec{wire.TopK, wire.TopKQuant8} {
		for _, mk := range []func() fl.Trainer{
			func() fl.Trainer { return methods.FedAvg{} },
			func() fl.Trainer { return &core.FedClust{} },
		} {
			env := sparseEnv(c, 0.01)
			want, snaps := captureRun(t, mk(), env)
			ck, err := fl.DecodeCheckpoint(snaps[3])
			if err != nil {
				t.Fatal(err)
			}
			if !fl.HasEFState(ck) {
				t.Fatalf("%s mid-run checkpoint carries no error-feedback sections", c)
			}
			for _, round := range []int{1, 3, 6} {
				env := sparseEnv(c, 0.01)
				if got := resumeRun(t, mk(), env, snaps[round]); got != want {
					t.Errorf("%s/%s: resume from round %d diverged\n got: %s\nwant: %s",
						mk().Name(), c, round, got, want)
				}
			}
		}
	}
}

// TestSparseResumeUnderScenario: the hardest combination — semi-async
// staleness, a hostile scenario, and sparse EF state — still resumes bit
// exactly.
func TestSparseResumeUnderScenario(t *testing.T) {
	mkEnv := func() *fl.Env {
		env := goldenEnv(34, 6, fl.Participation{})
		env.Codec = wire.TopK
		env.TopKFrac = 0.05
		env.EvalEvery = 2
		env.Participation.Scenario = scenario.New(scenario.Config{
			StragglerFrac: 0.3, SlowdownMax: 4, DropoutRate: 0.15,
			Deadline: 0.75, Jitter: 0.2,
		}, 34, len(env.Clients))
		return env
	}
	want, snaps := captureRun(t, methods.FedAvgStale{}, mkEnv())
	for _, round := range []int{1, 3, 6} {
		if got := resumeRun(t, methods.FedAvgStale{}, mkEnv(), snaps[round]); got != want {
			t.Errorf("resume from round %d diverged\n got: %s\nwant: %s", round, got, want)
		}
	}
}

// TestSparseResumeRejectsCodecChange: EF state is part of a run's
// identity — restoring a TopK checkpoint into a TopKQuant8 run must
// refuse rather than silently continue with residuals computed under a
// different quantizer.
func TestSparseResumeRejectsCodecChange(t *testing.T) {
	env := sparseEnv(wire.TopK, 0.01)
	_, snaps := captureRun(t, methods.FedAvg{}, env)
	ck, err := fl.DecodeCheckpoint(snaps[3])
	if err != nil {
		t.Fatal(err)
	}
	env = sparseEnv(wire.TopKQuant8, 0.01)
	env.Ckpt = &fl.CheckpointPlan{Resume: ck}
	defer func() {
		if recover() == nil {
			t.Fatal("resuming a TopK checkpoint under TopKQuant8 did not panic")
		}
	}()
	methods.FedAvg{}.Run(env)
}

package engine_test

// Float32-path determinism and divergence suite. The float32 compute
// path must honor the same scheduling contract as float64 — results are
// bit-identical however the work is spread (the float32 kernels' row
// blocks preserve per-element summation order, and one SIMD-vs-generic
// dispatch is chosen per process) — and its end-of-run results must stay
// within float32 accumulation distance of the float64 golden reference,
// which the untouched equivalence suite continues to pin exactly.

import (
	"math"
	"runtime"
	"testing"

	"fedclust/internal/fl"
	"fedclust/internal/methods"
)

func TestFloat32ResultsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	part := fl.Participation{Fraction: 0.8, DropRate: 0.2}
	for _, tr := range determinismTrainers() {
		var want string
		for _, workers := range []int{1, 2, 8} {
			env := goldenEnv(31, 3, part)
			env.EvalEvery = 1
			env.Workers = workers
			env.DType = fl.Float32
			got := fingerprint(tr.Run(env))
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: workers=%d diverged on float32:\n  got  %s\n  want %s",
					tr.Name(), workers, got, want)
			}
		}
	}
}

func TestFloat32ResultsBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	for _, tr := range determinismTrainers() {
		var want string
		for _, procs := range []int{1, 2, 4} {
			old := runtime.GOMAXPROCS(procs)
			env := goldenEnv(32, 3, fl.Participation{})
			env.EvalEvery = 1
			env.Workers = 4
			env.DType = fl.Float32
			got := fingerprint(tr.Run(env))
			runtime.GOMAXPROCS(old)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: GOMAXPROCS=%d diverged on float32:\n  got  %s\n  want %s",
					tr.Name(), procs, got, want)
			}
		}
	}
}

// TestFloat32RunTracksFloat64Within pins the end-of-run divergence
// bound: a full multi-round FedAvg run on the float32 path must land
// within 0.05 of the float64 reference on final mean accuracy and loss,
// and every recorded eval round must stay inside the same band. The
// band is ~10× the observed drift — it catches a wrong compute path,
// not rounding noise.
func TestFloat32RunTracksFloat64Within(t *testing.T) {
	run := func(dtype fl.DType) *fl.Result {
		env := goldenEnv(77, 6, fl.Participation{})
		env.EvalEvery = 2
		env.DType = dtype
		return methods.FedAvg{}.Run(env)
	}
	r64 := run(fl.Float64)
	r32 := run(fl.Float32)
	if d := math.Abs(r64.FinalAcc - r32.FinalAcc); d > 0.05 {
		t.Errorf("final accuracy diverged by %g: f64 %g vs f32 %g", d, r64.FinalAcc, r32.FinalAcc)
	}
	if d := math.Abs(r64.FinalLoss - r32.FinalLoss); d > 0.05 {
		t.Errorf("final loss diverged by %g: f64 %g vs f32 %g", d, r64.FinalLoss, r32.FinalLoss)
	}
	if len(r64.History) != len(r32.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(r64.History), len(r32.History))
	}
	for i := range r64.History {
		a, b := r64.History[i], r32.History[i]
		if d := math.Abs(a.MeanAcc - b.MeanAcc); d > 0.05 {
			t.Errorf("round %d accuracy diverged by %g", a.Round, d)
		}
		if d := math.Abs(a.MeanLoss - b.MeanLoss); d > 0.05 {
			t.Errorf("round %d loss diverged by %g", a.Round, d)
		}
	}
	// The wire accounting must be unchanged: the float32 compute path
	// still exchanges float64 vectors in-process.
	if r64.Comm.UpBytes != r32.Comm.UpBytes || r64.Comm.DownBytes != r32.Comm.DownBytes {
		t.Errorf("communication bytes diverged: f64 %d/%d vs f32 %d/%d",
			r64.Comm.UpBytes, r64.Comm.DownBytes, r32.Comm.UpBytes, r32.Comm.DownBytes)
	}
}

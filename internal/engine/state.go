package engine

import (
	"fedclust/internal/fl"
	"fedclust/internal/nn"
	"fedclust/internal/wire"
)

// envState is the engine's per-environment runtime: everything a
// RoundDriver needs that depends only on the environment's shape (client
// count, parameter count, worker count) and is expensive to rebuild —
// the per-worker model pool, the contiguous Locals arena, the worker
// contexts with their training scratch, the sampling/evaluation buffers,
// and the persistent executor tasks.
//
// It is cached on the environment across runs through
// fl.EnvShared.AcquireRuntime, so the steady state of a long experiment
// (many methods, many rounds on one Env) rebuilds none of it. Reuse is
// bit-equivalent to a fresh build: pooled models are fully overwritten
// by nn.LoadParams before every use, training scratch resets its
// optimizer state per visit, and identity caches (evalLast) never
// survive a call boundary. Concurrent runs on one environment fall back
// to a private, uncached envState.
//
// Reuse assumes the environment's Clients, Factory, Seed, and worker
// count are unchanged between runs — true for every trainer here,
// including FedProx's copied Env (only Local.ProxMu differs; rebind
// refreshes the Env pointer the contexts and hooks see). A run that
// changes Workers or the client set gets a fresh state via fits.
type envState struct {
	env       *fl.Env
	workers   int
	n         int
	numParams int
	// codec/frac are the Env codec selection the state was built for
	// (raw Env values, part of the cached shape — see fits). ef is the
	// shared error-feedback accumulator under a sparse codec, nil
	// otherwise; residuals are per-run state, reset on every rebind and
	// then restored by resume when a checkpoint carries them.
	codec wire.Codec
	frac  float64
	ef    *fl.ErrorFeedback

	pool    *ModelPool
	w0      []float64
	arena   []float64
	locals  [][]float64
	weights []float64
	all     []int
	ctxs    []*ClientCtx

	gatherVecs [][]float64
	gatherWs   []float64

	invited, reported []int // sampling buffers
	evalLast          [][]float64
	perClient         []float64

	// Scenario state for the current round (client-indexed), filled by
	// RunRound before the parallel phase when the environment carries a
	// Participation.Scenario. scenOn gates every scenario branch so a
	// scenario-free round takes exactly the pre-scenario code path.
	scenOn    bool
	cfgEpochs int    // configured local epochs the outcomes refer to
	done      []int  // epochs finished by the deadline (invited clients)
	lag       []int  // rounds late (0 on time, <0 offline)
	repMask   []bool // reported-set membership, for cluster gathers
	// maskOn gates repMask consultation: set by a scenario round (sample
	// fills the mask) or by a remote round after transport failures are
	// folded in. A plain round never reads the mask.
	maskOn bool

	// Per-round defense tallies: uplinks masked for non-finite values and
	// inputs the robust Aggregator excluded across the round's combines.
	// Reset by RunRound, read by DefenseCounts and the DefenseObserver.
	masked   int
	suspects int

	// Per-round phase timing (telemetry.go). timing is armed by
	// startRoundTiming when the process telemetry gate is up or the run's
	// observer implements fl.PhaseObserver; ph accumulates nanoseconds per
	// phase slot, stamp is the last lap boundary, roundT0 the round start.
	// All preallocated in the runtime so a timed round allocates nothing.
	timing       bool
	ph           [phCount]int64
	stamp        int64
	roundT0      int64
	lastInvited  int
	lastReported int

	// Robust-combine scratch (Combine): the per-input deltas from the
	// combine's starting point, backed by one flat arena, plus the
	// aggregated delta. Lazily sized to the largest (n, dim) seen.
	deltaFlat []float64
	deltas    [][]float64
	deltaOut  []float64

	// Remote-execution state (client-indexed), live when the environment
	// carries a RemoteTrainer. remoteMask caches Owns per client;
	// wireDown/wireUp collect each visit's measured transport bytes;
	// failMask marks visits whose update never arrived. All gated by
	// remoteOn so a transport-free round takes the pre-transport path.
	remoteOn   bool
	remoteMask []bool
	wireDown   []int64
	wireUp     []int64
	failMask   []bool
	visited    []bool // hook ran this round (remote rounds only)

	// Method-level scratch handed out by RoundDriver.InitGlobal and
	// StartsBuf (the global-model and clustered-FedAvg wiring).
	global []float64
	starts [][]float64

	// Current-round wiring read by the persistent executor tasks; set by
	// RunRound / evaluateServed before the parallel phase, cleared after.
	d          *RoundDriver
	curInvited []int
	curStarts  [][]float64
	curRound   int
	clientTask func(w, j int)
	evalPick   func(w, i int) *nn.Sequential
}

// newEnvState builds the runtime for env's current shape.
func newEnvState(env *fl.Env) *envState {
	n := len(env.Clients)
	es := &envState{
		env:     env,
		workers: env.WorkerCount(),
		n:       n,
		codec:   env.Codec,
		frac:    env.TopKFrac,
		pool:    NewModelPool(env),
	}
	proto := es.pool.Get(0)
	es.numParams = proto.NumParams()
	if env.Codec.Sparse() {
		es.ef = fl.NewErrorFeedback(env.Codec, fl.NormalizeTopKFrac(env.TopKFrac), n, es.numParams)
	}
	es.w0 = nn.FlattenParams(proto)
	es.arena = make([]float64, n*es.numParams)
	es.locals = make([][]float64, n)
	for i := range es.locals {
		es.locals[i] = es.arena[i*es.numParams : (i+1)*es.numParams : (i+1)*es.numParams]
	}
	es.weights = env.TrainSizes()
	es.all = make([]int, n)
	for i := range es.all {
		es.all[i] = i
	}
	es.ctxs = make([]*ClientCtx, es.pool.Size())
	for w := range es.ctxs {
		es.ctxs[w] = &ClientCtx{
			Env:     env,
			Scratch: &fl.TrainScratch{DType: env.DType},
			ef:      es.ef,
			up:      env.Codec,
			down:    env.Codec.Downlink(),
		}
	}
	es.gatherVecs = make([][]float64, 0, n)
	es.gatherWs = make([]float64, 0, n)
	es.evalLast = make([][]float64, es.pool.Size())
	es.perClient = make([]float64, n)
	es.done = make([]int, n)
	es.lag = make([]int, n)
	es.repMask = make([]bool, n)
	es.remoteMask = make([]bool, n)
	es.wireDown = make([]int64, n)
	es.wireUp = make([]int64, n)
	es.failMask = make([]bool, n)
	es.visited = make([]bool, n)
	// The failure-filter path rewrites the reported set in place; size
	// both sampling buffers up front so it never grows them mid-round.
	es.invited = make([]int, 0, n)
	es.reported = make([]int, 0, n)

	es.clientTask = func(w, j int) {
		i := es.curInvited[j]
		epochs := 0
		if es.scenOn {
			switch {
			case es.lag[i] < 0:
				return // offline: no work happens at all
			case es.d.Async:
				// Semi-async: slow clients run their full pass; only the
				// delivery is late. The aggregator reads the lag.
				epochs = es.cfgEpochs
			case es.done[i] == 0:
				return // sync dropout: work discarded, skip the compute
			default:
				epochs = es.done[i] // straggler: partial pass by deadline
			}
		}
		ctx := es.ctxs[w]
		ctx.Model = es.pool.Get(w)
		ctx.Client, ctx.Round = i, es.curRound
		ctx.Epochs = epochs
		ctx.Start = nil
		if es.curStarts != nil {
			ctx.Start = es.curStarts[i]
		}
		ctx.Out = es.locals[i]
		ctx.Cluster = -1
		if es.d.Hooks.ClusterOf != nil {
			ctx.Cluster = es.d.Hooks.ClusterOf(i)
		}
		ctx.WireDown, ctx.WireUp, ctx.Failed = 0, 0, false
		if es.d.Hooks.Local != nil {
			es.d.Hooks.Local(ctx)
		} else {
			DefaultLocal(ctx)
		}
		if es.remoteOn {
			es.wireDown[i], es.wireUp[i] = ctx.WireDown, ctx.WireUp
			es.visited[i] = true
		}
		if ctx.Failed {
			es.failMask[i] = true
		}
	}
	es.evalPick = func(w, i int) *nn.Sequential {
		vec := es.d.Hooks.Served(i)
		m := es.pool.Get(w)
		if es.evalLast[w] == nil || &es.evalLast[w][0] != &vec[0] {
			nn.LoadParams(m, vec)
			es.evalLast[w] = vec
		}
		return m
	}
	return es
}

// fits reports whether the cached state still matches the environment's
// current shape (tests mutate Workers between runs on one Env). The
// codec selection is part of the shape: the worker contexts' compression
// wiring and the error-feedback accumulator are built for one codec.
func (es *envState) fits(env *fl.Env) bool {
	return es.workers == env.WorkerCount() && es.n == len(env.Clients) &&
		es.codec == env.Codec && es.frac == env.TopKFrac
}

// rebind points the cached state at this run's Env pointer and driver.
// The Env may be a copy of the one the state was built for (FedProx);
// the contexts must see the copy so hook-visible config (Local) is the
// run's own. Remote ownership is re-cached here: Owns must be stable for
// the run, so one query per client up front keeps it off the hot path.
func (es *envState) rebind(env *fl.Env, d *RoundDriver) {
	es.env = env
	es.d = d
	for _, ctx := range es.ctxs {
		ctx.Env = env
		ctx.Scratch.DType = env.DType
	}
	es.remoteOn = env.Remote != nil
	if es.remoteOn {
		for i := range es.remoteMask {
			es.remoteMask[i] = env.Remote.Owns(i)
		}
	}
	// Residuals are per-run state: a cached runtime may have served a
	// previous method's run on this environment. Resume restores them
	// from the checkpoint after this reset.
	if es.ef != nil {
		es.ef.Reset()
	}
}

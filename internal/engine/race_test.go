package engine_test

// Concurrency coverage: these tests are written to put the executor, the
// per-worker model pool, and the shared evaluation protocol under real
// contention so `go test -race` can catch unsynchronized access. The
// seed's evaluation path shared one nn.Sequential across goroutines —
// whose layers cache forward activations — which the per-worker
// clone/pool design removed.

import (
	"sync/atomic"
	"testing"

	"fedclust/internal/core"
	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
)

// TestParallelForWorkerIDsAreGoroutineStable: worker ids must be disjoint
// across concurrently running goroutines, so per-worker state needs no
// locks. Each worker slot counts re-entrant use; any overlap trips the
// guard (and the -race detector via the unsynchronized busy flags).
func TestParallelForWorkerIDsAreGoroutineStable(t *testing.T) {
	const n, workers = 500, 8
	busy := make([]int32, workers)
	var visited int64
	fl.ParallelForWorker(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		if !atomic.CompareAndSwapInt32(&busy[w], 0, 1) {
			t.Errorf("worker slot %d used concurrently", w)
		}
		atomic.AddInt64(&visited, 1)
		atomic.StoreInt32(&busy[w], 0)
	})
	if visited != n {
		t.Fatalf("visited %d indices, want %d", visited, n)
	}
}

// TestParallelForWorkerCoversAllIndices: every index is run exactly once.
func TestParallelForWorkerCoversAllIndices(t *testing.T) {
	const n = 257
	counts := make([]int32, n)
	fl.ParallelForWorker(n, 7, func(_, i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d run %d times", i, c)
		}
	}
}

// TestModelPoolConcurrentTraining: hammer the pool with parallel local
// updates (the engine's client phase) — each worker must end up with its
// own network and no cross-worker sharing.
func TestModelPoolConcurrentTraining(t *testing.T) {
	env := goldenEnv(11, 1, fl.Participation{})
	env.Workers = 6
	pool := engine.NewModelPool(env)
	w0 := nn.FlattenParams(pool.Get(0))
	// Many passes over the client set so workers contend on the pool.
	for pass := 0; pass < 3; pass++ {
		env.ParallelClientsWorker(len(env.Clients), func(w, i int) {
			m := pool.Get(w)
			nn.LoadParams(m, w0)
			fl.LocalUpdate(m, env.Clients[i].Train, env.Local, env.ClientRng(i, pass))
		})
	}
	seen := map[*nn.Sequential]bool{}
	for w := 0; w < pool.Size(); w++ {
		m := pool.Get(w)
		if seen[m] {
			t.Fatal("two workers share one pooled model")
		}
		seen[m] = true
	}
}

// TestConcurrentEvaluatePersonalizedSharedModel: the historical race — a
// single served model evaluated by every client in parallel. The
// per-worker clones inside EvaluatePersonalized must keep this clean
// under -race and return the same numbers as serial evaluation.
func TestConcurrentEvaluatePersonalizedSharedModel(t *testing.T) {
	env := goldenEnv(12, 1, fl.Participation{})
	shared := env.NewModel()

	env.Workers = 8
	perPar, accPar, lossPar := env.EvaluatePersonalized(func(int) *nn.Sequential { return shared })
	env.Workers = 1
	perSer, accSer, lossSer := env.EvaluatePersonalized(func(int) *nn.Sequential { return shared })

	if accPar != accSer || lossPar != lossSer {
		t.Fatalf("parallel eval diverged: acc %v vs %v, loss %v vs %v", accPar, accSer, lossPar, lossSer)
	}
	for i := range perPar {
		if perPar[i] != perSer[i] {
			t.Fatalf("client %d accuracy diverged: %v vs %v", i, perPar[i], perSer[i])
		}
	}
}

// TestRuntimeClaimFallback: when the environment's cached runtime slot
// is held by someone else, a run must transparently build private state
// — and produce bit-identical results. (Fully concurrent runs on one Env
// remain unsupported one layer down: client Datasets own reusable
// batcher state; see DESIGN.md §6.)
func TestRuntimeClaimFallback(t *testing.T) {
	env := goldenEnv(14, 2, fl.Participation{})
	env.EvalEvery = 1
	want := methods.FedAvg{}.Run(env)

	v, ok := env.Shared().AcquireRuntime()
	if !ok {
		t.Fatal("runtime slot not claimable between runs")
	}
	got := methods.FedAvg{}.Run(env) // must fall back to private state
	env.Shared().ReleaseRuntime(v)

	if got.FinalAcc != want.FinalAcc || got.FinalLoss != want.FinalLoss {
		t.Fatalf("fallback run diverged: acc %v/%v loss %v/%v",
			got.FinalAcc, want.FinalAcc, got.FinalLoss, want.FinalLoss)
	}
	for i := range want.PerClientAcc {
		if got.PerClientAcc[i] != want.PerClientAcc[i] {
			t.Fatalf("fallback run: client %d acc diverged", i)
		}
	}
	// The released slot must still work afterwards.
	if res := (methods.FedAvg{}).Run(env); res.FinalAcc != want.FinalAcc {
		t.Fatal("cached runtime corrupted by fallback run")
	}
}

// TestTrainersUnderContention runs the engine-backed trainers with more
// workers than clients so the pool, arena writes, and evaluation all
// overlap aggressively; -race verifies the round loop is clean.
func TestTrainersUnderContention(t *testing.T) {
	trainers := []fl.Trainer{
		methods.FedAvg{},
		methods.CFL{WarmupRounds: 1, Eps1: 0.8, Eps2: 0.1},
		methods.IFCA{K: 2},
		&core.FedClust{},
	}
	for _, tr := range trainers {
		env := goldenEnv(13, 2, fl.Participation{})
		env.Workers = 16
		env.EvalEvery = 1
		res := tr.Run(env)
		if len(res.PerClientAcc) != len(env.Clients) {
			t.Fatalf("%s: missing per-client accuracies", res.Method)
		}
	}
}

//go:build !race

// The PR 10 extension of the steady-state allocation contract: a warm
// round with telemetry fully attached — the process gate enabled, phase
// timing armed, metrics flushing to the default registry, and a JSONL
// journal observer writing every round event — must still allocate
// nothing. Timing goes into preallocated per-round slots, the registry's
// hot paths are atomics, and the journal hand-appends into a reused
// buffer.

package engine_test

import (
	"io"
	"testing"

	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/obs"
)

func TestInstrumentedWarmRoundZeroAllocs(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	obs.SetEnabled(true)

	env := goldenEnv(25, 1<<20, fl.Participation{})
	env.EvalEvery = 2
	env.Observer = obs.NewJournal(io.Discard, env.Local.Epochs)
	d := engine.New(env, "alloc-instrumented")
	wireFedAvg(d)

	round := 0
	step := func() {
		// Run's per-round sequence minus checkpointing (no plan here):
		// FinishRound flushes the phase slots to the registry and hands
		// the round event to the journal.
		d.RunRound(round)
		d.FinishRound(round)
		round++
	}
	// Warm the runtime, the registry's engine series, and the journal's
	// event buffer.
	for round < 4 {
		step()
	}
	d.Res.Comm.PerRound = append(make([]fl.RoundComm, 0, 1<<12), d.Res.Comm.PerRound...)
	d.Res.History = append(make([]fl.RoundMetrics, 0, 1<<12), d.Res.History...)

	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Fatalf("instrumented warm round allocates %v times, want 0", n)
	}
}

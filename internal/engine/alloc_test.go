//go:build !race

// Steady-state allocation regression tests for the round engine: with
// the per-environment runtime cached and every parallel phase on the
// persistent executor, a warm round must allocate nothing — and a warm
// whole FedAvg run only its Result skeleton. Excluded under -race
// because the race runtime instruments allocations.

package engine_test

import (
	"testing"

	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/scenario"
)

// wireFedAvg wires the FedAvg hooks onto a driver without running it —
// the per-round harness drives RunRound directly.
func wireFedAvg(d *engine.RoundDriver) {
	global := d.InitGlobal()
	starts := d.StartsBuf()
	d.Hooks.Broadcast = func(int) [][]float64 {
		for i := range starts {
			starts[i] = global
		}
		return starts
	}
	d.Hooks.Aggregate = func(_ int, reported []int) {
		vecs, ws := d.Gather(reported)
		fl.WeightedAverageInto(global, vecs, ws)
	}
	d.Hooks.Served = func(int) []float64 { return global }
}

// TestRoundDriverWarmRoundZeroAllocs: a warm RunRound — sampling,
// broadcast, the parallel client phase over the pooled models,
// aggregation, comm accounting, and (every other round) the full
// evaluation protocol — performs zero steady-state heap allocations.
// The only per-round appends, Comm.PerRound and Res.History, are
// pre-grown so the test measures the round itself rather than slice
// growth.
func TestRoundDriverWarmRoundZeroAllocs(t *testing.T) {
	env := goldenEnv(21, 1<<20, fl.Participation{})
	env.EvalEvery = 2
	d := engine.New(env, "alloc")
	wireFedAvg(d)

	round := 0
	step := func() {
		d.RunRound(round)
		round++
	}
	// Warm everything: worker scratch, model pool, eval scratch, the
	// Result's PerClientAcc buffer (first eval allocates it once).
	for round < 4 {
		step()
	}
	d.Res.Comm.PerRound = append(make([]fl.RoundComm, 0, 1<<12), d.Res.Comm.PerRound...)
	d.Res.History = append(make([]fl.RoundMetrics, 0, 1<<12), d.Res.History...)

	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Fatalf("warm round allocates %v times, want 0", n)
	}
}

// TestRoundDriverWarmScenarioRoundZeroAllocs: the scenario layer must
// preserve the PR 3 invariant — a warm round with stragglers, dropouts,
// partial-work weighting, and the per-client outcome fill allocates
// nothing. Every scenario outcome query reseeds a stack Rng, the
// outcome/mask buffers are client-indexed arrays in the cached runtime,
// and the reported set reuses the sampling buffer.
func TestRoundDriverWarmScenarioRoundZeroAllocs(t *testing.T) {
	env := goldenEnv(23, 1<<20, fl.Participation{Fraction: 0.8, DropRate: 0.1})
	env.EvalEvery = 2
	env.Participation.Scenario = scenario.New(scenario.Config{
		StragglerFrac: 0.5, SlowdownMax: 4, DropoutRate: 0.25,
		Deadline: 0.75, Jitter: 0.2,
	}, 23, len(env.Clients))
	d := engine.New(env, "alloc-scenario")
	wireFedAvg(d)

	round := 0
	step := func() {
		d.RunRound(round)
		round++
	}
	for round < 4 {
		step()
	}
	d.Res.Comm.PerRound = append(make([]fl.RoundComm, 0, 1<<12), d.Res.Comm.PerRound...)
	d.Res.History = append(make([]fl.RoundMetrics, 0, 1<<12), d.Res.History...)

	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Fatalf("warm scenario round allocates %v times, want 0", n)
	}
}

// TestFedAvgWarmRunAllocs: a warm full FedAvg run on a cached
// environment stays within the Result-skeleton budget (driver + Result +
// hook closures + History/PerClientAcc). The bound is deliberately tight
// — the PR 3 acceptance ceiling is 50.
func TestFedAvgWarmRunAllocs(t *testing.T) {
	env := goldenEnv(22, 2, fl.Participation{})
	methods.FedAvg{}.Run(env) // build + warm the cached runtime
	if n := testing.AllocsPerRun(20, func() {
		methods.FedAvg{}.Run(env)
	}); n > 20 {
		t.Fatalf("warm FedAvg run allocates %v times, want <= 20", n)
	}
}

package engine

import (
	"sync"

	"fedclust/internal/fl"
	"fedclust/internal/obs"
)

// Phase slots for the per-round wall-clock breakdown. RunRound
// accumulates elapsed nanoseconds into the cached runtime's ph array via
// envState.lap — one obs.Now read per phase boundary, no allocations —
// and FinishRound flushes the filled slots into the metrics registry and
// the environment observer's ObservePhases.
const (
	phSample = iota
	phBroadcast
	phLocal
	phCombine
	phEval
	phCheckpoint
	phTotal
	phCount
)

var phaseNames = [phCount]string{
	"sample", "broadcast", "local", "combine", "eval", "checkpoint", "total",
}

// engineMetrics is the engine's bundle in the process registry, built
// once on first flush (registration allocates; flushing does not).
type engineMetrics struct {
	phase       [phCount]*obs.Histogram
	rounds      *obs.Counter
	checkpoints *obs.Counter
	masked      *obs.Counter
	suspects    *obs.Counter
	invited     *obs.Gauge
	reported    *obs.Gauge
}

var (
	engOnce sync.Once
	engM    *engineMetrics
)

func engineM() *engineMetrics {
	engOnce.Do(func() {
		r := obs.Default()
		m := &engineMetrics{}
		for i, name := range phaseNames {
			m.phase[i] = r.Histogram("fedsim_round_phase_seconds",
				obs.Label("phase", name),
				"Wall-clock seconds spent per round lifecycle phase.", nil)
		}
		m.rounds = r.Counter("fedsim_rounds_total", "",
			"Completed federation rounds.")
		m.checkpoints = r.Counter("fedsim_checkpoints_total", "",
			"Checkpoints handed to the sink.")
		m.masked = r.Counter("fedsim_masked_uplinks_total", "",
			"Uplinks dropped for non-finite values.")
		m.suspects = r.Counter("fedsim_defense_suspects_total", "",
			"Inputs excluded by the robust aggregator.")
		m.invited = r.Gauge("fedsim_round_invited", "",
			"Clients invited in the most recent round.")
		m.reported = r.Gauge("fedsim_round_reported", "",
			"Updates that reached the server in the most recent round.")
		engM = m
	})
	return engM
}

// lap closes the current phase segment: the nanoseconds since the last
// boundary accumulate into slot and the boundary advances. A no-op when
// the round is not being timed, so an untelemetered round pays one bool
// check per phase.
func (es *envState) lap(slot int) {
	if !es.timing {
		return
	}
	now := obs.Now()
	es.ph[slot] += now - es.stamp
	es.stamp = now
}

// startRoundTiming arms the per-round phase clock. Timing is on when the
// process-wide telemetry gate is up or the run's observer wants phase
// events; either way the per-visit hot path is untouched — only phase
// boundaries read the clock.
func (es *envState) startRoundTiming(ob fl.RoundObserver) {
	_, wantsPhases := ob.(fl.PhaseObserver)
	es.timing = wantsPhases || obs.Enabled()
	if !es.timing {
		return
	}
	now := obs.Now()
	es.roundT0, es.stamp = now, now
	for i := range es.ph {
		es.ph[i] = 0
	}
}

// FinishRound closes a round's telemetry: stamps the total, flushes the
// phase histograms and round gauges into the process registry, and hands
// the environment observer its closing ObservePhases event. Run calls it
// after maybeCheckpoint so the round's journal line carries the
// checkpoint; harnesses that drive RunRound directly call it themselves
// when they want telemetry flushed per round. Allocation-free once the
// metrics bundle exists.
func (d *RoundDriver) FinishRound(round int) {
	es := d.es
	if !es.timing {
		return
	}
	es.ph[phTotal] = obs.Now() - es.roundT0
	if obs.Enabled() {
		m := engineM()
		for i := phSample; i <= phCombine; i++ {
			m.phase[i].Observe(float64(es.ph[i]) / 1e9)
		}
		// Eval and checkpoint run on a subset of rounds; zero slots would
		// flood their histograms with meaningless sub-microsecond samples.
		if es.ph[phEval] > 0 {
			m.phase[phEval].Observe(float64(es.ph[phEval]) / 1e9)
		}
		if es.ph[phCheckpoint] > 0 {
			m.phase[phCheckpoint].Observe(float64(es.ph[phCheckpoint]) / 1e9)
		}
		m.phase[phTotal].Observe(float64(es.ph[phTotal]) / 1e9)
		m.rounds.Inc()
		m.masked.Add(uint64(es.masked))
		m.suspects.Add(uint64(es.suspects))
		m.invited.Set(float64(es.lastInvited))
		m.reported.Set(float64(es.lastReported))
	}
	if po, ok := d.Env.Observer.(fl.PhaseObserver); ok {
		po.ObservePhases(round, fl.RoundPhases{
			SampleNS:     es.ph[phSample],
			BroadcastNS:  es.ph[phBroadcast],
			LocalNS:      es.ph[phLocal],
			CombineNS:    es.ph[phCombine],
			EvalNS:       es.ph[phEval],
			CheckpointNS: es.ph[phCheckpoint],
			TotalNS:      es.ph[phTotal],
		})
	}
}

// Package engine is the shared federated round engine. Every trainer in
// internal/methods and internal/core runs its training schedule through a
// RoundDriver, which owns the per-round skeleton — participation
// sampling, communication accounting, parallel client execution,
// aggregation, periodic personalized evaluation — while the method
// supplies the parts that differ through Hooks.
//
// The driver also owns the performance layer every method inherits:
//   - a per-worker ModelPool, so local training and evaluation reuse one
//     nn.Sequential per executor worker instead of rebuilding the
//     network per client per round;
//   - one contiguous flat-parameter arena backing every client's reported
//     update (Locals), written in place via nn.FlattenParamsInto;
//   - a per-environment cached runtime (envState): pool, arenas, worker
//     contexts, sampling/evaluation buffers, and the persistent executor
//     tasks survive across runs on one Env, so a warm round — and even a
//     warm whole run — allocates next to nothing.
//
// All parallel phases run on the shared work-sharing executor
// (internal/sched); see DESIGN.md for the architecture, the hook
// contract, and the scheduler's invariants.
package engine

import (
	"fmt"

	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/wire"
)

// ClientCtx is the per-client execution context handed to the Local hook.
// One ClientCtx exists per executor worker and is reused across clients;
// hooks must not retain it (or Model) past the call.
type ClientCtx struct {
	Env *fl.Env
	// Model is the worker's pooled network. Its weights are unspecified on
	// entry; load them (DefaultLocal does) before training or evaluating.
	Model *nn.Sequential
	// Client is the client index, Round the 0-based round.
	Client, Round int
	// Epochs is the number of local epochs this visit should run. 0 means
	// the configured Env.Local.Epochs; a scenario-enabled round sets it to
	// the client's completed-epoch count (stragglers run a partial pass).
	// Hooks that train through LocalConfig() honor it automatically.
	Epochs int
	// Start is this client's entry from the Broadcast hook (nil when the
	// method sets no Broadcast hook).
	Start []float64
	// Out is the client's slot in the driver's Locals arena; write the
	// flattened post-training parameters here.
	Out []float64
	// Scratch is the worker's persistent training scratch (optimizer,
	// loss workspaces, prox buffer), reused across client visits so
	// steady-state local training allocates nothing. Custom Local hooks
	// should train through it.
	Scratch *fl.TrainScratch
	// Cluster is the client's cluster id under a clustered schedule
	// (Hooks.ClusterOf), -1 otherwise — forwarded to remote executors as
	// round metadata.
	Cluster int
	// WireDown and WireUp accumulate the visit's measured transport
	// traffic (bytes to and from the client's remote executor). Zero for
	// in-process visits.
	WireDown, WireUp int64
	// Failed marks the visit as lost — a remote update that never
	// arrived (timeout, disconnect). The engine removes failed clients
	// from the round's reported set after the parallel phase, so their
	// stale Out slots are never aggregated. Custom Local hooks may set
	// it for the same effect.
	Failed bool

	// rng backs VisitRng; persistent so visits draw streams without
	// allocating.
	rng rng.Rng

	// Uplink compression wiring (set by the engine when the environment
	// selects a sparse codec): the shared error-feedback accumulator and
	// this worker's scratch. nil/zero under dense codecs.
	ef  *fl.ErrorFeedback
	efs fl.EFScratch
	// up and down are the effective uplink/downlink codecs (Env.Codec and
	// Env.Codec.Downlink()); downFrame/downBuf back the encode→decode
	// round trips of narrowDownlink and the dense-lossy uplink.
	up        wire.Codec
	down      wire.Codec
	downFrame []byte
	downBuf   []float64
}

// VisitRng returns the deterministic stream for this visit's
// (Client, Round) — exactly what Env.ClientRng(Client, Round) yields,
// reseeded in place in the worker's context so the hot path allocates
// nothing. The stream is valid until the worker's next visit.
func (c *ClientCtx) VisitRng() *rng.Rng {
	c.Env.ClientRngInto(&c.rng, c.Client, c.Round)
	return &c.rng
}

// TrainData returns the dataset this visit trains on: the client's
// training split, or the hostile scenario's poisoned/drifted view of it
// when one is in force (fl.HostileScenario). Custom Local hooks that
// train in-process should read data through it so label-noise attackers
// and drifted clients behave under every method.
func (c *ClientCtx) TrainData() *data.Dataset {
	base := c.Env.Clients[c.Client].Train
	if hs, ok := c.Env.Participation.Scenario.(fl.HostileScenario); ok {
		return hs.TrainData(c.Client, c.Round, base)
	}
	return base
}

// CorruptUplink applies this visit's byzantine uplink corruption (if the
// scenario is hostile and the client is a wire-level attacker) to Out in
// place, using Start as the round's reference point. DefaultLocal calls
// it after training — covering the remote-trainer path too, where it
// models the byzantine node corrupting its own uplink — so custom Local
// hooks that bypass DefaultLocal must call it themselves after filling
// Out. Returns whether the vector was modified.
func (c *ClientCtx) CorruptUplink() bool {
	if hs, ok := c.Env.Participation.Scenario.(fl.HostileScenario); ok {
		return hs.CorruptUpdate(c.Client, c.Round, c.Out, c.Start)
	}
	return false
}

// CompressUplink runs this visit's uplink through the environment's
// codec. Under a sparse codec, Out is rewritten in place to the exact
// reconstruction the server will hold after decoding the sparse frame,
// and the dropped/quantized remainder joins the client's error-feedback
// residual for the next round. Under a lossy dense codec (Float32,
// Quant8), Out round-trips through encode→decode — exactly what a socket
// pair applies — with no residual carried. A no-op under Float64, for
// failed visits, and (sparse only) for visits without a broadcast Start,
// since sparsification is defined relative to the round's reference
// vector. DefaultLocal calls it between training and CorruptUplink —
// error feedback accumulates the honest update, and byzantine corruption
// lands on what actually travels, matching the remote path where the
// node compresses before its uplink leaves the machine. Custom Local
// hooks that bypass DefaultLocal must call it themselves after filling
// Out.
func (c *ClientCtx) CompressUplink() {
	if c.Failed {
		return
	}
	if c.ef != nil {
		if c.Start == nil {
			return
		}
		c.ef.Compress(c.Client, c.Start, c.Out, &c.efs)
		return
	}
	if c.up == wire.Float64 || c.up == 0 {
		return
	}
	// Dense lossy uplink: quantize in place. Decoding back into Out is
	// exact-size by construction (the frame was just encoded from it).
	c.downFrame = wire.EncodeInto(c.downFrame[:0], c.up, c.Out)
	if _, err := wire.DecodeInto(c.Out, c.downFrame); err != nil {
		panic(err) // encode→decode of a valid vector cannot fail
	}
}

// narrowDownlink returns the broadcast vector as this visit's client
// actually receives it: Start round-tripped through the downlink codec
// when that codec is lossy, nil when the client sees Start exactly
// (Float64 downlink — including every sparse uplink codec, which
// broadcasts dense). Keeping the in-process load identical to what a
// remote node decodes off the wire is what makes mixed local/remote runs
// bit-identical under every codec.
func (c *ClientCtx) narrowDownlink() []float64 {
	if c.down == wire.Float64 || c.Start == nil {
		return nil
	}
	c.downFrame = wire.EncodeInto(c.downFrame[:0], c.down, c.Start)
	var err error
	c.downBuf, err = wire.DecodeInto(c.downBuf, c.downFrame)
	if err != nil {
		panic(err) // encode→decode of a valid vector cannot fail
	}
	return c.downBuf
}

// LocalConfig returns the local-training configuration for this visit:
// the environment's LocalConfig with the epoch count overridden by the
// scenario's completed-epoch budget when one is in force. Custom Local
// hooks should train with it so stragglers run partial passes under
// them too.
func (c *ClientCtx) LocalConfig() fl.LocalConfig {
	cfg := c.Env.Local
	if c.Epochs > 0 {
		cfg.Epochs = c.Epochs
	}
	return cfg
}

// Hooks are the method-specific parts of a round. Aggregate and Served
// are required; Broadcast is required unless Local is set.
type Hooks struct {
	// Broadcast returns each client's starting parameter vector for the
	// round, indexed by client id (entries for uninvited clients may be
	// nil). The returned slice is read during the parallel client phase
	// and must stay unmodified until it ends.
	Broadcast func(round int) [][]float64
	// Local overrides the client-side objective. The default
	// (DefaultLocal) loads Start, runs fl.LocalUpdate, and flattens into
	// Out. Local runs concurrently across clients: it may only write
	// per-client state (indexed by ctx.Client) and the ctx buffers.
	Local func(ctx *ClientCtx)
	// Aggregate folds the reported clients' Locals into the method's
	// server-side state. Runs serially after the client phase.
	Aggregate func(round int, reported []int)
	// OnRoundEnd runs serially after Aggregate, before evaluation —
	// cluster-split checks, assignment-change tracking, and similar
	// bookkeeping.
	OnRoundEnd func(round int)
	// Served returns the flat parameters evaluated for client i during
	// periodic evaluation (e.g. its cluster's model).
	Served func(clientIdx int) []float64
	// DownlinkPerClient and UplinkPerClient override the per-client scalar
	// counts used for communication accounting (default: NumParams each
	// way; IFCA downloads K models per client).
	DownlinkPerClient func(round int) int
	UplinkPerClient   func(round int) int
	// ClusterOf, when set, labels each client visit with its cluster id
	// (RunClusteredFedAvg wires it) — metadata forwarded to remote
	// executors. Must be pure and safe for concurrent calls.
	ClusterOf func(client int) int
	// SaveState writes the method's cross-round server state (models,
	// caches, assignments, counters) into a checkpoint. Required when the
	// environment carries a CheckpointPlan; runs serially after a round.
	SaveState func(c *fl.Checkpoint)
	// LoadState restores what SaveState wrote. It must leave the method
	// in exactly the state an uninterrupted run would hold at the
	// checkpoint's round, or return an error to abort the resume.
	LoadState func(c *fl.Checkpoint) error
}

// RoundDriver runs the shared sample → broadcast → local-train →
// aggregate → evaluate round loop on an environment.
type RoundDriver struct {
	Env *fl.Env
	// Res accumulates the run's result; methods may record pre-round
	// phases (e.g. FedClust's one-shot clustering traffic) before Run and
	// finalize cluster fields after.
	Res *fl.Result
	// Hooks are the method-specific callbacks.
	Hooks Hooks
	// FullParticipation bypasses Env.Participation sampling: every client
	// is invited and reports each round (the clustered-FL literature's
	// setting; FedAvg-style trainers leave it false). A
	// Participation.Scenario still applies: all clients are invited, but
	// the scenario decides who reports on time.
	FullParticipation bool
	// Async switches the scenario interpretation to semi-async delivery:
	// slow clients run their full local pass (instead of being cut off at
	// the deadline) and only clients whose update arrives on time (lag 0)
	// count as reported; the method's Aggregate hook is expected to
	// collect late arrivals itself via ScenarioOutcome. No effect without
	// a scenario.
	Async bool
	// AggregateEmptyRounds calls the Aggregate hook even on scenario
	// rounds where nobody reported. Methods with server-side state that
	// progresses without fresh reports (FedAvgStale's cached updates,
	// buffered semi-async arrivals) set it; the default skips the hook so
	// plain gathers never fold an empty set.
	AggregateEmptyRounds bool
	// NumParams is the scalar parameter count of the environment's model.
	NumParams int
	// Locals[i] is client i's reported flat parameters for the current
	// round. All slots share one contiguous arena and are rewritten in
	// place every round.
	Locals [][]float64
	// Weights caches env.TrainSizes() for aggregation.
	Weights []float64

	es *envState
	// sh, when non-nil, holds the claim on the environment's shared
	// runtime compartment; Run returns es to it when the schedule ends.
	sh *fl.EnvShared
}

// New validates the environment and builds a driver for one method run.
// The heavyweight runtime (model pool, arenas, worker contexts, buffers)
// is cached on the environment and reused by later runs; only the first
// run on an Env — or a run whose shape no longer fits, or one racing a
// concurrent run on the same Env — pays for construction.
func New(env *fl.Env, method string) *RoundDriver {
	env.Validate()
	d := &RoundDriver{Env: env, Res: &fl.Result{Method: method}}
	d.Res.Comm.Pricing = fl.PricingFor(env.Codec, env.TopKFrac)
	sh := env.Shared()
	if v, ok := sh.AcquireRuntime(); ok {
		d.sh = sh
		if es, ok := v.(*envState); ok && es.fits(env) {
			d.es = es
		}
	}
	if d.es == nil {
		d.es = newEnvState(env)
	}
	d.es.rebind(env, d)
	d.NumParams = d.es.numParams
	d.Locals = d.es.locals
	d.Weights = d.es.weights
	return d
}

// close returns the runtime to the environment's shared slot.
func (d *RoundDriver) close() {
	if d.sh != nil {
		d.sh.ReleaseRuntime(d.es)
		d.sh = nil
	}
}

// InitParams returns a fresh copy of the canonical initial parameters w₀
// (what nn.FlattenParams(env.NewModel()) yields, without building another
// model). Callers own the copy and may aggregate into it.
func (d *RoundDriver) InitParams() []float64 {
	return append([]float64(nil), d.es.w0...)
}

// InitGlobal returns a per-environment reusable buffer preloaded with
// w₀. Unlike InitParams, the buffer is recycled across runs on the same
// environment, so a warm global-model run (FedAvg/FedProx) allocates
// nothing for its server state. The buffer is invalidated by the next
// InitGlobal call on this environment.
func (d *RoundDriver) InitGlobal() []float64 {
	if d.es.global == nil {
		d.es.global = make([]float64, d.NumParams)
	}
	copy(d.es.global, d.es.w0)
	return d.es.global
}

// StartsBuf returns a per-environment reusable client-indexed slice for
// Broadcast hooks (zeroing is the hook's job: every invited client's
// entry is rewritten each round). Invalidated by the next StartsBuf call
// on this environment.
func (d *RoundDriver) StartsBuf() [][]float64 {
	if d.es.starts == nil {
		d.es.starts = make([][]float64, len(d.Env.Clients))
	}
	return d.es.starts
}

// Pool exposes the per-worker model pool for method phases outside the
// round loop (e.g. FedClust's warmup feature collection).
func (d *RoundDriver) Pool() *ModelPool { return d.es.pool }

// DefaultLocal is the plain client objective: load the broadcast weights,
// run local SGD through the worker's scratch, flatten the trained
// parameters into the client's slot. Clients owned by the environment's
// RemoteTrainer are shipped over the transport instead: same start, same
// deterministic (client, round) stream, same config — a lossless-codec
// remote visit is bit-identical to an in-process one.
func DefaultLocal(ctx *ClientCtx) {
	if rt := ctx.Env.Remote; rt != nil && rt.Owns(ctx.Client) {
		req := fl.RemoteRequest{
			Client:  ctx.Client,
			Round:   ctx.Round,
			Cluster: ctx.Cluster,
			Layer:   fl.FullParams,
			Cfg:     ctx.LocalConfig(),
			Start:   ctx.Start,
		}
		down, up, err := rt.Train(&req, ctx.Out)
		ctx.WireDown += down
		ctx.WireUp += up
		if err != nil {
			ctx.Failed = true
			return
		}
		// A byzantine node corrupts its own uplink: the coordinator
		// receives the corrupted vector off the wire and must survive it.
		ctx.CorruptUplink()
		return
	}
	if ctx.Scratch == nil {
		ctx.Scratch = &fl.TrainScratch{DType: ctx.Env.DType}
	}
	// Load what the client would decode off the wire, but keep ctx.Start
	// as the round's exact reference: CorruptUplink and the error-feedback
	// delta are defined against the server's own copy of the broadcast.
	start := ctx.Start
	if narrowed := ctx.narrowDownlink(); narrowed != nil {
		start = narrowed
	}
	nn.LoadParams(ctx.Model, start)
	ctx.Scratch.LocalUpdate(ctx.Model, ctx.TrainData(), ctx.LocalConfig(), ctx.VisitRng())
	nn.FlattenParamsInto(ctx.Model, ctx.Out)
	ctx.CompressUplink()
	ctx.CorruptUplink()
}

// Gather collects the reported clients' local vectors and aggregation
// weights into reused scratch slices (valid until the next Gather call).
// Under an active scenario the weights reflect partial work: a straggler
// that finished only k of E epochs counts with k/E of its sample weight.
func (d *RoundDriver) Gather(reported []int) (vecs [][]float64, ws []float64) {
	vecs, ws = d.es.gatherVecs[:0], d.es.gatherWs[:0]
	for _, i := range reported {
		vecs = append(vecs, d.Locals[i])
		ws = append(ws, d.ReportWeight(i))
	}
	d.es.gatherVecs, d.es.gatherWs = vecs, ws
	return vecs, ws
}

// GatherCluster collects the local vectors and weights of the clients
// assigned to cluster id, in client order (reused scratch, as Gather).
// Under an active scenario only clients in the round's reported set are
// gathered — a cluster whose every member missed the deadline yields an
// empty gather, which callers must skip.
func (d *RoundDriver) GatherCluster(assign []int, id int) (vecs [][]float64, ws []float64) {
	vecs, ws = d.es.gatherVecs[:0], d.es.gatherWs[:0]
	for i, a := range assign {
		if a != id {
			continue
		}
		if d.es.maskOn && !d.es.repMask[i] {
			continue
		}
		vecs = append(vecs, d.Locals[i])
		ws = append(ws, d.ReportWeight(i))
	}
	d.es.gatherVecs, d.es.gatherWs = vecs, ws
	return vecs, ws
}

// Combine folds gathered vectors into dst through the environment's
// aggregation strategy. With no Aggregator configured it is the plain
// weighted model average — bit-exactly the historical path, where dst is
// simply overwritten.
//
// With a robust Aggregator, dst doubles as the combine's starting point
// (the model the cohort was broadcast — the previous global or cluster
// model; semi-async callers pass a zeroed buffer because their inputs
// are already deltas) and the strategy runs in UPDATE space:
// dst ← dst + Aggregate({vecs_i − dst}). Mathematically the weighted
// mean commutes with this shift, but order statistics do not — a
// sign-flipped model 2·start − trained sits well inside the honest
// models' spread under non-IID data, while its *update* is the exact
// negation of an honest step, which trims, medians, and Krum distances
// separate cleanly. This is also the space the robust-aggregation
// literature (and our semi-async staleness paths) already operate in.
// The suspect count accumulates into the round's defense tally. Every
// method-side combine of gathered uplinks should run through it.
func (d *RoundDriver) Combine(dst []float64, vecs [][]float64, ws []float64) {
	agg := d.Env.Aggregator
	if agg == nil {
		fl.WeightedAverageInto(dst, vecs, ws)
		return
	}
	es := d.es
	n, dim := len(vecs), len(dst)
	if len(es.deltaFlat) < n*dim {
		es.deltaFlat = make([]float64, n*dim)
		es.deltas = make([][]float64, 0, n)
		es.deltaOut = make([]float64, dim)
	}
	if len(es.deltaOut) < dim {
		es.deltaOut = make([]float64, dim)
	}
	deltas := es.deltas[:0]
	for i, v := range vecs {
		dv := es.deltaFlat[i*dim : (i+1)*dim]
		for j := range dv {
			dv[j] = v[j] - dst[j]
		}
		deltas = append(deltas, dv)
	}
	es.deltas = deltas
	out := es.deltaOut[:dim]
	es.suspects += agg.Aggregate(out, deltas, ws)
	for j := range dst {
		dst[j] += out[j]
	}
}

// DefenseCounts returns the current round's defensive tallies: uplinks
// masked for non-finite values and inputs the robust aggregator excluded
// across the round's combines so far. Valid during the round's hooks.
func (d *RoundDriver) DefenseCounts() (masked, suspects int) {
	return d.es.masked, d.es.suspects
}

// maskNonFinite scans the uplinks produced this round and marks any
// containing NaN or ±Inf as failed — a single poisoned vector would
// otherwise spread through every average (and through FedAvgStale's
// cache for rounds after). The scan covers exactly the invited clients
// whose visit ran: offline clients and sync dropouts never wrote their
// slot, and semi-async late arrivals (lag > 0) must be caught now,
// before the buffer path consumes them in a later round.
func (d *RoundDriver) maskNonFinite(invited []int) {
	es := d.es
	for _, i := range invited {
		if es.failMask[i] {
			continue // transport already lost it
		}
		if es.scenOn && (es.lag[i] < 0 || (!d.Async && es.done[i] == 0)) {
			continue // no work happened; the stale slot is never consumed
		}
		if !finiteVec(d.Locals[i]) {
			es.failMask[i] = true
			es.masked++
		}
	}
}

// finiteVec reports whether every element is finite. x−x is 0 for every
// finite x and NaN for NaN and ±Inf, so one subtraction covers both.
func finiteVec(v []float64) bool {
	for _, x := range v {
		if x-x != 0 {
			return false
		}
	}
	return true
}

// ReportWeight is client i's aggregation weight for the current round:
// its training-set size, scaled under an active synchronous scenario by
// the fraction of the configured local pass it actually completed.
func (d *RoundDriver) ReportWeight(i int) float64 {
	w := d.Weights[i]
	if d.es.scenOn && !d.Async && d.es.done[i] < d.es.cfgEpochs {
		w *= float64(d.es.done[i]) / float64(d.es.cfgEpochs)
	}
	return w
}

// ScenarioActive reports whether the current round runs under a
// Participation.Scenario.
func (d *RoundDriver) ScenarioActive() bool { return d.es.scenOn }

// ScenarioOutcome returns client i's scenario outcome for the current
// round — completed epochs by the deadline and delivery lag in rounds
// (0 on time, negative offline). Valid during the round's hooks; without
// an active scenario it reports a nominal on-time client. A visit whose
// update was lost in flight (ClientCtx.Failed — transport timeout or
// disconnect) reports as offline: nothing arrived and nothing will, so
// semi-async aggregators must not schedule its stale Locals slot as a
// late arrival.
func (d *RoundDriver) ScenarioOutcome(i int) (done, lag int) {
	if d.es.failMask[i] {
		return 0, -1
	}
	if !d.es.scenOn {
		return d.Env.Local.Epochs, 0
	}
	return d.es.done[i], d.es.lag[i]
}

// Reported reports whether client i is in the current round's reported
// set (valid during the round's hooks). Scenario losses and transport
// failures both clear membership.
func (d *RoundDriver) Reported(i int) bool {
	if !d.es.maskOn {
		return true
	}
	return d.es.repMask[i]
}

// InvitedThisRound returns the current round's invited client set (valid
// during the round's hooks; aliases engine scratch — do not retain).
func (d *RoundDriver) InvitedThisRound() []int { return d.es.curInvited }

// Run executes the round schedule and returns the accumulated result.
func (d *RoundDriver) Run() *fl.Result {
	// Release the runtime claim even when the hook checks (or a hook
	// itself) panic, so a recovered failure never leaks the slot.
	defer d.close()
	if d.Hooks.Aggregate == nil {
		panic(fmt.Sprintf("engine: %s has no Aggregate hook", d.Res.Method))
	}
	if d.Hooks.Served == nil {
		panic(fmt.Sprintf("engine: %s has no Served hook", d.Res.Method))
	}
	if d.Hooks.Broadcast == nil && d.Hooks.Local == nil {
		panic(fmt.Sprintf("engine: %s has neither Broadcast nor Local hook", d.Res.Method))
	}
	start := 0
	if plan := d.Env.Ckpt; plan != nil && plan.Resume != nil {
		start = d.resume(plan.Resume)
	}
	if ob := d.Env.Observer; ob != nil {
		ob.ObserveRunStart(d.Res.Method, d.Env.Rounds, len(d.Env.Clients), start)
	}
	// Report the run's end however it ends: the deferred observation fires
	// on normal completion and on a panic unwinding through the driver, so
	// a control plane never shows an aborted run as still training.
	completed, aborted := start, true
	defer func() {
		if reo, ok := d.Env.Observer.(fl.RunEndObserver); ok {
			reo.ObserveRunEnd(completed, aborted)
		}
	}()
	for round := start; round < d.Env.Rounds; round++ {
		d.RunRound(round)
		d.maybeCheckpoint(round)
		d.FinishRound(round)
		completed = round + 1
	}
	aborted = false
	return d.Res
}

// RunRound executes one round of the schedule (round is 0-based). Run is
// the normal entry point; RunRound is exported for the steady-state
// allocation harness, which asserts a warm round allocates nothing.
func (d *RoundDriver) RunRound(round int) {
	env := d.Env
	es := d.es
	ob := env.Observer
	es.startRoundTiming(ob)
	invited, reported := d.sample(round)
	es.lap(phSample)
	es.lastInvited = len(invited)
	if ob != nil {
		ob.ObserveRoundStart(round, len(invited))
	}
	// Reset the per-round failure state — visits the scenario skips must
	// not leave stale failures behind.
	for i := range es.failMask {
		es.failMask[i] = false
	}
	es.masked, es.suspects = 0, 0
	if es.remoteOn {
		// Remote rounds account traffic after the parallel phase
		// (foldRemote): whether a client's volume is measured off the
		// transport or estimated depends on what its hook actually did.
		for i := range es.wireDown {
			es.wireDown[i], es.wireUp[i] = 0, 0
			es.visited[i] = false
		}
	} else {
		d.Res.Comm.Download(len(invited), d.downlink(round))
	}
	var starts [][]float64
	if d.Hooks.Broadcast != nil {
		starts = d.Hooks.Broadcast(round)
	}
	es.curInvited, es.curStarts, es.curRound = invited, starts, round
	es.lap(phBroadcast)
	env.ParallelClientsWorker(len(invited), es.clientTask)
	es.lap(phLocal)
	es.curStarts = nil
	d.maskNonFinite(invited)
	if es.remoteOn {
		reported = d.foldRemote(round, invited, reported)
	} else {
		reported = d.dropFailed(reported)
		d.Res.Comm.Upload(len(reported), d.uplink(round))
	}
	if ob != nil {
		for _, c := range invited {
			done, lag := d.ScenarioOutcome(c)
			ob.ObserveOutcome(c, done, lag, es.failMask[c])
		}
	}
	// A scenario round where every device missed the deadline is wasted:
	// there is nothing for a synchronous method to fold. Methods whose
	// server state progresses anyway (late arrivals due, cached updates
	// to decay) opt in via Async / AggregateEmptyRounds.
	if len(reported) > 0 || d.Async || d.AggregateEmptyRounds {
		d.Hooks.Aggregate(round, reported)
	}
	if d.Hooks.OnRoundEnd != nil {
		d.Hooks.OnRoundEnd(round)
	}
	es.curInvited = nil
	es.lastReported = len(reported)
	d.Res.Comm.EndRound(round + 1)
	if ob != nil {
		if dobs, ok := ob.(fl.DefenseObserver); ok {
			dobs.ObserveDefense(round, es.masked, es.suspects)
		}
		ob.ObserveRoundEnd(round, len(reported), &d.Res.Comm)
	}
	es.lap(phCombine)

	if env.ShouldEval(round) {
		per, acc, loss := d.evaluateServed()
		d.Res.History = append(d.Res.History, fl.RoundMetrics{Round: round + 1, MeanAcc: acc, MeanLoss: loss})
		// per aliases the environment's reusable evaluation buffer; the
		// Result owns its own copy (reused across this run's evals).
		d.Res.PerClientAcc = append(d.Res.PerClientAcc[:0], per...)
		d.Res.FinalAcc, d.Res.FinalLoss = acc, loss
		if ob != nil {
			ob.ObserveEval(round+1, acc, loss)
		}
		es.lap(phEval)
	}
}

// RunClusteredFedAvg wires the hooks for the common "fixed assignment,
// one FedAvg model per cluster" schedule (PACFL and FedClust after their
// one-shot clustering phases) and runs it: every round each client trains
// its cluster's model and each non-empty cluster averages its members.
// labels maps client → cluster in [0, k); models holds one flat parameter
// vector per cluster and is updated in place.
func (d *RoundDriver) RunClusteredFedAvg(labels []int, k int, models [][]float64) *fl.Result {
	d.FullParticipation = true
	starts := d.StartsBuf()
	d.Hooks.ClusterOf = func(i int) int { return labels[i] }
	d.Hooks.Broadcast = func(round int) [][]float64 {
		for i, l := range labels {
			starts[i] = models[l]
		}
		return starts
	}
	d.Hooks.Aggregate = func(round int, reported []int) {
		for c := 0; c < k; c++ {
			vecs, ws := d.GatherCluster(labels, c)
			if len(vecs) > 0 {
				d.Combine(models[c], vecs, ws)
			}
		}
	}
	d.Hooks.Served = func(i int) []float64 { return models[labels[i]] }
	d.bindClusteredCheckpoint(labels, k, models)
	return d.Run()
}

// estimated reports whether client i's traffic this round falls back to
// the scalar-count estimate: it trained in-process — either unowned by
// the transport, or owned but driven by a custom Local hook that ran
// locally (no wire traffic recorded, no failure), like IFCA's. Measured
// bytes take over only for visits that actually crossed the transport.
func (d *RoundDriver) estimated(i int) bool {
	es := d.es
	if !es.remoteMask[i] {
		return true
	}
	return es.visited[i] && es.wireDown[i] == 0 && es.wireUp[i] == 0 && !es.failMask[i]
}

// foldRemote settles a remote round's communication accounting after
// the parallel phase — measured wire bytes for visits that crossed the
// transport, the scalar estimate for everyone who trained in-process —
// and drops failed visits from the reported set.
func (d *RoundDriver) foldRemote(round int, invited, reported []int) []int {
	es := d.es
	var down, up int64
	estDown := 0
	for _, i := range invited {
		down += es.wireDown[i]
		up += es.wireUp[i]
		if d.estimated(i) {
			estDown++
		}
	}
	d.Res.Comm.Download(estDown, d.downlink(round))
	d.Res.Comm.DownloadBytes(down)
	d.Res.Comm.UploadBytes(up)
	reported = d.dropFailed(reported)
	estUp := 0
	for _, i := range reported {
		if d.estimated(i) {
			estUp++
		}
	}
	d.Res.Comm.Upload(estUp, d.uplink(round))
	return reported
}

// dropFailed removes visits marked failed (a remote update that never
// arrived, or a custom Local hook disowning its result) from the
// reported set — exactly like scenario dropouts — and rebuilds the
// reported mask so cluster gathers see the surviving membership. A
// round with no failures returns the set untouched, leaving the mask
// exactly as sample built it.
func (d *RoundDriver) dropFailed(reported []int) []int {
	es := d.es
	anyFailed := false
	for _, i := range reported {
		if es.failMask[i] {
			anyFailed = true
			break
		}
	}
	if !anyFailed {
		return reported
	}
	// In-place filter into the reported buffer. reported either is that
	// buffer already (write index trails read index) or aliases the
	// immutable all-clients list (es.all must never be truncated).
	kept := es.reported[:0]
	for _, i := range reported {
		if !es.failMask[i] {
			kept = append(kept, i)
		}
	}
	es.reported = kept
	for i := range es.repMask {
		es.repMask[i] = false
	}
	for _, c := range kept {
		es.repMask[c] = true
	}
	es.maskOn = true
	return kept
}

// sample draws the round's invited and reporting sets into reused
// buffers, then fills the round's scenario state (outcomes per invited
// client, the reported mask) when a scenario is in force.
func (d *RoundDriver) sample(round int) (invited, reported []int) {
	es := d.es
	sc := d.Env.Participation.Scenario
	es.scenOn = sc != nil
	es.maskOn = es.scenOn // foldRemote may extend mask coverage later
	if sc == nil {
		if d.FullParticipation {
			return es.all, es.all
		}
		inv, rep := d.Env.SampleRoundInto(round, es.invited, es.reported)
		d.es.invited, d.es.reported = inv, rep
		return inv, rep
	}

	if d.FullParticipation {
		// Everyone is invited; the scenario alone decides who reports.
		invited = es.all
		reported = es.reported[:0]
	} else {
		// SampleRoundInto already applied the synchronous scenario filter
		// (done ≥ 1) on top of the DropRate losses.
		invited, reported = d.Env.SampleRoundInto(round, es.invited, es.reported)
		es.invited = invited
	}
	es.cfgEpochs = d.Env.Local.Epochs
	if es.cfgEpochs < 1 {
		es.cfgEpochs = 1
	}
	for _, c := range invited {
		es.done[c], es.lag[c] = sc.Outcome(c, round, es.cfgEpochs)
	}
	if d.FullParticipation {
		for _, c := range invited {
			if (d.Async && es.lag[c] == 0) || (!d.Async && es.done[c] > 0) {
				reported = append(reported, c)
			}
		}
	} else if d.Async {
		// Tighten the synchronous filter to on-time deliveries only: a
		// straggler's partial pass is not accepted — its full update
		// arrives lag rounds late instead.
		kept := reported[:0]
		for _, c := range reported {
			if es.lag[c] == 0 {
				kept = append(kept, c)
			}
		}
		reported = kept
	}
	es.reported = reported
	for i := range es.repMask {
		es.repMask[i] = false
	}
	for _, c := range reported {
		es.repMask[c] = true
	}
	return invited, reported
}

func (d *RoundDriver) downlink(round int) int {
	if d.Hooks.DownlinkPerClient != nil {
		return d.Hooks.DownlinkPerClient(round)
	}
	return d.NumParams
}

func (d *RoundDriver) uplink(round int) int {
	if d.Hooks.UplinkPerClient != nil {
		return d.Hooks.UplinkPerClient(round)
	}
	return d.NumParams
}

// evaluateServed runs the personalized evaluation protocol over the
// pooled per-worker models: each worker loads the served vector only when
// it differs (by identity) from the one it evaluated last, so serving one
// cluster model to many clients costs one load per worker. The identity
// cache never survives a call (a vector freed since the last evaluation
// could alias a new allocation).
func (d *RoundDriver) evaluateServed() ([]float64, float64, float64) {
	es := d.es
	for i := range es.evalLast {
		es.evalLast[i] = nil
	}
	per, acc, loss := d.Env.EvaluateWithInto(es.perClient, es.evalPick)
	es.perClient = per
	return per, acc, loss
}

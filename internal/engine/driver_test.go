package engine_test

import (
	"testing"

	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/nn"
)

// TestDriverRequiresHooks: a driver without its required hooks must fail
// loudly, not train garbage.
func TestDriverRequiresHooks(t *testing.T) {
	expectPanic := func(name string, wire func(d *engine.RoundDriver)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Run did not panic", name)
			}
		}()
		d := engine.New(goldenEnv(1, 1, fl.Participation{}), "test")
		wire(d)
		d.Run()
	}
	expectPanic("no aggregate", func(d *engine.RoundDriver) {
		d.Hooks.Local = func(*engine.ClientCtx) {}
		d.Hooks.Served = func(int) []float64 { return nil }
	})
	expectPanic("no served", func(d *engine.RoundDriver) {
		d.Hooks.Local = func(*engine.ClientCtx) {}
		d.Hooks.Aggregate = func(int, []int) {}
	})
	expectPanic("no client objective", func(d *engine.RoundDriver) {
		d.Hooks.Aggregate = func(int, []int) {}
		d.Hooks.Served = func(int) []float64 { return nil }
	})
}

// TestDriverBuffers: the locals arena must be per-client, disjoint,
// sized to the model, and InitParams must be a defensive copy of w₀.
func TestDriverBuffers(t *testing.T) {
	env := goldenEnv(2, 1, fl.Participation{})
	d := engine.New(env, "test")
	want := env.NewModel().NumParams()
	if d.NumParams != want {
		t.Fatalf("NumParams %d, want %d", d.NumParams, want)
	}
	if len(d.Locals) != len(env.Clients) {
		t.Fatalf("locals slots %d, want %d", len(d.Locals), len(env.Clients))
	}
	for i, l := range d.Locals {
		if len(l) != want {
			t.Fatalf("locals[%d] length %d, want %d", i, len(l), want)
		}
	}
	a, b := d.InitParams(), d.InitParams()
	a[0] += 1
	if b[0] == a[0] {
		t.Fatal("InitParams returned a shared buffer")
	}
	if w0 := nn.FlattenParams(env.NewModel()); b[0] != w0[0] || len(b) != len(w0) {
		t.Fatal("InitParams does not match the canonical initialization")
	}
}

// TestGatherCluster: gathering must preserve client order within a
// cluster and pair each vector with its sample weight.
func TestGatherCluster(t *testing.T) {
	env := goldenEnv(3, 1, fl.Participation{})
	d := engine.New(env, "test")
	assign := []int{0, 1, 0, 1, 0, 1}
	vecs, ws := d.GatherCluster(assign, 1)
	if len(vecs) != 3 || len(ws) != 3 {
		t.Fatalf("gathered %d vecs %d weights, want 3", len(vecs), len(ws))
	}
	for j, i := range []int{1, 3, 5} {
		if &vecs[j][0] != &d.Locals[i][0] {
			t.Fatalf("vec %d is not client %d's arena slot", j, i)
		}
		if ws[j] != float64(env.Clients[i].Train.Len()) {
			t.Fatalf("weight %d = %v, want client %d's train size", j, ws[j], i)
		}
	}
}

// TestCommOverrides: Downlink/UplinkPerClient hooks must flow into the
// accounting (IFCA's K-model broadcast depends on this).
func TestCommOverrides(t *testing.T) {
	env := goldenEnv(4, 2, fl.Participation{})
	d := engine.New(env, "test")
	d.FullParticipation = true
	global := d.InitParams()
	d.Hooks.Local = func(ctx *engine.ClientCtx) {
		ctx.Start = global
		engine.DefaultLocal(ctx)
	}
	d.Hooks.Aggregate = func(int, []int) {}
	d.Hooks.Served = func(int) []float64 { return global }
	d.Hooks.DownlinkPerClient = func(int) int { return 3 * d.NumParams }
	d.Hooks.UplinkPerClient = func(int) int { return 5 }
	res := d.Run()
	n := int64(len(env.Clients))
	pricing := fl.CommPricing{}
	if want := n * pricing.DownloadBytesFor(3*d.NumParams) * int64(env.Rounds); res.Comm.DownBytes != want {
		t.Fatalf("down bytes %d, want %d", res.Comm.DownBytes, want)
	}
	if want := n * pricing.UploadBytesFor(5) * int64(env.Rounds); res.Comm.UpBytes != want {
		t.Fatalf("up bytes %d, want %d", res.Comm.UpBytes, want)
	}
}

// TestFailedVisitsDropFromReported: a Local hook that disowns its result
// (ClientCtx.Failed — a transport timeout, or any custom hook's own
// failure) must see those clients removed from the reported set before
// Aggregate, on a plain run with no transport and no scenario attached.
func TestFailedVisitsDropFromReported(t *testing.T) {
	env := goldenEnv(5, 2, fl.Participation{})
	d := engine.New(env, "test")
	d.FullParticipation = true
	global := d.InitParams()
	d.Hooks.Broadcast = func(int) [][]float64 {
		starts := d.StartsBuf()
		for i := range starts {
			starts[i] = global
		}
		return starts
	}
	d.Hooks.Local = func(ctx *engine.ClientCtx) {
		engine.DefaultLocal(ctx)
		if ctx.Client%2 == 1 {
			ctx.Failed = true // odd clients disown every visit
		}
	}
	var got [][]int
	d.Hooks.Aggregate = func(round int, reported []int) {
		got = append(got, append([]int(nil), reported...))
		for i := range env.Clients {
			if want := i%2 == 0; d.Reported(i) != want {
				t.Errorf("round %d: Reported(%d) = %v, want %v", round, i, d.Reported(i), want)
			}
			// A failed visit must read as offline to semi-async
			// aggregators — its stale Locals slot is not a late arrival.
			done, lag := d.ScenarioOutcome(i)
			if i%2 == 1 {
				if done != 0 || lag >= 0 {
					t.Errorf("round %d: failed client %d outcome (%d,%d), want offline", round, i, done, lag)
				}
			} else if lag != 0 {
				t.Errorf("round %d: healthy client %d reported late (lag %d)", round, i, lag)
			}
		}
	}
	d.Hooks.Served = func(int) []float64 { return global }
	d.Run()
	if len(got) != env.Rounds {
		t.Fatalf("aggregate ran %d times, want %d", len(got), env.Rounds)
	}
	for r, rep := range got {
		for _, i := range rep {
			if i%2 == 1 {
				t.Errorf("round %d: failed client %d stayed in reported set %v", r, i, rep)
			}
		}
		if len(rep) != (len(env.Clients)+1)/2 {
			t.Errorf("round %d: reported %v, want the %d surviving clients", r, rep, (len(env.Clients)+1)/2)
		}
	}
}

package engine_test

import (
	"testing"

	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/nn"
)

// TestDriverRequiresHooks: a driver without its required hooks must fail
// loudly, not train garbage.
func TestDriverRequiresHooks(t *testing.T) {
	expectPanic := func(name string, wire func(d *engine.RoundDriver)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Run did not panic", name)
			}
		}()
		d := engine.New(goldenEnv(1, 1, fl.Participation{}), "test")
		wire(d)
		d.Run()
	}
	expectPanic("no aggregate", func(d *engine.RoundDriver) {
		d.Hooks.Local = func(*engine.ClientCtx) {}
		d.Hooks.Served = func(int) []float64 { return nil }
	})
	expectPanic("no served", func(d *engine.RoundDriver) {
		d.Hooks.Local = func(*engine.ClientCtx) {}
		d.Hooks.Aggregate = func(int, []int) {}
	})
	expectPanic("no client objective", func(d *engine.RoundDriver) {
		d.Hooks.Aggregate = func(int, []int) {}
		d.Hooks.Served = func(int) []float64 { return nil }
	})
}

// TestDriverBuffers: the locals arena must be per-client, disjoint,
// sized to the model, and InitParams must be a defensive copy of w₀.
func TestDriverBuffers(t *testing.T) {
	env := goldenEnv(2, 1, fl.Participation{})
	d := engine.New(env, "test")
	want := env.NewModel().NumParams()
	if d.NumParams != want {
		t.Fatalf("NumParams %d, want %d", d.NumParams, want)
	}
	if len(d.Locals) != len(env.Clients) {
		t.Fatalf("locals slots %d, want %d", len(d.Locals), len(env.Clients))
	}
	for i, l := range d.Locals {
		if len(l) != want {
			t.Fatalf("locals[%d] length %d, want %d", i, len(l), want)
		}
	}
	a, b := d.InitParams(), d.InitParams()
	a[0] += 1
	if b[0] == a[0] {
		t.Fatal("InitParams returned a shared buffer")
	}
	if w0 := nn.FlattenParams(env.NewModel()); b[0] != w0[0] || len(b) != len(w0) {
		t.Fatal("InitParams does not match the canonical initialization")
	}
}

// TestGatherCluster: gathering must preserve client order within a
// cluster and pair each vector with its sample weight.
func TestGatherCluster(t *testing.T) {
	env := goldenEnv(3, 1, fl.Participation{})
	d := engine.New(env, "test")
	assign := []int{0, 1, 0, 1, 0, 1}
	vecs, ws := d.GatherCluster(assign, 1)
	if len(vecs) != 3 || len(ws) != 3 {
		t.Fatalf("gathered %d vecs %d weights, want 3", len(vecs), len(ws))
	}
	for j, i := range []int{1, 3, 5} {
		if &vecs[j][0] != &d.Locals[i][0] {
			t.Fatalf("vec %d is not client %d's arena slot", j, i)
		}
		if ws[j] != float64(env.Clients[i].Train.Len()) {
			t.Fatalf("weight %d = %v, want client %d's train size", j, ws[j], i)
		}
	}
}

// TestCommOverrides: Downlink/UplinkPerClient hooks must flow into the
// accounting (IFCA's K-model broadcast depends on this).
func TestCommOverrides(t *testing.T) {
	env := goldenEnv(4, 2, fl.Participation{})
	d := engine.New(env, "test")
	d.FullParticipation = true
	global := d.InitParams()
	d.Hooks.Local = func(ctx *engine.ClientCtx) {
		ctx.Start = global
		engine.DefaultLocal(ctx)
	}
	d.Hooks.Aggregate = func(int, []int) {}
	d.Hooks.Served = func(int) []float64 { return global }
	d.Hooks.DownlinkPerClient = func(int) int { return 3 * d.NumParams }
	d.Hooks.UplinkPerClient = func(int) int { return 5 }
	res := d.Run()
	n := int64(len(env.Clients))
	if want := n * int64(3*d.NumParams) * fl.BytesPerParam * int64(env.Rounds); res.Comm.DownBytes != want {
		t.Fatalf("down bytes %d, want %d", res.Comm.DownBytes, want)
	}
	if want := n * 5 * fl.BytesPerParam * int64(env.Rounds); res.Comm.UpBytes != want {
		t.Fatalf("up bytes %d, want %d", res.Comm.UpBytes, want)
	}
}

package engine_test

// Resume-equivalence suite: a run restored from a checkpoint must be
// indistinguishable — bit for bit, in every field the experiments read —
// from one that never stopped. The matrix covers all eight methods
// (pinned against the PR 1 golden fingerprints for the synchronous six,
// self-baselined for the semi-async pair under a hostile scenario),
// checkpoint rounds early/mid/last, and executor parallelism on both
// sides of the interruption (checkpoint under one worker count, resume
// under another). Every resume passes through Encode → DecodeCheckpoint,
// so the serialized bytes — not the in-memory snapshot — carry the run.

import (
	"testing"

	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/scenario"
)

// captureRun executes the trainer with a checkpoint after every round,
// returning the result fingerprint and the encoded snapshot bytes keyed
// by completed-round count (1..Rounds).
func captureRun(t *testing.T, trainer fl.Trainer, env *fl.Env) (string, map[int][]byte) {
	t.Helper()
	snaps := make(map[int][]byte)
	env.Ckpt = &fl.CheckpointPlan{
		Every: 1,
		Sink:  func(c *fl.Checkpoint) { snaps[c.Round] = c.Encode() },
	}
	fp := fingerprint(trainer.Run(env))
	if len(snaps) != env.Rounds {
		t.Fatalf("expected %d snapshots, got %d", env.Rounds, len(snaps))
	}
	return fp, snaps
}

// resumeRun decodes the snapshot and finishes the schedule from it.
func resumeRun(t *testing.T, trainer fl.Trainer, env *fl.Env, snap []byte) string {
	t.Helper()
	ck, err := fl.DecodeCheckpoint(snap)
	if err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	env.Ckpt = &fl.CheckpointPlan{Resume: ck}
	return fingerprint(trainer.Run(env))
}

// TestResumeReproducesGoldenFingerprints: for every golden case, a run
// interrupted after round 1, mid-schedule, and after the final round
// resumes to exactly the PR 1 pinned fingerprint. The final-round resume
// executes zero rounds — the restored Result alone must carry the full
// answer.
func TestResumeReproducesGoldenFingerprints(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			env := goldenEnv(77, 6, c.part)
			got, snaps := captureRun(t, c.trainer(), env)
			if got != c.want {
				t.Fatalf("checkpointing perturbed the uninterrupted run\n got: %s\nwant: %s", got, c.want)
			}
			for _, round := range []int{1, 3, 6} {
				env := goldenEnv(77, 6, c.part)
				if got := resumeRun(t, c.trainer(), env, snaps[round]); got != c.want {
					t.Errorf("resume from round %d diverged\n got: %s\nwant: %s", round, got, c.want)
				}
			}
		})
	}
}

// TestResumeSemiAsync extends the matrix to the staleness-aware methods
// under a hostile scenario (stragglers, dropouts, jitter): the late-
// delivery caches, pending buffers, and arrival schedules must all ride
// the checkpoint.
func TestResumeSemiAsync(t *testing.T) {
	for _, tr := range []fl.Trainer{methods.FedAvgStale{}, methods.FedBuff{}} {
		tr := tr
		t.Run(tr.Name(), func(t *testing.T) {
			t.Parallel()
			mkEnv := func() *fl.Env {
				env := goldenEnv(34, 6, fl.Participation{})
				env.EvalEvery = 2
				env.Participation.Scenario = scenario.New(scenario.Config{
					StragglerFrac: 0.3, SlowdownMax: 4, DropoutRate: 0.15,
					Deadline: 0.75, Jitter: 0.2,
				}, 34, len(env.Clients))
				return env
			}
			want, snaps := captureRun(t, tr, mkEnv())
			for _, round := range []int{1, 3, 6} {
				if got := resumeRun(t, tr, mkEnv(), snaps[round]); got != want {
					t.Errorf("resume from round %d diverged\n got: %s\nwant: %s", round, got, want)
				}
			}
		})
	}
}

// TestResumeAcrossWorkerCounts: checkpoint under a serial executor,
// resume under a wide one (and the reverse) — parallelism is not part of
// a run's identity, so the fingerprints must match the pinned golden.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	golden := goldenCases[len(goldenCases)-1] // FedClust: deepest state surface
	for _, wc := range []struct{ capture, resume int }{{1, 8}, {8, 1}} {
		env := goldenEnv(77, 6, golden.part)
		env.Workers = wc.capture
		got, snaps := captureRun(t, golden.trainer(), env)
		if got != golden.want {
			t.Fatalf("workers=%d capture run drifted\n got: %s\nwant: %s", wc.capture, got, golden.want)
		}
		env = goldenEnv(77, 6, golden.part)
		env.Workers = wc.resume
		if got := resumeRun(t, golden.trainer(), env, snaps[3]); got != golden.want {
			t.Errorf("checkpoint at workers=%d, resume at workers=%d diverged\n got: %s\nwant: %s",
				wc.capture, wc.resume, got, golden.want)
		}
	}
}

// TestResumeRejectsForeignCheckpoint: the engine refuses (panics — the
// cmd layer pre-validates with Matches for a clean exit) to continue a
// checkpoint from a different run.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	env := goldenEnv(77, 6, fl.Participation{})
	_, snaps := captureRun(t, methods.FedAvg{}, env)
	ck, err := fl.DecodeCheckpoint(snaps[3])
	if err != nil {
		t.Fatal(err)
	}
	env = goldenEnv(78, 6, fl.Participation{}) // different seed
	env.Ckpt = &fl.CheckpointPlan{Resume: ck}
	defer func() {
		if recover() == nil {
			t.Fatal("resuming under a different seed did not panic")
		}
	}()
	methods.FedAvg{}.Run(env)
}

// TestCheckpointTrigger: the on-demand trigger emits exactly one
// snapshot for the round it is armed in, independent of Every.
func TestCheckpointTrigger(t *testing.T) {
	env := goldenEnv(77, 6, fl.Participation{})
	var rounds []int
	armed := true
	env.Ckpt = &fl.CheckpointPlan{
		Trigger: func() bool {
			was := armed
			armed = false
			return was
		},
		Sink: func(c *fl.Checkpoint) { rounds = append(rounds, c.Round) },
	}
	methods.FedAvg{}.Run(env)
	if len(rounds) != 1 || rounds[0] != 1 {
		t.Fatalf("trigger emitted snapshots after rounds %v, want [1]", rounds)
	}
}

// TestResumeFedClustLeavesStateNil documents the FedClust caveat: a
// resumed run reconstructs the clustered schedule from the checkpoint,
// not the one-shot analysis, so the diagnostic State stays nil (see
// DESIGN.md §9) while the training result is still bit-exact.
func TestResumeFedClustLeavesStateNil(t *testing.T) {
	env := goldenEnv(77, 6, fl.Participation{})
	fresh := &core.FedClust{}
	want, snaps := captureRun(t, fresh, env)
	if fresh.State == nil {
		t.Fatal("uninterrupted run should populate State")
	}
	ck, err := fl.DecodeCheckpoint(snaps[3])
	if err != nil {
		t.Fatal(err)
	}
	env = goldenEnv(77, 6, fl.Participation{})
	env.Ckpt = &fl.CheckpointPlan{Resume: ck}
	resumed := &core.FedClust{}
	if got := fingerprint(resumed.Run(env)); got != want {
		t.Fatalf("resumed FedClust diverged\n got: %s\nwant: %s", got, want)
	}
	if resumed.State != nil {
		t.Error("resumed run unexpectedly reconstructed the one-shot clustering State")
	}
}

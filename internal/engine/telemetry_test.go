package engine_test

// Engine telemetry semantics: wall-clock measurement must never feed
// back into learning (bit-identity with the gate on vs. off), phase
// observations must arrive once per round with sane contents, and the
// run-end observation must fire on every exit path — including a hook
// panicking mid-run.

import (
	"io"
	"testing"

	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/obs"
)

// TestTelemetryBitIdentical: the same golden workload run bare and run
// with the gate up plus a journal observer attached produces bit-equal
// results — accuracy, history, traffic, everything fingerprint reads.
func TestTelemetryBitIdentical(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)

	obs.SetEnabled(false)
	bare := fingerprint(methods.FedAvg{}.Run(goldenEnv(77, 6, fl.Participation{})))

	obs.SetEnabled(true)
	env := goldenEnv(77, 6, fl.Participation{})
	env.Observer = obs.NewJournal(io.Discard, env.Local.Epochs)
	instrumented := fingerprint(methods.FedAvg{}.Run(env))

	if instrumented != bare {
		t.Errorf("telemetry changed the learning outcome\n bare: %s\n inst: %s", bare, instrumented)
	}
}

// phaseCapture is a RoundObserver that records phase and run-end
// observations (everything else no-ops).
type phaseCapture struct {
	phases    []fl.RoundPhases
	rounds    []int
	completed int
	aborted   bool
	endCalls  int
}

func (c *phaseCapture) ObserveRunStart(string, int, int, int)   {}
func (c *phaseCapture) ObserveRoundStart(int, int)              {}
func (c *phaseCapture) ObserveOutcome(int, int, int, bool)      {}
func (c *phaseCapture) ObserveRoundEnd(int, int, *fl.CommStats) {}
func (c *phaseCapture) ObserveEval(int, float64, float64)       {}
func (c *phaseCapture) ObserveCheckpoint(int)                   {}
func (c *phaseCapture) ObservePhases(round int, p fl.RoundPhases) {
	c.rounds = append(c.rounds, round)
	c.phases = append(c.phases, p)
}
func (c *phaseCapture) ObserveRunEnd(completed int, aborted bool) {
	c.completed, c.aborted, c.endCalls = completed, aborted, c.endCalls+1
}

// TestPhaseObservations: an observer implementing fl.PhaseObserver gets
// one observation per round with timing in the slots that actually ran —
// even with the process gate down (the observer's interest arms timing).
func TestPhaseObservations(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	obs.SetEnabled(false)

	env := goldenEnv(31, 4, fl.Participation{})
	env.EvalEvery = 2
	capt := &phaseCapture{}
	env.Observer = capt
	methods.FedAvg{}.Run(env)

	if len(capt.phases) != env.Rounds {
		t.Fatalf("got %d phase observations, want %d", len(capt.phases), env.Rounds)
	}
	for i, p := range capt.phases {
		if capt.rounds[i] != i {
			t.Errorf("observation %d is for round %d", i, capt.rounds[i])
		}
		if p.LocalNS <= 0 || p.TotalNS <= 0 {
			t.Errorf("round %d: empty local/total timing: %+v", i, p)
		}
		if p.TotalNS < p.LocalNS {
			t.Errorf("round %d: total %d < local %d", i, p.TotalNS, p.LocalNS)
		}
		evalRound := env.EvalEvery > 0 && ((i+1)%env.EvalEvery == 0 || i == env.Rounds-1)
		if evalRound && p.EvalNS <= 0 {
			t.Errorf("round %d evaluated but EvalNS = %d", i, p.EvalNS)
		}
		if !evalRound && p.EvalNS != 0 {
			t.Errorf("round %d did not evaluate but EvalNS = %d", i, p.EvalNS)
		}
	}
	if capt.endCalls != 1 || capt.aborted || capt.completed != env.Rounds {
		t.Errorf("run end: calls=%d completed=%d aborted=%v", capt.endCalls, capt.completed, capt.aborted)
	}
}

// TestRunEndObservedOnPanic: a hook panicking mid-run still produces the
// run-end observation (aborted, with the completed-round count) as the
// panic unwinds — a control plane never shows a dead run as training.
func TestRunEndObservedOnPanic(t *testing.T) {
	env := goldenEnv(33, 6, fl.Participation{})
	capt := &phaseCapture{}
	env.Observer = capt

	d := engine.New(env, "panic-run")
	global := d.InitGlobal()
	starts := d.StartsBuf()
	d.Hooks.Broadcast = func(int) [][]float64 {
		for i := range starts {
			starts[i] = global
		}
		return starts
	}
	d.Hooks.Aggregate = func(round int, reported []int) {
		if round == 2 {
			panic("aggregate blew up")
		}
		vecs, ws := d.Gather(reported)
		fl.WeightedAverageInto(global, vecs, ws)
	}
	d.Hooks.Served = func(int) []float64 { return global }

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("run did not panic")
			}
		}()
		d.Run()
	}()

	if capt.endCalls != 1 {
		t.Fatalf("run end observed %d times, want 1", capt.endCalls)
	}
	if !capt.aborted || capt.completed != 2 {
		t.Errorf("abort observation: completed=%d aborted=%v, want 2/true", capt.completed, capt.aborted)
	}
}

// BenchmarkRoundDriverRoundInstrumented is BenchmarkRoundDriverRound
// with telemetry fully attached (gate up, journal observer discarding) —
// the whole-round overhead pair for BENCH_pr10.json. allocs/op must
// match the bare benchmark: attaching telemetry adds zero allocations.
func BenchmarkRoundDriverRoundInstrumented(b *testing.B) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	obs.SetEnabled(true)
	env := benchEnv(1)
	env.Observer = obs.NewJournal(io.Discard, env.Local.Epochs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		methods.FedAvg{}.Run(env)
	}
}

// TestEngineMetricsAccumulate: with the gate up, a run feeds the default
// registry — rounds counted, phase histograms populated.
func TestEngineMetricsAccumulate(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	obs.SetEnabled(true)

	before := obs.Default().Snapshot()["fedsim_rounds_total"]
	env := goldenEnv(35, 4, fl.Participation{})
	methods.FedAvg{}.Run(env)
	s := obs.Default().Snapshot()
	if got := s["fedsim_rounds_total"] - before; got != 4 {
		t.Errorf("fedsim_rounds_total advanced by %v, want 4", got)
	}
	if s[`fedsim_round_phase_seconds{phase="local"}_count`] <= 0 {
		t.Errorf("local phase histogram empty: %v", s)
	}
}

// Package rng provides deterministic, splittable pseudo-random number
// streams used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: a run is
// identified by a single root seed, and every client, dataset, and round
// derives its own independent stream from that seed. The streams are based on
// SplitMix64 (for seeding/stream derivation) and a 128-bit xoshiro-style
// generator (for the bulk draws), both implemented here so results are
// identical on every platform regardless of Go's math/rand evolution.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand a root seed into well-distributed stream seeds.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rng is a deterministic pseudo-random generator (xoshiro256**).
// The zero value is not usable; construct with New or Derive.
type Rng struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	hasSpare bool
	spare    float64
}

// New returns a generator seeded from seed. Two generators built from the
// same seed produce identical sequences.
func New(seed uint64) *Rng {
	var r Rng
	r.Reseed(seed)
	return &r
}

// Reseed reinitializes r in place to exactly the state New(seed)
// produces, discarding any cached Box-Muller spare. It is the
// allocation-free form hot paths use with a caller-owned Rng.
func (r *Rng) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasSpare = false
	r.spare = 0
}

// Derive returns a new independent generator identified by the given labels.
// It is the mechanism for building per-client / per-round streams:
//
//	clientRng := root.Derive(uint64(clientID), roundNum)
//
// Derive does not disturb the parent stream.
func (r *Rng) Derive(labels ...uint64) *Rng {
	var d Rng
	r.DeriveInto(&d, labels...)
	return &d
}

// DeriveInto reseeds dst to exactly the stream Derive(labels...) would
// return, without allocating a generator. dst may be r itself.
func (r *Rng) DeriveInto(dst *Rng, labels ...uint64) {
	seed := r.s[0] ^ 0x2545f4914f6cdd1d
	for _, l := range labels {
		seed ^= splitMix64(&l)
		seed = splitMix64(&seed)
	}
	dst.Reseed(seed)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rng) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal deviate using Box-Muller.
func (r *Rng) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a random permutation of [0, n).
func (r *Rng) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills dst with a random permutation of [0, len(dst)), drawing
// exactly the variates Perm(len(dst)) draws — the allocation-free form
// for callers with a reusable buffer.
func (r *Rng) PermInto(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rng) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *Rng) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Gamma draws from a Gamma(alpha, 1) distribution using the
// Marsaglia-Tsang method (with Johnk-style boosting for alpha < 1).
func (r *Rng) Gamma(alpha float64) float64 {
	if alpha <= 0 {
		panic("rng: Gamma with non-positive alpha")
	}
	if alpha < 1 {
		// boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet draws a probability vector from a symmetric Dirichlet(alpha)
// distribution of the given dimension.
func (r *Rng) Dirichlet(alpha float64, dim int) []float64 {
	if dim <= 0 {
		panic("rng: Dirichlet with non-positive dimension")
	}
	p := make([]float64, dim)
	var sum float64
	for i := range p {
		p[i] = r.Gamma(alpha)
		sum += p[i]
	}
	if sum == 0 {
		// Degenerate draw (all gammas underflowed): fall back to one-hot.
		p[r.Intn(dim)] = 1
		return p
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

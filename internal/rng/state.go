package rng

import (
	"fmt"
	"math"
)

// State is a serializable snapshot of a generator's position: the four
// xoshiro256** state words plus the Box-Muller spare (flag word, then the
// spare deviate's bits). Capturing and restoring it resumes a stream at
// exactly the draw it would have produced next, which is what lets a
// checkpointed run replay as if it was never interrupted.
type State [6]uint64

// State returns r's current position.
func (r *Rng) State() State {
	var st State
	copy(st[:4], r.s[:])
	if r.hasSpare {
		st[4] = 1
	}
	st[5] = math.Float64bits(r.spare)
	return st
}

// Restore sets r to exactly the captured position: the next draws equal
// what the captured generator would have produced. It rejects states no
// generator can be in (all-zero core, a non-boolean spare flag, a
// non-finite spare deviate) so positions read off a wire or a checkpoint
// file are validated rather than trusted.
func (r *Rng) Restore(st State) error {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		return fmt.Errorf("rng: all-zero generator state")
	}
	if st[4] > 1 {
		return fmt.Errorf("rng: spare flag word %d is not boolean", st[4])
	}
	spare := math.Float64frombits(st[5])
	if st[4] == 1 && (math.IsNaN(spare) || math.IsInf(spare, 0)) {
		return fmt.Errorf("rng: non-finite cached spare deviate")
	}
	copy(r.s[:], st[:4])
	r.hasSpare = st[4] == 1
	r.spare = spare
	return nil
}

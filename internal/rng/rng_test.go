package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Derive(1)
	c2 := root.Derive(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("derived streams with different labels collided on first draw")
	}
	// Derive must not disturb the parent stream.
	rootCopy := New(7)
	rootCopy.Derive(1)
	rootCopy.Derive(2)
	fresh := New(7)
	_ = fresh.Derive(99)
	if fresh.Uint64() != rootCopy.Uint64() {
		t.Fatal("Derive perturbed parent stream state")
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := New(5).Derive(3, 4)
	b := New(5).Derive(3, 4)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derived streams with equal labels diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(19)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Fatalf("bucket %d count %d deviates from expected %v", k, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(29)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestPermIsPermutationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaMoments(t *testing.T) {
	// Gamma(alpha,1) has mean alpha, variance alpha.
	for _, alpha := range []float64{0.1, 0.5, 1, 2, 5} {
		r := New(31)
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += r.Gamma(alpha)
		}
		mean := sum / n
		if math.Abs(mean-alpha) > 0.05*alpha+0.01 {
			t.Fatalf("Gamma(%v) mean = %v, want ~%v", alpha, mean, alpha)
		}
	}
}

func TestGammaPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	New(1).Gamma(0)
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(37)
	for _, alpha := range []float64{0.05, 0.1, 1, 10} {
		for i := 0; i < 100; i++ {
			p := r.Dirichlet(alpha, 10)
			var sum float64
			for _, v := range p {
				if v < 0 {
					t.Fatalf("Dirichlet produced negative mass %v", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Dirichlet mass sums to %v, want 1", sum)
			}
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Small alpha should concentrate mass; large alpha should spread it.
	r := New(41)
	maxAt := func(alpha float64) float64 {
		var avgMax float64
		const draws = 500
		for i := 0; i < draws; i++ {
			p := r.Dirichlet(alpha, 10)
			m := 0.0
			for _, v := range p {
				if v > m {
					m = v
				}
			}
			avgMax += m
		}
		return avgMax / draws
	}
	small, large := maxAt(0.1), maxAt(100)
	if small < 0.5 {
		t.Fatalf("Dirichlet(0.1) avg max mass = %v, expected concentrated (>0.5)", small)
	}
	if large > 0.2 {
		t.Fatalf("Dirichlet(100) avg max mass = %v, expected spread (<0.2)", large)
	}
}

func TestExpMean(t *testing.T) {
	r := New(43)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}

func TestShuffleStability(t *testing.T) {
	a := []int{1, 2, 3, 4, 5, 6, 7, 8}
	b := append([]int(nil), a...)
	New(99).Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	New(99).Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle with same seed produced different orders")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func BenchmarkDirichlet(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Dirichlet(0.1, 10)
	}
}

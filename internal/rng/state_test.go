package rng

import "testing"

// TestStateRoundTrip: capturing mid-stream and restoring into a fresh
// generator must reproduce the continuation exactly, including the cached
// Box-Muller spare.
func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	r.NormFloat64() // leaves a cached spare behind
	st := r.State()

	var q Rng
	if err := q.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := 0; i < 50; i++ {
		if a, b := r.NormFloat64(), q.NormFloat64(); a != b {
			t.Fatalf("draw %d diverged: %v vs %v", i, a, b)
		}
		if a, b := r.Uint64(), q.Uint64(); a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
	}
}

// TestStateSameSeedStable: the root state is a pure function of the seed
// (the checkpoint resume guard relies on this).
func TestStateSameSeedStable(t *testing.T) {
	if New(7).State() != New(7).State() {
		t.Fatal("same seed produced different states")
	}
	if New(7).State() == New(8).State() {
		t.Fatal("different seeds produced identical states")
	}
}

// TestRestoreRejectsInvalid: hostile states must be rejected, not trusted.
func TestRestoreRejectsInvalid(t *testing.T) {
	var r Rng
	if err := r.Restore(State{}); err == nil {
		t.Error("all-zero state accepted")
	}
	if err := r.Restore(State{1, 2, 3, 4, 7, 0}); err == nil {
		t.Error("non-boolean spare flag accepted")
	}
	nan := New(1).State()
	nan[4] = 1
	nan[5] = 0x7ff8000000000001 // NaN bits
	if err := r.Restore(nan); err == nil {
		t.Error("NaN spare accepted")
	}
}

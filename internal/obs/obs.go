// Package obs is the run telemetry layer: an allocation-free metrics
// registry (monotonic counters, gauges, fixed-bucket histograms with
// atomic hot paths), a Span phase timer, Prometheus text-format
// exposition, and a structured JSONL round journal.
//
// The package is built around two contracts the rest of the system pins
// with tests:
//
//   - Zero overhead when disabled. Instrumentation sites gate on
//     Enabled() — one atomic load — and a disabled process pays nothing
//     beyond that load: no clock reads, no atomic updates, no
//     allocations. A nil observer costs exactly a nil check.
//
//   - Allocation-free when enabled. Counter.Add, Gauge.Set,
//     Histogram.Observe, Span.End, and the journal's per-round event
//     append all run without heap allocations once warm, so attaching
//     telemetry preserves the engine's warm-round 0-alloc contract.
//     Registration (Registry.Counter and friends) may allocate; it
//     happens at setup, never on a hot path.
//
// Telemetry observes wall-clock time but never feeds it back into
// learning: results with telemetry attached are bit-identical to a bare
// run, pinned by the engine's golden and determinism suites.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide telemetry gate. Off by default: the hot
// paths of the engine, transport, and scheduler check it before reading
// clocks or touching metrics.
var enabled atomic.Bool

// Enabled reports whether telemetry collection is on.
func Enabled() bool { return enabled.Load() }

// Enable turns telemetry collection on process-wide. The control plane's
// HTTP server calls it when it starts serving /metrics; tests call it
// directly.
func Enable() { enabled.Store(true) }

// SetEnabled sets the telemetry gate explicitly (tests restore the prior
// state with it).
func SetEnabled(on bool) { enabled.Store(on) }

// base anchors the process-relative monotonic clock.
var base = time.Now()

// Now returns monotonic nanoseconds since process start. It reads the
// runtime's monotonic clock (never the wall clock, so it is immune to
// time jumps) and allocates nothing.
func Now() int64 { return int64(time.Since(base)) }

// Span measures one timed section into a Histogram of seconds. The zero
// Span is inert: StartSpan returns it when telemetry is disabled, and
// End on it is a nil check.
type Span struct {
	h     *Histogram
	start int64
}

// StartSpan begins a span recording into h (which may be nil). When
// telemetry is disabled the returned span is inert and End costs one
// branch.
func StartSpan(h *Histogram) Span {
	if h == nil || !Enabled() {
		return Span{}
	}
	return Span{h: h, start: Now()}
}

// End records the span's elapsed seconds. Safe on the zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(float64(Now()-s.start) / 1e9)
}

// defaultReg is the process-wide registry every subsystem instruments
// into; the control plane's /metrics endpoint exposes it.
var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

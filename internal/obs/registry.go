package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is get-or-create: asking twice for the
// same (name, labels) returns the same collector, so subsystems register
// idempotently at setup without coordinating. Registration locks and may
// allocate; the returned collectors' update methods are atomic and
// allocation-free.
type Registry struct {
	mu    sync.Mutex
	order []string
	fams  map[string]*family
}

// family is one metric name: its metadata plus every label-set series.
type family struct {
	name, help, kind string
	order            []string
	series           map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (CAS loop; safe for concurrent use).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Observations index into the
// bucket whose upper bound first contains the value (an implicit +Inf
// bucket catches the rest); counts and the sum are atomics, so Observe
// is lock- and allocation-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// counterFn and gaugeFn are pull-style collectors sampled at exposition
// time — for state that already lives elsewhere (scheduler counters,
// runtime stats) and would be wasteful to mirror on every update.
type counterFn func() uint64
type gaugeFn func() float64

// DurationBuckets are the default latency buckets (seconds): 100µs to
// 30s, roughly logarithmic — wide enough for a broadcast phase and a
// multi-second local-training phase on one scale.
var DurationBuckets = []float64{
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10, 30,
}

// Label formats one Prometheus label pair with the value escaped per the
// exposition format (backslash, double-quote, newline).
func Label(key, value string) string {
	var b strings.Builder
	b.WriteString(key)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteString(`"`)
	return b.String()
}

// Counter returns the counter for (name, labels), creating and
// registering it on first use. labels is a comma-joined list of
// Label(...) pairs ("" for none); help is recorded on first registration
// of the name.
func (r *Registry) Counter(name, labels, help string) *Counter {
	v := r.lookup(name, labels, help, "counter", func() any { return &Counter{} })
	return v.(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	v := r.lookup(name, labels, help, "gauge", func() any { return &Gauge{} })
	return v.(*Gauge)
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use (nil buckets selects
// DurationBuckets). Buckets must be sorted ascending; they are fixed at
// creation and ignored on later lookups of the same series.
func (r *Registry) Histogram(name, labels, help string, buckets []float64) *Histogram {
	v := r.lookup(name, labels, help, "histogram", func() any {
		if buckets == nil {
			buckets = DurationBuckets
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
			}
		}
		h := &Histogram{bounds: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		return h
	})
	return v.(*Histogram)
}

// CounterFunc registers a pull-style counter sampled at exposition time.
// First registration wins; re-registering the same series is a no-op.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	r.lookup(name, labels, help, "counter", func() any { return counterFn(fn) })
}

// GaugeFunc registers a pull-style gauge sampled at exposition time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.lookup(name, labels, help, "gauge", func() any { return gaugeFn(fn) })
}

// lookup is the get-or-create core shared by every registration form.
func (r *Registry) lookup(name, labels, help, kind string, build func() any) any {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]any)}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, kind, f.kind))
	}
	s := f.series[labels]
	if s == nil {
		s = build()
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// validName checks the Prometheus metric-name grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WritePrometheus renders every family in registration order as
// Prometheus text exposition format (version 0.0.4). The scrape path may
// allocate; it never blocks collectors' update paths beyond the
// registration lock.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := make([]byte, 0, 4096)
	for _, name := range r.order {
		f := r.fams[name]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind...)
		buf = append(buf, '\n')
		for _, labels := range f.order {
			buf = f.appendSeries(buf, labels, f.series[labels])
		}
	}
	_, err := w.Write(buf)
	return err
}

// appendSeries renders one label-set's samples.
func (f *family) appendSeries(buf []byte, labels string, s any) []byte {
	switch v := s.(type) {
	case *Counter:
		buf = appendSample(buf, f.name, labels, float64(v.Value()))
	case counterFn:
		buf = appendSample(buf, f.name, labels, float64(v()))
	case *Gauge:
		buf = appendSample(buf, f.name, labels, v.Value())
	case gaugeFn:
		buf = appendSample(buf, f.name, labels, v())
	case *Histogram:
		// Prometheus bucket counts are cumulative; ours are per-bucket.
		cum := uint64(0)
		for i, bound := range v.bounds {
			cum += v.counts[i].Load()
			buf = appendBucket(buf, f.name, labels, formatBound(bound), cum)
		}
		cum += v.counts[len(v.bounds)].Load()
		buf = appendBucket(buf, f.name, labels, "+Inf", cum)
		buf = appendSample(buf, f.name+"_sum", labels, v.Sum())
		buf = appendSample(buf, f.name+"_count", labels, float64(v.Count()))
	}
	return buf
}

func appendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = appendFloat(buf, v)
	return append(buf, '\n')
}

func appendBucket(buf []byte, name, labels, le string, cum uint64) []byte {
	buf = append(buf, name...)
	buf = append(buf, "_bucket{"...)
	if labels != "" {
		buf = append(buf, labels...)
		buf = append(buf, ',')
	}
	buf = append(buf, `le="`...)
	buf = append(buf, le...)
	buf = append(buf, `"} `...)
	buf = strconv.AppendUint(buf, cum, 10)
	return append(buf, '\n')
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func appendFloat(buf []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func appendEscapedHelp(buf []byte, help string) []byte {
	for _, r := range help {
		switch r {
		case '\\':
			buf = append(buf, `\\`...)
		case '\n':
			buf = append(buf, `\n`...)
		default:
			buf = append(buf, string(r)...)
		}
	}
	return buf
}

// Snapshot returns the current value of every counter/gauge series as
// "name{labels}" → value (histograms contribute their _count). Intended
// for tests and debugging, not hot paths.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, name := range r.order {
		f := r.fams[name]
		for _, labels := range f.order {
			key := name
			if labels != "" {
				key += "{" + labels + "}"
			}
			switch v := f.series[labels].(type) {
			case *Counter:
				out[key] = float64(v.Value())
			case counterFn:
				out[key] = float64(v())
			case *Gauge:
				out[key] = v.Value()
			case gaugeFn:
				out[key] = v()
			case *Histogram:
				out[key+"_count"] = float64(v.Count())
			}
		}
	}
	return out
}

// RegisterProcessMetrics registers pull-style process health metrics
// (uptime, goroutines, heap, GC cycles) on r. Sampling happens at scrape
// time; runtime.ReadMemStats briefly stops the world, which is
// acceptable on a scrape but is why these are not push metrics.
func RegisterProcessMetrics(r *Registry) {
	r.GaugeFunc("fedsim_process_uptime_seconds", "", "Seconds since process start.",
		func() float64 { return float64(Now()) / 1e9 })
	r.GaugeFunc("go_goroutines", "", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("go_gc_cycles_total", "", "Completed GC cycles.",
		func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return uint64(ms.NumGC)
		})
}

// sortedBounds is kept for tests that need a stable view of a
// histogram's buckets.
func (h *Histogram) Buckets() []float64 {
	out := append([]float64(nil), h.bounds...)
	sort.Float64s(out)
	return out
}

package obs_test

// Hot-path micro-benchmarks for the telemetry layer, the BENCH_pr10.json
// inputs: collector updates and the span timer must be allocation-free,
// the journal's per-round event append must be allocation-free once its
// buffer is warm, and the disabled gate must cost a branch.

import (
	"io"
	"testing"

	"fedclust/internal/fl"
	"fedclust/internal/obs"
)

func BenchmarkCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_total", "", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := obs.NewRegistry().Gauge("bench", "", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench_seconds", "", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// BenchmarkSpanEnabled is the live cost of one timed section: two clock
// reads plus a histogram observation.
func BenchmarkSpanEnabled(b *testing.B) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	obs.SetEnabled(true)
	h := obs.NewRegistry().Histogram("bench_span_seconds", "", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := obs.StartSpan(h)
		sp.End()
	}
}

// BenchmarkSpanDisabled is the zero-overhead contract: the gate check
// and nothing else — no clock reads, no atomics.
func BenchmarkSpanDisabled(b *testing.B) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	obs.SetEnabled(false)
	h := obs.NewRegistry().Histogram("bench_span_off_seconds", "", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := obs.StartSpan(h)
		sp.End()
	}
}

// BenchmarkJournalRound appends one complete round event — the
// observations a real round delivers (start, six outcomes, ledger, eval,
// phases) hand-formatted into the reused buffer and written once.
func BenchmarkJournalRound(b *testing.B) {
	j := obs.NewJournal(io.Discard, 2)
	j.ObserveRunStart("FedAvg", 1<<30, 6, 0)
	comm := &fl.CommStats{UpBytes: 1 << 20, DownBytes: 1 << 20, MeasuredUp: 1 << 19, MeasuredDown: 1 << 19}
	phases := fl.RoundPhases{SampleNS: 1000, BroadcastNS: 2000, LocalNS: 200e6, CombineNS: 1e5, EvalNS: 4e7, TotalNS: 2.5e8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.ObserveRoundStart(i, 6)
		for c := 0; c < 6; c++ {
			j.ObserveOutcome(c, 2, 0, false)
		}
		j.ObserveRoundEnd(i, 6, comm)
		j.ObserveEval(i, 0.5, 1.25)
		j.ObservePhases(i, phases)
	}
}

// BenchmarkWritePrometheus scrapes a registry of realistic size (the
// engine + transport series of a small fleet).
func BenchmarkWritePrometheus(b *testing.B) {
	r := obs.NewRegistry()
	for _, phase := range []string{"sample", "broadcast", "local", "combine", "eval", "checkpoint", "total"} {
		r.Histogram("fedsim_round_phase_seconds", obs.Label("phase", phase), "", nil).Observe(0.01)
	}
	for _, node := range []string{"n-0", "n-1", "n-2"} {
		l := obs.Label("node", node)
		r.Counter("fedsim_transport_requests_total", l, "").Add(100)
		r.Histogram("fedsim_transport_rtt_seconds", l, "", nil).Observe(0.02)
	}
	obs.RegisterProcessMetrics(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

package obs_test

// Registry semantics: get-or-create identity, kind safety, histogram
// bucketing, label escaping, and the Prometheus text exposition — every
// emitted line must parse under the exposition grammar, with cumulative
// `le` buckets and sum/count samples for histograms.

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"fedclust/internal/obs"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("fedsim_test_total", obs.Label("k", "v"), "help")
	b := r.Counter("fedsim_test_total", obs.Label("k", "v"), "ignored later")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("fedsim_test_total", obs.Label("k", "w"), "")
	if a == c {
		t.Fatal("distinct labels share a series")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("aliased counter reads %d, want 3", b.Value())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("fedsim_kind_total", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("fedsim_kind_total", "", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := obs.NewRegistry()
	for _, name := range []string{"", "2start", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid name %q accepted", name)
				}
			}()
			r.Counter(name, "", "")
		}()
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("fedsim_lat_seconds", "", "latency", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 10} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 12 {
		t.Fatalf("count %d sum %g, want 3 and 12", h.Count(), h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`fedsim_lat_seconds_bucket{le="1"} 1`,
		`fedsim_lat_seconds_bucket{le="2"} 2`,
		`fedsim_lat_seconds_bucket{le="5"} 2`,
		`fedsim_lat_seconds_bucket{le="+Inf"} 3`,
		`fedsim_lat_seconds_sum 12`,
		`fedsim_lat_seconds_count 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramUnsortedBucketsPanic(t *testing.T) {
	r := obs.NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("descending buckets accepted")
		}
	}()
	r.Histogram("fedsim_bad_seconds", "", "", []float64{2, 1})
}

func TestLabelEscaping(t *testing.T) {
	got := obs.Label("node", "a\"b\\c\nd")
	want := `node="a\"b\\c\nd"`
	if got != want {
		t.Fatalf("Label escaped to %q, want %q", got, want)
	}
}

// sampleLine matches one exposition sample: metric name, optional label
// block, one float value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]Inf|[0-9eE.+-]+)$`)

// TestWritePrometheusParses scrapes a registry exercising every
// collector kind and checks each line against the text exposition
// grammar: HELP before TYPE before samples, every sample parseable.
func TestWritePrometheusParses(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("fedsim_requests_total", obs.Label("node", "n-1"), "reqs").Add(7)
	r.Gauge("fedsim_temp", "", "a gauge\nwith newline help").Set(-2.5)
	r.GaugeFunc("fedsim_pull", obs.Label("a", "b")+","+obs.Label("c", "d"), "", func() float64 { return 1 })
	r.CounterFunc("fedsim_pull_total", "", "", func() uint64 { return 9 })
	r.Histogram("fedsim_dur_seconds", "", "", nil).Observe(0.004)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("exposition does not end in a newline")
	}
	sawType := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if strings.Contains(line, "\n") {
				t.Errorf("line %d: unescaped newline in HELP", i)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE %q", i, line)
			}
			sawType[parts[2]] = true
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: %q does not match the exposition grammar", i, line)
			}
			name := line[:strings.IndexAny(line, "{ ")]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !sawType[name] && !sawType[base] {
				t.Errorf("line %d: sample %s precedes its TYPE", i, name)
			}
			val := line[strings.LastIndexByte(line, ' ')+1:]
			if val != "NaN" && val != "+Inf" && val != "-Inf" {
				if _, err := strconv.ParseFloat(val, 64); err != nil {
					t.Errorf("line %d: unparseable value %q", i, val)
				}
			}
		}
	}
	if !strings.Contains(out, `fedsim_requests_total{node="n-1"} 7`) {
		t.Errorf("counter sample missing:\n%s", out)
	}
	if !strings.Contains(out, "fedsim_temp -2.5") {
		t.Errorf("gauge sample missing:\n%s", out)
	}
	if !strings.Contains(out, `fedsim_pull{a="b",c="d"} 1`) {
		t.Errorf("multi-label pull gauge missing:\n%s", out)
	}
}

func TestSnapshot(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("fedsim_a_total", "", "").Add(2)
	r.Gauge("fedsim_b", obs.Label("x", "y"), "").Set(1.5)
	r.Histogram("fedsim_c_seconds", "", "", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s["fedsim_a_total"] != 2 || s[`fedsim_b{x="y"}`] != 1.5 || s["fedsim_c_seconds_count"] != 1 {
		t.Fatalf("snapshot: %v", s)
	}
}

func TestProcessMetricsRegister(t *testing.T) {
	r := obs.NewRegistry()
	obs.RegisterProcessMetrics(r)
	s := r.Snapshot()
	if s["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v", s["go_goroutines"])
	}
	if s["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v", s["go_heap_alloc_bytes"])
	}
}

// TestConcurrentUpdatesAndScrapes hammers one counter, gauge, and
// histogram from many goroutines while scraping — the collectors'
// update paths must be safe against concurrent exposition (run under
// -race in CI's quick job).
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := obs.NewRegistry()
	ctr := r.Counter("fedsim_conc_total", "", "")
	g := r.Gauge("fedsim_conc", "", "")
	h := r.Histogram("fedsim_conc_seconds", "", "", nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ctr.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if ctr.Value() != workers*per {
		t.Errorf("counter %d, want %d", ctr.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge %g, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count %d, want %d", h.Count(), workers*per)
	}
}

func TestSpanGate(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)

	r := obs.NewRegistry()
	h := r.Histogram("fedsim_span_seconds", "", "", nil)

	obs.SetEnabled(false)
	sp := obs.StartSpan(h)
	sp.End()
	if h.Count() != 0 {
		t.Fatal("disabled span observed")
	}
	obs.StartSpan(nil).End() // nil histogram: inert either way

	obs.SetEnabled(true)
	sp = obs.StartSpan(h)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("enabled span recorded %d observations, want 1", h.Count())
	}
	if h.Sum() < 0 {
		t.Fatalf("span recorded negative elapsed %g", h.Sum())
	}
}

func TestNowMonotonic(t *testing.T) {
	a := obs.Now()
	b := obs.Now()
	if b < a {
		t.Fatalf("Now went backwards: %d then %d", a, b)
	}
}

package obs_test

// Journal round-trip: the observer feed of a fabricated run must decode
// (ReadEvents) into events whose classification, cumulative ledger, and
// per-round deltas reconcile with what the control tracker would report
// for the same feed.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"fedclust/internal/fl"
	"fedclust/internal/obs"
)

// feedRun drives j through a fabricated 2-round run mirroring the
// control-plane test fixture: one of every outcome class, an eval, a
// defense tally, a checkpoint, and phase timings.
func feedRun(j *obs.Journal) {
	j.ObserveRunStart("FedAvg", 4, 3, 2)
	j.ObserveRoundStart(2, 3)
	j.ObserveOutcome(0, 2, 0, false) // on time
	j.ObserveOutcome(1, 1, 0, false) // partial (1 of 2 epochs)
	j.ObserveOutcome(2, 2, 0, true)  // failed
	j.ObserveRoundEnd(2, 2, &fl.CommStats{UpBytes: 100, DownBytes: 200, MeasuredUp: 60, MeasuredDown: 120})
	j.ObserveEval(2, 0.5, 1.25)
	j.ObservePhases(2, fl.RoundPhases{SampleNS: 10, LocalNS: 1000, TotalNS: 1100})
	j.ObserveRoundStart(3, 3)
	j.ObserveOutcome(0, 2, 1, false)  // late
	j.ObserveOutcome(1, 0, -1, false) // offline
	j.ObserveOutcome(2, 2, 0, false)  // on time
	j.ObserveDefense(3, 1, 2)
	j.ObserveRoundEnd(3, 3, &fl.CommStats{UpBytes: 300, DownBytes: 400, MeasuredUp: 180, MeasuredDown: 240})
	j.ObserveCheckpoint(4)
	j.ObservePhases(3, fl.RoundPhases{LocalNS: 900, CheckpointNS: 50, TotalNS: 1000})
	j.ObserveRunEnd(4, false)
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf, 2)
	feedRun(j)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want run_start + 2 rounds + run_end:\n%+v", len(events), events)
	}

	rs := events[0]
	if rs.Event != "run_start" || rs.Method != "FedAvg" || rs.TotalRounds != 4 || rs.NClients != 3 || rs.StartRound != 2 {
		t.Errorf("run_start: %+v", rs)
	}
	if rs.TS == "" {
		t.Error("run_start carries no timestamp")
	}

	r1 := events[1]
	if r1.Event != "round" || r1.Round != 3 { // 1-based, matches /status
		t.Errorf("first round event: %+v", r1)
	}
	if r1.Invited != 3 || r1.Reported != 2 ||
		r1.OnTime != 1 || r1.Partial != 1 || r1.Failed != 1 || r1.Late != 0 || r1.Offline != 0 {
		t.Errorf("round 1 classification: %+v", r1)
	}
	if r1.UpBytes != 100 || r1.UpDelta != 100 || r1.DownBytes != 200 || r1.DownDelta != 200 {
		t.Errorf("round 1 ledger: %+v", r1)
	}
	if r1.EvalRound != 2 || r1.MeanAcc != 0.5 || r1.MeanLoss != 1.25 {
		t.Errorf("round 1 eval: %+v", r1)
	}
	if r1.Phases.LocalNS != 1000 || r1.Phases.TotalNS != 1100 {
		t.Errorf("round 1 phases: %+v", r1.Phases)
	}
	if r1.Checkpoint {
		t.Error("round 1 flagged a checkpoint that fired in round 2")
	}

	r2 := events[2]
	if r2.Round != 4 || r2.OnTime != 1 || r2.Late != 1 || r2.Offline != 1 {
		t.Errorf("round 2 classification: %+v", r2)
	}
	if r2.Masked != 1 || r2.Suspects != 2 {
		t.Errorf("round 2 defense: %+v", r2)
	}
	// Cumulative mirrors the ledger, deltas are per round.
	if r2.UpBytes != 300 || r2.UpDelta != 200 || r2.DownBytes != 400 || r2.DownDelta != 200 {
		t.Errorf("round 2 ledger: %+v", r2)
	}
	if !r2.Checkpoint {
		t.Error("round 2 lost its checkpoint flag")
	}
	if r2.EvalRound != -1 {
		t.Errorf("round 2 eval_round = %d, want -1 (no eval)", r2.EvalRound)
	}

	re := events[3]
	if re.Event != "run_end" || re.Completed != 4 || re.Aborted {
		t.Errorf("run_end: %+v", re)
	}
}

// TestJournalMultipleRuns: a second ObserveRunStart resets the per-run
// state, so one journal file can hold a whole method sweep.
func TestJournalMultipleRuns(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf, 2)
	feedRun(j)
	feedRun(j)
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 8 {
		t.Fatalf("got %d events, want 8", len(events))
	}
	// The second run's first round must restart the delta baseline.
	r := events[5]
	if r.Event != "round" || r.UpBytes != 100 || r.UpDelta != 100 {
		t.Errorf("second run round 1: %+v", r)
	}
	if events[7].Event != "run_end" {
		t.Errorf("second run missing run_end: %+v", events[7])
	}
}

func TestJournalRunEndOnce(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf, 0)
	j.ObserveRunStart("FedAvg", 2, 3, 0)
	j.ObserveRunEnd(1, true)
	j.ObserveRunEnd(1, true) // engine's deferred observation may double-fire on panic paths
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Event != "run_end" || !events[1].Aborted || events[1].Completed != 1 {
		t.Fatalf("events: %+v", events)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestJournalQuietAfterError: a write error must never take training
// down — the journal records the first error and goes quiet.
func TestJournalQuietAfterError(t *testing.T) {
	j := obs.NewJournal(&failWriter{n: 1}, 2)
	feedRun(j) // first write lands, the rest fail silently
	if err := j.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Err() = %v, want the write error", err)
	}
}

// TestReadEventsBadLine: a corrupt line aborts with its line number so
// truncated tails are diagnosable.
func TestReadEventsBadLine(t *testing.T) {
	in := strings.NewReader(`{"event":"run_start"}` + "\n" + `{"event":` + "\n")
	events, err := obs.ReadEvents(in)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse error", err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events before the bad line, want 1", len(events))
	}
}

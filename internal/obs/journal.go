package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"fedclust/internal/fl"
)

// Event is one decoded journal line. The journal writes three kinds:
// "run_start" (method and run shape), "round" (one per completed round:
// outcome counts, defense tallies, cumulative and delta traffic, eval,
// checkpoint flag, phase durations), and "run_end" (completed rounds and
// whether the run aborted). Cumulative byte fields mirror /status
// exactly, so a journal's last round event must agree with the control
// plane's snapshot.
type Event struct {
	Event string `json:"event"`
	TS    string `json:"ts"`

	// run_start fields.
	Method      string `json:"method,omitempty"`
	TotalRounds int    `json:"total_rounds,omitempty"`
	NClients    int    `json:"n_clients,omitempty"`
	StartRound  int    `json:"start_round,omitempty"`

	// round fields. Round is the completed-round ordinal (1-based, to
	// match /status "round"). Outcome counts classify this round's
	// invited clients the same way the control tracker does.
	Round    int `json:"round,omitempty"`
	Invited  int `json:"invited,omitempty"`
	Reported int `json:"reported,omitempty"`
	OnTime   int `json:"on_time,omitempty"`
	Partial  int `json:"partial,omitempty"`
	Late     int `json:"late,omitempty"`
	Offline  int `json:"offline,omitempty"`
	Failed   int `json:"failed,omitempty"`
	Masked   int `json:"masked,omitempty"`
	Suspects int `json:"suspects,omitempty"`

	// Cumulative traffic ledger (matches /status) and this round's deltas.
	UpBytes      int64 `json:"up_bytes,omitempty"`
	DownBytes    int64 `json:"down_bytes,omitempty"`
	MeasuredUp   int64 `json:"measured_up_bytes,omitempty"`
	MeasuredDown int64 `json:"measured_down_bytes,omitempty"`
	UpDelta      int64 `json:"up_delta,omitempty"`
	DownDelta    int64 `json:"down_delta,omitempty"`

	// EvalRound is -1 on rounds that did not evaluate.
	EvalRound int     `json:"eval_round"`
	MeanAcc   float64 `json:"mean_acc,omitempty"`
	MeanLoss  float64 `json:"mean_loss,omitempty"`

	Checkpoint bool           `json:"checkpoint,omitempty"`
	Phases     fl.RoundPhases `json:"phases,omitempty"`

	// run_end fields.
	Completed int  `json:"completed,omitempty"`
	Aborted   bool `json:"aborted,omitempty"`
}

// Journal is an fl.RoundObserver that appends one JSONL event per round
// to a writer, leaving an analyzable trace on disk for long runs. It
// implements the Defense/Phase/RunEnd extensions; ObservePhases is the
// round's closing observation, so the round event carries everything the
// earlier observations accumulated (including eval and checkpoint, which
// fire before it).
//
// The per-round hot path is allocation-free once warm: events are
// hand-appended (strconv) into a reused buffer and written with a single
// Write. Calls arrive on the driver goroutine between phases; the mutex
// only guards against concurrent Flush/Close from other goroutines.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	epochs int
	buf    []byte
	err    error

	// run state
	method      string
	totalRounds int
	nClients    int
	startRound  int
	ended       bool

	// per-round scratch, reset after each round event
	invited, reported     int
	onTime, partial, late int
	offline, failed       int
	masked, suspects      int
	evalRound             int
	evalAcc, evalLoss     float64
	ckptThisRound         bool
	up, down, mup, mdown  int64
	prevUp, prevDown      int64
	prevMUp, prevMDown    int64
	roundsWritten         int
}

// NewJournal returns a journal writing JSONL events to w. localEpochs is
// the configured full local pass, used to classify on-time-but-short
// deliveries as partial (0 merges partial into on-time, matching
// control.NewTracker). If w is also an io.Closer, Close closes it.
func NewJournal(w io.Writer, localEpochs int) *Journal {
	j := &Journal{w: w, epochs: localEpochs, evalRound: -1}
	j.buf = make([]byte, 0, 1024)
	if c, ok := w.(io.Closer); ok {
		j.closer = c
	}
	return j
}

// Err returns the first write error, if any. The journal goes quiet
// after an error rather than failing the run: telemetry must never take
// training down.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close writes nothing further and closes the underlying writer when it
// is closable. Safe to call after ObserveRunEnd.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closer != nil {
		err := j.closer.Close()
		j.closer = nil
		if j.err == nil {
			j.err = err
		}
		return err
	}
	return j.err
}

// ObserveRunStart implements fl.RoundObserver.
func (j *Journal) ObserveRunStart(method string, totalRounds, nClients, startRound int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.method, j.totalRounds, j.nClients, j.startRound = method, totalRounds, nClients, startRound
	j.ended = false
	j.roundsWritten = 0
	j.resetRound()
	j.prevUp, j.prevDown, j.prevMUp, j.prevMDown = 0, 0, 0, 0
	j.buf = j.buf[:0]
	j.buf = append(j.buf, `{"event":"run_start","ts":"`...)
	j.buf = appendTS(j.buf)
	j.buf = append(j.buf, `","method":`...)
	j.buf = appendJSONString(j.buf, method)
	j.buf = append(j.buf, `,"total_rounds":`...)
	j.buf = strconv.AppendInt(j.buf, int64(totalRounds), 10)
	j.buf = append(j.buf, `,"n_clients":`...)
	j.buf = strconv.AppendInt(j.buf, int64(nClients), 10)
	j.buf = append(j.buf, `,"start_round":`...)
	j.buf = strconv.AppendInt(j.buf, int64(startRound), 10)
	j.buf = append(j.buf, "}\n"...)
	j.flushLocked()
}

// ObserveRoundStart implements fl.RoundObserver.
func (j *Journal) ObserveRoundStart(round, invited int) {
	j.mu.Lock()
	j.invited = invited
	j.mu.Unlock()
}

// ObserveOutcome implements fl.RoundObserver, classifying like the
// control tracker so journal totals reconcile with /clients.
func (j *Journal) ObserveOutcome(client, done, lag int, failed bool) {
	j.mu.Lock()
	switch {
	case failed:
		j.failed++
	case lag < 0 || done <= 0:
		j.offline++
	case lag > 0:
		j.late++
	case j.epochs > 0 && done < j.epochs:
		j.partial++
	default:
		j.onTime++
	}
	j.mu.Unlock()
}

// ObserveDefense implements fl.DefenseObserver.
func (j *Journal) ObserveDefense(round, masked, suspects int) {
	j.mu.Lock()
	j.masked, j.suspects = masked, suspects
	j.mu.Unlock()
}

// ObserveRoundEnd implements fl.RoundObserver, capturing the cumulative
// ledger; the round event is deferred to ObservePhases so eval and
// checkpoint observations land in the same line.
func (j *Journal) ObserveRoundEnd(round, reported int, comm *fl.CommStats) {
	j.mu.Lock()
	j.reported = reported
	j.up, j.down = comm.UpBytes, comm.DownBytes
	j.mup, j.mdown = comm.MeasuredUp, comm.MeasuredDown
	j.mu.Unlock()
}

// ObserveEval implements fl.RoundObserver.
func (j *Journal) ObserveEval(round int, meanAcc, meanLoss float64) {
	j.mu.Lock()
	j.evalRound, j.evalAcc, j.evalLoss = round, meanAcc, meanLoss
	j.mu.Unlock()
}

// ObserveCheckpoint implements fl.RoundObserver.
func (j *Journal) ObserveCheckpoint(round int) {
	j.mu.Lock()
	j.ckptThisRound = true
	j.mu.Unlock()
}

// ObservePhases implements fl.PhaseObserver: the closing observation of
// each round, where the accumulated round event is written.
func (j *Journal) ObservePhases(round int, phases fl.RoundPhases) {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := j.buf[:0]
	b = append(b, `{"event":"round","ts":"`...)
	b = appendTS(b)
	b = append(b, `","round":`...)
	b = strconv.AppendInt(b, int64(round+1), 10)
	b = appendIntField(b, "invited", j.invited)
	b = appendIntField(b, "reported", j.reported)
	b = appendIntField(b, "on_time", j.onTime)
	b = appendIntField(b, "partial", j.partial)
	b = appendIntField(b, "late", j.late)
	b = appendIntField(b, "offline", j.offline)
	b = appendIntField(b, "failed", j.failed)
	b = appendIntField(b, "masked", j.masked)
	b = appendIntField(b, "suspects", j.suspects)
	b = appendInt64Field(b, "up_bytes", j.up)
	b = appendInt64Field(b, "down_bytes", j.down)
	b = appendInt64Field(b, "measured_up_bytes", j.mup)
	b = appendInt64Field(b, "measured_down_bytes", j.mdown)
	b = appendInt64Field(b, "up_delta", j.up-j.prevUp)
	b = appendInt64Field(b, "down_delta", j.down-j.prevDown)
	b = appendIntField(b, "eval_round", j.evalRound)
	if j.evalRound >= 0 {
		b = append(b, `,"mean_acc":`...)
		b = strconv.AppendFloat(b, j.evalAcc, 'g', -1, 64)
		b = append(b, `,"mean_loss":`...)
		b = strconv.AppendFloat(b, j.evalLoss, 'g', -1, 64)
	}
	if j.ckptThisRound {
		b = append(b, `,"checkpoint":true`...)
	}
	b = append(b, `,"phases":{`...)
	b = appendPhase(b, `"sample_ns":`, phases.SampleNS)
	b = appendPhase(b, `,"broadcast_ns":`, phases.BroadcastNS)
	b = appendPhase(b, `,"local_ns":`, phases.LocalNS)
	b = appendPhase(b, `,"combine_ns":`, phases.CombineNS)
	b = appendPhase(b, `,"eval_ns":`, phases.EvalNS)
	b = appendPhase(b, `,"checkpoint_ns":`, phases.CheckpointNS)
	b = appendPhase(b, `,"total_ns":`, phases.TotalNS)
	b = append(b, "}}\n"...)
	j.buf = b
	j.prevUp, j.prevDown = j.up, j.down
	j.prevMUp, j.prevMDown = j.mup, j.mdown
	j.roundsWritten++
	j.resetRound()
	j.flushLocked()
}

// ObserveRunEnd implements fl.RunEndObserver.
func (j *Journal) ObserveRunEnd(completed int, aborted bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ended {
		return
	}
	j.ended = true
	b := j.buf[:0]
	b = append(b, `{"event":"run_end","ts":"`...)
	b = appendTS(b)
	b = append(b, `","eval_round":-1,"completed":`...)
	b = strconv.AppendInt(b, int64(completed), 10)
	if aborted {
		b = append(b, `,"aborted":true`...)
	}
	b = append(b, "}\n"...)
	j.buf = b
	j.flushLocked()
}

func (j *Journal) resetRound() {
	j.invited, j.reported = 0, 0
	j.onTime, j.partial, j.late, j.offline, j.failed = 0, 0, 0, 0, 0
	j.masked, j.suspects = 0, 0
	j.evalRound, j.evalAcc, j.evalLoss = -1, 0, 0
	j.ckptThisRound = false
}

func (j *Journal) flushLocked() {
	if j.err != nil || j.w == nil {
		return
	}
	if _, err := j.w.Write(j.buf); err != nil {
		j.err = err
	}
}

func appendTS(b []byte) []byte {
	return time.Now().UTC().AppendFormat(b, time.RFC3339Nano)
}

func appendIntField(b []byte, name string, v int) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, int64(v), 10)
}

func appendInt64Field(b []byte, name string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

func appendPhase(b []byte, prefix string, v int64) []byte {
	b = append(b, prefix...)
	return strconv.AppendInt(b, v, 10)
}

// appendJSONString appends s as a JSON string literal with the common
// escapes (method names are plain, but the journal escapes anyway).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch {
		case r == '"':
			b = append(b, `\"`...)
		case r == '\\':
			b = append(b, `\\`...)
		case r == '\n':
			b = append(b, `\n`...)
		case r == '\t':
			b = append(b, `\t`...)
		case r < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, r)...)
		default:
			b = append(b, string(r)...)
		}
	}
	return append(b, '"')
}

// ReadEvents decodes a JSONL journal stream. Lines that fail to parse
// abort with the line number, so truncated tails are diagnosable.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return out, fmt.Errorf("journal line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

var (
	_ fl.RoundObserver   = (*Journal)(nil)
	_ fl.DefenseObserver = (*Journal)(nil)
	_ fl.PhaseObserver   = (*Journal)(nil)
	_ fl.RunEndObserver  = (*Journal)(nil)
)

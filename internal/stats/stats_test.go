package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if !almostEq(r.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("running mean %v != batch mean %v", r.Mean(), Mean(xs))
	}
	if !almostEq(r.Std(), Std(xs), 1e-12) {
		t.Fatalf("running std %v != batch std %v", r.Std(), Std(xs))
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d, want %d", r.N(), len(xs))
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Std() != 0 {
		t.Fatal("empty Running should report zero moments")
	}
	r.Add(5)
	if r.Mean() != 5 || r.Var() != 0 {
		t.Fatal("single observation: mean should be the value, variance 0")
	}
}

func TestRunningPropertyMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		return almostEq(r.Mean(), Mean(xs), 1e-6*(1+math.Abs(Mean(xs)))) &&
			almostEq(r.Std(), Std(xs), 1e-6*(1+Std(xs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdBasics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	// Unbiased std of this classic set is sqrt(32/7).
	if s := Std(xs); !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("Std = %v, want %v", s, math.Sqrt(32.0/7.0))
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should give zero moments")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9, 2}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatal("Min/Max wrong")
	}
	if m := Median(xs); !almostEq(m, 4, 1e-12) { // sorted: 1 2 3 5 8 9 → (3+5)/2
		t.Fatalf("Median = %v, want 4", m)
	}
	if m := Median([]float64{7}); m != 7 {
		t.Fatalf("Median single = %v, want 7", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := Quantile(xs, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); !almostEq(q, 5, 1e-12) {
		t.Fatalf("q0.5 = %v", q)
	}
	if q := Quantile(xs, 0.25); !almostEq(q, 2.5, 1e-12) {
		t.Fatalf("q0.25 = %v", q)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{3, 9, 1, 9, 0}
	if ArgMax(xs) != 1 {
		t.Fatal("ArgMax should return first maximal index")
	}
	if ArgMin(xs) != 4 {
		t.Fatal("ArgMin wrong")
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]float64{1, 0, 0}); h != 0 {
		t.Fatalf("one-hot entropy = %v, want 0", h)
	}
	u := []float64{0.25, 0.25, 0.25, 0.25}
	if h := Entropy(u); !almostEq(h, math.Log(4), 1e-12) {
		t.Fatalf("uniform entropy = %v, want ln4", h)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 2, 4}
	if !Normalize(xs) {
		t.Fatal("Normalize returned false on valid input")
	}
	if !almostEq(xs[0], 0.25, 1e-12) || !almostEq(xs[2], 0.5, 1e-12) {
		t.Fatalf("Normalize result %v", xs)
	}
	zero := []float64{0, 0}
	if Normalize(zero) {
		t.Fatal("Normalize of zero vector should return false")
	}
}

func TestMeanStdFormat(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(3)
	if got := r.String(); got != "2.00 ± 1.41" {
		t.Fatalf("String() = %q", got)
	}
	if got := MeanStd([]float64{1, 3}); got != "2.00 ± 1.41" {
		t.Fatalf("MeanStd = %q", got)
	}
}

// Package stats provides small statistical helpers used by the experiment
// harness: running moments, summaries over repeated trials, and mean±std
// formatting matching the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates mean and variance online (Welford's algorithm).
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations seen.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 when n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the unbiased sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// String renders the accumulator as "mean ± std" with two decimals,
// the format the paper's Table I uses.
func (r *Running) String() string {
	return fmt.Sprintf("%.2f ± %.2f", r.Mean(), r.Std())
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the unbiased standard deviation of xs (0 when len < 2).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of middle two for even length).
// It panics on empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on empty input or
// out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile q out of [0,1]")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c) == 1 {
		return c[0]
	}
	pos := q * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c[lo]
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// MeanStd formats xs as "mean ± std" with two decimals.
func MeanStd(xs []float64) string {
	return fmt.Sprintf("%.2f ± %.2f", Mean(xs), Std(xs))
}

// ArgMax returns the index of the maximum element (first on ties).
// It panics on empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element (first on ties).
// It panics on empty input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Zero-probability entries contribute zero. Negative entries panic.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v < 0 {
			panic("stats: Entropy of negative probability")
		}
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// Normalize scales xs in place so it sums to 1. If the sum is zero the
// vector is left unchanged and false is returned.
func Normalize(xs []float64) bool {
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		return false
	}
	for i := range xs {
		xs[i] /= s
	}
	return true
}

package transport_test

// Rejoin suite: a node running ServeLoop must survive a coordinator
// crash — disconnect without Bye, re-dial within the window, handshake
// with the restarted coordinator, and serve bit-identical training — and
// must refuse to serve a restarted coordinator whose spec differs from
// the one it joined (the SpecHash guard, shared with checkpoint resume).

import (
	"math"
	"strings"
	"testing"
	"time"

	"fedclust/internal/fl"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

func TestSpecHash(t *testing.T) {
	a, err := goldenSpec(77).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := goldenSpec(78).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if transport.SpecHash(a) != transport.SpecHash(a) {
		t.Fatal("SpecHash is not deterministic")
	}
	if transport.SpecHash(a) == transport.SpecHash(b) {
		t.Fatal("different specs hashed equal")
	}
	if transport.SpecHash(nil) == transport.SpecHash(a) {
		t.Fatal("empty spec collides with a real one")
	}
}

// startServeLoop launches one ServeLoop node; the returned channel
// yields its final error.
func startServeLoop(t *testing.T, addr string, window time.Duration) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		done <- transport.ServeLoop(addr, "n1", window, 10*time.Millisecond,
			func(lo, hi int, specBytes []byte) (*transport.Service, error) {
				spec, err := transport.ParseSpec(specBytes)
				if err != nil {
					return nil, err
				}
				env, err := spec.Build()
				if err != nil {
					return nil, err
				}
				return transport.NewService(env), nil
			})
	}()
	return done
}

// trainOnce sends one fixed request through the node and returns the
// resulting parameter vector.
func trainOnce(t *testing.T, nd *transport.Node, numParams int) []float64 {
	t.Helper()
	out := make([]float64, numParams)
	req := &fl.RemoteRequest{
		Client: 0, Round: 0, Cluster: -1, Layer: fl.FullParams,
		Cfg:   goldenSpec(77).Local,
		Start: make([]float64, numParams),
	}
	if _, _, err := nd.Train(req, out); err != nil {
		t.Fatalf("train: %v", err)
	}
	return out
}

func TestServeLoopRejoinsAfterCoordinatorCrash(t *testing.T) {
	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	specBytes, err := goldenSpec(77).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env, err := goldenSpec(77).Build()
	if err != nil {
		t.Fatal(err)
	}
	numParams := env.NewModel().NumParams()

	done := startServeLoop(t, coord.Addr(), 10*time.Second)
	nodes, err := coord.AcceptNodes(1, 6, specBytes, wire.Float64, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	first := trainOnce(t, nodes[0], numParams)

	// Crash: sever without Bye. The node must re-dial and handshake with
	// the "restarted" coordinator (same listener, second AcceptNodes).
	nodes[0].AbortForTest()
	nodes, err = coord.AcceptNodes(1, 6, specBytes, wire.Float64, 10*time.Second)
	if err != nil {
		t.Fatalf("re-accept after crash: %v", err)
	}
	second := trainOnce(t, nodes[0], numParams)
	for i := range first {
		if math.Float64bits(first[i]) != math.Float64bits(second[i]) {
			t.Fatalf("rejoined node's training diverged at param %d: %v != %v", i, first[i], second[i])
		}
	}

	// Orderly goodbye ends the loop with nil despite the open window.
	nodes[0].Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeLoop after Bye: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeLoop did not return after Bye")
	}
}

func TestServeLoopRejectsSpecChange(t *testing.T) {
	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	specA, err := goldenSpec(77).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	specB, err := goldenSpec(78).Marshal()
	if err != nil {
		t.Fatal(err)
	}

	done := startServeLoop(t, coord.Addr(), 10*time.Second)
	nodes, err := coord.AcceptNodes(1, 6, specA, wire.Float64, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].AbortForTest()
	// The "restarted" coordinator presents a different spec: the node
	// must handshake, notice the hash mismatch, and bail out.
	if _, err = coord.AcceptNodes(1, 6, specB, wire.Float64, 10*time.Second); err != nil {
		t.Fatalf("re-accept: %v", err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "different spec") {
			t.Fatalf("want a spec-mismatch error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeLoop did not reject the changed spec")
	}
}

func TestServeLoopFirstJoinFailureIsFatal(t *testing.T) {
	// Nothing listening: the first join fails, and ServeLoop must report
	// it immediately instead of retrying a run it never handshaked into.
	done := startServeLoop(t, "127.0.0.1:1", 10*time.Second)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ServeLoop returned nil without ever joining")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeLoop retried a first join that should be fatal")
	}
}

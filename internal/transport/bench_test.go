package transport_test

// Transport dispatch benchmarks: what one client visit costs over each
// transport, and what the pure protocol layer (frame build + parse +
// codec) costs without training. Loopback vs TCP isolates the price of
// real sockets; the encode benchmarks isolate the price of the frames.

import (
	"testing"
	"time"

	"fedclust/internal/fl"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

// benchTransport builds a golden-env service behind the given dial mode.
func benchLoopback(b *testing.B) (transport.Transport, *fl.Env, int) {
	b.Helper()
	env, err := goldenSpec(77).Build()
	if err != nil {
		b.Fatal(err)
	}
	svc := transport.NewService(env)
	return transport.NewLoopback(svc, wire.Float64), env, svc.NumParams()
}

func benchTCP(b *testing.B) (transport.Transport, *fl.Env, int) {
	b.Helper()
	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { coord.Close() })
	specBytes, err := goldenSpec(77).Marshal()
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		conn, _, _, sb, err := transport.Join(coord.Addr(), "bench-node")
		if err != nil {
			return
		}
		spec, err := transport.ParseSpec(sb)
		if err != nil {
			return
		}
		env, err := spec.Build()
		if err != nil {
			return
		}
		_ = transport.NewService(env).ServeConn(conn)
	}()
	nodes, err := coord.AcceptNodes(1, 6, specBytes, wire.Float64, 30*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { nodes[0].Close() })
	env, err := goldenSpec(77).Build()
	if err != nil {
		b.Fatal(err)
	}
	return nodes[0].TCP, env, transport.NewService(env).NumParams()
}

func benchTrain(b *testing.B, tr transport.Transport, env *fl.Env, numParams int) {
	req := &fl.RemoteRequest{
		Client: 0, Round: 0, Cluster: -1, Layer: fl.FullParams,
		Cfg:   fl.LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9},
		Start: make([]float64, numParams),
	}
	out := make([]float64, numParams)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Round = i
		if _, _, err := tr.Train(req, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackTrain is one full client visit over the in-process
// transport (training included) — the floor every networked dispatch is
// measured against.
func BenchmarkLoopbackTrain(b *testing.B) {
	tr, env, n := benchLoopback(b)
	benchTrain(b, tr, env, n)
}

// BenchmarkTCPTrain is the same visit over a real localhost socket:
// frame build, two socket crossings, node-side decode/train/encode.
func BenchmarkTCPTrain(b *testing.B) {
	tr, env, n := benchTCP(b)
	benchTrain(b, tr, env, n)
}

// BenchmarkTCPTrainConcurrent drives 6 clients' visits concurrently over
// one multiplexed connection — the engine's actual access pattern.
func BenchmarkTCPTrainConcurrent(b *testing.B) {
	tr, _, numParams := benchTCP(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := &fl.RemoteRequest{
			Client: 0, Round: 0, Cluster: -1, Layer: fl.FullParams,
			Cfg:   fl.LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9},
			Start: make([]float64, numParams),
		}
		out := make([]float64, numParams)
		i := 0
		for pb.Next() {
			req.Client = i % 6
			req.Round = i
			i++
			if _, _, err := tr.Train(req, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTrainFrameEncode is the pure protocol cost of building one
// work-order frame (1384-param model, lossless codec) into a reused
// buffer.
func BenchmarkTrainFrameEncode(b *testing.B) {
	req := &fl.RemoteRequest{
		Client: 0, Round: 0, Cluster: -1, Layer: fl.FullParams,
		Cfg:   fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1},
		Start: make([]float64, 1384),
	}
	buf := appendTrainFrame(nil, 1, req, wire.Float64)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendTrainFrame(buf[:0], uint32(i), req, wire.Float64)
	}
}

package transport

import (
	"fmt"

	"fedclust/internal/fl"
)

// Transport executes one client's local training pass wherever the
// client's data lives — the calling process (Loopback) or a node behind
// a socket (TCP). The signature mirrors fl.RemoteTrainer.Train so a
// Fleet can route per client; implementations must be safe for
// concurrent Train calls, because the round engine issues one per
// parallel client visit.
type Transport interface {
	// Train ships the request's start parameters under the transport's
	// codec, runs the pass remotely, and decodes the selected result
	// vector into out. down and up are the bytes that crossed the wire
	// in each direction for this exchange.
	Train(req *fl.RemoteRequest, out []float64) (down, up int64, err error)
	// Close releases the transport (sockets, pending waiters).
	Close() error
}

// Fleet maps every client of an environment to the transport that owns
// it (or to in-process execution) and implements fl.RemoteTrainer — the
// object an Env.Remote points at. The zero client set trains locally;
// Assign carves out remote ranges.
type Fleet struct {
	transports []Transport
	owner      []int // client → index into transports, -1 = in-process
}

// NewFleet builds a fleet over n clients with every client in-process.
func NewFleet(n int) *Fleet {
	f := &Fleet{owner: make([]int, n)}
	for i := range f.owner {
		f.owner[i] = -1
	}
	return f
}

// Assign routes clients [lo, hi) to t.
func (f *Fleet) Assign(t Transport, lo, hi int) {
	if lo < 0 || hi > len(f.owner) || lo > hi {
		panic(fmt.Sprintf("transport: assign range [%d,%d) outside population of %d", lo, hi, len(f.owner)))
	}
	idx := len(f.transports)
	f.transports = append(f.transports, t)
	for i := lo; i < hi; i++ {
		f.owner[i] = idx
	}
}

// Owns implements fl.RemoteTrainer.
func (f *Fleet) Owns(client int) bool {
	return client >= 0 && client < len(f.owner) && f.owner[client] >= 0
}

// Train implements fl.RemoteTrainer: dispatch to the owning transport.
func (f *Fleet) Train(req *fl.RemoteRequest, out []float64) (down, up int64, err error) {
	if !f.Owns(req.Client) {
		return 0, 0, fmt.Errorf("transport: client %d is not remotely owned", req.Client)
	}
	return f.transports[f.owner[req.Client]].Train(req, out)
}

// Close closes every assigned transport, returning the first error.
func (f *Fleet) Close() error {
	var first error
	seen := map[Transport]bool{}
	for _, t := range f.transports {
		if seen[t] {
			continue
		}
		seen[t] = true
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PartitionClients splits n clients into k contiguous near-equal ranges
// — the coordinator's default node assignment.
func PartitionClients(n, k int) [][2]int {
	if k < 1 || n < k {
		panic(fmt.Sprintf("transport: cannot partition %d clients across %d nodes", n, k))
	}
	out := make([][2]int, k)
	lo := 0
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		out[i] = [2]int{lo, lo + size}
		lo += size
	}
	return out
}

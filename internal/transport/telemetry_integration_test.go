package transport_test

// The ISSUE 10 acceptance check: a 3-node TCP run with the tracker and
// journal attached must leave a JSONL trace that reconstructs the same
// round, byte, and outcome totals as the control plane's /status — and
// the per-node transport metrics must account for every request the run
// issued.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"fedclust/internal/control"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/obs"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

// lockedBuffer lets the test read the journal bytes after the run
// without racing a late flush.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func TestTCPThreeNodeJournalMatchesStatus(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	obs.SetEnabled(true)

	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	spec := goldenSpec(77)
	specBytes, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wait := startNodes(t, coord.Addr(), 3)
	nodes, err := coord.AcceptNodes(3, 6, specBytes, wire.Float64, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	env := buildGolden(t, 77)
	fleet := transport.FleetOf(len(env.Clients), nodes)
	env.Remote = fleet

	reqBefore := sumSnapshot(`fedsim_transport_requests_total{node="node"}`)
	upBefore := sumSnapshot(`fedsim_transport_up_bytes_total{node="node"}`)
	downBefore := sumSnapshot(`fedsim_transport_down_bytes_total{node="node"}`)

	tracker := control.NewTracker(env.Local.Epochs)
	sink := &lockedBuffer{}
	journal := obs.NewJournal(sink, env.Local.Epochs)
	env.Observer = fl.MultiObserver(tracker, journal)

	res := methods.FedAvg{}.Run(env)
	if err := fleet.Close(); err != nil {
		t.Errorf("fleet close: %v", err)
	}
	wait()
	if err := journal.Err(); err != nil {
		t.Fatal(err)
	}

	// /status and the run result agree on the ledger.
	s := tracker.Status()
	if s.Running || s.Aborted || s.Round != env.Rounds {
		t.Errorf("post-run status: %+v", s)
	}
	if s.UpBytes != res.Comm.UpBytes || s.MeasuredUp != res.Comm.MeasuredUp {
		t.Errorf("status ledger (up %d, measured %d) != result (up %d, measured %d)",
			s.UpBytes, s.MeasuredUp, res.Comm.UpBytes, res.Comm.MeasuredUp)
	}

	// The journal reconstructs the same round/byte/outcome totals.
	events, err := obs.ReadEvents(bytes.NewReader(sink.snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	var rounds, onTime, offline, failed int
	var lastUp, lastDown, lastMUp, lastMDown, sumUpDelta int64
	sawEnd := false
	for _, ev := range events {
		switch ev.Event {
		case "round":
			rounds++
			onTime += ev.OnTime
			offline += ev.Offline
			failed += ev.Failed
			lastUp, lastDown = ev.UpBytes, ev.DownBytes
			lastMUp, lastMDown = ev.MeasuredUp, ev.MeasuredDown
			sumUpDelta += ev.UpDelta
		case "run_end":
			sawEnd = true
			if ev.Completed != env.Rounds || ev.Aborted {
				t.Errorf("run_end: %+v", ev)
			}
		}
	}
	if rounds != env.Rounds || !sawEnd {
		t.Fatalf("journal: %d round events (want %d), run_end=%v", rounds, env.Rounds, sawEnd)
	}
	if lastUp != s.UpBytes || lastDown != s.DownBytes || lastMUp != s.MeasuredUp || lastMDown != s.MeasuredDown {
		t.Errorf("journal ledger (up %d, down %d, mup %d, mdown %d) != status (up %d, down %d, mup %d, mdown %d)",
			lastUp, lastDown, lastMUp, lastMDown, s.UpBytes, s.DownBytes, s.MeasuredUp, s.MeasuredDown)
	}
	if sumUpDelta != lastUp {
		t.Errorf("per-round up deltas sum to %d, cumulative says %d", sumUpDelta, lastUp)
	}
	// Outcome totals: every client delivered every round on a healthy
	// localhost fleet, and the per-client counts agree.
	if want := env.Rounds * len(env.Clients); onTime != want || offline != 0 || failed != 0 {
		t.Errorf("journal outcomes: on_time %d offline %d failed %d, want %d/0/0", onTime, offline, failed, want)
	}
	var trackerOnTime int
	for _, c := range tracker.Clients() {
		trackerOnTime += c.OnTime
	}
	if trackerOnTime != onTime {
		t.Errorf("tracker counts %d on-time deliveries, journal %d", trackerOnTime, onTime)
	}

	// Per-node transport metrics: all three nodes register under
	// node="node" (the test nodes share a name), so the series
	// accumulates every Train request of the run — one per client visit —
	// and the measured byte counters equal the run's measured ledger.
	if got, want := sumSnapshot(`fedsim_transport_requests_total{node="node"}`)-reqBefore,
		float64(env.Rounds*len(env.Clients)); got != want {
		t.Errorf("transport requests metric %v, want %v", got, want)
	}
	if got := sumSnapshot(`fedsim_transport_up_bytes_total{node="node"}`) - upBefore; got != float64(res.Comm.MeasuredUp) {
		t.Errorf("transport up-bytes metric %v, want %d", got, res.Comm.MeasuredUp)
	}
	if got := sumSnapshot(`fedsim_transport_down_bytes_total{node="node"}`) - downBefore; got != float64(res.Comm.MeasuredDown) {
		t.Errorf("transport down-bytes metric %v, want %d", got, res.Comm.MeasuredDown)
	}
}

// sumSnapshot reads one series from the default registry's snapshot.
func sumSnapshot(key string) float64 {
	return obs.Default().Snapshot()[key]
}

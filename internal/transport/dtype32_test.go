package transport_test

// Float32-dtype federation: the spec's dtype knob must put every node on
// the float32 compute path, and a networked run must stay bit-identical
// to the in-process float32 engine path. Under the Float32 codec this
// exercises the node's zero-convert fast path (trained shadow → wire
// frame with no float64 round-trip): the downlink rounds the master
// weights to float32 exactly once — the same rounding the in-process
// path applies when loading its shadow — and the uplink carries
// float32-representable values losslessly, so "lossy codec" becomes
// bit-exact end to end.

import (
	"testing"
	"time"

	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

// runTCP32 is runTCP with the float32 dtype in the spec and a chosen
// wire codec.
func runTCP32(t *testing.T, trainer fl.Trainer, k int, codec wire.Codec) *fl.Result {
	t.Helper()
	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	spec := goldenSpec(77)
	spec.DType = "float32"
	specBytes, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wait := startNodes(t, coord.Addr(), k)
	nodes, err := coord.AcceptNodes(k, 6, specBytes, codec, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	env := buildGolden(t, 77)
	env.DType = fl.Float32
	fleet := transport.FleetOf(len(env.Clients), nodes)
	env.Remote = fleet
	res := trainer.Run(env)
	if err := fleet.Close(); err != nil {
		t.Errorf("fleet close: %v", err)
	}
	wait()
	return res
}

func TestTCPFloat32DTypeEquivalence(t *testing.T) {
	for _, c := range []struct {
		name    string
		trainer func() fl.Trainer
	}{
		// FedAvg's full-parameter rounds ride the zero-convert fast path
		// under the Float32 codec; FedClust adds the warmup's final-layer
		// extraction, which must keep taking the slow path.
		{"FedAvg", func() fl.Trainer { return methods.FedAvg{} }},
		{"FedClust", func() fl.Trainer { return &core.FedClust{} }},
	} {
		refEnv := buildGolden(t, 77)
		refEnv.DType = fl.Float32
		want := learningFingerprint(c.trainer().Run(refEnv))

		res := runTCP32(t, c.trainer(), 2, wire.Float32)
		if got := learningFingerprint(res); got != want {
			t.Errorf("%s over float32-dtype TCP (Float32 codec) drifted from in-process float32\n got: %s\nwant: %s",
				c.name, got, want)
		}
	}
}

// TestSpecDTypeValidation pins the spec-side dtype contract: valid names
// build environments with the right path, junk is rejected before any
// allocation.
func TestSpecDTypeValidation(t *testing.T) {
	for name, want := range map[string]fl.DType{"": fl.Float64, "float64": fl.Float64, "float32": fl.Float32} {
		s := goldenSpec(5)
		s.DType = name
		env, err := s.Build()
		if err != nil {
			t.Fatalf("dtype %q: %v", name, err)
		}
		if env.DType != want {
			t.Errorf("dtype %q built env dtype %v, want %v", name, env.DType, want)
		}
	}
	s := goldenSpec(5)
	s.DType = "float16"
	if _, err := s.Build(); err == nil {
		t.Error("spec with dtype float16 built without error")
	}
}

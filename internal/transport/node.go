package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fedclust/internal/fl"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/wire"
)

// writeTimeout bounds any single frame write so a dead peer cannot park
// a sender forever.
const writeTimeout = 30 * time.Second

// Service executes train work orders against a local replica of the
// environment — the node side of every transport. It owns a pool of
// execution slots (one pooled model + training scratch each, sized to
// the environment's worker count) so concurrent requests train on warm
// state without locking; slot checkout is the node's backpressure. The
// arithmetic of a slot execution is exactly the engine's DefaultLocal:
// load the start vector, run the deterministic (client, round) stream's
// local pass, flatten the result — which is what makes a networked round
// bit-identical to an in-process one under the lossless codec.
type Service struct {
	env       *fl.Env
	numParams int
	layerDims []int
	slots     chan *slot
	// ef is the node-held error-feedback accumulator, non-nil when the
	// replica environment selects a sparse uplink codec: the residuals
	// live where the training runs, so a remote client's dropped
	// coordinates are fed back by the node itself, round after round —
	// the coordinator only ever sees sparse frames. (They live in this
	// process: a node restart loses them, a coordinator restart does
	// not — see DESIGN.md §12.)
	ef *fl.ErrorFeedback
}

// slot is one execution lane: a pooled model, its training scratch, and
// the codec buffers of the connection path.
type slot struct {
	model   *nn.Sequential
	scratch fl.TrainScratch
	rng     rng.Rng
	vec     []float64 // decoded start parameters (reused)
	out     []float64 // result vector backing store (cap numParams)
	enc     []byte    // response frame build buffer (reused)
	efs     fl.EFScratch
}

// NewService builds a service over the node's environment replica with
// env.WorkerCount() execution slots.
func NewService(env *fl.Env) *Service {
	env.Validate()
	ref := env.NewModel()
	s := &Service{
		env:       env,
		numParams: ref.NumParams(),
		layerDims: make([]int, nn.NumWeightLayers(ref)),
	}
	for k := range s.layerDims {
		s.layerDims[k] = nn.LayerParamSize(ref, k)
	}
	if env.Codec.Sparse() {
		s.ef = fl.NewErrorFeedback(env.Codec, fl.NormalizeTopKFrac(env.TopKFrac), len(env.Clients), s.numParams)
	}
	w := env.WorkerCount()
	s.slots = make(chan *slot, w)
	for i := 0; i < w; i++ {
		sl := &slot{out: make([]float64, s.numParams)}
		sl.scratch.DType = env.DType
		if i == 0 {
			sl.model = ref // reuse the reference model instead of rebuilding
		}
		s.slots <- sl
	}
	return s
}

// NumParams returns the scalar parameter count of the replica's model.
func (s *Service) NumParams() int { return s.numParams }

// Sparse reports whether this node sparsifies full-parameter uplinks
// (the replica environment selected a sparse codec).
func (s *Service) Sparse() bool { return s.ef != nil }

// outLen returns the result dimension a layer selector produces.
func (s *Service) outLen(layer int) (int, error) {
	switch {
	case layer == fl.FullParams:
		return s.numParams, nil
	case layer == fl.FinalLayer && len(s.layerDims) > 0:
		return s.layerDims[len(s.layerDims)-1], nil
	case layer >= 0 && layer < len(s.layerDims):
		return s.layerDims[layer], nil
	default:
		return 0, fmt.Errorf("transport: layer selector %d outside %d weight layers", layer, len(s.layerDims))
	}
}

// Execute runs one work order in-process and writes the selected vector
// into out (whose length must match the selector's dimension). It is the
// Loopback transport's fast path and is safe for concurrent use.
func (s *Service) Execute(req *fl.RemoteRequest, out []float64) error {
	n, err := s.outLen(req.Layer)
	if err != nil {
		return err
	}
	if len(out) != n {
		return fmt.Errorf("transport: result buffer %d values, selector needs %d", len(out), n)
	}
	sl := <-s.slots
	defer func() { s.slots <- sl }()
	return s.run(sl, req, out)
}

// ExecuteCompressed is Execute for a sparsifying node (Sparse() true)
// and a full-parameter order: it trains, runs the uplink through the
// node's error-feedback accumulator, and writes into out the exact
// reconstruction the coordinator would hold after decoding the sparse
// frame — the Loopback transport's sparse path, bit-identical to the
// framed one by construction (the reconstruction is produced by
// encoding and re-decoding the frame, not by mirroring its arithmetic).
func (s *Service) ExecuteCompressed(req *fl.RemoteRequest, out []float64) error {
	if s.ef == nil {
		return fmt.Errorf("transport: node does not sparsify (dense codec)")
	}
	if req.Layer != fl.FullParams {
		return fmt.Errorf("transport: sparse uplink is defined for full-parameter orders, got layer %d", req.Layer)
	}
	if len(out) != s.numParams {
		return fmt.Errorf("transport: result buffer %d values, model has %d", len(out), s.numParams)
	}
	sl := <-s.slots
	defer func() { s.slots <- sl }()
	if err := s.train(sl, req); err != nil {
		return err
	}
	s.extract(sl, fl.FullParams, out)
	s.ef.Compress(req.Client, req.Start, out, &sl.efs)
	return nil
}

// run trains a slot on the request and extracts the selected vector into
// out, which the caller has already sized via outLen (the selector is
// valid and len(out) matches it).
func (s *Service) run(sl *slot, req *fl.RemoteRequest, out []float64) error {
	if err := s.train(sl, req); err != nil {
		return err
	}
	s.extract(sl, req.Layer, out)
	return nil
}

// train validates the request and runs the local pass on the slot's
// model, leaving the trained parameters in place for extraction. Every
// failure is an error, never a panic — requests may arrive off the wire.
func (s *Service) train(sl *slot, req *fl.RemoteRequest) error {
	if req.Client < 0 || req.Client >= len(s.env.Clients) {
		return fmt.Errorf("transport: client %d outside population of %d", req.Client, len(s.env.Clients))
	}
	if err := validateCfg(req.Cfg); err != nil {
		return err
	}
	if len(req.Start) != s.numParams {
		return fmt.Errorf("transport: start vector %d params, model has %d", len(req.Start), s.numParams)
	}
	if sl.model == nil {
		sl.model = s.env.NewModel()
	}
	nn.LoadParams(sl.model, req.Start)
	s.env.ClientRngInto(&sl.rng, req.Client, req.Round)
	sl.scratch.LocalUpdate(sl.model, s.env.Clients[req.Client].Train, req.Cfg, &sl.rng)
	return nil
}

// extract writes the selected vector of the slot's trained model into
// out (already sized via outLen).
func (s *Service) extract(sl *slot, layer int, out []float64) {
	switch layer {
	case fl.FullParams:
		nn.FlattenParamsInto(sl.model, out)
	case fl.FinalLayer:
		copy(out, nn.FinalLayerVector(sl.model))
	default:
		copy(out, nn.LayerParamVector(sl.model, layer))
	}
}

// ServeConn runs the node side of the protocol on an established
// connection until the coordinator says Bye, the peer disconnects, or
// the stream turns invalid. Callers that need to distinguish an orderly
// Bye from a disconnect (the rejoin path) use Serve instead.
func (s *Service) ServeConn(conn net.Conn) error {
	_, err := s.Serve(conn)
	return err
}

// Serve is ServeConn reporting how the session ended: bye is true only
// when the coordinator sent an explicit Bye — the run is over and there
// is nothing to rejoin. A clean disconnect without a Bye (bye false, err
// nil) is what a crashed or restarting coordinator looks like from here;
// ServeLoop re-dials on it. Requests are dispatched concurrently (slot
// checkout bounds the parallelism; heavy tensor kernels inside training
// still share the process-wide internal/sched executor); responses are
// written as each finishes. In-flight work drains before return.
func (s *Service) Serve(conn net.Conn) (bye bool, err error) {
	defer conn.Close()
	var wmu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	// Buffered like the coordinator's read loop: back-to-back requests
	// coalesce instead of costing two read syscalls per frame.
	fr := &frameReader{r: bufio.NewReaderSize(conn, 1<<16)}
	for {
		t, body, _, err := fr.next()
		if err != nil {
			if err == io.EOF {
				return false, nil // peer hung up between frames, no Bye
			}
			return false, err
		}
		switch t {
		case MsgBye:
			return true, nil
		case MsgTrain:
			m, err := parseTrainMsg(body)
			if err != nil {
				return false, err // framing is broken; drop the connection
			}
			sl := <-s.slots
			// Decode before the next read — m.Frame aliases the reader's
			// buffer. The response mirrors the request's codec.
			var decErr error
			sl.vec, decErr = wire.DecodeInto(sl.vec, m.Frame)
			codec, cerr := wire.FrameCodec(m.Frame)
			if cerr != nil {
				codec = wire.Float64 // error reply; DecodeInto already failed
			}
			req := fl.RemoteRequest{
				Client: m.Client, Round: m.Round, Cluster: m.Cluster,
				Layer: m.Layer, Cfg: m.Cfg, Start: sl.vec,
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { s.slots <- sl }()
				buf := beginFrame(sl.enc[:0], MsgUpdate)
				runErr := decErr
				if runErr == nil {
					n, err := s.outLen(req.Layer)
					if err != nil {
						runErr = err
					} else if runErr = s.train(sl, &req); runErr == nil {
						v32, has32 := sl.scratch.Params32()
						switch {
						case s.ef != nil && req.Layer == fl.FullParams:
							// Sparse uplink: the reply codec comes from the
							// node's own env replica, not the request — the
							// request is always dense (the downlink codec).
							// Error feedback runs here, where the residuals
							// live, before the frame leaves the machine.
							s.extract(sl, req.Layer, sl.out[:n])
							buf = binary.LittleEndian.AppendUint32(buf, m.ReqID)
							buf = append(buf, statusOK)
							buf = s.ef.Visit(buf, req.Client, req.Start, sl.out[:n], &sl.efs)
						case has32 && codec == wire.Float32 && req.Layer == fl.FullParams:
							// Zero-convert fast path: when the local pass ran
							// in float32 and the reply is a Float32
							// full-parameter frame, encode straight from the
							// trained shadow — bit-identical to widening and
							// re-rounding, minus both conversions.
							buf = appendUpdateOK32(buf, m.ReqID, v32)
						default:
							s.extract(sl, req.Layer, sl.out[:n])
							buf = appendUpdateOK(buf, m.ReqID, codec, sl.out[:n])
						}
					}
				}
				if runErr != nil {
					buf = appendUpdateErr(buf, m.ReqID, runErr.Error())
				}
				buf = endFrame(buf, 0)
				sl.enc = buf
				wmu.Lock()
				conn.SetWriteDeadline(time.Now().Add(writeTimeout))
				_, _ = conn.Write(buf) // a dead peer surfaces on the read side
				wmu.Unlock()
			}()
		default:
			// Unknown types are skipped for forward compatibility.
		}
	}
}

package transport

import (
	"fmt"
	"net"
	"time"

	"fedclust/internal/obs"
	"fedclust/internal/wire"
)

// handshakeTimeout bounds the hello/welcome exchange on both sides.
const handshakeTimeout = 30 * time.Second

// Handshake frame ceilings. A hello is a version plus a u16-length name
// (≤ ~64 KiB by construction); a welcome adds the spec JSON. Both are
// read from peers that have proven nothing yet, so the caps keep a
// stray or hostile length prefix from forcing a MaxFrame-sized
// allocation on a connection that never sends another byte.
const (
	maxHelloFrame   = 1 << 17
	maxWelcomeFrame = 1 << 24
)

// Coordinator accepts node connections for a distributed run. The
// coordinator owns the round schedule; nodes dial in, announce
// themselves, receive the environment spec plus their client range, and
// then serve train requests over the same connection.
type Coordinator struct {
	ln net.Listener
}

// Listen opens the coordinator's listener ("host:port"; ":0" picks a
// free port).
func Listen(addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Coordinator{ln: ln}, nil
}

// Addr returns the bound listen address (dial target for fedsim join).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops accepting new nodes (existing node transports stay up
// until their own Close).
func (c *Coordinator) Close() error { return c.ln.Close() }

// Node is one joined node: its transport plus the client range the
// coordinator assigned it.
type Node struct {
	*TCP
	Lo, Hi int
}

// AcceptNodes waits for n nodes to join, handshakes each (hello in,
// welcome out — carrying spec and a contiguous slice of the nClients
// population), and returns their transports in join order. codec is the
// parameter encoding of the run; timeout the per-request deadline
// (0 = none).
func (c *Coordinator) AcceptNodes(n, nClients int, spec []byte, codec wire.Codec, timeout time.Duration) ([]*Node, error) {
	if n < 1 || nClients < n {
		return nil, fmt.Errorf("transport: cannot spread %d clients across %d nodes", nClients, n)
	}
	ranges := PartitionClients(nClients, n)
	nodes := make([]*Node, 0, n)
	for len(nodes) < n {
		conn, err := c.ln.Accept()
		if err != nil {
			closeNodes(nodes)
			return nil, err
		}
		i := len(nodes)
		name, err := handshakeAccept(conn, ranges[i][0], ranges[i][1], spec)
		if err != nil {
			// A stray or malformed connection (port scanner, health
			// check, wrong protocol) must not take down a coordinator
			// with real nodes already joined: drop it, keep accepting.
			conn.Close()
			continue
		}
		if obs.Enabled() {
			joinsTotal().Inc()
		}
		nodes = append(nodes, &Node{
			TCP: newTCP(conn, name, codec, timeout),
			Lo:  ranges[i][0], Hi: ranges[i][1],
		})
	}
	return nodes, nil
}

// FleetOf builds the round engine's RemoteTrainer from joined nodes:
// each node's assigned range routes to its transport, every other
// client stays in-process.
func FleetOf(nClients int, nodes []*Node) *Fleet {
	f := NewFleet(nClients)
	for _, nd := range nodes {
		f.Assign(nd.TCP, nd.Lo, nd.Hi)
	}
	return f
}

func closeNodes(nodes []*Node) {
	for _, nd := range nodes {
		nd.Close()
	}
}

// handshakeAccept runs the coordinator side of the handshake on a fresh
// connection: read hello, send welcome.
func handshakeAccept(conn net.Conn, lo, hi int, spec []byte) (name string, err error) {
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	fr := &frameReader{r: conn, limit: maxHelloFrame}
	t, body, _, err := fr.next()
	if err != nil {
		return "", err
	}
	if t != MsgHello {
		return "", fmt.Errorf("expected hello, got %s", t)
	}
	if name, err = parseHello(body); err != nil {
		return "", err
	}
	welcome := endFrame(appendWelcome(beginFrame(nil, MsgWelcome), lo, hi, spec), 0)
	if _, err = conn.Write(welcome); err != nil {
		return "", err
	}
	return name, nil
}

// Join dials a coordinator and runs the node side of the handshake. It
// returns the established connection (hand it to Service.ServeConn), the
// node's assigned client range, and the coordinator's spec payload (a
// copy the caller owns).
func Join(addr, name string) (conn net.Conn, lo, hi int, spec []byte, err error) {
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	if lo, hi, spec, err = joinHandshake(conn, name); err != nil {
		conn.Close()
		return nil, 0, 0, nil, err
	}
	return conn, lo, hi, spec, nil
}

// joinHandshake runs the node side of the hello/welcome exchange. The
// handshake deadline is defer-paired with its clear, mirroring
// handshakeAccept: no exit path — early error returns included — can
// leave a stale deadline armed on a connection the caller keeps using.
func joinHandshake(conn net.Conn, name string) (lo, hi int, spec []byte, err error) {
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	hello := endFrame(appendHello(beginFrame(nil, MsgHello), name), 0)
	if _, err = conn.Write(hello); err != nil {
		return 0, 0, nil, err
	}
	fr := &frameReader{r: conn, limit: maxWelcomeFrame}
	t, body, _, err := fr.next()
	if err != nil {
		return 0, 0, nil, err
	}
	if t != MsgWelcome {
		return 0, 0, nil, fmt.Errorf("transport: expected welcome, got %s", t)
	}
	var sp []byte
	if lo, hi, sp, err = parseWelcome(body); err != nil {
		return 0, 0, nil, err
	}
	return lo, hi, append([]byte(nil), sp...), nil
}

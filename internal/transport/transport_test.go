package transport_test

// Golden equivalence for the networked path: a federated run whose
// clients train behind a Transport must be bit-identical — per-client
// accuracies, evaluation history, final cluster assignment — to the
// in-process engine path, which is itself pinned to the seed
// implementation's fingerprints (internal/engine/equivalence_test.go).
// The learning fingerprints below are those PR 1 constants with the
// communication fields dropped: over a transport the byte counts are
// *measured* (framing included), so they legitimately differ from the
// scalar-count estimates, and are asserted separately against the exact
// frame-size formulas.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/scenario"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

// goldenSpec describes the fixed equivalence workload of the engine's
// golden tests (6 clients in two label groups, MLP(64,20,4), 6 rounds,
// eval every 2) as a transport Spec, so the same environment replica a
// joining node would build is the one these tests train on.
func goldenSpec(seed uint64) *transport.Spec {
	return &transport.Spec{
		Dataset: data.SynthConfig{
			Name: "golden4", C: 1, H: 8, W: 8, Classes: 4,
			TrainPerClass: 40, TestPerClass: 16,
			ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
		},
		Groups:    [][]int{{0, 1}, {2, 3}},
		PerGroup:  []int{3, 3},
		Hidden:    []int{20},
		Seed:      seed,
		Rounds:    6,
		EvalEvery: 2,
		Local:     fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9},
	}
}

// buildGolden builds the golden environment (Workers pinned to 3 like
// the engine suite; results are worker-count invariant regardless).
func buildGolden(t testing.TB, seed uint64) *fl.Env {
	t.Helper()
	env, err := goldenSpec(seed).Build()
	if err != nil {
		t.Fatal(err)
	}
	env.Workers = 3
	return env
}

// learningFingerprint reduces a result to a bit-exact signature of its
// learning outcomes (everything except communication volume).
func learningFingerprint(res *fl.Result) string {
	h := fnv.New64a()
	w := func(v uint64) { _ = binary.Write(h, binary.LittleEndian, v) }
	for _, a := range res.PerClientAcc {
		w(math.Float64bits(a))
	}
	for _, m := range res.History {
		w(uint64(m.Round))
		w(math.Float64bits(m.MeanAcc))
		w(math.Float64bits(m.MeanLoss))
	}
	return fmt.Sprintf("acc=%016x loss=%016x clusters=%v h=%016x",
		math.Float64bits(res.FinalAcc), math.Float64bits(res.FinalLoss),
		res.Clusters, h.Sum64())
}

// goldenLearning pins the learning outcomes to the PR 1 seed
// fingerprints (comm fields dropped; see the package comment).
var goldenLearning = []struct {
	name    string
	trainer func() fl.Trainer
	want    string
}{
	{"FedAvg", func() fl.Trainer { return methods.FedAvg{} },
		"acc=3fecfa4fa4fa4fa4 loss=3fcaf81f04cee325 clusters=[] h=8a7b5f0b9a50518a"},
	{"FedProx", func() fl.Trainer { return methods.FedProx{Mu: 0.1} },
		"acc=3fecfa4fa4fa4fa4 loss=3fcb7191c1d88124 clusters=[] h=fee58494db1a1633"},
	{"FedClust", func() fl.Trainer { return &core.FedClust{} },
		"acc=3fef05b05b05b05b loss=3fb5c43da15c46f3 clusters=[0 0 0 1 1 1] h=40c8a6da5fbfc6a7"},
}

// loopbackFleet stands up a node-side Service over its own environment
// replica and routes clients [lo, hi) through a loopback transport.
func loopbackFleet(t testing.TB, seed uint64, codec wire.Codec, lo, hi, n int) *transport.Fleet {
	t.Helper()
	nodeEnv := buildGolden(t, seed)
	fleet := transport.NewFleet(n)
	fleet.Assign(transport.NewLoopback(transport.NewService(nodeEnv), codec), lo, hi)
	return fleet
}

// TestLoopbackGoldenEquivalence: every trainer on the loopback transport
// (all six clients remote, lossless codec) reproduces the pinned
// learning fingerprints bit for bit.
func TestLoopbackGoldenEquivalence(t *testing.T) {
	for _, c := range goldenLearning {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			env := buildGolden(t, 77)
			env.Remote = loopbackFleet(t, 77, wire.Float64, 0, 6, 6)
			res := c.trainer().Run(env)
			if got := learningFingerprint(res); got != c.want {
				t.Errorf("loopback run drifted from the in-process path\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
}

// TestMixedLocalRemoteEquivalence: a round driving half its clients
// in-process and half over the transport is still bit-identical — one
// engine, mixed execution.
func TestMixedLocalRemoteEquivalence(t *testing.T) {
	for _, c := range goldenLearning {
		env := buildGolden(t, 77)
		env.Remote = loopbackFleet(t, 77, wire.Float64, 2, 5, 6) // clients 2..4 remote
		res := c.trainer().Run(env)
		if got := learningFingerprint(res); got != c.want {
			t.Errorf("%s: mixed local/remote run drifted\n got: %s\nwant: %s", c.name, got, c.want)
		}
	}
}

// TestLoopbackScenarioEquivalence: scenario outcomes (stragglers,
// dropouts) must shape remote rounds exactly as in-process ones — the
// partial-epoch budget rides the wire in the request config.
func TestLoopbackScenarioEquivalence(t *testing.T) {
	model := scenario.New(scenario.Config{
		StragglerFrac: 0.4, DropoutRate: 0.15, Deadline: 1.2, Jitter: 0.2,
	}, 7, 6)
	baseline := buildGolden(t, 77)
	baseline.Participation.Scenario = model
	want := learningFingerprint(methods.FedAvg{}.Run(baseline))

	remote := buildGolden(t, 77)
	remote.Participation.Scenario = model
	remote.Remote = loopbackFleet(t, 77, wire.Float64, 0, 6, 6)
	got := learningFingerprint(methods.FedAvg{}.Run(remote))
	if got != want {
		t.Errorf("scenario round over loopback drifted\n got: %s\nwant: %s", got, want)
	}
}

// TestLoopbackCommAccounting: with a transport attached CommStats holds
// measured framed bytes — exactly requests down, updates up, per the
// frame-size formulas, replacing the scalar-count estimate.
func TestLoopbackCommAccounting(t *testing.T) {
	env := buildGolden(t, 77)
	env.Remote = loopbackFleet(t, 77, wire.Float64, 0, 6, 6)
	res := methods.FedAvg{}.Run(env)
	numParams := transport.NewService(buildGolden(t, 77)).NumParams()
	visits := int64(env.Rounds * len(env.Clients))
	wantDown := visits * int64(transport.TrainRequestSize(wire.Float64, numParams))
	wantUp := visits * int64(transport.TrainResponseSize(wire.Float64, numParams))
	if res.Comm.DownBytes != wantDown || res.Comm.UpBytes != wantUp {
		t.Errorf("measured traffic (down %d, up %d) != frame-size model (down %d, up %d)",
			res.Comm.DownBytes, res.Comm.UpBytes, wantDown, wantUp)
	}
	// The in-process estimator prices the same framed bytes the transport
	// measures — the estimate == measured contract.
	estimate := visits * (fl.CommPricing{}).UploadBytesFor(numParams)
	if res.Comm.UpBytes != estimate {
		t.Errorf("uplink %d != in-process estimate %d", res.Comm.UpBytes, estimate)
	}
}

// TestLoopbackLossyCodecMatchesSocketSemantics: a lossy loopback run
// still completes and accounts the narrow frames (quant8 ≈ 1B/param),
// shrinking measured traffic accordingly.
func TestLoopbackLossyCodec(t *testing.T) {
	env := buildGolden(t, 77)
	env.Rounds = 2
	env.Remote = loopbackFleet(t, 77, wire.Quant8, 0, 6, 6)
	res := methods.FedAvg{}.Run(env)
	if res.FinalAcc <= 0 || math.IsNaN(res.FinalLoss) {
		t.Fatalf("lossy-codec run degenerate: acc=%v loss=%v", res.FinalAcc, res.FinalLoss)
	}
	numParams := transport.NewService(buildGolden(t, 77)).NumParams()
	visits := int64(env.Rounds * len(env.Clients))
	wantUp := visits * int64(transport.TrainResponseSize(wire.Quant8, numParams))
	if res.Comm.UpBytes != wantUp {
		t.Errorf("quant8 uplink %d, want %d", res.Comm.UpBytes, wantUp)
	}
	f64Up := visits * int64(transport.TrainResponseSize(wire.Float64, numParams))
	if res.Comm.UpBytes*7 >= f64Up {
		t.Errorf("quant8 uplink %d not ≥7× smaller than float64 %d", res.Comm.UpBytes, f64Up)
	}
}

// TestFleetRouting: ownership and misrouting guards.
func TestFleetRouting(t *testing.T) {
	fleet := loopbackFleet(t, 77, wire.Float64, 1, 3, 6)
	for i := 0; i < 6; i++ {
		if want := i >= 1 && i < 3; fleet.Owns(i) != want {
			t.Errorf("Owns(%d) = %v, want %v", i, fleet.Owns(i), want)
		}
	}
	if _, _, err := fleet.Train(&fl.RemoteRequest{Client: 5}, nil); err == nil {
		t.Error("training an unowned client did not error")
	}
	if err := fleet.Close(); err != nil {
		t.Error(err)
	}
}

// TestPartitionClients: contiguous cover, near-equal sizes.
func TestPartitionClients(t *testing.T) {
	for _, c := range []struct{ n, k int }{{6, 3}, {7, 3}, {10, 4}, {5, 5}, {9, 1}} {
		ranges := transport.PartitionClients(c.n, c.k)
		if len(ranges) != c.k {
			t.Fatalf("n=%d k=%d: %d ranges", c.n, c.k, len(ranges))
		}
		next, min, max := 0, c.n, 0
		for _, r := range ranges {
			if r[0] != next {
				t.Fatalf("n=%d k=%d: gap before %v", c.n, c.k, r)
			}
			size := r[1] - r[0]
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
			next = r[1]
		}
		if next != c.n || max-min > 1 {
			t.Fatalf("n=%d k=%d: ranges %v", c.n, c.k, ranges)
		}
	}
}

// TestSpecRoundTrip: the handshake payload reconstructs an identical
// environment (same w₀, same client splits).
func TestSpecRoundTrip(t *testing.T) {
	spec := goldenSpec(77)
	b, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := transport.ParseSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	env1, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	env2, err := spec2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(env1.Clients) != len(env2.Clients) {
		t.Fatalf("client counts differ: %d vs %d", len(env1.Clients), len(env2.Clients))
	}
	w1 := env1.NewModel()
	w2 := env2.NewModel()
	if w1.NumParams() != w2.NumParams() {
		t.Fatalf("model sizes differ")
	}
	for i, c := range env1.Clients {
		if c.Train.Len() != env2.Clients[i].Train.Len() || c.Test.Len() != env2.Clients[i].Test.Len() {
			t.Fatalf("client %d splits differ", i)
		}
	}
}

// TestSpecBuildRejectsMalformed: a spec arrives off the wire, so Build
// must return errors — never panic, never allocate from hostile sizes.
func TestSpecBuildRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*transport.Spec)
	}{
		{"zero rounds", func(s *transport.Spec) { s.Rounds = 0 }},
		{"zero train per class", func(s *transport.Spec) { s.Dataset.TrainPerClass = 0 }},
		{"absurd train per class", func(s *transport.Spec) { s.Dataset.TrainPerClass = 1 << 40 }},
		{"absurd geometry", func(s *transport.Spec) { s.Dataset.H = 1 << 20; s.Dataset.W = 1 << 20 }},
		{"no groups", func(s *transport.Spec) { s.Groups = nil; s.PerGroup = nil }},
		{"group/count mismatch", func(s *transport.Spec) { s.PerGroup = s.PerGroup[:1] }},
		{"label outside classes", func(s *transport.Spec) { s.Groups[0][0] = 99 }},
		{"empty group", func(s *transport.Spec) { s.Groups[0] = nil }},
		{"zero-client group", func(s *transport.Spec) { s.PerGroup[0] = 0 }},
		{"bad hidden width", func(s *transport.Spec) { s.Hidden = []int{-3} }},
		{"bad local config", func(s *transport.Spec) { s.Local.LR = 0 }},
		{"one class", func(s *transport.Spec) { s.Dataset.Classes = 1 }},
	}
	for _, c := range cases {
		sp := goldenSpec(77)
		c.mutate(sp)
		env, err := sp.Build()
		if err == nil || env != nil {
			t.Errorf("%s: Build accepted the spec (err=%v)", c.name, err)
		}
	}
}

// TestServiceRejectsBadRequests: every malformed work order is an error,
// never a panic.
func TestServiceRejectsBadRequests(t *testing.T) {
	svc := transport.NewService(buildGolden(t, 77))
	good := fl.RemoteRequest{
		Client: 0, Round: 0, Cluster: -1, Layer: fl.FullParams,
		Cfg:   fl.LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1},
		Start: make([]float64, svc.NumParams()),
	}
	out := make([]float64, svc.NumParams())
	if err := svc.Execute(&good, out); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*fl.RemoteRequest)
		outLen int
	}{
		{"client out of range", func(r *fl.RemoteRequest) { r.Client = 99 }, svc.NumParams()},
		{"negative client", func(r *fl.RemoteRequest) { r.Client = -1 }, svc.NumParams()},
		{"zero epochs", func(r *fl.RemoteRequest) { r.Cfg.Epochs = 0 }, svc.NumParams()},
		{"bad lr", func(r *fl.RemoteRequest) { r.Cfg.LR = math.NaN() }, svc.NumParams()},
		{"short start", func(r *fl.RemoteRequest) { r.Start = r.Start[:5] }, svc.NumParams()},
		{"bad layer", func(r *fl.RemoteRequest) { r.Layer = 7 }, svc.NumParams()},
		{"wrong out len", func(r *fl.RemoteRequest) {}, 3},
	}
	for _, c := range cases {
		req := good
		c.mutate(&req)
		if err := svc.Execute(&req, make([]float64, c.outLen)); err == nil {
			t.Errorf("%s: not rejected", c.name)
		}
	}
}

// TestTrainMessageSizes: the size formulas are exact for the frames the
// sender actually builds.
func TestTrainMessageSizes(t *testing.T) {
	for _, codec := range []wire.Codec{wire.Float64, wire.Float32, wire.Quant8} {
		for _, n := range []int{0, 1, 37, 1384} {
			req := &fl.RemoteRequest{Start: make([]float64, n), Cfg: fl.LocalConfig{Epochs: 1, BatchSize: 1, LR: 0.1}}
			frame := appendTrainFrame(nil, 1, req, codec)
			if len(frame) != transport.TrainRequestSize(codec, n) {
				t.Errorf("%s n=%d: request frame %d bytes, formula %d",
					codec, n, len(frame), transport.TrainRequestSize(codec, n))
			}
		}
	}
}

// appendTrainFrame builds a full train request frame through the
// exported test hook.
func appendTrainFrame(dst []byte, id uint32, req *fl.RemoteRequest, codec wire.Codec) []byte {
	return transport.AppendTrainFrameForTest(dst, id, req, codec)
}

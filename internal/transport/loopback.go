package transport

import (
	"sync"

	"fedclust/internal/fl"
	"fedclust/internal/obs"
	"fedclust/internal/wire"
)

// Loopback is the in-process transport: requests execute directly on a
// Service, with no sockets and — under the lossless Float64 codec — no
// copies of the parameter vectors at all. It accounts the exact frame
// sizes the TCP transport would put on the wire for the same exchange,
// so communication stats over loopback equal a real networked run's
// measured bytes, byte for byte.
//
// Determinism contract: a Float64 loopback round is bit-identical to the
// in-process engine path (the Service runs the same arithmetic
// DefaultLocal runs, and nothing is encoded). A lossy codec round-trips
// both directions through wire encode/decode — exactly the quantization
// a socket pair applies — so loopback matches TCP under every codec.
type Loopback struct {
	svc   *Service
	codec wire.Codec
	// scratch pools the lossy path's codec buffers across concurrent
	// visits so warm rounds stay allocation-free under every codec.
	scratch sync.Pool
	// m is the telemetry bundle, labeled node="loopback"; updates are
	// gated on the process telemetry switch.
	m *nodeMetrics
}

// lbScratch is one lossy-path round-trip workspace.
type lbScratch struct {
	buf []byte
	vec []float64
}

// NewLoopback wraps a service in a loopback transport under codec c.
// A sparse codec requires a service whose env replica selected the same
// sparsification (the node owns the error-feedback residuals); a
// mismatch is a construction bug and panics.
func NewLoopback(svc *Service, c wire.Codec) *Loopback {
	if c.Sparse() != svc.Sparse() {
		panic("transport: loopback codec and service env disagree about sparsification")
	}
	l := &Loopback{svc: svc, codec: c, m: newNodeMetrics("loopback")}
	l.scratch.New = func() any { return &lbScratch{} }
	return l
}

// Train implements Transport.
func (l *Loopback) Train(req *fl.RemoteRequest, out []float64) (down, up int64, err error) {
	rtt := obs.StartSpan(l.m.rtt)
	down, up, err = l.train(req, out)
	rtt.End()
	if obs.Enabled() {
		l.m.requests.Inc()
		l.m.downBytes.Add(uint64(down))
		l.m.upBytes.Add(uint64(up))
		if err != nil {
			l.m.errors.Inc()
		}
	}
	return down, up, err
}

func (l *Loopback) train(req *fl.RemoteRequest, out []float64) (down, up int64, err error) {
	// Requests travel under the downlink codec: dense codecs are
	// symmetric, sparse codecs broadcast dense Float64.
	dc := l.codec.Downlink()
	down = int64(TrainRequestSize(dc, len(req.Start)))
	if l.codec.Sparse() && req.Layer == fl.FullParams {
		// Sparse uplink: the node trains, sparsifies with error
		// feedback, and out comes back as the exact reconstruction the
		// coordinator would decode off a socket. The frame size is
		// deterministic in (n, kept fraction), so the accounting needs
		// no bytes in flight.
		n := len(out)
		up = int64(TrainResponseSizeSparse(l.codec, n, wire.TopKCount(n, l.svc.ef.Frac)))
		if err := l.svc.ExecuteCompressed(req, out); err != nil {
			return down, 0, err
		}
		return down, up, nil
	}
	up = int64(TrainResponseSize(dc, len(out)))
	if dc == wire.Float64 {
		if err := l.svc.Execute(req, out); err != nil {
			return down, 0, err
		}
		return down, up, nil
	}
	// Lossy codec: apply the same narrowing a socket pair would — the
	// node trains on the decoded (quantized) start and the coordinator
	// reads back the decoded (quantized) update — through pooled codec
	// scratch, so even the lossy path allocates nothing warm.
	s := l.scratch.Get().(*lbScratch)
	defer l.scratch.Put(s)
	var cerr error
	s.buf = wire.EncodeInto(s.buf[:0], dc, req.Start)
	if s.vec, cerr = wire.DecodeInto(s.vec, s.buf); cerr != nil {
		return down, 0, cerr
	}
	rt := *req
	rt.Start = s.vec
	if err := l.svc.Execute(&rt, out); err != nil {
		return down, 0, err
	}
	// The update quantizes in place: out was just encoded from out, so
	// decoding back into it is exact-size by construction.
	s.buf = wire.EncodeInto(s.buf[:0], dc, out)
	if _, cerr = wire.DecodeInto(out, s.buf); cerr != nil {
		return down, 0, cerr
	}
	return down, up, nil
}

// Close implements Transport (no resources to release).
func (*Loopback) Close() error { return nil }

package transport

// Fuzz coverage for the transport's stream decoding: a coordinator and a
// node must both survive arbitrary bytes on the wire, so the frame
// reader and every message parser are total — error out, never panic,
// never over-allocate off a hostile length prefix. The seed corpus
// (testdata/fuzz/FuzzFrame) checks in the interesting shapes: valid
// frames of every message type, truncations at each boundary, corrupt
// length prefixes, and mid-stream cuts.

import (
	"bytes"
	"io"
	"testing"

	"fedclust/internal/fl"
	"fedclust/internal/wire"
)

// FuzzFrame feeds a byte stream to the frame reader and parses every
// frame it yields with the type's message parser.
func FuzzFrame(f *testing.F) {
	// Valid traffic of every type.
	req := &fl.RemoteRequest{
		Client: 3, Round: 2, Cluster: 1, Layer: fl.FullParams,
		Cfg:   fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9},
		Start: []float64{1.5, -2.25, 0, 3e8},
	}
	train := endFrame(appendTrainMsg(beginFrame(nil, MsgTrain), 7, req, wire.Float64), 0)
	f.Add(train)
	update := endFrame(appendUpdateOK(beginFrame(nil, MsgUpdate), 7, wire.Quant8, []float64{1, 2, 3}), 0)
	f.Add(update)
	f.Add(endFrame(appendUpdateErr(beginFrame(nil, MsgUpdate), 9, "client 99 outside population"), 0))
	f.Add(endFrame(appendHello(beginFrame(nil, MsgHello), "node-1"), 0))
	f.Add(endFrame(appendWelcome(beginFrame(nil, MsgWelcome), 0, 3, []byte(`{"seed":1}`)), 0))
	f.Add(endFrame(beginFrame(nil, MsgBye), 0))
	// Two frames back to back: the reader must hand out both.
	f.Add(append(append([]byte(nil), train...), update...))
	// Malformed streams.
	f.Add(train[:3])                                  // cut inside the length prefix
	f.Add(train[:4])                                  // length prefix only (mid-stream disconnect)
	f.Add(train[:len(train)-9])                       // cut inside the wire payload
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 3})          // absurd length prefix
	f.Add([]byte{0, 0, 0, 0})                         // zero-length frame
	bad := append([]byte(nil), train...)
	bad[4] = 0x63 // unknown message type
	f.Add(bad)
	short := endFrame(append(beginFrame(nil, MsgTrain), 1, 2, 3), 0) // body below trainHeaderLen
	f.Add(short)

	f.Fuzz(func(t *testing.T, stream []byte) {
		fr := &frameReader{r: bytes.NewReader(stream)}
		for {
			typ, body, n, err := fr.next()
			if err != nil {
				if err != io.EOF && n != 0 {
					t.Fatalf("frame reader reported %d consumed bytes alongside error %v", n, err)
				}
				return
			}
			if n != len(body)+frameOverhead {
				t.Fatalf("frame accounting off: n=%d body=%d", n, len(body))
			}
			// Every parser must be total on its frame type.
			switch typ {
			case MsgTrain:
				if m, err := parseTrainMsg(body); err == nil {
					_, _ = wire.Decode(m.Frame)
					_ = validateCfg(m.Cfg)
				}
			case MsgUpdate:
				if m, err := parseUpdateMsg(body); err == nil && m.Err == "" {
					_, _ = wire.Decode(m.Frame)
				}
			case MsgHello:
				_, _ = parseHello(body)
			case MsgWelcome:
				if _, _, spec, err := parseWelcome(body); err == nil {
					_, _ = ParseSpec(spec)
				}
			}
		}
	})
}

// TestTrainMsgRoundTrip pins the binary layout: build → parse returns
// every field bit-exactly.
func TestTrainMsgRoundTrip(t *testing.T) {
	req := &fl.RemoteRequest{
		Client: 42, Round: 1 << 20, Cluster: -1, Layer: fl.FinalLayer,
		Cfg:   fl.LocalConfig{Epochs: 3, BatchSize: 32, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, ProxMu: 0.1},
		Start: []float64{3.25, -1e300, 0},
	}
	body := appendTrainMsg(nil, 99, req, wire.Float64)
	m, err := parseTrainMsg(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReqID != 99 || m.Client != 42 || m.Round != 1<<20 || m.Cluster != -1 || m.Layer != fl.FinalLayer {
		t.Fatalf("metadata drifted: %+v", m)
	}
	if m.Cfg != req.Cfg {
		t.Fatalf("config drifted: %+v != %+v", m.Cfg, req.Cfg)
	}
	vec, err := wire.Decode(m.Frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range req.Start {
		if vec[i] != req.Start[i] {
			t.Fatalf("start vector drifted at %d", i)
		}
	}
}

package transport

import (
	"encoding/json"
	"fmt"

	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/wire"
)

// Spec is the environment description a coordinator ships to joining
// nodes so both sides hold identical client populations: the synthetic
// dataset recipe, the label-group partition, the model architecture, and
// the deterministic seed. Everything a node derives from it — datasets,
// client splits, model weights, per-visit RNG streams — is a pure
// function of the spec, which is what makes a networked round
// reproducible: the coordinator never ships data, only the recipe.
//
// The handshake carries it as JSON: it is exchanged once per node, so
// wire compactness is irrelevant next to debuggability.
type Spec struct {
	// Dataset is the synthetic data recipe (deterministic per seed).
	Dataset data.SynthConfig `json:"dataset"`
	// Groups are the label groups clients are drawn from; PerGroup the
	// client count per group (fl.BuildGroupClients).
	Groups   [][]int `json:"groups"`
	PerGroup []int   `json:"per_group"`
	// Hidden lists the MLP's hidden-layer widths (input and output
	// widths come from the dataset geometry).
	Hidden []int `json:"hidden"`
	// Seed is the environment seed every deterministic stream derives
	// from.
	Seed uint64 `json:"seed"`
	// Rounds, EvalEvery, and Local mirror the fl.Env fields (the
	// coordinator's schedule; nodes receive effective configs per
	// request but build the same Env shape for validation).
	Rounds    int            `json:"rounds"`
	EvalEvery int            `json:"eval_every"`
	Local     fl.LocalConfig `json:"local"`
	// DType selects the numeric compute path every node runs ("",
	// "float64", or "float32"; empty keeps the float64 default). It rides
	// the spec rather than each train request so the whole federation
	// agrees on one path per run — the per-request wire codec stays an
	// independent knob.
	DType string `json:"dtype,omitempty"`
	// Codec names the uplink parameter codec every node replies with
	// ("" keeps float64; see wire.ParseCodec). Like DType it rides the
	// spec, not the train request: a sparse uplink needs node-held
	// error-feedback state, so the whole federation must agree on one
	// codec per run. TopKFrac is the sparse codecs' kept fraction
	// (0 means fl.DefaultTopKFrac).
	Codec    string  `json:"codec,omitempty"`
	TopKFrac float64 `json:"topk_frac,omitempty"`
}

// Spec size ceilings: generous for anything this simulator trains,
// small enough that a corrupt or hostile spec cannot drive an
// allocation bomb before validation.
const (
	maxSpecDim       = 1 << 12 // C, H, or W individually
	maxSpecPixels    = 1 << 22 // C·H·W per image
	maxSpecPerClass  = 1 << 20 // examples per class per split
	maxSpecClasses   = 1 << 12
	maxSpecExamples  = 1 << 24 // examples across all classes and splits
	maxSpecClients   = 1 << 16
	maxSpecHidden    = 1 << 20 // scalars per hidden layer
	maxSpecHiddenNum = 64      // hidden layers
)

// check bounds the recipe's sizes before anything is allocated from it.
func (s *Spec) check() error {
	d := s.Dataset
	// Each dimension is bounded individually before the product is
	// taken in 64 bits — a hostile spec must not wrap the product past
	// the ceiling.
	if d.C < 1 || d.H < 1 || d.W < 1 || d.C > maxSpecDim || d.H > maxSpecDim || d.W > maxSpecDim ||
		int64(d.C)*int64(d.H)*int64(d.W) > maxSpecPixels {
		return fmt.Errorf("transport: spec image geometry %dx%dx%d out of bounds", d.C, d.H, d.W)
	}
	if d.Classes < 2 || d.Classes > maxSpecClasses {
		return fmt.Errorf("transport: spec class count %d out of bounds", d.Classes)
	}
	if d.TrainPerClass < 1 || d.TrainPerClass > maxSpecPerClass ||
		d.TestPerClass < 0 || d.TestPerClass > maxSpecPerClass {
		return fmt.Errorf("transport: spec per-class counts %d/%d out of bounds", d.TrainPerClass, d.TestPerClass)
	}
	if int64(d.TrainPerClass+d.TestPerClass)*int64(d.Classes) > maxSpecExamples {
		return fmt.Errorf("transport: spec describes %d examples, limit %d",
			int64(d.TrainPerClass+d.TestPerClass)*int64(d.Classes), int64(maxSpecExamples))
	}
	if len(s.Groups) == 0 || len(s.Groups) != len(s.PerGroup) {
		return fmt.Errorf("transport: spec has %d groups but %d per-group counts", len(s.Groups), len(s.PerGroup))
	}
	clients := 0
	for i, g := range s.Groups {
		if len(g) == 0 {
			return fmt.Errorf("transport: spec group %d is empty", i)
		}
		for _, label := range g {
			if label < 0 || label >= d.Classes {
				return fmt.Errorf("transport: spec group %d has label %d outside %d classes", i, label, d.Classes)
			}
		}
		if s.PerGroup[i] < 1 {
			return fmt.Errorf("transport: spec group %d has %d clients", i, s.PerGroup[i])
		}
		clients += s.PerGroup[i]
	}
	if clients > maxSpecClients {
		return fmt.Errorf("transport: spec describes %d clients, limit %d", clients, maxSpecClients)
	}
	if len(s.Hidden) > maxSpecHiddenNum {
		return fmt.Errorf("transport: spec has %d hidden layers, limit %d", len(s.Hidden), maxSpecHiddenNum)
	}
	for _, h := range s.Hidden {
		if h < 1 || h > maxSpecHidden {
			return fmt.Errorf("transport: spec hidden width %d out of bounds", h)
		}
	}
	if s.Rounds < 1 {
		return fmt.Errorf("transport: spec has %d rounds", s.Rounds)
	}
	if err := s.Local.Check(); err != nil {
		return fmt.Errorf("transport: spec local config: %w", err)
	}
	if _, err := fl.ParseDType(s.DType); err != nil {
		return fmt.Errorf("transport: spec dtype: %w", err)
	}
	if _, err := wire.ParseCodec(s.Codec); err != nil {
		return fmt.Errorf("transport: spec codec: %w", err)
	}
	if s.TopKFrac < 0 || s.TopKFrac > 1 {
		return fmt.Errorf("transport: spec topk_frac %g outside [0,1]", s.TopKFrac)
	}
	return nil
}

// Marshal encodes the spec for the welcome frame.
func (s *Spec) Marshal() ([]byte, error) { return json.Marshal(s) }

// ParseSpec decodes a welcome frame's spec payload.
func ParseSpec(b []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("transport: bad spec: %w", err)
	}
	return &s, nil
}

// Build constructs the environment the spec describes. Coordinator and
// node call the same code, so their replicas are identical by
// construction. A spec arrives off the wire, so Build never panics: it
// bounds-checks the recipe before materializing anything (a hostile
// size field must not drive an allocation bomb) and converts the
// substrate's validation panics into errors.
func (s *Spec) Build() (env *fl.Env, err error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	// data.Generate and Env.Validate report degenerate configs by
	// panicking (their callers are in-process and trusted); here the
	// config crossed a process boundary, so recover into the error
	// return a node can log and die cleanly on.
	defer func() {
		if r := recover(); r != nil {
			env, err = nil, fmt.Errorf("transport: bad spec: %v", r)
		}
	}()
	train, test := data.Generate(s.Dataset)
	clients, _ := fl.BuildGroupClients(train, test, s.Groups, s.PerGroup, rng.New(s.Seed))
	dims := make([]int, 0, len(s.Hidden)+2)
	dims = append(dims, s.Dataset.C*s.Dataset.H*s.Dataset.W)
	dims = append(dims, s.Hidden...)
	dims = append(dims, s.Dataset.Classes)
	dtype, _ := fl.ParseDType(s.DType)   // validated in check
	codec, _ := wire.ParseCodec(s.Codec) // validated in check
	env = &fl.Env{
		Clients:   clients,
		Factory:   func(r *rng.Rng) *nn.Sequential { return nn.MLP(r, dims...) },
		Rounds:    s.Rounds,
		Local:     s.Local,
		Seed:      s.Seed,
		EvalEvery: s.EvalEvery,
		DType:     dtype,
		Codec:     codec,
		TopKFrac:  s.TopKFrac,
	}
	env.Validate()
	return env, nil
}

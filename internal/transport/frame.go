// Package transport is the simulator's communication subsystem: a
// coordinator/node protocol for running federated rounds across process
// and machine boundaries. A coordinator process owns the round schedule
// (the existing engine.RoundDriver, unchanged); node processes own
// client data and compute. Work orders and parameter updates travel as
// length-prefixed frames carrying internal/wire parameter encodings plus
// round metadata, so bytes on the wire are measured, not modeled.
//
// Two Transport implementations exist: Loopback executes requests
// in-process (zero-copy under the lossless codec — the reference used to
// prove the networked path bit-identical to the in-process engine) and
// TCP ships them over real sockets with connection reuse, concurrent
// in-flight requests, and per-request deadlines. See DESIGN.md §8 for
// the frame layout, handshake, deadline semantics, and the determinism
// contract.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ProtoVersion is the protocol revision; Hello/Welcome exchange it and
// mismatches abort the handshake. Revision 2 added sparse uplinks: the
// spec's codec/topk_frac fields direct node behavior, update frames may
// carry TopK overlays, and requests always travel dense — a v1 peer
// would misprice or fail to decode all three.
const ProtoVersion = 2

// MaxFrame bounds a single frame's body. Large enough for any model this
// simulator trains (a Float64 frame for 16M parameters), small enough
// that a corrupt length prefix cannot drive an allocation bomb.
const MaxFrame = 1 << 27

// frameOverhead is the per-frame wire cost outside the body: the u32
// length prefix plus the u8 message type.
const frameOverhead = 5

// MsgType tags a frame's body.
type MsgType uint8

const (
	// MsgHello is the node's opener: protocol version + node name.
	MsgHello MsgType = 1
	// MsgWelcome is the coordinator's reply: version, the node's assigned
	// client range, and the environment spec the node replicates.
	MsgWelcome MsgType = 2
	// MsgTrain is a work order: round metadata + start parameters.
	MsgTrain MsgType = 3
	// MsgUpdate is a train result: status + update parameters (or an
	// error message).
	MsgUpdate MsgType = 4
	// MsgBye announces an orderly shutdown of the connection.
	MsgBye MsgType = 5
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgTrain:
		return "train"
	case MsgUpdate:
		return "update"
	case MsgBye:
		return "bye"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// beginFrame appends a frame header (length placeholder + type) to dst;
// the caller appends the body and finishes with endFrame. The in-place
// pair lets every sender build header and body in one reused buffer.
func beginFrame(dst []byte, t MsgType) []byte {
	return append(dst, 0, 0, 0, 0, byte(t))
}

// endFrame patches the length prefix of the frame begun at offset start.
func endFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(len(dst)-start-4))
	return dst
}

// frameReader reads frames off a byte stream into a reused buffer.
// limit, when positive, tightens the MaxFrame bound — handshake readers
// set it so an unauthenticated peer's length prefix cannot force a
// large allocation before a single body byte has arrived.
type frameReader struct {
	r     io.Reader
	buf   []byte
	len   [4]byte
	limit int
}

// next reads one frame. The returned body aliases the reader's internal
// buffer and is valid until the following next call. n is the total wire
// size of the frame (body plus framing overhead).
func (fr *frameReader) next() (t MsgType, body []byte, n int, err error) {
	if _, err = io.ReadFull(fr.r, fr.len[:]); err != nil {
		return 0, nil, 0, err
	}
	max := fr.limit
	if max <= 0 {
		max = MaxFrame
	}
	size := int(binary.LittleEndian.Uint32(fr.len[:]))
	if size < 1 {
		return 0, nil, 0, fmt.Errorf("transport: zero-length frame")
	}
	if size > max {
		return 0, nil, 0, fmt.Errorf("transport: frame length %d exceeds limit %d", size, max)
	}
	if cap(fr.buf) < size {
		fr.buf = make([]byte, size)
	}
	frame := fr.buf[:size]
	if _, err = io.ReadFull(fr.r, frame); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // length said more was coming
		}
		return 0, nil, 0, fmt.Errorf("transport: truncated frame: %w", err)
	}
	return MsgType(frame[0]), frame[1:], size + 4, nil
}

package transport_test

// Hostile equivalence for the networked path: a byzantine node's
// corrupted uplink must be survivable — and byte-identical to the
// in-process hostile run. The corruption seam sits coordinator-side
// (after the transport delivers the trained vector), so a remote
// attacker shapes the round exactly like a local one, and the robust
// aggregation downstream defends both the same way.

import (
	"testing"

	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/scenario"
	"fedclust/internal/wire"
)

// hostileGoldenModel puts part of the six golden clients in a sign-flip
// cohort plus a churn cohort. Only wire-level attacks (sign-flip,
// garbage) and availability effects (churn) are modeled here: the
// data-poisoning behaviors (label-noise, drift) rewrite the *training
// view*, which lives with the in-process client — a remote node trains
// on its own local data, so those attacks are out of the transport's
// scope by design (see DESIGN.md §11).
func hostileGoldenModel() *scenario.Model {
	return scenario.New(scenario.Config{
		ByzantineFrac: 0.35, Attack: scenario.AttackSignFlip,
		ChurnFrac: 0.3, ChurnHorizon: 6,
	}, 34, 6)
}

// TestLoopbackHostileEquivalence: the full hostile stack (byzantine
// sign-flips, churn, drift, trimmed-mean defense) over the loopback
// transport reproduces the in-process run bit for bit — for the global
// baseline and for FedClust, whose warmup feature phase also sees the
// corrupted uplinks.
func TestLoopbackHostileEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		trainer func() fl.Trainer
	}{
		{"FedAvg", func() fl.Trainer { return methods.FedAvg{} }},
		{"FedClust", func() fl.Trainer { return &core.FedClust{} }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			baseline := buildGolden(t, 77)
			baseline.Participation.Scenario = hostileGoldenModel()
			baseline.Aggregator = &fl.TrimmedMean{Frac: 0.35}
			want := learningFingerprint(tc.trainer().Run(baseline))

			remote := buildGolden(t, 77)
			remote.Participation.Scenario = hostileGoldenModel()
			remote.Aggregator = &fl.TrimmedMean{Frac: 0.35}
			remote.Remote = loopbackFleet(t, 77, wire.Float64, 0, 6, 6)
			got := learningFingerprint(tc.trainer().Run(remote))
			if got != want {
				t.Errorf("hostile run over loopback drifted from in-process\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestMixedHostileEquivalence: half the fleet remote — including
// byzantine members on both sides of the wire — still matches the
// all-in-process fingerprint under the Krum defense.
func TestMixedHostileEquivalence(t *testing.T) {
	baseline := buildGolden(t, 77)
	baseline.Participation.Scenario = hostileGoldenModel()
	baseline.Aggregator = &fl.Krum{Frac: 0.2, M: 3}
	want := learningFingerprint(methods.FedAvg{}.Run(baseline))

	mixed := buildGolden(t, 77)
	mixed.Participation.Scenario = hostileGoldenModel()
	mixed.Aggregator = &fl.Krum{Frac: 0.2, M: 3}
	mixed.Remote = loopbackFleet(t, 77, wire.Float64, 2, 5, 6) // clients 2..4 remote
	got := learningFingerprint(methods.FedAvg{}.Run(mixed))
	if got != want {
		t.Errorf("mixed hostile fleet drifted from in-process\n got: %s\nwant: %s", got, want)
	}
}

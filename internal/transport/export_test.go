package transport

import (
	"net"
	"time"

	"fedclust/internal/fl"
	"fedclust/internal/wire"
)

// NewTCPForTest wraps an arbitrary established connection in the TCP
// transport (no handshake), for protocol-level tests over net.Pipe.
func NewTCPForTest(conn net.Conn, codec wire.Codec, timeout time.Duration) *TCP {
	return newTCP(conn, "test", codec, timeout)
}

// AbortForTest severs the connection without the Bye farewell — the
// node sees a mid-run disconnect, exactly what a coordinator crash
// (or a kill -9 before restart-from-checkpoint) looks like on the wire.
func (t *TCP) AbortForTest() { t.conn.Close() }

// AppendTrainFrameForTest builds a complete train request frame — the
// exact bytes TCP.Train writes — for size and protocol tests.
func AppendTrainFrameForTest(dst []byte, id uint32, req *fl.RemoteRequest, codec wire.Codec) []byte {
	start := len(dst)
	return endFrame(appendTrainMsg(beginFrame(dst, MsgTrain), id, req, codec), start)
}

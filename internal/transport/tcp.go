package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fedclust/internal/fl"
	"fedclust/internal/obs"
	"fedclust/internal/wire"
)

// ErrTimeout is wrapped by Train errors for updates that missed the
// transport's deadline — the networked analogue of a scenario dropout.
var ErrTimeout = errors.New("deadline exceeded")

// ErrClosed is wrapped by Train errors raised after the connection died
// or the transport was closed.
var ErrClosed = errors.New("connection closed")

// TCP is the coordinator side of one node connection. A single
// connection is reused for the whole run: concurrent Train calls are
// multiplexed over it by request id, with a dedicated read loop
// delivering each update to its waiter. Per-request deadlines map the
// scenario layer's virtual round deadline onto wall-clock time — a node
// that cannot answer in time is reported failed, and its late update is
// discarded on arrival.
type TCP struct {
	conn    net.Conn
	name    string
	codec   wire.Codec
	timeout time.Duration

	wmu  sync.Mutex
	wbuf []byte

	pmu     sync.Mutex
	pending map[uint32]*pendingReq
	nextID  atomic.Uint32

	readDone chan struct{}
	readErr  error // set before readDone closes
	closed   atomic.Bool

	// m is this connection's telemetry bundle (per-node request counters,
	// RTT/encode/decode histograms). Always present; updates are gated on
	// the process telemetry switch.
	m *nodeMetrics
}

// pendingReq is one in-flight request's rendezvous state. claimed
// arbitrates the race between delivery and abandonment: exactly one of
// the read loop (about to decode into out) and the waiter (timing out
// or observing the connection die) wins the CAS. The loser of a
// delivery-side win must consume done — out is only safe to reclaim
// after the decode finishes — and a waiter-side win means the read loop
// discards the late update without ever touching out.
type pendingReq struct {
	out     []float64
	up      int64 // response frame wire size, set before done is signalled
	done    chan error
	claimed atomic.Bool
}

// newTCP wraps an established, handshake-complete connection. codec is
// the parameter encoding for both directions; timeout (0 = none) bounds
// each request round trip.
func newTCP(conn net.Conn, name string, codec wire.Codec, timeout time.Duration) *TCP {
	t := &TCP{
		conn: conn, name: name, codec: codec, timeout: timeout,
		pending:  make(map[uint32]*pendingReq),
		readDone: make(chan struct{}),
		m:        newNodeMetrics(name),
	}
	go t.readLoop()
	return t
}

// Name returns the node's self-reported name.
func (t *TCP) Name() string { return t.name }

// Train implements Transport.
func (t *TCP) Train(req *fl.RemoteRequest, out []float64) (down, up int64, err error) {
	if t.closed.Load() {
		return 0, 0, fmt.Errorf("transport: %s: %w", t.name, ErrClosed)
	}
	id := t.nextID.Add(1)
	p := &pendingReq{out: out, done: make(chan error, 1)}
	if t.codec.Sparse() && req.Layer == fl.FullParams && len(out) == len(req.Start) {
		// A sparse update is an overlay on the broadcast start: preload
		// the result buffer with the reference vector so the read loop
		// can apply the frame's kept coordinates in place.
		copy(out, req.Start)
	}
	t.pmu.Lock()
	t.pending[id] = p
	t.pmu.Unlock()

	t.wmu.Lock()
	enc := obs.StartSpan(t.m.encode)
	buf := beginFrame(t.wbuf[:0], MsgTrain)
	// Requests travel dense: sparse codecs broadcast under Float64.
	buf = appendTrainMsg(buf, id, req, t.codec.Downlink())
	buf = endFrame(buf, 0)
	t.wbuf = buf
	enc.End()
	t.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	sent, werr := t.conn.Write(buf)
	t.wmu.Unlock()
	rtt := obs.StartSpan(t.m.rtt)
	// Measured, not modeled: a failed write counts only what actually
	// left the process.
	down = int64(sent)
	if obs.Enabled() {
		t.m.requests.Inc()
		t.m.downBytes.Add(uint64(sent))
	}
	if werr != nil {
		t.forget(id)
		if obs.Enabled() {
			t.m.errors.Inc()
		}
		return down, 0, fmt.Errorf("transport: send to %s: %w", t.name, werr)
	}

	var deadline <-chan time.Time
	if t.timeout > 0 {
		timer := time.NewTimer(t.timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	wrap := func(err error) error {
		if err != nil {
			err = fmt.Errorf("transport: %s: client %d round %d: %w", t.name, req.Client, req.Round, err)
		}
		return err
	}
	select {
	case err = <-p.done:
		t.settle(rtt, p.up)
		return down, p.up, wrap(err)
	case <-deadline:
		t.forget(id)
		if !p.claimed.CompareAndSwap(false, true) {
			// The read loop won the claim concurrently: its decode into
			// out is committed or in flight, so the result must be
			// consumed — out is not safe to reclaim until it lands.
			err = <-p.done
			t.settle(rtt, p.up)
			return down, p.up, wrap(err)
		}
		if obs.Enabled() {
			t.m.timeouts.Inc()
		}
		return down, 0, fmt.Errorf("transport: %s: client %d round %d update after %v: %w",
			t.name, req.Client, req.Round, t.timeout, ErrTimeout)
	case <-t.readDone:
		t.forget(id)
		if !p.claimed.CompareAndSwap(false, true) {
			// Delivered concurrently with the read loop's exit.
			err = <-p.done
			t.settle(rtt, p.up)
			return down, p.up, wrap(err)
		}
		if obs.Enabled() {
			t.m.errors.Inc()
		}
		return down, 0, fmt.Errorf("transport: %s: %w: %v", t.name, ErrClosed, t.readErr)
	}
}

// settle closes a delivered request's telemetry: the RTT span ends and
// the measured response bytes accumulate.
func (t *TCP) settle(rtt obs.Span, up int64) {
	rtt.End()
	if obs.Enabled() {
		t.m.upBytes.Add(uint64(up))
	}
}

// forget abandons an in-flight request; a late update for it is dropped
// by the read loop.
func (t *TCP) forget(id uint32) {
	t.pmu.Lock()
	delete(t.pending, id)
	t.pmu.Unlock()
}

// readLoop delivers updates to their waiting requests until the
// connection dies.
func (t *TCP) readLoop() {
	fr := &frameReader{r: bufio.NewReaderSize(t.conn, 1<<16)}
	var exitErr error
	for {
		typ, body, n, err := fr.next()
		if err != nil {
			exitErr = err
			break
		}
		if typ != MsgUpdate {
			continue // forward compatibility: skip unknown traffic
		}
		m, err := parseUpdateMsg(body)
		if err != nil {
			exitErr = err
			break
		}
		t.pmu.Lock()
		p := t.pending[m.ReqID]
		delete(t.pending, m.ReqID)
		t.pmu.Unlock()
		if p == nil || !p.claimed.CompareAndSwap(false, true) {
			// Timed out or forgotten: the waiter's claim won, so the
			// late update is discarded without ever touching out.
			continue
		}
		// Claim held: out stays ours until done is signalled (an
		// abandoning waiter that lost the claim blocks on done).
		p.up = int64(n)
		if m.Err != "" {
			p.done <- errors.New(m.Err)
			continue
		}
		dec := obs.StartSpan(t.m.decode)
		if fc, ferr := wire.FrameCodec(m.Frame); ferr == nil && fc.Sparse() {
			// Sparse overlay onto the preloaded reference (fully
			// validated, in place — a hostile frame cannot force an
			// allocation here). Train preloaded out only for sparse
			// full-parameter requests; an unsolicited sparse reply to
			// anything else lands on stale contents, which is the same
			// trust level as any other attacker-chosen vector.
			aerr := wire.ApplySparseInto(p.out, m.Frame)
			dec.End()
			p.done <- aerr
			continue
		}
		vals, derr := wire.DecodeInto(p.out, m.Frame)
		if derr == nil && len(vals) != len(p.out) {
			derr = fmt.Errorf("update carries %d values, expected %d", len(vals), len(p.out))
		}
		dec.End()
		p.done <- derr
	}
	t.readErr = exitErr
	close(t.readDone)
}

// Close says Bye, tears the connection down, and wakes every in-flight
// waiter with ErrClosed.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.wmu.Lock()
	bye := endFrame(beginFrame(t.wbuf[:0], MsgBye), 0)
	t.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	_, _ = t.conn.Write(bye) // best effort
	t.wmu.Unlock()
	err := t.conn.Close()
	<-t.readDone
	return err
}

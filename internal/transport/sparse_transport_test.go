package transport_test

// Sparse codecs over the transport: the estimate == measured contract
// (an in-process run's priced bytes equal a loopback run's measured
// bytes, byte for byte, under every codec), FedClust's dense warmup
// accounting, and the 3-node TCP path carrying TopK overlays.

import (
	"testing"
	"time"

	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

// codecEnv is the golden environment with a codec selection applied —
// the coordinator side of a compressed run.
func codecEnv(t testing.TB, seed uint64, c wire.Codec, frac float64) *fl.Env {
	env := buildGolden(t, seed)
	env.Codec = c
	env.TopKFrac = frac
	return env
}

// codecFleet is loopbackFleet for an arbitrary codec: the node-side env
// replica carries the same codec selection, so a sparse service builds
// its own error-feedback accumulator exactly as a joined node would.
func codecFleet(t testing.TB, seed uint64, c wire.Codec, frac float64, lo, hi, n int) *transport.Fleet {
	t.Helper()
	nodeEnv := codecEnv(t, seed, c, frac)
	fleet := transport.NewFleet(n)
	fleet.Assign(transport.NewLoopback(transport.NewService(nodeEnv), c), lo, hi)
	return fleet
}

// allCodecs enumerates every uplink codec the wire package defines.
var allCodecs = []wire.Codec{wire.Float64, wire.Float32, wire.Quant8, wire.TopK, wire.TopKQuant8}

// TestCommEstimateMatchesLoopbackMeasured is the honest-bytes
// regression: for every codec, an in-process run's scalar-count
// estimates (CommStats.Upload/Download under the env's pricing) must
// equal a loopback run's measured framed bytes exactly — and the
// learning outcomes must be bit-identical too, since both paths apply
// the same codec arithmetic to the same visits. FedAvg exercises the
// plain round loop; FedClust adds the one-shot warmup exchange with its
// dense partial upload.
func TestCommEstimateMatchesLoopbackMeasured(t *testing.T) {
	const frac = 0.05
	for _, c := range allCodecs {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			t.Parallel()
			for _, mk := range []struct {
				name    string
				trainer func() fl.Trainer
			}{
				{"FedAvg", func() fl.Trainer { return methods.FedAvg{} }},
				{"FedClust", func() fl.Trainer { return &core.FedClust{} }},
			} {
				est := mk.trainer().Run(codecEnv(t, 77, c, frac))
				menv := codecEnv(t, 77, c, frac)
				menv.Remote = codecFleet(t, 77, c, frac, 0, 6, 6)
				meas := mk.trainer().Run(menv)
				if est.Comm.UpBytes != meas.Comm.UpBytes || est.Comm.DownBytes != meas.Comm.DownBytes {
					t.Errorf("%s/%s: estimate (up %d, down %d) != loopback measured (up %d, down %d)",
						mk.name, c, est.Comm.UpBytes, est.Comm.DownBytes,
						meas.Comm.UpBytes, meas.Comm.DownBytes)
				}
				if got, want := learningFingerprint(meas), learningFingerprint(est); got != want {
					t.Errorf("%s/%s: loopback learning diverged from in-process\n got: %s\nwant: %s",
						mk.name, c, got, want)
				}
				if meas.Comm.MeasuredUp != meas.Comm.UpBytes || meas.Comm.MeasuredDown != meas.Comm.DownBytes {
					t.Errorf("%s/%s: fully-remote run reports estimate leakage (measured up %d of %d, down %d of %d)",
						mk.name, c, meas.Comm.MeasuredUp, meas.Comm.UpBytes,
						meas.Comm.MeasuredDown, meas.Comm.DownBytes)
				}
			}
		})
	}
}

// TestFedClustWarmupAccounting pins the partial-upload bugfix: the
// warmup's final-layer upload is charged as the full framed message the
// wire carries (envelope + metadata + dense frame of the layer vector),
// never the sparse full-parameter pricing — and the in-process charge
// equals the loopback-measured round-0 traffic exactly.
func TestFedClustWarmupAccounting(t *testing.T) {
	env := codecEnv(t, 77, wire.TopK, 0.05)
	numParams := env.NewModel().NumParams()
	layerLen := len(nn.FinalLayerVector(env.NewModel()))
	res := (&core.FedClust{}).Run(env)

	n := int64(len(env.Clients))
	wantUp := n * fl.TrainResponseBytes(wire.Float64, layerLen)
	wantDown := n * fl.TrainRequestBytes(wire.Float64, numParams)
	r0 := res.Comm.PerRound[0]
	if r0.UpBytes != wantUp || r0.DownBytes != wantDown {
		t.Errorf("warmup charged (up %d, down %d), dense frame model says (up %d, down %d)",
			r0.UpBytes, r0.DownBytes, wantUp, wantDown)
	}
	if res.ClusterFormationUpBytes != wantUp {
		t.Errorf("formation cost %d, want the warmup's %d", res.ClusterFormationUpBytes, wantUp)
	}
	// Sanity: the dense layer upload must not be priced like a sparse
	// full-parameter uplink.
	sparseUp := n * fl.TrainResponseBytesSparse(wire.TopK, numParams, wire.TopKCount(numParams, 0.05))
	if r0.UpBytes == sparseUp {
		t.Errorf("warmup upload %d priced under the sparse full-parameter codec", r0.UpBytes)
	}

	menv := codecEnv(t, 77, wire.TopK, 0.05)
	menv.Remote = codecFleet(t, 77, wire.TopK, 0.05, 0, 6, 6)
	meas := (&core.FedClust{}).Run(menv)
	m0 := meas.Comm.PerRound[0]
	if m0.UpBytes != r0.UpBytes || m0.DownBytes != r0.DownBytes {
		t.Errorf("warmup estimate (up %d, down %d) != loopback measured (up %d, down %d)",
			r0.UpBytes, r0.DownBytes, m0.UpBytes, m0.DownBytes)
	}
}

// sparseSpec is goldenSpec with the TopK selection riding the handshake,
// so joining nodes build sparse-enabled service replicas.
func sparseSpec(seed uint64, c wire.Codec, frac float64) *transport.Spec {
	spec := goldenSpec(seed)
	spec.Codec = c.String()
	spec.TopKFrac = frac
	return spec
}

// TestTCPThreeNodeSparseEquivalence: a TopK run across three localhost
// nodes — each holding its own error-feedback residuals — is
// bit-identical to the in-process sparse path, and its measured traffic
// equals both the loopback measurement and the in-process estimate.
func TestTCPThreeNodeSparseEquivalence(t *testing.T) {
	const frac = 0.05
	for _, mk := range []struct {
		name    string
		trainer func() fl.Trainer
	}{
		{"FedAvg", func() fl.Trainer { return methods.FedAvg{} }},
		{"FedClust", func() fl.Trainer { return &core.FedClust{} }},
	} {
		coord, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		specBytes, err := sparseSpec(77, wire.TopK, frac).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		wait := startNodes(t, coord.Addr(), 3)
		nodes, err := coord.AcceptNodes(3, 6, specBytes, wire.TopK, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		env := codecEnv(t, 77, wire.TopK, frac)
		fleet := transport.FleetOf(len(env.Clients), nodes)
		env.Remote = fleet
		res := mk.trainer().Run(env)
		if err := fleet.Close(); err != nil {
			t.Errorf("fleet close: %v", err)
		}
		wait()
		coord.Close()

		ref := mk.trainer().Run(codecEnv(t, 77, wire.TopK, frac))
		if got, want := learningFingerprint(res), learningFingerprint(ref); got != want {
			t.Errorf("%s over 3-node sparse TCP drifted from in-process\n got: %s\nwant: %s",
				mk.name, got, want)
		}
		if res.Comm.UpBytes != ref.Comm.UpBytes || res.Comm.DownBytes != ref.Comm.DownBytes {
			t.Errorf("%s: TCP measured (up %d, down %d) != in-process estimate (up %d, down %d)",
				mk.name, res.Comm.UpBytes, res.Comm.DownBytes, ref.Comm.UpBytes, ref.Comm.DownBytes)
		}
	}
}

// TestSparseLoopbackMixedOwnership: half the clients compress through
// the engine's own accumulator, half through a node-held one — the
// split must not move a bit relative to the all-local run, and the
// totals still equal the pure estimate (both sides price identically).
func TestSparseLoopbackMixedOwnership(t *testing.T) {
	for _, c := range []wire.Codec{wire.TopK, wire.TopKQuant8} {
		want := methods.FedAvg{}.Run(codecEnv(t, 77, c, 0.05))
		env := codecEnv(t, 77, c, 0.05)
		env.Remote = codecFleet(t, 77, c, 0.05, 3, 6, 6) // clients 3..5 remote
		got := methods.FedAvg{}.Run(env)
		if g, w := learningFingerprint(got), learningFingerprint(want); g != w {
			t.Errorf("%s: mixed local/remote sparse run drifted\n got: %s\nwant: %s", c, g, w)
		}
		if got.Comm.UpBytes != want.Comm.UpBytes || got.Comm.DownBytes != want.Comm.DownBytes {
			t.Errorf("%s: mixed run traffic (up %d, down %d) != estimate (up %d, down %d)",
				c, got.Comm.UpBytes, got.Comm.DownBytes, want.Comm.UpBytes, want.Comm.DownBytes)
		}
	}
}

// TestLoopbackRejectsSparseMismatch: wiring a sparse codec to a dense
// service (or the reverse) is a construction bug and must panic before
// any byte is mispriced.
func TestLoopbackRejectsSparseMismatch(t *testing.T) {
	dense := transport.NewService(buildGolden(t, 77))
	sparse := transport.NewService(codecEnv(t, 77, wire.TopK, 0.05))
	for name, build := range map[string]func(){
		"sparse codec on dense service": func() { transport.NewLoopback(dense, wire.TopK) },
		"dense codec on sparse service": func() { transport.NewLoopback(sparse, wire.Float64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewLoopback did not panic", name)
				}
			}()
			build()
		}()
	}
}

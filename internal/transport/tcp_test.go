package transport_test

// Localhost TCP smoke: real sockets, three node "processes" (goroutines
// with fully independent environment replicas built from the handshake
// spec — they share no memory with the coordinator's env), full
// handshake, multiplexed concurrent requests, measured bytes. Plus the
// failure paths: deadlines, mid-stream disconnects, garbage on the wire.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

// startNodes launches n joining nodes against the coordinator address.
// Each builds its env replica from the welcome spec — the real node code
// path — and serves until the coordinator says Bye. Returns a join
// function that propagates node failures.
func startNodes(t *testing.T, addr string, n int) (wait func()) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, _, _, specBytes, err := transport.Join(addr, "node")
			if err != nil {
				errs <- err
				return
			}
			spec, err := transport.ParseSpec(specBytes)
			if err != nil {
				errs <- err
				return
			}
			env, err := spec.Build()
			if err != nil {
				errs <- err
				return
			}
			if err := transport.NewService(env).ServeConn(conn); err != nil {
				errs <- err
			}
		}(i)
	}
	return func() {
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Errorf("node failed: %v", err)
		}
	}
}

// runTCP runs one trainer over a fresh coordinator + k joined nodes and
// returns the result.
func runTCP(t *testing.T, trainer fl.Trainer, k int) *fl.Result {
	t.Helper()
	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	spec := goldenSpec(77)
	specBytes, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wait := startNodes(t, coord.Addr(), k)
	nodes, err := coord.AcceptNodes(k, 6, specBytes, wire.Float64, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	env := buildGolden(t, 77)
	fleet := transport.FleetOf(len(env.Clients), nodes)
	env.Remote = fleet
	res := trainer.Run(env)
	if err := fleet.Close(); err != nil {
		t.Errorf("fleet close: %v", err)
	}
	wait()
	return res
}

// TestTCPThreeNodeGoldenEquivalence is the acceptance smoke: FedAvg and
// FedClust across three localhost nodes are bit-identical to the
// in-process path (pinned learning fingerprints) and their measured
// traffic equals the loopback transport's computed accounting —
// estimate == actual, down to the byte.
func TestTCPThreeNodeGoldenEquivalence(t *testing.T) {
	for _, c := range []struct {
		name    string
		trainer func() fl.Trainer
		want    string
	}{
		{"FedAvg", func() fl.Trainer { return methods.FedAvg{} }, goldenLearning[0].want},
		{"FedClust", func() fl.Trainer { return &core.FedClust{} }, goldenLearning[2].want},
	} {
		res := runTCP(t, c.trainer(), 3)
		if got := learningFingerprint(res); got != c.want {
			t.Errorf("%s over 3-node TCP drifted\n got: %s\nwant: %s", c.name, got, c.want)
		}
		// Loopback reference run with identical ownership topology.
		env := buildGolden(t, 77)
		env.Remote = loopbackFleet(t, 77, wire.Float64, 0, 6, 6)
		ref := c.trainer().Run(env)
		if res.Comm.UpBytes != ref.Comm.UpBytes || res.Comm.DownBytes != ref.Comm.DownBytes {
			t.Errorf("%s: TCP measured (up %d, down %d) != loopback estimate (up %d, down %d)",
				c.name, res.Comm.UpBytes, res.Comm.DownBytes, ref.Comm.UpBytes, ref.Comm.DownBytes)
		}
	}
}

// fakeNode joins a coordinator and then misbehaves per the handler:
// handler receives the post-handshake connection and does whatever it
// wants with it.
func fakeNode(t *testing.T, addr string, handler func(net.Conn)) {
	t.Helper()
	conn, _, _, _, err := transport.Join(addr, "fake")
	if err != nil {
		t.Errorf("fake node join: %v", err)
		return
	}
	handler(conn)
}

// TestTCPTimeout: a node that accepts work but never answers trips the
// per-request deadline; the engine treats its clients as dropouts and
// the round completes, with downlink bytes recorded and zero uplink.
func TestTCPTimeout(t *testing.T) {
	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	specBytes, _ := goldenSpec(77).Marshal()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fakeNode(t, coord.Addr(), func(conn net.Conn) {
			defer conn.Close()
			buf := make([]byte, 1<<16)
			for {
				if _, err := conn.Read(buf); err != nil {
					return // swallow requests until the coordinator hangs up
				}
			}
		})
	}()
	nodes, err := coord.AcceptNodes(1, 6, specBytes, wire.Float64, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	env := buildGolden(t, 77)
	env.Rounds = 2
	fleet := transport.FleetOf(6, nodes)
	env.Remote = fleet

	// Direct transport check: the error wraps ErrTimeout.
	req := &fl.RemoteRequest{
		Client: 0, Round: 0, Cluster: -1, Layer: fl.FullParams,
		Cfg:   env.Local,
		Start: make([]float64, 1384),
	}
	if _, _, err := fleet.Train(req, make([]float64, 1384)); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}

	// Engine integration: all clients fail every round; the run still
	// completes (aggregation skipped, server state frozen at w₀).
	res := methods.FedAvg{}.Run(env)
	if res.Comm.UpBytes != 0 {
		t.Errorf("no update ever arrived but uplink recorded %d bytes", res.Comm.UpBytes)
	}
	if res.Comm.DownBytes == 0 {
		t.Errorf("requests were sent but downlink recorded nothing")
	}
	fleet.Close()
	<-done
}

// TestTCPDisconnectMidStream: a node that dies mid-run fails its
// in-flight and future requests; a mixed fleet's surviving clients keep
// training and the run completes.
func TestTCPDisconnectMidStream(t *testing.T) {
	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	specBytes, _ := goldenSpec(77).Marshal()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fakeNode(t, coord.Addr(), func(conn net.Conn) {
			// Read one request's length prefix, then vanish mid-frame.
			buf := make([]byte, 4)
			_, _ = conn.Read(buf)
			conn.Close()
		})
	}()
	nodes, err := coord.AcceptNodes(1, 6, specBytes, wire.Float64, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	env := buildGolden(t, 77)
	env.Rounds = 2
	fleet := transport.NewFleet(6)
	fleet.Assign(nodes[0].TCP, 4, 6) // clients 4,5 on the doomed node
	env.Remote = fleet
	res := methods.FedAvg{}.Run(env)
	if res.FinalAcc <= 0 {
		t.Errorf("run with a dead node did not recover: acc=%v", res.FinalAcc)
	}
	fleet.Close()
	<-done
}

// TestAcceptNodesSurvivesStrayConnections: non-protocol traffic hitting
// the coordinator port (port scans, health checks, a browser) is
// dropped without aborting startup — the real nodes still join.
func TestAcceptNodesSurvivesStrayConnections(t *testing.T) {
	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	specBytes, _ := goldenSpec(77).Marshal()
	// A stray connection first, so the accept loop meets it before any
	// real node.
	stray, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = stray.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	stray.Close()
	// A hostile length prefix (≈2 GiB) with no body: the handshake's
	// frame cap must reject it without allocating for it.
	bomb, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = bomb.Write([]byte{0xff, 0xff, 0xff, 0x7f})
	bomb.Close()
	wait := startNodes(t, coord.Addr(), 2)
	nodes, err := coord.AcceptNodes(2, 6, specBytes, wire.Float64, 10*time.Second)
	if err != nil {
		t.Fatalf("stray connection aborted startup: %v", err)
	}
	if len(nodes) != 2 {
		t.Fatalf("joined %d nodes, want 2", len(nodes))
	}
	for _, nd := range nodes {
		nd.Close()
	}
	wait()
}

// TestTCPTimeoutDeliveryRace hammers the boundary between delivery and
// abandonment: with the deadline set at roughly one visit's service
// time, many updates arrive within microseconds of their timer firing.
// Whichever side wins, the reused out buffer must never be written by a
// late decode after Train has returned — the claim CAS guarantees it,
// and the race detector enforces it here (the caller immediately
// rewrites the buffer after every timeout, exactly like the engine's
// arena slots across rounds).
func TestTCPTimeoutDeliveryRace(t *testing.T) {
	coord, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	specBytes, _ := goldenSpec(77).Marshal()
	wait := startNodes(t, coord.Addr(), 1)
	nodes, err := coord.AcceptNodes(1, 6, specBytes, wire.Float64, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	env := buildGolden(t, 77)
	svc := transport.NewService(env)
	numParams := svc.NumParams()
	req := &fl.RemoteRequest{
		Cluster: -1, Layer: fl.FullParams,
		Cfg:   fl.LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1},
		Start: make([]float64, numParams),
	}
	out := make([]float64, numParams) // deliberately reused across visits
	timeouts, ok := 0, 0
	for i := 0; i < 200; i++ {
		req.Client, req.Round = i%6, i
		_, _, err := nodes[0].Train(req, out)
		switch {
		case err == nil:
			ok++
		case errors.Is(err, transport.ErrTimeout):
			timeouts++
		case errors.Is(err, transport.ErrClosed):
			t.Fatalf("connection died mid-stress: %v", err)
		default:
			t.Fatalf("unexpected error: %v", err)
		}
		for j := range out {
			out[j] = 0 // the rewrite a late decode would race with
		}
	}
	t.Logf("%d delivered, %d timed out", ok, timeouts)
	if err := nodes[0].Close(); err != nil {
		t.Error(err)
	}
	wait()
}

// TestServeConnSurvivesGarbage: raw garbage, truncated frames, and
// oversized length prefixes terminate the connection with an error —
// never a panic, never a hang.
func TestServeConnSurvivesGarbage(t *testing.T) {
	env := buildGolden(t, 77)
	svc := transport.NewService(env)
	cases := [][]byte{
		{0xff, 0xff, 0xff, 0xff, 1, 2, 3},       // absurd length prefix
		{0x00, 0x00, 0x00, 0x00},                // zero length
		{5, 0, 0, 0, byte(3), 1, 2},             // train frame, truncated body
		{1, 0, 0, 0, byte(3)},                   // train frame, empty body
		{10, 0, 0, 0, 99, 1, 2, 3, 4, 5, 6, 7},  // unknown type, short body
		append([]byte{80, 0, 0, 0, byte(3)}, make([]byte, 60)...), // valid header, truncated wire frame
	}
	for i, raw := range cases {
		server, client := net.Pipe()
		errCh := make(chan error, 1)
		go func() { errCh <- svc.ServeConn(server) }()
		client.SetDeadline(time.Now().Add(5 * time.Second))
		_, _ = client.Write(raw)
		client.Close()
		select {
		case <-errCh:
			// Returned (error or orderly) — the requirement is no panic
			// and no hang.
		case <-time.After(10 * time.Second):
			t.Fatalf("case %d: ServeConn hung on garbage", i)
		}
	}
}

// TestServeConnAnswersBadRequest: a well-framed but semantically invalid
// work order earns an error response, and the connection survives for
// the next request.
func TestServeConnAnswersBadRequest(t *testing.T) {
	env := buildGolden(t, 77)
	svc := transport.NewService(env)
	server, client := net.Pipe()
	go svc.ServeConn(server)
	defer client.Close()

	tr := transport.NewTCPForTest(client, wire.Float64, 5*time.Second)
	defer tr.Close()
	bad := &fl.RemoteRequest{
		Client: 99, Round: 0, Cluster: -1, Layer: fl.FullParams,
		Cfg:   fl.LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1},
		Start: make([]float64, svc.NumParams()),
	}
	if _, up, err := tr.Train(bad, make([]float64, svc.NumParams())); err == nil {
		t.Fatal("out-of-range client accepted")
	} else if up == 0 {
		t.Error("error response bytes not measured")
	}
	good := *bad
	good.Client = 2
	if _, _, err := tr.Train(&good, make([]float64, svc.NumParams())); err != nil {
		t.Fatalf("connection did not survive a rejected request: %v", err)
	}
}

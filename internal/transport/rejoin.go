package transport

import (
	"fmt"
	"time"
)

// SpecHash fingerprints a run's spec payload (FNV-1a over the welcome's
// spec bytes). It is the run's identity across coordinator restarts: a
// rejoining node and a resuming coordinator both compare it, so state
// from one run can never continue under another's configuration.
func SpecHash(spec []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range spec {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// ServeLoop runs a node with rejoin: dial the coordinator, handshake,
// serve until the session ends — and when it ends without a Bye (the
// coordinator crashed or is restarting from a checkpoint), keep re-dialing
// every interval for up to window, verifying via SpecHash that the
// restarted coordinator is running the same spec before serving again.
//
// build is called once, after the first successful handshake, to
// construct the node's service from the spec payload; later joins reuse
// it (the environment replica is a pure function of the spec, which the
// hash pins). ServeLoop returns nil after an orderly Bye, and an error
// when the first join or build fails, the rejoin window expires, a
// restarted coordinator presents a different spec, or the protocol
// breaks. window <= 0 disables rejoining entirely (one session, like
// ServeConn).
func ServeLoop(addr, name string, window, interval time.Duration, build func(lo, hi int, spec []byte) (*Service, error)) error {
	if interval <= 0 {
		interval = time.Second
	}
	var (
		svc      *Service
		specHash uint64
		joined   bool
	)
	var deadline time.Time
	for {
		conn, lo, hi, spec, err := Join(addr, name)
		if err != nil {
			if !joined {
				return err // never handshaked: fail loudly, nothing to resume
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("transport: rejoin window %v expired: %w", window, err)
			}
			time.Sleep(interval)
			continue
		}
		h := SpecHash(spec)
		if !joined {
			if svc, err = build(lo, hi, spec); err != nil {
				conn.Close()
				return err
			}
			specHash, joined = h, true
		} else if h != specHash {
			conn.Close()
			return fmt.Errorf("transport: coordinator came back with a different spec (hash %#x, joined under %#x)", h, specHash)
		}
		bye, err := svc.Serve(conn)
		if bye {
			return nil
		}
		if window <= 0 {
			return err
		}
		// Disconnect without Bye: open the rejoin window from now and keep
		// dialing. A protocol error still rejoins — the restarted
		// coordinator gets a fresh session either way.
		deadline = time.Now().Add(window)
	}
}

package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"fedclust/internal/fl"
	"fedclust/internal/wire"
)

// trainHeaderLen is the fixed metadata prefix of a MsgTrain body:
// request id, client, round, cluster, layer (5×u32/i32) plus the local
// config (epochs, batch as u32; lr, momentum, weight decay, prox mu as
// f64).
const trainHeaderLen = 7*4 + 4*8

// updateHeaderLen is the fixed prefix of a MsgUpdate body: request id
// (u32) + status (u8).
const updateHeaderLen = 5

// Update statuses.
const (
	statusOK     = 0
	statusFailed = 1
)

// TrainRequestSize returns the exact on-the-wire size of a train work
// order carrying an n-vector under codec c — framing, metadata, and the
// wire-encoded parameters. Loopback accounts with this formula; the TCP
// transport's measured bytes equal it exactly. The formulas themselves
// live in fl (fl.TrainRequestBytes and friends) so in-process estimates
// price identical bytes; transport tests assert the delegation against
// real frame lengths, so the two layers cannot drift.
func TrainRequestSize(c wire.Codec, n int) int {
	return int(fl.TrainRequestBytes(c, n))
}

// TrainResponseSize returns the exact on-the-wire size of a successful
// update reply carrying a dense n-vector under codec c.
func TrainResponseSize(c wire.Codec, n int) int {
	return int(fl.TrainResponseBytes(c, n))
}

// TrainResponseSizeSparse is TrainResponseSize for a sparse uplink
// keeping k of n coordinates.
func TrainResponseSizeSparse(c wire.Codec, n, k int) int {
	return int(fl.TrainResponseBytesSparse(c, n, k))
}

// trainMsg is a parsed MsgTrain body.
type trainMsg struct {
	ReqID                         uint32
	Client, Round, Cluster, Layer int
	Cfg                           fl.LocalConfig
	// Frame is the wire-encoded start vector. After parse it aliases the
	// connection's read buffer: decode before reading the next frame.
	Frame []byte
}

// appendTrainMsg appends the MsgTrain body for a request (everything but
// the enclosing frame) to dst.
func appendTrainMsg(dst []byte, reqID uint32, req *fl.RemoteRequest, codec wire.Codec) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, reqID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.Client))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.Round))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(req.Cluster)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(req.Layer)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.Cfg.Epochs))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.Cfg.BatchSize))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(req.Cfg.LR))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(req.Cfg.Momentum))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(req.Cfg.WeightDecay))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(req.Cfg.ProxMu))
	return wire.EncodeInto(dst, codec, req.Start)
}

// parseTrainMsg parses a MsgTrain body. It never panics: malformed
// bodies — a node must survive anything a peer sends — return an error.
func parseTrainMsg(body []byte) (trainMsg, error) {
	var m trainMsg
	if len(body) < trainHeaderLen {
		return m, fmt.Errorf("transport: train body %d bytes, want ≥%d", len(body), trainHeaderLen)
	}
	m.ReqID = binary.LittleEndian.Uint32(body[0:])
	m.Client = int(int32(binary.LittleEndian.Uint32(body[4:])))
	m.Round = int(int32(binary.LittleEndian.Uint32(body[8:])))
	m.Cluster = int(int32(binary.LittleEndian.Uint32(body[12:])))
	m.Layer = int(int32(binary.LittleEndian.Uint32(body[16:])))
	m.Cfg.Epochs = int(int32(binary.LittleEndian.Uint32(body[20:])))
	m.Cfg.BatchSize = int(int32(binary.LittleEndian.Uint32(body[24:])))
	m.Cfg.LR = math.Float64frombits(binary.LittleEndian.Uint64(body[28:]))
	m.Cfg.Momentum = math.Float64frombits(binary.LittleEndian.Uint64(body[36:]))
	m.Cfg.WeightDecay = math.Float64frombits(binary.LittleEndian.Uint64(body[44:]))
	m.Cfg.ProxMu = math.Float64frombits(binary.LittleEndian.Uint64(body[52:]))
	m.Frame = body[trainHeaderLen:]
	return m, nil
}

// validateCfg guards untrusted wire configs without panicking — one rule
// set, shared with in-process training via fl.LocalConfig.Check.
func validateCfg(c fl.LocalConfig) error { return c.Check() }

// appendUpdateOK appends a successful MsgUpdate body: id, status, the
// encoded update vector.
func appendUpdateOK(dst []byte, reqID uint32, codec wire.Codec, vec []float64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, reqID)
	dst = append(dst, statusOK)
	return wire.EncodeInto(dst, codec, vec)
}

// appendUpdateOK32 is appendUpdateOK for a producer that already holds
// the update as float32 (the float32 training path): the Float32 frame
// is encoded without the float64 round-trip, bit-identical to the slow
// path (see wire.EncodeFloat32Into).
func appendUpdateOK32(dst []byte, reqID uint32, vec []float32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, reqID)
	dst = append(dst, statusOK)
	return wire.EncodeFloat32Into(dst, vec)
}

// appendUpdateErr appends a failed MsgUpdate body: id, status, u16
// message length, message.
func appendUpdateErr(dst []byte, reqID uint32, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	dst = binary.LittleEndian.AppendUint32(dst, reqID)
	dst = append(dst, statusFailed)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// updateMsg is a parsed MsgUpdate body.
type updateMsg struct {
	ReqID uint32
	// Err is the remote failure message ("" on success).
	Err string
	// Frame is the wire-encoded update vector on success (aliases the
	// read buffer).
	Frame []byte
}

// parseUpdateMsg parses a MsgUpdate body without panicking.
func parseUpdateMsg(body []byte) (updateMsg, error) {
	var m updateMsg
	if len(body) < updateHeaderLen {
		return m, fmt.Errorf("transport: update body %d bytes, want ≥%d", len(body), updateHeaderLen)
	}
	m.ReqID = binary.LittleEndian.Uint32(body[0:])
	switch body[4] {
	case statusOK:
		m.Frame = body[updateHeaderLen:]
		return m, nil
	case statusFailed:
		rest := body[updateHeaderLen:]
		if len(rest) < 2 {
			return m, fmt.Errorf("transport: truncated failure message")
		}
		n := int(binary.LittleEndian.Uint16(rest))
		if len(rest) < 2+n {
			return m, fmt.Errorf("transport: failure message %d bytes, body has %d", n, len(rest)-2)
		}
		m.Err = string(rest[2 : 2+n])
		if m.Err == "" {
			m.Err = "remote failure (no message)"
		}
		return m, nil
	default:
		return m, fmt.Errorf("transport: unknown update status %d", body[4])
	}
}

// appendHello appends a MsgHello body: version + node name.
func appendHello(dst []byte, name string) []byte {
	if len(name) > math.MaxUint16 {
		name = name[:math.MaxUint16]
	}
	dst = binary.LittleEndian.AppendUint32(dst, ProtoVersion)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	return append(dst, name...)
}

// parseHello parses a MsgHello body.
func parseHello(body []byte) (name string, err error) {
	if len(body) < 6 {
		return "", fmt.Errorf("transport: hello body %d bytes, want ≥6", len(body))
	}
	if v := binary.LittleEndian.Uint32(body); v != ProtoVersion {
		return "", fmt.Errorf("transport: protocol version %d, want %d", v, ProtoVersion)
	}
	n := int(binary.LittleEndian.Uint16(body[4:]))
	if len(body) < 6+n {
		return "", fmt.Errorf("transport: hello name %d bytes, body has %d", n, len(body)-6)
	}
	return string(body[6 : 6+n]), nil
}

// appendWelcome appends a MsgWelcome body: version, assigned client
// range [lo, hi), spec payload.
func appendWelcome(dst []byte, lo, hi int, spec []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, ProtoVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(lo)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(hi)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(spec)))
	return append(dst, spec...)
}

// parseWelcome parses a MsgWelcome body.
func parseWelcome(body []byte) (lo, hi int, spec []byte, err error) {
	if len(body) < 16 {
		return 0, 0, nil, fmt.Errorf("transport: welcome body %d bytes, want ≥16", len(body))
	}
	if v := binary.LittleEndian.Uint32(body); v != ProtoVersion {
		return 0, 0, nil, fmt.Errorf("transport: protocol version %d, want %d", v, ProtoVersion)
	}
	lo = int(int32(binary.LittleEndian.Uint32(body[4:])))
	hi = int(int32(binary.LittleEndian.Uint32(body[8:])))
	n := int(binary.LittleEndian.Uint32(body[12:]))
	if n < 0 || len(body) < 16+n {
		return 0, 0, nil, fmt.Errorf("transport: welcome spec %d bytes, body has %d", n, len(body)-16)
	}
	return lo, hi, body[16 : 16+n], nil
}

package transport

import (
	"sync"

	"fedclust/internal/obs"
)

// nodeMetrics is one node connection's bundle in the process registry,
// labeled node="<name>". Built once at connection setup (registration
// allocates; the registry deduplicates a reconnecting node's series by
// label, so counters survive reconnects as cumulative totals). Every
// update on the request path is gated on obs.Enabled(), keeping the
// disabled cost to one atomic load per site.
type nodeMetrics struct {
	requests  *obs.Counter
	timeouts  *obs.Counter
	errors    *obs.Counter
	upBytes   *obs.Counter
	downBytes *obs.Counter
	rtt       *obs.Histogram
	encode    *obs.Histogram
	decode    *obs.Histogram
}

func newNodeMetrics(node string) *nodeMetrics {
	r := obs.Default()
	l := obs.Label("node", node)
	return &nodeMetrics{
		requests: r.Counter("fedsim_transport_requests_total", l,
			"Train requests sent to a node."),
		timeouts: r.Counter("fedsim_transport_timeouts_total", l,
			"Train requests that missed the per-request deadline."),
		errors: r.Counter("fedsim_transport_errors_total", l,
			"Train requests lost to write errors or a dead connection."),
		upBytes: r.Counter("fedsim_transport_up_bytes_total", l,
			"Measured update bytes received from a node."),
		downBytes: r.Counter("fedsim_transport_down_bytes_total", l,
			"Measured request bytes sent to a node."),
		rtt: r.Histogram("fedsim_transport_rtt_seconds", l,
			"Train request round-trip time (request written to update delivered).", nil),
		encode: r.Histogram("fedsim_transport_encode_seconds", l,
			"Request frame encode time.", nil),
		decode: r.Histogram("fedsim_transport_decode_seconds", l,
			"Update frame decode time.", nil),
	}
}

var (
	joinsOnce sync.Once
	joinsCtr  *obs.Counter
)

// joinsTotal counts node connections accepted over the process lifetime
// (initial joins and rejoins after a coordinator restart alike).
func joinsTotal() *obs.Counter {
	joinsOnce.Do(func() {
		joinsCtr = obs.Default().Counter("fedsim_transport_joins_total", "",
			"Node connections accepted (joins and rejoins).")
	})
	return joinsCtr
}

// Package fl is the federated-learning substrate: clients with local
// datasets, local SGD updates, sample-weighted aggregation, communication
// accounting, a parallel client executor, and the personalized evaluation
// protocol shared by every method in internal/methods and internal/core.
package fl

import (
	"fmt"

	"fedclust/internal/data"
	"fedclust/internal/nn"
	"fedclust/internal/opt"
	"fedclust/internal/rng"
)

// Client is one simulated device: an id plus local train and test splits.
// The test split follows the client's own label distribution (personalized
// evaluation; see partition.MatchingTest).
type Client struct {
	ID    int
	Train *data.Dataset
	Test  *data.Dataset
}

// LocalConfig controls one client's local training pass.
type LocalConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// ProxMu, when positive, adds the FedProx proximal term pulling
	// weights toward the round's starting parameters.
	ProxMu float64
}

// Validate panics on degenerate configuration.
func (c LocalConfig) Validate() {
	if c.Epochs < 1 || c.BatchSize < 1 {
		panic(fmt.Sprintf("fl: invalid local config epochs=%d batch=%d", c.Epochs, c.BatchSize))
	}
	if c.LR <= 0 {
		panic(fmt.Sprintf("fl: invalid learning rate %v", c.LR))
	}
	if c.ProxMu < 0 {
		panic(fmt.Sprintf("fl: negative prox mu %v", c.ProxMu))
	}
}

// LocalUpdate trains model in place on d for cfg.Epochs passes of local
// SGD and returns the mean training loss over all processed batches.
// If cfg.ProxMu > 0 the FedProx proximal term is applied against the
// parameters the model held when LocalUpdate was called (i.e. the global
// weights just loaded). r drives batch shuffling.
func LocalUpdate(model *nn.Sequential, d *data.Dataset, cfg LocalConfig, r *rng.Rng) float64 {
	cfg.Validate()
	if d.Len() == 0 {
		return 0
	}
	var proxRef []float64
	if cfg.ProxMu > 0 {
		proxRef = nn.FlattenParams(model)
	}
	sgd := opt.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	var ce nn.SoftmaxCE
	var totalLoss float64
	batches := 0
	for e := 0; e < cfg.Epochs; e++ {
		for _, b := range d.Batches(cfg.BatchSize, r) {
			model.ZeroGrads()
			logits := model.Forward(b.X, true)
			loss, grad, _ := ce.Loss(logits, b.Y)
			model.Backward(grad)
			if cfg.ProxMu > 0 {
				opt.AddProximal(model.Params(), model.Grads(), proxRef, cfg.ProxMu)
			}
			sgd.Step(model.Params(), model.Grads())
			totalLoss += loss
			batches++
		}
	}
	return totalLoss / float64(batches)
}

// Evaluate computes mean cross-entropy loss and accuracy of model on d
// (evaluation mode, batched to bound memory). Empty datasets return (0, 0).
func Evaluate(model *nn.Sequential, d *data.Dataset, batchSize int) (loss, acc float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	var ce nn.SoftmaxCE
	var lossSum float64
	correct := 0
	for _, b := range d.Batches(batchSize, nil) {
		logits := model.Forward(b.X, false)
		l, _, _ := ce.Loss(logits, b.Y)
		lossSum += l * float64(len(b.Y))
		acc := nn.Accuracy(logits, b.Y)
		correct += int(acc*float64(len(b.Y)) + 0.5)
	}
	return lossSum / float64(d.Len()), float64(correct) / float64(d.Len())
}

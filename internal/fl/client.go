// Package fl is the federated-learning substrate: clients with local
// datasets, local SGD updates, sample-weighted aggregation, communication
// accounting, a parallel client executor, and the personalized evaluation
// protocol shared by every method in internal/methods and internal/core.
package fl

import (
	"fmt"
	"math"

	"fedclust/internal/data"
	"fedclust/internal/nn"
	"fedclust/internal/opt"
	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Client is one simulated device: an id plus local train and test splits.
// The test split follows the client's own label distribution (personalized
// evaluation; see partition.MatchingTest).
type Client struct {
	ID    int
	Train *data.Dataset
	Test  *data.Dataset
}

// LocalConfig controls one client's local training pass.
type LocalConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// ProxMu, when positive, adds the FedProx proximal term pulling
	// weights toward the round's starting parameters.
	ProxMu float64
}

// Validate panics on degenerate configuration.
func (c LocalConfig) Validate() {
	if err := c.Check(); err != nil {
		panic(err.Error())
	}
}

// Check is the error-returning form of Validate — the one place the
// config rules live, shared by in-process training and the transport's
// untrusted-wire-config guard (internal/transport), so the two paths
// can never drift on what a valid config is.
func (c LocalConfig) Check() error {
	if c.Epochs < 1 || c.BatchSize < 1 {
		return fmt.Errorf("fl: invalid local config epochs=%d batch=%d", c.Epochs, c.BatchSize)
	}
	if !(c.LR > 0) || math.IsInf(c.LR, 0) {
		return fmt.Errorf("fl: invalid learning rate %v", c.LR)
	}
	if math.IsNaN(c.Momentum) || math.IsInf(c.Momentum, 0) {
		return fmt.Errorf("fl: invalid momentum %v", c.Momentum)
	}
	if math.IsNaN(c.WeightDecay) || math.IsInf(c.WeightDecay, 0) {
		return fmt.Errorf("fl: invalid weight decay %v", c.WeightDecay)
	}
	if !(c.ProxMu >= 0) || math.IsInf(c.ProxMu, 0) {
		return fmt.Errorf("fl: invalid prox mu %v", c.ProxMu)
	}
	return nil
}

// TrainScratch carries the allocation-heavy state of local training — the
// optimizer (with its velocity buffers), the loss-head workspaces, the
// FedProx reference buffer, and the model's parameter/gradient lists — so
// one worker can run many client visits with zero steady-state heap
// allocations. The zero value is ready to use; a TrainScratch must not be
// shared across concurrent goroutines.
type TrainScratch struct {
	// DType routes LocalUpdate/Evaluate through the float32 compute path
	// when set to Float32; models whose architecture has no float32
	// mirror fall back to float64 transparently.
	DType DType

	sgd     *opt.SGD
	ce      nn.SoftmaxCE
	proxRef []float64
	// model is the network the params/grads caches below belong to;
	// pooled execution hands each worker the same model every visit, so
	// the lists are rebuilt only when the scratch changes models.
	model  *nn.Sequential
	params []*tensor.Tensor
	grads  []*tensor.Tensor

	// Float32-path state (see client32.go): shadow is the float32
	// replica of shadowSrc, rebuilt when the scratch changes models;
	// mirrorFailed remembers an architecture Mirror32 could not handle
	// so every visit doesn't retry.
	shadow       *nn.Sequential32
	shadowSrc    *nn.Sequential
	mirrorFailed bool
	sgd32        *opt.SGD32
	ce32         nn.SoftmaxCE32
	proxRef32    []float32
	flat32       []float32
	// ranF32 records whether the last LocalUpdate on this scratch ran on
	// the float32 path, i.e. whether shadow holds the trained weights
	// (the zero-convert wire fast path keys off this).
	ranF32 bool
}

// bind refreshes the cached parameter and gradient lists for model.
func (ts *TrainScratch) bind(model *nn.Sequential) {
	if ts.model != model {
		ts.model = model
		ts.params = model.Params()
		ts.grads = model.Grads()
	}
}

// LocalUpdate trains model in place on d for cfg.Epochs passes of local
// SGD and returns the mean training loss over all processed batches.
// If cfg.ProxMu > 0 the FedProx proximal term is applied against the
// parameters the model held when LocalUpdate was called (i.e. the global
// weights just loaded). r drives batch shuffling and (via
// nn.Sequential.SeedStep) any stochastic layers, so the result depends
// only on (model weights, dataset, cfg, r) — never on earlier visits
// that reused the same model or scratch.
func (ts *TrainScratch) LocalUpdate(model *nn.Sequential, d *data.Dataset, cfg LocalConfig, r *rng.Rng) float64 {
	cfg.Validate()
	if d.Len() == 0 {
		return 0
	}
	if ts.DType == Float32 {
		if loss, ok := ts.localUpdate32(model, d, cfg, r); ok {
			return loss
		}
	}
	ts.ranF32 = false
	ts.bind(model)
	model.SeedStep(r)
	var proxRef []float64
	if cfg.ProxMu > 0 {
		n := model.NumParams()
		if cap(ts.proxRef) < n {
			ts.proxRef = make([]float64, n)
		}
		proxRef = ts.proxRef[:n]
		nn.FlattenParamsInto(model, proxRef)
	}
	if ts.sgd == nil {
		ts.sgd = opt.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	} else {
		ts.sgd.Reconfigure(cfg.LR, cfg.Momentum, cfg.WeightDecay)
		ts.sgd.Reset()
	}
	var totalLoss float64
	batches := 0
	bt := d.Batcher(cfg.BatchSize)
	for e := 0; e < cfg.Epochs; e++ {
		bt.Reset(r)
		for {
			b, ok := bt.Next()
			if !ok {
				break
			}
			for _, g := range ts.grads {
				g.Zero()
			}
			logits := model.Forward(b.X, true)
			loss, grad, _ := ts.ce.Loss(logits, b.Y)
			model.Backward(grad)
			if cfg.ProxMu > 0 {
				opt.AddProximal(ts.params, ts.grads, proxRef, cfg.ProxMu)
			}
			ts.sgd.Step(ts.params, ts.grads)
			totalLoss += loss
			batches++
		}
	}
	return totalLoss / float64(batches)
}

// Evaluate is EvaluateCE through the scratch's loss head, for hooks that
// interleave evaluation with training on the same worker (e.g. IFCA's
// per-cluster selection) without per-call workspace allocations.
func (ts *TrainScratch) Evaluate(model *nn.Sequential, d *data.Dataset, batchSize int) (loss, acc float64) {
	if ts.DType == Float32 {
		if sh := ts.shadowFor(model); sh != nil {
			// The shadow now holds eval weights, not a trained update.
			ts.ranF32 = false
			nn.AssignParams32(sh, model)
			return EvaluateCE32(sh, d, batchSize, &ts.ce32)
		}
	}
	return EvaluateCE(model, d, batchSize, &ts.ce)
}

// LocalUpdate is the scratch-free convenience form of
// TrainScratch.LocalUpdate, for one-shot callers; hot paths (the round
// engine's DefaultLocal) reuse a per-worker TrainScratch instead.
func LocalUpdate(model *nn.Sequential, d *data.Dataset, cfg LocalConfig, r *rng.Rng) float64 {
	var ts TrainScratch
	return ts.LocalUpdate(model, d, cfg, r)
}

// Evaluate computes mean cross-entropy loss and accuracy of model on d
// (evaluation mode, batched to bound memory). Empty datasets return (0, 0).
func Evaluate(model *nn.Sequential, d *data.Dataset, batchSize int) (loss, acc float64) {
	var ce nn.SoftmaxCE
	return EvaluateCE(model, d, batchSize, &ce)
}

// EvaluateCE is Evaluate with a caller-owned loss head, so evaluation
// loops (the engine's per-worker evaluation protocol) keep their loss
// workspaces warm across clients and allocate nothing per batch.
func EvaluateCE(model *nn.Sequential, d *data.Dataset, batchSize int, ce *nn.SoftmaxCE) (loss, acc float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	var lossSum float64
	correct := 0
	bt := d.Batcher(batchSize)
	bt.Reset(nil)
	for {
		b, ok := bt.Next()
		if !ok {
			break
		}
		logits := model.Forward(b.X, false)
		l, _, _ := ce.Loss(logits, b.Y)
		lossSum += l * float64(len(b.Y))
		acc := nn.Accuracy(logits, b.Y)
		correct += int(acc*float64(len(b.Y)) + 0.5)
	}
	return lossSum / float64(d.Len()), float64(correct) / float64(d.Len())
}

package fl

import (
	"fmt"
	"runtime"

	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/sched"
	"fedclust/internal/wire"
)

// ModelFactory builds a network with a deterministic architecture whose
// initial weights are drawn from the supplied stream. Every call with the
// same stream state yields an identical model, so all methods in a
// comparison start from the same w₀.
type ModelFactory func(r *rng.Rng) *nn.Sequential

// Env is everything a federated method needs to run: the client
// population, the model architecture, round/local-training configuration,
// and deterministic randomness.
type Env struct {
	Clients []*Client
	Factory ModelFactory
	Rounds  int
	Local   LocalConfig
	Seed    uint64
	// EvalEvery controls how often personalized accuracy is recorded
	// (every k rounds; 0 means only after the final round).
	EvalEvery int
	// EvalBatch is the evaluation batch size (default 64 when 0).
	EvalBatch int
	// Workers caps the parallel client executor (default GOMAXPROCS).
	Workers int
	// DType selects the numeric compute path for local training and
	// evaluation (zero value Float64 keeps the golden reference path;
	// Float32 enables the SIMD float32 kernels).
	DType DType
	// Codec selects the uplink parameter codec (zero value Float64 is
	// the exact reference path). Sparse codecs (wire.TopK,
	// wire.TopKQuant8) sparsify full-parameter uplinks with per-client
	// error feedback; the downlink stays dense under Codec.Downlink().
	Codec wire.Codec
	// TopKFrac is the kept-coordinate fraction for sparse codecs
	// (0 means fl.DefaultTopKFrac; ignored by dense codecs).
	TopKFrac float64
	// Participation controls per-round client sampling and failure
	// injection (zero value: full participation, no failures).
	Participation Participation
	// Exec optionally pins this environment to a dedicated executor pool
	// (e.g. one the caller shuts down deterministically with
	// sched.Pool.Shutdown). nil uses the process-wide sched.Default().
	Exec *sched.Pool
	// Remote, when non-nil, routes the local passes of the clients it
	// Owns to remote executors (internal/transport): the round engine
	// ships them work orders instead of training in-process, measures
	// the actual wire traffic into CommStats, and maps transport
	// failures onto the round's reported set. nil keeps every client
	// in-process.
	Remote RemoteTrainer
	// Ckpt, when non-nil, attaches checkpointing: the round engine emits
	// snapshots per its schedule/trigger and resumes from Ckpt.Resume.
	// nil disables the machinery entirely.
	Ckpt *CheckpointPlan
	// Observer, when non-nil, receives live round progress (the control
	// plane's feed). nil costs nothing.
	Observer RoundObserver
	// Aggregator, when non-nil, replaces the plain weighted average at
	// every server-side combine seam (global, per-cluster, and the
	// semi-async cache/buffer folds) with a robust strategy — see
	// Aggregator. nil keeps the bit-exact historical fast path.
	Aggregator Aggregator

	// shared is the lazily created per-Env scratch holder (see
	// EnvShared); behind a pointer so Env stays copyable.
	shared *EnvShared
}

// executor returns the work-sharing pool this environment's parallel
// phases run on.
func (e *Env) executor() *sched.Pool {
	if e.Exec != nil {
		return e.Exec
	}
	return sched.Default()
}

// Validate panics on degenerate environments.
func (e *Env) Validate() {
	if len(e.Clients) == 0 {
		panic("fl: Env has no clients")
	}
	if e.Factory == nil {
		panic("fl: Env has no model factory")
	}
	if e.Rounds < 1 {
		panic(fmt.Sprintf("fl: Rounds must be positive, got %d", e.Rounds))
	}
	if e.TopKFrac < 0 || e.TopKFrac > 1 {
		panic(fmt.Sprintf("fl: TopKFrac must lie in [0,1], got %g", e.TopKFrac))
	}
	e.Local.Validate()
	e.Participation.Validate()
}

// NewModel builds the canonical initial model (same weights every call).
func (e *Env) NewModel() *nn.Sequential {
	return e.Factory(rng.New(e.Seed).Derive(0x10de1))
}

// ClientRng returns the deterministic stream for a client in a round.
func (e *Env) ClientRng(clientID, round int) *rng.Rng {
	r := &rng.Rng{}
	e.ClientRngInto(r, clientID, round)
	return r
}

// ClientRngInto reseeds dst to exactly the stream ClientRng returns,
// without allocating — the engine's hot path keys one persistent Rng per
// worker context.
func (e *Env) ClientRngInto(dst *rng.Rng, clientID, round int) {
	var root rng.Rng
	root.Reseed(e.Seed)
	root.DeriveInto(dst, 0xc11e47, uint64(clientID), uint64(round))
}

// EvalBatchSize returns the effective evaluation batch size.
func (e *Env) EvalBatchSize() int {
	if e.EvalBatch > 0 {
		return e.EvalBatch
	}
	return 64
}

// WorkerCount returns the effective parallelism of the client executor.
func (e *Env) WorkerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelClients runs fn(i) for every client index in [0, n) across the
// environment's executor. fn must be safe to call concurrently for
// distinct indices.
func (e *Env) ParallelClients(n int, fn func(i int)) {
	e.executor().Run(n, e.WorkerCount(), func(_, i int) { fn(i) })
}

// ParallelClientsWorker is ParallelClients with the executing worker's
// stable id passed to fn, so callers can key per-worker scratch state
// (model pools, buffers) without locking: worker w only ever runs on one
// goroutine at a time.
func (e *Env) ParallelClientsWorker(n int, fn func(worker, i int)) {
	e.executor().Run(n, e.WorkerCount(), fn)
}

// ParallelFor runs fn(0..n-1) over up to `workers` concurrent
// participants of the shared executor.
func ParallelFor(n, workers int, fn func(i int)) {
	sched.Default().Run(n, workers, func(_, i int) { fn(i) })
}

// ParallelForWorker runs fn(worker, 0..n-1) over up to `workers`
// concurrent participants of the shared executor. Indices are handed out
// dynamically; the worker id is stable per goroutine for the call and
// lies in [0, min(workers, n)), so per-worker state indexed by it is
// never accessed concurrently.
func ParallelForWorker(n, workers int, fn func(worker, i int)) {
	sched.Default().Run(n, workers, fn)
}

// ShouldEval reports whether metrics should be recorded after round r
// (0-based; the final round always evaluates).
func (e *Env) ShouldEval(r int) bool {
	if r == e.Rounds-1 {
		return true
	}
	return e.EvalEvery > 0 && (r+1)%e.EvalEvery == 0
}

// EvaluateWith evaluates every client's test split on the model chosen by
// pick(worker, clientIdx) and returns per-client accuracies plus the mean
// accuracy and loss. Clients with empty test sets are skipped in the
// means. pick receives the stable worker id so it can serve per-worker
// model instances: nn.Sequential Forward caches activations, so a single
// model instance must never be evaluated from two goroutines at once.
func (e *Env) EvaluateWith(pick func(worker, clientIdx int) *nn.Sequential) (perClient []float64, meanAcc, meanLoss float64) {
	return e.evaluateWith(make([]float64, len(e.Clients)), pick)
}

// EvaluateWithInto is EvaluateWith writing the per-client accuracies
// into dst (grown when too small) instead of a fresh slice, so warm
// evaluation rounds allocate nothing. The returned slice aliases dst's
// backing array and is overwritten by the caller's next Into call;
// callers that retain results must copy them.
func (e *Env) EvaluateWithInto(dst []float64, pick func(worker, clientIdx int) *nn.Sequential) (perClient []float64, meanAcc, meanLoss float64) {
	n := len(e.Clients)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	return e.evaluateWith(dst[:n], pick)
}

// evaluateWith claims the environment's evaluation scratch and runs the
// protocol on it.
func (e *Env) evaluateWith(perClient []float64, pick func(worker, clientIdx int) *nn.Sequential) ([]float64, float64, float64) {
	s, claimed := e.acquireEval()
	defer e.releaseEval(s, claimed)
	return e.evaluateOn(s, perClient, pick)
}

// evaluateOn runs the evaluation protocol over an already-claimed
// scratch: one warm loss head per worker, results gathered into
// perClient/losses columns, means taken over clients with test data in
// client-index order (bit-identical to the historical gather-then-Mean).
func (e *Env) evaluateOn(s *evalScratch, perClient []float64, pick func(worker, clientIdx int) *nn.Sequential) ([]float64, float64, float64) {
	n := len(e.Clients)
	s.ensure(n, e.WorkerCount())
	for i := range perClient {
		perClient[i] = 0
	}
	s.env, s.pick, s.cur = e, pick, perClient
	e.executor().Run(n, e.WorkerCount(), s.task)
	var accSum, lossSum float64
	valid := 0
	for i := range s.valid {
		if s.valid[i] {
			accSum += perClient[i]
			lossSum += s.losses[i]
			valid++
		}
	}
	if valid == 0 {
		return perClient, 0, 0
	}
	return perClient, accSum / float64(valid), lossSum / float64(valid)
}

// EvaluatePersonalized evaluates, for each client, the model selected by
// modelFor (e.g. its cluster's model) on the client's local test split and
// returns per-client accuracies plus the mean accuracy and loss.
// Clients with empty test sets are skipped in the means.
//
// modelFor may return the same model for many clients; evaluation runs on
// per-worker clones (cached on the environment across calls, reloaded
// only when the picked source changes), so the returned models are only
// ever read — layer forward caches would otherwise race across workers.
func (e *Env) EvaluatePersonalized(modelFor func(clientIdx int) *nn.Sequential) (perClient []float64, meanAcc, meanLoss float64) {
	s, claimed := e.acquireEval()
	defer e.releaseEval(s, claimed)
	return e.evaluateOn(s, make([]float64, len(e.Clients)), func(w, i int) *nn.Sequential {
		src := modelFor(i)
		if s.clones[w] == nil {
			s.clones[w] = e.NewModel()
			s.load[w] = make([]float64, s.clones[w].NumParams())
		}
		if src != s.lastSrc[w] {
			nn.FlattenParamsInto(src, s.load[w])
			nn.LoadParams(s.clones[w], s.load[w])
			s.lastSrc[w] = src
		}
		return s.clones[w]
	})
}

// TrainSizes returns each client's training-set size as float weights for
// aggregation.
func (e *Env) TrainSizes() []float64 {
	w := make([]float64, len(e.Clients))
	for i, c := range e.Clients {
		w[i] = float64(c.Train.Len())
	}
	return w
}

package fl

import (
	"fmt"
	"runtime"
	"sync"

	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/stats"
)

// ModelFactory builds a network with a deterministic architecture whose
// initial weights are drawn from the supplied stream. Every call with the
// same stream state yields an identical model, so all methods in a
// comparison start from the same w₀.
type ModelFactory func(r *rng.Rng) *nn.Sequential

// Env is everything a federated method needs to run: the client
// population, the model architecture, round/local-training configuration,
// and deterministic randomness.
type Env struct {
	Clients []*Client
	Factory ModelFactory
	Rounds  int
	Local   LocalConfig
	Seed    uint64
	// EvalEvery controls how often personalized accuracy is recorded
	// (every k rounds; 0 means only after the final round).
	EvalEvery int
	// EvalBatch is the evaluation batch size (default 64 when 0).
	EvalBatch int
	// Workers caps the parallel client executor (default GOMAXPROCS).
	Workers int
	// Participation controls per-round client sampling and failure
	// injection (zero value: full participation, no failures).
	Participation Participation
}

// Validate panics on degenerate environments.
func (e *Env) Validate() {
	if len(e.Clients) == 0 {
		panic("fl: Env has no clients")
	}
	if e.Factory == nil {
		panic("fl: Env has no model factory")
	}
	if e.Rounds < 1 {
		panic(fmt.Sprintf("fl: Rounds must be positive, got %d", e.Rounds))
	}
	e.Local.Validate()
	e.Participation.Validate()
}

// NewModel builds the canonical initial model (same weights every call).
func (e *Env) NewModel() *nn.Sequential {
	return e.Factory(rng.New(e.Seed).Derive(0x10de1))
}

// ClientRng returns the deterministic stream for a client in a round.
func (e *Env) ClientRng(clientID, round int) *rng.Rng {
	return rng.New(e.Seed).Derive(0xc11e47, uint64(clientID), uint64(round))
}

// EvalBatchSize returns the effective evaluation batch size.
func (e *Env) EvalBatchSize() int {
	if e.EvalBatch > 0 {
		return e.EvalBatch
	}
	return 64
}

// WorkerCount returns the effective parallelism of the client executor.
func (e *Env) WorkerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelClients runs fn(i) for every client index in [0, n) across the
// environment's worker pool. fn must be safe to call concurrently for
// distinct indices.
func (e *Env) ParallelClients(n int, fn func(i int)) {
	ParallelFor(n, e.WorkerCount(), fn)
}

// ParallelClientsWorker is ParallelClients with the executing worker's
// stable id passed to fn, so callers can key per-worker scratch state
// (model pools, buffers) without locking: worker w only ever runs on one
// goroutine at a time.
func (e *Env) ParallelClientsWorker(n int, fn func(worker, i int)) {
	ParallelForWorker(n, e.WorkerCount(), fn)
}

// ParallelFor runs fn(0..n-1) over `workers` goroutines.
func ParallelFor(n, workers int, fn func(i int)) {
	ParallelForWorker(n, workers, func(_, i int) { fn(i) })
}

// ParallelForWorker runs fn(worker, 0..n-1) over `workers` goroutines.
// Indices are handed out dynamically; the worker id is stable per
// goroutine and lies in [0, min(workers, n)), so per-worker state indexed
// by it is never accessed concurrently.
func ParallelForWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// ShouldEval reports whether metrics should be recorded after round r
// (0-based; the final round always evaluates).
func (e *Env) ShouldEval(r int) bool {
	if r == e.Rounds-1 {
		return true
	}
	return e.EvalEvery > 0 && (r+1)%e.EvalEvery == 0
}

// EvaluateWith evaluates every client's test split on the model chosen by
// pick(worker, clientIdx) and returns per-client accuracies plus the mean
// accuracy and loss. Clients with empty test sets are skipped in the
// means. pick receives the stable worker id so it can serve per-worker
// model instances: nn.Sequential Forward caches activations, so a single
// model instance must never be evaluated from two goroutines at once.
func (e *Env) EvaluateWith(pick func(worker, clientIdx int) *nn.Sequential) (perClient []float64, meanAcc, meanLoss float64) {
	n := len(e.Clients)
	perClient = make([]float64, n)
	losses := make([]float64, n)
	valid := make([]bool, n)
	// One loss head per worker keeps the softmax/grad workspaces warm
	// across the many clients a worker evaluates.
	ces := make([]nn.SoftmaxCE, e.WorkerCount())
	e.ParallelClientsWorker(n, func(w, i int) {
		c := e.Clients[i]
		if c.Test == nil || c.Test.Len() == 0 {
			return
		}
		l, a := EvaluateCE(pick(w, i), c.Test, e.EvalBatchSize(), &ces[w])
		perClient[i] = a
		losses[i] = l
		valid[i] = true
	})
	var accs, ls []float64
	for i := range valid {
		if valid[i] {
			accs = append(accs, perClient[i])
			ls = append(ls, losses[i])
		}
	}
	if len(accs) == 0 {
		return perClient, 0, 0
	}
	return perClient, stats.Mean(accs), stats.Mean(ls)
}

// EvaluatePersonalized evaluates, for each client, the model selected by
// modelFor (e.g. its cluster's model) on the client's local test split and
// returns per-client accuracies plus the mean accuracy and loss.
// Clients with empty test sets are skipped in the means.
//
// modelFor may return the same model for many clients; evaluation runs on
// per-worker clones, so the returned models are only ever read (layer
// forward caches would otherwise race across workers).
func (e *Env) EvaluatePersonalized(modelFor func(clientIdx int) *nn.Sequential) (perClient []float64, meanAcc, meanLoss float64) {
	workers := e.WorkerCount()
	clones := make([]*nn.Sequential, workers)
	lastSrc := make([]*nn.Sequential, workers)
	scratch := make([][]float64, workers)
	return e.EvaluateWith(func(w, i int) *nn.Sequential {
		src := modelFor(i)
		if clones[w] == nil {
			clones[w] = e.NewModel()
			scratch[w] = make([]float64, clones[w].NumParams())
		}
		if src != lastSrc[w] {
			nn.FlattenParamsInto(src, scratch[w])
			nn.LoadParams(clones[w], scratch[w])
			lastSrc[w] = src
		}
		return clones[w]
	})
}

// TrainSizes returns each client's training-set size as float weights for
// aggregation.
func (e *Env) TrainSizes() []float64 {
	w := make([]float64, len(e.Clients))
	for i, c := range e.Clients {
		w[i] = float64(c.Train.Len())
	}
	return w
}

package fl

// RoundObserver receives live progress from a running round driver — the
// feed behind the coordinator's control plane. Implementations must be
// cheap and non-blocking: calls happen on the driver goroutine between
// phases, never concurrently with each other. A nil Env.Observer costs
// nothing (every call site is nil-guarded), and observers must not mutate
// anything they are handed.
type RoundObserver interface {
	// ObserveRunStart fires once per Trainer.Run, before the first round.
	// startRound > 0 means the run resumed from a checkpoint.
	ObserveRunStart(method string, totalRounds, nClients, startRound int)
	// ObserveRoundStart fires after participation sampling, with the
	// number of clients invited this round.
	ObserveRoundStart(round, invited int)
	// ObserveOutcome fires once per invited client after local passes
	// complete: done is the epoch count actually executed (0 = dropped
	// out), lag the staleness in rounds, failed whether the transport
	// layer lost the update.
	ObserveOutcome(client, done, lag int, failed bool)
	// ObserveRoundEnd fires after aggregation with the number of updates
	// that reached the server and the cumulative traffic ledger.
	ObserveRoundEnd(round, reported int, comm *CommStats)
	// ObserveEval fires when a round records evaluation metrics.
	ObserveEval(round int, meanAcc, meanLoss float64)
	// ObserveCheckpoint fires after a checkpoint is handed to the sink;
	// round is the completed-round count the checkpoint resumes at.
	ObserveCheckpoint(round int)
}

// DefenseObserver is an optional extension of RoundObserver for the
// robust-aggregation layer. The engine type-asserts Env.Observer to it
// after each round's aggregation, so observers that predate the hostile
// pack keep working unchanged.
type DefenseObserver interface {
	// ObserveDefense fires once per round (before ObserveRoundEnd) with
	// the round's defensive tallies: masked is the number of uplinks
	// dropped for non-finite values, suspects the number of inputs the
	// robust aggregator excluded across this round's combines.
	ObserveDefense(round, masked, suspects int)
}

//go:build !race

// Steady-state allocation regression tests: the zero-alloc property of
// the training hot path is a hard acceptance criterion of the workspace
// refactor and must not silently regress. Excluded under -race because
// the race runtime instruments allocations.

package fl

import (
	"testing"

	"fedclust/internal/nn"
	"fedclust/internal/opt"
	"fedclust/internal/rng"
)

// allocModel is small enough that every matmul stays under the tensor
// package's parallel threshold — the parallel path spawns goroutines,
// which allocate, and is exercised only for products where that overhead
// is noise.
func allocModel() *nn.Sequential {
	return nn.MLP(rng.New(3), 64, 20, 4)
}

// TestLocalUpdateBatchStepZeroAllocs asserts a warm LocalUpdate batch
// step — zero grads, forward, loss, backward, SGD step, next batch —
// performs zero heap allocations.
func TestLocalUpdateBatchStepZeroAllocs(t *testing.T) {
	d := benchDataset(8) // 32 examples; batch 8 divides it evenly
	model := allocModel()
	cfg := LocalConfig{Epochs: 1, BatchSize: 8, LR: 0.1, Momentum: 0.9}
	r := rng.New(5)

	// Warm every workspace: model, loss head, optimizer, batcher.
	var ts TrainScratch
	ts.LocalUpdate(model, d, cfg, r)

	params, grads := model.Params(), model.Grads()
	sgd := opt.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	var ce nn.SoftmaxCE
	bt := d.Batcher(cfg.BatchSize)
	bt.Reset(r)
	step := func() {
		b, ok := bt.Next()
		if !ok {
			bt.Reset(r)
			b, _ = bt.Next()
		}
		for _, g := range grads {
			g.Zero()
		}
		logits := model.Forward(b.X, true)
		_, grad, _ := ce.Loss(logits, b.Y)
		model.Backward(grad)
		sgd.Step(params, grads)
	}
	step() // warm this loop's own state (velocity, loss workspaces)

	if n := testing.AllocsPerRun(50, step); n != 0 {
		t.Fatalf("warm LocalUpdate batch step allocates %v times, want 0", n)
	}
}

// TestLocalUpdateCallSteadyStateAllocs asserts a whole warm LocalUpdate
// call through a reused TrainScratch stays allocation-free — the scratch
// owns the optimizer, loss head, and parameter lists, and the dataset
// owns its batcher.
func TestLocalUpdateCallSteadyStateAllocs(t *testing.T) {
	d := benchDataset(10) // includes a partial final batch (40 % 16 != 0)
	model := allocModel()
	cfg := LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	var ts TrainScratch
	r := rng.New(6)
	ts.LocalUpdate(model, d, cfg, r)
	if n := testing.AllocsPerRun(20, func() {
		ts.LocalUpdate(model, d, cfg, r)
	}); n != 0 {
		t.Fatalf("warm LocalUpdate call allocates %v times, want 0", n)
	}
}

// TestLocalUpdate32CallSteadyStateAllocs asserts the whole warm
// float32 LocalUpdate call — mirror reuse, parameter rounding, the full
// float32 epoch loop, widening back — allocates nothing, matching the
// float64 path's zero-alloc contract.
func TestLocalUpdate32CallSteadyStateAllocs(t *testing.T) {
	d := benchDataset(10) // includes a partial final batch (40 % 16 != 0)
	model := allocModel()
	cfg := LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	ts := TrainScratch{DType: Float32}
	r := rng.New(6)
	ts.LocalUpdate(model, d, cfg, r)
	if !ts.ranF32 {
		t.Fatal("float32 scratch did not take the float32 path")
	}
	if n := testing.AllocsPerRun(20, func() {
		ts.LocalUpdate(model, d, cfg, r)
	}); n != 0 {
		t.Fatalf("warm float32 LocalUpdate call allocates %v times, want 0", n)
	}
}

// TestEvaluate32CallSteadyStateAllocs asserts the warm float32
// evaluation call allocates nothing.
func TestEvaluate32CallSteadyStateAllocs(t *testing.T) {
	d := benchDataset(10)
	model := allocModel()
	ts := TrainScratch{DType: Float32}
	ts.Evaluate(model, d, 16)
	if n := testing.AllocsPerRun(20, func() {
		ts.Evaluate(model, d, 16)
	}); n != 0 {
		t.Fatalf("warm float32 Evaluate call allocates %v times, want 0", n)
	}
}

// TestEvaluateBatchZeroAllocs asserts a warm evaluation batch — forward,
// loss, accuracy — performs zero heap allocations.
func TestEvaluateBatchZeroAllocs(t *testing.T) {
	d := benchDataset(8)
	model := allocModel()
	var ce nn.SoftmaxCE
	EvaluateCE(model, d, 16, &ce) // warm model, loss, batcher

	bt := d.Batcher(16)
	bt.Reset(nil)
	step := func() {
		b, ok := bt.Next()
		if !ok {
			bt.Reset(nil)
			b, _ = bt.Next()
		}
		logits := model.Forward(b.X, false)
		ce.Loss(logits, b.Y)
		nn.Accuracy(logits, b.Y)
	}
	step()
	if n := testing.AllocsPerRun(50, step); n != 0 {
		t.Fatalf("warm Evaluate batch allocates %v times, want 0", n)
	}
}

// TestEvaluateCallSteadyStateAllocs asserts the whole warm EvaluateCE
// call allocates nothing.
func TestEvaluateCallSteadyStateAllocs(t *testing.T) {
	d := benchDataset(10)
	model := allocModel()
	var ce nn.SoftmaxCE
	EvaluateCE(model, d, 16, &ce)
	if n := testing.AllocsPerRun(20, func() {
		EvaluateCE(model, d, 16, &ce)
	}); n != 0 {
		t.Fatalf("warm EvaluateCE call allocates %v times, want 0", n)
	}
}

package fl

import (
	"testing"
	"testing/quick"
)

func TestSampleRoundFullParticipationDefault(t *testing.T) {
	env := tinyEnv(5, 1)
	invited, reported := env.SampleRound(0)
	if len(invited) != 5 || len(reported) != 5 {
		t.Fatalf("default participation: %d invited, %d reported", len(invited), len(reported))
	}
	for i := range invited {
		if invited[i] != i || reported[i] != i {
			t.Fatal("full participation should invite everyone in order")
		}
	}
}

func TestSampleRoundFraction(t *testing.T) {
	env := tinyEnv(10, 2)
	env.Participation = Participation{Fraction: 0.3}
	invited, reported := env.SampleRound(0)
	if len(invited) != 3 {
		t.Fatalf("fraction 0.3 of 10 invited %d", len(invited))
	}
	if len(reported) != 3 {
		t.Fatalf("no drops configured but %d reported", len(reported))
	}
	// Deterministic per round, varying across rounds.
	invited2, _ := env.SampleRound(0)
	for i := range invited {
		if invited[i] != invited2[i] {
			t.Fatal("SampleRound not deterministic")
		}
	}
	diff := false
	for r := 1; r < 5; r++ {
		other, _ := env.SampleRound(r)
		for i := range other {
			if other[i] != invited[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("sampling identical across all rounds")
	}
}

func TestSampleRoundDropsButNeverEmpty(t *testing.T) {
	env := tinyEnv(8, 3)
	env.Participation = Participation{DropRate: 0.9}
	for r := 0; r < 50; r++ {
		invited, reported := env.SampleRound(r)
		if len(invited) != 8 {
			t.Fatalf("round %d invited %d", r, len(invited))
		}
		if len(reported) == 0 {
			t.Fatalf("round %d reported nobody", r)
		}
		if len(reported) > len(invited) {
			t.Fatal("reported exceeds invited")
		}
	}
}

func TestSampleRoundReportedSubsetProperty(t *testing.T) {
	f := func(seed uint64, fracRaw, dropRaw uint8) bool {
		env := tinyEnv(9, seed)
		env.Participation = Participation{
			Fraction: float64(fracRaw%100) / 100,
			DropRate: float64(dropRaw%90) / 100,
		}
		invited, reported := env.SampleRound(3)
		inv := map[int]bool{}
		for _, i := range invited {
			if i < 0 || i >= 9 || inv[i] {
				return false // out of range or duplicate
			}
			inv[i] = true
		}
		seen := map[int]bool{}
		for _, i := range reported {
			if !inv[i] || seen[i] {
				return false // reported must be a subset, no duplicates
			}
			seen[i] = true
		}
		return len(reported) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleRoundMinClients(t *testing.T) {
	env := tinyEnv(10, 4)
	env.Participation = Participation{Fraction: 0.01, MinClients: 4}
	invited, _ := env.SampleRound(0)
	if len(invited) != 4 {
		t.Fatalf("MinClients not honored: %d invited", len(invited))
	}
}

func TestParticipationValidate(t *testing.T) {
	for _, p := range []Participation{
		{Fraction: -0.1},
		{Fraction: 1.1},
		{DropRate: 1.0},
		{DropRate: -0.2},
		{MinClients: -1},
	} {
		func(p Participation) {
			defer func() {
				if recover() == nil {
					t.Fatalf("invalid participation %+v did not panic", p)
				}
			}()
			p.Validate()
		}(p)
	}
}

package fl

import (
	"math"
	"testing"

	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// clientCfg is the divergence suite's shared local pass: two epochs of
// momentum SGD, the same shape the golden workloads train.
var clientCfg = LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9}

// TestLocalUpdate32MatchesFloat64Within pins the per-LocalUpdate
// divergence bound: one float32 local pass from the same start must land
// within float32 accumulation distance of the float64 reference — loss
// within 1e-3, every parameter within 5e-3 relative. These bounds have
// ~10× headroom over observed divergence; they catch wrong math, not
// rounding drift.
func TestLocalUpdate32MatchesFloat64Within(t *testing.T) {
	d := benchDataset(40)
	m64 := nn.MLP(rng.New(1), d.Dim(), 20, d.Classes)
	m32 := nn.MLP(rng.New(1), d.Dim(), 20, d.Classes)

	var ts64 TrainScratch
	ts32 := TrainScratch{DType: Float32}
	loss64 := ts64.LocalUpdate(m64, d, clientCfg, rng.New(7))
	loss32 := ts32.LocalUpdate(m32, d, clientCfg, rng.New(7))
	if !ts32.ranF32 {
		t.Fatal("float32 scratch did not take the float32 path")
	}
	if diff := math.Abs(loss64 - loss32); diff > 1e-3 {
		t.Errorf("mean loss diverged by %g: f64 %g vs f32 %g", diff, loss64, loss32)
	}
	p64, p32 := m64.Params(), m32.Params()
	for i := range p64 {
		for j := range p64[i].Data {
			a, b := p64[i].Data[j], p32[i].Data[j]
			scale := math.Abs(a) + math.Abs(b)
			if scale < 1e-2 {
				scale = 1e-2
			}
			if math.Abs(a-b)/scale > 5e-3 {
				t.Fatalf("param %d[%d] diverged: f64 %g vs f32 %g", i, j, a, b)
			}
		}
	}
}

// TestLocalUpdate32Deterministic pins that the float32 pass is a pure
// function of (weights, dataset, cfg, rng): two scratches (one fresh,
// one reused across an unrelated earlier visit) produce bit-identical
// parameters and loss.
func TestLocalUpdate32Deterministic(t *testing.T) {
	d := benchDataset(40)
	run := func(ts *TrainScratch) (float64, []float64) {
		m := nn.MLP(rng.New(1), d.Dim(), 20, d.Classes)
		loss := ts.LocalUpdate(m, d, clientCfg, rng.New(9))
		return loss, nn.FlattenParams(m)
	}
	var fresh TrainScratch
	fresh.DType = Float32
	reused := TrainScratch{DType: Float32}
	// Dirty the reused scratch with a different visit first.
	m := nn.MLP(rng.New(2), d.Dim(), 20, d.Classes)
	reused.LocalUpdate(m, d, clientCfg, rng.New(3))

	lossA, wA := run(&fresh)
	lossB, wB := run(&reused)
	if lossA != lossB {
		t.Fatalf("loss not bit-identical: %x vs %x", math.Float64bits(lossA), math.Float64bits(lossB))
	}
	for i := range wA {
		if wA[i] != wB[i] {
			t.Fatalf("param %d not bit-identical: %x vs %x", i, math.Float64bits(wA[i]), math.Float64bits(wB[i]))
		}
	}
}

// TestEvaluate32MatchesFloat64 pins the evaluation-side divergence
// bound: the float32 eval path must agree with float64 on loss within
// 1e-3 and accuracy within one batch-tie flip.
func TestEvaluate32MatchesFloat64(t *testing.T) {
	d := benchDataset(40)
	model := nn.MLP(rng.New(4), d.Dim(), 20, d.Classes)
	var ts64 TrainScratch
	ts32 := TrainScratch{DType: Float32}
	l64, a64 := ts64.Evaluate(model, d, 64)
	l32, a32 := ts32.Evaluate(model, d, 64)
	if diff := math.Abs(l64 - l32); diff > 1e-3 {
		t.Errorf("eval loss diverged by %g: f64 %g vs f32 %g", diff, l64, l32)
	}
	if diff := math.Abs(a64 - a32); diff > 1.0/float64(d.Len())+1e-12 {
		t.Errorf("eval accuracy diverged by %g: f64 %g vs f32 %g", diff, a64, a32)
	}
}

// TestParams32RoundTrip pins the zero-convert contract end to end at
// the fl layer: after a float32 LocalUpdate, the shadow's flat vector
// must equal float32(model parameter) bit for bit — exactly the bytes a
// Float32 wire frame of the widened model would carry.
func TestParams32RoundTrip(t *testing.T) {
	d := benchDataset(40)
	m := nn.MLP(rng.New(1), d.Dim(), 20, d.Classes)
	ts := TrainScratch{DType: Float32}
	ts.LocalUpdate(m, d, clientCfg, rng.New(5))
	vec, ok := ts.Params32()
	if !ok {
		t.Fatal("Params32 not available after a float32 LocalUpdate")
	}
	flat := nn.FlattenParams(m)
	if len(vec) != len(flat) {
		t.Fatalf("Params32 length %d, model has %d", len(vec), len(flat))
	}
	for i := range flat {
		if want := float32(flat[i]); vec[i] != want {
			t.Fatalf("param %d: shadow %x vs rounded model %x",
				i, math.Float32bits(vec[i]), math.Float32bits(want))
		}
	}
	// A float64 visit (or an eval) invalidates the shadow's claim.
	ts.DType = Float64
	ts.LocalUpdate(m, d, clientCfg, rng.New(6))
	if _, ok := ts.Params32(); ok {
		t.Fatal("Params32 still claimed after a float64 LocalUpdate")
	}
}

// oddLayer is a Layer with no float32 mirror, for the fallback test.
type oddLayer struct{ dim int }

func (o *oddLayer) Name() string                                        { return "odd" }
func (o *oddLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (o *oddLayer) Backward(g *tensor.Tensor) *tensor.Tensor            { return g }
func (o *oddLayer) Params() []*tensor.Tensor                            { return nil }
func (o *oddLayer) Grads() []*tensor.Tensor                             { return nil }
func (o *oddLayer) OutDim() int                                         { return o.dim }

// TestLocalUpdate32FallsBackOnUnmirrorable pins the compatibility
// contract: an architecture Mirror32 cannot handle silently trains on
// the float64 path with results bit-identical to a float64 scratch.
func TestLocalUpdate32FallsBackOnUnmirrorable(t *testing.T) {
	d := benchDataset(40)
	build := func() *nn.Sequential {
		r := rng.New(1)
		return nn.NewSequential(nn.NewDense(d.Dim(), 20, r), &oddLayer{dim: 20}, nn.NewDense(20, d.Classes, r))
	}
	m64, m32 := build(), build()
	var ts64 TrainScratch
	ts32 := TrainScratch{DType: Float32}
	loss64 := ts64.LocalUpdate(m64, d, clientCfg, rng.New(8))
	loss32 := ts32.LocalUpdate(m32, d, clientCfg, rng.New(8))
	if ts32.ranF32 {
		t.Fatal("float32 path claimed an unmirrorable architecture")
	}
	if loss64 != loss32 {
		t.Fatalf("fallback loss differs: %g vs %g", loss64, loss32)
	}
	w64, w32 := nn.FlattenParams(m64), nn.FlattenParams(m32)
	for i := range w64 {
		if w64[i] != w32[i] {
			t.Fatalf("fallback param %d differs", i)
		}
	}
}

package fl

// RoundPhases is one round's wall-clock breakdown, in nanoseconds per
// lifecycle phase. The engine accumulates the slots into a preallocated
// per-round scratch while the round runs and hands the filled struct to
// PhaseObserver.ObservePhases once at round end, so phase timing adds no
// allocations to the hot path. Wall-clock values are observational only —
// nothing in the learning path reads them.
type RoundPhases struct {
	// SampleNS covers participation sampling and scenario plan setup.
	SampleNS int64 `json:"sample_ns"`
	// BroadcastNS covers the model downlink: comm accounting, the
	// Broadcast hook, and remote downlink encode for transported clients.
	BroadcastNS int64 `json:"broadcast_ns"`
	// LocalNS covers the parallel local-training phase (all clients'
	// LocalUpdate work, including remote round-trips overlapped with it).
	LocalNS int64 `json:"local_ns"`
	// CombineNS covers non-finite masking, update folding, uplink
	// accounting, and aggregation into the global model.
	CombineNS int64 `json:"combine_ns"`
	// EvalNS covers served-model evaluation on rounds that evaluate.
	EvalNS int64 `json:"eval_ns"`
	// CheckpointNS covers checkpoint encode + sink on rounds that snapshot.
	CheckpointNS int64 `json:"checkpoint_ns"`
	// TotalNS is the whole round wall time (sample through checkpoint);
	// it can exceed the sum of the named phases by untimed glue.
	TotalNS int64 `json:"total_ns"`
}

// Add accumulates other into p slot-wise (for run-total rollups).
func (p *RoundPhases) Add(other RoundPhases) {
	p.SampleNS += other.SampleNS
	p.BroadcastNS += other.BroadcastNS
	p.LocalNS += other.LocalNS
	p.CombineNS += other.CombineNS
	p.EvalNS += other.EvalNS
	p.CheckpointNS += other.CheckpointNS
	p.TotalNS += other.TotalNS
}

// PhaseObserver is an optional extension of RoundObserver: observers that
// implement it receive each round's phase timing. ObservePhases fires
// once per round, after every other per-round observation (ObserveRoundEnd,
// ObserveEval, ObserveCheckpoint), so an implementation can treat it as
// the round's closing event. The struct is passed by value; the engine
// reuses its scratch immediately after the call returns.
type PhaseObserver interface {
	ObservePhases(round int, phases RoundPhases)
}

// RunEndObserver is an optional extension of RoundObserver: observers
// that implement it learn when the run stops, however it stops.
// completed is the number of completed rounds; aborted is true when the
// run ended before reaching its configured total (context abort, error,
// or panic unwinding through the driver).
type RunEndObserver interface {
	ObserveRunEnd(completed int, aborted bool)
}

// Tee fans observations out to several observers in order. It forwards
// the optional extensions (DefenseObserver, PhaseObserver,
// RunEndObserver) to whichever members implement them, so a control-plane
// tracker and a round journal can share Env.Observer. Nil members are
// skipped; a Tee of zero or one non-nil member is collapsed by MultiObserver.
type Tee struct {
	members []RoundObserver
}

// MultiObserver combines observers into one. Nils are dropped; it
// returns nil for an empty set and the sole member for a singleton, so
// call sites can use it unconditionally without paying Tee dispatch for
// the common single-observer case.
func MultiObserver(obs ...RoundObserver) RoundObserver {
	kept := make([]RoundObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &Tee{members: kept}
}

// ObserveRunStart implements RoundObserver.
func (t *Tee) ObserveRunStart(method string, totalRounds, nClients, startRound int) {
	for _, o := range t.members {
		o.ObserveRunStart(method, totalRounds, nClients, startRound)
	}
}

// ObserveRoundStart implements RoundObserver.
func (t *Tee) ObserveRoundStart(round, invited int) {
	for _, o := range t.members {
		o.ObserveRoundStart(round, invited)
	}
}

// ObserveOutcome implements RoundObserver.
func (t *Tee) ObserveOutcome(client, done, lag int, failed bool) {
	for _, o := range t.members {
		o.ObserveOutcome(client, done, lag, failed)
	}
}

// ObserveRoundEnd implements RoundObserver.
func (t *Tee) ObserveRoundEnd(round, reported int, comm *CommStats) {
	for _, o := range t.members {
		o.ObserveRoundEnd(round, reported, comm)
	}
}

// ObserveEval implements RoundObserver.
func (t *Tee) ObserveEval(round int, meanAcc, meanLoss float64) {
	for _, o := range t.members {
		o.ObserveEval(round, meanAcc, meanLoss)
	}
}

// ObserveCheckpoint implements RoundObserver.
func (t *Tee) ObserveCheckpoint(round int) {
	for _, o := range t.members {
		o.ObserveCheckpoint(round)
	}
}

// ObserveDefense implements DefenseObserver.
func (t *Tee) ObserveDefense(round, masked, suspects int) {
	for _, o := range t.members {
		if d, ok := o.(DefenseObserver); ok {
			d.ObserveDefense(round, masked, suspects)
		}
	}
}

// ObservePhases implements PhaseObserver.
func (t *Tee) ObservePhases(round int, phases RoundPhases) {
	for _, o := range t.members {
		if p, ok := o.(PhaseObserver); ok {
			p.ObservePhases(round, phases)
		}
	}
}

// ObserveRunEnd implements RunEndObserver.
func (t *Tee) ObserveRunEnd(completed int, aborted bool) {
	for _, o := range t.members {
		if r, ok := o.(RunEndObserver); ok {
			r.ObserveRunEnd(completed, aborted)
		}
	}
}

var (
	_ RoundObserver   = (*Tee)(nil)
	_ DefenseObserver = (*Tee)(nil)
	_ PhaseObserver   = (*Tee)(nil)
	_ RunEndObserver  = (*Tee)(nil)
)

package fl

import (
	"fmt"
	"testing"

	"fedclust/internal/rng"
)

// benchGather draws an n-client gather of dim-sized update vectors with
// positive report weights — one server combine's worth of input.
func benchGather(n, dim int) ([][]float64, []float64) {
	r := rng.New(17)
	vecs := make([][]float64, n)
	ws := make([]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		vecs[i] = v
		ws[i] = 0.5 + r.Float64()
	}
	return vecs, ws
}

// BenchmarkAggregate pins the per-round cost of each server strategy at
// the paper's population scale (20 clients) and a stress scale (100),
// over a LeNet-sized parameter vector. Krum is O(n²·dim) in its distance
// matrix — the pinned pair documents the quadratic step so nobody
// mistakes it for a free defense at fleet scale (see BENCH_pr8.json).
func BenchmarkAggregate(b *testing.B) {
	const dim = 25_000
	for _, n := range []int{20, 100} {
		vecs, ws := benchGather(n, dim)
		dst := make([]float64, dim)
		frac := 0.2
		for _, a := range []Aggregator{
			&Mean{}, &TrimmedMean{Frac: frac}, &Median{},
			&Krum{Frac: frac}, &Krum{Frac: frac, M: 3},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", a.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a.Aggregate(dst, vecs, ws)
				}
			})
		}
	}
}

package fl

import "fmt"

// Trainer is one federated-learning method (FedAvg, FedProx, CFL, IFCA,
// PACFL, FedClust). Run executes the full training schedule on the
// environment and reports a Result.
type Trainer interface {
	Name() string
	Run(env *Env) *Result
}

// RoundMetrics is an evaluation snapshot after a given round (1-based).
type RoundMetrics struct {
	Round    int
	MeanAcc  float64
	MeanLoss float64
}

// Result is the outcome of one Trainer run.
type Result struct {
	Method string
	// FinalAcc is the mean personalized test accuracy (fraction in [0,1]).
	FinalAcc float64
	// FinalLoss is the matching mean test loss.
	FinalLoss float64
	// PerClientAcc is each client's personalized test accuracy.
	PerClientAcc []float64
	// History holds periodic evaluation snapshots (always includes the
	// final round).
	History []RoundMetrics
	// Comm is the total simulated traffic.
	Comm CommStats
	// Clusters is the final client→cluster assignment for clustered
	// methods (nil for global-model methods).
	Clusters []int
	// ClusterFormationRound is the 1-based round after which the cluster
	// assignment last changed (0 when clustering is one-shot before
	// round 1, -1 for non-clustered methods).
	ClusterFormationRound int
	// ClusterFormationUpBytes is the uplink volume spent before the
	// clusters stabilized — the paper's "communication cost of cluster
	// formation" comparison.
	ClusterFormationUpBytes int64
}

// String summarizes the result on one line.
func (r *Result) String() string {
	s := fmt.Sprintf("%s: acc %.2f%%, %s", r.Method, 100*r.FinalAcc, r.Comm.String())
	if r.Clusters != nil {
		s += fmt.Sprintf(", clusters formed by round %d", r.ClusterFormationRound)
	}
	return s
}

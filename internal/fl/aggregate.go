package fl

import (
	"fmt"
	"math"
	"unsafe"
)

// WeightedAverage computes the sample-count-weighted average of parameter
// vectors: Σ (wᵢ/Σw)·vecᵢ. It panics on empty input, mismatched lengths,
// or non-positive total weight. This is FedAvg's aggregation rule.
func WeightedAverage(vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 {
		panic("fl: WeightedAverage of nothing")
	}
	return WeightedAverageInto(make([]float64, len(vecs[0])), vecs, weights)
}

// WeightedAverageInto computes the same weighted average as
// WeightedAverage into a caller-provided buffer, allowing round loops to
// reuse one scratch vector instead of allocating per aggregation. dst is
// zeroed first and must not alias any input vector. Returns dst.
func WeightedAverageInto(dst []float64, vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 {
		panic("fl: WeightedAverage of nothing")
	}
	if len(vecs) != len(weights) {
		panic(fmt.Sprintf("fl: %d vectors but %d weights", len(vecs), len(weights)))
	}
	dim := len(vecs[0])
	if len(dst) != dim {
		panic(fmt.Sprintf("fl: aggregation buffer length %d, want %d", len(dst), dim))
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("fl: negative weight %v", w))
		}
		if len(vecs[i]) != dim {
			panic(fmt.Sprintf("fl: vector %d has length %d, want %d", i, len(vecs[i]), dim))
		}
		if dim > 0 && overlaps(dst, vecs[i]) {
			panic(fmt.Sprintf("fl: aggregation buffer aliases input vector %d", i))
		}
		total += w
	}
	if total <= 0 {
		panic("fl: total weight must be positive")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, v := range vecs {
		scale := weights[i] / total
		for j, x := range v {
			dst[j] += scale * x
		}
	}
	return dst
}

// overlaps reports whether two non-empty slices share any backing
// elements. Arena sub-slicing makes partially overlapping views easy to
// construct by accident, so the guard checks ranges, not just heads.
func overlaps(a, b []float64) bool {
	aLo := uintptr(unsafe.Pointer(&a[0]))
	aHi := uintptr(unsafe.Pointer(&a[len(a)-1]))
	bLo := uintptr(unsafe.Pointer(&b[0]))
	bHi := uintptr(unsafe.Pointer(&b[len(b)-1]))
	return aLo <= bHi && bLo <= aHi
}

// UniformAverage averages parameter vectors with equal weight.
func UniformAverage(vecs [][]float64) []float64 {
	w := make([]float64, len(vecs))
	for i := range w {
		w[i] = 1
	}
	return WeightedAverage(vecs, w)
}

// Delta returns after - before elementwise (a client's model update).
func Delta(after, before []float64) []float64 {
	return DeltaInto(make([]float64, len(after)), after, before)
}

// DeltaInto writes after - before into a caller-provided buffer (which may
// alias `after` but not `before`). Returns dst.
func DeltaInto(dst, after, before []float64) []float64 {
	if len(after) != len(before) {
		panic(fmt.Sprintf("fl: Delta length mismatch %d vs %d", len(after), len(before)))
	}
	if len(dst) != len(after) {
		panic(fmt.Sprintf("fl: Delta buffer length %d, want %d", len(dst), len(after)))
	}
	for i := range dst {
		dst[i] = after[i] - before[i]
	}
	return dst
}

// L2Norm returns the Euclidean norm of a vector.
func L2Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

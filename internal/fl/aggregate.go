package fl

import (
	"fmt"
	"math"
)

// WeightedAverage computes the sample-count-weighted average of parameter
// vectors: Σ (wᵢ/Σw)·vecᵢ. It panics on empty input, mismatched lengths,
// or non-positive total weight. This is FedAvg's aggregation rule.
func WeightedAverage(vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 {
		panic("fl: WeightedAverage of nothing")
	}
	if len(vecs) != len(weights) {
		panic(fmt.Sprintf("fl: %d vectors but %d weights", len(vecs), len(weights)))
	}
	dim := len(vecs[0])
	var total float64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("fl: negative weight %v", w))
		}
		if len(vecs[i]) != dim {
			panic(fmt.Sprintf("fl: vector %d has length %d, want %d", i, len(vecs[i]), dim))
		}
		total += w
	}
	if total <= 0 {
		panic("fl: total weight must be positive")
	}
	out := make([]float64, dim)
	for i, v := range vecs {
		scale := weights[i] / total
		for j, x := range v {
			out[j] += scale * x
		}
	}
	return out
}

// UniformAverage averages parameter vectors with equal weight.
func UniformAverage(vecs [][]float64) []float64 {
	w := make([]float64, len(vecs))
	for i := range w {
		w[i] = 1
	}
	return WeightedAverage(vecs, w)
}

// Delta returns after - before elementwise (a client's model update).
func Delta(after, before []float64) []float64 {
	if len(after) != len(before) {
		panic(fmt.Sprintf("fl: Delta length mismatch %d vs %d", len(after), len(before)))
	}
	out := make([]float64, len(after))
	for i := range out {
		out[i] = after[i] - before[i]
	}
	return out
}

// L2Norm returns the Euclidean norm of a vector.
func L2Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

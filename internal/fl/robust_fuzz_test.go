package fl

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzRobustAggregate drives every robust strategy with adversarial
// gathers decoded straight from fuzz bytes — including the NaN and ±Inf
// payloads a byzantine uplink could carry past a buggy mask. The
// invariants: no strategy may panic on contract-valid input, the suspect
// count stays in [0, n], and a repeated call on the same input is
// bit-identical (the determinism clause of the Aggregator contract).
func FuzzRobustAggregate(f *testing.F) {
	seed := func(sel byte, frac float64, n, dim byte, raw []byte) {
		f.Add(sel, frac, n, dim, raw)
	}
	seed(0, 0.2, 5, 3, []byte("benign-looking-gather-bytes....."))
	nan := make([]byte, 8*4)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(nan[8*i:], math.Float64bits(math.NaN()))
	}
	seed(1, 0.3, 4, 1, nan)
	inf := make([]byte, 8*6)
	for i := 0; i < 6; i++ {
		binary.LittleEndian.PutUint64(inf[8*i:], math.Float64bits(math.Inf(1-2*(i%2))))
	}
	seed(2, 0.49, 6, 1, inf)
	seed(3, 0, 9, 2, make([]byte, 9*2*8))
	f.Fuzz(func(t *testing.T, sel byte, frac float64, nb, dimb byte, raw []byte) {
		if math.IsNaN(frac) || frac < 0 || frac >= 0.5 {
			return
		}
		n := 1 + int(nb)%16
		dim := 1 + int(dimb)%8
		aggs := []Aggregator{
			&Mean{}, &TrimmedMean{Frac: frac}, &Median{},
			&Krum{Frac: frac}, &Krum{Frac: frac, M: 1 + int(sel)%4},
		}
		a := aggs[int(sel)%len(aggs)]
		word := func(k int) float64 {
			if 8*k+8 > len(raw) {
				return float64(k) // deterministic fill past the payload
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(raw[8*k:]))
		}
		vecs := make([][]float64, n)
		ws := make([]float64, n)
		for i := 0; i < n; i++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = word(i*dim + j)
			}
			vecs[i] = v
			// Weights must honor the contract (finite, non-negative):
			// the engine computes them, not the attacker.
			w := math.Abs(word(n*dim + i))
			if math.IsNaN(w) || math.IsInf(w, 0) {
				w = 1
			}
			ws[i] = w
		}
		dst := make([]float64, dim)
		s := a.Aggregate(dst, vecs, ws)
		if s < 0 || s > n {
			t.Fatalf("%s: suspects %d out of [0, %d]", a.Name(), s, n)
		}
		again := make([]float64, dim)
		if s2 := a.Aggregate(again, vecs, ws); s2 != s {
			t.Fatalf("%s: suspect count not deterministic (%d vs %d)", a.Name(), s, s2)
		}
		for j := range dst {
			if math.Float64bits(dst[j]) != math.Float64bits(again[j]) {
				t.Fatalf("%s: coord %d not deterministic across calls", a.Name(), j)
			}
		}
	})
}

package fl

import (
	"fedclust/internal/data"
	"fedclust/internal/partition"
	"fedclust/internal/rng"
)

// BuildClients materializes a client population from a train/test dataset
// pair and a training-index assignment. Each client's test split is drawn
// from the global test set so that its label distribution matches its
// training distribution (the personalized evaluation protocol).
func BuildClients(train, test *data.Dataset, assign partition.Assignment, r *rng.Rng) []*Client {
	trainHists := partition.ClientLabelHistograms(assign, train.Y, train.Classes)
	testAssign := partition.MatchingTest(trainHists, test.Y, test.Classes, r)
	clients := make([]*Client, len(assign))
	for i := range assign {
		clients[i] = &Client{
			ID:    i,
			Train: train.Subset(assign[i]),
			Test:  test.Subset(testAssign[i]),
		}
	}
	return clients
}

// BuildDirichletClients is the Table-I workload builder: partition train
// with Dir(alpha) label skew over numClients and give each client a
// matching test split.
func BuildDirichletClients(train, test *data.Dataset, numClients int, alpha float64, r *rng.Rng) []*Client {
	minPer := 2 * train.Classes
	if minPer*numClients > train.Len() {
		minPer = train.Len() / numClients
		if minPer < 1 {
			minPer = 1
		}
	}
	assign := partition.Dirichlet(train.Y, numClients, alpha, minPer, r)
	return BuildClients(train, test, assign, r.Derive(0x7e57))
}

// BuildGroupClients is the Fig-1 workload builder: clients are split into
// label groups (e.g. classes {0..4} vs {5..9}); returns the clients plus
// the ground-truth group of each client.
func BuildGroupClients(train, test *data.Dataset, groups [][]int, clientsPerGroup []int, r *rng.Rng) ([]*Client, []int) {
	assign := partition.LabelGroups(train.Y, groups, clientsPerGroup, r)
	clients := BuildClients(train, test, assign, r.Derive(0x7e57))
	return clients, partition.GroupTruth(clientsPerGroup)
}

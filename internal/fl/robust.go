package fl

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Aggregator is a selectable server-side aggregation strategy — the
// robust layer at the engine's Gather/GatherCluster seam. Aggregate
// folds the reported vectors (with their report weights, which carry the
// scenario's partial-epoch done/E scaling) into dst and returns how many
// inputs the strategy suspected as outliers this call: the vectors it
// deliberately excluded from the combine (per-aggregator semantics are
// documented on each implementation; the engine adds non-finite-masked
// uplinks on top and feeds the sum to the control plane).
//
// Implementations may keep internal scratch and are therefore NOT safe
// for concurrent use — the engine aggregates serially, between parallel
// phases, which is the only place they run. dst must not alias any
// input. Like WeightedAverageInto, Aggregate must be a pure function of
// (vecs, ws): bit-identical results across worker counts and resume
// points are part of the engine's determinism contract.
type Aggregator interface {
	// Name identifies the strategy and its parameters (e.g.
	// "trimmed(0.2)") — checkpoints record it so a resume under a
	// different defense is refused.
	Name() string
	Aggregate(dst []float64, vecs [][]float64, ws []float64) (suspects int)
}

// Mean is the plain weighted average as an Aggregator: exactly
// WeightedAverageInto, suspecting nobody. It exists so "no defense" is
// expressible as a strategy; a nil Env.Aggregator takes the same math
// through the engine's fast path.
type Mean struct{}

// Name implements Aggregator.
func (*Mean) Name() string { return "mean" }

// Aggregate implements Aggregator.
func (*Mean) Aggregate(dst []float64, vecs [][]float64, ws []float64) int {
	WeightedAverageInto(dst, vecs, ws)
	return 0
}

// TrimmedMean is the coordinate-wise trimmed weighted mean: at each
// coordinate the k = ⌊Frac·n⌋ smallest and k largest values are dropped
// and the survivors averaged by their report weights. With k = 0 (fewer
// than 1/Frac inputs, or Frac 0) it delegates to WeightedAverageInto,
// bit-identically — the "equals plain averaging when the byzantine
// fraction is 0" property. Suspects 2k per call: the per-coordinate trim
// breadth (trimmed coordinates need not belong to the same client).
type TrimmedMean struct {
	// Frac is the assumed byzantine fraction: the trim count is
	// ⌊Frac·n⌋ per side, clamped so at least one value survives.
	Frac float64

	perm []int // scratch: value ordering per coordinate
}

// Name implements Aggregator.
func (t *TrimmedMean) Name() string { return fmt.Sprintf("trimmed(%g)", t.Frac) }

// Aggregate implements Aggregator.
func (t *TrimmedMean) Aggregate(dst []float64, vecs [][]float64, ws []float64) int {
	n := len(vecs)
	k := int(t.Frac * float64(n))
	if 2*k >= n {
		k = (n - 1) / 2
	}
	if k <= 0 {
		WeightedAverageInto(dst, vecs, ws)
		return 0
	}
	checkRobustInputs(dst, vecs, ws)
	if cap(t.perm) < n {
		t.perm = make([]int, n)
	}
	perm := t.perm[:n]
	for j := range dst {
		for i := range perm {
			perm[i] = i
		}
		sortByCoord(perm, vecs, j)
		var sum, total float64
		for _, i := range perm[k : n-k] {
			sum += ws[i] * vecs[i][j]
			total += ws[i]
		}
		if total > 0 {
			dst[j] = sum / total
		} else {
			// Every surviving weight is zero (all-straggler trims):
			// fall back to the unweighted mean of the survivors.
			for _, i := range perm[k : n-k] {
				sum += vecs[i][j]
			}
			dst[j] = sum / float64(n-2*k)
		}
	}
	return 2 * k
}

// Median is the coordinate-wise weighted median: at each coordinate the
// value where the cumulative report weight first reaches half the total,
// scanning values ascending (ties broken by input index). A median is an
// order statistic, so a single arbitrarily corrupted coordinate cannot
// move it past the honest majority's values. Suspects 0: nothing is
// explicitly excluded — outvoted coordinates simply do not surface.
type Median struct {
	perm []int // scratch: value ordering per coordinate
}

// Name implements Aggregator.
func (*Median) Name() string { return "median" }

// Aggregate implements Aggregator.
func (m *Median) Aggregate(dst []float64, vecs [][]float64, ws []float64) int {
	n := len(vecs)
	checkRobustInputs(dst, vecs, ws)
	var total float64
	allZero := true
	for _, w := range ws {
		total += w
		if w > 0 {
			allZero = false
		}
	}
	if cap(m.perm) < n {
		m.perm = make([]int, n)
	}
	perm := m.perm[:n]
	for j := range dst {
		for i := range perm {
			perm[i] = i
		}
		sortByCoord(perm, vecs, j)
		half := total / 2
		if allZero {
			// Degenerate all-zero weights: unweighted median.
			dst[j] = vecs[perm[(n-1)/2]][j]
			continue
		}
		var cum float64
		dst[j] = vecs[perm[n-1]][j]
		for _, i := range perm {
			cum += ws[i]
			if cum >= half {
				dst[j] = vecs[i][j]
				break
			}
		}
	}
	return 0
}

// Krum implements Krum / multi-Krum (Blanchard et al. 2017): each input
// is scored by the sum of its squared distances to its n−f−2 nearest
// peers (f = ⌊Frac·n⌋ assumed byzantine), and the M lowest-scored inputs
// (ties broken by index) are selected; dst is their report-weighted
// average (M = 1: a copy of the single selected vector, classic Krum).
// M < 1 selects adaptively: m = n − f, i.e. drop exactly the f most
// outlying updates and average the rest — the multi-Krum setting that
// preserves benign accuracy under non-IID clients, where classic Krum's
// single-winner choice discards every other client's contribution. Krum
// needs n ≥ 3 and n − f − 2 ≥ 1 to score anything; smaller gathers (tiny
// clusters) fall back to the plain weighted mean, deterministically.
// Suspects n − selected. O(n²·dim) — see the pinned benchmark.
type Krum struct {
	// Frac is the assumed byzantine fraction; M the multi-Krum selection
	// size (< 1: adaptive n − f).
	Frac float64
	M    int

	dists  []float64 // scratch: n×n squared-distance matrix
	scores []float64
	order  []int
	selVec [][]float64
	selWs  []float64
}

// Name implements Aggregator.
func (k *Krum) Name() string {
	if k.M < 1 {
		return fmt.Sprintf("krum(%g,n-f)", k.Frac)
	}
	return fmt.Sprintf("krum(%g,%d)", k.Frac, k.M)
}

// Aggregate implements Aggregator.
func (k *Krum) Aggregate(dst []float64, vecs [][]float64, ws []float64) int {
	n := len(vecs)
	checkRobustInputs(dst, vecs, ws)
	f := int(k.Frac * float64(n))
	if f < 0 {
		f = 0
	}
	closest := n - f - 2
	if n < 3 || closest < 1 {
		WeightedAverageInto(dst, vecs, ws)
		return 0
	}
	m := k.M
	if m < 1 {
		m = n - f // adaptive: drop the f most outlying, average the rest
	}
	if m > n {
		m = n
	}
	if cap(k.dists) < n*n {
		k.dists = make([]float64, n*n)
		k.scores = make([]float64, n)
		k.order = make([]int, n)
	}
	dists, scores, order := k.dists[:n*n], k.scores[:n], k.order[:n]
	for a := 0; a < n; a++ {
		dists[a*n+a] = 0
		for b := a + 1; b < n; b++ {
			var s float64
			va, vb := vecs[a], vecs[b]
			for j := range va {
				d := va[j] - vb[j]
				s += d * d
			}
			dists[a*n+b], dists[b*n+a] = s, s
		}
	}
	for a := 0; a < n; a++ {
		// Score = sum of the `closest` smallest distances to peers.
		row := order[:0]
		for b := 0; b < n; b++ {
			if b != a {
				row = append(row, b)
			}
		}
		sortByKey(row, dists[a*n:a*n+n])
		var s float64
		for _, b := range row[:closest] {
			s += dists[a*n+b]
		}
		scores[a] = s
	}
	for i := range order {
		order[i] = i
	}
	sortByKey(order, scores)
	if m == 1 {
		copy(dst, vecs[order[0]])
		return n - 1
	}
	k.selVec = k.selVec[:0]
	k.selWs = k.selWs[:0]
	// Weighted-average the selected set in input order (not score
	// order), so the accumulation sequence is a function of membership
	// alone.
	sel := order[:m]
	sort.Ints(sel)
	for _, i := range sel {
		k.selVec = append(k.selVec, vecs[i])
		k.selWs = append(k.selWs, ws[i])
	}
	WeightedAverageInto(dst, k.selVec, k.selWs)
	return n - m
}

// sortByCoord orders perm ascending by (vecs[i][j], i). Insertion sort:
// a gather holds one entry per reporting client — small — and this runs
// once per coordinate per combine, so the sort.Slice closure allocations
// it replaces would dominate the round's allocation budget. The index
// tie-break makes the order total, hence deterministic under duplicates.
func sortByCoord(perm []int, vecs [][]float64, j int) {
	for a := 1; a < len(perm); a++ {
		x := perm[a]
		vx := vecs[x][j]
		b := a - 1
		for b >= 0 {
			y := perm[b]
			if vy := vecs[y][j]; vy < vx || (vy == vx && y < x) {
				break
			}
			perm[b+1] = y
			b--
		}
		perm[b+1] = x
	}
}

// sortByKey orders idx ascending by (key[i], i), allocation-free like
// sortByCoord.
func sortByKey(idx []int, key []float64) {
	for a := 1; a < len(idx); a++ {
		x := idx[a]
		kx := key[x]
		b := a - 1
		for b >= 0 {
			y := idx[b]
			if ky := key[y]; ky < kx || (ky == kx && y < x) {
				break
			}
			idx[b+1] = y
			b--
		}
		idx[b+1] = x
	}
}

// checkRobustInputs enforces the shared WeightedAverageInto contract for
// the robust strategies: non-empty input, consistent lengths, dst free
// of aliasing, non-negative weights.
func checkRobustInputs(dst []float64, vecs [][]float64, ws []float64) {
	if len(vecs) == 0 {
		panic("fl: robust aggregation of nothing")
	}
	if len(vecs) != len(ws) {
		panic(fmt.Sprintf("fl: %d vectors but %d weights", len(vecs), len(ws)))
	}
	dim := len(vecs[0])
	if len(dst) != dim {
		panic(fmt.Sprintf("fl: aggregation buffer length %d, want %d", len(dst), dim))
	}
	for i, w := range ws {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("fl: invalid weight %v", w))
		}
		if len(vecs[i]) != dim {
			panic(fmt.Sprintf("fl: vector %d has length %d, want %d", i, len(vecs[i]), dim))
		}
		if dim > 0 && overlaps(dst, vecs[i]) {
			panic(fmt.Sprintf("fl: aggregation buffer aliases input vector %d", i))
		}
	}
}

// AggregatorNames lists the selectable strategies in flag order. "krum"
// is the classic single-winner rule; "multi-krum" the adaptive n−f
// selection (the accuracy-preserving default in the hostile sweep).
var AggregatorNames = []string{"mean", "trimmed", "median", "krum", "multi-krum"}

// NewAggregator builds a strategy by flag name. frac is the assumed
// byzantine fraction for the strategies that take one (trimmed, krum);
// mean and median ignore it. "mean" (and "") returns nil — the engine's
// fast path — so round-tripping a benign config through the flag layer
// costs nothing.
func NewAggregator(name string, frac float64) (Aggregator, error) {
	if math.IsNaN(frac) || frac < 0 || frac >= 0.5 {
		return nil, fmt.Errorf("fl: aggregator byzantine fraction %v out of [0, 0.5)", frac)
	}
	switch strings.ToLower(name) {
	case "", "mean", "fedavg":
		return nil, nil
	case "trimmed", "trimmed-mean":
		return &TrimmedMean{Frac: frac}, nil
	case "median", "coordinate-median":
		return &Median{}, nil
	case "krum":
		return &Krum{Frac: frac, M: 1}, nil
	case "multi-krum", "multikrum":
		return &Krum{Frac: frac}, nil
	default:
		return nil, fmt.Errorf("fl: unknown aggregator %q (want %s)", name, strings.Join(AggregatorNames, ", "))
	}
}

// AggregatorName returns the checkpoint-identity name of a strategy
// (nil → "mean").
func AggregatorName(a Aggregator) string {
	if a == nil {
		return "mean"
	}
	return a.Name()
}

package fl

import "fmt"

// DType selects the numeric compute path for local training and
// evaluation. Float64 is the golden reference path; Float32 routes
// LocalUpdate and the evaluation protocol through the SIMD-friendly
// float32 kernels (internal/tensor's *32 family) while keeping master
// weights and aggregation in float64 — see DESIGN.md §10.
type DType uint8

const (
	// Float64 is the default full-precision path.
	Float64 DType = iota
	// Float32 trains on a float32 shadow of the model: parameters are
	// rounded once per visit, the whole local pass runs in float32, and
	// the result is widened back (widening is exact, so the float32
	// weights survive the float64 round-trip bit-identically).
	Float32
)

// String returns the canonical lowercase name used by the -dtype flag
// and the transport spec.
func (d DType) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("DType(%d)", uint8(d))
	}
}

// ParseDType parses the canonical names ("float64", "float32"; "" means
// Float64 so zero-valued specs keep the golden path).
func ParseDType(s string) (DType, error) {
	switch s {
	case "", "float64", "f64":
		return Float64, nil
	case "float32", "f32":
		return Float32, nil
	default:
		return Float64, fmt.Errorf("fl: unknown dtype %q (want float64 or float32)", s)
	}
}

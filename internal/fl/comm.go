package fl

import (
	"fmt"

	"fedclust/internal/wire"
)

// CommStats accumulates simulated communication volume. Uplink is
// client→server, downlink server→client.
type CommStats struct {
	UpBytes   int64
	DownBytes int64
	// Pricing converts the scalar-count estimates below into framed
	// transport bytes under the environment's codec selection, so an
	// in-process run reports exactly what a loopback run measures. The
	// zero value prices dense Float64 frames.
	Pricing CommPricing
	// PerRound records (up, down) per completed round for plots.
	PerRound []RoundComm
	// MeasuredUp/MeasuredDown are the subset of the totals that came from
	// actual framed transport traffic (UploadBytes/DownloadBytes) rather
	// than scalar-count estimates — the control plane reports both so a
	// networked run can show measured vs. estimated volume side by side.
	MeasuredUp   int64
	MeasuredDown int64
	// snapUp/snapDown are the totals already snapshotted into PerRound,
	// so EndRound is O(1) instead of re-summing the whole history each
	// round.
	snapUp, snapDown int64
}

// RoundComm is one round's traffic.
type RoundComm struct {
	Round     int
	UpBytes   int64
	DownBytes int64
}

// Upload records nClients uplinks of an nParams-vector, priced as the
// framed transport messages they would occupy under Pricing (codec
// payload + metadata + envelope — not a flat 8 bytes/param).
func (c *CommStats) Upload(nClients, nParams int) {
	c.UpBytes += int64(nClients) * c.Pricing.UploadBytesFor(nParams)
}

// UploadDense records nClients uplinks of a dense nParams-vector under
// an explicit codec, bypassing any sparse uplink pricing — for partial
// exchanges (e.g. FedClust's final-layer warmup) that always travel
// dense even when the full-parameter uplink is sparsified.
func (c *CommStats) UploadDense(nClients, nParams int, codec wire.Codec) {
	c.UpBytes += int64(nClients) * TrainResponseBytes(codec, nParams)
}

// Download records nClients downlinks of an nParams-vector, priced like
// Upload but under the broadcast codec.
func (c *CommStats) Download(nClients, nParams int) {
	c.DownBytes += int64(nClients) * c.Pricing.DownloadBytesFor(nParams)
}

// UploadBytes records b measured client→server bytes — actual framed
// traffic reported by an attached transport. The scalar-count estimates
// above remain the accounting for purely in-process clients.
func (c *CommStats) UploadBytes(b int64) { c.UpBytes += b; c.MeasuredUp += b }

// DownloadBytes records b measured server→client bytes.
func (c *CommStats) DownloadBytes(b int64) { c.DownBytes += b; c.MeasuredDown += b }

// EndRound snapshots the traffic delta since the previous EndRound call.
func (c *CommStats) EndRound(round int) {
	c.PerRound = append(c.PerRound, RoundComm{
		Round:     round,
		UpBytes:   c.UpBytes - c.snapUp,
		DownBytes: c.DownBytes - c.snapDown,
	})
	c.snapUp, c.snapDown = c.UpBytes, c.DownBytes
}

// Total returns up+down bytes.
func (c *CommStats) Total() int64 { return c.UpBytes + c.DownBytes }

// String formats the totals human-readably.
func (c *CommStats) String() string {
	return fmt.Sprintf("up %s, down %s", FormatBytes(c.UpBytes), FormatBytes(c.DownBytes))
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

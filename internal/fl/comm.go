package fl

import "fmt"

// BytesPerParam is the on-the-wire size of one model scalar (float64).
// The paper's communication-cost claims are about relative volumes, so the
// exact width only scales every method identically.
const BytesPerParam = 8

// CommStats accumulates simulated communication volume. Uplink is
// client→server, downlink server→client.
type CommStats struct {
	UpBytes   int64
	DownBytes int64
	// PerRound records (up, down) per completed round for plots.
	PerRound []RoundComm
	// MeasuredUp/MeasuredDown are the subset of the totals that came from
	// actual framed transport traffic (UploadBytes/DownloadBytes) rather
	// than scalar-count estimates — the control plane reports both so a
	// networked run can show measured vs. estimated volume side by side.
	MeasuredUp   int64
	MeasuredDown int64
	// snapUp/snapDown are the totals already snapshotted into PerRound,
	// so EndRound is O(1) instead of re-summing the whole history each
	// round.
	snapUp, snapDown int64
}

// RoundComm is one round's traffic.
type RoundComm struct {
	Round     int
	UpBytes   int64
	DownBytes int64
}

// Upload records nParams scalars uploaded by nClients clients.
func (c *CommStats) Upload(nClients, nParams int) {
	c.UpBytes += int64(nClients) * int64(nParams) * BytesPerParam
}

// Download records nParams scalars downloaded by nClients clients.
func (c *CommStats) Download(nClients, nParams int) {
	c.DownBytes += int64(nClients) * int64(nParams) * BytesPerParam
}

// UploadBytes records b measured client→server bytes — actual framed
// traffic reported by an attached transport. The scalar-count estimates
// above remain the accounting for purely in-process clients.
func (c *CommStats) UploadBytes(b int64) { c.UpBytes += b; c.MeasuredUp += b }

// DownloadBytes records b measured server→client bytes.
func (c *CommStats) DownloadBytes(b int64) { c.DownBytes += b; c.MeasuredDown += b }

// EndRound snapshots the traffic delta since the previous EndRound call.
func (c *CommStats) EndRound(round int) {
	c.PerRound = append(c.PerRound, RoundComm{
		Round:     round,
		UpBytes:   c.UpBytes - c.snapUp,
		DownBytes: c.DownBytes - c.snapDown,
	})
	c.snapUp, c.snapDown = c.UpBytes, c.DownBytes
}

// Total returns up+down bytes.
func (c *CommStats) Total() int64 { return c.UpBytes + c.DownBytes }

// String formats the totals human-readably.
func (c *CommStats) String() string {
	return fmt.Sprintf("up %s, down %s", FormatBytes(c.UpBytes), FormatBytes(c.DownBytes))
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

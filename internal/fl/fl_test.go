package fl

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"fedclust/internal/data"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/tensor"
	"fedclust/internal/wire"
)

// tinyDataset builds a linearly separable 2-class dataset.
func tinyDataset(n int, r *rng.Rng) *data.Dataset {
	d := &data.Dataset{
		Name: "tiny", X: tensor.New(n, 2), Y: make([]int, n),
		Classes: 2, C: 1, H: 1, W: 2,
	}
	for i := 0; i < n; i++ {
		c := i % 2
		d.Y[i] = c
		d.X.Set(float64(2*c-1)*2+0.3*r.NormFloat64(), i, 0)
		d.X.Set(0.3*r.NormFloat64(), i, 1)
	}
	return d
}

func tinyFactory(r *rng.Rng) *nn.Sequential { return nn.MLP(r, 2, 8, 2) }

func tinyEnv(nClients int, seed uint64) *Env {
	r := rng.New(seed)
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i] = &Client{
			ID:    i,
			Train: tinyDataset(40, r.Derive(uint64(i), 1)),
			Test:  tinyDataset(20, r.Derive(uint64(i), 2)),
		}
	}
	return &Env{
		Clients: clients,
		Factory: tinyFactory,
		Rounds:  3,
		Local:   LocalConfig{Epochs: 1, BatchSize: 10, LR: 0.1},
		Seed:    seed,
	}
}

func TestLocalUpdateReducesLoss(t *testing.T) {
	r := rng.New(1)
	d := tinyDataset(60, r)
	model := tinyFactory(rng.New(2))
	before, _ := Evaluate(model, d, 32)
	cfg := LocalConfig{Epochs: 20, BatchSize: 10, LR: 0.2}
	LocalUpdate(model, d, cfg, r)
	after, acc := Evaluate(model, d, 32)
	if after >= before {
		t.Fatalf("loss did not decrease: %v → %v", before, after)
	}
	if acc < 0.9 {
		t.Fatalf("accuracy after training = %v", acc)
	}
}

func TestLocalUpdateProxStaysCloser(t *testing.T) {
	// With a large proximal term the local model must end closer to the
	// starting point than without it.
	run := func(mu float64) float64 {
		model := tinyFactory(rng.New(3))
		start := nn.FlattenParams(model)
		cfg := LocalConfig{Epochs: 10, BatchSize: 10, LR: 0.2, ProxMu: mu}
		LocalUpdate(model, tinyDataset(60, rng.New(4)), cfg, rng.New(5))
		return L2Norm(Delta(nn.FlattenParams(model), start))
	}
	free, prox := run(0), run(5.0)
	if prox >= free {
		t.Fatalf("prox drift %v should be below unconstrained drift %v", prox, free)
	}
}

func TestLocalUpdateEmptyDataset(t *testing.T) {
	model := tinyFactory(rng.New(6))
	empty := &data.Dataset{Name: "e", X: tensor.New(0, 2), Y: nil, Classes: 2, C: 1, H: 1, W: 2}
	if loss := LocalUpdate(model, empty, LocalConfig{Epochs: 1, BatchSize: 4, LR: 0.1}, rng.New(7)); loss != 0 {
		t.Fatalf("empty dataset loss = %v", loss)
	}
}

func TestLocalUpdateDeterministic(t *testing.T) {
	d := tinyDataset(40, rng.New(8))
	run := func() []float64 {
		m := tinyFactory(rng.New(9))
		LocalUpdate(m, d, LocalConfig{Epochs: 2, BatchSize: 8, LR: 0.1}, rng.New(10))
		return nn.FlattenParams(m)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("LocalUpdate not deterministic under fixed seeds")
		}
	}
}

func TestWeightedAverage(t *testing.T) {
	vecs := [][]float64{{1, 0}, {3, 4}}
	got := WeightedAverage(vecs, []float64{1, 3})
	if math.Abs(got[0]-2.5) > 1e-12 || math.Abs(got[1]-3) > 1e-12 {
		t.Fatalf("WeightedAverage = %v", got)
	}
}

func TestWeightedAverageWeightsNormalizeProperty(t *testing.T) {
	// Scaling all weights by a constant must not change the result.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, dim := 1+r.Intn(5), 1+r.Intn(6)
		vecs := make([][]float64, n)
		w := make([]float64, n)
		w2 := make([]float64, n)
		for i := range vecs {
			vecs[i] = make([]float64, dim)
			for j := range vecs[i] {
				vecs[i][j] = r.NormFloat64()
			}
			w[i] = 0.1 + r.Float64()
			w2[i] = w[i] * 7.3
		}
		a := WeightedAverage(vecs, w)
		b := WeightedAverage(vecs, w2)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedAverageIsConvex(t *testing.T) {
	// The average must lie inside the coordinate-wise min/max envelope.
	vecs := [][]float64{{0, 10}, {4, 20}, {2, 12}}
	got := WeightedAverage(vecs, []float64{1, 2, 3})
	if got[0] < 0 || got[0] > 4 || got[1] < 10 || got[1] > 20 {
		t.Fatalf("average escaped convex hull: %v", got)
	}
}

func TestWeightedAveragePanics(t *testing.T) {
	for _, f := range []func(){
		func() { WeightedAverage(nil, nil) },
		func() { WeightedAverage([][]float64{{1}}, []float64{1, 2}) },
		func() { WeightedAverage([][]float64{{1}, {1, 2}}, []float64{1, 1}) },
		func() { WeightedAverage([][]float64{{1}}, []float64{0}) },
		func() { WeightedAverage([][]float64{{1}}, []float64{-1}) },
	} {
		func(f func()) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid WeightedAverage input did not panic")
				}
			}()
			f()
		}(f)
	}
}

func TestUniformAverageAndDelta(t *testing.T) {
	got := UniformAverage([][]float64{{2, 0}, {4, 6}})
	if got[0] != 3 || got[1] != 3 {
		t.Fatalf("UniformAverage = %v", got)
	}
	d := Delta([]float64{5, 1}, []float64{2, 3})
	if d[0] != 3 || d[1] != -2 {
		t.Fatalf("Delta = %v", d)
	}
	if n := L2Norm([]float64{3, 4}); n != 5 {
		t.Fatalf("L2Norm = %v", n)
	}
}

func TestCommStats(t *testing.T) {
	var c CommStats // zero pricing: dense Float64 frames both ways
	c.Upload(10, 100)
	c.Download(5, 100)
	wantUp := 10 * TrainResponseBytes(wire.Float64, 100)
	wantDown := 5 * TrainRequestBytes(wire.Float64, 100)
	if c.UpBytes != wantUp || c.DownBytes != wantDown || c.Total() != wantUp+wantDown {
		t.Fatalf("comm = %+v, want up %d down %d", c, wantUp, wantDown)
	}
	c.EndRound(1)
	c.Upload(1, 100)
	c.EndRound(2)
	if len(c.PerRound) != 2 || c.PerRound[0].UpBytes != wantUp || c.PerRound[1].UpBytes != wantUp/10 {
		t.Fatalf("per-round = %+v", c.PerRound)
	}
	if c.PerRound[1].DownBytes != 0 {
		t.Fatal("round 2 downlink should be 0")
	}
}

func TestFormatBytes(t *testing.T) {
	if FormatBytes(512) != "512 B" {
		t.Fatalf("FormatBytes(512) = %q", FormatBytes(512))
	}
	if FormatBytes(2048) != "2.0 KiB" {
		t.Fatalf("FormatBytes(2048) = %q", FormatBytes(2048))
	}
	if FormatBytes(3*1024*1024) != "3.0 MiB" {
		t.Fatalf("FormatBytes(3MiB) = %q", FormatBytes(3*1024*1024))
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var count int64
		seen := make([]int64, 100)
		ParallelFor(100, workers, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt64(&seen[i], 1)
		})
		if count != 100 {
			t.Fatalf("workers=%d ran %d tasks", workers, count)
		}
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("index %d ran %d times", i, s)
			}
		}
	}
	ParallelFor(0, 4, func(i int) { t.Fatal("should not run") })
}

func TestEnvNewModelDeterministic(t *testing.T) {
	env := tinyEnv(3, 42)
	a := nn.FlattenParams(env.NewModel())
	b := nn.FlattenParams(env.NewModel())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("NewModel must return identical weights every call")
		}
	}
}

func TestEnvClientRngStreamsDiffer(t *testing.T) {
	env := tinyEnv(3, 42)
	a := env.ClientRng(0, 0).Uint64()
	b := env.ClientRng(1, 0).Uint64()
	c := env.ClientRng(0, 1).Uint64()
	if a == b || a == c {
		t.Fatal("client rng streams collide")
	}
	if env.ClientRng(0, 0).Uint64() != a {
		t.Fatal("client rng not deterministic")
	}
}

func TestShouldEval(t *testing.T) {
	env := tinyEnv(2, 1)
	env.Rounds = 10
	env.EvalEvery = 3
	wantTrue := map[int]bool{2: true, 5: true, 8: true, 9: true}
	for r := 0; r < 10; r++ {
		if got := env.ShouldEval(r); got != wantTrue[r] {
			t.Fatalf("ShouldEval(%d) = %v", r, got)
		}
	}
	env.EvalEvery = 0
	for r := 0; r < 9; r++ {
		if env.ShouldEval(r) {
			t.Fatalf("EvalEvery=0 should only eval final round, got round %d", r)
		}
	}
	if !env.ShouldEval(9) {
		t.Fatal("final round must always evaluate")
	}
}

func TestEvaluatePersonalized(t *testing.T) {
	env := tinyEnv(4, 7)
	// Train one good model and serve it to everyone.
	model := env.NewModel()
	merged := data.Merge(env.Clients[0].Train, env.Clients[1].Train)
	LocalUpdate(model, merged, LocalConfig{Epochs: 30, BatchSize: 16, LR: 0.2}, rng.New(8))
	per, mean, loss := env.EvaluatePersonalized(func(int) *nn.Sequential { return model })
	if len(per) != 4 {
		t.Fatalf("per-client length = %d", len(per))
	}
	if mean < 0.9 {
		t.Fatalf("personalized accuracy = %v on separable data", mean)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
}

func TestBuildDirichletClients(t *testing.T) {
	cfg := data.SynthFMNIST(3)
	cfg.TrainPerClass, cfg.TestPerClass = 30, 10
	train, test := data.Generate(cfg)
	clients := BuildDirichletClients(train, test, 8, 0.1, rng.New(4))
	if len(clients) != 8 {
		t.Fatalf("clients = %d", len(clients))
	}
	totalTrain := 0
	for _, c := range clients {
		totalTrain += c.Train.Len()
		if c.Train.Len() == 0 {
			t.Fatal("client with empty train set")
		}
		// Test distribution must be supported on train classes only.
		trainH := c.Train.LabelHistogram()
		for k, cnt := range c.Test.LabelHistogram() {
			if cnt > 0 && trainH[k] == 0 {
				t.Fatalf("client %d tests on class %d it never trains on", c.ID, k)
			}
		}
	}
	if totalTrain != train.Len() {
		t.Fatalf("train examples lost: %d of %d", totalTrain, train.Len())
	}
}

func TestBuildGroupClients(t *testing.T) {
	cfg := data.SynthFMNIST(5)
	cfg.TrainPerClass, cfg.TestPerClass = 20, 10
	train, test := data.Generate(cfg)
	groups := [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}
	clients, truth := BuildGroupClients(train, test, groups, []int{3, 3}, rng.New(6))
	if len(clients) != 6 || len(truth) != 6 {
		t.Fatalf("sizes %d/%d", len(clients), len(truth))
	}
	for i, c := range clients {
		h := c.Train.LabelHistogram()
		for k := 0; k < 10; k++ {
			inGroup := (k < 5) == (truth[i] == 0)
			if !inGroup && h[k] > 0 {
				t.Fatalf("client %d holds out-of-group class %d", i, k)
			}
		}
	}
}

func TestEnvValidate(t *testing.T) {
	env := tinyEnv(2, 1)
	env.Validate() // ok
	bad := *env
	bad.Rounds = 0
	defer func() {
		if recover() == nil {
			t.Fatal("Rounds=0 did not panic")
		}
	}()
	bad.Validate()
}

func TestEncodeDecodeParamsRoundTrip(t *testing.T) {
	model := tinyFactory(rng.New(61))
	orig := nn.FlattenParams(model)
	frame := EncodeParams(model, wire.Float64)
	if len(frame) != EncodedParamBytes(model, wire.Float64) {
		t.Fatal("EncodedParamBytes disagrees with actual frame size")
	}
	other := tinyFactory(rng.New(62))
	if err := DecodeParams(other, frame); err != nil {
		t.Fatal(err)
	}
	got := nn.FlattenParams(other)
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatal("float64 codec round trip lossy")
		}
	}
}

func TestDecodeParamsRejectsWrongModel(t *testing.T) {
	small := tinyFactory(rng.New(63))
	big := nn.MLP(rng.New(64), 2, 30, 2)
	frame := EncodeParams(small, wire.Float32)
	if err := DecodeParams(big, frame); err == nil {
		t.Fatal("size mismatch not rejected")
	}
	if err := DecodeParams(big, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage frame not rejected")
	}
}

func TestQuant8ParamsStayUsable(t *testing.T) {
	// Quantizing a trained model's weights to 8 bits must not destroy its
	// accuracy on an easy task.
	r := rng.New(65)
	d := tinyDataset(60, r)
	model := tinyFactory(rng.New(66))
	LocalUpdate(model, d, LocalConfig{Epochs: 30, BatchSize: 16, LR: 0.2}, r)
	_, accBefore := Evaluate(model, d, 32)
	frame := EncodeParams(model, wire.Quant8)
	if err := DecodeParams(model, frame); err != nil {
		t.Fatal(err)
	}
	_, accAfter := Evaluate(model, d, 32)
	if accBefore-accAfter > 0.05 {
		t.Fatalf("quant8 destroyed the model: %v → %v", accBefore, accAfter)
	}
}

package fl

import (
	"testing"

	"fedclust/internal/data"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

// benchDataset builds a small synthetic 1×8×8 four-class dataset, the same
// geometry the golden equivalence workload uses.
func benchDataset(perClass int) *data.Dataset {
	train, _ := data.Generate(data.SynthConfig{
		Name: "bench", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: perClass, TestPerClass: 4,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: 11,
	})
	return train
}

// BenchmarkLocalUpdate measures one client visit: two local epochs of
// minibatch SGD with momentum on an MLP — the exact inner loop every
// federated round multiplies by rounds × clients.
func BenchmarkLocalUpdate(b *testing.B) {
	d := benchDataset(40)
	model := nn.MLP(rng.New(1), d.Dim(), 20, d.Classes)
	cfg := LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	w0 := nn.FlattenParams(model)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.LoadParams(model, w0)
		LocalUpdate(model, d, cfg, rng.New(uint64(i)))
	}
}

// BenchmarkLocalUpdateLeNet is LocalUpdate on the Table-I convolutional
// architecture, where im2col and the conv matmuls dominate.
func BenchmarkLocalUpdateLeNet(b *testing.B) {
	d := benchDataset(40)
	model := nn.LeNet5(rng.New(1), d.C, d.H, d.W, d.Classes, 0.5)
	cfg := LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	w0 := nn.FlattenParams(model)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.LoadParams(model, w0)
		LocalUpdate(model, d, cfg, rng.New(uint64(i)))
	}
}

// BenchmarkEvaluate measures one full-dataset evaluation pass (the
// personalized-evaluation protocol runs this per client per eval round).
func BenchmarkEvaluate(b *testing.B) {
	d := benchDataset(40)
	model := nn.MLP(rng.New(2), d.Dim(), 20, d.Classes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(model, d, 64)
	}
}

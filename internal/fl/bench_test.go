package fl

import (
	"testing"

	"fedclust/internal/data"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

// benchDataset builds a small synthetic 1×8×8 four-class dataset, the same
// geometry the golden equivalence workload uses.
func benchDataset(perClass int) *data.Dataset {
	train, _ := data.Generate(data.SynthConfig{
		Name: "bench", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: perClass, TestPerClass: 4,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: 11,
	})
	return train
}

// BenchmarkLocalUpdate measures one client visit: two local epochs of
// minibatch SGD with momentum on an MLP — the exact inner loop every
// federated round multiplies by rounds × clients.
func BenchmarkLocalUpdate(b *testing.B) {
	d := benchDataset(40)
	model := nn.MLP(rng.New(1), d.Dim(), 20, d.Classes)
	cfg := LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	w0 := nn.FlattenParams(model)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.LoadParams(model, w0)
		LocalUpdate(model, d, cfg, rng.New(uint64(i)))
	}
}

// BenchmarkLocalUpdateLeNet is LocalUpdate on the Table-I convolutional
// architecture, where im2col and the conv matmuls dominate.
func BenchmarkLocalUpdateLeNet(b *testing.B) {
	d := benchDataset(40)
	model := nn.LeNet5(rng.New(1), d.C, d.H, d.W, d.Classes, 0.5)
	cfg := LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	w0 := nn.FlattenParams(model)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.LoadParams(model, w0)
		LocalUpdate(model, d, cfg, rng.New(uint64(i)))
	}
}

// BenchmarkEvaluate measures one full-dataset evaluation pass (the
// personalized-evaluation protocol runs this per client per eval round).
func BenchmarkEvaluate(b *testing.B) {
	d := benchDataset(40)
	model := nn.MLP(rng.New(2), d.Dim(), 20, d.Classes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(model, d, 64)
	}
}

// benchLocalUpdate runs BenchmarkLocalUpdate's exact visit through a
// persistent per-dtype scratch — the engine's actual hot path (one warm
// TrainScratch per worker) — so the float64/float32 pair measures the
// compute paths, not scratch construction.
func benchLocalUpdate(b *testing.B, dtype DType) {
	d := benchDataset(40)
	model := nn.MLP(rng.New(1), d.Dim(), 20, d.Classes)
	cfg := LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	w0 := nn.FlattenParams(model)
	ts := TrainScratch{DType: dtype}
	ts.LocalUpdate(model, d, cfg, rng.New(0)) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.LoadParams(model, w0)
		ts.LocalUpdate(model, d, cfg, rng.New(uint64(i)))
	}
}

func BenchmarkLocalUpdateScratch64(b *testing.B) { benchLocalUpdate(b, Float64) }
func BenchmarkLocalUpdateScratch32(b *testing.B) { benchLocalUpdate(b, Float32) }

// benchLocalUpdateLeNet is benchLocalUpdate on the Table-I
// convolutional architecture (im2col + conv matmuls dominate).
func benchLocalUpdateLeNet(b *testing.B, dtype DType) {
	d := benchDataset(40)
	model := nn.LeNet5(rng.New(1), d.C, d.H, d.W, d.Classes, 0.5)
	cfg := LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	w0 := nn.FlattenParams(model)
	ts := TrainScratch{DType: dtype}
	ts.LocalUpdate(model, d, cfg, rng.New(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.LoadParams(model, w0)
		ts.LocalUpdate(model, d, cfg, rng.New(uint64(i)))
	}
}

func BenchmarkLocalUpdateLeNet64(b *testing.B) { benchLocalUpdateLeNet(b, Float64) }
func BenchmarkLocalUpdateLeNet32(b *testing.B) { benchLocalUpdateLeNet(b, Float32) }

// benchEvaluate is BenchmarkEvaluate through a per-dtype scratch.
func benchEvaluate(b *testing.B, dtype DType) {
	d := benchDataset(40)
	model := nn.MLP(rng.New(2), d.Dim(), 20, d.Classes)
	ts := TrainScratch{DType: dtype}
	ts.Evaluate(model, d, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Evaluate(model, d, 64)
	}
}

func BenchmarkEvaluateCE64(b *testing.B) { benchEvaluate(b, Float64) }
func BenchmarkEvaluateCE32(b *testing.B) { benchEvaluate(b, Float32) }

package fl

import (
	"sync"
	"sync/atomic"

	"fedclust/internal/nn"
)

// EnvShared is the lazily created per-Env shared runtime: scratch state
// that persists across runs and evaluations on one environment, so
// steady-state rounds allocate nothing. It is held behind a pointer so
// Env itself stays copyable (FedProx copies its Env by value); copies
// made after first use share the holder, which is safe because every
// compartment is claimed atomically before use and callers fall back to
// private state when the claim fails.
type EnvShared struct {
	evalBusy atomic.Bool
	eval     evalScratch

	// engine compartment: the round engine's per-env runtime (model
	// pool, parameter arenas, worker contexts). Opaque to fl.
	engineBusy atomic.Bool
	engine     any
}

// sharedMu guards lazy creation of Env.shared across goroutines.
var sharedMu sync.Mutex

// Shared returns the environment's shared-state holder, creating it on
// first use.
func (e *Env) Shared() *EnvShared {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if e.shared == nil {
		e.shared = &EnvShared{}
	}
	return e.shared
}

// AcquireRuntime hands the caller exclusive ownership of the engine
// compartment. It returns the previously released value (nil on first
// use) and true, or (nil, false) when another run currently holds it —
// the caller must then build private state instead. A successful acquire
// must be paired with ReleaseRuntime.
func (s *EnvShared) AcquireRuntime() (any, bool) {
	if !s.engineBusy.CompareAndSwap(false, true) {
		return nil, false
	}
	return s.engine, true
}

// ReleaseRuntime stores v as the compartment's cached state and releases
// the claim, making v available to the next acquirer.
func (s *EnvShared) ReleaseRuntime(v any) {
	s.engine = v
	s.engineBusy.Store(false)
}

// evalScratch is the reusable state of the evaluation protocol: the
// per-client result columns, one warm loss head per worker, the
// per-worker clone models of EvaluatePersonalized, and the persistent
// executor task. One evalScratch serves one evaluation call at a time
// (claimed via EnvShared.evalBusy); contended calls run on a private
// throwaway instance.
type evalScratch struct {
	losses []float64
	valid  []bool
	ces    []nn.SoftmaxCE

	// shadows/ces32 back the float32 evaluation path: one float32
	// replica and warm loss head per worker (see shadow32).
	// mirror32Failed remembers an unmirrorable architecture so the
	// protocol silently stays float64 instead of retrying per client.
	shadows        []*nn.Sequential32
	ces32          []nn.SoftmaxCE32
	mirror32Failed bool

	// clones/lastSrc/load back EvaluatePersonalized: one lazily built
	// model per worker, reloaded only when the picked source changes.
	clones  []*nn.Sequential
	lastSrc []*nn.Sequential
	load    [][]float64

	// Per-call wiring for the persistent executor task. cur is the
	// current call's per-client accuracy slice; env/pick the call's
	// environment and model picker. Cleared at call end.
	env  *Env
	pick func(worker, clientIdx int) *nn.Sequential
	cur  []float64
	task func(w, i int)
}

// ensure sizes the scratch for n clients and `workers` worker slots and
// resets the per-call columns.
func (s *evalScratch) ensure(n, workers int) {
	if cap(s.losses) < n {
		s.losses = make([]float64, n)
		s.valid = make([]bool, n)
	}
	s.losses = s.losses[:n]
	s.valid = s.valid[:n]
	for i := range s.losses {
		s.losses[i] = 0
		s.valid[i] = false
	}
	if len(s.ces) < workers {
		s.ces = make([]nn.SoftmaxCE, workers)
		s.ces32 = make([]nn.SoftmaxCE32, workers)
		grownClones := make([]*nn.Sequential, workers)
		copy(grownClones, s.clones) // clone models are expensive; keep them
		s.clones = grownClones
		grownShadows := make([]*nn.Sequential32, workers)
		copy(grownShadows, s.shadows) // mirrors too
		s.shadows = grownShadows
		grownLoad := make([][]float64, workers)
		copy(grownLoad, s.load)
		s.load = grownLoad
		s.lastSrc = make([]*nn.Sequential, workers)
	}
	// lastSrc caches by pointer identity; a model freed after the last
	// call could alias a new allocation, so the cache never survives a
	// call boundary.
	for i := range s.lastSrc {
		s.lastSrc[i] = nil
	}
	if s.task == nil {
		s.task = func(w, i int) {
			c := s.env.Clients[i]
			if c.Test == nil || c.Test.Len() == 0 {
				return
			}
			m := s.pick(w, i)
			var l, a float64
			if sh := s.shadow32(w, m); sh != nil {
				l, a = EvaluateCE32(sh, c.Test, s.env.EvalBatchSize(), &s.ces32[w])
			} else {
				l, a = EvaluateCE(m, c.Test, s.env.EvalBatchSize(), &s.ces[w])
			}
			s.cur[i] = a
			s.losses[i] = l
			s.valid[i] = true
		}
	}
}

// shadow32 returns worker w's float32 eval replica of m when the
// environment runs the float32 path, loading m's parameters fresh on
// every call: pick may hand back the same pooled model holding
// different weights on consecutive clients, so pointer-identity caching
// would serve stale parameters. Returns nil on the float64 path or when
// the architecture has no float32 mirror.
func (s *evalScratch) shadow32(w int, m *nn.Sequential) *nn.Sequential32 {
	if s.env.DType != Float32 || s.mirror32Failed {
		return nil
	}
	sh := s.shadows[w]
	if sh == nil || !shadowCompatible(sh, m) {
		sh = nn.Mirror32(m)
		if sh == nil {
			s.mirror32Failed = true
			return nil
		}
		s.shadows[w] = sh
	}
	nn.AssignParams32(sh, m)
	return sh
}

// acquireEval claims the environment's shared evaluation scratch;
// contended callers get a fresh private instance (claimed == false).
func (e *Env) acquireEval() (s *evalScratch, claimed bool) {
	sh := e.Shared()
	if sh.evalBusy.CompareAndSwap(false, true) {
		return &sh.eval, true
	}
	return &evalScratch{}, false
}

// releaseEval ends a claimed acquireEval.
func (e *Env) releaseEval(s *evalScratch, claimed bool) {
	s.env, s.pick, s.cur = nil, nil, nil
	if claimed {
		e.shared.evalBusy.Store(false)
	}
}

package fl

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"fedclust/internal/rng"
	"fedclust/internal/wire"
)

// Checkpoint is everything a round schedule needs to continue after
// process death: run identity (method, spec hash, seed, schedule), the
// round counter, the accumulated Result (history, per-client accuracy,
// CommStats including the per-round ledger), and the method's named
// state sections — model parameters as lossless wire Float64 frames,
// counters and indices as wire state frames. The resume contract is
// bit-exactness: a run restored from a checkpoint taken after round r
// produces, for every subsequent round, exactly the bytes an
// uninterrupted run produces, because no cross-round state exists
// outside what is captured here (client streams are pure functions of
// (seed, client, round); optimizer velocity resets per visit; the
// scenario trace is a pure function of its config and seed, pinned by
// fingerprint).
type Checkpoint struct {
	// Method is the fl.Trainer name the state belongs to.
	Method string
	// SpecHash identifies a networked run (transport.SpecHash of the
	// welcome spec); 0 for purely local runs.
	SpecHash uint64
	// Seed is the environment seed; Rounds the full schedule length.
	Seed   uint64
	Rounds int
	// Round is the number of completed rounds — the next round index an
	// uninterrupted run would execute.
	Round int
	// NClients and NumParams pin the population and model shape.
	NClients  int
	NumParams int
	// RngRoot is the root stream position for Seed — a derived-stream
	// integrity guard: a resumed environment must reproduce it exactly.
	RngRoot rng.State
	// ScenarioFP fingerprints the attached scenario trace (0 = none); a
	// resume under a different trace would silently diverge, so it is
	// checked instead.
	ScenarioFP uint64

	vecs map[string][]float64
	ints map[string][]int64
}

// Checkpoint bounds: decode reads files with no more provenance than a
// network peer, so every size is validated before allocation.
const (
	maxCkptMethod   = 128
	maxCkptName     = 256
	maxCkptSections = 1 << 12
	maxCkptVecLen   = 1 << 27
	maxCkptRounds   = 1 << 20
	maxCkptClients  = 1 << 16
)

// ckptMagic opens every checkpoint file.
var ckptMagic = [4]byte{'F', 'C', 'K', 'P'}

const ckptVersion = 1

// State-frame section kinds within a checkpoint.
const (
	ckptKindMeta = 1
	ckptKindInts = 2
)

// metaWords is the fixed word count of the meta section: spec hash, seed,
// rounds, round, clients, params, 6 rng-state words, scenario
// fingerprint, vec count, int count.
const metaWords = 6 + 6 + 1 + 2

// ScenarioFingerprinter is implemented by scenario models whose trace is
// a pure function of an identity the fingerprint captures; checkpoints
// record it so a resume under a different trace is rejected.
type ScenarioFingerprinter interface {
	Fingerprint() uint64
}

// NewCheckpoint captures a run's identity after `round` completed rounds.
// Method state and the Result snapshot are added separately (SetVec,
// SetInts, CaptureResult).
func NewCheckpoint(env *Env, method string, round, numParams int, specHash uint64) *Checkpoint {
	var root rng.Rng
	root.Reseed(env.Seed)
	c := &Checkpoint{
		Method:    method,
		SpecHash:  specHash,
		Seed:      env.Seed,
		Rounds:    env.Rounds,
		Round:     round,
		NClients:  len(env.Clients),
		NumParams: numParams,
		RngRoot:   root.State(),
	}
	if fp, ok := env.Participation.Scenario.(ScenarioFingerprinter); ok {
		c.ScenarioFP = fp.Fingerprint()
	}
	return c
}

// Matches verifies the checkpoint continues this exact run: same method,
// seed, schedule, population, model shape, derived-stream root, and
// scenario trace. A mismatch on any of them would not crash — it would
// silently train a different run — so resume refuses instead.
func (c *Checkpoint) Matches(env *Env, method string, numParams int) error {
	if c.Method != method {
		return fmt.Errorf("fl: checkpoint holds %s state, resuming %s", c.Method, method)
	}
	if c.Seed != env.Seed {
		return fmt.Errorf("fl: checkpoint seed %d, environment seed %d", c.Seed, env.Seed)
	}
	if c.Rounds != env.Rounds {
		return fmt.Errorf("fl: checkpoint schedule has %d rounds, environment %d", c.Rounds, env.Rounds)
	}
	if c.Round < 0 || c.Round > env.Rounds {
		return fmt.Errorf("fl: checkpoint round %d outside schedule of %d", c.Round, env.Rounds)
	}
	if c.NClients != len(env.Clients) {
		return fmt.Errorf("fl: checkpoint population %d, environment %d", c.NClients, len(env.Clients))
	}
	if numParams > 0 && c.NumParams != numParams {
		return fmt.Errorf("fl: checkpoint model has %d params, environment %d", c.NumParams, numParams)
	}
	var root rng.Rng
	root.Reseed(env.Seed)
	if c.RngRoot != root.State() {
		return fmt.Errorf("fl: checkpoint rng root state does not match seed %d", env.Seed)
	}
	var fp uint64
	if f, ok := env.Participation.Scenario.(ScenarioFingerprinter); ok {
		fp = f.Fingerprint()
	}
	if c.ScenarioFP != fp {
		return fmt.Errorf("fl: checkpoint scenario fingerprint %#x, environment %#x", c.ScenarioFP, fp)
	}
	return nil
}

// SetVec stores a named float64 section. The checkpoint owns a copy, so
// live training buffers may keep mutating after the snapshot.
func (c *Checkpoint) SetVec(name string, v []float64) {
	if c.vecs == nil {
		c.vecs = make(map[string][]float64)
	}
	c.vecs[name] = append([]float64(nil), v...)
}

// SetInts stores a named int64 section (copied).
func (c *Checkpoint) SetInts(name string, v []int64) {
	if c.ints == nil {
		c.ints = make(map[string][]int64)
	}
	c.ints[name] = append([]int64(nil), v...)
}

// SetIntSlice is SetInts for int slices (labels, assignments, counters).
func (c *Checkpoint) SetIntSlice(name string, v []int) {
	w := make([]int64, len(v))
	for i, x := range v {
		w[i] = int64(x)
	}
	if c.ints == nil {
		c.ints = make(map[string][]int64)
	}
	c.ints[name] = w
}

// Vec returns the named float64 section, enforcing length want (want < 0
// accepts any length). Missing sections and length mismatches are errors:
// method state must restore exactly or not at all.
func (c *Checkpoint) Vec(name string, want int) ([]float64, error) {
	v, ok := c.vecs[name]
	if !ok {
		return nil, fmt.Errorf("fl: checkpoint has no %q section", name)
	}
	if want >= 0 && len(v) != want {
		return nil, fmt.Errorf("fl: checkpoint section %q has %d values, want %d", name, len(v), want)
	}
	return v, nil
}

// Ints returns the named int64 section, enforcing length want (want < 0
// accepts any length).
func (c *Checkpoint) Ints(name string, want int) ([]int64, error) {
	v, ok := c.ints[name]
	if !ok {
		return nil, fmt.Errorf("fl: checkpoint has no %q section", name)
	}
	if want >= 0 && len(v) != want {
		return nil, fmt.Errorf("fl: checkpoint section %q has %d values, want %d", name, len(v), want)
	}
	return v, nil
}

// IntSlice is Ints converted to an int slice.
func (c *Checkpoint) IntSlice(name string, want int) ([]int, error) {
	w, err := c.Ints(name, want)
	if err != nil {
		return nil, err
	}
	v := make([]int, len(w))
	for i, x := range w {
		v[i] = int(x)
	}
	return v, nil
}

// HasVec reports whether a named float64 section is present.
func (c *Checkpoint) HasVec(name string) bool { _, ok := c.vecs[name]; return ok }

// HasInts reports whether a named int64 section is present.
func (c *Checkpoint) HasInts(name string) bool { _, ok := c.ints[name]; return ok }

// Result snapshot section names.
const (
	secResScalars  = "result/scalars"
	secResPerAcc   = "result/per_client_acc"
	secResHistR    = "result/history/rounds"
	secResHistAcc  = "result/history/acc"
	secResHistLoss = "result/history/loss"
	secResComm     = "result/comm"
	secResCommR    = "result/comm/rounds"
	secResCommUp   = "result/comm/up"
	secResCommDown = "result/comm/down"
	secResCluster  = "result/cluster"
	secResClusters = "result/clusters"
)

// CaptureResult snapshots the accumulated Result — metrics history,
// per-client accuracy, the full CommStats ledger (totals, per-round
// deltas, and the internal snapshot cursors), and cluster bookkeeping.
func (c *Checkpoint) CaptureResult(res *Result) {
	c.SetVec(secResScalars, []float64{res.FinalAcc, res.FinalLoss})
	c.SetVec(secResPerAcc, res.PerClientAcc)
	hr := make([]int64, len(res.History))
	ha := make([]float64, len(res.History))
	hl := make([]float64, len(res.History))
	for i, m := range res.History {
		hr[i], ha[i], hl[i] = int64(m.Round), m.MeanAcc, m.MeanLoss
	}
	c.SetInts(secResHistR, hr)
	c.SetVec(secResHistAcc, ha)
	c.SetVec(secResHistLoss, hl)
	cm := &res.Comm
	c.SetInts(secResComm, []int64{cm.UpBytes, cm.DownBytes, cm.snapUp, cm.snapDown, cm.MeasuredUp, cm.MeasuredDown})
	cr := make([]int64, len(cm.PerRound))
	cu := make([]int64, len(cm.PerRound))
	cd := make([]int64, len(cm.PerRound))
	for i, r := range cm.PerRound {
		cr[i], cu[i], cd[i] = int64(r.Round), r.UpBytes, r.DownBytes
	}
	c.SetInts(secResCommR, cr)
	c.SetInts(secResCommUp, cu)
	c.SetInts(secResCommDown, cd)
	hasClusters := int64(0)
	if res.Clusters != nil {
		hasClusters = 1
		c.SetIntSlice(secResClusters, res.Clusters)
	}
	c.SetInts(secResCluster, []int64{int64(res.ClusterFormationRound), res.ClusterFormationUpBytes, hasClusters})
}

// RestoreResult rebuilds the Result snapshot into res (replacing its
// accumulated state; Method is left as the driver set it).
func (c *Checkpoint) RestoreResult(res *Result) error {
	sc, err := c.Vec(secResScalars, 2)
	if err != nil {
		return err
	}
	per, err := c.Vec(secResPerAcc, -1)
	if err != nil {
		return err
	}
	hr, err := c.Ints(secResHistR, -1)
	if err != nil {
		return err
	}
	ha, err := c.Vec(secResHistAcc, len(hr))
	if err != nil {
		return err
	}
	hl, err := c.Vec(secResHistLoss, len(hr))
	if err != nil {
		return err
	}
	cm, err := c.Ints(secResComm, 6)
	if err != nil {
		return err
	}
	cr, err := c.Ints(secResCommR, -1)
	if err != nil {
		return err
	}
	cu, err := c.Ints(secResCommUp, len(cr))
	if err != nil {
		return err
	}
	cd, err := c.Ints(secResCommDown, len(cr))
	if err != nil {
		return err
	}
	cl, err := c.Ints(secResCluster, 3)
	if err != nil {
		return err
	}
	res.FinalAcc, res.FinalLoss = sc[0], sc[1]
	res.PerClientAcc = append(res.PerClientAcc[:0], per...)
	res.History = res.History[:0]
	for i := range hr {
		res.History = append(res.History, RoundMetrics{Round: int(hr[i]), MeanAcc: ha[i], MeanLoss: hl[i]})
	}
	// Pricing is run configuration, not accumulated state — the driver
	// derives it from the environment's codec selection before restoring.
	// Wiping it here would re-price every post-resume round as dense
	// Float64 (the zero value) and fork the byte ledger from the
	// uninterrupted run.
	res.Comm = CommStats{
		Pricing: res.Comm.Pricing,
		UpBytes: cm[0], DownBytes: cm[1],
		snapUp: cm[2], snapDown: cm[3],
		MeasuredUp: cm[4], MeasuredDown: cm[5],
	}
	for i := range cr {
		res.Comm.PerRound = append(res.Comm.PerRound, RoundComm{Round: int(cr[i]), UpBytes: cu[i], DownBytes: cd[i]})
	}
	res.ClusterFormationRound = int(cl[0])
	res.ClusterFormationUpBytes = cl[1]
	res.Clusters = nil
	if cl[2] != 0 {
		if res.Clusters, err = c.IntSlice(secResClusters, -1); err != nil {
			return err
		}
	}
	return nil
}

// Encode serializes the checkpoint. The layout is deterministic
// (sections sorted by name) and every section rides an internal/wire
// frame — Float64 parameter frames for float sections, state frames for
// word sections — under one whole-file crc32:
//
//	"FCKP" | u32 version | u16 len | method |
//	meta state frame (kind 1) |
//	nVecs × (u16 len | name | Float64 frame) |
//	nInts × (u16 len | name | state frame kind 2) |
//	crc32 of everything before it
func (c *Checkpoint) Encode() []byte {
	vecNames := sortedKeys(c.vecs)
	intNames := sortedKeys(c.ints)
	out := append([]byte(nil), ckptMagic[:]...)
	out = appendU32(out, ckptVersion)
	out = appendU16(out, uint16(len(c.Method)))
	out = append(out, c.Method...)
	meta := make([]uint64, 0, metaWords)
	meta = append(meta, c.SpecHash, c.Seed, uint64(c.Rounds), uint64(c.Round),
		uint64(c.NClients), uint64(c.NumParams))
	meta = append(meta, c.RngRoot[:]...)
	meta = append(meta, c.ScenarioFP, uint64(len(vecNames)), uint64(len(intNames)))
	out = wire.AppendStateFrame(out, ckptKindMeta, meta)
	for _, name := range vecNames {
		out = appendU16(out, uint16(len(name)))
		out = append(out, name...)
		out = wire.EncodeInto(out, wire.Float64, c.vecs[name])
	}
	for _, name := range intNames {
		out = appendU16(out, uint16(len(name)))
		out = append(out, name...)
		words := make([]uint64, len(c.ints[name]))
		for i, v := range c.ints[name] {
			words[i] = uint64(v)
		}
		out = wire.AppendStateFrame(out, ckptKindInts, words)
	}
	return appendU32(out, crc32IEEE(out))
}

// DecodeCheckpoint parses an Encode-produced checkpoint. It never
// panics: truncation, corruption, hostile counts, and duplicate or
// oversized sections are all errors — a checkpoint file deserves no more
// trust than a frame off a socket.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < len(ckptMagic)+4+2+4 {
		return nil, fmt.Errorf("fl: checkpoint truncated (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != ckptMagic {
		return nil, fmt.Errorf("fl: not a checkpoint (bad magic)")
	}
	body, sum := b[:len(b)-4], u32(b[len(b)-4:])
	if crc32IEEE(body) != sum {
		return nil, fmt.Errorf("fl: checkpoint checksum mismatch")
	}
	rest := body[4:]
	if v := u32(rest); v != ckptVersion {
		return nil, fmt.Errorf("fl: checkpoint version %d, want %d", v, ckptVersion)
	}
	rest = rest[4:]
	method, rest, err := takeName(rest, maxCkptMethod)
	if err != nil {
		return nil, fmt.Errorf("fl: checkpoint method: %w", err)
	}
	n, err := wire.StateFrameLen(rest, len(rest))
	if err != nil {
		return nil, fmt.Errorf("fl: checkpoint meta: %w", err)
	}
	kind, meta, err := wire.DecodeStateFrame(rest[:n])
	if err != nil {
		return nil, fmt.Errorf("fl: checkpoint meta: %w", err)
	}
	if kind != ckptKindMeta || len(meta) != metaWords {
		return nil, fmt.Errorf("fl: checkpoint meta section kind %d / %d words malformed", kind, len(meta))
	}
	rest = rest[n:]
	c := &Checkpoint{
		Method:    method,
		SpecHash:  meta[0],
		Seed:      meta[1],
		Rounds:    int(meta[2]),
		Round:     int(meta[3]),
		NClients:  int(meta[4]),
		NumParams: int(meta[5]),
	}
	copy(c.RngRoot[:], meta[6:12])
	c.ScenarioFP = meta[12]
	nVecs, nInts := meta[13], meta[14]
	if c.Rounds < 0 || c.Rounds > maxCkptRounds || c.Round < 0 || c.Round > c.Rounds {
		return nil, fmt.Errorf("fl: checkpoint round %d of %d out of bounds", c.Round, c.Rounds)
	}
	if c.NClients < 0 || c.NClients > maxCkptClients || c.NumParams < 0 || c.NumParams > maxCkptVecLen {
		return nil, fmt.Errorf("fl: checkpoint shape %d clients × %d params out of bounds", c.NClients, c.NumParams)
	}
	if nVecs > maxCkptSections || nInts > maxCkptSections {
		return nil, fmt.Errorf("fl: checkpoint claims %d+%d sections, limit %d", nVecs, nInts, maxCkptSections)
	}
	c.vecs = make(map[string][]float64, nVecs)
	for i := uint64(0); i < nVecs; i++ {
		var name string
		name, rest, err = takeName(rest, maxCkptName)
		if err != nil {
			return nil, fmt.Errorf("fl: checkpoint vec section %d: %w", i, err)
		}
		if _, dup := c.vecs[name]; dup {
			return nil, fmt.Errorf("fl: duplicate checkpoint section %q", name)
		}
		n, err := wire.FrameLen(rest, len(rest))
		if err != nil {
			return nil, fmt.Errorf("fl: checkpoint section %q: %w", name, err)
		}
		if cdc, _ := wire.FrameCodec(rest[:n]); cdc != wire.Float64 {
			return nil, fmt.Errorf("fl: checkpoint section %q uses lossy codec %s", name, cdc)
		}
		vec, err := wire.Decode(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("fl: checkpoint section %q: %w", name, err)
		}
		if len(vec) > maxCkptVecLen {
			return nil, fmt.Errorf("fl: checkpoint section %q has %d values, limit %d", name, len(vec), maxCkptVecLen)
		}
		c.vecs[name] = vec
		rest = rest[n:]
	}
	c.ints = make(map[string][]int64, nInts)
	for i := uint64(0); i < nInts; i++ {
		var name string
		name, rest, err = takeName(rest, maxCkptName)
		if err != nil {
			return nil, fmt.Errorf("fl: checkpoint int section %d: %w", i, err)
		}
		if _, dup := c.ints[name]; dup {
			return nil, fmt.Errorf("fl: duplicate checkpoint section %q", name)
		}
		n, err := wire.StateFrameLen(rest, len(rest))
		if err != nil {
			return nil, fmt.Errorf("fl: checkpoint section %q: %w", name, err)
		}
		kind, words, err := wire.DecodeStateFrame(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("fl: checkpoint section %q: %w", name, err)
		}
		if kind != ckptKindInts {
			return nil, fmt.Errorf("fl: checkpoint section %q has kind %d, want %d", name, kind, ckptKindInts)
		}
		vals := make([]int64, len(words))
		for j, w := range words {
			vals[j] = int64(w)
		}
		c.ints[name] = vals
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("fl: checkpoint has %d trailing bytes", len(rest))
	}
	return c, nil
}

// WriteFile atomically persists the checkpoint: encode, write to a
// temporary sibling, rename over path — a crash mid-write leaves the
// previous checkpoint intact.
func (c *Checkpoint) WriteFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(c.Encode())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadCheckpointFile loads and decodes a checkpoint file.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(b)
}

// CheckpointPlan attaches checkpointing to an environment's runs. The
// zero plan is inert; Env.Ckpt == nil disables the machinery entirely.
type CheckpointPlan struct {
	// Resume, when non-nil, is the checkpoint the next matching run
	// continues from: the driver restores the Result, hands the method
	// its state sections, and starts the loop at Resume.Round.
	Resume *Checkpoint
	// Every emits a checkpoint after every Every-th completed round
	// (0 = only on Trigger).
	Every int
	// Trigger is polled after each round; returning true forces a
	// checkpoint (the control plane's on-demand snapshot).
	Trigger func() bool
	// Sink receives each emitted checkpoint — a self-contained copy the
	// sink owns (write it to disk, ship it, inspect it).
	Sink func(*Checkpoint)
	// SpecHash stamps emitted checkpoints with the networked run's
	// identity (0 for local runs).
	SpecHash uint64
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// takeName pops a u16-length-prefixed name off the buffer.
func takeName(b []byte, maxLen int) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("name length truncated")
	}
	n := int(u16(b))
	if n == 0 || n > maxLen {
		return "", nil, fmt.Errorf("name of %d bytes out of (0, %d]", n, maxLen)
	}
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("name truncated (%d of %d bytes)", len(b)-2, n)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func u16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func crc32IEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

package fl

import (
	"fmt"

	"fedclust/internal/nn"
	"fedclust/internal/wire"
)

// EncodeParams serializes a model's parameters into a wire frame under the
// chosen codec — what a client actually puts on the network.
func EncodeParams(model *nn.Sequential, c wire.Codec) []byte {
	return wire.Encode(c, nn.FlattenParams(model))
}

// DecodeParams loads a wire frame produced by EncodeParams back into the
// model. Lossy codecs round-trip with their codec-specific error.
func DecodeParams(model *nn.Sequential, frame []byte) error {
	vec, err := wire.Decode(frame)
	if err != nil {
		return err
	}
	if len(vec) != model.NumParams() {
		return fmt.Errorf("fl: decoded %d params, model has %d", len(vec), model.NumParams())
	}
	nn.LoadParams(model, vec)
	return nil
}

// EncodedParamBytes returns the frame size of a model under codec c —
// the concrete per-message volume behind CommStats accounting.
func EncodedParamBytes(model *nn.Sequential, c wire.Codec) int {
	return wire.EncodedSize(c, model.NumParams())
}

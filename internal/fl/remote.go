package fl

// Vector selectors for RemoteRequest.Layer: which slice of the trained
// model the remote executor returns. Non-negative values select an
// explicit weight-layer index (nn.WeightLayers order).
const (
	// FullParams requests the complete flattened parameter vector — the
	// normal per-round update upload.
	FullParams = -1
	// FinalLayer requests only the last weight layer — FedClust's
	// partial-weight clustering upload, which must stay partial on the
	// wire for the paper's communication-cost claim to hold end to end.
	FinalLayer = -2
)

// RemoteRequest is one client-visit work order shipped to wherever the
// client's data lives: load Start, run the local pass for the visit's
// deterministic (Client, Round) stream under Cfg, return the vector
// selected by Layer.
type RemoteRequest struct {
	// Client is the global client index; Round the visit's round number
	// (the engine's warmup phases use out-of-band round ids).
	Client, Round int
	// Cluster is the client's cluster id under a clustered schedule, -1
	// otherwise. Informational round metadata — the executor's arithmetic
	// never depends on it.
	Cluster int
	// Layer selects the returned vector: FullParams, FinalLayer, or a
	// weight-layer index ≥ 0.
	Layer int
	// Cfg is the effective local-training configuration for this visit
	// (epochs already scenario-adjusted; ProxMu set for FedProx runs).
	// The executor trains with it, not with its own replica's defaults.
	Cfg LocalConfig
	// Start is the starting parameter vector (read-only; valid only for
	// the duration of the call).
	Start []float64
}

// RemoteTrainer routes client visits to remote executors. The engine's
// default local pass and FedClust's warmup phase consult it: clients it
// Owns train wherever the trainer points (another process, another
// machine), everyone else trains in-process — one round loop drives a
// mix of local and remote clients.
//
// Implementations (internal/transport.Fleet) must be safe for concurrent
// Train calls — the engine issues one per parallel client visit — and
// Owns must be a pure function of the client index for the lifetime of a
// run (ownership is cached per round engine).
type RemoteTrainer interface {
	// Owns reports whether client's data and compute live remotely.
	Owns(client int) bool
	// Train executes the request and writes the selected vector into out
	// (whose length picks the expected dimension). It returns the number
	// of bytes that went down (server→client) and up (client→server) on
	// the wire — measured when a real transport carried the exchange,
	// computed frame sizes for in-process loopback — and a non-nil error
	// when the update did not arrive (timeout, disconnect, remote
	// failure). On error the engine treats the client like a dropout:
	// excluded from the round's reported set, its partial bytes still
	// accounted.
	Train(req *RemoteRequest, out []float64) (down, up int64, err error)
}

package fl

import (
	"fmt"
	"math"

	"fedclust/internal/wire"
)

// ErrorFeedback is the per-client residual accumulator behind sparse
// uplinks (Karimireddy et al.'s EF pattern): each round the client
// transmits the top-k coordinates of (trained + residual) ranked by
// distance from the broadcast start, and whatever the sparse frame
// failed to carry becomes the next round's residual instead of being
// lost. Residuals live with whoever runs the client's local pass — the
// engine for in-process clients, the node Service for remote ones — and
// ride fl.Checkpoint named sections so compressed runs resume
// bit-identically.
//
// Visit is safe for concurrent calls with distinct client ids: each
// client owns a disjoint residual row and all transient state is in the
// caller's EFScratch.
type ErrorFeedback struct {
	Codec wire.Codec // sparse uplink codec (TopK or TopKQuant8)
	Frac  float64    // normalized kept fraction in (0, 1]

	// res is one residual row per client, each numParams long. A row is
	// zero until its client first uplinks.
	res [][]float64
}

// EFScratch holds one worker's reusable buffers for Visit; zero value
// ready, zero allocations once warm.
type EFScratch struct {
	buf    []byte    // encoded sparse frame
	target []float64 // trained + residual
	scores []float64 // |target - start|, also selection scratch
	sel    []float64 // quickselect scratch
	idx    []uint32  // kept indices
	vals   []float64 // kept raw values
}

// NewErrorFeedback builds an accumulator for nClients clients of
// numParams-vectors. The codec must be sparse and frac already
// normalized (NormalizeTopKFrac).
func NewErrorFeedback(c wire.Codec, frac float64, nClients, numParams int) *ErrorFeedback {
	if !c.Sparse() {
		panic(fmt.Sprintf("fl: error feedback with dense codec %s", c))
	}
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("fl: error feedback frac %g outside (0,1]", frac))
	}
	res := make([][]float64, nClients)
	backing := make([]float64, nClients*numParams)
	for i := range res {
		res[i] = backing[i*numParams : (i+1)*numParams : (i+1)*numParams]
	}
	return &ErrorFeedback{Codec: c, Frac: frac, res: res}
}

// NumParams returns the residual row width.
func (ef *ErrorFeedback) NumParams() int {
	if len(ef.res) == 0 {
		return 0
	}
	return len(ef.res[0])
}

// Reset zeroes every residual — a fresh training run. The engine calls
// this whenever a cached environment is rebound to a new method run;
// resume then overwrites the rows from the checkpoint.
func (ef *ErrorFeedback) Reset() {
	for _, r := range ef.res {
		for i := range r {
			r[i] = 0
		}
	}
}

// Visit runs one client uplink through the accumulator: it appends the
// sparse frame for client's trained vector `out` (relative to the
// broadcast `start`) to dst, rewrites `out` in place to the exact
// reconstruction the receiver will hold after applying that frame, and
// folds the dropped/quantized remainder into the client's residual.
// Callers that only need the reconstruction (in-process clients) reuse
// s.buf as dst and discard the return; callers that ship bytes (the
// node Service) pass their outgoing buffer.
//
// The reconstruction is obtained by decoding the frame just encoded —
// not by mirroring its arithmetic — so sender and receiver states are
// bit-identical by construction, for any codec.
func (ef *ErrorFeedback) Visit(dst []byte, client int, start, out []float64, s *EFScratch) []byte {
	n := len(out)
	if len(start) != n {
		panic(fmt.Sprintf("fl: error feedback start len %d, out len %d", len(start), n))
	}
	res := ef.res[client]
	if len(res) != n {
		panic(fmt.Sprintf("fl: error feedback residual len %d, vector len %d", len(res), n))
	}
	if cap(s.target) < n {
		s.target = make([]float64, n)
		s.scores = make([]float64, n)
	}
	target, scores := s.target[:n], s.scores[:n]
	for i := 0; i < n; i++ {
		t := out[i] + res[i]
		target[i] = t
		scores[i] = math.Abs(t - start[i])
	}
	k := wire.TopKCount(n, ef.Frac)
	s.idx, s.sel = wire.TopKSelect(s.idx, s.sel, scores, k)
	if cap(s.vals) < len(s.idx) {
		s.vals = make([]float64, 0, len(s.idx))
	}
	s.vals = s.vals[:0]
	for _, ix := range s.idx {
		s.vals = append(s.vals, target[ix])
	}
	mark := len(dst)
	dst = wire.EncodeSparseInto(dst, ef.Codec, n, s.idx, s.vals)
	copy(out, start)
	if err := wire.ApplySparseInto(out, dst[mark:]); err != nil {
		panic(err) // decoding a frame we just encoded cannot fail
	}
	for i := 0; i < n; i++ {
		r := target[i] - out[i]
		if !isFinite(r) {
			r = 0
		}
		res[i] = r
	}
	return dst
}

// Compress is Visit for callers that never ship the frame: the client's
// `out` becomes the receiver-side reconstruction and the residual
// updates, using s.buf as the throwaway encode buffer.
func (ef *ErrorFeedback) Compress(client int, start, out []float64, s *EFScratch) {
	s.buf = ef.Visit(s.buf[:0], client, start, out, s)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Checkpoint section names for error-feedback state; the engine writes
// them alongside its other driver sections.
const (
	SecEFMeta = "ef/meta"
	SecEFRes  = "ef/residuals"
)

// SaveTo writes the accumulator's identity and residuals into named
// checkpoint sections.
func (ef *ErrorFeedback) SaveTo(ck *Checkpoint) {
	np := ef.NumParams()
	ck.SetInts(SecEFMeta, []int64{
		int64(ef.Codec),
		int64(math.Float64bits(ef.Frac)),
		int64(len(ef.res)),
		int64(np),
	})
	flat := make([]float64, len(ef.res)*np)
	for i, r := range ef.res {
		copy(flat[i*np:], r)
	}
	ck.SetVec(SecEFRes, flat)
}

// LoadFrom restores residuals saved by SaveTo, validating that the
// checkpoint's accumulator identity matches this one.
func (ef *ErrorFeedback) LoadFrom(ck *Checkpoint) error {
	meta, err := ck.Ints(SecEFMeta, 4)
	if err != nil {
		return err
	}
	np := ef.NumParams()
	if wire.Codec(meta[0]) != ef.Codec || math.Float64frombits(uint64(meta[1])) != ef.Frac {
		return fmt.Errorf("fl: checkpoint error-feedback codec %s frac %g, run has %s frac %g",
			wire.Codec(meta[0]), math.Float64frombits(uint64(meta[1])), ef.Codec, ef.Frac)
	}
	if int(meta[2]) != len(ef.res) || int(meta[3]) != np {
		return fmt.Errorf("fl: checkpoint error-feedback shape %d×%d, run has %d×%d",
			meta[2], meta[3], len(ef.res), np)
	}
	flat, err := ck.Vec(SecEFRes, len(ef.res)*np)
	if err != nil {
		return err
	}
	for i, r := range ef.res {
		copy(r, flat[i*np:(i+1)*np])
	}
	return nil
}

// HasEFState reports whether a checkpoint carries error-feedback
// sections.
func HasEFState(ck *Checkpoint) bool { return ck.HasInts(SecEFMeta) }

package fl

// Checkpoint codec tests. The format promises two things: a checkpoint
// round-trips bit-exactly (Encode is deterministic, Decode restores every
// field and section), and decoding is hostile-safe (truncated, corrupted,
// or adversarially crafted bytes produce errors, never panics or
// unbounded allocations). Both are exercised here; FuzzDecodeCheckpoint
// extends the hostile side with a checked-in corpus.

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"fedclust/internal/rng"
)

// testEnv is a minimal environment for checkpoint identity checks: only
// len(Clients), Seed, and Rounds matter to Matches/NewCheckpoint.
func testEnv(seed uint64, rounds, nClients int) *Env {
	return &Env{Clients: make([]*Client, nClients), Seed: seed, Rounds: rounds}
}

// fullCheckpoint builds a checkpoint exercising every section type and
// a Result with every field populated.
func fullCheckpoint(t testing.TB) *Checkpoint {
	env := testEnv(42, 10, 5)
	c := NewCheckpoint(env, "FedAvg", 7, 3, 0xdeadbeef)
	c.SetVec("global", []float64{1.5, -2.25, math.Pi})
	c.SetVec("empty", nil)
	c.SetInts("counters", []int64{-1, 0, 7})
	c.SetIntSlice("labels", []int{0, 1, 0, 2, 1})
	res := &Result{
		Method:       "FedAvg",
		FinalAcc:     0.875,
		FinalLoss:    0.125,
		PerClientAcc: []float64{0.5, 0.75, 1, 0.25, 0.875},
		History: []RoundMetrics{
			{Round: 1, MeanAcc: 0.5, MeanLoss: 1.2},
			{Round: 3, MeanAcc: 0.7, MeanLoss: 0.8},
		},
		Comm: CommStats{
			UpBytes: 1000, DownBytes: 2000,
			snapUp: 900, snapDown: 1800,
			MeasuredUp: 400, MeasuredDown: 800,
			PerRound: []RoundComm{{Round: 0, UpBytes: 500, DownBytes: 1000}},
		},
		ClusterFormationRound:   2,
		ClusterFormationUpBytes: 333,
		Clusters:                []int{0, 0, 1, 1, 2},
	}
	c.CaptureResult(res)
	return c
}

func TestCheckpointEncodeDeterministic(t *testing.T) {
	a, b := fullCheckpoint(t).Encode(), fullCheckpoint(t).Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same checkpoint differ")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	orig := fullCheckpoint(t)
	got, err := DecodeCheckpoint(orig.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Method != orig.Method || got.SpecHash != orig.SpecHash ||
		got.Seed != orig.Seed || got.Rounds != orig.Rounds || got.Round != orig.Round ||
		got.NClients != orig.NClients || got.NumParams != orig.NumParams ||
		got.RngRoot != orig.RngRoot || got.ScenarioFP != orig.ScenarioFP {
		t.Fatalf("identity fields drifted:\n got  %+v\n want %+v", got, orig)
	}
	for name, want := range orig.vecs {
		v, err := got.Vec(name, len(want))
		if err != nil {
			t.Fatalf("vec %q: %v", name, err)
		}
		for i := range want {
			if math.Float64bits(v[i]) != math.Float64bits(want[i]) {
				t.Fatalf("vec %q[%d]: %v != %v", name, i, v[i], want[i])
			}
		}
	}
	for name, want := range orig.ints {
		v, err := got.Ints(name, len(want))
		if err != nil {
			t.Fatalf("ints %q: %v", name, err)
		}
		for i := range want {
			if v[i] != want[i] {
				t.Fatalf("ints %q[%d]: %d != %d", name, i, v[i], want[i])
			}
		}
	}
	// Re-encode of the decoded checkpoint must be byte-identical: decode
	// keeps exactly the encoded state, nothing synthesized or dropped.
	if !bytes.Equal(got.Encode(), orig.Encode()) {
		t.Fatal("decode → encode is not byte-identical")
	}
}

func TestCheckpointResultRoundTrip(t *testing.T) {
	c := fullCheckpoint(t)
	got, err := DecodeCheckpoint(c.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var res Result
	if err := got.RestoreResult(&res); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if res.FinalAcc != 0.875 || res.FinalLoss != 0.125 {
		t.Errorf("scalars: acc=%v loss=%v", res.FinalAcc, res.FinalLoss)
	}
	if len(res.PerClientAcc) != 5 || res.PerClientAcc[3] != 0.25 {
		t.Errorf("per-client acc: %v", res.PerClientAcc)
	}
	if len(res.History) != 2 || res.History[1] != (RoundMetrics{Round: 3, MeanAcc: 0.7, MeanLoss: 0.8}) {
		t.Errorf("history: %+v", res.History)
	}
	cm := res.Comm
	if cm.UpBytes != 1000 || cm.DownBytes != 2000 || cm.snapUp != 900 || cm.snapDown != 1800 ||
		cm.MeasuredUp != 400 || cm.MeasuredDown != 800 {
		t.Errorf("comm ledger: %+v", cm)
	}
	if len(cm.PerRound) != 1 || cm.PerRound[0] != (RoundComm{Round: 0, UpBytes: 500, DownBytes: 1000}) {
		t.Errorf("per-round comm: %+v", cm.PerRound)
	}
	if res.ClusterFormationRound != 2 || res.ClusterFormationUpBytes != 333 {
		t.Errorf("cluster bookkeeping: %+v", res)
	}
	if len(res.Clusters) != 5 || res.Clusters[4] != 2 {
		t.Errorf("clusters: %v", res.Clusters)
	}
}

func TestCheckpointResultRoundTripNilClusters(t *testing.T) {
	env := testEnv(1, 2, 2)
	c := NewCheckpoint(env, "FedAvg", 1, 1, 0)
	c.CaptureResult(&Result{ClusterFormationRound: -1})
	var res Result
	res.Clusters = []int{9, 9} // must be cleared, not kept
	if err := c.RestoreResult(&res); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if res.Clusters != nil {
		t.Errorf("clusters not cleared: %v", res.Clusters)
	}
	if res.ClusterFormationRound != -1 {
		t.Errorf("formation round: %d", res.ClusterFormationRound)
	}
}

func TestCheckpointMatches(t *testing.T) {
	env := testEnv(42, 10, 5)
	base := func() *Checkpoint { return NewCheckpoint(env, "FedAvg", 7, 3, 0) }
	if err := base().Matches(env, "FedAvg", 3); err != nil {
		t.Fatalf("self-match failed: %v", err)
	}
	if err := base().Matches(env, "FedAvg", 0); err != nil {
		t.Fatalf("numParams=0 must skip the shape check: %v", err)
	}
	cases := []struct {
		name   string
		tamper func(c *Checkpoint) (*Env, string, int)
	}{
		{"method", func(c *Checkpoint) (*Env, string, int) { return env, "CFL", 3 }},
		{"seed", func(c *Checkpoint) (*Env, string, int) { return testEnv(43, 10, 5), "FedAvg", 3 }},
		{"rounds", func(c *Checkpoint) (*Env, string, int) { return testEnv(42, 11, 5), "FedAvg", 3 }},
		{"population", func(c *Checkpoint) (*Env, string, int) { return testEnv(42, 10, 6), "FedAvg", 3 }},
		{"params", func(c *Checkpoint) (*Env, string, int) { return env, "FedAvg", 4 }},
		{"round-range", func(c *Checkpoint) (*Env, string, int) { c.Round = 11; return env, "FedAvg", 3 }},
		{"rng-root", func(c *Checkpoint) (*Env, string, int) { c.RngRoot[0] ^= 1; return env, "FedAvg", 3 }},
		{"scenario-fp", func(c *Checkpoint) (*Env, string, int) { c.ScenarioFP = 7; return env, "FedAvg", 3 }},
	}
	for _, tc := range cases {
		c := base()
		e, method, np := tc.tamper(c)
		if err := c.Matches(e, method, np); err == nil {
			t.Errorf("%s mismatch not detected", tc.name)
		}
	}
}

// TestDecodeCheckpointTruncation: every proper prefix must fail cleanly.
func TestDecodeCheckpointTruncation(t *testing.T) {
	b := fullCheckpoint(t).Encode()
	for i := 0; i < len(b); i++ {
		if _, err := DecodeCheckpoint(b[:i]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", i, len(b))
		}
	}
}

// TestDecodeCheckpointCorruption: the whole-file crc32 catches any
// single-byte flip anywhere in the file, including the checksum itself.
func TestDecodeCheckpointCorruption(t *testing.T) {
	orig := fullCheckpoint(t).Encode()
	b := make([]byte, len(orig))
	for i := range orig {
		copy(b, orig)
		b[i] ^= 0x40
		if _, err := DecodeCheckpoint(b); err == nil {
			t.Fatalf("flipping byte %d of %d decoded without error", i, len(orig))
		}
	}
}

// TestDecodeCheckpointDuplicateSection: a crafted file repeating a
// section name (impossible via the API, trivial for an attacker) is
// rejected even with a valid checksum.
func TestDecodeCheckpointDuplicateSection(t *testing.T) {
	env := testEnv(1, 2, 2)
	c := NewCheckpoint(env, "M", 1, 1, 0)
	c.SetVec("aa", []float64{1})
	c.SetVec("ab", []float64{2})
	b := fullEncodeReplace(t, c, []byte("ab"), []byte("aa"))
	if _, err := DecodeCheckpoint(b); err == nil {
		t.Fatal("duplicate section name decoded without error")
	}
}

// fullEncodeReplace encodes c, substitutes the first occurrence of old
// with new (same length), and re-stamps a valid trailing crc — the
// canonical way to craft a "validly signed" hostile file.
func fullEncodeReplace(t *testing.T, c *Checkpoint, old, new []byte) []byte {
	t.Helper()
	b := c.Encode()
	i := bytes.Index(b, old)
	if i < 0 {
		t.Fatalf("pattern %q not found in encoding", old)
	}
	copy(b[i:], new)
	body := b[:len(b)-4]
	return appendU32(body, crc32IEEE(body))
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	orig := fullCheckpoint(t)
	if err := orig.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got.Encode(), orig.Encode()) {
		t.Fatal("file round-trip drifted")
	}
	// Overwrite must be atomic-replace, not append.
	if err := orig.WriteFile(path); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if got, err = ReadCheckpointFile(path); err != nil || !bytes.Equal(got.Encode(), orig.Encode()) {
		t.Fatalf("rewrite round-trip drifted: %v", err)
	}
}

func TestNewCheckpointRngRootMatchesSeed(t *testing.T) {
	env := testEnv(99, 4, 3)
	c := NewCheckpoint(env, "M", 0, 1, 0)
	var root rng.Rng
	root.Reseed(99)
	if c.RngRoot != root.State() {
		t.Fatal("RngRoot does not pin the seed's root stream")
	}
}

// FuzzDecodeCheckpoint: arbitrary bytes must never panic the decoder,
// and anything it accepts must re-encode to a decodable equal form.
func FuzzDecodeCheckpoint(f *testing.F) {
	valid := fullCheckpoint(f).Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("FCKP"))
	f.Add([]byte{})
	env := testEnv(0, 1, 1)
	tiny := NewCheckpoint(env, "M", 0, 0, 0)
	f.Add(tiny.Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeCheckpoint(b)
		if err != nil {
			return
		}
		again, err := DecodeCheckpoint(c.Encode())
		if err != nil {
			t.Fatalf("accepted checkpoint does not re-encode cleanly: %v", err)
		}
		if !bytes.Equal(again.Encode(), c.Encode()) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}

func BenchmarkCheckpointEncode(b *testing.B) {
	env := testEnv(7, 100, 64)
	c := NewCheckpoint(env, "FedAvg", 50, 4096, 1)
	vec := make([]float64, 4096)
	for i := range vec {
		vec[i] = float64(i) * 0.001
	}
	c.SetVec("global", vec)
	c.SetVec("stale/cache", vec)
	c.SetInts("stale/cached_at", make([]int64, 64))
	c.CaptureResult(&Result{PerClientAcc: make([]float64, 64)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBytes = c.Encode()
	}
	b.SetBytes(int64(len(sinkBytes)))
}

func BenchmarkCheckpointDecode(b *testing.B) {
	env := testEnv(7, 100, 64)
	c := NewCheckpoint(env, "FedAvg", 50, 4096, 1)
	vec := make([]float64, 4096)
	for i := range vec {
		vec[i] = float64(i) * 0.001
	}
	c.SetVec("global", vec)
	c.SetVec("stale/cache", vec)
	c.SetInts("stale/cached_at", make([]int64, 64))
	c.CaptureResult(&Result{PerClientAcc: make([]float64, 64)})
	enc := c.Encode()
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sinkCkpt, err = DecodeCheckpoint(enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}

var (
	sinkBytes []byte
	sinkCkpt  *Checkpoint
)

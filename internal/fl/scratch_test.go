package fl

import (
	"testing"

	"fedclust/internal/data"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

// TestTrainScratchReuseBitEquivalent drives one TrainScratch and one
// pooled model through a sequence of client visits with evaluation
// passes interleaved (different batch size, as the engine does) and
// checks every visit's resulting parameters are bit-identical to a run
// with a fresh model and fresh scratch per visit. This is the pooled
// steady state the zero-alloc refactor must not perturb: workspace
// residue, optimizer velocity, loss-head buffers, and batcher state all
// carry over between visits and must not change the arithmetic.
func TestTrainScratchReuseBitEquivalent(t *testing.T) {
	mk := func(seed uint64, n int) *data.Dataset { return tinyDataset(n, rng.New(seed)) }
	visits := []*data.Dataset{
		mk(1, 33), // partial final batch (33 % 8 != 0)
		mk(2, 8),  // exactly one batch
		mk(3, 1),  // single example: batch-size-1 shapes
		mk(4, 40), // full batches only
	}

	w0 := nn.FlattenParams(tinyFactory(rng.New(9)))
	cfg := LocalConfig{Epochs: 2, BatchSize: 8, LR: 0.1, Momentum: 0.9}

	// Reused path: one model, one scratch, eval interleaved.
	pooled := tinyFactory(rng.New(9))
	var ts TrainScratch
	var got [][]float64
	for i, d := range visits {
		nn.LoadParams(pooled, w0)
		ts.LocalUpdate(pooled, d, cfg, rng.New(uint64(100+i)))
		got = append(got, nn.FlattenParams(pooled))
		Evaluate(pooled, d, 5) // different batch size → workspace churn
	}

	// Fresh path: new model and scratch per visit, no eval.
	for i, d := range visits {
		fresh := tinyFactory(rng.New(9))
		nn.LoadParams(fresh, w0)
		var fts TrainScratch
		fts.LocalUpdate(fresh, d, cfg, rng.New(uint64(100+i)))
		want := nn.FlattenParams(fresh)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("visit %d (n=%d): param %d = %v, want %v (reuse not bit-equivalent)",
					i, d.Len(), j, got[i][j], want[j])
			}
		}
	}
}

// TestTrainScratchDropoutPooledMatchesFresh is the end-to-end form of
// the model-pool invariant-3 fix: with a Dropout factory, a model that
// already served another client must train exactly like a fresh one,
// because LocalUpdate rebases the dropout stream on the visit's rng.
func TestTrainScratchDropoutPooledMatchesFresh(t *testing.T) {
	factory := func(r *rng.Rng) *nn.Sequential {
		return nn.NewSequential(
			nn.NewDense(2, 8, r),
			nn.NewDropout(8, 0.3, r.Derive(7)),
			nn.NewDense(8, 2, r),
		)
	}
	dA := tinyDataset(24, rng.New(11))
	dB := tinyDataset(24, rng.New(12))
	cfg := LocalConfig{Epochs: 2, BatchSize: 8, LR: 0.1}

	w0 := nn.FlattenParams(factory(rng.New(13)))

	// Pooled: train on A first (advancing all streams), then visit B.
	pooled := factory(rng.New(13))
	var ts TrainScratch
	nn.LoadParams(pooled, w0)
	ts.LocalUpdate(pooled, dA, cfg, rng.New(21))
	nn.LoadParams(pooled, w0)
	ts.LocalUpdate(pooled, dB, cfg, rng.New(22))
	got := nn.FlattenParams(pooled)

	// Fresh: visit B directly.
	fresh := factory(rng.New(13))
	var fts TrainScratch
	nn.LoadParams(fresh, w0)
	fts.LocalUpdate(fresh, dB, cfg, rng.New(22))
	want := nn.FlattenParams(fresh)

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("param %d: pooled dropout model diverges from fresh (%v vs %v)", i, got[i], want[i])
		}
	}
}

package fl

import (
	"math"
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/wire"
)

func efRandVec(r *rng.Rng, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// TestErrorFeedbackInvariant pins the accumulator's defining identity:
// after Visit, reconstruction + residual == trained + previous residual
// (the target). Nothing the sparse frame drops is ever lost.
func TestErrorFeedbackInvariant(t *testing.T) {
	const n = 200
	r := rng.New(61)
	for _, c := range []wire.Codec{wire.TopK, wire.TopKQuant8} {
		ef := NewErrorFeedback(c, 0.05, 1, n)
		var s EFScratch
		start := efRandVec(r, n)
		prevRes := make([]float64, n)
		for round := 0; round < 5; round++ {
			out := efRandVec(r, n)
			target := make([]float64, n)
			for i := range target {
				target[i] = out[i] + prevRes[i]
			}
			ef.Compress(0, start, out, &s)
			for i := range target {
				if got := out[i] + ef.res[0][i]; math.Abs(got-target[i]) > 1e-12 {
					t.Fatalf("%s round %d coord %d: reconstruction+residual = %v, target %v",
						c, round, i, got, target[i])
				}
			}
			copy(prevRes, ef.res[0])
			copy(start, out) // next broadcast is the reconstruction
		}
	}
}

// TestErrorFeedbackKeepsTopCoordinates: the kept coordinates carry the
// target exactly under TopK, and the k chosen are the largest
// |target-start| movers.
func TestErrorFeedbackKeepsTopCoordinates(t *testing.T) {
	const n = 100
	ef := NewErrorFeedback(wire.TopK, 0.05, 1, n) // k = 5
	var s EFScratch
	start := make([]float64, n)
	out := make([]float64, n)
	big := []int{7, 23, 42, 77, 91}
	for i, ix := range big {
		out[ix] = float64(10 + i)
	}
	for i := 0; i < n; i++ {
		if out[i] == 0 {
			out[i] = 0.001
		}
	}
	ef.Compress(0, start, out, &s)
	for _, ix := range big {
		if ef.res[0][ix] != 0 {
			t.Errorf("kept coordinate %d left residual %v, want 0", ix, ef.res[0][ix])
		}
		if out[ix] == start[ix] {
			t.Errorf("kept coordinate %d was not applied", ix)
		}
	}
	dropped := 0
	for i := 0; i < n; i++ {
		if out[i] == 0.001 {
			t.Fatalf("dropped coordinate %d leaked its trained value into the reconstruction", i)
		}
		if ef.res[0][i] == 0.001 {
			dropped++
		}
	}
	if dropped != n-len(big) {
		t.Errorf("%d dropped coordinates carried into the residual, want %d", dropped, n-len(big))
	}
}

// TestErrorFeedbackVisitFrameShipsReconstruction: the frame Visit
// returns, applied to the receiver's copy of start, yields exactly the
// reconstruction the sender kept — sender and receiver bit-identical by
// construction.
func TestErrorFeedbackVisitFrameShipsReconstruction(t *testing.T) {
	const n = 150
	r := rng.New(62)
	for _, c := range []wire.Codec{wire.TopK, wire.TopKQuant8} {
		ef := NewErrorFeedback(c, 0.1, 1, n)
		var s EFScratch
		start := efRandVec(r, n)
		out := efRandVec(r, n)
		frame := ef.Visit(nil, 0, start, out, &s)
		if want := TrainResponseBytesSparse(c, n, wire.TopKCount(n, 0.1)) - msgFrameOverhead - updateMetaLen; len(frame) != int(want) {
			t.Errorf("%s: frame is %d bytes, sizes.go prices %d", c, len(frame), want)
		}
		receiver := append([]float64(nil), start...)
		if err := wire.ApplySparseInto(receiver, frame); err != nil {
			t.Fatal(err)
		}
		for i := range receiver {
			if receiver[i] != out[i] {
				t.Fatalf("%s coord %d: receiver %v, sender reconstruction %v", c, i, receiver[i], out[i])
			}
		}
	}
}

// TestErrorFeedbackNonFiniteResidualDropped: a NaN/Inf trained value is
// shipped (NaN scores rank highest, so the server's masking layer sees
// it) and whatever non-finite remainder would poison the residual is
// zeroed instead of compounding forever.
func TestErrorFeedbackNonFiniteResidualDropped(t *testing.T) {
	const n = 50
	ef := NewErrorFeedback(wire.TopK, 0.02, 1, n) // k = 1
	var s EFScratch
	start := make([]float64, n)
	out := make([]float64, n)
	out[3] = math.NaN()
	out[9] = math.Inf(1)
	ef.Compress(0, start, out, &s)
	for i, r := range ef.res[0] {
		if !isFinite(r) {
			t.Fatalf("residual %d is non-finite: %v", i, r)
		}
	}
}

func TestErrorFeedbackReset(t *testing.T) {
	const n = 30
	ef := NewErrorFeedback(wire.TopK, 0.1, 3, n)
	var s EFScratch
	r := rng.New(63)
	for client := 0; client < 3; client++ {
		ef.Compress(client, efRandVec(r, n), efRandVec(r, n), &s)
	}
	ef.Reset()
	for client := 0; client < 3; client++ {
		for i, v := range ef.res[client] {
			if v != 0 {
				t.Fatalf("client %d residual %d is %v after Reset", client, i, v)
			}
		}
	}
}

// TestErrorFeedbackCheckpointRoundTrip: SaveTo/LoadFrom restore the
// residual matrix bit-exactly and refuse identity mismatches.
func TestErrorFeedbackCheckpointRoundTrip(t *testing.T) {
	const nClients, n = 4, 40
	ef := NewErrorFeedback(wire.TopKQuant8, 0.1, nClients, n)
	var s EFScratch
	r := rng.New(64)
	for client := 0; client < nClients; client++ {
		ef.Compress(client, efRandVec(r, n), efRandVec(r, n), &s)
	}
	var ck Checkpoint
	ef.SaveTo(&ck)
	if !HasEFState(&ck) {
		t.Fatal("HasEFState is false after SaveTo")
	}

	restored := NewErrorFeedback(wire.TopKQuant8, 0.1, nClients, n)
	if err := restored.LoadFrom(&ck); err != nil {
		t.Fatal(err)
	}
	for client := 0; client < nClients; client++ {
		for i := range ef.res[client] {
			if restored.res[client][i] != ef.res[client][i] {
				t.Fatalf("client %d residual %d: restored %v, saved %v",
					client, i, restored.res[client][i], ef.res[client][i])
			}
		}
	}

	for name, other := range map[string]*ErrorFeedback{
		"codec mismatch": NewErrorFeedback(wire.TopK, 0.1, nClients, n),
		"frac mismatch":  NewErrorFeedback(wire.TopKQuant8, 0.2, nClients, n),
		"shape mismatch": NewErrorFeedback(wire.TopKQuant8, 0.1, nClients+1, n),
	} {
		if err := other.LoadFrom(&ck); err == nil {
			t.Errorf("%s: LoadFrom accepted foreign EF state", name)
		}
	}

	if HasEFState(&Checkpoint{}) {
		t.Error("HasEFState is true for a checkpoint without EF sections")
	}
}

// TestErrorFeedbackVisitZeroAllocWarm: the per-visit uplink path must
// not touch the heap once scratch is grown — same contract as the dense
// codecs, so sparse compression adds no per-round garbage.
func TestErrorFeedbackVisitZeroAllocWarm(t *testing.T) {
	const n = 4096
	r := rng.New(65)
	start := efRandVec(r, n)
	trained := efRandVec(r, n)
	out := make([]float64, n)
	for _, c := range []wire.Codec{wire.TopK, wire.TopKQuant8} {
		ef := NewErrorFeedback(c, 0.01, 1, n)
		var s EFScratch
		ef.Compress(0, start, out, &s) // warm the scratch
		if allocs := testing.AllocsPerRun(20, func() {
			copy(out, trained)
			ef.Compress(0, start, out, &s)
		}); allocs != 0 {
			t.Errorf("%s: warm Compress allocated %.1f times", c, allocs)
		}
	}
}

func BenchmarkErrorFeedbackVisit(b *testing.B) {
	const n = 1 << 16
	r := rng.New(66)
	start := efRandVec(r, n)
	trained := efRandVec(r, n)
	out := make([]float64, n)
	ef := NewErrorFeedback(wire.TopK, 0.01, 1, n)
	var s EFScratch
	ef.Compress(0, start, out, &s)
	b.ReportAllocs()
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(out, trained)
		ef.Compress(0, start, out, &s)
	}
}

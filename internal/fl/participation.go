package fl

import (
	"fmt"

	"fedclust/internal/data"
	"fedclust/internal/rng"
)

// RoundScenario models system heterogeneity layered over participation
// sampling: per-client compute speed and availability. Implementations
// (internal/scenario) must be pure — Outcome is a deterministic function
// of (client, round) alone, never of call order or call count — because
// the engine and the sampler both query it and determinism across worker
// counts depends on repeatable answers. Outcome must also not allocate:
// it runs inside the engine's zero-allocation warm round.
type RoundScenario interface {
	// Outcome reports how invited client c behaves in a round, given the
	// configured local epoch count. done is the number of local epochs
	// the client finishes before the round's virtual deadline (0 = its
	// update does not arrive on time). lag is the number of additional
	// rounds the client's full-epoch update needs before it would reach
	// the server: 0 means on time, k > 0 means it arrives k rounds late
	// (semi-async aggregators consume it then), and lag < 0 means the
	// client is offline this round and never reports.
	//
	// Invariants implementations must keep: done == epochs ⇔ lag == 0,
	// and done == 0 ⇒ lag != 0 (a client that finished nothing by the
	// deadline is either late or offline).
	Outcome(client, round, epochs int) (done, lag int)
}

// HostileScenario extends RoundScenario with adversarial behavior: data
// poisoning / concept drift (TrainData) and byzantine uplink corruption
// (CorruptUpdate). The engine type-asserts Participation.Scenario to
// this interface, so benign scenario models are untouched. The same
// purity rules apply — both methods must be deterministic functions of
// their arguments (plus the scenario seed), never of call order, worker
// id, or wall clock; CorruptUpdate must not allocate.
type HostileScenario interface {
	RoundScenario
	// CorruptUpdate applies the client's byzantine uplink corruption to
	// out in place, given the round's broadcast starting point (start may
	// be nil when no reference vector exists, e.g. warmup feature
	// collection before a broadcast). Returns whether out was modified;
	// benign and data-poisoning clients return false.
	CorruptUpdate(client, round int, out, start []float64) bool
	// TrainData returns the dataset the client actually trains on this
	// round — base itself for benign stationary clients, a poisoned or
	// drifted view otherwise. Views must be stable: the same (client,
	// phase) always yields identical contents.
	TrainData(client, round int, base *data.Dataset) *data.Dataset
}

// Participation controls per-round client sampling and failure injection.
// The zero value means full participation with no failures — the setting
// of the paper's experiments. FedAvg-style trainers honor it; clustered
// trainers in this repo keep full participation (as the clustered-FL
// literature assumes) and document so.
type Participation struct {
	// Fraction of clients invited each round (McMahan et al.'s C).
	// 0 or 1 means everyone.
	Fraction float64
	// DropRate is the probability an invited client fails to report its
	// update (crash, network loss). The server aggregates whoever
	// reported.
	DropRate float64
	// MinClients lower-bounds the invited set (default 1).
	MinClients int
	// Scenario, when non-nil, layers a system-heterogeneity model over
	// the sampled sets: invited clients that the scenario marks offline
	// or too slow to finish a single epoch by the round's deadline are
	// removed from reported (on top of DropRate losses), and clients
	// that finish only part of their local pass report partial work.
	// Unlike the DropRate path, a scenario round may report nobody —
	// the engine skips aggregation for such wasted rounds.
	Scenario RoundScenario
}

// Validate panics on out-of-range settings.
func (p Participation) Validate() {
	if p.Fraction < 0 || p.Fraction > 1 {
		panic(fmt.Sprintf("fl: participation fraction %v out of [0,1]", p.Fraction))
	}
	if p.DropRate < 0 || p.DropRate >= 1 {
		panic(fmt.Sprintf("fl: drop rate %v out of [0,1)", p.DropRate))
	}
	if p.MinClients < 0 {
		panic(fmt.Sprintf("fl: negative MinClients %d", p.MinClients))
	}
}

// SampleRound draws the round's invited and reporting client sets,
// deterministically from the environment seed. Without a Scenario,
// reported is always non-empty (if every invited client would drop, one
// survivor is kept so the round is not wasted); a Scenario may empty it
// — a round where every device missed the deadline is genuinely wasted.
func (e *Env) SampleRound(round int) (invited, reported []int) {
	return e.SampleRoundInto(round, nil, nil)
}

// SampleRoundInto is SampleRound appending into caller-owned buffers
// (reused across rounds by the round engine so steady-state sampling
// allocates nothing once the buffers have grown). The returned slices
// are backed by the buffers; the draws are variate-for-variate identical
// to SampleRound's.
func (e *Env) SampleRoundInto(round int, invitedBuf, reportedBuf []int) (invited, reported []int) {
	p := e.Participation
	p.Validate()
	n := len(e.Clients)
	var r rng.Rng
	e.ClientRngInto(&r, -1, round) // server-side stream for this round
	// Invited set.
	invited = invitedBuf[:0]
	if p.Fraction == 0 || p.Fraction >= 1 {
		for i := 0; i < n; i++ {
			invited = append(invited, i)
		}
	} else {
		k := int(p.Fraction*float64(n) + 0.5)
		if k < p.MinClients {
			k = p.MinClients
		}
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		for i := 0; i < n; i++ {
			invited = append(invited, 0)
		}
		r.PermInto(invited)
		invited = invited[:k]
	}
	// Failure injection.
	reported = reportedBuf[:0]
	if p.DropRate == 0 {
		reported = append(reported, invited...)
	} else {
		for _, c := range invited {
			if r.Float64() >= p.DropRate {
				reported = append(reported, c)
			}
		}
		if len(reported) == 0 {
			reported = append(reported, invited[r.Intn(len(invited))])
		}
	}
	// Scenario layer: drop clients whose update misses the round's
	// virtual deadline entirely. The filter runs after (and independent
	// of) the DropRate draws, so enabling a scenario never disturbs the
	// crash-loss stream — and a scenario whose every outcome is on-time
	// leaves reported bit-identical to the scenario-free draw.
	if p.Scenario != nil {
		kept := reported[:0]
		for _, c := range reported {
			if done, _ := p.Scenario.Outcome(c, round, e.scenarioEpochs()); done > 0 {
				kept = append(kept, c)
			}
		}
		reported = kept
	}
	return invited, reported
}

// scenarioEpochs is the configured local epoch count handed to scenario
// outcome queries (floored at 1 so a zero-valued LocalConfig cannot make
// every client a dropout).
func (e *Env) scenarioEpochs() int {
	if e.Local.Epochs < 1 {
		return 1
	}
	return e.Local.Epochs
}

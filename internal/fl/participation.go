package fl

import (
	"fmt"

	"fedclust/internal/rng"
)

// Participation controls per-round client sampling and failure injection.
// The zero value means full participation with no failures — the setting
// of the paper's experiments. FedAvg-style trainers honor it; clustered
// trainers in this repo keep full participation (as the clustered-FL
// literature assumes) and document so.
type Participation struct {
	// Fraction of clients invited each round (McMahan et al.'s C).
	// 0 or 1 means everyone.
	Fraction float64
	// DropRate is the probability an invited client fails to report its
	// update (crash, network loss). The server aggregates whoever
	// reported.
	DropRate float64
	// MinClients lower-bounds the invited set (default 1).
	MinClients int
}

// Validate panics on out-of-range settings.
func (p Participation) Validate() {
	if p.Fraction < 0 || p.Fraction > 1 {
		panic(fmt.Sprintf("fl: participation fraction %v out of [0,1]", p.Fraction))
	}
	if p.DropRate < 0 || p.DropRate >= 1 {
		panic(fmt.Sprintf("fl: drop rate %v out of [0,1)", p.DropRate))
	}
	if p.MinClients < 0 {
		panic(fmt.Sprintf("fl: negative MinClients %d", p.MinClients))
	}
}

// SampleRound draws the round's invited and reporting client sets,
// deterministically from the environment seed. reported is always
// non-empty (if every invited client would drop, one survivor is kept so
// the round is not wasted).
func (e *Env) SampleRound(round int) (invited, reported []int) {
	return e.SampleRoundInto(round, nil, nil)
}

// SampleRoundInto is SampleRound appending into caller-owned buffers
// (reused across rounds by the round engine so steady-state sampling
// allocates nothing once the buffers have grown). The returned slices
// are backed by the buffers; the draws are variate-for-variate identical
// to SampleRound's.
func (e *Env) SampleRoundInto(round int, invitedBuf, reportedBuf []int) (invited, reported []int) {
	p := e.Participation
	p.Validate()
	n := len(e.Clients)
	var r rng.Rng
	e.ClientRngInto(&r, -1, round) // server-side stream for this round
	// Invited set.
	invited = invitedBuf[:0]
	if p.Fraction == 0 || p.Fraction >= 1 {
		for i := 0; i < n; i++ {
			invited = append(invited, i)
		}
	} else {
		k := int(p.Fraction*float64(n) + 0.5)
		if k < p.MinClients {
			k = p.MinClients
		}
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		for i := 0; i < n; i++ {
			invited = append(invited, 0)
		}
		r.PermInto(invited)
		invited = invited[:k]
	}
	// Failure injection.
	reported = reportedBuf[:0]
	if p.DropRate == 0 {
		return invited, append(reported, invited...)
	}
	for _, c := range invited {
		if r.Float64() >= p.DropRate {
			reported = append(reported, c)
		}
	}
	if len(reported) == 0 {
		reported = append(reported, invited[r.Intn(len(invited))])
	}
	return invited, reported
}

package fl

import (
	"math"
	"testing"

	"fedclust/internal/rng"
)

// randVecs draws n seeded vectors of the given dimension plus positive
// report weights — a benign gather.
func randVecs(n, dim int, seed uint64) ([][]float64, []float64) {
	r := rng.New(seed)
	vecs := make([][]float64, n)
	ws := make([]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		vecs[i] = v
		ws[i] = 0.5 + r.Float64()
	}
	return vecs, ws
}

// TestTrimmedZeroFracIsBitExactMean: the "robust aggregators equal plain
// averaging at byzantine fraction 0" property, at the bit level — a
// trimmed mean with nothing to trim must take the exact
// WeightedAverageInto path, so a benign hostile config is a no-op.
func TestTrimmedZeroFracIsBitExactMean(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		vecs, ws := randVecs(n, 37, uint64(100+n))
		want := make([]float64, 37)
		WeightedAverageInto(want, vecs, ws)
		for _, frac := range []float64{0, 0.01} { // ⌊0.01·n⌋ = 0 for n ≤ 16
			got := make([]float64, 37)
			tm := &TrimmedMean{Frac: frac}
			if s := tm.Aggregate(got, vecs, ws); s != 0 {
				t.Fatalf("n=%d frac=%v: suspects=%d, want 0", n, frac, s)
			}
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("n=%d frac=%v coord %d: %x != %x",
						n, frac, j, got[j], want[j])
				}
			}
		}
	}
}

// TestKrumSmallGatherFallsBackToMean: below Krum's scoring threshold
// (n < 3, or n−f−2 < 1) the strategy must degrade to the bit-exact
// weighted mean with zero suspects — tiny clusters stay well-defined.
func TestKrumSmallGatherFallsBackToMean(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		frac := 0.4 // n=3: f=1, closest=0 → fallback
		vecs, ws := randVecs(n, 8, uint64(200+n))
		want := make([]float64, 8)
		WeightedAverageInto(want, vecs, ws)
		got := make([]float64, 8)
		k := &Krum{Frac: frac}
		if s := k.Aggregate(got, vecs, ws); s != 0 {
			t.Fatalf("n=%d: suspects=%d, want 0 (fallback)", n, s)
		}
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("n=%d coord %d diverged from mean", n, j)
			}
		}
	}
}

// TestAggregatorsAgreeOnConsensus: when every input is the same vector,
// every strategy must return it exactly — there is nothing to disagree
// about, whatever gets trimmed, outvoted, or deselected.
func TestAggregatorsAgreeOnConsensus(t *testing.T) {
	base := []float64{1.5, -2.25, 0, 1e-9, 3e7}
	n := 7
	vecs := make([][]float64, n)
	ws := make([]float64, n)
	for i := range vecs {
		vecs[i] = append([]float64(nil), base...)
		ws[i] = float64(i + 1)
	}
	for _, a := range []Aggregator{
		&Mean{}, &TrimmedMean{Frac: 0.2}, &Median{},
		&Krum{Frac: 0.2}, &Krum{Frac: 0.2, M: 3},
	} {
		got := make([]float64, len(base))
		a.Aggregate(got, vecs, ws)
		for j := range got {
			// Averaging strategies divide sum(w·v) by sum(w), so identical
			// inputs reproduce to rounding, not necessarily to the bit.
			if diff := math.Abs(got[j] - base[j]); diff > 1e-12*math.Abs(base[j]) {
				t.Errorf("%s: coord %d = %v, want %v", a.Name(), j, got[j], base[j])
			}
		}
	}
}

// TestRobustAggregatorsRejectOutlier: one attacker reports a hugely
// scaled vector. The mean is dragged; trimmed/median/krum must stay
// within the honest range at every coordinate.
func TestRobustAggregatorsRejectOutlier(t *testing.T) {
	vecs, ws := randVecs(10, 24, 42)
	for j := range vecs[3] {
		vecs[3][j] = 1e6 // the attacker
	}
	mean := make([]float64, 24)
	WeightedAverageInto(mean, vecs, ws)
	var dragged bool
	for j := range mean {
		if math.Abs(mean[j]) > 100 {
			dragged = true
		}
	}
	if !dragged {
		t.Fatal("test setup: the outlier should visibly drag the mean")
	}
	for _, a := range []Aggregator{
		&TrimmedMean{Frac: 0.2}, &Median{}, &Krum{Frac: 0.2}, &Krum{Frac: 0.2, M: 3},
	} {
		got := make([]float64, 24)
		suspects := a.Aggregate(got, vecs, ws)
		for j := range got {
			if math.Abs(got[j]) > 100 {
				t.Errorf("%s: coord %d = %v leaked the outlier", a.Name(), j, got[j])
			}
		}
		if _, isMedian := a.(*Median); !isMedian && suspects == 0 {
			t.Errorf("%s: suspected nobody with an attacker present", a.Name())
		}
	}
}

// TestKrumSelectsAnInputVector: classic Krum (M=1) returns one of the
// reported vectors verbatim — and with a majority clustered tightly, a
// clustered one, never the far-away attacker.
func TestKrumSelectsAnInputVector(t *testing.T) {
	vecs, ws := randVecs(9, 6, 7)
	for i := range vecs { // tight honest cluster around +1
		for j := range vecs[i] {
			vecs[i][j] = 1 + 0.01*vecs[i][j]
		}
	}
	for j := range vecs[2] {
		vecs[2][j] = -50 // attacker
	}
	got := make([]float64, 6)
	k := &Krum{Frac: 0.2, M: 1}
	if s := k.Aggregate(got, vecs, ws); s != 8 {
		t.Fatalf("suspects=%d, want n-1=8", s)
	}
	match := -1
	for i := range vecs {
		same := true
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(vecs[i][j]) {
				same = false
				break
			}
		}
		if same {
			match = i
			break
		}
	}
	if match < 0 {
		t.Fatal("Krum output is not one of the input vectors")
	}
	if match == 2 {
		t.Fatal("Krum selected the attacker")
	}
}

// TestMedianWeightedSemantics: the weighted median follows the report
// weights — a heavy honest majority outvotes a light extreme value.
func TestMedianWeightedSemantics(t *testing.T) {
	vecs := [][]float64{{0}, {1}, {100}}
	ws := []float64{3, 3, 1}
	got := make([]float64, 1)
	(&Median{}).Aggregate(got, vecs, ws)
	// total=7, half=3.5: cum after {0} is 3 (<3.5), after {1} is 6 — the
	// weighted median is 1.
	if got[0] != 1 {
		t.Fatalf("weighted median = %v, want 1", got[0])
	}
	// All-zero weights: unweighted median of {0,1,100} is 1.
	(&Median{}).Aggregate(got, vecs, []float64{0, 0, 0})
	if got[0] != 1 {
		t.Fatalf("all-zero-weight median = %v, want 1", got[0])
	}
}

// TestTrimmedSuspectCount: ⌊Frac·n⌋ per side, clamped to leave a
// survivor, reported as 2k.
func TestTrimmedSuspectCount(t *testing.T) {
	for _, c := range []struct {
		n    int
		frac float64
		want int
	}{{10, 0.2, 4}, {10, 0.5, 8}, {3, 0.4, 2}, {2, 0.4, 0}, {5, 0.1, 0}} {
		vecs, ws := randVecs(c.n, 4, uint64(c.n))
		got := make([]float64, 4)
		tm := &TrimmedMean{Frac: c.frac}
		if s := tm.Aggregate(got, vecs, ws); s != c.want {
			t.Errorf("n=%d frac=%v: suspects=%d, want %d", c.n, c.frac, s, c.want)
		}
	}
}

// TestNewAggregator: flag-name round trips, the nil fast path for the
// mean, and the rejected fraction domain.
func TestNewAggregator(t *testing.T) {
	for _, name := range []string{"", "mean", "fedavg"} {
		if a, err := NewAggregator(name, 0.2); err != nil || a != nil {
			t.Errorf("NewAggregator(%q) = (%v, %v), want (nil, nil)", name, a, err)
		}
	}
	for name, want := range map[string]string{
		"trimmed": "trimmed(0.2)", "trimmed-mean": "trimmed(0.2)",
		"median": "median", "coordinate-median": "median",
		"krum": "krum(0.2,1)", "multi-krum": "krum(0.2,n-f)",
	} {
		a, err := NewAggregator(name, 0.2)
		if err != nil || a == nil {
			t.Fatalf("NewAggregator(%q): %v", name, err)
		}
		if a.Name() != want {
			t.Errorf("NewAggregator(%q).Name() = %q, want %q", name, a.Name(), want)
		}
	}
	for _, frac := range []float64{-0.1, 0.5, 0.9, math.NaN()} {
		if _, err := NewAggregator("trimmed", frac); err == nil {
			t.Errorf("NewAggregator(trimmed, %v): want error", frac)
		}
	}
	if _, err := NewAggregator("bogus", 0.2); err == nil {
		t.Error("NewAggregator(bogus): want error")
	}
	if AggregatorName(nil) != "mean" {
		t.Error(`AggregatorName(nil) != "mean"`)
	}
}

// TestRobustInputContracts: the shared input checks panic on aliasing and
// invalid weights, like WeightedAverageInto.
func TestRobustInputContracts(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	vecs, ws := randVecs(4, 3, 9)
	dst := make([]float64, 3)
	mustPanic("alias", func() {
		(&Median{}).Aggregate(vecs[0], vecs, ws)
	})
	mustPanic("nan weight", func() {
		(&TrimmedMean{Frac: 0.3}).Aggregate(dst, vecs, []float64{1, math.NaN(), 1, 1})
	})
	mustPanic("negative weight", func() {
		(&Krum{Frac: 0.3}).Aggregate(dst, vecs, []float64{1, -1, 1, 1})
	})
	mustPanic("length mismatch", func() {
		(&Median{}).Aggregate(dst, [][]float64{{1, 2, 3}, {1, 2}}, []float64{1, 1})
	})
	mustPanic("empty", func() {
		(&Median{}).Aggregate(dst, nil, nil)
	})
}

// TestAggregatorsAreScratchStable: reusing one strategy value across
// calls (the engine holds it for the whole run) must not let scratch
// state leak between gathers of different sizes.
func TestAggregatorsAreScratchStable(t *testing.T) {
	for _, a := range []Aggregator{
		&TrimmedMean{Frac: 0.2}, &Median{}, &Krum{Frac: 0.2, M: 3},
	} {
		var first []float64
		for trial := 0; trial < 3; trial++ {
			// Interleave a different-shaped gather to dirty the scratch.
			v2, w2 := randVecs(13, 5, 999)
			a.Aggregate(make([]float64, 5), v2, w2)

			vecs, ws := randVecs(8, 11, 55)
			got := make([]float64, 11)
			a.Aggregate(got, vecs, ws)
			if first == nil {
				first = got
				continue
			}
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(first[j]) {
					t.Fatalf("%s: trial %d coord %d drifted", a.Name(), trial, j)
				}
			}
		}
	}
}

package fl

import (
	"fedclust/internal/data"
	"fedclust/internal/nn"
	"fedclust/internal/opt"
	"fedclust/internal/rng"
)

// This file is the float32 compute path of local training and
// evaluation (DESIGN.md §10). Master weights stay float64 everywhere —
// the scratch keeps a float32 shadow replica of the worker's model,
// rounds the incoming parameters into it once per visit, runs the whole
// local pass in float32 (kernels in internal/tensor's *32 family), and
// widens the result back. Widening is exact, so the trained float32
// weights survive the float64 round-trip bit-identically — which is
// what makes the transport's Float32 wire frames a true zero-convert
// fast path (see Params32).

// shadowCompatible reports whether the mirror's parameter tensors line
// up 1:1 in size with model's, i.e. whether AssignParams32 would accept
// the pair. Pooled execution reuses one shadow across every model of an
// environment (they share an architecture), so this check is what lets
// the mirror survive a model-pointer change without rebuilding.
func shadowCompatible(sh *nn.Sequential32, model *nn.Sequential) bool {
	sp, mp := sh.Params(), model.Params()
	if len(sp) != len(mp) {
		return false
	}
	for i := range sp {
		if sp[i].Size() != mp[i].Size() {
			return false
		}
	}
	return true
}

// shadowFor returns the scratch's float32 replica structured like
// model, reusing the cached mirror when compatible and rebuilding it
// otherwise. Returns nil when the architecture has no float32 mirror
// (the caller then stays on the float64 path); the failure is
// remembered so later visits don't retry.
func (ts *TrainScratch) shadowFor(model *nn.Sequential) *nn.Sequential32 {
	if ts.shadow != nil && shadowCompatible(ts.shadow, model) {
		return ts.shadow
	}
	if ts.mirrorFailed {
		return nil
	}
	m := nn.Mirror32(model)
	if m == nil {
		ts.mirrorFailed = true
		return nil
	}
	ts.shadow = m
	ts.shadowSrc = model
	return m
}

// localUpdate32 is LocalUpdate on the float32 path. It mirrors the
// float64 flow statement for statement — same batch shuffling draws,
// same stochastic-layer rebasing keys, same update order — so the only
// divergence from the reference is float32 rounding. ok=false means the
// model has no float32 mirror and the caller must run float64.
func (ts *TrainScratch) localUpdate32(model *nn.Sequential, d *data.Dataset, cfg LocalConfig, r *rng.Rng) (loss float64, ok bool) {
	sh := ts.shadowFor(model)
	if sh == nil {
		return 0, false
	}
	nn.AssignParams32(sh, model)
	sh.SeedStep(r)
	params, grads := sh.Params(), sh.Grads()
	var proxRef []float32
	if cfg.ProxMu > 0 {
		n := sh.NumParams()
		if cap(ts.proxRef32) < n {
			ts.proxRef32 = make([]float32, n)
		}
		proxRef = ts.proxRef32[:n]
		nn.FlattenParams32Into(sh, proxRef)
	}
	if ts.sgd32 == nil {
		ts.sgd32 = opt.NewSGD32(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	} else {
		ts.sgd32.Reconfigure(cfg.LR, cfg.Momentum, cfg.WeightDecay)
		ts.sgd32.Reset()
	}
	var totalLoss float64
	batches := 0
	bt := d.Batcher32(cfg.BatchSize)
	for e := 0; e < cfg.Epochs; e++ {
		bt.Reset(r)
		for {
			b, more := bt.Next()
			if !more {
				break
			}
			for _, g := range grads {
				g.Zero()
			}
			logits := sh.Forward(b.X, true)
			l, grad, _ := ts.ce32.Loss(logits, b.Y)
			sh.Backward(grad)
			if cfg.ProxMu > 0 {
				opt.AddProximal32(params, grads, proxRef, cfg.ProxMu)
			}
			ts.sgd32.Step(params, grads)
			totalLoss += l
			batches++
		}
	}
	nn.CopyParams64(model, sh)
	ts.ranF32 = true
	return totalLoss / float64(batches), true
}

// Params32 returns the trained float32 parameter vector of the last
// LocalUpdate when it ran on the float32 path, flattened into a reused
// buffer — the transport's zero-convert source for Float32 wire frames.
// Because widening back to float64 is exact, the returned bits equal
// what encoding the float64 model into a Float32 frame would produce;
// the fast path changes no observable value, only skips the converts.
// The slice is overwritten by the next call; ok=false means the last
// update ran float64 and callers must encode from the model.
func (ts *TrainScratch) Params32() (vec []float32, ok bool) {
	if !ts.ranF32 || ts.shadow == nil {
		return nil, false
	}
	n := ts.shadow.NumParams()
	if cap(ts.flat32) < n {
		ts.flat32 = make([]float32, n)
	}
	ts.flat32 = ts.flat32[:n]
	nn.FlattenParams32Into(ts.shadow, ts.flat32)
	return ts.flat32, true
}

// EvaluateCE32 is EvaluateCE on the float32 compute path: every batch
// runs the float32 forward pass and the float64-accumulating loss head.
// The caller owns the shadow and must have loaded the parameters it
// wants evaluated (see TrainScratch.Evaluate and the eval protocol's
// shadow32).
func EvaluateCE32(sh *nn.Sequential32, d *data.Dataset, batchSize int, ce *nn.SoftmaxCE32) (loss, acc float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	var lossSum float64
	correct := 0
	bt := d.Batcher32(batchSize)
	bt.Reset(nil)
	for {
		b, ok := bt.Next()
		if !ok {
			break
		}
		logits := sh.Forward(b.X, false)
		l, _, _ := ce.Loss(logits, b.Y)
		lossSum += l * float64(len(b.Y))
		a := nn.Accuracy32(logits, b.Y)
		correct += int(a*float64(len(b.Y)) + 0.5)
	}
	return lossSum / float64(d.Len()), float64(correct) / float64(d.Len())
}

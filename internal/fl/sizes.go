package fl

import "fedclust/internal/wire"

// The transport's message geometry, mirrored here so in-process runs can
// price exactly what a networked run would measure. internal/transport
// asserts these against its real frame layout (it imports fl; the
// reverse would cycle), so the two cannot drift silently.
const (
	// msgFrameOverhead is the per-message multiplexing envelope: 4-byte
	// length prefix + 1-byte message type.
	msgFrameOverhead = 5
	// trainMetaLen is the train-request metadata ahead of the parameter
	// frame: request id, client, round, epochs, batch, seed-hint, layer
	// (7×u32) + lr, mu, deadline, drop (4×f64).
	trainMetaLen = 7*4 + 4*8
	// updateMetaLen is the update-response metadata ahead of the
	// parameter frame: request id (u32) + status byte.
	updateMetaLen = 4 + 1
)

// TrainRequestBytes is the full wire size of one server→client train
// request carrying an n-vector under codec c — envelope, metadata, and
// encoded parameter frame.
func TrainRequestBytes(c wire.Codec, n int) int64 {
	return int64(msgFrameOverhead + trainMetaLen + wire.EncodedSize(c, n))
}

// TrainResponseBytes is the full wire size of one client→server update
// response carrying a dense n-vector under codec c.
func TrainResponseBytes(c wire.Codec, n int) int64 {
	return int64(msgFrameOverhead + updateMetaLen + wire.EncodedSize(c, n))
}

// TrainResponseBytesSparse is TrainResponseBytes for a sparse uplink
// keeping k of n coordinates; dense codecs ignore k.
func TrainResponseBytesSparse(c wire.Codec, n, k int) int64 {
	return int64(msgFrameOverhead + updateMetaLen + wire.EncodedSizeSparse(c, n, k))
}

// DefaultTopKFrac is the kept fraction a sparse codec runs at when the
// environment leaves TopKFrac zero — the paper-standard 1%.
const DefaultTopKFrac = 0.01

// NormalizeTopKFrac maps an Env.TopKFrac setting to the effective kept
// fraction: zero (unset) becomes DefaultTopKFrac, and values are clamped
// to (0, 1].
func NormalizeTopKFrac(f float64) float64 {
	if f <= 0 {
		return DefaultTopKFrac
	}
	if f > 1 {
		return 1
	}
	return f
}

// CommPricing fixes how CommStats converts scalar counts into framed
// transport bytes: the downlink codec, the uplink codec, and — for
// sparse uplinks — the kept fraction. The zero value prices both
// directions as dense Float64 frames, the historical behavior.
type CommPricing struct {
	Down   wire.Codec
	Up     wire.Codec
	UpFrac float64
}

// PricingFor derives the pricing for an environment's codec selection:
// the uplink carries c, the downlink carries c.Downlink() (sparse codecs
// broadcast dense), and sparse uplinks keep NormalizeTopKFrac(frac).
func PricingFor(c wire.Codec, frac float64) CommPricing {
	p := CommPricing{Down: c.Downlink(), Up: c}
	if c.Sparse() {
		p.UpFrac = NormalizeTopKFrac(frac)
	}
	return p
}

// UploadBytesFor returns the priced wire size of one client's uplink of
// an n-vector under this pricing.
func (p CommPricing) UploadBytesFor(n int) int64 {
	if p.Up.Sparse() {
		return TrainResponseBytesSparse(p.Up, n, wire.TopKCount(n, p.UpFrac))
	}
	return TrainResponseBytes(p.Up, n)
}

// DownloadBytesFor returns the priced wire size of one client's downlink
// of an n-vector under this pricing.
func (p CommPricing) DownloadBytesFor(n int) int64 {
	return TrainRequestBytes(p.Down, n)
}

//go:build !race

// Steady-state allocation regression: a warm region submission must not
// allocate — that property is what lets the round engine run whole
// rounds allocation-free on top of the pool. Excluded under -race
// because the race runtime instruments allocations.

package sched

import (
	"sync/atomic"
	"testing"
)

// TestRunZeroAllocs: a warm Run with a persistent task closure performs
// zero heap allocations (wake sends and atomic adds only).
func TestRunZeroAllocs(t *testing.T) {
	p := New()
	defer p.Shutdown()
	var sink atomic.Int64
	fn := func(_, i int) { sink.Add(int64(i)) }
	p.Run(64, 4, fn) // spawn and warm the workers
	if n := testing.AllocsPerRun(100, func() { p.Run(64, 4, fn) }); n != 0 {
		t.Fatalf("warm Run allocates %v times, want 0", n)
	}
}

// TestSerialFallbackZeroAllocs: the inline serial paths (width 1, and a
// shut-down pool) also stay allocation-free.
func TestSerialFallbackZeroAllocs(t *testing.T) {
	p := New()
	var sink atomic.Int64
	fn := func(_, i int) { sink.Add(int64(i)) }
	if n := testing.AllocsPerRun(100, func() { p.Run(64, 1, fn) }); n != 0 {
		t.Fatalf("width-1 Run allocates %v times, want 0", n)
	}
	p.Shutdown()
	if n := testing.AllocsPerRun(100, func() { p.Run(64, 4, fn) }); n != 0 {
		t.Fatalf("shut-down Run allocates %v times, want 0", n)
	}
}

package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// benchTask is a tiny task so the benchmarks measure pure dispatch
// overhead: region setup, wake, index handoff, barrier.
var benchSink atomic.Int64

func benchTask(_, i int) { benchSink.Add(int64(i)) }

// BenchmarkPoolRun measures one warm work-sharing region (64 items,
// width 4) — the steady-state cost the round engine pays per parallel
// phase.
func BenchmarkPoolRun(b *testing.B) {
	p := New()
	defer p.Shutdown()
	p.Run(64, 4, benchTask)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(64, 4, benchTask)
	}
}

// BenchmarkGoroutinePerRegion is the PR 2 baseline this pool replaces: a
// fresh filled channel plus fresh goroutines per parallel phase
// (fl.ParallelForWorker's old implementation, reproduced here).
func BenchmarkGoroutinePerRegion(b *testing.B) {
	run := func(n, workers int, fn func(worker, i int)) {
		idx := make(chan int, n)
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for i := range idx {
					fn(worker, i)
				}
			}(w)
		}
		wg.Wait()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(64, 4, benchTask)
	}
}

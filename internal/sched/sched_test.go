package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunCoversAllIndices: every item runs exactly once, for widths
// below, at, and above the item count.
func TestRunCoversAllIndices(t *testing.T) {
	p := New()
	defer p.Shutdown()
	for _, width := range []int{1, 2, 3, 7, 64, 300} {
		const n = 257
		counts := make([]int32, n)
		p.Run(n, width, func(_, i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("width %d: index %d run %d times", width, i, c)
			}
		}
	}
}

// TestRunWorkerIDsStableAndDisjoint: ids lie in [0, min(width, n)) and a
// given id never runs two items concurrently, so per-worker scratch
// needs no locks.
func TestRunWorkerIDsStableAndDisjoint(t *testing.T) {
	p := New()
	defer p.Shutdown()
	const n, width = 500, 8
	busy := make([]int32, width)
	var visited int64
	p.Run(n, width, func(w, i int) {
		if w < 0 || w >= width {
			t.Errorf("worker id %d out of [0, %d)", w, width)
		}
		if !atomic.CompareAndSwapInt32(&busy[w], 0, 1) {
			t.Errorf("worker slot %d used concurrently", w)
		}
		atomic.AddInt64(&visited, 1)
		atomic.StoreInt32(&busy[w], 0)
	})
	if visited != n {
		t.Fatalf("visited %d items, want %d", visited, n)
	}
}

// TestNestedRunFallsBackSerial: a Run submitted from inside a running
// region must execute inline on the submitting worker (worker id 0, no
// new goroutines), not deadlock or oversubscribe.
func TestNestedRunFallsBackSerial(t *testing.T) {
	p := New()
	defer p.Shutdown()
	const outer, inner = 8, 50
	var innerRuns int64
	var nestedParallel int32
	p.Run(outer, 4, func(w, i int) {
		var localSeq int64 // serial inner runs touch this without atomics
		p.Run(inner, 4, func(iw, j int) {
			if iw != 0 {
				atomic.StoreInt32(&nestedParallel, 1)
			}
			localSeq++
			atomic.AddInt64(&innerRuns, 1)
		})
		if localSeq != inner {
			t.Errorf("nested run on worker %d executed %d items, want %d", w, localSeq, inner)
		}
	})
	if innerRuns != outer*inner {
		t.Fatalf("inner items run %d times, want %d", innerRuns, outer*inner)
	}
	if nestedParallel != 0 {
		t.Fatal("nested Run handed out a non-zero worker id (went parallel)")
	}
}

// TestConcurrentSubmit: many goroutines submitting regions at once — one
// claims the pool, the rest fall back to inline serial; every submission
// completes all its items.
func TestConcurrentSubmit(t *testing.T) {
	p := New()
	defer p.Shutdown()
	const submitters, n = 6, 200
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				counts := make([]int32, n)
				p.Run(n, 4, func(_, i int) { atomic.AddInt32(&counts[i], 1) })
				for i, c := range counts {
					if c != 1 {
						t.Errorf("submitter %d: index %d run %d times", s, i, c)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
}

// TestTryAcquireNestedAndRelease: the claim is exclusive and re-entrant
// acquisition fails (the tensor dispatch contract).
func TestTryAcquireNestedAndRelease(t *testing.T) {
	p := New()
	defer p.Shutdown()
	if !p.TryAcquire() {
		t.Fatal("fresh pool not claimable")
	}
	if p.TryAcquire() {
		t.Fatal("claimed pool claimed twice")
	}
	ran := 0
	p.RunAcquired(10, 4, func(_, i int) { ran++ })
	_ = ran // concurrent increments impossible only if serial; just count coverage below
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("released pool not claimable")
	}
	p.Release()
}

// TestShutdownIdle: shutting down an idle pool joins its workers and
// leaves it in working serial-fallback mode.
func TestShutdownIdle(t *testing.T) {
	p := New()
	p.Run(64, 4, func(_, _ int) {}) // spawn some workers
	if p.Size() == 0 {
		t.Fatal("no workers spawned")
	}
	p.Shutdown()
	p.Shutdown() // idempotent
	counts := make([]int32, 100)
	p.Run(len(counts), 4, func(w, i int) {
		if w != 0 {
			t.Errorf("shut-down pool handed out worker id %d", w)
		}
		counts[i]++
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("after shutdown: index %d run %d times", i, c)
		}
	}
}

// TestShutdownBusy: Shutdown during an active region waits for the
// region to drain before joining workers; no item is lost.
func TestShutdownBusy(t *testing.T) {
	p := New()
	const n = 64
	var ran int64
	started := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		p.Run(n, 4, func(_, i int) {
			if i == 0 {
				close(started)
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&ran, 1)
		})
		close(finished)
	}()
	<-started
	p.Shutdown() // must block until the region completes
	if atomic.LoadInt64(&ran) != n {
		t.Fatalf("shutdown returned with %d/%d items run", ran, n)
	}
	<-finished
}

// TestPanicInClaimantTaskReleasesPool: a panic in fn on the submitting
// goroutine, recovered by the caller, must drain the region and release
// the claim — the pool (and the process-wide Busy gauge) stay usable.
func TestPanicInClaimantTaskReleasesPool(t *testing.T) {
	p := New()
	defer p.Shutdown()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic to propagate")
			}
		}()
		p.Run(64, 2, func(w, i int) {
			if w == 0 {
				panic("claimant task failure")
			}
		})
	}()
	if Busy() {
		t.Fatal("Busy still set after recovered panic")
	}
	counts := make([]int32, 100)
	p.Run(len(counts), 4, func(_, i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("after recovered panic: index %d run %d times", i, c)
		}
	}
}

// TestBusyGauge: Busy reflects an in-flight region across pools.
func TestBusyGauge(t *testing.T) {
	p := New()
	defer p.Shutdown()
	if Busy() {
		t.Fatal("Busy before any region")
	}
	var sawBusy atomic.Bool
	p.Run(32, 2, func(_, _ int) {
		if Busy() {
			sawBusy.Store(true)
		}
	})
	if !sawBusy.Load() {
		t.Fatal("Busy not reported inside a region")
	}
	if Busy() {
		t.Fatal("Busy after region drained")
	}
}

// Package sched is the persistent work-sharing executor every parallel
// phase of the simulator runs on: the round engine's client phase, the
// evaluation protocol, and the tensor package's large-matmul row blocks
// all submit to one shared pool of long-lived worker goroutines instead
// of spawning fresh goroutines per call.
//
// Design (see DESIGN.md §6):
//
//   - Long-lived workers. A Pool grows worker goroutines on demand up to
//     the widest region ever requested and parks them on per-worker wake
//     channels between regions; a steady-state region costs a few channel
//     sends and atomic adds, and allocates nothing.
//   - Atomic index handoff. Work items are handed out by incrementing a
//     shared atomic counter — no per-item channel sends, no filled index
//     channel per call.
//   - Stable worker ids. Every participant of a region draws one id from
//     an atomic sequence before pulling items, so ids are goroutine-stable
//     for the region and lie in [0, participants) ⊆ [0, min(width, n)).
//     Per-worker scratch indexed by the id is never touched concurrently.
//   - Reusable barrier. Region completion is detected by counting worker
//     exits (not item completions): the claimant only returns — and the
//     pool only becomes reclaimable — after every woken worker has left
//     its item loop, so no straggler can touch the next region's state.
//   - Single region at a time. A region claims the pool with a try-lock.
//     A claim failure means the caller is either nested inside a running
//     region (a tensor kernel called from a client task) or racing
//     another top-level region; both fall back to running inline and
//     serially, which eliminates nested oversubscription by construction.
//     Serial fallback never changes results: callers are required to be
//     partitioning-insensitive (every item produces its outputs
//     independently, with a fixed per-item operation order).
//
// Shutdown is deterministic: Shutdown blocks until any active region
// drains, then joins every worker goroutine. A shut-down pool keeps
// working in serial-fallback mode.
package sched

import (
	"sync"
	"sync/atomic"
)

// activeRegions counts currently running regions across every Pool in
// the process. Busy lets code that cannot see the claiming pool (the
// tensor kernels, when an Env is pinned to a private executor) detect
// that it is being called underneath a parallel phase and stay serial.
var activeRegions atomic.Int32

// Busy reports whether any executor region is currently running in the
// process. It is a conservative oversubscription guard, not a lock:
// callers use it to choose a serial path, never for correctness.
func Busy() bool { return activeRegions.Load() > 0 }

// Pool is a persistent work-sharing executor. The zero value is not
// usable; construct with New (or use the process-wide Default).
type Pool struct {
	// mu is the region claim: held by the submitting goroutine for the
	// whole region. TryLock failure = nested or concurrent submit.
	mu   sync.Mutex
	dead bool // set under mu by Shutdown

	workers []chan struct{} // per-worker wake channels; grown under mu
	wg      sync.WaitGroup
	quit    chan struct{}

	// Region state. Written by the claimant while holding mu, before the
	// wake sends (which order the writes for the woken workers).
	fn     func(worker, i int)
	n      int
	next   atomic.Int64 // index handoff counter
	widSeq atomic.Int64 // worker-id sequence (claimant is always 0)
	exits  atomic.Int64 // woken workers still inside their item loop
	done   chan struct{}

	// Lifetime counters (Stats). Updated once per region — never per
	// item — so the telemetry cost is two atomic adds per parallel phase.
	// nworkers mirrors len(workers) atomically so Stats never contends
	// with the region claim (Size does, and blocks for a whole region).
	regions  atomic.Uint64
	serial   atomic.Uint64
	items    atomic.Uint64
	nworkers atomic.Int64
}

// Stats is a snapshot of a pool's lifetime execution counters — the
// control plane exposes the default pool's as pull-based metrics.
type Stats struct {
	// Regions counts parallel regions run to completion; Serial counts
	// submissions that ran inline on the caller (width ≤ 1, nested or
	// concurrent claim, shut-down pool).
	Regions uint64
	Serial  uint64
	// Items counts work items executed across both paths.
	Items uint64
	// Workers is the number of persistent worker goroutines spawned.
	Workers int
}

// Stats returns the pool's lifetime counters. Lock-free: safe to call
// from a scrape while a region is running.
func (p *Pool) Stats() Stats {
	return Stats{
		Regions: p.regions.Load(),
		Serial:  p.serial.Load(),
		Items:   p.items.Load(),
		Workers: int(p.nworkers.Load()),
	}
}

// New returns an empty pool. Workers are spawned lazily by the first
// regions that need them.
func New() *Pool {
	return &Pool{quit: make(chan struct{}), done: make(chan struct{}, 1)}
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide executor shared by the round engine,
// the evaluation protocol, and the tensor kernels. It is never shut
// down; its workers park between regions.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New() })
	return defaultPool
}

// Run executes fn(worker, i) for every i in [0, n), spreading items over
// up to `width` concurrent participants (the calling goroutine plus
// width-1 pool workers). fn must be safe to call concurrently for
// distinct i. Worker ids are goroutine-stable for the call and lie in
// [0, min(width, n)). When the pool cannot be claimed — the caller is
// already inside a region, another region is running, or the pool is
// shut down — or when width or n make parallelism pointless, every item
// runs inline on the caller with worker id 0. Run returns only after
// every item has completed.
func (p *Pool) Run(n, width int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if width > n {
		width = n
	}
	if width <= 1 || !p.TryAcquire() {
		p.serial.Add(1)
		p.items.Add(uint64(n))
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Deferred so a panicking fn (recovered upstream) cannot leak the
	// claim and poison every future region in the process.
	defer p.Release()
	p.RunAcquired(n, width, fn)
}

// TryAcquire claims the pool for one region. It fails — returning false
// — when the pool is already claimed (a nested or concurrent region) or
// shut down; the caller must then run its work serially inline. On
// success the caller must call RunAcquired zero or more times and then
// Release, all on the same goroutine.
//
// The split exists so callers with closure-free task state (the tensor
// dispatch) can write their operand slots after the claim and clear
// them before the release, keeping the whole submission allocation-free.
func (p *Pool) TryAcquire() bool {
	if !p.mu.TryLock() {
		return false
	}
	if p.dead {
		p.mu.Unlock()
		return false
	}
	activeRegions.Add(1)
	return true
}

// Release ends a successfully TryAcquire'd claim.
func (p *Pool) Release() {
	activeRegions.Add(-1)
	p.mu.Unlock()
}

// RunAcquired is Run on a pool the caller has already claimed with
// TryAcquire. It never falls back to another claim and must only be
// called between TryAcquire and Release.
func (p *Pool) RunAcquired(n, width int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if width > n {
		width = n
	}
	if width <= 1 {
		p.serial.Add(1)
		p.items.Add(uint64(n))
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	p.regions.Add(1)
	p.items.Add(uint64(n))

	wake := width - 1
	for len(p.workers) < wake {
		ch := make(chan struct{}, 1)
		p.workers = append(p.workers, ch)
		p.nworkers.Store(int64(len(p.workers)))
		p.wg.Add(1)
		go p.work(ch)
	}

	p.fn, p.n = fn, n
	p.next.Store(0)
	p.widSeq.Store(1) // the claimant takes id 0
	p.exits.Store(int64(wake))
	for s := 0; s < wake; s++ {
		p.workers[s] <- struct{}{}
	}
	// Completion barrier: wait for every woken worker to leave its item
	// loop, so region state can be safely rewritten for the next region.
	// Deferred so that even if the claimant's own fn panics, the region
	// drains (workers consume the remaining indices and hit the exit
	// barrier) before the panic propagates — the pool stays consistent
	// for recover-and-continue callers.
	defer func() {
		<-p.done
		p.fn = nil
	}()
	for {
		i := int(p.next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(0, i)
	}
}

// work is one persistent worker goroutine: park on the wake channel,
// join the announced region, signal the barrier, repeat.
func (p *Pool) work(wake chan struct{}) {
	defer p.wg.Done()
	for {
		select {
		case <-wake:
			wid := int(p.widSeq.Add(1)) - 1
			fn, n := p.fn, p.n
			for {
				i := int(p.next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(wid, i)
			}
			if p.exits.Add(-1) == 0 {
				p.done <- struct{}{}
			}
		case <-p.quit:
			return
		}
	}
}

// Size returns the number of persistent worker goroutines currently
// spawned (diagnostic; grows with the widest region seen so far).
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Shutdown deterministically stops the pool: it waits for any active
// region to finish, then joins every worker goroutine. The pool remains
// usable afterwards — Run degrades to the inline serial path. Shutting
// down an already-shut-down pool is a no-op.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	close(p.quit)
	p.mu.Unlock()
	p.wg.Wait()
}

package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/cluster"
	"fedclust/internal/core"
)

// SelectorAblationOptions configures experiment A3: how the automatic
// cluster-count rule affects FedClust (silhouette parsimony vs largest
// gap vs a fixed oracle k).
type SelectorAblationOptions struct {
	Dataset  string
	Seed     uint64
	Quick    bool
	Progress io.Writer
}

// DefaultSelectorAblationOptions uses the fmnist stand-in.
func DefaultSelectorAblationOptions() SelectorAblationOptions {
	return SelectorAblationOptions{Dataset: "fmnist", Seed: 1, Quick: true}
}

// SelectorAblationRow is one rule's outcome on the two-group workload.
type SelectorAblationRow struct {
	Rule string
	K    int
	ARI  float64
	Acc  float64
}

// SelectorAblationResult is the per-rule table.
type SelectorAblationResult struct{ Rows []SelectorAblationRow }

// RunSelectorAblation runs FedClust on the two-group workload under each
// cluster-count rule, plus the oracle fixed k=2.
func RunSelectorAblation(opts SelectorAblationOptions) *SelectorAblationResult {
	w := PaperWorkload(opts.Dataset)
	if opts.Quick {
		w = QuickWorkload(opts.Dataset)
	}
	res := &SelectorAblationResult{}
	configs := []struct {
		rule string
		cfg  core.Config
	}{
		{"silhouette (default)", core.Config{Selector: core.SelectSilhouette}},
		{"largest-gap", core.Config{Selector: core.SelectLargestGap}},
		{"oracle k=2", core.Config{NumClusters: 2}},
	}
	for _, c := range configs {
		env, truth := buildGroupEnv(w, opts.Seed)
		f := &core.FedClust{Cfg: c.cfg}
		r := f.Run(env)
		row := SelectorAblationRow{
			Rule: c.rule,
			K:    cluster.NumClusters(r.Clusters),
			ARI:  cluster.ARI(r.Clusters, truth),
			Acc:  r.FinalAcc,
		}
		res.Rows = append(res.Rows, row)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  %-22s K=%d ARI=%.2f acc=%.1f%%\n",
				row.Rule, row.K, row.ARI, 100*row.Acc)
		}
	}
	return res
}

// Render prints the selector comparison.
func (r *SelectorAblationResult) Render(w io.Writer) {
	tab := NewTable("Rule", "K", "ARI", "Acc%")
	for _, row := range r.Rows {
		tab.AddRow(row.Rule, fmt.Sprintf("%d", row.K),
			fmt.Sprintf("%.2f", row.ARI), fmt.Sprintf("%.1f", 100*row.Acc))
	}
	tab.Render(w)
}

// ShapeChecks verifies the default rule recovers the planted structure.
func (r *SelectorAblationResult) ShapeChecks() []string {
	var out []string
	for _, row := range r.Rows {
		if row.Rule == "silhouette (default)" {
			ok := row.ARI >= 0.99 && row.K == 2
			s := "PASS"
			if !ok {
				s = "FAIL"
			}
			out = append(out, fmt.Sprintf("[%s] default selector finds the 2 planted groups (K=%d, ARI=%.2f)",
				s, row.K, row.ARI))
		}
	}
	return out
}

package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/cluster"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/linalg"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Fig1Options configures the Fig. 1 layer-probe experiment: 10 clients in
// two label groups train a VGG-16-shaped network locally; pairwise
// distance matrices are computed from each probe layer's weights.
type Fig1Options struct {
	ClientsPerGroup int
	// ProbeLayers are 1-based weight-layer indices (paper: 1, 7, 14, 16;
	// VGG-16 has 13 conv + 3 FC weight layers).
	ProbeLayers []int
	Epochs      int
	BatchSize   int
	LR          float64
	// Base is the MiniVGG16 channel base (VGG's 64 → Base).
	Base          int
	TrainPerClass int
	Seed          uint64
}

// DefaultFig1Options mirrors the paper's probe (scaled to the simulator).
func DefaultFig1Options() Fig1Options {
	return Fig1Options{
		ClientsPerGroup: 5,
		ProbeLayers:     []int{1, 7, 14, 16},
		Epochs:          3,
		BatchSize:       32,
		LR:              0.05,
		Base:            2,
		TrainPerClass:   80,
		Seed:            1,
	}
}

// Fig1Layer is the probe output for one layer.
type Fig1Layer struct {
	// Layer is the 1-based weight-layer index; Kind is "CL" or "FL".
	Layer int
	Kind  string
	// Dist is the clients×clients Euclidean distance matrix over this
	// layer's weights.
	Dist *tensor.Tensor
	// BlockScore is inter/intra distance ratio against the true groups.
	BlockScore float64
	// ARI is the cluster-recovery score when HC clusters on this layer.
	ARI float64
}

// Fig1Result is the full probe outcome.
type Fig1Result struct {
	Truth  []int
	Layers []Fig1Layer
}

// RunFig1 reproduces the paper's Fig. 1: the same 10-client, two-group
// CIFAR-style workload, a VGG-16-shaped model, and per-layer weight
// distance matrices. The expected shape: early conv layers show weak
// block structure; the final FC (classifier) layer shows a clean 2-block
// pattern and perfect cluster recovery.
func RunFig1(opts Fig1Options) *Fig1Result {
	// CIFAR-style data at 32×32 (MiniVGG16's required input).
	cfg := data.SynthConfig{
		Name: "fig1-cifar", C: 3, H: 32, W: 32, Classes: 10,
		TrainPerClass: opts.TrainPerClass, TestPerClass: 10,
		ClassSep: 0.8, Noise: 1.0, SharedBG: 0.5, Smooth: 2, Seed: opts.Seed,
	}
	train, test := data.Generate(cfg)
	r := rng.New(opts.Seed)
	groups := [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}
	clients, truth := fl.BuildGroupClients(train, test, groups,
		[]int{opts.ClientsPerGroup, opts.ClientsPerGroup}, r)
	env := &fl.Env{
		Clients: clients,
		Factory: func(fr *rng.Rng) *nn.Sequential {
			return nn.MiniVGG16(fr, 3, 10, opts.Base)
		},
		Rounds: 1,
		Local:  fl.LocalConfig{Epochs: opts.Epochs, BatchSize: opts.BatchSize, LR: opts.LR},
		Seed:   opts.Seed,
		DType:  DefaultDType,
	}

	// Train every client locally from the shared init once, keeping the
	// trained models so all probe layers come from the same run.
	init := nn.FlattenParams(env.NewModel())
	n := len(env.Clients)
	models := make([]*nn.Sequential, n)
	env.ParallelClients(n, func(i int) {
		m := env.NewModel()
		nn.LoadParams(m, init)
		ts := fl.TrainScratch{DType: env.DType}
		ts.LocalUpdate(m, env.Clients[i].Train, env.Local, env.ClientRng(i, 0))
		models[i] = m
	})

	numWL := nn.NumWeightLayers(env.NewModel())
	res := &Fig1Result{Truth: truth}
	for _, layer1 := range opts.ProbeLayers {
		if layer1 < 1 || layer1 > numWL {
			panic(fmt.Sprintf("experiments: probe layer %d out of range [1,%d]", layer1, numWL))
		}
		feats := make([][]float64, n)
		for i, m := range models {
			feats[i] = nn.LayerParamVector(m, layer1-1)
		}
		dist := linalg.PairwiseDistances(linalg.Euclidean, feats)
		labels := cluster.Agglomerate(dist, cluster.Average).CutK(2)
		kind := "CL"
		if layer1 > numWL-3 {
			kind = "FL"
		}
		res.Layers = append(res.Layers, Fig1Layer{
			Layer:      layer1,
			Kind:       kind,
			Dist:       dist,
			BlockScore: BlockScore(dist, truth),
			ARI:        cluster.ARI(labels, truth),
		})
	}
	return res
}

// Render prints the per-layer heatmaps and the block-structure summary.
func (f *Fig1Result) Render(w io.Writer) {
	for _, l := range f.Layers {
		RenderHeatmap(w, fmt.Sprintf("Layer %d (%s) weight-distance matrix", l.Layer, l.Kind), l.Dist)
		fmt.Fprintf(w, "  block score (inter/intra) = %.2f, HC cluster ARI = %.2f\n\n", l.BlockScore, l.ARI)
	}
	tab := NewTable("Layer", "Kind", "BlockScore", "ARI")
	for _, l := range f.Layers {
		tab.AddRow(fmt.Sprintf("%d", l.Layer), l.Kind,
			fmt.Sprintf("%.2f", l.BlockScore), fmt.Sprintf("%.2f", l.ARI))
	}
	tab.Render(w)
}

// ShapeChecks verifies Fig. 1's qualitative claim: the final layer's
// distance matrix separates the groups far better than the first layer's.
func (f *Fig1Result) ShapeChecks() []string {
	var out []string
	if len(f.Layers) == 0 {
		return []string{"[FAIL] no layers probed"}
	}
	first, last := f.Layers[0], f.Layers[len(f.Layers)-1]
	ok1 := last.BlockScore > first.BlockScore
	ok2 := last.ARI >= 0.99
	status := func(b bool) string {
		if b {
			return "PASS"
		}
		return "FAIL"
	}
	out = append(out, fmt.Sprintf("[%s] final layer block score (%.2f) > layer-1 (%.2f)",
		status(ok1), last.BlockScore, first.BlockScore))
	out = append(out, fmt.Sprintf("[%s] final layer HC recovers groups (ARI %.2f)",
		status(ok2), last.ARI))
	return out
}

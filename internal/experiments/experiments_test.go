package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fedclust/internal/tensor"
	"fedclust/internal/wire"
)

// skipInShort gates the multi-second end-to-end experiment runs so that
// `go test -short ./...` finishes in seconds. CI runs both modes; the
// full experiment suite still runs on every default `go test ./...`.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy experiment run skipped in -short mode")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("A", "Blong")
	tab.AddRow("x")
	tab.AddRow("yy", "z")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "Blong") {
		t.Fatalf("header missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
}

func TestRenderHeatmapShadesByMagnitude(t *testing.T) {
	m := tensor.New(2, 2)
	m.Set(10, 0, 1)
	m.Set(10, 1, 0)
	var buf bytes.Buffer
	RenderHeatmap(&buf, "test", m)
	out := buf.String()
	if !strings.Contains(out, "██") {
		t.Fatalf("max cell not rendered dark:\n%s", out)
	}
	if !strings.Contains(out, "test") {
		t.Fatal("title missing")
	}
}

func TestBlockScore(t *testing.T) {
	// Perfect 2-block matrix: intra 1, inter 10 → score 10.
	m := tensor.New(4, 4)
	truth := []int{0, 0, 1, 1}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if truth[i] == truth[j] {
				m.Set(1, i, j)
			} else {
				m.Set(10, i, j)
			}
		}
	}
	if s := BlockScore(m, truth); s != 10 {
		t.Fatalf("BlockScore = %v, want 10", s)
	}
	// No structure: score ≈ 1.
	flat := tensor.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				flat.Set(5, i, j)
			}
		}
	}
	if s := BlockScore(flat, truth); s != 1 {
		t.Fatalf("flat BlockScore = %v, want 1", s)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", `q"t`}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"q""t"`) {
		t.Fatalf("CSV quoting wrong: %q", out)
	}
}

func TestDatasetConfigNames(t *testing.T) {
	for _, name := range DatasetNames {
		cfg := DatasetConfig(name, 1)
		if cfg.Classes != 10 {
			t.Fatalf("%s classes = %d", name, cfg.Classes)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	DatasetConfig("mnist", 1)
}

func TestNewTrainerAllMethods(t *testing.T) {
	w := QuickWorkload("fmnist")
	for _, m := range MethodNames {
		tr := NewTrainer(m, w)
		if tr.Name() != m {
			t.Fatalf("trainer for %q reports name %q", m, tr.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method did not panic")
		}
	}()
	NewTrainer("FedNope", w)
}

func TestBuildEnvStructure(t *testing.T) {
	w := QuickWorkload("cifar10")
	w.Clients = 6
	env := BuildEnv(w, 7)
	if len(env.Clients) != 6 {
		t.Fatalf("clients = %d", len(env.Clients))
	}
	model := env.NewModel()
	// LeNet-5 has 5 weight layers.
	y := model.Forward(env.Clients[0].Train.X, false)
	if y.Shape[1] != 10 {
		t.Fatalf("model output classes = %d", y.Shape[1])
	}
	// Determinism across identical builds.
	env2 := BuildEnv(w, 7)
	if env.Clients[0].Train.Len() != env2.Clients[0].Train.Len() {
		t.Fatal("BuildEnv not deterministic")
	}
}

func TestTable1CellStats(t *testing.T) {
	c := Table1Cell{Accs: []float64{0.5, 0.7}}
	if c.Mean() != 60 {
		t.Fatalf("Mean = %v", c.Mean())
	}
	if c.Std() < 14 || c.Std() > 15 {
		t.Fatalf("Std = %v", c.Std())
	}
}

func TestRunTable1MiniGrid(t *testing.T) {
	skipInShort(t)
	// A miniature grid (1 dataset, 2 methods, 1 seed, tiny workload)
	// exercises the full Table-I plumbing quickly.
	opts := Table1Options{
		Datasets: []string{"fmnist"},
		Methods:  []string{"FedAvg", "FedClust"},
		Seeds:    []uint64{1},
		Quick:    true,
	}
	res := RunTable1(opts)
	for _, m := range opts.Methods {
		c := res.Cell(m, "fmnist")
		if len(c.Accs) != 1 {
			t.Fatalf("%s accs = %v", m, c.Accs)
		}
		if c.Accs[0] <= 0.1 || c.Accs[0] > 1 {
			t.Fatalf("%s accuracy %v implausible", m, c.Accs[0])
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "FedClust") || !strings.Contains(buf.String(), "paper 95.51") {
		t.Fatalf("render missing content:\n%s", buf.String())
	}
}

func TestShapeChecksFormat(t *testing.T) {
	res := &Table1Result{Datasets: []string{"fmnist"}, Methods: []string{"FedAvg", "FedClust"}}
	res.Cell("FedAvg", "fmnist").Accs = []float64{0.5}
	res.Cell("FedClust", "fmnist").Accs = []float64{0.9}
	checks := res.ShapeChecks()
	if len(checks) == 0 {
		t.Fatal("no checks produced")
	}
	for _, c := range checks {
		if !strings.HasPrefix(c, "[PASS]") && !strings.HasPrefix(c, "[FAIL]") {
			t.Fatalf("check %q missing status prefix", c)
		}
	}
	for _, c := range checks {
		if strings.Contains(c, "FedClust > FedAvg") && !strings.HasPrefix(c, "[PASS]") {
			t.Fatalf("expected pass: %q", c)
		}
	}
}

func TestRunCommQuick(t *testing.T) {
	skipInShort(t)
	opts := DefaultCommOptions()
	opts.Quick = true
	opts.Rounds = 4
	opts.ClientsPerGroup = 3
	res := RunComm(opts)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]CommRow{}
	for _, r := range res.Rows {
		byName[r.Method] = r
	}
	fc := byName["FedClust"]
	if fc.FormationRound != 0 {
		t.Fatalf("FedClust formation round = %d", fc.FormationRound)
	}
	if fc.ARI < 0.99 {
		t.Fatalf("FedClust group recovery ARI = %v", fc.ARI)
	}
	ifca := byName["IFCA"]
	if fc.TotalDown >= ifca.TotalDown {
		t.Fatalf("FedClust downlink %d should be below IFCA's %d", fc.TotalDown, ifca.TotalDown)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "UplinkToForm") {
		t.Fatal("render missing header")
	}
}

func TestRunNewcomerQuick(t *testing.T) {
	skipInShort(t)
	opts := DefaultNewcomerOptions()
	opts.Newcomers = 4
	res := RunNewcomer(opts)
	if res.Total != 4 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.Routed != res.Total {
		t.Fatalf("only %d/%d newcomers routed correctly", res.Routed, res.Total)
	}
	if res.ServedAcc <= res.GlobalInitAcc {
		t.Fatalf("served acc %v not above floor %v", res.ServedAcc, res.GlobalInitAcc)
	}
}

func TestRunLayerAblationQuick(t *testing.T) {
	opts := DefaultLayerAblationOptions()
	res := RunLayerAblation(opts)
	if len(res.Rows) != 5 { // LeNet-5 weight layers
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last.ARI < 0.99 {
		t.Fatalf("final layer ARI = %v", last.ARI)
	}
	checks := res.ShapeChecks()
	if !strings.HasPrefix(checks[0], "[PASS]") {
		t.Fatalf("ablation shape check failed: %v", checks)
	}
}

func TestRunLinkageAblationQuick(t *testing.T) {
	skipInShort(t)
	opts := DefaultLinkageAblationOptions()
	res := RunLinkageAblation(opts)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Average linkage (the default) must recover the groups.
	for _, row := range res.Rows {
		if row.Linkage.String() == "average" && row.ARI < 0.99 {
			t.Fatalf("average linkage ARI = %v", row.ARI)
		}
	}
}

func TestRunFig1Tiny(t *testing.T) {
	opts := DefaultFig1Options()
	opts.ClientsPerGroup = 2
	opts.TrainPerClass = 20
	opts.Epochs = 1
	opts.ProbeLayers = []int{1, 16}
	res := RunFig1(opts)
	if len(res.Layers) != 2 {
		t.Fatalf("layers = %d", len(res.Layers))
	}
	if res.Layers[0].Kind != "CL" || res.Layers[1].Kind != "FL" {
		t.Fatalf("layer kinds = %v/%v", res.Layers[0].Kind, res.Layers[1].Kind)
	}
	last := res.Layers[1]
	if last.ARI < 0.99 {
		t.Fatalf("final-layer ARI = %v (block %v)", last.ARI, last.BlockScore)
	}
	if last.BlockScore <= res.Layers[0].BlockScore {
		t.Fatalf("final layer block score %v not above layer-1 %v",
			last.BlockScore, res.Layers[0].BlockScore)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Layer 16") {
		t.Fatal("render missing layer 16")
	}
}

func TestRunAlphaSweepTiny(t *testing.T) {
	skipInShort(t)
	opts := AlphaSweepOptions{
		Dataset: "fmnist",
		Alphas:  []float64{0.1, 10},
		Methods: []string{"FedAvg", "FedClust"},
		Seed:    1,
		Quick:   true,
	}
	res := RunAlphaSweep(opts)
	for _, m := range opts.Methods {
		for _, a := range opts.Alphas {
			v := res.Acc[m][a]
			if v <= 0 || v > 1 {
				t.Fatalf("%s α=%v acc %v", m, a, v)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "α=0.1") {
		t.Fatal("render missing alpha header")
	}
}

func TestRunScaleTiny(t *testing.T) {
	skipInShort(t)
	opts := ScaleOptions{Dataset: "fmnist", ClientSizes: []int{4, 8}, Seed: 1}
	res := RunScale(opts)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.ClusteringTime <= 0 || r.RoundTime <= 0 {
			t.Fatalf("timings not recorded: %+v", r)
		}
		if r.ARI < 0.99 {
			t.Fatalf("scale run ARI = %v at n=%d", r.ARI, r.Clients)
		}
	}
}

func TestRunSelectorAblationQuick(t *testing.T) {
	skipInShort(t)
	opts := DefaultSelectorAblationOptions()
	res := RunSelectorAblation(opts)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Rule == "silhouette (default)" && (row.K != 2 || row.ARI < 0.99) {
			t.Fatalf("default selector K=%d ARI=%v", row.K, row.ARI)
		}
		if row.Rule == "oracle k=2" && row.K != 2 {
			t.Fatalf("oracle rule gave K=%d", row.K)
		}
	}
	checks := res.ShapeChecks()
	if len(checks) != 1 || !strings.HasPrefix(checks[0], "[PASS]") {
		t.Fatalf("selector shape checks: %v", checks)
	}
}

func TestRunCompressionQuick(t *testing.T) {
	skipInShort(t)
	// One method keeps the sweep at 5 full runs; FedAvg is the benchmark
	// config the acceptance shape checks are pinned to.
	opts := DefaultCompressionOptions()
	opts.Methods = []string{"FedAvg"}
	res := RunCompression(opts)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 codecs", len(res.Rows))
	}
	base := res.Row("FedAvg", wire.Float64)
	q8 := res.Row("FedAvg", wire.Quant8)
	tkq := res.Row("FedAvg", wire.TopKQuant8)
	if base == nil || q8 == nil || tkq == nil {
		t.Fatal("missing frontier rows")
	}
	if base.UpBytes <= 0 || base.DownBytes <= 0 {
		t.Fatalf("baseline traffic not measured: %+v", base)
	}
	if q8.UpBytes*7 >= base.UpBytes {
		t.Fatalf("quant8 uplink not ~8x smaller: %d vs %d", q8.UpBytes, base.UpBytes)
	}
	// The headline acceptance point: top-k × quant8 at the 1% default.
	if tkq.UpFactor < 10 {
		t.Fatalf("topk-quant8 uplink reduction %.1fx < 10x", tkq.UpFactor)
	}
	if tkq.DeltaPP < -1 {
		t.Fatalf("topk-quant8 accuracy loss %.2fpp exceeds 1pp", -tkq.DeltaPP)
	}
	for _, c := range res.ShapeChecks() {
		if !strings.HasPrefix(c, "[PASS]") {
			t.Fatalf("compression shape check failed: %q", c)
		}
	}
}

func TestNewTrainerStalenessMethods(t *testing.T) {
	w := QuickWorkload("fmnist")
	for _, m := range []string{"FedAvgStale", "FedBuff"} {
		if tr := NewTrainer(m, w); tr.Name() != m {
			t.Fatalf("trainer for %q reports name %q", m, tr.Name())
		}
	}
}

func TestRunStragglersTiny(t *testing.T) {
	skipInShort(t)
	opts := DefaultStragglerOptions()
	opts.Quick = true
	opts.DropoutRates = []float64{0, 0.3}
	opts.Methods = []string{"FedAvg", "FedAvgStale", "FedClust"}
	res := RunStragglers(opts)
	for _, m := range opts.Methods {
		for _, rate := range opts.DropoutRates {
			c, ok := res.Cells[m][rate]
			if !ok {
				t.Fatalf("missing cell %s @ %v", m, rate)
			}
			if c.Acc <= 0 || c.Acc > 1 {
				t.Fatalf("%s drop=%v acc %v", m, rate, c.Acc)
			}
		}
	}
	// FedClust still forms clusters under the scenario; FedAvg never does.
	if res.Cells["FedClust"][0.3].FormationRound < 0 {
		t.Fatal("FedClust reported no formation round under scenario")
	}
	if res.Cells["FedAvg"][0].FormationRound != -1 {
		t.Fatal("FedAvg reported a formation round")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "acc@drop=0.3") || !strings.Contains(out, "formed@drop=0.3") {
		t.Fatalf("render missing sweep columns:\n%s", out)
	}
	header, rows := res.CSV()
	if len(header) != 4 || len(rows) != len(opts.Methods)*len(opts.DropoutRates) {
		t.Fatalf("CSV shape %d×%d", len(header), len(rows))
	}
}

func TestRunStragglersControlSkipsSweep(t *testing.T) {
	skipInShort(t)
	opts := DefaultStragglerOptions()
	opts.Quick = true
	opts.Scenario = false
	opts.DropoutRates = []float64{0, 0.5}
	opts.Methods = []string{"FedAvg"}
	res := RunStragglers(opts)
	if _, ok := res.Cells["FedAvg"][0]; !ok {
		t.Fatal("control run missing baseline cell")
	}
	if _, ok := res.Cells["FedAvg"][0.5]; ok {
		t.Fatal("control run should stop after the first rate")
	}
}

func TestRunHostileTiny(t *testing.T) {
	skipInShort(t)
	opts := DefaultHostileOptions()
	opts.Quick = true
	opts.ByzantineFracs = []float64{0, 0.3}
	opts.Aggregators = []string{"mean", "median"}
	opts.Methods = []string{"FedAvg"}
	res := RunHostile(opts)
	for _, a := range opts.Aggregators {
		for _, f := range opts.ByzantineFracs {
			c, ok := res.Cells["FedAvg"][a][f]
			if !ok {
				t.Fatalf("missing cell %s @ %v", a, f)
			}
			if c.Acc <= 0 || c.Acc > 1 || c.HonestAcc <= 0 || c.HonestAcc > 1 {
				t.Fatalf("%s byz=%v acc %v honest %v", a, f, c.Acc, c.HonestAcc)
			}
			if f == 0 && c.HonestAcc != c.Acc {
				t.Fatalf("benign point: HonestAcc %v != Acc %v", c.HonestAcc, c.Acc)
			}
		}
	}
	if res.Byzantines[0.3] < 1 {
		t.Fatalf("no attackers drawn at 0.3: %v", res.Byzantines)
	}
	// The drawn cohort mask backs the honest metric: its count must match.
	n := 0
	for _, b := range res.byzMask[0.3] {
		if b {
			n++
		}
	}
	if n != res.Byzantines[0.3] {
		t.Fatalf("mask marks %d byzantine, Byzantines says %d", n, res.Byzantines[0.3])
	}
	checks := res.ShapeChecks()
	if len(checks) != 2 {
		t.Fatalf("expected 2 shape checks (median recovery + mean degrade), got %d: %v", len(checks), checks)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if out := buf.String(); !strings.Contains(out, "acc@byz=0.3") || !strings.Contains(out, "honest") {
		t.Fatalf("render missing sweep columns:\n%s", out)
	}
	header, rows := res.CSV()
	if len(header) != 5 || len(rows) != len(opts.Aggregators)*len(opts.ByzantineFracs) {
		t.Fatalf("CSV shape %d×%d", len(header), len(rows))
	}
}

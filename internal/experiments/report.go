// Package experiments is the reproduction harness: it wires datasets,
// partitions, models, and methods into the exact workloads behind each of
// the paper's artifacts (Table I, Fig. 1, the communication-cost claims)
// plus the extension studies DESIGN.md lists, and renders results as
// ASCII tables/heatmaps and CSV.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"fedclust/internal/tensor"
)

// Table accumulates rows and renders an aligned ASCII table.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	fmt.Fprintln(w, line(t.Header))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// heatChars maps normalized magnitude to shading, light to dark.
var heatChars = []rune{' ', '░', '▒', '▓', '█'}

// RenderHeatmap prints a square matrix as an ASCII heatmap: light cells =
// small distances (similar clients), dark = large, matching the paper's
// Fig. 1 convention (lighter color ⇒ more similar models).
func RenderHeatmap(w io.Writer, title string, m *tensor.Tensor) {
	n := m.Shape[0]
	maxV := m.MaxAbs()
	fmt.Fprintf(w, "%s (n=%d, max=%.3g)\n", title, n, maxV)
	fmt.Fprint(w, "     ")
	for j := 0; j < n; j++ {
		fmt.Fprintf(w, "%2d ", j+1)
	}
	fmt.Fprintln(w)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%3d  ", i+1)
		for j := 0; j < n; j++ {
			v := 0.0
			if maxV > 0 {
				v = m.At(i, j) / maxV
			}
			idx := int(v * float64(len(heatChars)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(heatChars) {
				idx = len(heatChars) - 1
			}
			ch := heatChars[idx]
			fmt.Fprintf(w, "%c%c ", ch, ch)
		}
		fmt.Fprintln(w)
	}
}

// BlockScore measures how block-diagonal a distance matrix is with respect
// to ground-truth groups: mean inter-group distance divided by mean
// intra-group distance. Values ≫ 1 mean clean cluster structure (the
// paper's Fig. 1(d)); ≈ 1 means no structure (Fig. 1(a)).
func BlockScore(m *tensor.Tensor, truth []int) float64 {
	n := m.Shape[0]
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if truth[i] == truth[j] {
				intra += m.At(i, j)
				nIntra++
			} else {
				inter += m.At(i, j)
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 || intra == 0 {
		return 0
	}
	return (inter / float64(nInter)) / (intra / float64(nIntra))
}

// WriteCSV writes a header plus rows as comma-separated values. Cells
// containing commas or quotes are quoted.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeLine(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeLine(r); err != nil {
			return err
		}
	}
	return nil
}

package experiments

import (
	"fmt"

	"fedclust/internal/cluster"
	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/wire"
)

// DatasetNames are the three Table-I datasets, in the paper's column order.
var DatasetNames = []string{"cifar10", "fmnist", "svhn"}

// DefaultDType is the numeric compute path every environment built by
// this package runs (fedsim's -dtype flag sets it once at startup). The
// zero value keeps the float64 golden path.
var DefaultDType fl.DType

// DefaultCodec and DefaultTopKFrac mirror DefaultDType for the uplink
// parameter codec: fedsim's -codec/-topk-frac flags set them once at
// startup and every environment built by this package runs under them
// (experiments that sweep codecs override per run). Zero values keep
// the dense Float64 golden path.
var (
	DefaultCodec    wire.Codec
	DefaultTopKFrac float64
)

// DefaultObserver, when non-nil, is attached to every environment built
// by this package — the same one-knob pattern as DefaultDType: fedsim's
// -journal flag sets it once at startup so in-process experiments leave
// a round journal on disk without threading an observer through every
// experiment entry point.
var DefaultObserver fl.RoundObserver

// MethodNames are the Table-I methods, in the paper's row order.
var MethodNames = []string{"FedAvg", "FedProx", "CFL", "IFCA", "PACFL", "FedClust"}

// DatasetConfig returns the synthetic stand-in for a named dataset.
func DatasetConfig(name string, seed uint64) data.SynthConfig {
	switch name {
	case "cifar10":
		return data.SynthCIFAR10(seed)
	case "fmnist":
		return data.SynthFMNIST(seed)
	case "svhn":
		return data.SynthSVHN(seed)
	default:
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
}

// Workload parameterizes one federated run: the dataset, the client
// population, and the training schedule.
type Workload struct {
	Dataset   string
	Clients   int
	Alpha     float64 // Dirichlet concentration (Table I uses 0.1)
	Rounds    int
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// WidthScale narrows LeNet-5 (1 = faithful architecture).
	WidthScale float64
	// TrainPerClass/TestPerClass override the preset sizes when > 0.
	TrainPerClass, TestPerClass int
	// SepScale multiplies the dataset's class separation (default 1).
	// Larger workloads (more data, more rounds) make any fixed synthetic
	// distribution easier; the paper-scale workload compensates so the
	// absolute accuracy bands stay near the paper's Table I.
	SepScale float64
	// EvalEvery controls periodic evaluation (0 = final only).
	EvalEvery int
	// IFCAK is the predefined cluster count IFCA requires.
	IFCAK int
	// FedProxMu is the proximal coefficient.
	FedProxMu float64
}

// PaperWorkload is the Table-I setting at reproduction scale: 20 clients,
// Dir(0.1), LeNet-5.
func PaperWorkload(dataset string) Workload {
	return Workload{
		Dataset: dataset, Clients: 20, Alpha: 0.1,
		Rounds: 25, Epochs: 2, BatchSize: 32, LR: 0.02, Momentum: 0.5,
		WidthScale: 0.5, IFCAK: 4, FedProxMu: 0.1, SepScale: 0.42,
	}
}

// QuickWorkload is a reduced setting for benchmarks and CI: fewer clients,
// samples, and rounds, same structure.
func QuickWorkload(dataset string) Workload {
	w := PaperWorkload(dataset)
	w.Clients = 10
	w.Rounds = 8
	w.Epochs = 1
	w.TrainPerClass = 120
	w.TestPerClass = 40
	w.IFCAK = 3
	w.SepScale = 1
	return w
}

// workloadDataset resolves a workload's dataset configuration, applying
// per-workload size and difficulty overrides.
func workloadDataset(w Workload, seed uint64) data.SynthConfig {
	cfg := DatasetConfig(w.Dataset, seed)
	if w.TrainPerClass > 0 {
		cfg.TrainPerClass = w.TrainPerClass
	}
	if w.TestPerClass > 0 {
		cfg.TestPerClass = w.TestPerClass
	}
	if w.SepScale > 0 {
		cfg.ClassSep *= w.SepScale
	}
	return cfg
}

// BuildEnv materializes a Workload into an fl.Env with a Dir(alpha)
// population over the named dataset and a LeNet-5 model factory.
func BuildEnv(w Workload, seed uint64) *fl.Env {
	cfg := workloadDataset(w, seed)
	train, test := data.Generate(cfg)
	clients := fl.BuildDirichletClients(train, test, w.Clients, w.Alpha, rng.New(seed).Derive(0xd17))
	c, h, wd, classes := cfg.C, cfg.H, cfg.W, cfg.Classes
	scale := w.WidthScale
	if scale == 0 {
		scale = 1
	}
	return &fl.Env{
		Clients: clients,
		Factory: func(r *rng.Rng) *nn.Sequential {
			return nn.LeNet5(r, c, h, wd, classes, scale)
		},
		Rounds:    w.Rounds,
		Local:     fl.LocalConfig{Epochs: w.Epochs, BatchSize: w.BatchSize, LR: w.LR, Momentum: w.Momentum},
		Seed:      seed,
		EvalEvery: w.EvalEvery,
		DType:     DefaultDType,
		Codec:     DefaultCodec,
		TopKFrac:  DefaultTopKFrac,
		Observer:  DefaultObserver,
	}
}

// NewTrainer instantiates a method by Table-I name with the workload's
// hyperparameters.
func NewTrainer(name string, w Workload) fl.Trainer {
	switch name {
	case "FedAvg":
		return methods.FedAvg{}
	case "FedProx":
		return methods.FedProx{Mu: w.FedProxMu}
	case "CFL":
		return methods.CFL{}
	case "IFCA":
		return methods.IFCA{K: w.IFCAK}
	case "PACFL":
		return methods.PACFL{}
	case "FedClust":
		return &core.FedClust{}
	case "FedAvgStale":
		return methods.FedAvgStale{}
	case "FedBuff":
		return methods.FedBuff{}
	default:
		panic(fmt.Sprintf("experiments: unknown method %q", name))
	}
}

// NewTrainerWithLinkage builds FedClust with a specific linkage (for the
// linkage ablation).
func NewTrainerWithLinkage(l cluster.Linkage) fl.Trainer {
	return &core.FedClust{Cfg: core.Config{Linkage: l}}
}

package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

// NewcomerOptions configures experiment F2: the paper's step ⑥ — dynamic
// incorporation of clients that arrive after the one-shot clustering.
type NewcomerOptions struct {
	Dataset string
	Quick   bool
	Seed    uint64
	// Newcomers is how many late arrivals to simulate (half from each
	// ground-truth group).
	Newcomers int
	Progress  io.Writer
}

// DefaultNewcomerOptions simulates 6 late arrivals.
func DefaultNewcomerOptions() NewcomerOptions {
	return NewcomerOptions{Dataset: "fmnist", Quick: true, Seed: 1, Newcomers: 6}
}

// NewcomerResult reports routing accuracy and served-model quality for
// late arrivals.
type NewcomerResult struct {
	// Routed counts newcomers assigned to the cluster holding their
	// ground-truth group's founders.
	Routed, Total int
	// ServedAcc is the mean accuracy of newcomers evaluated with their
	// assigned cluster model; GlobalInitAcc is the same clients under the
	// untrained initial model (the floor).
	ServedAcc     float64
	GlobalInitAcc float64
}

// RunNewcomer trains FedClust on a two-group founding population, then
// arrives opts.Newcomers fresh clients with group-consistent data. Each
// newcomer follows the paper's protocol: download w₀, train locally once,
// upload final-layer weights, get routed to the nearest centroid, and is
// served that cluster's model.
func RunNewcomer(opts NewcomerOptions) *NewcomerResult {
	w := PaperWorkload(opts.Dataset)
	if opts.Quick {
		w = QuickWorkload(opts.Dataset)
	}
	env, truth := buildGroupEnv(w, opts.Seed)
	f := &core.FedClust{}
	res := f.Run(env)

	// Map each ground-truth group to the founders' majority cluster.
	groupCluster := map[int]int{}
	counts := map[[2]int]int{}
	for i, g := range truth {
		counts[[2]int{g, res.Clusters[i]}]++
	}
	for g := 0; g < 2; g++ {
		best, bestC := -1, -1
		for key, c := range counts {
			if key[0] == g && c > best {
				best, bestC = c, key[1]
			}
		}
		groupCluster[g] = bestC
	}

	// Fresh samples for newcomers from the SAME class prototypes the
	// founders trained on (distinct stream labels ⇒ independent draws).
	cfg := workloadDataset(w, opts.Seed)
	perClass := cfg.TrainPerClass / 4
	if perClass < 10 {
		perClass = 10
	}
	train := data.GenerateExtra(cfg, 0x4e3c0001, perClass)
	test := data.GenerateExtra(cfg, 0x4e3c0002, perClass/2+1)
	half := cfg.Classes / 2
	classesOf := func(g int) []int {
		var out []int
		lo, hi := 0, half
		if g == 1 {
			lo, hi = half, cfg.Classes
		}
		for k := lo; k < hi; k++ {
			out = append(out, k)
		}
		return out
	}

	out := &NewcomerResult{Total: opts.Newcomers}
	var servedSum, initSum float64
	initModel := env.NewModel()
	for i := 0; i < opts.Newcomers; i++ {
		g := i % 2
		newTrain := train.FilterClasses(classesOf(g))
		newTest := test.FilterClasses(classesOf(g))
		// Protocol: local training from w₀, upload final-layer feature.
		m := env.NewModel()
		fl.LocalUpdate(m, newTrain, env.Local, rng.New(opts.Seed).Derive(0x4e3c, uint64(i)))
		feature := f.State.NewcomerFeature(m)
		assigned := f.State.AssignNewcomer(feature)
		if assigned == groupCluster[g] {
			out.Routed++
		}
		served := env.NewModel()
		nn.LoadParams(served, f.State.Models[assigned])
		_, acc := fl.Evaluate(served, newTest, 64)
		servedSum += acc
		_, accInit := fl.Evaluate(initModel, newTest, 64)
		initSum += accInit
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  newcomer %d (group %d) → cluster %d (want %d), served acc %.1f%%\n",
				i, g, assigned, groupCluster[g], 100*acc)
		}
	}
	out.ServedAcc = servedSum / float64(opts.Newcomers)
	out.GlobalInitAcc = initSum / float64(opts.Newcomers)
	return out
}

// Render prints the newcomer study summary.
func (r *NewcomerResult) Render(w io.Writer) {
	tab := NewTable("Metric", "Value")
	tab.AddRow("newcomers routed to correct cluster", fmt.Sprintf("%d / %d", r.Routed, r.Total))
	tab.AddRow("mean served-model accuracy", fmt.Sprintf("%.1f%%", 100*r.ServedAcc))
	tab.AddRow("untrained-init accuracy (floor)", fmt.Sprintf("%.1f%%", 100*r.GlobalInitAcc))
	tab.Render(w)
}

// ShapeChecks verifies the dynamic-incorporation claim.
func (r *NewcomerResult) ShapeChecks() []string {
	ok1 := r.Routed == r.Total
	ok2 := r.ServedAcc > r.GlobalInitAcc
	s := func(b bool) string {
		if b {
			return "PASS"
		}
		return "FAIL"
	}
	return []string{
		fmt.Sprintf("[%s] all newcomers routed to their group's cluster (%d/%d)", s(ok1), r.Routed, r.Total),
		fmt.Sprintf("[%s] served cluster model beats untrained init (%.1f%% > %.1f%%)",
			s(ok2), 100*r.ServedAcc, 100*r.GlobalInitAcc),
	}
}

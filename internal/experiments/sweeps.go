package experiments

import (
	"fmt"
	"io"
	"time"

	"fedclust/internal/cluster"
	"fedclust/internal/core"
	"fedclust/internal/linalg"
	"fedclust/internal/nn"
)

// AlphaSweepOptions configures the heterogeneity sweep (experiment S1):
// the paper's future-work direction of exploring performance across data
// heterogeneity levels.
type AlphaSweepOptions struct {
	Dataset  string
	Alphas   []float64
	Methods  []string
	Seed     uint64
	Quick    bool
	Progress io.Writer
}

// DefaultAlphaSweepOptions sweeps α over three orders of magnitude.
func DefaultAlphaSweepOptions() AlphaSweepOptions {
	return AlphaSweepOptions{
		Dataset: "fmnist",
		Alphas:  []float64{0.05, 0.1, 0.5, 1, 10},
		Methods: []string{"FedAvg", "IFCA", "FedClust"},
		Seed:    1,
	}
}

// AlphaSweepResult holds accuracy per (method, alpha).
type AlphaSweepResult struct {
	Alphas  []float64
	Methods []string
	Acc     map[string]map[float64]float64
}

// RunAlphaSweep measures each method across Dirichlet concentrations.
func RunAlphaSweep(opts AlphaSweepOptions) *AlphaSweepResult {
	res := &AlphaSweepResult{Alphas: opts.Alphas, Methods: opts.Methods,
		Acc: map[string]map[float64]float64{}}
	for _, m := range opts.Methods {
		res.Acc[m] = map[float64]float64{}
	}
	for _, alpha := range opts.Alphas {
		var w Workload
		if opts.Quick {
			w = QuickWorkload(opts.Dataset)
		} else {
			w = PaperWorkload(opts.Dataset)
		}
		w.Alpha = alpha
		env := BuildEnv(w, opts.Seed)
		for _, m := range opts.Methods {
			r := NewTrainer(m, w).Run(env)
			res.Acc[m][alpha] = r.FinalAcc
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "  α=%-5v %-8s acc=%.2f%%\n", alpha, m, 100*r.FinalAcc)
			}
		}
	}
	return res
}

// Render prints the sweep as a method × alpha grid.
func (r *AlphaSweepResult) Render(w io.Writer) {
	header := []string{"Method"}
	for _, a := range r.Alphas {
		header = append(header, fmt.Sprintf("α=%v", a))
	}
	tab := NewTable(header...)
	for _, m := range r.Methods {
		row := []string{m}
		for _, a := range r.Alphas {
			row = append(row, fmt.Sprintf("%.1f", 100*r.Acc[m][a]))
		}
		tab.AddRow(row...)
	}
	tab.Render(w)
}

// ShapeChecks verifies the expected heterogeneity behaviour: FedClust's
// advantage over FedAvg is largest under severe skew and shrinks (or
// vanishes) near IID.
func (r *AlphaSweepResult) ShapeChecks() []string {
	var out []string
	if len(r.Alphas) < 2 {
		return out
	}
	first, last := r.Alphas[0], r.Alphas[len(r.Alphas)-1]
	gapSkew := r.Acc["FedClust"][first] - r.Acc["FedAvg"][first]
	gapIID := r.Acc["FedClust"][last] - r.Acc["FedAvg"][last]
	ok := gapSkew > gapIID
	s := "PASS"
	if !ok {
		s = "FAIL"
	}
	out = append(out, fmt.Sprintf(
		"[%s] FedClust advantage larger under skew (α=%v: %+.1f pts) than near-IID (α=%v: %+.1f pts)",
		s, first, 100*gapSkew, last, 100*gapIID))
	return out
}

// ScaleOptions configures the scalability study (experiment S2).
type ScaleOptions struct {
	Dataset     string
	ClientSizes []int
	Seed        uint64
	Progress    io.Writer
}

// DefaultScaleOptions measures 10→40 clients.
func DefaultScaleOptions() ScaleOptions {
	return ScaleOptions{Dataset: "fmnist", ClientSizes: []int{10, 20, 40}, Seed: 1}
}

// ScaleRow is one population size's timing.
type ScaleRow struct {
	Clients        int
	ClusteringTime time.Duration // warmup + proximity + HC
	RoundTime      time.Duration // one per-cluster FedAvg round
	K              int
	ARI            float64
}

// ScaleResult is the scalability table.
type ScaleResult struct{ Rows []ScaleRow }

// RunScale times FedClust's one-shot clustering phase and a training round
// as the population grows. The clustering phase is dominated by client
// warmup (parallel) plus the O(n²·d) proximity matrix and O(n³) HC — all
// cheap relative to training.
func RunScale(opts ScaleOptions) *ScaleResult {
	res := &ScaleResult{}
	for _, n := range opts.ClientSizes {
		w := QuickWorkload(opts.Dataset)
		w.Clients = n
		w.Rounds = 1
		env, truth := buildGroupEnv(w, opts.Seed)

		start := time.Now()
		init := nn.FlattenParams(env.NewModel())
		features := core.CollectPartialWeights(env, core.Config{}, init)
		prox := linalg.PairwiseDistances(linalg.Euclidean, features)
		den := cluster.Agglomerate(prox, cluster.Average)
		labels := den.CutLargestGap(1, n/2)
		clusteringTime := time.Since(start)

		start = time.Now()
		f := &core.FedClust{Cfg: core.Config{NumClusters: cluster.NumClusters(labels)}}
		f.Run(env)
		roundTime := time.Since(start)

		res.Rows = append(res.Rows, ScaleRow{
			Clients:        n,
			ClusteringTime: clusteringTime,
			RoundTime:      roundTime,
			K:              cluster.NumClusters(labels),
			ARI:            cluster.ARI(labels, truth),
		})
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  n=%-3d cluster=%v round=%v ARI=%.2f\n",
				n, clusteringTime, roundTime, cluster.ARI(labels, truth))
		}
	}
	return res
}

// Render prints the scalability table.
func (r *ScaleResult) Render(w io.Writer) {
	tab := NewTable("Clients", "ClusteringTime", "1-RoundTime", "K", "ARI")
	for _, row := range r.Rows {
		tab.AddRow(fmt.Sprintf("%d", row.Clients),
			row.ClusteringTime.Round(time.Millisecond).String(),
			row.RoundTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", row.K),
			fmt.Sprintf("%.2f", row.ARI))
	}
	tab.Render(w)
}

package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/cluster"
	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/linalg"
	"fedclust/internal/nn"
	"fedclust/internal/wire"
)

// CompressionOptions configures experiment A4: how lossy upload encodings
// affect FedClust's one-shot clustering. The partial-weight upload is
// FedClust's headline efficiency claim; narrow codecs shrink it further —
// if the clustering survives quantization, the claim compounds.
type CompressionOptions struct {
	Dataset  string
	Seed     uint64
	Quick    bool
	Progress io.Writer
}

// DefaultCompressionOptions probes on the fmnist stand-in.
func DefaultCompressionOptions() CompressionOptions {
	return CompressionOptions{Dataset: "fmnist", Seed: 1, Quick: true}
}

// CompressionRow is one codec's outcome.
type CompressionRow struct {
	Codec       wire.Codec
	UploadBytes int64 // total clustering upload across clients
	MaxError    float64
	ARI         float64
	K           int
}

// CompressionResult is the per-codec table.
type CompressionResult struct{ Rows []CompressionRow }

// RunCompression collects FedClust's partial-weight features once, then
// simulates uploading them under each codec (encode → decode) and
// re-clusters from the decoded features.
func RunCompression(opts CompressionOptions) *CompressionResult {
	w := PaperWorkload(opts.Dataset)
	if opts.Quick {
		w = QuickWorkload(opts.Dataset)
	}
	env, truth := buildGroupEnv(w, opts.Seed)
	cfg := core.Config{}
	init := nn.FlattenParams(env.NewModel())
	features := core.CollectPartialWeights(env, cfg, init)

	res := &CompressionResult{}
	var frame []byte // reused encode buffer across clients and codecs
	for _, c := range []wire.Codec{wire.Float64, wire.Float32, wire.Quant8} {
		decoded := make([][]float64, len(features))
		var total int64
		var maxErr float64
		for i, f := range features {
			frame = wire.EncodeInto(frame[:0], c, f)
			total += int64(len(frame))
			dec, err := wire.Decode(frame)
			if err != nil {
				panic(err) // cannot happen for freshly encoded frames
			}
			decoded[i] = dec
			if e := wire.MaxError(c, f); e > maxErr {
				maxErr = e
			}
		}
		prox := linalg.PairwiseDistances(linalg.Euclidean, decoded)
		den := cluster.Agglomerate(prox, cluster.Average)
		labels := den.CutBestSilhouette(prox, 2, len(features)/2, cluster.SilhouetteTolerance)
		row := CompressionRow{
			Codec:       c,
			UploadBytes: total,
			MaxError:    maxErr,
			ARI:         cluster.ARI(labels, truth),
			K:           cluster.NumClusters(labels),
		}
		res.Rows = append(res.Rows, row)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  %-8s upload=%s maxErr=%.2g ARI=%.2f K=%d\n",
				c, fl.FormatBytes(total), maxErr, row.ARI, row.K)
		}
	}
	return res
}

// Render prints the codec comparison.
func (r *CompressionResult) Render(w io.Writer) {
	tab := NewTable("Codec", "ClusteringUpload", "MaxDecodeErr", "ARI", "K")
	for _, row := range r.Rows {
		tab.AddRow(row.Codec.String(), fl.FormatBytes(row.UploadBytes),
			fmt.Sprintf("%.2g", row.MaxError), fmt.Sprintf("%.2f", row.ARI),
			fmt.Sprintf("%d", row.K))
	}
	tab.Render(w)
}

// ShapeChecks verifies quantization preserves the clustering.
func (r *CompressionResult) ShapeChecks() []string {
	var out []string
	var f64, q8 CompressionRow
	for _, row := range r.Rows {
		switch row.Codec {
		case wire.Float64:
			f64 = row
		case wire.Quant8:
			q8 = row
		}
	}
	ok1 := q8.ARI >= f64.ARI-1e-9 && q8.ARI >= 0.99
	ok2 := q8.UploadBytes*7 < f64.UploadBytes
	s := func(b bool) string {
		if b {
			return "PASS"
		}
		return "FAIL"
	}
	out = append(out, fmt.Sprintf("[%s] 8-bit quantized upload preserves clustering (ARI %.2f)", s(ok1), q8.ARI))
	out = append(out, fmt.Sprintf("[%s] quant8 upload ≥7× smaller (%s vs %s)",
		s(ok2), fl.FormatBytes(q8.UploadBytes), fl.FormatBytes(f64.UploadBytes)))
	return out
}

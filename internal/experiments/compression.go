package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/fl"
	"fedclust/internal/scenario"
	"fedclust/internal/wire"
)

// CompressionOptions configures experiment A4: the accuracy-vs-bytes
// frontier of the uplink codecs. Each (method, codec) cell is a full
// federated run under a straggler scenario with the environment's codec
// selection active — the engine compresses every uplink (sparse codecs
// through the error-feedback accumulator) and CommStats prices the exact
// framed bytes a networked run would measure, so the frontier is built
// from measured volume, not a scalar-count estimate.
type CompressionOptions struct {
	Dataset string
	Seed    uint64
	Quick   bool
	// Methods are the trainers swept (NewTrainer names). The first entry
	// is the benchmark config the shape checks are pinned to.
	Methods []string
	// Codecs are the uplink codecs swept. A Float64 baseline run is added
	// per method if the list omits it (the frontier is relative to it).
	Codecs []wire.Codec
	// TopKFrac is the sparse codecs' kept fraction (0 = the 1% default).
	TopKFrac float64
	// Rounds overrides the workload's schedule when > 0. Error feedback
	// at a 1% kept fraction needs tens of rounds to drain its residuals,
	// so the frontier compares codecs at convergence, not mid-transient
	// (at the workload's stock 8 quick rounds sparse codecs trail dense
	// by ~5pp; by 48-64 rounds the gap closes to noise).
	Rounds int
	// StragglerFrac puts that fraction of clients in a slow cohort
	// (SlowdownMax 2, deadline 1 — partial work, occasional misses);
	// 0 disables the scenario layer.
	StragglerFrac float64
	Progress      io.Writer
}

// DefaultCompressionOptions probes on the fmnist stand-in.
func DefaultCompressionOptions() CompressionOptions {
	return CompressionOptions{
		Dataset: "fmnist", Seed: 1, Quick: true,
		Methods:       []string{"FedAvg", "FedClust", "FedAvgStale"},
		Codecs:        []wire.Codec{wire.Float64, wire.Float32, wire.Quant8, wire.TopK, wire.TopKQuant8},
		TopKFrac:      fl.DefaultTopKFrac,
		Rounds:        64,
		StragglerFrac: 0.3,
	}
}

// CompressionRow is one (method, codec) run's outcome.
type CompressionRow struct {
	Method   string
	Codec    wire.Codec
	TopKFrac float64 // effective kept fraction (sparse codecs; 0 dense)
	// UpBytes/DownBytes are the run's total framed transport bytes (the
	// in-process estimate, which equals loopback measurement byte for
	// byte — see TestCommEstimateMatchesLoopbackMeasured).
	UpBytes   int64
	DownBytes int64
	AccPct    float64
	// DeltaPP is the final-accuracy change vs the method's Float64
	// baseline, in percentage points (negative = loss).
	DeltaPP float64
	// UpFactor is the measured uplink reduction vs the Float64 baseline
	// (baseline bytes / this run's bytes).
	UpFactor float64
}

// CompressionResult is the frontier table.
type CompressionResult struct {
	Rows []CompressionRow
}

// RunCompression sweeps methods × codecs and measures where each codec
// lands on the accuracy-vs-uplink-bytes frontier.
func RunCompression(opts CompressionOptions) *CompressionResult {
	w := PaperWorkload(opts.Dataset)
	if opts.Quick {
		w = QuickWorkload(opts.Dataset)
	}
	if opts.Rounds > 0 {
		w.Rounds = opts.Rounds
	}
	codecs := opts.Codecs
	if len(codecs) == 0 || codecs[0] != wire.Float64 {
		withBase := []wire.Codec{wire.Float64}
		for _, c := range codecs {
			if c != wire.Float64 {
				withBase = append(withBase, c)
			}
		}
		codecs = withBase
	}
	run := func(method string, c wire.Codec) *fl.Result {
		env := BuildEnv(w, opts.Seed)
		env.Codec = c
		env.TopKFrac = opts.TopKFrac
		if opts.StragglerFrac > 0 {
			env.Participation.Scenario = scenario.New(scenario.Config{
				StragglerFrac: opts.StragglerFrac, SlowdownMax: 2, Deadline: 1,
			}, opts.Seed, len(env.Clients))
		}
		return NewTrainer(method, w).Run(env)
	}
	res := &CompressionResult{}
	for _, m := range opts.Methods {
		var base CompressionRow
		for _, c := range codecs {
			r := run(m, c)
			row := CompressionRow{
				Method: m, Codec: c,
				UpBytes: r.Comm.UpBytes, DownBytes: r.Comm.DownBytes,
				AccPct: 100 * r.FinalAcc,
			}
			if c.Sparse() {
				row.TopKFrac = fl.NormalizeTopKFrac(opts.TopKFrac)
			}
			if c == wire.Float64 {
				base = row
			}
			row.DeltaPP = row.AccPct - base.AccPct
			if row.UpBytes > 0 {
				row.UpFactor = float64(base.UpBytes) / float64(row.UpBytes)
			}
			res.Rows = append(res.Rows, row)
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "  %-12s %-12s up=%-10s acc=%5.2f%% (Δ%+.2fpp, %4.1fx less uplink)\n",
					m, c, fl.FormatBytes(row.UpBytes), row.AccPct, row.DeltaPP, row.UpFactor)
			}
		}
	}
	return res
}

// Row returns the (method, codec) cell, or nil.
func (r *CompressionResult) Row(method string, c wire.Codec) *CompressionRow {
	for i := range r.Rows {
		if r.Rows[i].Method == method && r.Rows[i].Codec == c {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render prints the frontier.
func (r *CompressionResult) Render(w io.Writer) {
	tab := NewTable("Method", "Codec", "Frac", "Uplink", "Downlink", "Acc%", "ΔAcc(pp)", "UpReduction")
	for _, row := range r.Rows {
		frac := "-"
		if row.Codec.Sparse() {
			frac = fmt.Sprintf("%g", row.TopKFrac)
		}
		tab.AddRow(row.Method, row.Codec.String(), frac,
			fl.FormatBytes(row.UpBytes), fl.FormatBytes(row.DownBytes),
			fmt.Sprintf("%.2f", row.AccPct), fmt.Sprintf("%+.2f", row.DeltaPP),
			fmt.Sprintf("%.1fx", row.UpFactor))
	}
	tab.Render(w)
}

// CSV flattens the frontier for WriteCSV.
func (r *CompressionResult) CSV() (header []string, rows [][]string) {
	header = []string{"method", "codec", "topk_frac", "up_bytes", "down_bytes", "acc_pct", "delta_pp", "up_factor"}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Method, row.Codec.String(), fmt.Sprintf("%g", row.TopKFrac),
			fmt.Sprintf("%d", row.UpBytes), fmt.Sprintf("%d", row.DownBytes),
			fmt.Sprintf("%.2f", row.AccPct), fmt.Sprintf("%.2f", row.DeltaPP),
			fmt.Sprintf("%.2f", row.UpFactor),
		})
	}
	return header, rows
}

// ShapeChecks verifies the headline claim on the benchmark config (the
// first method in the sweep): sparse top-k with quantized values cuts
// measured uplink ≥10× at ≤1pp accuracy cost, and the plain sparse codec
// already clears the same bar.
func (r *CompressionResult) ShapeChecks() []string {
	if len(r.Rows) == 0 {
		return nil
	}
	bench := r.Rows[0].Method
	s := func(b bool) string {
		if b {
			return "PASS"
		}
		return "FAIL"
	}
	var out []string
	for _, c := range []wire.Codec{wire.TopKQuant8, wire.TopK} {
		row := r.Row(bench, c)
		if row == nil {
			out = append(out, fmt.Sprintf("[SKIP] %s not in the sweep", c))
			continue
		}
		ok := row.UpFactor >= 10 && row.DeltaPP >= -1
		out = append(out, fmt.Sprintf("[%s] %s %s (frac %g): %.1fx less uplink at %+.2fpp accuracy",
			s(ok), bench, c, row.TopKFrac, row.UpFactor, row.DeltaPP))
	}
	return out
}

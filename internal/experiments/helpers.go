package experiments

import (
	"fedclust/internal/data"
	"fedclust/internal/rng"
)

// generate is a local alias for data.Generate to keep workload builders
// compact.
func generate(cfg data.SynthConfig) (*data.Dataset, *data.Dataset) {
	return data.Generate(cfg)
}

// newRng is a local alias for rng.New.
func newRng(seed uint64) *rng.Rng { return rng.New(seed) }

package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/stats"
)

// Table1Cell is one (method, dataset) entry: accuracy over seeds.
type Table1Cell struct {
	Method  string
	Dataset string
	Accs    []float64 // fraction in [0,1], one per seed
}

// Mean returns the mean accuracy in percent.
func (c Table1Cell) Mean() float64 { return 100 * stats.Mean(c.Accs) }

// Std returns the accuracy standard deviation in percent.
func (c Table1Cell) Std() float64 { return 100 * stats.Std(c.Accs) }

// Table1Result holds the full method × dataset grid.
type Table1Result struct {
	Datasets []string
	Methods  []string
	Cells    map[string]map[string]*Table1Cell // method → dataset → cell
}

// Cell returns the entry for (method, dataset), creating it on first use.
func (t *Table1Result) Cell(method, dataset string) *Table1Cell {
	if t.Cells == nil {
		t.Cells = map[string]map[string]*Table1Cell{}
	}
	if t.Cells[method] == nil {
		t.Cells[method] = map[string]*Table1Cell{}
	}
	if t.Cells[method][dataset] == nil {
		t.Cells[method][dataset] = &Table1Cell{Method: method, Dataset: dataset}
	}
	return t.Cells[method][dataset]
}

// Table1Options selects the scope of a Table-I run.
type Table1Options struct {
	Datasets []string
	Methods  []string
	Seeds    []uint64
	Quick    bool
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// DefaultTable1Options reproduces the full table with 3 seeds.
func DefaultTable1Options() Table1Options {
	return Table1Options{
		Datasets: DatasetNames,
		Methods:  MethodNames,
		Seeds:    []uint64{1, 2, 3},
	}
}

// QuickTable1Options is the reduced benchmark/CI variant.
func QuickTable1Options() Table1Options {
	return Table1Options{
		Datasets: DatasetNames,
		Methods:  MethodNames,
		Seeds:    []uint64{1},
		Quick:    true,
	}
}

// RunTable1 executes every (method, dataset, seed) combination and
// aggregates accuracies — the reproduction of the paper's Table I.
func RunTable1(opts Table1Options) *Table1Result {
	res := &Table1Result{Datasets: opts.Datasets, Methods: opts.Methods}
	for _, ds := range opts.Datasets {
		for _, seed := range opts.Seeds {
			var w Workload
			if opts.Quick {
				w = QuickWorkload(ds)
			} else {
				w = PaperWorkload(ds)
			}
			env := BuildEnv(w, seed)
			for _, m := range opts.Methods {
				trainer := NewTrainer(m, w)
				r := trainer.Run(env)
				res.Cell(m, ds).Accs = append(res.Cell(m, ds).Accs, r.FinalAcc)
				if opts.Progress != nil {
					fmt.Fprintf(opts.Progress, "  %-8s %-8s seed=%d acc=%.2f%% (%s)\n",
						m, ds, seed, 100*r.FinalAcc, r.Comm.String())
				}
			}
		}
	}
	return res
}

// PaperTable1 is the published Table I (percent accuracy, mean ± std) for
// shape comparison in reports and EXPERIMENTS.md.
var PaperTable1 = map[string]map[string][2]float64{
	"FedAvg":   {"cifar10": {38.25, 2.98}, "fmnist": {81.93, 0.64}, "svhn": {61.26, 0.95}},
	"FedProx":  {"cifar10": {51.60, 1.40}, "fmnist": {74.53, 2.16}, "svhn": {79.64, 0.80}},
	"CFL":      {"cifar10": {41.50, 0.35}, "fmnist": {74.01, 1.19}, "svhn": {61.96, 1.58}},
	"IFCA":     {"cifar10": {50.51, 0.61}, "fmnist": {84.57, 0.41}, "svhn": {74.57, 0.40}},
	"PACFL":    {"cifar10": {51.02, 0.24}, "fmnist": {85.30, 0.28}, "svhn": {76.35, 0.46}},
	"FedClust": {"cifar10": {60.25, 0.58}, "fmnist": {95.51, 0.17}, "svhn": {78.23, 0.30}},
}

// Render writes the measured grid (and the paper's numbers alongside) in
// the paper's layout: one row per method, one column per dataset.
func (t *Table1Result) Render(w io.Writer) {
	tab := NewTable(append([]string{"Method"}, headerCols(t.Datasets)...)...)
	for _, m := range t.Methods {
		row := []string{m}
		for _, ds := range t.Datasets {
			c := t.Cell(m, ds)
			cell := "—"
			if len(c.Accs) > 0 {
				cell = fmt.Sprintf("%.2f ± %.2f", c.Mean(), c.Std())
			}
			if paper, ok := PaperTable1[m][ds]; ok {
				cell += fmt.Sprintf("  (paper %.2f)", paper[0])
			}
			row = append(row, cell)
		}
		tab.AddRow(row...)
	}
	tab.Render(w)
}

func headerCols(datasets []string) []string {
	out := make([]string, len(datasets))
	for i, d := range datasets {
		switch d {
		case "cifar10":
			out[i] = "CIFAR-10"
		case "fmnist":
			out[i] = "FMNIST"
		case "svhn":
			out[i] = "SVHN"
		default:
			out[i] = d
		}
	}
	return out
}

// ShapeChecks verifies the qualitative claims of Table I against the
// measured grid, returning one line per check. A check passes when the
// measured ordering matches the paper's:
//   - FedClust beats FedAvg and CFL on every dataset,
//   - FedClust is the best method on CIFAR-10 and FMNIST,
//   - FedClust is within a few points of the best on SVHN.
func (t *Table1Result) ShapeChecks() []string {
	var out []string
	check := func(name string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] %s", status, name))
	}
	mean := func(m, ds string) float64 { return t.Cell(m, ds).Mean() }
	for _, ds := range t.Datasets {
		check(fmt.Sprintf("FedClust > FedAvg on %s", ds), mean("FedClust", ds) > mean("FedAvg", ds))
		check(fmt.Sprintf("FedClust > CFL on %s", ds), mean("FedClust", ds) > mean("CFL", ds))
	}
	for _, ds := range []string{"cifar10", "fmnist"} {
		if !contains(t.Datasets, ds) {
			continue
		}
		best := true
		for _, m := range t.Methods {
			if m != "FedClust" && mean(m, ds) > mean("FedClust", ds) {
				best = false
			}
		}
		check(fmt.Sprintf("FedClust best on %s", ds), best)
	}
	if contains(t.Datasets, "svhn") {
		bestAcc := 0.0
		for _, m := range t.Methods {
			if a := mean(m, "svhn"); a > bestAcc {
				bestAcc = a
			}
		}
		check("FedClust within 5 pts of best on svhn", bestAcc-mean("FedClust", "svhn") <= 5)
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

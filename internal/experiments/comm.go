package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/cluster"
	"fedclust/internal/fl"
)

// CommRow is one method's communication profile for the cluster-formation
// comparison (experiment C1 in DESIGN.md).
type CommRow struct {
	Method string
	// FormationRound is when the clustering last changed (0 = one-shot).
	FormationRound int
	// FormationUpBytes is uplink traffic spent before clusters stabilized.
	FormationUpBytes int64
	// TotalUp/TotalDown are whole-run traffic.
	TotalUp, TotalDown int64
	// K is the discovered/used cluster count; ARI scores it against the
	// ground-truth groups.
	K   int
	ARI float64
	Acc float64
}

// CommResult is the full C1 comparison.
type CommResult struct {
	Rows []CommRow
}

// CommOptions configures the comparison. The workload is the two-group
// construction (the setting where cluster formation is well defined).
type CommOptions struct {
	Dataset         string
	ClientsPerGroup int
	Rounds          int
	Quick           bool
	Seed            uint64
	Progress        io.Writer
}

// DefaultCommOptions compares the three clustering methods on fmnist-like
// data.
func DefaultCommOptions() CommOptions {
	return CommOptions{Dataset: "fmnist", ClientsPerGroup: 5, Rounds: 15, Seed: 1}
}

// RunComm executes FedClust, PACFL, IFCA and CFL on a two-group workload
// and reports when their clusters stabilize and how many uplink bytes that
// stabilization cost — the paper's "one-shot, partial-weights" efficiency
// claim versus iterative baselines.
func RunComm(opts CommOptions) *CommResult {
	w := PaperWorkload(opts.Dataset)
	if opts.Quick {
		w = QuickWorkload(opts.Dataset)
	}
	w.Rounds = opts.Rounds

	env, truth := buildGroupEnv(w, opts.Seed)
	res := &CommResult{}
	for _, name := range []string{"FedClust", "PACFL", "IFCA", "CFL"} {
		trainer := NewTrainer(name, w)
		r := trainer.Run(env)
		ari := 0.0
		k := 0
		if r.Clusters != nil {
			ari = cluster.ARI(r.Clusters, truth)
			k = cluster.NumClusters(r.Clusters)
		}
		res.Rows = append(res.Rows, CommRow{
			Method:           name,
			FormationRound:   r.ClusterFormationRound,
			FormationUpBytes: r.ClusterFormationUpBytes,
			TotalUp:          r.Comm.UpBytes,
			TotalDown:        r.Comm.DownBytes,
			K:                k,
			ARI:              ari,
			Acc:              r.FinalAcc,
		})
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  %-8s formed@%d upload-to-form=%s ARI=%.2f\n",
				name, r.ClusterFormationRound, fl.FormatBytes(r.ClusterFormationUpBytes), ari)
		}
	}
	return res
}

// buildGroupEnv constructs the two-group environment for a workload.
func buildGroupEnv(w Workload, seed uint64) (*fl.Env, []int) {
	// Reuse BuildEnv machinery but substitute the group partition.
	env := BuildEnv(w, seed) // builds datasets deterministically
	// Rebuild clients with the group partition over the same data.
	cfg := workloadDataset(w, seed)
	trainSet, testSet := generate(cfg)
	half := cfg.Classes / 2
	gA := make([]int, half)
	gB := make([]int, cfg.Classes-half)
	for i := range gA {
		gA[i] = i
	}
	for i := range gB {
		gB[i] = half + i
	}
	perGroup := w.Clients / 2
	clients, truth := fl.BuildGroupClients(trainSet, testSet,
		[][]int{gA, gB}, []int{perGroup, w.Clients - perGroup}, newRng(seed))
	env.Clients = clients
	return env, truth
}

// Render prints the comparison table.
func (c *CommResult) Render(w io.Writer) {
	tab := NewTable("Method", "FormedAtRound", "UplinkToForm", "TotalUp", "TotalDown", "K", "ARI", "Acc%")
	for _, r := range c.Rows {
		tab.AddRow(r.Method,
			fmt.Sprintf("%d", r.FormationRound),
			fl.FormatBytes(r.FormationUpBytes),
			fl.FormatBytes(r.TotalUp),
			fl.FormatBytes(r.TotalDown),
			fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%.2f", r.ARI),
			fmt.Sprintf("%.1f", 100*r.Acc))
	}
	tab.Render(w)
}

// ShapeChecks verifies the qualitative communication claims.
func (c *CommResult) ShapeChecks() []string {
	byName := map[string]CommRow{}
	for _, r := range c.Rows {
		byName[r.Method] = r
	}
	var out []string
	check := func(name string, ok bool) {
		s := "PASS"
		if !ok {
			s = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] %s", s, name))
	}
	fc, cfl, ifca := byName["FedClust"], byName["CFL"], byName["IFCA"]
	check("FedClust clusters one-shot (round 0)", fc.FormationRound == 0)
	check("FedClust formation uplink < CFL's", fc.FormationUpBytes < cfl.FormationUpBytes || cfl.FormationRound == 0)
	check("FedClust downlink < IFCA's (K models/round)", fc.TotalDown < ifca.TotalDown)
	check("FedClust recovers true groups (ARI=1)", fc.ARI >= 0.99)
	return out
}

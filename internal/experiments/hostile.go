package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/fl"
	"fedclust/internal/scenario"
)

// HostileOptions configures the hostile-world sweep (experiment R1): the
// accuracy-vs-byzantine-fraction frontier for clustered vs global
// aggregation under each robust aggregator.
type HostileOptions struct {
	Dataset string
	// Alpha overrides the population's Dirichlet concentration (0 = the
	// workload default, the paper's Dir(0.1)). The default sweep uses 1.0:
	// the robustness experiment isolates the attack variable, and under
	// extreme heterogeneity a rare class's only informative update is also
	// the statistical outlier at its coordinates, so every order-statistic
	// defense pays a benign-accuracy cost that confounds the frontier
	// (DESIGN.md §11 records that tension; sweep -alpha 0.1 to see it).
	Alpha float64
	// ByzantineFracs are the attacker-cohort fractions swept; include 0
	// for the benign baseline every recovery ratio is measured against.
	ByzantineFracs []float64
	// Attack selects the byzantine behavior (scenario.ParseAttack names:
	// label-noise, sign-flip, garbage, mixed).
	Attack string
	// AttackScale is the garbage-attack magnitude (0 = default).
	AttackScale float64
	// LabelNoiseRate is the label-noise flip probability (0 = default).
	LabelNoiseRate float64
	// ChurnFrac/ChurnHorizon draw a churn cohort joining/leaving inside
	// the horizon (0 horizon = the run's round count).
	ChurnFrac    float64
	ChurnHorizon int
	// DriftFrac/DriftRound schedule concept drift for a client cohort.
	DriftFrac  float64
	DriftRound int
	// Aggregators are the server strategies swept (fl.NewAggregator
	// names). Each strategy's assumed byzantine fraction is
	// max(sweptFrac, Byzantines/n): the scenario draws exactly ⌊frac·n⌋
	// attackers, so the drawn term only matters as a guard — the defense
	// is always told at least the truth.
	Aggregators []string
	Methods     []string
	Seed        uint64
	Quick       bool
	Progress    io.Writer
}

// DefaultHostileOptions sweeps a sign-flip cohort 0 → 30% under the four
// aggregation strategies, FedClust vs the global baselines.
func DefaultHostileOptions() HostileOptions {
	return HostileOptions{
		Dataset:        "fmnist",
		Alpha:          1,
		ByzantineFracs: []float64{0, 0.1, 0.2, 0.3},
		Attack:         "sign-flip",
		Aggregators:    []string{"mean", "trimmed", "median", "multi-krum"},
		Methods:        []string{"FedAvg", "FedClust"},
		Seed:           1,
	}
}

// HostileCell is one (method, aggregator, byzantine-fraction) outcome.
// Acc averages every client; HonestAcc averages the non-byzantine ones —
// the metric a defense can actually defend. An attacker's own accuracy is
// out of any aggregator's hands (its uplink is hostile by construction;
// under sign-flip its classes are actively anti-learned), so the
// recovery claims are about HonestAcc, while the Acc/HonestAcc gap
// measures how much damage stays confined to the attackers themselves.
type HostileCell struct {
	Acc            float64
	HonestAcc      float64
	FormationRound int
}

// HostileResult holds the sweep grid plus the drawn cohort shapes.
type HostileResult struct {
	Fracs       []float64
	Aggregators []string
	Methods     []string
	Attack      string
	// Cells[method][aggregator][frac] is the final personalized accuracy.
	Cells map[string]map[string]map[float64]HostileCell
	// Byzantines[frac] is the attacker head-count drawn at that fraction.
	Byzantines map[float64]int
	Clients    int

	// byzMask[frac][i] marks client i byzantine at that sweep point;
	// benignPerClient[method] is the per-client accuracy of the benign
	// (frac 0) run, the honest-subset baseline ShapeChecks measures
	// recovery against.
	byzMask         map[float64][]bool
	benignPerClient map[string][]float64
}

// honestMean averages accs over the clients mask marks honest. A nil
// mask (benign sweep point) averages everyone.
func honestMean(accs []float64, mask []bool) float64 {
	var sum float64
	n := 0
	for i, a := range accs {
		if mask != nil && mask[i] {
			continue
		}
		sum += a
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunHostile trains every method under every aggregation strategy at
// every byzantine fraction, all on one seeded hostile scenario family —
// the accuracy-vs-byzantine-fraction frontier behind the FedClust
// isolation claim (DESIGN.md §11).
func RunHostile(opts HostileOptions) *HostileResult {
	res := &HostileResult{
		Fracs: opts.ByzantineFracs, Aggregators: opts.Aggregators,
		Methods: opts.Methods, Attack: opts.Attack,
		Cells:           map[string]map[string]map[float64]HostileCell{},
		Byzantines:      map[float64]int{},
		byzMask:         map[float64][]bool{},
		benignPerClient: map[string][]float64{},
	}
	for _, m := range opts.Methods {
		res.Cells[m] = map[string]map[float64]HostileCell{}
		for _, a := range opts.Aggregators {
			res.Cells[m][a] = map[float64]HostileCell{}
		}
	}
	var w Workload
	if opts.Quick {
		w = QuickWorkload(opts.Dataset)
	} else {
		w = PaperWorkload(opts.Dataset)
	}
	if opts.Alpha > 0 {
		w.Alpha = opts.Alpha
	}
	env := BuildEnv(w, opts.Seed)
	res.Clients = len(env.Clients)
	horizon := opts.ChurnHorizon
	if horizon == 0 {
		horizon = w.Rounds
	}
	attack, err := scenario.ParseAttack(opts.Attack)
	if err != nil {
		panic(err.Error())
	}
	for _, frac := range opts.ByzantineFracs {
		env.Participation.Scenario = nil
		var mask []bool
		if frac > 0 || opts.ChurnFrac > 0 || opts.DriftFrac > 0 {
			model := scenario.New(scenario.Config{
				ByzantineFrac:  frac,
				Attack:         attack,
				AttackScale:    opts.AttackScale,
				LabelNoiseRate: opts.LabelNoiseRate,
				ChurnFrac:      opts.ChurnFrac,
				ChurnHorizon:   horizon,
				DriftFrac:      opts.DriftFrac,
				DriftRound:     opts.DriftRound,
			}, opts.Seed, len(env.Clients))
			env.Participation.Scenario = model
			res.Byzantines[frac] = model.Byzantines()
			mask = make([]bool, len(env.Clients))
			for i, p := range model.Profiles() {
				mask[i] = p.Byzantine
			}
			res.byzMask[frac] = mask
		}
		// The defense is sized to the drawn cohort when that exceeds the
		// nominal rate (see the Aggregators field comment).
		assumed := frac
		if drawn := float64(res.Byzantines[frac]) / float64(len(env.Clients)); drawn > assumed {
			assumed = drawn
		}
		if assumed >= 0.5 {
			assumed = 0.49 // NewAggregator's domain; a majority is unrecoverable anyway
		}
		for _, aggName := range opts.Aggregators {
			agg, err := fl.NewAggregator(aggName, assumed)
			if err != nil {
				panic(err.Error())
			}
			env.Aggregator = agg
			for _, m := range opts.Methods {
				r := NewTrainer(m, w).Run(env)
				res.Cells[m][aggName][frac] = HostileCell{
					Acc:            r.FinalAcc,
					HonestAcc:      honestMean(r.PerClientAcc, mask),
					FormationRound: r.ClusterFormationRound,
				}
				if frac == 0 {
					if _, ok := res.benignPerClient[m]; !ok {
						res.benignPerClient[m] = append([]float64(nil), r.PerClientAcc...)
					}
				}
				if opts.Progress != nil {
					fmt.Fprintf(opts.Progress, "  byz=%-4v agg=%-10s %-10s acc=%.2f%% honest=%.2f%%\n",
						frac, aggName, m, 100*r.FinalAcc, 100*honestMean(r.PerClientAcc, mask))
				}
			}
		}
	}
	env.Aggregator = nil
	return res
}

// Render prints one accuracy grid (method × fraction) per aggregator.
func (r *HostileResult) Render(w io.Writer) {
	fmt.Fprintf(w, "attack: %s over %d clients", r.Attack, r.Clients)
	for _, f := range r.Fracs {
		if n, ok := r.Byzantines[f]; ok && f > 0 {
			fmt.Fprintf(w, "  byz@%v=%d", f, n)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "cells: final personalized accuracy %, all clients / honest (non-byzantine) clients")
	for _, a := range r.Aggregators {
		fmt.Fprintf(w, "\naggregator: %s\n", a)
		header := []string{"Method"}
		for _, f := range r.Fracs {
			header = append(header, fmt.Sprintf("acc@byz=%v", f))
		}
		tab := NewTable(header...)
		for _, m := range r.Methods {
			row := []string{m}
			for _, f := range r.Fracs {
				c, ok := r.Cells[m][a][f]
				switch {
				case !ok:
					row = append(row, "-")
				case r.Byzantines[f] > 0:
					row = append(row, fmt.Sprintf("%.1f/%.1f", 100*c.Acc, 100*c.HonestAcc))
				default:
					row = append(row, fmt.Sprintf("%.1f", 100*c.Acc))
				}
			}
			tab.AddRow(row...)
		}
		tab.Render(w)
	}
}

// CSV flattens the frontier for WriteCSV.
func (r *HostileResult) CSV() (header []string, rows [][]string) {
	header = []string{"method", "aggregator", "byzantine_frac", "acc_pct", "honest_acc_pct"}
	for _, m := range r.Methods {
		for _, a := range r.Aggregators {
			for _, f := range r.Fracs {
				c, ok := r.Cells[m][a][f]
				if !ok {
					continue
				}
				rows = append(rows, []string{m, a, fmt.Sprintf("%v", f),
					fmt.Sprintf("%.2f", 100*c.Acc), fmt.Sprintf("%.2f", 100*c.HonestAcc)})
			}
		}
	}
	return header, rows
}

// benign returns a method's benign-baseline accuracy: its frac-0 cell
// under the plain mean (every aggregator equals the mean at fraction 0,
// so the first aggregator that has the cell serves).
func (r *HostileResult) benign(method string) (float64, bool) {
	for _, a := range append([]string{"mean"}, r.Aggregators...) {
		if c, ok := r.Cells[method][a][0]; ok {
			return c.Acc, true
		}
	}
	return 0, false
}

// benignHonest is the honest-subset baseline at sweep point frac: the
// benign run's per-client accuracies averaged over exactly the clients
// that stay honest at frac — the same clients the attacked HonestAcc
// averages, so recovery is a like-for-like ratio.
func (r *HostileResult) benignHonest(method string, frac float64) (float64, bool) {
	accs, ok := r.benignPerClient[method]
	if !ok || len(accs) == 0 {
		return 0, false
	}
	return honestMean(accs, r.byzMask[frac]), true
}

// ShapeChecks verifies the robustness claims the sweep exists to back.
// Recovery is checked at the 20% design point (the largest attacked
// fraction ≤ 0.2): each robust aggregator keeps the honest clients
// within 90% of their own benign accuracy there. 20% is the
// conventional byzantine demonstration rate, and the point these
// defenses are specified for — order statistics need the attackers to
// be a clear minority of the gather (trimming 2·⌊0.3·10⌋ of 10 inputs
// keeps 4; Krum scoring needs n−f−2 honest-dominated neighbors), so
// larger fractions remain on the rendered frontier as the stress
// regime rather than a pass/fail claim. Degradation of the undefended
// mean is checked at the harshest fraction, where it is most visible.
func (r *HostileResult) ShapeChecks() []string {
	var out []string
	check := func(ok bool, format string, args ...any) {
		s := "PASS"
		if !ok {
			s = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] ", s)+fmt.Sprintf(format, args...))
	}
	atk := 0.0    // harshest attacked fraction: the degradation point
	design := 0.0 // largest attacked fraction ≤ 0.2: the recovery point
	for _, f := range r.Fracs {
		if f > atk {
			atk = f
		}
		if f > design && f <= 0.2+1e-9 {
			design = f
		}
	}
	if atk == 0 {
		return out
	}
	if design == 0 {
		design = atk
	}
	for _, m := range r.Methods {
		base, ok := r.benign(m)
		if !ok || base == 0 {
			continue
		}
		honestBase, ok := r.benignHonest(m, design)
		if !ok || honestBase == 0 {
			honestBase = base
		}
		for _, a := range r.Aggregators {
			if a == "mean" {
				continue
			}
			c, ok := r.Cells[m][a][design]
			if !ok {
				continue
			}
			check(c.HonestAcc >= 0.9*honestBase,
				"%s + %s keeps honest clients >=90%% of benign at byz=%v (%.1f%% vs %.1f%%)",
				m, a, design, 100*c.HonestAcc, 100*honestBase)
		}
		// The degradation claim is about the run as a whole: the undefended
		// mean lets the attack in, so the all-client accuracy falls. (The
		// honest subset is the wrong lens here — FedClust's isolation keeps
		// honest clusters near-benign even undefended, which is the
		// isolation claim, not a failed attack.)
		if c, ok := r.Cells[m]["mean"][atk]; ok {
			check(c.Acc < base,
				"%s + undefended mean degrades at byz=%v (%.1f%% vs benign %.1f%%)",
				m, atk, 100*c.Acc, 100*base)
		}
	}
	return out
}

package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/scenario"
)

// StragglerOptions configures the system-heterogeneity sweep (experiment
// H1): every method trained under a deterministic straggler/dropout
// scenario at increasing per-round dropout rates.
type StragglerOptions struct {
	Dataset string
	// DropoutRates are the per-round offline probabilities swept.
	DropoutRates []float64
	// StragglerFrac/SlowdownMax/Deadline/Jitter parameterize the
	// scenario model (see scenario.Config).
	StragglerFrac float64
	SlowdownMax   float64
	Deadline      float64
	Jitter        float64
	// Scenario disables the heterogeneity layer entirely when false —
	// the control sweep (rates are then ignored beyond the first).
	Scenario bool
	Methods  []string
	Seed     uint64
	Quick    bool
	Progress io.Writer
}

// DefaultStragglerOptions sweeps dropout 0 → 0.5 with a 30% straggler
// cohort under the paper's six methods plus the two staleness-aware
// aggregators.
func DefaultStragglerOptions() StragglerOptions {
	return StragglerOptions{
		Dataset:       "fmnist",
		DropoutRates:  []float64{0, 0.1, 0.3, 0.5},
		StragglerFrac: 0.3,
		SlowdownMax:   4,
		Deadline:      1,
		Scenario:      true,
		Methods:       append(append([]string{}, MethodNames...), "FedAvgStale", "FedBuff"),
		Seed:          1,
	}
}

// StragglerCell is one (method, dropout-rate) outcome.
type StragglerCell struct {
	Acc            float64
	FormationRound int
}

// StragglerResult holds the sweep grid plus the drawn scenario shape.
type StragglerResult struct {
	Rates      []float64
	Methods    []string
	Cells      map[string]map[float64]StragglerCell
	Stragglers int // clients in the slow cohort (population-level, rate-independent)
	Clients    int
}

// RunStragglers trains every method at every dropout rate under a seeded
// scenario model and records final personalized accuracy and the
// cluster-formation round.
func RunStragglers(opts StragglerOptions) *StragglerResult {
	res := &StragglerResult{Rates: opts.DropoutRates, Methods: opts.Methods,
		Cells: map[string]map[float64]StragglerCell{}}
	for _, m := range opts.Methods {
		res.Cells[m] = map[float64]StragglerCell{}
	}
	// One environment serves the whole sweep: only the scenario model
	// differs per rate, and warm engine-runtime reuse is bit-equivalent
	// to a fresh build (pinned by the engine's warm-runtime tests).
	var w Workload
	if opts.Quick {
		w = QuickWorkload(opts.Dataset)
		// Partial work needs a divisible local pass: with the quick
		// preset's single epoch a straggler either finishes everything or
		// nothing, and the sweep would measure permanent exclusion
		// instead of the partial-epoch weighting it exists to exercise.
		w.Epochs = 2
	} else {
		w = PaperWorkload(opts.Dataset)
	}
	env := BuildEnv(w, opts.Seed)
	res.Clients = len(env.Clients)
	for _, rate := range opts.DropoutRates {
		env.Participation.Scenario = nil
		if opts.Scenario {
			model := scenario.New(scenario.Config{
				StragglerFrac: opts.StragglerFrac,
				SlowdownMax:   opts.SlowdownMax,
				DropoutRate:   rate,
				Deadline:      opts.Deadline,
				Jitter:        opts.Jitter,
			}, opts.Seed, len(env.Clients))
			env.Participation.Scenario = model
			res.Stragglers = model.Stragglers()
		}
		for _, m := range opts.Methods {
			r := NewTrainer(m, w).Run(env)
			res.Cells[m][rate] = StragglerCell{Acc: r.FinalAcc, FormationRound: r.ClusterFormationRound}
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "  drop=%-4v %-12s acc=%.2f%% formed@%d\n",
					rate, m, 100*r.FinalAcc, r.ClusterFormationRound)
			}
		}
		if !opts.Scenario {
			break // control run: nothing varies across rates
		}
	}
	return res
}

// Render prints accuracy and cluster-formation grids (method × rate).
func (r *StragglerResult) Render(w io.Writer) {
	fmt.Fprintf(w, "scenario: %d/%d clients in the straggler cohort\n\n", r.Stragglers, r.Clients)
	header := []string{"Method"}
	for _, rate := range r.Rates {
		header = append(header, fmt.Sprintf("acc@drop=%v", rate))
	}
	tab := NewTable(header...)
	for _, m := range r.Methods {
		row := []string{m}
		for _, rate := range r.Rates {
			c, ok := r.Cells[m][rate]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", 100*c.Acc))
		}
		tab.AddRow(row...)
	}
	tab.Render(w)

	fmt.Fprintln(w)
	header = []string{"Method"}
	for _, rate := range r.Rates {
		header = append(header, fmt.Sprintf("formed@drop=%v", rate))
	}
	form := NewTable(header...)
	for _, m := range r.Methods {
		row := []string{m}
		for _, rate := range r.Rates {
			c, ok := r.Cells[m][rate]
			switch {
			case !ok:
				row = append(row, "-")
			case c.FormationRound < 0:
				row = append(row, "n/a")
			default:
				row = append(row, fmt.Sprintf("%d", c.FormationRound))
			}
		}
		form.AddRow(row...)
	}
	form.Render(w)
}

// CSV flattens the sweep for WriteCSV.
func (r *StragglerResult) CSV() (header []string, rows [][]string) {
	header = []string{"method", "dropout_rate", "acc_pct", "formation_round"}
	for _, m := range r.Methods {
		for _, rate := range r.Rates {
			c, ok := r.Cells[m][rate]
			if !ok {
				continue
			}
			rows = append(rows, []string{m, fmt.Sprintf("%v", rate),
				fmt.Sprintf("%.2f", 100*c.Acc), fmt.Sprintf("%d", c.FormationRound)})
		}
	}
	return header, rows
}

// ShapeChecks verifies the expected system-heterogeneity behaviour.
func (r *StragglerResult) ShapeChecks() []string {
	var out []string
	if len(r.Rates) < 2 {
		return out
	}
	// -dropouts order is user-controlled; compare the extreme rates, not
	// the first and last listed.
	lo, hi := r.Rates[0], r.Rates[0]
	for _, rate := range r.Rates[1:] {
		if rate < lo {
			lo = rate
		}
		if rate > hi {
			hi = rate
		}
	}
	check := func(ok bool, format string, args ...any) {
		s := "PASS"
		if !ok {
			s = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] ", s)+fmt.Sprintf(format, args...))
	}
	c, okLo := r.Cells["FedAvg"][lo]
	chi, okHi := r.Cells["FedAvg"][hi]
	if okLo && okHi {
		check(c.Acc+0.03 >= chi.Acc,
			"FedAvg does not improve under dropout (%.1f%% @ %v vs %.1f%% @ %v)",
			100*c.Acc, lo, 100*chi.Acc, hi)
	}
	if s, ok := r.Cells["FedAvgStale"][hi]; ok && okHi {
		check(s.Acc+0.05 >= chi.Acc,
			"stale-decay aggregation holds up at drop=%v (%.1f%% vs FedAvg %.1f%%)",
			hi, 100*s.Acc, 100*chi.Acc)
	}
	return out
}

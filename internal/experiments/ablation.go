package experiments

import (
	"fmt"
	"io"

	"fedclust/internal/cluster"
	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/linalg"
	"fedclust/internal/nn"
)

// LayerAblationOptions configures experiment A1: which layer's weights
// make the best clustering feature — the quantitative version of Fig. 1
// across every weight layer of LeNet-5.
type LayerAblationOptions struct {
	Dataset  string
	Seed     uint64
	Quick    bool
	Progress io.Writer
}

// DefaultLayerAblationOptions probes on the fmnist stand-in.
func DefaultLayerAblationOptions() LayerAblationOptions {
	return LayerAblationOptions{Dataset: "fmnist", Seed: 1, Quick: true}
}

// LayerAblationRow is one layer's cluster-recovery quality.
type LayerAblationRow struct {
	Layer int // 1-based weight-layer index
	Name  string
	ARI   float64
	Block float64
}

// LayerAblationResult is the per-layer table.
type LayerAblationResult struct{ Rows []LayerAblationRow }

// RunLayerAblation trains the two-group population once and scores every
// weight layer as a clustering feature.
func RunLayerAblation(opts LayerAblationOptions) *LayerAblationResult {
	w := PaperWorkload(opts.Dataset)
	if opts.Quick {
		w = QuickWorkload(opts.Dataset)
	}
	env, truth := buildGroupEnv(w, opts.Seed)

	// One local training pass per client; probe all layers from it.
	init := nn.FlattenParams(env.NewModel())
	n := len(env.Clients)
	models := make([]*nn.Sequential, n)
	env.ParallelClients(n, func(i int) {
		m := env.NewModel()
		nn.LoadParams(m, init)
		fl.LocalUpdate(m, env.Clients[i].Train, env.Local, env.ClientRng(i, 0))
		models[i] = m
	})
	ref := env.NewModel()
	numWL := nn.NumWeightLayers(ref)
	wl := nn.WeightLayers(ref)
	res := &LayerAblationResult{}
	for layer := 0; layer < numWL; layer++ {
		feats := make([][]float64, n)
		for i, m := range models {
			feats[i] = nn.LayerParamVector(m, layer)
		}
		dist := linalg.PairwiseDistances(linalg.Euclidean, feats)
		labels := cluster.Agglomerate(dist, cluster.Average).CutK(2)
		row := LayerAblationRow{
			Layer: layer + 1,
			Name:  ref.Layers[wl[layer]].Name(),
			ARI:   cluster.ARI(labels, truth),
			Block: BlockScore(dist, truth),
		}
		res.Rows = append(res.Rows, row)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  layer %d (%s): ARI=%.2f block=%.2f\n",
				row.Layer, row.Name, row.ARI, row.Block)
		}
	}
	return res
}

// Render prints the per-layer table.
func (r *LayerAblationResult) Render(w io.Writer) {
	tab := NewTable("WeightLayer", "Layer", "ARI", "BlockScore")
	for _, row := range r.Rows {
		tab.AddRow(fmt.Sprintf("%d", row.Layer), row.Name,
			fmt.Sprintf("%.2f", row.ARI), fmt.Sprintf("%.2f", row.Block))
	}
	tab.Render(w)
}

// ShapeChecks verifies the paper's §II claim quantitatively: the final
// layer is at least as good a clustering feature as any earlier layer.
func (r *LayerAblationResult) ShapeChecks() []string {
	if len(r.Rows) == 0 {
		return []string{"[FAIL] no layers probed"}
	}
	last := r.Rows[len(r.Rows)-1]
	best := last.ARI
	for _, row := range r.Rows {
		if row.ARI > best {
			best = row.ARI
		}
	}
	ok := last.ARI >= best
	s := "PASS"
	if !ok {
		s = "FAIL"
	}
	return []string{fmt.Sprintf("[%s] final layer ARI (%.2f) matches the best layer (%.2f)",
		s, last.ARI, best)}
}

// LinkageAblationOptions configures experiment A2: FedClust's HC linkage
// choice.
type LinkageAblationOptions struct {
	Dataset  string
	Seed     uint64
	Quick    bool
	Progress io.Writer
}

// DefaultLinkageAblationOptions uses the fmnist stand-in.
func DefaultLinkageAblationOptions() LinkageAblationOptions {
	return LinkageAblationOptions{Dataset: "fmnist", Seed: 1, Quick: true}
}

// LinkageAblationRow is one linkage's outcome.
type LinkageAblationRow struct {
	Linkage cluster.Linkage
	K       int
	ARI     float64
	Acc     float64
}

// LinkageAblationResult is the per-linkage table.
type LinkageAblationResult struct{ Rows []LinkageAblationRow }

// RunLinkageAblation runs full FedClust under each linkage.
func RunLinkageAblation(opts LinkageAblationOptions) *LinkageAblationResult {
	w := PaperWorkload(opts.Dataset)
	if opts.Quick {
		w = QuickWorkload(opts.Dataset)
	}
	res := &LinkageAblationResult{}
	for _, l := range []cluster.Linkage{cluster.Single, cluster.Complete, cluster.Average, cluster.Ward} {
		env, truth := buildGroupEnv(w, opts.Seed)
		f := &core.FedClust{Cfg: core.Config{Linkage: l}}
		r := f.Run(env)
		res.Rows = append(res.Rows, LinkageAblationRow{
			Linkage: l,
			K:       cluster.NumClusters(r.Clusters),
			ARI:     cluster.ARI(r.Clusters, truth),
			Acc:     r.FinalAcc,
		})
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  %-8s K=%d ARI=%.2f acc=%.1f%%\n",
				l, cluster.NumClusters(r.Clusters), cluster.ARI(r.Clusters, truth), 100*r.FinalAcc)
		}
	}
	return res
}

// Render prints the linkage comparison.
func (r *LinkageAblationResult) Render(w io.Writer) {
	tab := NewTable("Linkage", "K", "ARI", "Acc%")
	for _, row := range r.Rows {
		tab.AddRow(row.Linkage.String(), fmt.Sprintf("%d", row.K),
			fmt.Sprintf("%.2f", row.ARI), fmt.Sprintf("%.1f", 100*row.Acc))
	}
	tab.Render(w)
}

package nn

import (
	"fmt"
	"math"

	"fedclust/internal/tensor"
)

// AvgPool2 is a 2×2, stride-2 average pooling layer over CHW volumes —
// the subsampling LeCun's original LeNet-5 used (modern variants use max
// pooling; both are provided).
type AvgPool2 struct {
	C, H, W int
	batch   int
	out, gx ws
}

// NewAvgPool2 builds the layer for the given input volume (even H, W).
func NewAvgPool2(c, h, w int) *AvgPool2 {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: AvgPool2 invalid volume %dx%dx%d", c, h, w))
	}
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: AvgPool2 requires even H and W, got %dx%d", h, w))
	}
	return &AvgPool2{C: c, H: h, W: w}
}

// Name implements Layer.
func (p *AvgPool2) Name() string { return fmt.Sprintf("avgpool2(%dx%dx%d)", p.C, p.H, p.W) }

// InDim returns the flattened input width.
func (p *AvgPool2) InDim() int { return p.C * p.H * p.W }

// OutDim implements Layer.
func (p *AvgPool2) OutDim() int { return p.C * (p.H / 2) * (p.W / 2) }

// Forward implements Layer.
func (p *AvgPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(p, "", x, p.InDim())
	batch := x.Shape[0]
	p.batch = batch
	oh, ow := p.H/2, p.W/2
	out := p.out.get(batch, p.OutDim())
	for b := 0; b < batch; b++ {
		in := x.Row(b)
		dst := out.Row(b)
		for c := 0; c < p.C; c++ {
			inBase := c * p.H * p.W
			outBase := c * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					i00 := inBase + (2*oy)*p.W + 2*ox
					dst[outBase+oy*ow+ox] = 0.25 * (in[i00] + in[i00+1] + in[i00+p.W] + in[i00+p.W+1])
				}
			}
		}
	}
	return out
}

// Backward implements Layer: spreads each gradient equally over its 2×2
// window.
func (p *AvgPool2) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if p.batch == 0 {
		panic("nn: AvgPool2.Backward called before Forward")
	}
	checkBatchInput(p, " backward", gradOut, p.OutDim())
	oh, ow := p.H/2, p.W/2
	gx := p.gx.get(p.batch, p.InDim())
	gx.Zero()
	for b := 0; b < p.batch; b++ {
		src := gradOut.Row(b)
		dst := gx.Row(b)
		for c := 0; c < p.C; c++ {
			inBase := c * p.H * p.W
			outBase := c * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := 0.25 * src[outBase+oy*ow+ox]
					i00 := inBase + (2*oy)*p.W + 2*ox
					dst[i00] += g
					dst[i00+1] += g
					dst[i00+p.W] += g
					dst[i00+p.W+1] += g
				}
			}
		}
	}
	return gx
}

// Params implements Layer (none).
func (p *AvgPool2) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (p *AvgPool2) Grads() []*tensor.Tensor { return nil }

// Sigmoid is the logistic activation, applied elementwise.
type Sigmoid struct {
	dim     int
	y       *tensor.Tensor
	out, gx ws
}

// NewSigmoid builds a Sigmoid over dim features.
func NewSigmoid(dim int) *Sigmoid { return &Sigmoid{dim: dim} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return fmt.Sprintf("sigmoid(%d)", s.dim) }

// OutDim implements Layer.
func (s *Sigmoid) OutDim() int { return s.dim }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(s, "", x, s.dim)
	out := s.out.get(x.Shape[0], x.Shape[1])
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.y = out
	return out
}

// Backward implements Layer: dσ = σ(1-σ).
func (s *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if s.y == nil {
		panic("nn: Sigmoid.Backward called before Forward")
	}
	gx := s.gx.get(gradOut.Shape[0], gradOut.Shape[1])
	for i, v := range gradOut.Data {
		y := s.y.Data[i]
		gx.Data[i] = v * y * (1 - y)
	}
	return gx
}

// Params implements Layer (none).
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

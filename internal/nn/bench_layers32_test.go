package nn

import (
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Float32 counterparts of the per-layer micro-benchmarks, built by
// mirroring a randomly initialized float64 layer so the weights are
// realistic (the float64 kernels skip exact zeros; the float32 kernels
// never do, so zero weights would not skew either side — but identical
// dense weights keep the pair honest).

func randBatch32(r *rng.Rng, batch, dim int) *tensor.Tensor32 {
	x := tensor.New32(batch, dim)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	return x
}

func mirrorLayer32(b *testing.B, l Layer) *Sequential32 {
	b.Helper()
	src := NewSequential(l)
	m := Mirror32(src)
	if m == nil {
		b.Fatalf("Mirror32 returned nil for %s", l.Name())
	}
	AssignParams32(m, src)
	return m
}

func BenchmarkDense32Forward(b *testing.B) {
	r := rng.New(1)
	m := mirrorLayer32(b, NewDense(256, 128, r))
	x := randBatch32(r, 32, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(x, true)
	}
}

func BenchmarkDense32ForwardBackward(b *testing.B) {
	r := rng.New(1)
	m := mirrorLayer32(b, NewDense(256, 128, r))
	x := randBatch32(r, 32, 256)
	gy := randBatch32(r, 32, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(x, true)
		_ = m.Backward(gy)
	}
}

func BenchmarkConv2D32Forward(b *testing.B) {
	r := rng.New(2)
	g := tensor.ConvGeom{InC: 3, InH: 16, InW: 16, KH: 5, KW: 5, Stride: 1, Pad: 2}
	c := NewConv2D(g, 8, r)
	m := mirrorLayer32(b, c)
	x := randBatch32(r, 16, 3*16*16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(x, true)
	}
}

func BenchmarkConv2D32ForwardBackward(b *testing.B) {
	r := rng.New(2)
	g := tensor.ConvGeom{InC: 3, InH: 16, InW: 16, KH: 5, KW: 5, Stride: 1, Pad: 2}
	c := NewConv2D(g, 8, r)
	m := mirrorLayer32(b, c)
	x := randBatch32(r, 16, 3*16*16)
	gy := randBatch32(r, 16, c.OutDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(x, true)
		_ = m.Backward(gy)
	}
}

package nn

import (
	"math"
	"strings"
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	r := rng.New(1)
	d := NewDense(2, 2, r)
	copy(d.W.Data, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.B.Data, []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, false)
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Fatalf("Dense forward = %v", y.Data)
	}
}

func TestDenseShapePanics(t *testing.T) {
	r := rng.New(2)
	d := NewDense(3, 2, r)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input width did not panic")
		}
	}()
	d.Forward(tensor.New(1, 4), false)
}

func TestDenseBackwardBeforeForwardPanics(t *testing.T) {
	d := NewDense(3, 2, rng.New(3))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward before Forward did not panic")
		}
	}()
	d.Backward(tensor.New(1, 2))
}

func TestReLUForwardBackward(t *testing.T) {
	relu := NewReLU(4)
	x := tensor.FromSlice([]float64{-1, 2, 0, 3}, 1, 4)
	y := relu.Forward(x, true)
	want := []float64{0, 2, 0, 3}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("ReLU forward = %v", y.Data)
		}
	}
	g := relu.Backward(tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 4))
	wantG := []float64{0, 1, 0, 1}
	for i, v := range wantG {
		if g.Data[i] != v {
			t.Fatalf("ReLU backward = %v", g.Data)
		}
	}
}

func TestTanhForward(t *testing.T) {
	th := NewTanh(2)
	x := tensor.FromSlice([]float64{0, 1000}, 1, 2)
	y := th.Forward(x, true)
	if y.Data[0] != 0 || math.Abs(y.Data[1]-1) > 1e-12 {
		t.Fatalf("Tanh forward = %v", y.Data)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(4, 0.5, rng.New(4))
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	// backward in eval mode is also identity
	g := d.Backward(x)
	if g.Data[2] != 3 {
		t.Fatal("eval-mode dropout backward must be identity")
	}
}

func TestDropoutTrainDropsAndRescales(t *testing.T) {
	d := NewDropout(1000, 0.5, rng.New(5))
	x := tensor.New(1, 1000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, kept := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2: // 1/(1-0.5)
			kept++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout dropped %d/1000, expected ~500", zeros)
	}
	if kept+zeros != 1000 {
		t.Fatal("dropout output inconsistent")
	}
}

func TestDropoutInvalidP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dropout p=1 did not panic")
		}
	}()
	NewDropout(4, 1.0, rng.New(6))
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p := NewMaxPool2(1, 4, 4)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 16)
	y := p.Forward(x, false)
	want := []float64{6, 8, 14, 16}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("MaxPool forward = %v, want %v", y.Data, want)
		}
	}
}

func TestMaxPoolOddDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd pool dims did not panic")
		}
	}()
	NewMaxPool2(1, 5, 4)
}

func TestConvForwardKnownIdentityKernel(t *testing.T) {
	// 1x1 kernel with weight 1, bias 0 must be the identity.
	r := rng.New(7)
	g := tensor.ConvGeom{InC: 1, InH: 3, InW: 3, KH: 1, KW: 1, Stride: 1, Pad: 0}
	c := NewConv2D(g, 1, r)
	c.W.Data[0] = 1
	c.B.Data[0] = 0
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 9)
	y := c.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv = %v", y.Data)
		}
	}
}

func TestConvBiasBroadcast(t *testing.T) {
	r := rng.New(8)
	g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1, Pad: 0}
	c := NewConv2D(g, 2, r)
	c.W.Zero()
	c.B.Data[0], c.B.Data[1] = 5, -3
	x := tensor.New(1, 4)
	y := c.Forward(x, false)
	// channel 0 occupies first 4 outputs, channel 1 the next 4
	for i := 0; i < 4; i++ {
		if y.Data[i] != 5 || y.Data[4+i] != -3 {
			t.Fatalf("bias broadcast = %v", y.Data)
		}
	}
}

func TestSoftmaxCELossKnown(t *testing.T) {
	var ce SoftmaxCE
	logits := tensor.FromSlice([]float64{0, 0}, 1, 2)
	loss, grad, probs := ce.Loss(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("uniform loss = %v, want ln2", loss)
	}
	if math.Abs(probs.Data[0]-0.5) > 1e-12 {
		t.Fatalf("probs = %v", probs.Data)
	}
	if math.Abs(grad.Data[0]-(-0.5)) > 1e-12 || math.Abs(grad.Data[1]-0.5) > 1e-12 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestSoftmaxCEStability(t *testing.T) {
	var ce SoftmaxCE
	logits := tensor.FromSlice([]float64{1000, -1000}, 1, 2)
	loss, _, probs := ce.Loss(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss overflowed: %v", loss)
	}
	if probs.Data[0] < 0.999 {
		t.Fatalf("stable softmax wrong: %v", probs.Data)
	}
	// Loss on the wrong label with huge margin must be large but finite.
	loss2, _, _ := ce.Loss(logits, []int{1})
	if math.IsInf(loss2, 0) || loss2 < 100 {
		t.Fatalf("wrong-label loss = %v", loss2)
	}
}

func TestSoftmaxCEBadLabelPanics(t *testing.T) {
	var ce SoftmaxCE
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	ce.Loss(tensor.New(1, 3), []int{3})
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		2, 1, 0,
		0, 3, 1,
		1, 0, 5,
		9, 0, 0,
	}, 4, 3)
	if a := Accuracy(logits, []int{0, 1, 2, 1}); math.Abs(a-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 0.75", a)
	}
}

func TestSequentialShape(t *testing.T) {
	r := rng.New(9)
	net := MLP(r, 10, 16, 4)
	y := net.Forward(tensor.New(3, 10), false)
	if y.Shape[0] != 3 || y.Shape[1] != 4 {
		t.Fatalf("MLP output shape = %v", y.Shape)
	}
	if !strings.Contains(net.String(), "dense(10→16)") {
		t.Fatalf("String = %q", net.String())
	}
}

func TestFlattenLoadRoundTrip(t *testing.T) {
	r := rng.New(10)
	net := MLP(r, 5, 7, 3)
	vec := FlattenParams(net)
	if len(vec) != net.NumParams() {
		t.Fatalf("flat length %d != NumParams %d", len(vec), net.NumParams())
	}
	// Perturb, reload, verify.
	vec2 := append([]float64(nil), vec...)
	for i := range vec2 {
		vec2[i] += 1
	}
	LoadParams(net, vec2)
	got := FlattenParams(net)
	for i := range got {
		if got[i] != vec[i]+1 {
			t.Fatal("LoadParams/FlattenParams round trip failed")
		}
	}
}

func TestLoadParamsLengthPanics(t *testing.T) {
	net := MLP(rng.New(11), 4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("LoadParams with wrong length did not panic")
		}
	}()
	LoadParams(net, make([]float64, 7))
}

func TestWeightLayersAndFinalLayer(t *testing.T) {
	r := rng.New(12)
	net := LeNet5(r, 1, 16, 16, 10, 0.5)
	wl := WeightLayers(net)
	if len(wl) != 5 { // conv, conv, dense, dense, dense
		t.Fatalf("LeNet-5 weight layers = %d, want 5", len(wl))
	}
	final := FinalLayerVector(net)
	last := net.Layers[wl[len(wl)-1]].(*Dense)
	wantLen := last.W.Size() + last.B.Size()
	if len(final) != wantLen {
		t.Fatalf("final layer vector length %d, want %d", len(final), wantLen)
	}
	if LayerParamSize(net, len(wl)-1) != wantLen {
		t.Fatal("LayerParamSize disagrees with FinalLayerVector")
	}
	// The final layer vector must literally be the classifier weights.
	for i := 0; i < last.W.Size(); i++ {
		if final[i] != last.W.Data[i] {
			t.Fatal("final layer vector does not match classifier weights")
		}
	}
}

func TestLayerParamVectorIndependentLayers(t *testing.T) {
	r := rng.New(13)
	net := MLP(r, 4, 5, 3)
	v0 := LayerParamVector(net, 0)
	v1 := LayerParamVector(net, 1)
	if len(v0) != 4*5+5 || len(v1) != 5*3+3 {
		t.Fatalf("layer vector lengths %d, %d", len(v0), len(v1))
	}
}

func TestLeNet5Shapes(t *testing.T) {
	r := rng.New(14)
	for _, tc := range []struct{ c, h, w int }{{1, 28, 28}, {3, 32, 32}, {3, 16, 16}} {
		net := LeNet5(r, tc.c, tc.h, tc.w, 10, 0.5)
		y := net.Forward(tensor.New(2, tc.c*tc.h*tc.w), false)
		if y.Shape[0] != 2 || y.Shape[1] != 10 {
			t.Fatalf("LeNet5(%v) output %v", tc, y.Shape)
		}
	}
}

func TestMiniVGG16Structure(t *testing.T) {
	r := rng.New(15)
	net := MiniVGG16(r, 3, 10, 2)
	wl := WeightLayers(net)
	if len(wl) != 16 {
		t.Fatalf("MiniVGG16 weight layers = %d, want 16", len(wl))
	}
	// Layers 1-13 conv, 14-16 dense (1-based).
	for i, li := range wl {
		_, isConv := net.Layers[li].(*Conv2D)
		_, isDense := net.Layers[li].(*Dense)
		if i < 13 && !isConv {
			t.Fatalf("weight layer %d should be conv", i+1)
		}
		if i >= 13 && !isDense {
			t.Fatalf("weight layer %d should be dense", i+1)
		}
	}
	y := net.Forward(tensor.New(1, 3*32*32), false)
	if y.Shape[1] != 10 {
		t.Fatalf("MiniVGG16 output shape %v", y.Shape)
	}
}

func TestTrainingReducesLossOnToyProblem(t *testing.T) {
	// Two linearly separable Gaussian blobs; a tiny MLP trained by plain
	// gradient steps must reach near-zero loss. This exercises the entire
	// forward/backward/update loop without the opt package.
	r := rng.New(16)
	net := MLP(r, 2, 8, 2)
	var ce SoftmaxCE
	n := 60
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		x.Set(float64(2*c-1)*2+0.3*r.NormFloat64(), i, 0)
		x.Set(0.3*r.NormFloat64(), i, 1)
	}
	var first, last float64
	for epoch := 0; epoch < 200; epoch++ {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		loss, grad, _ := ce.Loss(logits, labels)
		if epoch == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		params, grads := net.Params(), net.Grads()
		for i := range params {
			params[i].AddScaled(grads[i], -0.5)
		}
	}
	if last > first/10 || last > 0.2 {
		t.Fatalf("training failed to reduce loss: first=%v last=%v", first, last)
	}
	if acc := Accuracy(net.Forward(x, false), labels); acc < 0.95 {
		t.Fatalf("toy accuracy = %v", acc)
	}
}

func BenchmarkLeNetForward(b *testing.B) {
	r := rng.New(1)
	net := LeNet5(r, 3, 16, 16, 10, 0.5)
	x := tensor.New(32, 3*16*16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Forward(x, false)
	}
}

func BenchmarkLeNetForwardBackward(b *testing.B) {
	r := rng.New(1)
	net := LeNet5(r, 3, 16, 16, 10, 0.5)
	var ce SoftmaxCE
	x := tensor.New(32, 3*16*16)
	labels := make([]int, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad, _ := ce.Loss(logits, labels)
		net.Backward(grad)
	}
}

func TestAvgPoolForwardKnown(t *testing.T) {
	p := NewAvgPool2(1, 4, 4)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 16)
	y := p.Forward(x, false)
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("AvgPool forward = %v, want %v", y.Data, want)
		}
	}
}

func TestSigmoidForwardKnown(t *testing.T) {
	s := NewSigmoid(3)
	x := tensor.FromSlice([]float64{0, 100, -100}, 1, 3)
	y := s.Forward(x, false)
	if y.Data[0] != 0.5 || y.Data[1] < 0.999999 || y.Data[2] > 1e-6 {
		t.Fatalf("Sigmoid forward = %v", y.Data)
	}
}

func TestAvgPoolOddDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd avg-pool dims did not panic")
		}
	}()
	NewAvgPool2(1, 3, 4)
}

package nn

import "fedclust/internal/tensor"

// ws is a lazily sized rank-2 tensor workspace owned by a layer (or the
// loss head). get returns a (rows, cols) tensor backed by grow-only
// storage; the two most recent shape headers are cached so the steady
// training cadence — full batches alternating with the partial final
// batch, or train batches alternating with eval batches — allocates
// nothing once warm.
//
// Tensors returned by get alias the same storage: only the most recent
// one is valid, and its contents are unspecified (the caller must
// overwrite every element or Zero it first). This is the buffer contract
// behind the layer workspace rules in DESIGN.md §5.
type ws struct {
	buf       []float64
	cur, prev *tensor.Tensor
}

// get returns the (rows, cols) workspace tensor, reusing storage and
// headers whenever possible.
func (w *ws) get(rows, cols int) *tensor.Tensor {
	if w.cur != nil && w.cur.Shape[0] == rows && w.cur.Shape[1] == cols {
		return w.cur
	}
	if w.prev != nil && w.prev.Shape[0] == rows && w.prev.Shape[1] == cols {
		w.cur, w.prev = w.prev, w.cur
		return w.cur
	}
	need := rows * cols
	if cap(w.buf) < need {
		w.buf = make([]float64, need)
	}
	w.prev, w.cur = w.cur, tensor.FromSlice(w.buf[:need:need], rows, cols)
	return w.cur
}

// growBools returns a length-n bool scratch reusing s when capacity
// allows. Contents are unspecified; the caller must write every element.
func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

// growInts is growBools for int scratch slices.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

package nn

import "fedclust/internal/tensor"

// ws is a lazily sized rank-2 tensor workspace owned by a layer (or the
// loss head). get returns a (rows, cols) tensor backed by grow-only
// storage; the most recent shape headers are cached (MRU order) so the
// steady cadence of a pooled model — full training batches, the partial
// final batch, full evaluation batches, and the partial evaluation tail
// all interleaving on one reused network — allocates nothing once warm.
//
// Tensors returned by get alias the same storage: only the most recent
// one is valid, and its contents are unspecified (the caller must
// overwrite every element or Zero it first). This is the buffer contract
// behind the layer workspace rules in DESIGN.md §5.
type ws struct {
	buf []float64
	// hdrs caches shape headers most-recently-used first. Four entries
	// cover the train-full/train-partial/eval-full/eval-partial cycle the
	// round engine drives through each pooled model.
	hdrs [4]*tensor.Tensor
}

// get returns the (rows, cols) workspace tensor, reusing storage and
// headers whenever possible.
func (w *ws) get(rows, cols int) *tensor.Tensor {
	for i, h := range w.hdrs {
		if h != nil && h.Shape[0] == rows && h.Shape[1] == cols {
			copy(w.hdrs[1:i+1], w.hdrs[:i]) // move hit to front
			w.hdrs[0] = h
			return h
		}
	}
	need := rows * cols
	if cap(w.buf) < need {
		w.buf = make([]float64, need)
		// Old headers alias the outgrown storage; drop them so every
		// cached header keeps sharing one backing array.
		w.hdrs = [4]*tensor.Tensor{}
	}
	h := tensor.FromSlice(w.buf[:need:need], rows, cols)
	copy(w.hdrs[1:], w.hdrs[:len(w.hdrs)-1])
	w.hdrs[0] = h
	return h
}

// growBools returns a length-n bool scratch reusing s when capacity
// allows. Contents are unspecified; the caller must write every element.
func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

// growInts is growBools for int scratch slices.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

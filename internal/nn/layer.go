// Package nn implements the neural-network substrate of the reproduction:
// a layer interface with hand-written backward passes, a Sequential
// container with parameter flattening (the representation federated
// aggregation works on), and the model zoo the paper evaluates (LeNet-5 for
// Table I, a VGG-16-shaped probe network for Fig. 1).
//
// All activations flow as rank-2 (batch, features) tensors; convolutional
// layers interpret the feature axis as flattened CHW volumes via an
// explicit geometry, so no rank-4 tensors are needed.
package nn

import (
	"fmt"

	"fedclust/internal/tensor"
)

// Layer is one differentiable stage of a network.
type Layer interface {
	// Name identifies the layer kind and shape, e.g. "conv5x5(3→6)".
	Name() string
	// Forward computes the layer output for a (batch, inDim) input.
	// train enables training-time behaviour (e.g. dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients internally. It must be called
	// after Forward with the matching activation still cached.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's parameter tensors (possibly empty).
	// Callers may mutate the contents (that is how aggregation loads
	// weights) but not replace the tensors.
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
	// OutDim returns the width of the layer's output features.
	OutDim() int
}

// Sequential chains layers and exposes whole-network parameter access.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through all layers in reverse.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns every parameter tensor in layer order.
func (s *Sequential) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns every gradient tensor in layer order, aligned with Params.
func (s *Sequential) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range s.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads clears all accumulated gradients.
func (s *Sequential) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Size()
	}
	return n
}

// String lists the layer names.
func (s *Sequential) String() string {
	out := "Sequential["
	for i, l := range s.Layers {
		if i > 0 {
			out += " → "
		}
		out += l.Name()
	}
	return out + "]"
}

// checkBatchInput panics unless x is rank-2 with the expected feature
// width; layers use it to give actionable shape errors.
func checkBatchInput(name string, x *tensor.Tensor, inDim int) {
	if len(x.Shape) != 2 {
		panic(fmt.Sprintf("nn: %s expects (batch, features) input, got %v", name, x.Shape))
	}
	if x.Shape[1] != inDim {
		panic(fmt.Sprintf("nn: %s expects %d input features, got %d", name, inDim, x.Shape[1]))
	}
}

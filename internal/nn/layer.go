// Package nn implements the neural-network substrate of the reproduction:
// a layer interface with hand-written backward passes, a Sequential
// container with parameter flattening (the representation federated
// aggregation works on), and the model zoo the paper evaluates (LeNet-5 for
// Table I, a VGG-16-shaped probe network for Fig. 1).
//
// All activations flow as rank-2 (batch, features) tensors; convolutional
// layers interpret the feature axis as flattened CHW volumes via an
// explicit geometry, so no rank-4 tensors are needed.
package nn

import (
	"fmt"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// StepSeeded is the optional interface of layers whose stochastic
// training-time behaviour (e.g. Dropout's masks) must be driven by the
// training step's RNG rather than a stream carried across the layer's
// lifetime. Rebasing the stream per local-training call makes a pooled,
// reused model behave identically to a freshly built one — model-pool
// invariant 3 in DESIGN.md §5.
type StepSeeded interface {
	// SeedStep rebases the layer's stochastic stream on r.
	SeedStep(r *rng.Rng)
}

// Layer is one differentiable stage of a network.
//
// Workspace contract: Forward and Backward return tensors backed by
// workspaces the layer owns and reuses, so a steady-state training step
// performs no heap allocations. A returned tensor is valid only until
// the layer's next Forward or Backward call; callers that need a result
// to survive (tests, feature extraction) must Clone it. Workspaces are
// sized lazily to the incoming batch and resized on shape changes (the
// partial final batch, train/eval alternation) while retaining storage.
type Layer interface {
	// Name identifies the layer kind and shape, e.g. "conv5x5(3→6)".
	Name() string
	// Forward computes the layer output for a (batch, inDim) input.
	// train enables training-time behaviour (e.g. dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients internally. It must be called
	// after Forward with the matching activation still cached, and may
	// invalidate that cache (Conv2D reuses its im2col workspace for the
	// column gradient), so call it at most once per Forward.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's parameter tensors (possibly empty).
	// Callers may mutate the contents (that is how aggregation loads
	// weights) but not replace the tensors.
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
	// OutDim returns the width of the layer's output features.
	OutDim() int
}

// Sequential chains layers and exposes whole-network parameter access.
// The layer list is fixed after construction; the parameter/gradient
// lists and scalar count are cached on first use so the hot paths
// (LoadParams / FlattenParamsInto on every client visit) never rebuild
// them.
type Sequential struct {
	Layers []Layer

	params, grads []*tensor.Tensor
	numParams     int // 0 = not yet computed (no zoo net is parameterless)
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through all layers in reverse.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns every parameter tensor in layer order. The returned
// slice is cached and shared: callers may mutate tensor contents (that
// is how aggregation loads weights) but must not modify the slice.
func (s *Sequential) Params() []*tensor.Tensor {
	if s.params == nil {
		for _, l := range s.Layers {
			s.params = append(s.params, l.Params()...)
		}
	}
	return s.params
}

// Grads returns every gradient tensor in layer order, aligned with
// Params (cached and shared like Params).
func (s *Sequential) Grads() []*tensor.Tensor {
	if s.grads == nil {
		for _, l := range s.Layers {
			s.grads = append(s.grads, l.Grads()...)
		}
	}
	return s.grads
}

// ZeroGrads clears all accumulated gradients.
func (s *Sequential) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// SeedStep derives one independent stream per StepSeeded layer from r
// (keyed by layer position; r itself is not advanced) and rebases the
// layer on it. Local training calls this once per client visit so
// stochastic layers depend only on the visit's (client, round) stream,
// never on how often the model instance was reused.
func (s *Sequential) SeedStep(r *rng.Rng) {
	for i, l := range s.Layers {
		if ss, ok := l.(StepSeeded); ok {
			ss.SeedStep(r.Derive(0xd809, uint64(i)))
		}
	}
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	if s.numParams == 0 {
		for _, p := range s.Params() {
			s.numParams += p.Size()
		}
	}
	return s.numParams
}

// String lists the layer names.
func (s *Sequential) String() string {
	out := "Sequential["
	for i, l := range s.Layers {
		if i > 0 {
			out += " → "
		}
		out += l.Name()
	}
	return out + "]"
}

// checkBatchInput panics unless x is rank-2 with the expected feature
// width; layers use it to give actionable shape errors. It takes the
// layer rather than its name so Name()'s formatting runs only on failure
// (the happy path is per-batch-step and must not allocate). stage is ""
// for Forward, " backward" for Backward.
func checkBatchInput(l Layer, stage string, x *tensor.Tensor, inDim int) {
	if len(x.Shape) != 2 {
		panic(fmt.Sprintf("nn: %s%s expects (batch, features) input, got %v", l.Name(), stage, x.Shape))
	}
	if x.Shape[1] != inDim {
		panic(fmt.Sprintf("nn: %s%s expects %d input features, got %d", l.Name(), stage, inDim, x.Shape[1]))
	}
}

package nn

import (
	"math"
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// freshVsReused runs the same forward (and optionally backward) schedule
// on a reused net and on a per-step fresh net, comparing outputs exactly.
// It is the core property of the workspace refactor: batch-shape changes
// must leave no residue.
func assertForwardMatchesFresh(t *testing.T, build func() *Sequential, dim int, batches []int) {
	t.Helper()
	r := rng.New(42)
	inputs := make([]*tensor.Tensor, len(batches))
	for i, b := range batches {
		inputs[i] = randInput(r, b, dim)
	}
	reused := build()
	for i, x := range inputs {
		got := reused.Forward(x, true)
		fresh := build()
		want := fresh.Forward(x, true)
		for j := range want.Data {
			if got.Data[j] != want.Data[j] {
				t.Fatalf("step %d (batch %d): reused workspaces diverge from fresh net", i, x.Shape[0])
			}
		}
	}
}

// TestWorkspaceReuseAcrossBatchShapes drives every layer kind through the
// shapes the training loop produces: full batches, the partial final
// batch, batch size 1, and back to full.
func TestWorkspaceReuseAcrossBatchShapes(t *testing.T) {
	shapes := []int{8, 3, 1, 8, 5, 8}
	t.Run("mlp", func(t *testing.T) {
		assertForwardMatchesFresh(t, func() *Sequential { return MLP(rng.New(7), 12, 9, 4) }, 12, shapes)
	})
	t.Run("lenet", func(t *testing.T) {
		assertForwardMatchesFresh(t, func() *Sequential { return LeNet5(rng.New(7), 1, 12, 12, 4, 0.25) }, 144, shapes)
	})
	t.Run("classic-stack", func(t *testing.T) {
		build := func() *Sequential {
			r := rng.New(7)
			g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
			conv := NewConv2D(g, 2, r)
			pool := NewAvgPool2(2, 8, 8)
			return NewSequential(conv, NewTanh(conv.OutDim()), pool,
				NewDense(pool.OutDim(), 3, r), NewSigmoid(3))
		}
		assertForwardMatchesFresh(t, build, 64, shapes)
	})
}

// TestBackwardReuseAcrossBatchShapes checks that gradients accumulated
// through reused workspaces match a fresh net exactly as batch shapes
// vary (including the partial final batch and batch size 1).
func TestBackwardReuseAcrossBatchShapes(t *testing.T) {
	r := rng.New(9)
	reused := LeNet5(rng.New(8), 1, 12, 12, 4, 0.25)
	var ceR SoftmaxCE
	for _, batch := range []int{8, 3, 1, 8} {
		x := randInput(r, batch, 144)
		labels := make([]int, batch)
		for i := range labels {
			labels[i] = i % 4
		}
		reused.ZeroGrads()
		_, gradR, _ := ceR.Loss(reused.Forward(x, true), labels)
		reused.Backward(gradR)
		got := FlattenGrads(reused)

		fresh := LeNet5(rng.New(8), 1, 12, 12, 4, 0.25)
		var ceF SoftmaxCE
		fresh.ZeroGrads()
		_, gradF, _ := ceF.Loss(fresh.Forward(x, true), labels)
		fresh.Backward(gradF)
		want := FlattenGrads(fresh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d: gradient %d = %v, want %v", batch, i, got[i], want[i])
			}
		}
	}
}

// TestAlternatingTrainEvalOnSameModel interleaves eval-mode forwards
// (a different batch size, as the engine's evaluation protocol does on
// pooled models) with training steps and verifies the training result is
// unaffected — eval passes may share workspaces but must not perturb
// training state.
func TestAlternatingTrainEvalOnSameModel(t *testing.T) {
	r := rng.New(10)
	xTrain := randInput(r, 6, 12)
	xEval := randInput(r, 13, 12)
	labels := []int{0, 1, 2, 3, 0, 1}

	step := func(net *Sequential, ce *SoftmaxCE, withEval bool) {
		if withEval {
			net.Forward(xEval, false)
		}
		net.ZeroGrads()
		_, grad, _ := ce.Loss(net.Forward(xTrain, true), labels)
		net.Backward(grad)
		params, grads := net.Params(), net.Grads()
		for i := range params {
			params[i].AddScaled(grads[i], -0.1)
		}
	}

	plain := MLP(rng.New(11), 12, 9, 4)
	interleaved := MLP(rng.New(11), 12, 9, 4)
	var ceP, ceI SoftmaxCE
	for i := 0; i < 4; i++ {
		step(plain, &ceP, false)
		step(interleaved, &ceI, true)
	}
	a, b := FlattenParams(plain), FlattenParams(interleaved)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("interleaved eval forwards changed the training trajectory")
		}
	}
}

// TestSeedStepMakesDropoutVisitDeterministic is the model-pool invariant-3
// fix: after SeedStep with the same stream, a model that was previously
// used for other work must produce the same dropout masks — and hence the
// same outputs — as a freshly built model.
func TestSeedStepMakesDropoutVisitDeterministic(t *testing.T) {
	build := func() *Sequential {
		r := rng.New(12)
		return NewSequential(NewDense(10, 8, r), NewDropout(8, 0.5, r.Derive(1)), NewDense(8, 3, r))
	}
	r := rng.New(13)
	x := randInput(r, 4, 10)

	fresh := build()
	fresh.SeedStep(rng.New(99))
	want := fresh.Forward(x, true).Clone()

	pooled := build()
	// Simulate a previous visit that advanced the dropout stream.
	pooled.SeedStep(rng.New(1234))
	for i := 0; i < 3; i++ {
		pooled.Forward(x, true)
	}
	// Rebasing on the visit stream must erase that history.
	pooled.SeedStep(rng.New(99))
	got := pooled.Forward(x, true)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("pooled model with SeedStep diverges from fresh model")
		}
	}
}

// TestSeedStepDoesNotDisturbParent verifies SeedStep derives without
// advancing the caller's stream (LocalUpdate relies on this: batch
// shuffling must be unchanged for dropout-free models).
func TestSeedStepDoesNotDisturbParent(t *testing.T) {
	net := NewSequential(NewDropout(4, 0.2, rng.New(1)))
	a, b := rng.New(55), rng.New(55)
	net.SeedStep(a)
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SeedStep advanced the parent stream")
		}
	}
}

// TestDropoutEvalAfterTrainIsIdentity guards the active-flag bookkeeping:
// an eval forward after a train forward must behave as the identity in
// both directions even though a stale mask exists.
func TestDropoutEvalAfterTrainIsIdentity(t *testing.T) {
	d := NewDropout(4, 0.5, rng.New(3))
	xTrain := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	d.Forward(xTrain, true)
	x := tensor.FromSlice([]float64{5, 6, 7, 8}, 1, 4)
	y := d.Forward(x, false)
	g := d.Backward(x)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] || g.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout after training pass is not the identity")
		}
	}
}

// TestSoftmaxCEWorkspaceReuse verifies the loss head's reused workspaces
// produce identical results across changing batch shapes.
func TestSoftmaxCEWorkspaceReuse(t *testing.T) {
	r := rng.New(14)
	var reused SoftmaxCE
	for _, batch := range []int{6, 2, 1, 6} {
		logits := randInput(r, batch, 5)
		labels := make([]int, batch)
		for i := range labels {
			labels[i] = i % 5
		}
		l1, g1, p1 := reused.Loss(logits, labels)
		var fresh SoftmaxCE
		l2, g2, p2 := fresh.Loss(logits, labels)
		if l1 != l2 {
			t.Fatalf("batch %d: loss %v != %v", batch, l1, l2)
		}
		for i := range g2.Data {
			if g1.Data[i] != g2.Data[i] || p1.Data[i] != p2.Data[i] {
				t.Fatalf("batch %d: reused loss workspaces diverge", batch)
			}
		}
	}
}

// TestGradCheckAfterShapeChurn reruns a gradient check after the
// workspaces have been resized by mixed batch shapes, ensuring resize
// paths keep backward math correct (the gradcheck suite itself runs each
// net on a single shape).
func TestGradCheckAfterShapeChurn(t *testing.T) {
	r := rng.New(15)
	net := LeNet5(r, 1, 12, 12, 3, 0.25)
	for _, batch := range []int{5, 2, 7} {
		net.Forward(randInput(r, batch, 144), true)
	}
	checkGradients(t, net, randInput(r, 2, 144), []int{0, 2})
	if math.IsNaN(FlattenGrads(net)[0]) {
		t.Fatal("NaN gradient after shape churn")
	}
}

package nn

import (
	"math"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// HeInit fills w with He-normal values (std = sqrt(2/fanIn)) — the
// standard initialization for ReLU networks.
func HeInit(w *tensor.Tensor, fanIn int, r *rng.Rng) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range w.Data {
		w.Data[i] = std * r.NormFloat64()
	}
}

// XavierInit fills w with Glorot-normal values (std = sqrt(2/(fanIn+fanOut)))
// — appropriate for tanh/linear layers.
func XavierInit(w *tensor.Tensor, fanIn, fanOut int, r *rng.Rng) {
	std := math.Sqrt(2.0 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = std * r.NormFloat64()
	}
}

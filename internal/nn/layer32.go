package nn

import (
	"fmt"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Layer32 is the float32 mirror of Layer: one differentiable stage of a
// float32 network, with the same workspace contract (Forward/Backward
// return tensors backed by reused layer-owned workspaces, valid only
// until the next call).
//
// The float32 layer set exists only as the compute path of mirrored
// shadows (Mirror32): construction copies hyperparameters from a float64
// network and AssignParams32 loads its weights, so the float64 model
// stays the golden reference end to end (DESIGN.md §10).
type Layer32 interface {
	Name() string
	Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32
	Backward(gradOut *tensor.Tensor32) *tensor.Tensor32
	Params() []*tensor.Tensor32
	Grads() []*tensor.Tensor32
	OutDim() int
}

// Sequential32 chains float32 layers, mirroring Sequential: the layer
// list is fixed after construction and the parameter/gradient lists and
// scalar count are cached on first use.
type Sequential32 struct {
	Layers []Layer32

	params, grads []*tensor.Tensor32
	numParams     int
}

// NewSequential32 builds a float32 network from the given layers.
func NewSequential32(layers ...Layer32) *Sequential32 {
	return &Sequential32{Layers: layers}
}

// Forward runs all layers in order.
func (s *Sequential32) Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32 {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through all layers in reverse.
func (s *Sequential32) Backward(grad *tensor.Tensor32) *tensor.Tensor32 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns every parameter tensor in layer order (cached, shared).
func (s *Sequential32) Params() []*tensor.Tensor32 {
	if s.params == nil {
		for _, l := range s.Layers {
			s.params = append(s.params, l.Params()...)
		}
	}
	return s.params
}

// Grads returns every gradient tensor in layer order, aligned with Params.
func (s *Sequential32) Grads() []*tensor.Tensor32 {
	if s.grads == nil {
		for _, l := range s.Layers {
			s.grads = append(s.grads, l.Grads()...)
		}
	}
	return s.grads
}

// ZeroGrads clears all accumulated gradients.
func (s *Sequential32) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// SeedStep mirrors Sequential.SeedStep with the identical derivation key
// and layer indexing. Mirror32 preserves layer positions 1:1, so a
// float32 shadow draws byte-identical stochastic streams (dropout masks)
// to the float64 network it mirrors.
func (s *Sequential32) SeedStep(r *rng.Rng) {
	for i, l := range s.Layers {
		if ss, ok := l.(StepSeeded); ok {
			ss.SeedStep(r.Derive(0xd809, uint64(i)))
		}
	}
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential32) NumParams() int {
	if s.numParams == 0 {
		for _, p := range s.Params() {
			s.numParams += p.Size()
		}
	}
	return s.numParams
}

// String lists the layer names.
func (s *Sequential32) String() string {
	out := "Sequential32["
	for i, l := range s.Layers {
		if i > 0 {
			out += " → "
		}
		out += l.Name()
	}
	return out + "]"
}

// checkBatchInput32 is checkBatchInput for the float32 layer set.
func checkBatchInput32(l Layer32, stage string, x *tensor.Tensor32, inDim int) {
	if len(x.Shape) != 2 {
		panic(fmt.Sprintf("nn: %s%s expects (batch, features) input, got %v", l.Name(), stage, x.Shape))
	}
	if x.Shape[1] != inDim {
		panic(fmt.Sprintf("nn: %s%s expects %d input features, got %d", l.Name(), stage, inDim, x.Shape[1]))
	}
}

// ws32 is the float32 mirror of ws: a lazily sized rank-2 workspace with
// the same four-entry MRU header cache, so the warm float32 training
// step allocates nothing.
type ws32 struct {
	buf  []float32
	hdrs [4]*tensor.Tensor32
}

// get returns the (rows, cols) workspace tensor, reusing storage and
// headers whenever possible. Contents are unspecified.
func (w *ws32) get(rows, cols int) *tensor.Tensor32 {
	for i, h := range w.hdrs {
		if h != nil && h.Shape[0] == rows && h.Shape[1] == cols {
			copy(w.hdrs[1:i+1], w.hdrs[:i])
			w.hdrs[0] = h
			return h
		}
	}
	need := rows * cols
	if cap(w.buf) < need {
		w.buf = make([]float32, need)
		w.hdrs = [4]*tensor.Tensor32{}
	}
	h := tensor.FromSlice32(w.buf[:need:need], rows, cols)
	copy(w.hdrs[1:], w.hdrs[:len(w.hdrs)-1])
	w.hdrs[0] = h
	return h
}

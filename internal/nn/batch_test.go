package nn

import (
	"math"
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// TestBatchForwardMatchesPerSample verifies that forwarding a batch
// produces exactly the same outputs as forwarding each sample separately —
// the layers must not leak information across batch rows.
func TestBatchForwardMatchesPerSample(t *testing.T) {
	r := rng.New(1)
	nets := map[string]*Sequential{
		"mlp":   MLP(rng.New(2), 12, 9, 4),
		"lenet": LeNet5(rng.New(2), 1, 12, 12, 4, 0.25),
	}
	dims := map[string]int{"mlp": 12, "lenet": 144}
	for name, net := range nets {
		dim := dims[name]
		batch := tensor.New(5, dim)
		for i := range batch.Data {
			batch.Data[i] = r.NormFloat64()
		}
		// Clone: Forward returns a reused workspace, invalidated by the
		// per-sample forwards below.
		full := net.Forward(batch, false).Clone()
		for s := 0; s < 5; s++ {
			single := tensor.New(1, dim)
			copy(single.Data, batch.Row(s))
			y := net.Forward(single, false)
			for j := 0; j < y.Shape[1]; j++ {
				if math.Abs(y.At(0, j)-full.At(s, j)) > 1e-10 {
					t.Fatalf("%s: batch row %d differs from single-sample forward", name, s)
				}
			}
		}
	}
}

// TestGradientAccumulation verifies that two Backward calls without
// ZeroGrads sum gradients (the contract optimizers rely on).
func TestGradientAccumulation(t *testing.T) {
	r := rng.New(3)
	net := NewSequential(NewDense(4, 3, r))
	var ce SoftmaxCE
	x := tensor.New(2, 4)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	labels := []int{0, 2}

	net.ZeroGrads()
	logits := net.Forward(x, true)
	_, grad, _ := ce.Loss(logits, labels)
	net.Backward(grad)
	once := FlattenGrads(net)

	logits = net.Forward(x, true)
	_, grad, _ = ce.Loss(logits, labels)
	net.Backward(grad)
	twice := FlattenGrads(net)

	for i := range once {
		if math.Abs(twice[i]-2*once[i]) > 1e-12 {
			t.Fatalf("gradient %d did not accumulate: %v vs 2×%v", i, twice[i], once[i])
		}
	}
}

// TestZeroGradsClears verifies ZeroGrads resets every gradient tensor.
func TestZeroGradsClears(t *testing.T) {
	r := rng.New(4)
	net := MLP(r, 5, 6, 2)
	var ce SoftmaxCE
	x := tensor.New(1, 5)
	logits := net.Forward(x, true)
	_, grad, _ := ce.Loss(logits, []int{1})
	net.Backward(grad)
	net.ZeroGrads()
	for _, g := range net.Grads() {
		for _, v := range g.Data {
			if v != 0 {
				t.Fatal("ZeroGrads left a non-zero gradient")
			}
		}
	}
}

// TestLossDecreasesUnderGradientStep is a sanity property: a small step
// against the gradient must not increase the loss (first-order decrease).
func TestLossDecreasesUnderGradientStep(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		net := MLP(r.Derive(uint64(trial)), 6, 10, 3)
		var ce SoftmaxCE
		x := tensor.New(8, 6)
		labels := make([]int, 8)
		tr := r.Derive(uint64(trial), 1)
		for i := range x.Data {
			x.Data[i] = tr.NormFloat64()
		}
		for i := range labels {
			labels[i] = tr.Intn(3)
		}
		net.ZeroGrads()
		before, grad, _ := ce.Loss(net.Forward(x, true), labels)
		net.Backward(grad)
		params, grads := net.Params(), net.Grads()
		for i := range params {
			params[i].AddScaled(grads[i], -1e-3)
		}
		after, _, _ := ce.Loss(net.Forward(x, false), labels)
		if after > before {
			t.Fatalf("trial %d: loss increased after gradient step: %v → %v", trial, before, after)
		}
	}
}

// TestWeightLayerIndicesStable verifies that WeightLayers returns only
// parameterized layers, in order, for a mixed architecture.
func TestWeightLayerIndicesStable(t *testing.T) {
	r := rng.New(6)
	d1 := NewDense(4, 8, r)
	d2 := NewDense(8, 2, r)
	net := NewSequential(d1, NewReLU(8), NewDropout(8, 0.1, r), d2)
	wl := WeightLayers(net)
	if len(wl) != 2 || wl[0] != 0 || wl[1] != 3 {
		t.Fatalf("WeightLayers = %v", wl)
	}
}

package nn

import (
	"fmt"
	"math"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// ReLU is the rectified linear activation, applied elementwise.
type ReLU struct {
	dim  int
	mask []bool
}

// NewReLU builds a ReLU over dim features.
func NewReLU(dim int) *ReLU { return &ReLU{dim: dim} }

// Name implements Layer.
func (r *ReLU) Name() string { return fmt.Sprintf("relu(%d)", r.dim) }

// OutDim implements Layer.
func (r *ReLU) OutDim() int { return r.dim }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(r.Name(), x, r.dim)
	out := tensor.New(x.Shape...)
	r.mask = make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward called before Forward")
	}
	gx := tensor.New(gradOut.Shape...)
	for i, v := range gradOut.Data {
		if r.mask[i] {
			gx.Data[i] = v
		}
	}
	return gx
}

// Params implements Layer (none).
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Tanh is the hyperbolic tangent activation (LeNet-5's classic
// nonlinearity), applied elementwise.
type Tanh struct {
	dim int
	y   *tensor.Tensor
}

// NewTanh builds a Tanh over dim features.
func NewTanh(dim int) *Tanh { return &Tanh{dim: dim} }

// Name implements Layer.
func (t *Tanh) Name() string { return fmt.Sprintf("tanh(%d)", t.dim) }

// OutDim implements Layer.
func (t *Tanh) OutDim() int { return t.dim }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(t.Name(), x, t.dim)
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.y = out
	return out
}

// Backward implements Layer: d tanh = 1 - tanh².
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.y == nil {
		panic("nn: Tanh.Backward called before Forward")
	}
	gx := tensor.New(gradOut.Shape...)
	for i, v := range gradOut.Data {
		y := t.y.Data[i]
		gx.Data[i] = v * (1 - y*y)
	}
	return gx
}

// Params implements Layer (none).
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Dropout zeroes activations with probability P during training and
// rescales the survivors by 1/(1-P) (inverted dropout); it is the identity
// at evaluation time.
type Dropout struct {
	dim  int
	P    float64
	rng  *rng.Rng
	mask []bool
}

// NewDropout builds a Dropout layer with drop probability p in [0, 1).
func NewDropout(dim int, p float64, r *rng.Rng) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout probability %v out of [0,1)", p))
	}
	return &Dropout{dim: dim, P: p, rng: r}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.P) }

// OutDim implements Layer.
func (d *Dropout) OutDim() int { return d.dim }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(d.Name(), x, d.dim)
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	out := tensor.New(x.Shape...)
	d.mask = make([]bool, len(x.Data))
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			d.mask[i] = true
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return gradOut // eval-mode identity
	}
	gx := tensor.New(gradOut.Shape...)
	scale := 1 / (1 - d.P)
	for i, v := range gradOut.Data {
		if d.mask[i] {
			gx.Data[i] = v * scale
		}
	}
	return gx
}

// Params implements Layer (none).
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

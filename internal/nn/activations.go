package nn

import (
	"fmt"
	"math"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// ReLU is the rectified linear activation, applied elementwise.
type ReLU struct {
	dim     int
	mask    []bool
	out, gx ws
}

// NewReLU builds a ReLU over dim features.
func NewReLU(dim int) *ReLU { return &ReLU{dim: dim} }

// Name implements Layer.
func (r *ReLU) Name() string { return fmt.Sprintf("relu(%d)", r.dim) }

// OutDim implements Layer.
func (r *ReLU) OutDim() int { return r.dim }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(r, "", x, r.dim)
	out := r.out.get(x.Shape[0], x.Shape[1])
	r.mask = growBools(r.mask, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			out.Data[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward called before Forward")
	}
	gx := r.gx.get(gradOut.Shape[0], gradOut.Shape[1])
	for i, v := range gradOut.Data {
		if r.mask[i] {
			gx.Data[i] = v
		} else {
			gx.Data[i] = 0
		}
	}
	return gx
}

// Params implements Layer (none).
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Tanh is the hyperbolic tangent activation (LeNet-5's classic
// nonlinearity), applied elementwise.
type Tanh struct {
	dim     int
	y       *tensor.Tensor
	out, gx ws
}

// NewTanh builds a Tanh over dim features.
func NewTanh(dim int) *Tanh { return &Tanh{dim: dim} }

// Name implements Layer.
func (t *Tanh) Name() string { return fmt.Sprintf("tanh(%d)", t.dim) }

// OutDim implements Layer.
func (t *Tanh) OutDim() int { return t.dim }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(t, "", x, t.dim)
	out := t.out.get(x.Shape[0], x.Shape[1])
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.y = out
	return out
}

// Backward implements Layer: d tanh = 1 - tanh².
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.y == nil {
		panic("nn: Tanh.Backward called before Forward")
	}
	gx := t.gx.get(gradOut.Shape[0], gradOut.Shape[1])
	for i, v := range gradOut.Data {
		y := t.y.Data[i]
		gx.Data[i] = v * (1 - y*y)
	}
	return gx
}

// Params implements Layer (none).
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Dropout zeroes activations with probability P during training and
// rescales the survivors by 1/(1-P) (inverted dropout); it is the identity
// at evaluation time.
//
// Dropout implements StepSeeded: its mask stream should be rebased from
// the training step's RNG (fl local training does this through
// Sequential.SeedStep), so its behaviour depends only on the (client,
// round) stream, not on how many times the model instance was used
// before — the property pooled model reuse relies on (DESIGN.md §5,
// model-pool invariant 3). The constructor stream is only a fallback for
// standalone use.
type Dropout struct {
	dim     int
	P       float64
	rng     *rng.Rng
	mask    []bool
	active  bool // true when the last Forward was a training pass
	out, gx ws
}

// NewDropout builds a Dropout layer with drop probability p in [0, 1).
func NewDropout(dim int, p float64, r *rng.Rng) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout probability %v out of [0,1)", p))
	}
	return &Dropout{dim: dim, P: p, rng: r}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.P) }

// OutDim implements Layer.
func (d *Dropout) OutDim() int { return d.dim }

// SeedStep implements StepSeeded: subsequent masks are drawn from r.
func (d *Dropout) SeedStep(r *rng.Rng) { d.rng = r }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(d, "", x, d.dim)
	if !train || d.P == 0 {
		d.active = false
		return x
	}
	out := d.out.get(x.Shape[0], x.Shape[1])
	d.mask = growBools(d.mask, len(x.Data))
	d.active = true
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			d.mask[i] = true
			out.Data[i] = v * scale
		} else {
			d.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if !d.active {
		return gradOut // eval-mode identity
	}
	gx := d.gx.get(gradOut.Shape[0], gradOut.Shape[1])
	scale := 1 / (1 - d.P)
	for i, v := range gradOut.Data {
		if d.mask[i] {
			gx.Data[i] = v * scale
		} else {
			gx.Data[i] = 0
		}
	}
	return gx
}

// Params implements Layer (none).
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

package nn

import (
	"fmt"
	"math"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Float32 mirrors of the layer zoo. Constructors take explicit
// hyperparameters (no initialization RNG): float32 layers are built by
// Mirror32 as shadows of an initialized float64 network, and receive
// their weights through AssignParams32. Forward/backward algorithms,
// summation orders, and tie-breaking match the float64 layers statement
// for statement so the divergence-bound tests measure only rounding.

// Dense32 is the float32 mirror of Dense: y = x·Wᵀ + b.
type Dense32 struct {
	In, Out int
	W       *tensor.Tensor32 // (Out, In)
	B       *tensor.Tensor32 // (Out)
	gw, gb  *tensor.Tensor32
	x       *tensor.Tensor32

	out   ws32
	gwTmp ws32
	gx    ws32
}

// NewDense32 constructs a zero-weight float32 dense layer.
func NewDense32(in, out int) *Dense32 {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense32 dims must be positive, got %d→%d", in, out))
	}
	return &Dense32{
		In: in, Out: out,
		W:  tensor.New32(out, in),
		B:  tensor.New32(out),
		gw: tensor.New32(out, in),
		gb: tensor.New32(out),
	}
}

// Name implements Layer32.
func (d *Dense32) Name() string { return fmt.Sprintf("dense32(%d→%d)", d.In, d.Out) }

// OutDim implements Layer32.
func (d *Dense32) OutDim() int { return d.Out }

// Forward implements Layer32.
func (d *Dense32) Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32 {
	checkBatchInput32(d, "", x, d.In)
	d.x = x
	batch := x.Shape[0]
	y := d.out.get(batch, d.Out)
	tensor.MatMulTransB32Into(y, x, d.W)
	for i := 0; i < batch; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += d.B.Data[j]
		}
	}
	return y
}

// Backward implements Layer32.
func (d *Dense32) Backward(gradOut *tensor.Tensor32) *tensor.Tensor32 {
	if d.x == nil {
		panic("nn: Dense32.Backward called before Forward")
	}
	checkBatchInput32(d, " backward", gradOut, d.Out)
	gw := d.gwTmp.get(d.Out, d.In)
	tensor.MatMulTransA32Into(gw, gradOut, d.x)
	d.gw.AddScaled(gw, 1)
	batch := gradOut.Shape[0]
	for i := 0; i < batch; i++ {
		row := gradOut.Row(i)
		for j, v := range row {
			d.gb.Data[j] += v
		}
	}
	gx := d.gx.get(batch, d.In)
	tensor.MatMul32Into(gx, gradOut, d.W)
	return gx
}

// Params implements Layer32.
func (d *Dense32) Params() []*tensor.Tensor32 { return []*tensor.Tensor32{d.W, d.B} }

// Grads implements Layer32.
func (d *Dense32) Grads() []*tensor.Tensor32 { return []*tensor.Tensor32{d.gw, d.gb} }

// Conv2D32 is the float32 mirror of Conv2D: batched im2col + one matmul.
// Backward reuses the im2col workspace for the column gradient, so call
// it at most once per Forward.
type Conv2D32 struct {
	Geom   tensor.ConvGeom
	OutC   int
	W      *tensor.Tensor32 // (OutC, InC*KH*KW)
	B      *tensor.Tensor32 // (OutC)
	gw, gb *tensor.Tensor32
	batch  int

	cols  ws32
	mm    ws32
	out   ws32
	gwTmp ws32
	gx    ws32
}

// NewConv2D32 constructs a zero-weight float32 convolution.
func NewConv2D32(g tensor.ConvGeom, outC int) *Conv2D32 {
	g.Validate()
	if outC <= 0 {
		panic(fmt.Sprintf("nn: Conv2D32 outC must be positive, got %d", outC))
	}
	rowLen := g.InC * g.KH * g.KW
	return &Conv2D32{
		Geom: g, OutC: outC,
		W:  tensor.New32(outC, rowLen),
		B:  tensor.New32(outC),
		gw: tensor.New32(outC, rowLen),
		gb: tensor.New32(outC),
	}
}

// Name implements Layer32.
func (c *Conv2D32) Name() string {
	return fmt.Sprintf("conv32 %dx%d(%d→%d)", c.Geom.KH, c.Geom.KW, c.Geom.InC, c.OutC)
}

// InDim returns the expected flattened input width.
func (c *Conv2D32) InDim() int { return c.Geom.InC * c.Geom.InH * c.Geom.InW }

// OutDim implements Layer32.
func (c *Conv2D32) OutDim() int { return c.OutC * c.Geom.OutH() * c.Geom.OutW() }

// Forward implements Layer32.
func (c *Conv2D32) Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32 {
	checkBatchInput32(c, "", x, c.InDim())
	batch := x.Shape[0]
	c.batch = batch
	outHW := c.Geom.OutH() * c.Geom.OutW()
	rowLen := c.Geom.InC * c.Geom.KH * c.Geom.KW
	cols := c.cols.get(batch*outHW, rowLen)
	for b := 0; b < batch; b++ {
		tensor.Im2Col32Into(x.Row(b), c.Geom, cols.Data[b*outHW*rowLen:(b+1)*outHW*rowLen])
	}
	y := c.mm.get(batch*outHW, c.OutC)
	tensor.MatMulTransB32Into(y, cols, c.W)
	out := c.out.get(batch, c.OutC*outHW)
	for b := 0; b < batch; b++ {
		dst := out.Row(b)
		for p := 0; p < outHW; p++ {
			src := y.Row(b*outHW + p)
			for ch := 0; ch < c.OutC; ch++ {
				dst[ch*outHW+p] = src[ch] + c.B.Data[ch]
			}
		}
	}
	return out
}

// Backward implements Layer32.
func (c *Conv2D32) Backward(gradOut *tensor.Tensor32) *tensor.Tensor32 {
	if c.batch == 0 {
		panic("nn: Conv2D32.Backward called before Forward")
	}
	checkBatchInput32(c, " backward", gradOut, c.OutDim())
	batch := c.batch
	outHW := c.Geom.OutH() * c.Geom.OutW()
	rowLen := c.Geom.InC * c.Geom.KH * c.Geom.KW
	cols := c.cols.get(batch*outHW, rowLen)
	gy := c.mm.get(batch*outHW, c.OutC)
	for b := 0; b < batch; b++ {
		src := gradOut.Row(b)
		for p := 0; p < outHW; p++ {
			dst := gy.Row(b*outHW + p)
			for ch := 0; ch < c.OutC; ch++ {
				dst[ch] = src[ch*outHW+p]
			}
		}
	}
	gw := c.gwTmp.get(c.OutC, rowLen)
	tensor.MatMulTransA32Into(gw, gy, cols)
	c.gw.AddScaled(gw, 1)
	for i := 0; i < gy.Shape[0]; i++ {
		row := gy.Row(i)
		for ch, v := range row {
			c.gb.Data[ch] += v
		}
	}
	tensor.MatMul32Into(cols, gy, c.W)
	gx := c.gx.get(batch, c.InDim())
	gx.Zero()
	for b := 0; b < batch; b++ {
		tensor.Col2Im32Into(cols.Data[b*outHW*rowLen:(b+1)*outHW*rowLen], c.Geom, gx.Row(b))
	}
	return gx
}

// Params implements Layer32.
func (c *Conv2D32) Params() []*tensor.Tensor32 { return []*tensor.Tensor32{c.W, c.B} }

// Grads implements Layer32.
func (c *Conv2D32) Grads() []*tensor.Tensor32 { return []*tensor.Tensor32{c.gw, c.gb} }

// MaxPool232 is the float32 mirror of MaxPool2 (2×2, stride 2), with the
// identical strict-greater tie-breaking in the argmax scan.
type MaxPool232 struct {
	C, H, W int
	argmax  []int
	batch   int
	out, gx ws32
}

// NewMaxPool232 builds the layer for the given even input volume.
func NewMaxPool232(c, h, w int) *MaxPool232 {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: MaxPool232 invalid volume %dx%dx%d", c, h, w))
	}
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: MaxPool232 requires even H and W, got %dx%d", h, w))
	}
	return &MaxPool232{C: c, H: h, W: w}
}

// Name implements Layer32.
func (p *MaxPool232) Name() string { return fmt.Sprintf("maxpool232(%dx%dx%d)", p.C, p.H, p.W) }

// InDim returns the flattened input width.
func (p *MaxPool232) InDim() int { return p.C * p.H * p.W }

// OutDim implements Layer32.
func (p *MaxPool232) OutDim() int { return p.C * (p.H / 2) * (p.W / 2) }

// Forward implements Layer32.
func (p *MaxPool232) Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32 {
	checkBatchInput32(p, "", x, p.InDim())
	batch := x.Shape[0]
	p.batch = batch
	oh, ow := p.H/2, p.W/2
	out := p.out.get(batch, p.OutDim())
	p.argmax = growInts(p.argmax, batch*p.OutDim())
	for b := 0; b < batch; b++ {
		in := x.Row(b)
		dst := out.Row(b)
		for c := 0; c < p.C; c++ {
			inBase := c * p.H * p.W
			outBase := c * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					i00 := inBase + (2*oy)*p.W + 2*ox
					i01 := i00 + 1
					i10 := i00 + p.W
					i11 := i10 + 1
					bi, bv := i00, in[i00]
					if in[i01] > bv {
						bi, bv = i01, in[i01]
					}
					if in[i10] > bv {
						bi, bv = i10, in[i10]
					}
					if in[i11] > bv {
						bi, bv = i11, in[i11]
					}
					oi := outBase + oy*ow + ox
					dst[oi] = bv
					p.argmax[b*p.OutDim()+oi] = bi
				}
			}
		}
	}
	return out
}

// Backward implements Layer32.
func (p *MaxPool232) Backward(gradOut *tensor.Tensor32) *tensor.Tensor32 {
	if p.argmax == nil {
		panic("nn: MaxPool232.Backward called before Forward")
	}
	checkBatchInput32(p, " backward", gradOut, p.OutDim())
	gx := p.gx.get(p.batch, p.InDim())
	gx.Zero()
	for b := 0; b < p.batch; b++ {
		src := gradOut.Row(b)
		dst := gx.Row(b)
		for oi, v := range src {
			dst[p.argmax[b*p.OutDim()+oi]] += v
		}
	}
	return gx
}

// Params implements Layer32 (none).
func (p *MaxPool232) Params() []*tensor.Tensor32 { return nil }

// Grads implements Layer32 (none).
func (p *MaxPool232) Grads() []*tensor.Tensor32 { return nil }

// AvgPool232 is the float32 mirror of AvgPool2 (2×2, stride 2), with the
// identical four-term summation order.
type AvgPool232 struct {
	C, H, W int
	batch   int
	out, gx ws32
}

// NewAvgPool232 builds the layer for the given even input volume.
func NewAvgPool232(c, h, w int) *AvgPool232 {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: AvgPool232 invalid volume %dx%dx%d", c, h, w))
	}
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: AvgPool232 requires even H and W, got %dx%d", h, w))
	}
	return &AvgPool232{C: c, H: h, W: w}
}

// Name implements Layer32.
func (p *AvgPool232) Name() string { return fmt.Sprintf("avgpool232(%dx%dx%d)", p.C, p.H, p.W) }

// InDim returns the flattened input width.
func (p *AvgPool232) InDim() int { return p.C * p.H * p.W }

// OutDim implements Layer32.
func (p *AvgPool232) OutDim() int { return p.C * (p.H / 2) * (p.W / 2) }

// Forward implements Layer32.
func (p *AvgPool232) Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32 {
	checkBatchInput32(p, "", x, p.InDim())
	batch := x.Shape[0]
	p.batch = batch
	oh, ow := p.H/2, p.W/2
	out := p.out.get(batch, p.OutDim())
	for b := 0; b < batch; b++ {
		in := x.Row(b)
		dst := out.Row(b)
		for c := 0; c < p.C; c++ {
			inBase := c * p.H * p.W
			outBase := c * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					i00 := inBase + (2*oy)*p.W + 2*ox
					dst[outBase+oy*ow+ox] = 0.25 * (in[i00] + in[i00+1] + in[i00+p.W] + in[i00+p.W+1])
				}
			}
		}
	}
	return out
}

// Backward implements Layer32.
func (p *AvgPool232) Backward(gradOut *tensor.Tensor32) *tensor.Tensor32 {
	if p.batch == 0 {
		panic("nn: AvgPool232.Backward called before Forward")
	}
	checkBatchInput32(p, " backward", gradOut, p.OutDim())
	oh, ow := p.H/2, p.W/2
	gx := p.gx.get(p.batch, p.InDim())
	gx.Zero()
	for b := 0; b < p.batch; b++ {
		src := gradOut.Row(b)
		dst := gx.Row(b)
		for c := 0; c < p.C; c++ {
			inBase := c * p.H * p.W
			outBase := c * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := 0.25 * src[outBase+oy*ow+ox]
					i00 := inBase + (2*oy)*p.W + 2*ox
					dst[i00] += g
					dst[i00+1] += g
					dst[i00+p.W] += g
					dst[i00+p.W+1] += g
				}
			}
		}
	}
	return gx
}

// Params implements Layer32 (none).
func (p *AvgPool232) Params() []*tensor.Tensor32 { return nil }

// Grads implements Layer32 (none).
func (p *AvgPool232) Grads() []*tensor.Tensor32 { return nil }

// ReLU32 is the float32 rectified linear activation.
type ReLU32 struct {
	dim     int
	mask    []bool
	out, gx ws32
}

// NewReLU32 builds a ReLU32 over dim features.
func NewReLU32(dim int) *ReLU32 { return &ReLU32{dim: dim} }

// Name implements Layer32.
func (r *ReLU32) Name() string { return fmt.Sprintf("relu32(%d)", r.dim) }

// OutDim implements Layer32.
func (r *ReLU32) OutDim() int { return r.dim }

// Forward implements Layer32.
func (r *ReLU32) Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32 {
	checkBatchInput32(r, "", x, r.dim)
	out := r.out.get(x.Shape[0], x.Shape[1])
	r.mask = growBools(r.mask, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			out.Data[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer32.
func (r *ReLU32) Backward(gradOut *tensor.Tensor32) *tensor.Tensor32 {
	if r.mask == nil {
		panic("nn: ReLU32.Backward called before Forward")
	}
	gx := r.gx.get(gradOut.Shape[0], gradOut.Shape[1])
	for i, v := range gradOut.Data {
		if r.mask[i] {
			gx.Data[i] = v
		} else {
			gx.Data[i] = 0
		}
	}
	return gx
}

// Params implements Layer32 (none).
func (r *ReLU32) Params() []*tensor.Tensor32 { return nil }

// Grads implements Layer32 (none).
func (r *ReLU32) Grads() []*tensor.Tensor32 { return nil }

// Tanh32 is the float32 hyperbolic tangent activation; the transcendental
// is evaluated in float64 and rounded once.
type Tanh32 struct {
	dim     int
	y       *tensor.Tensor32
	out, gx ws32
}

// NewTanh32 builds a Tanh32 over dim features.
func NewTanh32(dim int) *Tanh32 { return &Tanh32{dim: dim} }

// Name implements Layer32.
func (t *Tanh32) Name() string { return fmt.Sprintf("tanh32(%d)", t.dim) }

// OutDim implements Layer32.
func (t *Tanh32) OutDim() int { return t.dim }

// Forward implements Layer32.
func (t *Tanh32) Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32 {
	checkBatchInput32(t, "", x, t.dim)
	out := t.out.get(x.Shape[0], x.Shape[1])
	for i, v := range x.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	t.y = out
	return out
}

// Backward implements Layer32.
func (t *Tanh32) Backward(gradOut *tensor.Tensor32) *tensor.Tensor32 {
	if t.y == nil {
		panic("nn: Tanh32.Backward called before Forward")
	}
	gx := t.gx.get(gradOut.Shape[0], gradOut.Shape[1])
	for i, v := range gradOut.Data {
		y := t.y.Data[i]
		gx.Data[i] = v * (1 - y*y)
	}
	return gx
}

// Params implements Layer32 (none).
func (t *Tanh32) Params() []*tensor.Tensor32 { return nil }

// Grads implements Layer32 (none).
func (t *Tanh32) Grads() []*tensor.Tensor32 { return nil }

// Sigmoid32 is the float32 logistic activation; the exponential is
// evaluated in float64 and rounded once.
type Sigmoid32 struct {
	dim     int
	y       *tensor.Tensor32
	out, gx ws32
}

// NewSigmoid32 builds a Sigmoid32 over dim features.
func NewSigmoid32(dim int) *Sigmoid32 { return &Sigmoid32{dim: dim} }

// Name implements Layer32.
func (s *Sigmoid32) Name() string { return fmt.Sprintf("sigmoid32(%d)", s.dim) }

// OutDim implements Layer32.
func (s *Sigmoid32) OutDim() int { return s.dim }

// Forward implements Layer32.
func (s *Sigmoid32) Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32 {
	checkBatchInput32(s, "", x, s.dim)
	out := s.out.get(x.Shape[0], x.Shape[1])
	for i, v := range x.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(float64(-v))))
	}
	s.y = out
	return out
}

// Backward implements Layer32.
func (s *Sigmoid32) Backward(gradOut *tensor.Tensor32) *tensor.Tensor32 {
	if s.y == nil {
		panic("nn: Sigmoid32.Backward called before Forward")
	}
	gx := s.gx.get(gradOut.Shape[0], gradOut.Shape[1])
	for i, v := range gradOut.Data {
		y := s.y.Data[i]
		gx.Data[i] = v * y * (1 - y)
	}
	return gx
}

// Params implements Layer32 (none).
func (s *Sigmoid32) Params() []*tensor.Tensor32 { return nil }

// Grads implements Layer32 (none).
func (s *Sigmoid32) Grads() []*tensor.Tensor32 { return nil }

// Dropout32 is the float32 inverted dropout. The keep decision consumes
// exactly the same r.Float64() draw per element as the float64 Dropout,
// so a mirrored shadow sees identical masks — stream parity is part of
// the divergence-bound contract.
type Dropout32 struct {
	dim     int
	P       float64
	rng     *rng.Rng
	mask    []bool
	active  bool
	out, gx ws32
}

// NewDropout32 builds a Dropout32 with drop probability p in [0, 1).
func NewDropout32(dim int, p float64, r *rng.Rng) *Dropout32 {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout32 probability %v out of [0,1)", p))
	}
	return &Dropout32{dim: dim, P: p, rng: r}
}

// Name implements Layer32.
func (d *Dropout32) Name() string { return fmt.Sprintf("dropout32(%.2f)", d.P) }

// OutDim implements Layer32.
func (d *Dropout32) OutDim() int { return d.dim }

// SeedStep implements StepSeeded: subsequent masks are drawn from r.
func (d *Dropout32) SeedStep(r *rng.Rng) { d.rng = r }

// Forward implements Layer32.
func (d *Dropout32) Forward(x *tensor.Tensor32, train bool) *tensor.Tensor32 {
	checkBatchInput32(d, "", x, d.dim)
	if !train || d.P == 0 {
		d.active = false
		return x
	}
	out := d.out.get(x.Shape[0], x.Shape[1])
	d.mask = growBools(d.mask, len(x.Data))
	d.active = true
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			d.mask[i] = true
			out.Data[i] = v * scale
		} else {
			d.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer32.
func (d *Dropout32) Backward(gradOut *tensor.Tensor32) *tensor.Tensor32 {
	if !d.active {
		return gradOut
	}
	gx := d.gx.get(gradOut.Shape[0], gradOut.Shape[1])
	scale := float32(1 / (1 - d.P))
	for i, v := range gradOut.Data {
		if d.mask[i] {
			gx.Data[i] = v * scale
		} else {
			gx.Data[i] = 0
		}
	}
	return gx
}

// Params implements Layer32 (none).
func (d *Dropout32) Params() []*tensor.Tensor32 { return nil }

// Grads implements Layer32 (none).
func (d *Dropout32) Grads() []*tensor.Tensor32 { return nil }

package nn

import (
	"math"
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// numericalGrad estimates dLoss/dTheta for every parameter of net by
// central finite differences, where the loss is softmax CE on (x, labels).
func numericalGrad(net *Sequential, x *tensor.Tensor, labels []int, eps float64) []float64 {
	var ce SoftmaxCE
	lossAt := func() float64 {
		loss, _, _ := ce.Loss(net.Forward(x, false), labels)
		return loss
	}
	var grads []float64
	for _, p := range net.Params() {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := lossAt()
			p.Data[i] = orig - eps
			lm := lossAt()
			p.Data[i] = orig
			grads = append(grads, (lp-lm)/(2*eps))
		}
	}
	return grads
}

// analyticGrad runs one forward/backward pass and returns the flat
// parameter gradient.
func analyticGrad(net *Sequential, x *tensor.Tensor, labels []int) []float64 {
	var ce SoftmaxCE
	net.ZeroGrads()
	logits := net.Forward(x, true)
	_, grad, _ := ce.Loss(logits, labels)
	net.Backward(grad)
	return FlattenGrads(net)
}

// checkGradients compares analytic vs numerical gradients with a relative
// tolerance.
func checkGradients(t *testing.T, net *Sequential, x *tensor.Tensor, labels []int) {
	t.Helper()
	ana := analyticGrad(net, x, labels)
	num := numericalGrad(net, x, labels, 1e-5)
	if len(ana) != len(num) {
		t.Fatalf("gradient length mismatch: %d vs %d", len(ana), len(num))
	}
	for i := range ana {
		diff := math.Abs(ana[i] - num[i])
		scale := math.Max(1e-4, math.Abs(ana[i])+math.Abs(num[i]))
		if diff/scale > 1e-4 {
			t.Fatalf("gradient %d mismatch: analytic %v numerical %v", i, ana[i], num[i])
		}
	}
}

func randInput(r *rng.Rng, batch, dim int) *tensor.Tensor {
	x := tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	return x
}

func TestGradCheckDense(t *testing.T) {
	r := rng.New(1)
	net := NewSequential(NewDense(7, 4, r))
	checkGradients(t, net, randInput(r, 5, 7), []int{0, 1, 2, 3, 0})
}

func TestGradCheckMLPReLU(t *testing.T) {
	r := rng.New(2)
	net := MLP(r, 6, 8, 3)
	checkGradients(t, net, randInput(r, 4, 6), []int{0, 1, 2, 1})
}

func TestGradCheckTanh(t *testing.T) {
	r := rng.New(3)
	net := NewSequential(NewDense(5, 6, r), NewTanh(6), NewDense(6, 3, r))
	checkGradients(t, net, randInput(r, 3, 5), []int{2, 0, 1})
}

func TestGradCheckConv(t *testing.T) {
	r := rng.New(4)
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 3, r)
	net := NewSequential(conv, NewReLU(conv.OutDim()),
		NewDense(conv.OutDim(), 3, r))
	checkGradients(t, net, randInput(r, 2, 2*6*6), []int{0, 2})
}

func TestGradCheckConvStride2NoPad(t *testing.T) {
	r := rng.New(5)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 0}
	conv := NewConv2D(g, 2, r)
	net := NewSequential(conv, NewDense(conv.OutDim(), 2, r))
	checkGradients(t, net, randInput(r, 2, 64), []int{0, 1})
}

func TestGradCheckMaxPool(t *testing.T) {
	r := rng.New(6)
	pool := NewMaxPool2(2, 4, 4)
	net := NewSequential(pool, NewDense(pool.OutDim(), 3, r))
	checkGradients(t, net, randInput(r, 3, 32), []int{0, 1, 2})
}

func TestGradCheckConvPoolStack(t *testing.T) {
	r := rng.New(7)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 2, r)
	pool := NewMaxPool2(2, 8, 8)
	net := NewSequential(
		conv, NewReLU(conv.OutDim()), pool,
		NewDense(pool.OutDim(), 4, r),
	)
	checkGradients(t, net, randInput(r, 2, 64), []int{3, 1})
}

func TestGradCheckLeNetTiny(t *testing.T) {
	// A narrow LeNet-5 on a 12x12 single-channel input exercises the full
	// Table-I architecture end to end.
	r := rng.New(8)
	net := LeNet5(r, 1, 12, 12, 3, 0.25)
	checkGradients(t, net, randInput(r, 2, 144), []int{0, 2})
}

func TestGradCheckAvgPool(t *testing.T) {
	r := rng.New(9)
	pool := NewAvgPool2(2, 4, 4)
	net := NewSequential(pool, NewDense(pool.OutDim(), 3, r))
	checkGradients(t, net, randInput(r, 3, 32), []int{0, 1, 2})
}

func TestGradCheckSigmoid(t *testing.T) {
	r := rng.New(10)
	net := NewSequential(NewDense(5, 6, r), NewSigmoid(6), NewDense(6, 3, r))
	checkGradients(t, net, randInput(r, 3, 5), []int{2, 0, 1})
}

func TestGradCheckClassicLeNetStack(t *testing.T) {
	// The 1989-style stack: conv → tanh → average pool.
	r := rng.New(11)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 2, r)
	pool := NewAvgPool2(2, 8, 8)
	net := NewSequential(conv, NewTanh(conv.OutDim()), pool, NewDense(pool.OutDim(), 3, r))
	checkGradients(t, net, randInput(r, 2, 64), []int{1, 2})
}

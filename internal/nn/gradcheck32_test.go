package nn

import (
	"math"
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// numericalGrad32 estimates dLoss/dTheta for every parameter of the
// float32 net by central finite differences. The loss head reports in
// float64, so eps can sit well above float32 noise while the quotient
// stays meaningful.
func numericalGrad32(net *Sequential32, x *tensor.Tensor32, labels []int, eps float32) []float64 {
	var ce SoftmaxCE32
	lossAt := func() float64 {
		loss, _, _ := ce.Loss(net.Forward(x, false), labels)
		return loss
	}
	var grads []float64
	for _, p := range net.Params() {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := lossAt()
			p.Data[i] = orig - eps
			lm := lossAt()
			p.Data[i] = orig
			grads = append(grads, (lp-lm)/(2*float64(eps)))
		}
	}
	return grads
}

// analyticGrad32 runs one forward/backward pass on the float32 net and
// returns the flat parameter gradient widened to float64.
func analyticGrad32(net *Sequential32, x *tensor.Tensor32, labels []int) []float64 {
	var ce SoftmaxCE32
	net.ZeroGrads()
	logits := net.Forward(x, true)
	_, grad, _ := ce.Loss(logits, labels)
	net.Backward(grad)
	var out []float64
	for _, g := range net.Grads() {
		for _, v := range g.Data {
			out = append(out, float64(v))
		}
	}
	return out
}

// checkGradients32 mirrors checkGradients with tolerances widened for
// float32 forward-pass noise: eps 1e-2 (so the central difference rises
// above rounding) and relative tolerance 5e-2.
func checkGradients32(t *testing.T, src *Sequential, x *tensor.Tensor, labels []int) {
	t.Helper()
	net := Mirror32(src)
	if net == nil {
		t.Fatalf("Mirror32 returned nil for %v", src)
	}
	AssignParams32(net, src)
	x32 := tensor.New32(x.Shape...)
	for i, v := range x.Data {
		x32.Data[i] = float32(v)
	}
	num := numericalGrad32(net, x32, labels, 1e-2)
	ana := analyticGrad32(net, x32, labels)
	if len(num) != len(ana) {
		t.Fatalf("gradient lengths differ: %d vs %d", len(num), len(ana))
	}
	for i := range num {
		scale := math.Abs(ana[i]) + math.Abs(num[i])
		if scale < 1e-2 {
			scale = 1e-2
		}
		if math.Abs(ana[i]-num[i])/scale > 5e-2 {
			t.Fatalf("gradient %d: analytic %.6g vs numerical %.6g", i, ana[i], num[i])
		}
	}
}

// checkGradients32VsFloat64 checks the float32 analytic gradient against
// the float64 analytic gradient of the source network. The float64
// gradient is itself pinned by the float64 numerical gradcheck suite, so
// this transitively verifies the float32 backward pass — and unlike a
// wide-eps central difference it is immune to ReLU/argmax kink crossing,
// which is why the kinked stacks use it.
func checkGradients32VsFloat64(t *testing.T, src *Sequential, x *tensor.Tensor, labels []int) {
	t.Helper()
	ref := analyticGrad(src, x, labels)
	net := Mirror32(src)
	if net == nil {
		t.Fatalf("Mirror32 returned nil for %v", src)
	}
	AssignParams32(net, src)
	x32 := tensor.New32(x.Shape...)
	for i, v := range x.Data {
		x32.Data[i] = float32(v)
	}
	got := analyticGrad32(net, x32, labels)
	if len(got) != len(ref) {
		t.Fatalf("gradient lengths differ: %d vs %d", len(got), len(ref))
	}
	for i := range got {
		scale := math.Abs(ref[i]) + math.Abs(got[i])
		if scale < 1e-3 {
			scale = 1e-3
		}
		if math.Abs(got[i]-ref[i])/scale > 5e-3 {
			t.Fatalf("gradient %d: float32 %.6g vs float64 %.6g", i, got[i], ref[i])
		}
	}
}

func TestGradCheck32Dense(t *testing.T) {
	r := rng.New(42)
	net := NewSequential(NewDense(7, 4, r))
	checkGradients32(t, net, randInput(r, 5, 7), []int{0, 1, 2, 3, 0})
}

func TestGradCheck32MLPReLU(t *testing.T) {
	r := rng.New(43)
	net := MLP(r, 6, 8, 3)
	checkGradients32(t, net, randInput(r, 4, 6), []int{0, 1, 2, 1})
}

func TestGradCheck32Tanh(t *testing.T) {
	r := rng.New(44)
	net := NewSequential(NewDense(5, 6, r), NewTanh(6), NewDense(6, 3, r))
	checkGradients32(t, net, randInput(r, 4, 5), []int{2, 0, 1, 2})
}

func TestGradCheck32ConvSmooth(t *testing.T) {
	r := rng.New(45)
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 3, r)
	// No ReLU: the smooth stack keeps the central difference honest, so
	// Conv2D32's backward gets a numerical check of its own.
	net := NewSequential(conv, NewDense(conv.OutDim(), 3, r))
	checkGradients32(t, net, randInput(r, 2, g.InC*g.InH*g.InW), []int{0, 2})
}

func TestGradCheck32ConvReLU(t *testing.T) {
	r := rng.New(45)
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 3, r)
	net := NewSequential(conv, NewReLU(conv.OutDim()), NewDense(conv.OutDim(), 3, r))
	checkGradients32VsFloat64(t, net, randInput(r, 2, g.InC*g.InH*g.InW), []int{0, 2})
}

func TestGradCheck32MaxPoolStack(t *testing.T) {
	r := rng.New(46)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 2, r)
	pool := NewMaxPool2(2, 8, 8)
	net := NewSequential(conv, NewReLU(conv.OutDim()), pool, NewDense(pool.OutDim(), 3, r))
	checkGradients32VsFloat64(t, net, randInput(r, 2, 64), []int{1, 2})
}

func TestGradCheck32AvgPoolSigmoid(t *testing.T) {
	r := rng.New(47)
	pool := NewAvgPool2(1, 6, 6)
	net := NewSequential(pool, NewSigmoid(pool.OutDim()), NewDense(pool.OutDim(), 2, r))
	checkGradients32(t, net, randInput(r, 3, 36), []int{0, 1, 0})
}

func TestGradCheck32LeNetTiny(t *testing.T) {
	r := rng.New(48)
	net := LeNet5(r, 1, 12, 12, 3, 0.25)
	checkGradients32VsFloat64(t, net, randInput(r, 2, 144), []int{0, 2})
}

// TestMirror32ForwardMatchesFloat64 pins the per-layer divergence
// contract at the model level: an eval-mode forward pass of a mirrored
// LeNet stays within float32 rounding of the float64 reference.
func TestMirror32ForwardMatchesFloat64(t *testing.T) {
	r := rng.New(49)
	net := LeNet5(r, 1, 12, 12, 3, 0.5)
	m := Mirror32(net)
	if m == nil {
		t.Fatal("Mirror32 returned nil for LeNet5")
	}
	AssignParams32(m, net)
	x := randInput(r, 4, 144)
	x32 := tensor.New32(x.Shape...)
	for i, v := range x.Data {
		x32.Data[i] = float32(v)
	}
	y64 := net.Forward(x, false)
	y32 := m.Forward(x32, false)
	if y32.Shape[0] != y64.Shape[0] || y32.Shape[1] != y64.Shape[1] {
		t.Fatalf("shape mismatch %v vs %v", y32.Shape, y64.Shape)
	}
	for i := range y64.Data {
		diff := math.Abs(float64(y32.Data[i]) - y64.Data[i])
		scale := math.Abs(y64.Data[i]) + 1
		if diff/scale > 1e-4 {
			t.Fatalf("logit %d diverges: f32 %g vs f64 %g", i, y32.Data[i], y64.Data[i])
		}
	}
}

// TestMirror32RoundTripParams pins that AssignParams32 → CopyParams64 is
// the exact float32 rounding of the originals (widening is lossless),
// the property the zero-convert wire fast path relies on.
func TestMirror32RoundTripParams(t *testing.T) {
	r := rng.New(50)
	net := MLP(r, 6, 8, 3)
	m := Mirror32(net)
	AssignParams32(m, net)
	clone := MLP(rng.New(50), 6, 8, 3)
	CopyParams64(clone, m)
	cp, np := clone.Params(), net.Params()
	for i := range np {
		for j := range np[i].Data {
			want := float64(float32(np[i].Data[j]))
			if cp[i].Data[j] != want {
				t.Fatalf("param %d[%d]: round-trip %g, want %g", i, j, cp[i].Data[j], want)
			}
		}
	}
}

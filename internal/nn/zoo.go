package nn

import (
	"fmt"
	"math"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// MLP builds a multilayer perceptron with ReLU between layers and a linear
// classifier head. dims is [in, hidden..., out].
func MLP(r *rng.Rng, dims ...int) *Sequential {
	if len(dims) < 2 {
		panic(fmt.Sprintf("nn: MLP needs at least [in, out] dims, got %v", dims))
	}
	var layers []Layer
	for i := 0; i < len(dims)-1; i++ {
		layers = append(layers, NewDense(dims[i], dims[i+1], r))
		if i < len(dims)-2 {
			layers = append(layers, NewReLU(dims[i+1]))
		}
	}
	return NewSequential(layers...)
}

// scaleWidth applies a multiplicative width scale with a floor of 1.
func scaleWidth(w int, scale float64) int {
	s := int(math.Round(float64(w) * scale))
	if s < 1 {
		return 1
	}
	return s
}

// LeNet5 builds the LeNet-5 architecture used for Table I:
//
//	conv5x5(→6) → relu → pool → conv5x5(→16) → relu → pool →
//	dense(120) → relu → dense(84) → relu → dense(classes)
//
// The first convolution pads so that odd input sizes still pool cleanly.
// widthScale < 1 narrows every layer proportionally (the simulator's
// datasets are synthetic, so a narrower net trains faster with the same
// dynamics); widthScale = 1 is the faithful architecture.
func LeNet5(r *rng.Rng, inC, inH, inW, classes int, widthScale float64) *Sequential {
	if classes < 2 {
		panic(fmt.Sprintf("nn: LeNet5 needs >=2 classes, got %d", classes))
	}
	c1 := scaleWidth(6, widthScale)
	c2 := scaleWidth(16, widthScale)
	f1 := scaleWidth(120, widthScale)
	f2 := scaleWidth(84, widthScale)

	// Pad the first conv so its output is even (pool-friendly) and
	// spatial size is preserved for 28/32-px inputs (pad 2, as in the
	// standard 28x28 MNIST setup).
	g1 := tensor.ConvGeom{InC: inC, InH: inH, InW: inW, KH: 5, KW: 5, Stride: 1, Pad: 2}
	conv1 := NewConv2D(g1, c1, r)
	h1, w1 := g1.OutH(), g1.OutW()
	if h1%2 != 0 || w1%2 != 0 {
		panic(fmt.Sprintf("nn: LeNet5 conv1 output %dx%d not poolable; use even input sizes", h1, w1))
	}
	pool1 := NewMaxPool2(c1, h1, w1)
	h1, w1 = h1/2, w1/2

	g2 := tensor.ConvGeom{InC: c1, InH: h1, InW: w1, KH: 5, KW: 5, Stride: 1, Pad: 0}
	if g2.OutH() < 2 || g2.OutH()%2 != 0 {
		// For small inputs fall back to pad 2 to keep the volume poolable.
		g2.Pad = 2
	}
	conv2 := NewConv2D(g2, c2, r)
	h2, w2 := g2.OutH(), g2.OutW()
	pool2 := NewMaxPool2(c2, h2, w2)
	h2, w2 = h2/2, w2/2

	flat := c2 * h2 * w2
	return NewSequential(
		conv1, NewReLU(conv1.OutDim()), pool1,
		conv2, NewReLU(conv2.OutDim()), pool2,
		NewDense(flat, f1, r), NewReLU(f1),
		NewDense(f1, f2, r), NewReLU(f2),
		NewDense(f2, classes, r),
	)
}

// MiniVGG16 builds a VGG-16-shaped network: the canonical 13 convolutional
// layers in five blocks (2-2-3-3-3 with 2×2 pooling after each block)
// followed by 3 fully connected layers. base scales the channel widths
// (VGG-16's 64 → base). The input must be 32×32 so the five pools reduce
// to 1×1.
//
// Weight-layer numbering therefore matches the paper's Fig. 1 exactly:
// weight layers 1-13 are convolutional (CL), 14-16 fully connected (FL).
func MiniVGG16(r *rng.Rng, inC, classes, base int) *Sequential {
	if base < 1 {
		panic(fmt.Sprintf("nn: MiniVGG16 base must be >=1, got %d", base))
	}
	const in = 32
	// Channel multipliers per block, relative to VGG's 64/128/256/512/512.
	blocks := [][]int{
		{base, base},
		{2 * base, 2 * base},
		{4 * base, 4 * base, 4 * base},
		{8 * base, 8 * base, 8 * base},
		{8 * base, 8 * base, 8 * base},
	}
	var layers []Layer
	c, h, w := inC, in, in
	for _, block := range blocks {
		for _, outC := range block {
			g := tensor.ConvGeom{InC: c, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}
			conv := NewConv2D(g, outC, r)
			layers = append(layers, conv, NewReLU(conv.OutDim()))
			c = outC
		}
		layers = append(layers, NewMaxPool2(c, h, w))
		h, w = h/2, w/2
	}
	flat := c * h * w // c × 1 × 1
	fcw := 8 * base   // VGG's 4096 → 8·base
	layers = append(layers,
		NewDense(flat, fcw, r), NewReLU(fcw),
		NewDense(fcw, fcw, r), NewReLU(fcw),
		NewDense(fcw, classes, r),
	)
	return NewSequential(layers...)
}

package nn

import "fmt"

// Mirror32 builds a float32 shadow of a float64 network: one Layer32 per
// Layer, positionally 1:1 (so SeedStep derivation keys line up), with
// identical hyperparameters and zeroed weights — call AssignParams32 to
// load them. It returns nil if the network contains a layer kind without
// a float32 mirror; callers treat nil as "stay on the float64 path",
// which keeps an unmirrorable architecture working instead of failing.
func Mirror32(src *Sequential) *Sequential32 {
	layers := make([]Layer32, len(src.Layers))
	for i, l := range src.Layers {
		switch t := l.(type) {
		case *Dense:
			layers[i] = NewDense32(t.In, t.Out)
		case *Conv2D:
			layers[i] = NewConv2D32(t.Geom, t.OutC)
		case *ReLU:
			layers[i] = NewReLU32(t.dim)
		case *Tanh:
			layers[i] = NewTanh32(t.dim)
		case *Sigmoid:
			layers[i] = NewSigmoid32(t.dim)
		case *Dropout:
			// The source's stream is only the standalone fallback; local
			// training rebases it through SeedStep before every use.
			layers[i] = NewDropout32(t.dim, t.P, t.rng)
		case *MaxPool2:
			layers[i] = NewMaxPool232(t.C, t.H, t.W)
		case *AvgPool2:
			layers[i] = NewAvgPool232(t.C, t.H, t.W)
		default:
			return nil
		}
	}
	return NewSequential32(layers...)
}

// AssignParams32 loads the float64 network's parameters into its float32
// mirror, rounding each scalar once. The two networks must come from
// Mirror32 (same layer structure); it panics on a tensor count or size
// mismatch.
func AssignParams32(dst *Sequential32, src *Sequential) {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		panic(fmt.Sprintf("nn: AssignParams32 tensor count %d vs %d", len(dp), len(sp)))
	}
	for i, p := range sp {
		d := dp[i]
		if d.Size() != p.Size() {
			panic(fmt.Sprintf("nn: AssignParams32 tensor %d size %d vs %d", i, d.Size(), p.Size()))
		}
		for j, v := range p.Data {
			d.Data[j] = float32(v)
		}
	}
}

// CopyParams64 writes the float32 mirror's parameters back into the
// float64 network (the inverse of AssignParams32; widening is exact).
func CopyParams64(dst *Sequential, src *Sequential32) {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		panic(fmt.Sprintf("nn: CopyParams64 tensor count %d vs %d", len(dp), len(sp)))
	}
	for i, p := range sp {
		d := dp[i]
		if d.Size() != p.Size() {
			panic(fmt.Sprintf("nn: CopyParams64 tensor %d size %d vs %d", i, d.Size(), p.Size()))
		}
		for j, v := range p.Data {
			d.Data[j] = float64(v)
		}
	}
}

// FlattenParams32Into writes the float32 network's parameters into dst
// in FlattenParams layer order without allocating. dst must have length
// exactly s.NumParams(). Returns dst.
func FlattenParams32Into(s *Sequential32, dst []float32) []float32 {
	if len(dst) != s.NumParams() {
		panic(fmt.Sprintf("nn: FlattenParams32Into length %d, want %d", len(dst), s.NumParams()))
	}
	off := 0
	for _, p := range s.Params() {
		copy(dst[off:off+p.Size()], p.Data)
		off += p.Size()
	}
	return dst
}

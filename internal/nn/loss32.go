package nn

import (
	"fmt"
	"math"

	"fedclust/internal/tensor"
)

// SoftmaxCE32 is the float32 mirror of SoftmaxCE. Activations are stored
// in float32 but the transcendentals and reductions (exp, the softmax
// normalizer, log) run in float64: the loss head is a tiny fraction of
// step cost, and keeping it accurate means the reported loss diverges
// from the float64 path only through the network, not the head.
//
// Like SoftmaxCE, the zero value is ready to use and the returned
// tensors are valid only until the next Loss call.
type SoftmaxCE32 struct {
	gradWS, probsWS ws32
}

// Loss computes mean cross-entropy over the batch given raw float32
// logits (batch, classes) and integer labels, returning the loss in
// float64, the gradient with respect to the logits (divided by batch
// size), and the softmax probabilities.
func (ce *SoftmaxCE32) Loss(logits *tensor.Tensor32, labels []int) (loss float64, grad, probs *tensor.Tensor32) {
	if len(logits.Shape) != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCE32 expects (batch, classes) logits, got %v", logits.Shape))
	}
	batch, classes := logits.Shape[0], logits.Shape[1]
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: SoftmaxCE32 got %d labels for batch of %d", len(labels), batch))
	}
	probs = ce.probsWS.get(batch, classes)
	grad = ce.gradWS.get(batch, classes)
	invB := 1 / float64(batch)
	for b := 0; b < batch; b++ {
		row := logits.Row(b)
		p := probs.Row(b)
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			p[j] = float32(e)
			sum += e
		}
		inv := 1 / sum
		for j := range p {
			p[j] = float32(float64(p[j]) * inv)
		}
		y := labels[b]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		// Clamp away from log(0); 1e-45 is below the smallest float32
		// subnormal, so any nonzero probability passes through untouched.
		py := float64(p[y])
		if py < 1e-45 {
			py = 1e-45
		}
		loss -= math.Log(py)
		g := grad.Row(b)
		for j := range g {
			g[j] = float32(float64(p[j]) * invB)
		}
		g[y] -= float32(invB)
	}
	return loss * invB, grad, probs
}

// Accuracy32 returns the fraction of rows whose argmax logit matches the
// label, with the same strict-greater tie-breaking as Accuracy.
func Accuracy32(logits *tensor.Tensor32, labels []int) float64 {
	if len(logits.Shape) != 2 || logits.Shape[0] != len(labels) {
		panic(fmt.Sprintf("nn: Accuracy32 shape mismatch %v vs %d labels", logits.Shape, len(labels)))
	}
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for b := range labels {
		row := logits.Row(b)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[b] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

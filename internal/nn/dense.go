package nn

import (
	"fmt"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b. Forward and Backward
// write into persistent per-layer workspaces (out, gwTmp, gx), so a
// steady-state training step allocates nothing; returned tensors are
// valid only until the layer's next Forward/Backward call.
type Dense struct {
	In, Out int
	W       *tensor.Tensor // (Out, In)
	B       *tensor.Tensor // (Out)
	gw, gb  *tensor.Tensor
	x       *tensor.Tensor // cached input for backward

	out   ws // forward output (batch, Out)
	gwTmp ws // per-call weight gradient, accumulated into gw
	gx    ws // input gradient (batch, In)
}

// NewDense constructs a Dense layer with He initialization.
func NewDense(in, out int, r *rng.Rng) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense dims must be positive, got %d→%d", in, out))
	}
	d := &Dense{
		In: in, Out: out,
		W:  tensor.New(out, in),
		B:  tensor.New(out),
		gw: tensor.New(out, in),
		gb: tensor.New(out),
	}
	HeInit(d.W, in, r)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d→%d)", d.In, d.Out) }

// OutDim implements Layer.
func (d *Dense) OutDim() int { return d.Out }

// Forward implements Layer: y = x·Wᵀ + b over the batch, reading W in
// place via the transposed-operand kernel.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(d, "", x, d.In)
	d.x = x
	batch := x.Shape[0]
	y := d.out.get(batch, d.Out)
	tensor.MatMulTransBInto(y, x, d.W)
	for i := 0; i < batch; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += d.B.Data[j]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense.Backward called before Forward")
	}
	checkBatchInput(d, " backward", gradOut, d.Out)
	// gW += gyᵀ·x ; gb += column sums of gy ; gx = gy·W
	gw := d.gwTmp.get(d.Out, d.In)
	tensor.MatMulTransAInto(gw, gradOut, d.x)
	d.gw.AddScaled(gw, 1)
	batch := gradOut.Shape[0]
	for i := 0; i < batch; i++ {
		row := gradOut.Row(i)
		for j, v := range row {
			d.gb.Data[j] += v
		}
	}
	gx := d.gx.get(batch, d.In)
	tensor.MatMulInto(gx, gradOut, d.W)
	return gx
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.gw, d.gb} }

package nn

import "fmt"

// FlattenParams concatenates every parameter of the network into a single
// []float64 in layer order — the vector representation federated
// aggregation and clustering operate on.
func FlattenParams(s *Sequential) []float64 {
	out := make([]float64, 0, s.NumParams())
	for _, p := range s.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// FlattenParamsInto writes the network's parameters into dst in the same
// layer order as FlattenParams, without allocating. dst must have length
// exactly s.NumParams(). Returns dst.
func FlattenParamsInto(s *Sequential, dst []float64) []float64 {
	if len(dst) != s.NumParams() {
		panic(fmt.Sprintf("nn: FlattenParamsInto length %d, want %d", len(dst), s.NumParams()))
	}
	off := 0
	for _, p := range s.Params() {
		copy(dst[off:off+p.Size()], p.Data)
		off += p.Size()
	}
	return dst
}

// FlattenGrads concatenates every gradient, aligned with FlattenParams.
func FlattenGrads(s *Sequential) []float64 {
	out := make([]float64, 0, s.NumParams())
	for _, g := range s.Grads() {
		out = append(out, g.Data...)
	}
	return out
}

// LoadParams copies a flat vector produced by FlattenParams back into the
// network. It panics if the length does not match.
func LoadParams(s *Sequential, vec []float64) {
	if len(vec) != s.NumParams() {
		panic(fmt.Sprintf("nn: LoadParams length %d, want %d", len(vec), s.NumParams()))
	}
	off := 0
	for _, p := range s.Params() {
		copy(p.Data, vec[off:off+p.Size()])
		off += p.Size()
	}
}

// WeightLayers returns the indices (into s.Layers) of layers that carry
// parameters, in order. The paper's "layer k weights" refers to the k-th
// entry of this list (1-based in the paper's figures), and "final layer"
// is the last entry — the classifier.
func WeightLayers(s *Sequential) []int {
	var out []int
	for i, l := range s.Layers {
		if len(l.Params()) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// LayerParamVector returns the flattened parameters of the k-th weight
// layer (0-based index into WeightLayers). This is the "strategically
// selected partial model weights" a FedClust client uploads.
func LayerParamVector(s *Sequential, weightLayerIdx int) []float64 {
	wl := WeightLayers(s)
	if weightLayerIdx < 0 || weightLayerIdx >= len(wl) {
		panic(fmt.Sprintf("nn: weight layer index %d out of range [0,%d)", weightLayerIdx, len(wl)))
	}
	layer := s.Layers[wl[weightLayerIdx]]
	var out []float64
	for _, p := range layer.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// FinalLayerVector returns the flattened parameters of the last weight
// layer — FedClust's default clustering feature.
func FinalLayerVector(s *Sequential) []float64 {
	wl := WeightLayers(s)
	if len(wl) == 0 {
		panic("nn: network has no weight layers")
	}
	return LayerParamVector(s, len(wl)-1)
}

// LayerParamSize returns the number of scalars in the k-th weight layer.
func LayerParamSize(s *Sequential, weightLayerIdx int) int {
	wl := WeightLayers(s)
	if weightLayerIdx < 0 || weightLayerIdx >= len(wl) {
		panic(fmt.Sprintf("nn: weight layer index %d out of range [0,%d)", weightLayerIdx, len(wl)))
	}
	n := 0
	for _, p := range s.Layers[wl[weightLayerIdx]].Params() {
		n += p.Size()
	}
	return n
}

// NumWeightLayers returns how many parameterized layers the network has.
func NumWeightLayers(s *Sequential) int { return len(WeightLayers(s)) }

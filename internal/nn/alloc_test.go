//go:build !race

// Steady-state allocation regression for the full LeNet training step.
// PR 2 left 9 allocs/op on BenchmarkLeNetForwardBackward: the conv
// backward path's large matmuls crossed the parallel threshold and the
// old goroutine-per-call dispatch heap-allocated its row closures. The
// executor-backed dispatch is closure-free, so the whole step must now
// be allocation-free — including when the parallel branch is taken.
// Excluded under -race because the race runtime instruments allocations.

package nn

import (
	"runtime"
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// lenetStep returns a warm closed-over LeNet forward+backward step on
// the benchmark geometry (batch 32, 3×16×16 inputs, 10 classes).
func lenetStep() func() {
	r := rng.New(1)
	net := LeNet5(r, 3, 16, 16, 10, 0.5)
	var ce SoftmaxCE
	x := tensor.New(32, 3*16*16)
	labels := make([]int, 32)
	step := func() {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad, _ := ce.Loss(logits, labels)
		net.Backward(grad)
	}
	step() // warm every layer workspace
	return step
}

// TestLeNetForwardBackwardZeroAllocs covers the serial dispatch (as on
// GOMAXPROCS=1 machines) and, separately, the executor-backed parallel
// dispatch that the conv layers' large matmuls take on multicore hosts.
func TestLeNetForwardBackwardZeroAllocs(t *testing.T) {
	step := lenetStep()
	if n := testing.AllocsPerRun(30, step); n != 0 {
		t.Fatalf("warm LeNet forward+backward allocates %v times, want 0", n)
	}

	old := runtime.GOMAXPROCS(4) // force the parallel branch of splitRows
	defer runtime.GOMAXPROCS(old)
	step = lenetStep()
	if n := testing.AllocsPerRun(30, step); n != 0 {
		t.Fatalf("warm LeNet step with parallel matmul dispatch allocates %v times, want 0", n)
	}
}

package nn

import (
	"fmt"
	"math"

	"fedclust/internal/tensor"
)

// SoftmaxCE couples the softmax activation with cross-entropy loss, the
// standard classification head. It is not a Layer: it terminates the
// network and produces both the scalar loss and the gradient that seeds
// backprop.
//
// The zero value is ready to use. Loss writes into workspaces owned by
// the receiver, so the returned grad and probs tensors are valid only
// until the next Loss call, and a SoftmaxCE must not be copied after
// first use or shared across goroutines.
type SoftmaxCE struct {
	gradWS, probsWS ws
}

// Loss computes mean cross-entropy over the batch given raw logits
// (batch, classes) and integer labels, returning the loss, the gradient
// with respect to the logits (already divided by batch size), and the
// softmax probabilities.
func (ce *SoftmaxCE) Loss(logits *tensor.Tensor, labels []int) (loss float64, grad, probs *tensor.Tensor) {
	if len(logits.Shape) != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCE expects (batch, classes) logits, got %v", logits.Shape))
	}
	batch, classes := logits.Shape[0], logits.Shape[1]
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: SoftmaxCE got %d labels for batch of %d", len(labels), batch))
	}
	probs = ce.probsWS.get(batch, classes)
	grad = ce.gradWS.get(batch, classes)
	invB := 1 / float64(batch)
	for b := 0; b < batch; b++ {
		row := logits.Row(b)
		p := probs.Row(b)
		// stable softmax
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxV)
			p[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range p {
			p[j] *= inv
		}
		y := labels[b]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		// loss contribution: -log p[y], clamped away from log(0)
		py := p[y]
		if py < 1e-300 {
			py = 1e-300
		}
		loss -= math.Log(py)
		g := grad.Row(b)
		for j := range g {
			g[j] = p[j] * invB
		}
		g[y] -= invB
	}
	return loss * invB, grad, probs
}

// Accuracy returns the fraction of rows whose argmax logit matches the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	if len(logits.Shape) != 2 || logits.Shape[0] != len(labels) {
		panic(fmt.Sprintf("nn: Accuracy shape mismatch %v vs %d labels", logits.Shape, len(labels)))
	}
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for b := range labels {
		row := logits.Row(b)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[b] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

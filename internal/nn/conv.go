package nn

import (
	"fmt"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Conv2D is a 2-D convolution over flattened CHW inputs, implemented as a
// batched im2col + one large parallel matrix multiply. All intermediate
// matrices live in persistent per-layer workspaces, so a steady-state
// training step allocates nothing. Backward reuses the im2col workspace
// for the column gradient, which means Backward may be called at most
// once per Forward (the Layer contract already requires the matching
// Forward cache).
type Conv2D struct {
	Geom   tensor.ConvGeom
	OutC   int
	W      *tensor.Tensor // (OutC, InC*KH*KW)
	B      *tensor.Tensor // (OutC)
	gw, gb *tensor.Tensor
	batch  int

	cols  ws // (batch*outHW, rowLen) unrolled input; reused as gcols in Backward
	mm    ws // pixel-major matmul output y in Forward, de-interleaved gy in Backward
	out   ws // channel-major forward output (batch, OutC*outHW)
	gwTmp ws // per-call weight gradient, accumulated into gw
	gx    ws // input gradient (batch, InC*InH*InW)
}

// NewConv2D constructs a convolution with He initialization.
func NewConv2D(g tensor.ConvGeom, outC int, r *rng.Rng) *Conv2D {
	g.Validate()
	if outC <= 0 {
		panic(fmt.Sprintf("nn: Conv2D outC must be positive, got %d", outC))
	}
	rowLen := g.InC * g.KH * g.KW
	c := &Conv2D{
		Geom: g, OutC: outC,
		W:  tensor.New(outC, rowLen),
		B:  tensor.New(outC),
		gw: tensor.New(outC, rowLen),
		gb: tensor.New(outC),
	}
	HeInit(c.W, rowLen, r)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d→%d)", c.Geom.KH, c.Geom.KW, c.Geom.InC, c.OutC)
}

// InDim returns the expected flattened input width.
func (c *Conv2D) InDim() int { return c.Geom.InC * c.Geom.InH * c.Geom.InW }

// OutDim implements Layer: OutC × OutH × OutW.
func (c *Conv2D) OutDim() int { return c.OutC * c.Geom.OutH() * c.Geom.OutW() }

// Forward implements Layer. The output feature axis is channel-major CHW.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(c, "", x, c.InDim())
	batch := x.Shape[0]
	c.batch = batch
	outHW := c.Geom.OutH() * c.Geom.OutW()
	rowLen := c.Geom.InC * c.Geom.KH * c.Geom.KW
	// Unroll the whole batch into one tall matrix so a single parallel
	// matmul does all the arithmetic.
	cols := c.cols.get(batch*outHW, rowLen)
	for b := 0; b < batch; b++ {
		tensor.Im2ColInto(x.Row(b), c.Geom, cols.Data[b*outHW*rowLen:(b+1)*outHW*rowLen])
	}
	// (batch*outHW, rowLen) · (OutC, rowLen)ᵀ → (batch*outHW, OutC)
	y := c.mm.get(batch*outHW, c.OutC)
	tensor.MatMulTransBInto(y, cols, c.W)
	// Reorder to channel-major (batch, OutC*outHW) and add bias.
	out := c.out.get(batch, c.OutC*outHW)
	for b := 0; b < batch; b++ {
		dst := out.Row(b)
		for p := 0; p < outHW; p++ {
			src := y.Row(b*outHW + p)
			for ch := 0; ch < c.OutC; ch++ {
				dst[ch*outHW+p] = src[ch] + c.B.Data[ch]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.batch == 0 {
		panic("nn: Conv2D.Backward called before Forward")
	}
	checkBatchInput(c, " backward", gradOut, c.OutDim())
	batch := c.batch
	outHW := c.Geom.OutH() * c.Geom.OutW()
	rowLen := c.Geom.InC * c.Geom.KH * c.Geom.KW
	cols := c.cols.get(batch*outHW, rowLen) // forward's unrolled input
	// De-interleave gradOut back to pixel-major (batch*outHW, OutC).
	gy := c.mm.get(batch*outHW, c.OutC)
	for b := 0; b < batch; b++ {
		src := gradOut.Row(b)
		for p := 0; p < outHW; p++ {
			dst := gy.Row(b*outHW + p)
			for ch := 0; ch < c.OutC; ch++ {
				dst[ch] = src[ch*outHW+p]
			}
		}
	}
	// gW += gyᵀ·cols (OutC, rowLen); gB += column sums of gy.
	gw := c.gwTmp.get(c.OutC, rowLen)
	tensor.MatMulTransAInto(gw, gy, cols)
	c.gw.AddScaled(gw, 1)
	for i := 0; i < gy.Shape[0]; i++ {
		row := gy.Row(i)
		for ch, v := range row {
			c.gb.Data[ch] += v
		}
	}
	// gcols = gy·W (batch*outHW, rowLen), overwriting the cols workspace
	// (the unrolled input is no longer needed once gw is accumulated);
	// scatter back with col2im.
	tensor.MatMulInto(cols, gy, c.W)
	gx := c.gx.get(batch, c.InDim())
	gx.Zero()
	for b := 0; b < batch; b++ {
		tensor.Col2ImInto(cols.Data[b*outHW*rowLen:(b+1)*outHW*rowLen], c.Geom, gx.Row(b))
	}
	return gx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gw, c.gb} }

// MaxPool2 is a 2×2, stride-2 max pooling layer over CHW volumes.
type MaxPool2 struct {
	C, H, W int
	argmax  []int // flat input index of each output element's max
	batch   int
	out, gx ws
}

// NewMaxPool2 builds the layer for the given input volume. H and W must be
// even (the models in this repo arrange that).
func NewMaxPool2(c, h, w int) *MaxPool2 {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2 invalid volume %dx%dx%d", c, h, w))
	}
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: MaxPool2 requires even H and W, got %dx%d", h, w))
	}
	return &MaxPool2{C: c, H: h, W: w}
}

// Name implements Layer.
func (p *MaxPool2) Name() string { return fmt.Sprintf("maxpool2(%dx%dx%d)", p.C, p.H, p.W) }

// InDim returns the flattened input width.
func (p *MaxPool2) InDim() int { return p.C * p.H * p.W }

// OutDim implements Layer.
func (p *MaxPool2) OutDim() int { return p.C * (p.H / 2) * (p.W / 2) }

// Forward implements Layer.
func (p *MaxPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatchInput(p, "", x, p.InDim())
	batch := x.Shape[0]
	p.batch = batch
	oh, ow := p.H/2, p.W/2
	out := p.out.get(batch, p.OutDim())
	p.argmax = growInts(p.argmax, batch*p.OutDim())
	for b := 0; b < batch; b++ {
		in := x.Row(b)
		dst := out.Row(b)
		for c := 0; c < p.C; c++ {
			inBase := c * p.H * p.W
			outBase := c * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					i00 := inBase + (2*oy)*p.W + 2*ox
					i01 := i00 + 1
					i10 := i00 + p.W
					i11 := i10 + 1
					bi, bv := i00, in[i00]
					if in[i01] > bv {
						bi, bv = i01, in[i01]
					}
					if in[i10] > bv {
						bi, bv = i10, in[i10]
					}
					if in[i11] > bv {
						bi, bv = i11, in[i11]
					}
					oi := outBase + oy*ow + ox
					dst[oi] = bv
					p.argmax[b*p.OutDim()+oi] = bi
				}
			}
		}
	}
	return out
}

// Backward implements Layer: routes each gradient to its argmax position.
func (p *MaxPool2) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2.Backward called before Forward")
	}
	checkBatchInput(p, " backward", gradOut, p.OutDim())
	gx := p.gx.get(p.batch, p.InDim())
	gx.Zero()
	for b := 0; b < p.batch; b++ {
		src := gradOut.Row(b)
		dst := gx.Row(b)
		for oi, v := range src {
			dst[p.argmax[b*p.OutDim()+oi]] += v
		}
	}
	return gx
}

// Params implements Layer (none).
func (p *MaxPool2) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (p *MaxPool2) Grads() []*tensor.Tensor { return nil }

package nn

import (
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Per-layer micro-benchmarks for the training hot path. Forward-only and
// Forward+Backward variants are separate so the backward cost can be read
// off by subtraction; all report allocations because the steady-state
// training step is required to perform none (see alloc_test.go).

func randBatch(r *rng.Rng, batch, dim int) *tensor.Tensor {
	x := tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	return x
}

func BenchmarkDenseForward(b *testing.B) {
	r := rng.New(1)
	d := NewDense(256, 128, r)
	x := randBatch(r, 32, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Forward(x, true)
	}
}

func BenchmarkDenseForwardBackward(b *testing.B) {
	r := rng.New(1)
	d := NewDense(256, 128, r)
	x := randBatch(r, 32, 256)
	gy := randBatch(r, 32, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Forward(x, true)
		_ = d.Backward(gy)
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	r := rng.New(2)
	g := tensor.ConvGeom{InC: 3, InH: 16, InW: 16, KH: 5, KW: 5, Stride: 1, Pad: 2}
	c := NewConv2D(g, 8, r)
	x := randBatch(r, 16, 3*16*16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Forward(x, true)
	}
}

func BenchmarkConv2DForwardBackward(b *testing.B) {
	r := rng.New(2)
	g := tensor.ConvGeom{InC: 3, InH: 16, InW: 16, KH: 5, KW: 5, Stride: 1, Pad: 2}
	c := NewConv2D(g, 8, r)
	x := randBatch(r, 16, 3*16*16)
	gy := randBatch(r, 16, c.OutDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Forward(x, true)
		_ = c.Backward(gy)
	}
}

func BenchmarkReLUForwardBackward(b *testing.B) {
	r := rng.New(3)
	l := NewReLU(4096)
	x := randBatch(r, 32, 4096)
	gy := randBatch(r, 32, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Forward(x, true)
		_ = l.Backward(gy)
	}
}

func BenchmarkMaxPool2ForwardBackward(b *testing.B) {
	r := rng.New(4)
	p := NewMaxPool2(8, 16, 16)
	x := randBatch(r, 32, 8*16*16)
	gy := randBatch(r, 32, p.OutDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Forward(x, true)
		_ = p.Backward(gy)
	}
}

// Package data provides the dataset substrate of the reproduction: a
// compact in-memory labeled dataset type with batching, and synthetic
// class-conditional image generators standing in for CIFAR-10, Fashion-
// MNIST, and SVHN (see DESIGN.md §2 for why the substitution preserves the
// clustered-FL behaviour the paper studies).
package data

import (
	"fmt"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Dataset is an in-memory labeled dataset of flattened CHW images.
//
// A Dataset (including its cached batchers) may be used by one goroutine
// at a time; the simulator's per-client ownership — each client is
// processed by exactly one executor worker per phase — provides that
// naturally.
type Dataset struct {
	Name    string
	X       *tensor.Tensor // (n, C*H*W)
	Y       []int          // length n, values in [0, Classes)
	Classes int
	C, H, W int

	// batchers caches one Batcher per batch size seen (a dataset sees at
	// most a couple: the training batch and the evaluation batch).
	batchers []*Batcher

	// x32 is the lazily built float32 copy of X backing Batcher32 (the
	// float32 compute path); single-goroutine ownership makes the lazy
	// fill safe without synchronization. batchers32 mirrors batchers.
	x32        []float32
	batchers32 []*Batcher32
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Dim returns the flattened feature width.
func (d *Dataset) Dim() int { return d.C * d.H * d.W }

// Validate panics if the dataset is internally inconsistent.
func (d *Dataset) Validate() {
	if d.X.Shape[0] != len(d.Y) {
		panic(fmt.Sprintf("data: %s has %d rows but %d labels", d.Name, d.X.Shape[0], len(d.Y)))
	}
	if d.X.Shape[1] != d.Dim() {
		panic(fmt.Sprintf("data: %s feature width %d != C*H*W %d", d.Name, d.X.Shape[1], d.Dim()))
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			panic(fmt.Sprintf("data: %s label %d at row %d out of range", d.Name, y, i))
		}
	}
}

// Subset returns a new dataset containing the given rows (copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:    d.Name,
		X:       tensor.New(len(idx), d.Dim()),
		Y:       make([]int, len(idx)),
		Classes: d.Classes,
		C:       d.C, H: d.H, W: d.W,
	}
	for i, src := range idx {
		copy(out.X.Row(i), d.X.Row(src))
		out.Y[i] = d.Y[src]
	}
	return out
}

// LabelHistogram returns the per-class example counts.
func (d *Dataset) LabelHistogram() []int {
	h := make([]int, d.Classes)
	for _, y := range d.Y {
		h[y]++
	}
	return h
}

// LabelDistribution returns the per-class proportions (sums to 1 for
// non-empty datasets).
func (d *Dataset) LabelDistribution() []float64 {
	h := d.LabelHistogram()
	p := make([]float64, len(h))
	if d.Len() == 0 {
		return p
	}
	inv := 1 / float64(d.Len())
	for i, c := range h {
		p[i] = float64(c) * inv
	}
	return p
}

// Batch is one minibatch: inputs plus labels.
type Batch struct {
	X *tensor.Tensor
	Y []int
}

// Batches splits the dataset into shuffled minibatches of at most size
// examples. The final partial batch is included. A nil rng disables
// shuffling (deterministic order).
func (d *Dataset) Batches(size int, r *rng.Rng) []Batch {
	if size <= 0 {
		panic(fmt.Sprintf("data: batch size must be positive, got %d", size))
	}
	n := d.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if r != nil {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	var out []Batch
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		b := Batch{X: tensor.New(hi-lo, d.Dim()), Y: make([]int, hi-lo)}
		for i := lo; i < hi; i++ {
			copy(b.X.Row(i-lo), d.X.Row(order[i]))
			b.Y[i-lo] = d.Y[order[i]]
		}
		out = append(out, b)
	}
	return out
}

// Batcher is the reusable-view counterpart of Batches: it cuts the
// dataset into the same shuffled minibatches but copies each batch into
// one persistent backing buffer instead of materializing every batch of
// every epoch. Next therefore yields views — a returned Batch is valid
// only until the next Next or Reset call — and a warm epoch performs no
// heap allocations.
type Batcher struct {
	d     *Dataset
	size  int
	order []int
	pos   int
	full  *tensor.Tensor // (size, dim) view over the backing buffer
	tail  *tensor.Tensor // (n%size, dim) view over its prefix; nil if n%size == 0
	y     []int
}

// Batcher returns the dataset's cached batcher for the given size,
// building it on first use. The cache keeps one batcher per distinct
// size, so alternating training and evaluation passes both stay warm.
func (d *Dataset) Batcher(size int) *Batcher {
	for _, b := range d.batchers {
		if b.size == size {
			return b
		}
	}
	b := newBatcher(d, size)
	d.batchers = append(d.batchers, b)
	return b
}

// newBatcher sizes the backing buffer and batch views for the dataset.
func newBatcher(d *Dataset, size int) *Batcher {
	if size <= 0 {
		panic(fmt.Sprintf("data: batch size must be positive, got %d", size))
	}
	n, dim := d.Len(), d.Dim()
	rows := size
	if n < size {
		rows = n
	}
	b := &Batcher{
		d: d, size: size,
		order: make([]int, n),
		pos:   n, // exhausted until the first Reset
		y:     make([]int, rows),
	}
	buf := make([]float64, rows*dim)
	if n >= size {
		b.full = tensor.FromSlice(buf, size, dim)
	}
	if rem := n % size; rem != 0 {
		b.tail = tensor.FromSlice(buf[:rem*dim], rem, dim)
	}
	return b
}

// Reset rewinds the batcher for a new epoch, reshuffling with r exactly
// as Batches does (each epoch shuffles the identity order, so the stream
// consumption — and therefore the batch composition — is identical). A
// nil rng yields deterministic order.
func (b *Batcher) Reset(r *rng.Rng) {
	b.pos = 0
	for i := range b.order {
		b.order[i] = i
	}
	if r != nil {
		r.Shuffle(len(b.order), func(i, j int) { b.order[i], b.order[j] = b.order[j], b.order[i] })
	}
}

// Next copies the next minibatch into the reused view and returns it,
// or ok=false when the epoch is exhausted. The final partial batch is
// included, as a smaller view over the same buffer.
func (b *Batcher) Next() (batch Batch, ok bool) {
	n := b.d.Len()
	if b.pos >= n {
		return Batch{}, false
	}
	hi := b.pos + b.size
	x := b.full
	if hi > n {
		hi = n
		x = b.tail
	}
	count := hi - b.pos
	for i := 0; i < count; i++ {
		src := b.order[b.pos+i]
		copy(x.Row(i), b.d.X.Row(src))
		b.y[i] = b.d.Y[src]
	}
	b.pos = hi
	return Batch{X: x, Y: b.y[:count]}, true
}

// Split partitions the dataset into two disjoint parts with the first
// receiving ceil(frac*n) shuffled examples — used for train/validation
// splits inside clients.
func (d *Dataset) Split(frac float64, r *rng.Rng) (*Dataset, *Dataset) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("data: split fraction %v out of [0,1]", frac))
	}
	n := d.Len()
	order := r.Perm(n)
	cut := int(frac*float64(n) + 0.999999)
	if cut > n {
		cut = n
	}
	return d.Subset(order[:cut]), d.Subset(order[cut:])
}

// Merge concatenates datasets with identical geometry into one.
func Merge(parts ...*Dataset) *Dataset {
	if len(parts) == 0 {
		panic("data: Merge of nothing")
	}
	first := parts[0]
	total := 0
	for _, p := range parts {
		if p.Dim() != first.Dim() || p.Classes != first.Classes {
			panic("data: Merge with mismatched geometry")
		}
		total += p.Len()
	}
	out := &Dataset{
		Name:    first.Name,
		X:       tensor.New(total, first.Dim()),
		Y:       make([]int, total),
		Classes: first.Classes,
		C:       first.C, H: first.H, W: first.W,
	}
	row := 0
	for _, p := range parts {
		for i := 0; i < p.Len(); i++ {
			copy(out.X.Row(row), p.X.Row(i))
			out.Y[row] = p.Y[i]
			row++
		}
	}
	return out
}

// FilterClasses returns the subset of d whose labels are in keep.
func (d *Dataset) FilterClasses(keep []int) *Dataset {
	set := make(map[int]bool, len(keep))
	for _, k := range keep {
		set[k] = true
	}
	var idx []int
	for i, y := range d.Y {
		if set[y] {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx)
}

// Package data provides the dataset substrate of the reproduction: a
// compact in-memory labeled dataset type with batching, and synthetic
// class-conditional image generators standing in for CIFAR-10, Fashion-
// MNIST, and SVHN (see DESIGN.md §2 for why the substitution preserves the
// clustered-FL behaviour the paper studies).
package data

import (
	"fmt"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Dataset is an in-memory labeled dataset of flattened CHW images.
type Dataset struct {
	Name    string
	X       *tensor.Tensor // (n, C*H*W)
	Y       []int          // length n, values in [0, Classes)
	Classes int
	C, H, W int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Dim returns the flattened feature width.
func (d *Dataset) Dim() int { return d.C * d.H * d.W }

// Validate panics if the dataset is internally inconsistent.
func (d *Dataset) Validate() {
	if d.X.Shape[0] != len(d.Y) {
		panic(fmt.Sprintf("data: %s has %d rows but %d labels", d.Name, d.X.Shape[0], len(d.Y)))
	}
	if d.X.Shape[1] != d.Dim() {
		panic(fmt.Sprintf("data: %s feature width %d != C*H*W %d", d.Name, d.X.Shape[1], d.Dim()))
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			panic(fmt.Sprintf("data: %s label %d at row %d out of range", d.Name, y, i))
		}
	}
}

// Subset returns a new dataset containing the given rows (copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:    d.Name,
		X:       tensor.New(len(idx), d.Dim()),
		Y:       make([]int, len(idx)),
		Classes: d.Classes,
		C:       d.C, H: d.H, W: d.W,
	}
	for i, src := range idx {
		copy(out.X.Row(i), d.X.Row(src))
		out.Y[i] = d.Y[src]
	}
	return out
}

// LabelHistogram returns the per-class example counts.
func (d *Dataset) LabelHistogram() []int {
	h := make([]int, d.Classes)
	for _, y := range d.Y {
		h[y]++
	}
	return h
}

// LabelDistribution returns the per-class proportions (sums to 1 for
// non-empty datasets).
func (d *Dataset) LabelDistribution() []float64 {
	h := d.LabelHistogram()
	p := make([]float64, len(h))
	if d.Len() == 0 {
		return p
	}
	inv := 1 / float64(d.Len())
	for i, c := range h {
		p[i] = float64(c) * inv
	}
	return p
}

// Batch is one minibatch: inputs plus labels.
type Batch struct {
	X *tensor.Tensor
	Y []int
}

// Batches splits the dataset into shuffled minibatches of at most size
// examples. The final partial batch is included. A nil rng disables
// shuffling (deterministic order).
func (d *Dataset) Batches(size int, r *rng.Rng) []Batch {
	if size <= 0 {
		panic(fmt.Sprintf("data: batch size must be positive, got %d", size))
	}
	n := d.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if r != nil {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	var out []Batch
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		b := Batch{X: tensor.New(hi-lo, d.Dim()), Y: make([]int, hi-lo)}
		for i := lo; i < hi; i++ {
			copy(b.X.Row(i-lo), d.X.Row(order[i]))
			b.Y[i-lo] = d.Y[order[i]]
		}
		out = append(out, b)
	}
	return out
}

// Split partitions the dataset into two disjoint parts with the first
// receiving ceil(frac*n) shuffled examples — used for train/validation
// splits inside clients.
func (d *Dataset) Split(frac float64, r *rng.Rng) (*Dataset, *Dataset) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("data: split fraction %v out of [0,1]", frac))
	}
	n := d.Len()
	order := r.Perm(n)
	cut := int(frac*float64(n) + 0.999999)
	if cut > n {
		cut = n
	}
	return d.Subset(order[:cut]), d.Subset(order[cut:])
}

// Merge concatenates datasets with identical geometry into one.
func Merge(parts ...*Dataset) *Dataset {
	if len(parts) == 0 {
		panic("data: Merge of nothing")
	}
	first := parts[0]
	total := 0
	for _, p := range parts {
		if p.Dim() != first.Dim() || p.Classes != first.Classes {
			panic("data: Merge with mismatched geometry")
		}
		total += p.Len()
	}
	out := &Dataset{
		Name:    first.Name,
		X:       tensor.New(total, first.Dim()),
		Y:       make([]int, total),
		Classes: first.Classes,
		C:       first.C, H: first.H, W: first.W,
	}
	row := 0
	for _, p := range parts {
		for i := 0; i < p.Len(); i++ {
			copy(out.X.Row(row), p.X.Row(i))
			out.Y[row] = p.Y[i]
			row++
		}
	}
	return out
}

// FilterClasses returns the subset of d whose labels are in keep.
func (d *Dataset) FilterClasses(keep []int) *Dataset {
	set := make(map[int]bool, len(keep))
	for _, k := range keep {
		set[k] = true
	}
	var idx []int
	for i, y := range d.Y {
		if set[y] {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx)
}

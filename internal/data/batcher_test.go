package data

import (
	"testing"

	"fedclust/internal/rng"
)

// TestBatcherMatchesBatches pins the bit-exact property LocalUpdate's
// refactor rests on: given the same rng stream, the Batcher yields the
// same batches in the same order as the materializing Batches, epoch
// after epoch (each Reset reshuffles the identity order exactly as
// Batches does).
func TestBatcherMatchesBatches(t *testing.T) {
	d := toyDataset(23, 4)
	rA, rB := rng.New(7), rng.New(7)
	bt := d.Batcher(5)
	for epoch := 0; epoch < 3; epoch++ {
		want := d.Batches(5, rA)
		bt.Reset(rB)
		for i, wb := range want {
			gb, ok := bt.Next()
			if !ok {
				t.Fatalf("epoch %d: Batcher exhausted at batch %d/%d", epoch, i, len(want))
			}
			if gb.X.Shape[0] != wb.X.Shape[0] || gb.X.Shape[1] != wb.X.Shape[1] {
				t.Fatalf("epoch %d batch %d: shape %v, want %v", epoch, i, gb.X.Shape, wb.X.Shape)
			}
			for j := range wb.X.Data {
				if gb.X.Data[j] != wb.X.Data[j] {
					t.Fatalf("epoch %d batch %d: X differs at %d", epoch, i, j)
				}
			}
			for j := range wb.Y {
				if gb.Y[j] != wb.Y[j] {
					t.Fatalf("epoch %d batch %d: Y differs at %d", epoch, i, j)
				}
			}
		}
		if _, ok := bt.Next(); ok {
			t.Fatalf("epoch %d: Batcher yielded extra batch", epoch)
		}
	}
}

// TestBatcherDeterministicNilRng mirrors Batches' nil-rng contract.
func TestBatcherDeterministicNilRng(t *testing.T) {
	d := toyDataset(10, 3)
	bt := d.Batcher(4)
	bt.Reset(nil)
	row := 0
	for {
		b, ok := bt.Next()
		if !ok {
			break
		}
		for i := range b.Y {
			if b.Y[i] != d.Y[row] {
				t.Fatalf("nil-rng order broken at row %d", row)
			}
			row++
		}
	}
	if row != d.Len() {
		t.Fatalf("saw %d rows, want %d", row, d.Len())
	}
}

// TestBatcherSmallerThanBatch covers n < size: one partial batch.
func TestBatcherSmallerThanBatch(t *testing.T) {
	d := toyDataset(3, 2)
	bt := d.Batcher(8)
	bt.Reset(nil)
	b, ok := bt.Next()
	if !ok || b.X.Shape[0] != 3 || len(b.Y) != 3 {
		t.Fatalf("single partial batch wrong: ok=%v shape=%v", ok, b.X.Shape)
	}
	if _, ok := bt.Next(); ok {
		t.Fatal("extra batch after exhaustion")
	}
}

// TestBatcherCachePerSize verifies the per-size cache returns the same
// batcher for a repeated size and distinct ones for distinct sizes.
func TestBatcherCachePerSize(t *testing.T) {
	d := toyDataset(12, 2)
	if d.Batcher(4) != d.Batcher(4) {
		t.Fatal("same size should reuse the cached batcher")
	}
	if d.Batcher(4) == d.Batcher(6) {
		t.Fatal("distinct sizes must not share a batcher")
	}
}

// TestBatcherViewsAreReused pins the view semantics: a full-size batch
// returned by Next aliases the previous full-size batch's storage.
func TestBatcherViewsAreReused(t *testing.T) {
	d := toyDataset(12, 2)
	bt := d.Batcher(4)
	bt.Reset(nil)
	b1, _ := bt.Next()
	b2, _ := bt.Next()
	if &b1.X.Data[0] != &b2.X.Data[0] {
		t.Fatal("full batches should share the backing buffer")
	}
}

// TestBatcherZeroSizePanics mirrors Batches' validation.
func TestBatcherZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size 0 did not panic")
		}
	}()
	toyDataset(4, 2).Batcher(0)
}

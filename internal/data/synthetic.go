package data

import (
	"fmt"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// SynthConfig describes a synthetic class-conditional image distribution.
//
// Each class k is assigned a smooth random "prototype" image
// μ_k = background + ClassSep · smooth(white noise_k); a sample of class k
// is μ_k plus i.i.d. pixel noise of scale Noise. The ratio ClassSep/Noise
// sets the Bayes-achievable accuracy, which is how the three presets below
// emulate the relative difficulty of CIFAR-10, FMNIST and SVHN in the
// paper's Table I.
type SynthConfig struct {
	Name          string
	C, H, W       int
	Classes       int
	TrainPerClass int
	TestPerClass  int
	ClassSep      float64 // scale of the class-specific prototype component
	Noise         float64 // per-sample pixel noise
	SharedBG      float64 // scale of the background shared by all classes
	Smooth        int     // box-smoothing passes applied to prototypes
	Seed          uint64  // generator seed; same seed ⇒ same dataset
}

// Validate panics on degenerate configuration.
func (c SynthConfig) Validate() {
	if c.C <= 0 || c.H <= 0 || c.W <= 0 {
		panic(fmt.Sprintf("data: invalid image geometry %dx%dx%d", c.C, c.H, c.W))
	}
	if c.Classes < 2 {
		panic(fmt.Sprintf("data: need >=2 classes, got %d", c.Classes))
	}
	if c.TrainPerClass < 1 || c.TestPerClass < 1 {
		panic(fmt.Sprintf("data: per-class counts must be positive: %d/%d", c.TrainPerClass, c.TestPerClass))
	}
	if c.Noise < 0 || c.ClassSep < 0 {
		panic("data: negative noise/separation")
	}
}

// SynthCIFAR10 emulates CIFAR-10: 3-channel images, 10 classes, low
// separation-to-noise ratio (the hardest of the three; the paper's
// absolute accuracies there are lowest).
func SynthCIFAR10(seed uint64) SynthConfig {
	return SynthConfig{
		Name: "synth-cifar10", C: 3, H: 16, W: 16, Classes: 10,
		TrainPerClass: 300, TestPerClass: 80,
		ClassSep: 0.45, Noise: 1.1, SharedBG: 0.5, Smooth: 2, Seed: seed,
	}
}

// SynthFMNIST emulates Fashion-MNIST: single-channel, 10 classes, high
// separation (the easiest of the three).
func SynthFMNIST(seed uint64) SynthConfig {
	return SynthConfig{
		Name: "synth-fmnist", C: 1, H: 16, W: 16, Classes: 10,
		TrainPerClass: 300, TestPerClass: 80,
		ClassSep: 1.0, Noise: 0.9, SharedBG: 0.4, Smooth: 2, Seed: seed,
	}
}

// SynthSVHN emulates SVHN: 3-channel digits with medium separation.
func SynthSVHN(seed uint64) SynthConfig {
	return SynthConfig{
		Name: "synth-svhn", C: 3, H: 16, W: 16, Classes: 10,
		TrainPerClass: 300, TestPerClass: 80,
		ClassSep: 0.7, Noise: 1.0, SharedBG: 0.6, Smooth: 2, Seed: seed,
	}
}

// prototypes builds the deterministic per-class prototype images of a
// configuration (the same for every split drawn from it).
func prototypes(cfg SynthConfig) [][]float64 {
	r := rng.New(cfg.Seed)
	dim := cfg.C * cfg.H * cfg.W

	// Shared background common to all classes (so classes are not
	// trivially orthogonal).
	bg := make([]float64, dim)
	bgRng := r.Derive(0xb6)
	for i := range bg {
		bg[i] = cfg.SharedBG * bgRng.NormFloat64()
	}
	smoothImage(bg, cfg.C, cfg.H, cfg.W, cfg.Smooth)

	protos := make([][]float64, cfg.Classes)
	for k := 0; k < cfg.Classes; k++ {
		pr := r.Derive(0xc1, uint64(k))
		p := make([]float64, dim)
		for i := range p {
			p[i] = cfg.ClassSep * pr.NormFloat64()
		}
		smoothImage(p, cfg.C, cfg.H, cfg.W, cfg.Smooth)
		for i := range p {
			p[i] += bg[i]
		}
		protos[k] = p
	}
	return protos
}

// genSplit draws perClass fresh examples per class around the prototypes,
// using streamLabel to separate independent splits.
func genSplit(cfg SynthConfig, protos [][]float64, perClass int, streamLabel uint64) *Dataset {
	r := rng.New(cfg.Seed)
	dim := cfg.C * cfg.H * cfg.W
	n := perClass * cfg.Classes
	d := &Dataset{
		Name:    cfg.Name,
		X:       tensor.New(n, dim),
		Y:       make([]int, n),
		Classes: cfg.Classes,
		C:       cfg.C, H: cfg.H, W: cfg.W,
	}
	row := 0
	for k := 0; k < cfg.Classes; k++ {
		sr := r.Derive(streamLabel, uint64(k))
		for i := 0; i < perClass; i++ {
			dst := d.X.Row(row)
			for j := range dst {
				dst[j] = protos[k][j] + cfg.Noise*sr.NormFloat64()
			}
			d.Y[row] = k
			row++
		}
	}
	// Shuffle rows so class order carries no information.
	shuffleRng := r.Derive(streamLabel, 0xff)
	order := shuffleRng.Perm(n)
	return d.Subset(order)
}

// Generate materializes the train and test splits of a synthetic
// distribution. Generation is fully deterministic in cfg.Seed.
func Generate(cfg SynthConfig) (train, test *Dataset) {
	cfg.Validate()
	protos := prototypes(cfg)
	return genSplit(cfg, protos, cfg.TrainPerClass, 0x7a),
		genSplit(cfg, protos, cfg.TestPerClass, 0x7e)
}

// GenerateExtra materializes an additional independent split drawn from
// the same class prototypes as Generate(cfg) — e.g. data for clients that
// join after training started. streamLabel distinguishes independent
// extra splits; the reserved labels 0x7a (train) and 0x7e (test) reproduce
// the primary splits.
func GenerateExtra(cfg SynthConfig, streamLabel uint64, perClass int) *Dataset {
	cfg.Validate()
	if perClass < 1 {
		panic(fmt.Sprintf("data: GenerateExtra perClass = %d", perClass))
	}
	return genSplit(cfg, prototypes(cfg), perClass, streamLabel)
}

// smoothImage applies `passes` rounds of 3×3 box smoothing per channel,
// giving prototypes the local spatial correlation natural images have
// (which is what gives convolutions an edge over flat models).
func smoothImage(img []float64, c, h, w int, passes int) {
	if passes <= 0 {
		return
	}
	tmp := make([]float64, len(img))
	for p := 0; p < passes; p++ {
		for ch := 0; ch < c; ch++ {
			base := ch * h * w
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					var sum float64
					var cnt int
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							ny, nx := y+dy, x+dx
							if ny < 0 || ny >= h || nx < 0 || nx >= w {
								continue
							}
							sum += img[base+ny*w+nx]
							cnt++
						}
					}
					tmp[base+y*w+x] = sum / float64(cnt)
				}
			}
		}
		copy(img, tmp)
	}
	// Renormalize to preserve overall energy removed by averaging.
	var norm float64
	for _, v := range img {
		norm += v * v
	}
	if norm > 0 {
		scale := 1.0
		// Smoothing shrinks variance roughly 3x per pass; rescale to unit-ish.
		for p := 0; p < passes; p++ {
			scale *= 1.7
		}
		for i := range img {
			img[i] *= scale
		}
	}
}

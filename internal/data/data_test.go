package data

import (
	"math"
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

func toyDataset(n, classes int) *Dataset {
	d := &Dataset{
		Name: "toy", X: tensor.New(n, 4), Y: make([]int, n),
		Classes: classes, C: 1, H: 2, W: 2,
	}
	for i := 0; i < n; i++ {
		d.Y[i] = i % classes
		for j := 0; j < 4; j++ {
			d.X.Set(float64(i*10+j), i, j)
		}
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	d := toyDataset(10, 2)
	d.Validate() // must not panic
	d.Y[0] = 5
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	d.Validate()
}

func TestSubsetCopies(t *testing.T) {
	d := toyDataset(10, 2)
	s := d.Subset([]int{3, 7})
	if s.Len() != 2 || s.Y[0] != 1 || s.Y[1] != 1 {
		t.Fatalf("subset labels = %v", s.Y)
	}
	if s.X.At(0, 0) != 30 || s.X.At(1, 0) != 70 {
		t.Fatal("subset rows wrong")
	}
	s.X.Set(-1, 0, 0)
	if d.X.At(3, 0) != 30 {
		t.Fatal("Subset must copy, not alias")
	}
}

func TestLabelHistogramAndDistribution(t *testing.T) {
	d := toyDataset(10, 2)
	h := d.LabelHistogram()
	if h[0] != 5 || h[1] != 5 {
		t.Fatalf("histogram = %v", h)
	}
	p := d.LabelDistribution()
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Fatalf("distribution = %v", p)
	}
}

func TestBatchesCoverAllExamplesOnce(t *testing.T) {
	d := toyDataset(10, 3)
	batches := d.Batches(4, rng.New(1))
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3 (4+4+2)", len(batches))
	}
	if batches[2].X.Shape[0] != 2 {
		t.Fatalf("final partial batch size %d", batches[2].X.Shape[0])
	}
	seen := make(map[float64]bool)
	for _, b := range batches {
		for i := 0; i < b.X.Shape[0]; i++ {
			seen[b.X.At(i, 0)] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("batches covered %d distinct rows, want 10", len(seen))
	}
}

func TestBatchesNilRngDeterministicOrder(t *testing.T) {
	d := toyDataset(6, 2)
	b := d.Batches(6, nil)
	for i := 0; i < 6; i++ {
		if b[0].X.At(i, 0) != float64(i*10) {
			t.Fatal("nil rng should preserve order")
		}
	}
}

func TestBatchesBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("batch size 0 did not panic")
		}
	}()
	toyDataset(4, 2).Batches(0, nil)
}

func TestSplitDisjointComplete(t *testing.T) {
	d := toyDataset(10, 2)
	a, b := d.Split(0.7, rng.New(2))
	if a.Len() != 7 || b.Len() != 3 {
		t.Fatalf("split sizes = %d/%d", a.Len(), b.Len())
	}
	seen := make(map[float64]bool)
	for _, part := range []*Dataset{a, b} {
		for i := 0; i < part.Len(); i++ {
			v := part.X.At(i, 0)
			if seen[v] {
				t.Fatal("split parts overlap")
			}
			seen[v] = true
		}
	}
	if len(seen) != 10 {
		t.Fatal("split lost examples")
	}
}

func TestMerge(t *testing.T) {
	d := toyDataset(6, 2)
	a, b := d.Split(0.5, rng.New(3))
	m := Merge(a, b)
	if m.Len() != 6 {
		t.Fatalf("merged length = %d", m.Len())
	}
}

func TestFilterClasses(t *testing.T) {
	d := toyDataset(10, 5)
	f := d.FilterClasses([]int{0, 2})
	if f.Len() != 4 {
		t.Fatalf("filtered length = %d, want 4", f.Len())
	}
	for _, y := range f.Y {
		if y != 0 && y != 2 {
			t.Fatalf("unexpected label %d after filter", y)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SynthFMNIST(42)
	cfg.TrainPerClass, cfg.TestPerClass = 5, 3
	tr1, te1 := Generate(cfg)
	tr2, te2 := Generate(cfg)
	if !tensor.Equal(tr1.X, tr2.X, 0) || !tensor.Equal(te1.X, te2.X, 0) {
		t.Fatal("same seed must generate identical data")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	tr3, _ := Generate(cfg2)
	if tensor.Equal(tr1.X, tr3.X, 1e-9) {
		t.Fatal("different seeds should generate different data")
	}
}

func TestGenerateShapesAndBalance(t *testing.T) {
	for _, cfg := range []SynthConfig{SynthCIFAR10(1), SynthFMNIST(1), SynthSVHN(1)} {
		cfg.TrainPerClass, cfg.TestPerClass = 8, 4
		tr, te := Generate(cfg)
		tr.Validate()
		te.Validate()
		if tr.Len() != 8*10 || te.Len() != 4*10 {
			t.Fatalf("%s sizes %d/%d", cfg.Name, tr.Len(), te.Len())
		}
		if tr.Dim() != cfg.C*16*16 {
			t.Fatalf("%s dim %d", cfg.Name, tr.Dim())
		}
		for k, c := range tr.LabelHistogram() {
			if c != 8 {
				t.Fatalf("%s class %d has %d train examples, want 8", cfg.Name, k, c)
			}
		}
	}
}

func TestGenerateClassStructureIsLearnable(t *testing.T) {
	// Nearest-prototype classification on the generated data should beat
	// chance by a wide margin — i.e. the class signal is real.
	cfg := SynthFMNIST(7)
	cfg.TrainPerClass, cfg.TestPerClass = 30, 10
	tr, te := Generate(cfg)
	// Estimate class means from train.
	dim := tr.Dim()
	means := make([][]float64, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for k := range means {
		means[k] = make([]float64, dim)
	}
	for i := 0; i < tr.Len(); i++ {
		y := tr.Y[i]
		counts[y]++
		row := tr.X.Row(i)
		for j, v := range row {
			means[y][j] += v
		}
	}
	for k := range means {
		for j := range means[k] {
			means[k][j] /= float64(counts[k])
		}
	}
	correct := 0
	for i := 0; i < te.Len(); i++ {
		row := te.X.Row(i)
		best, bestD := 0, math.Inf(1)
		for k := range means {
			var d float64
			for j, v := range row {
				dv := v - means[k][j]
				d += dv * dv
			}
			if d < bestD {
				best, bestD = k, d
			}
		}
		if best == te.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(te.Len())
	if acc < 0.5 {
		t.Fatalf("nearest-prototype accuracy %v, class structure too weak", acc)
	}
}

func TestGenerateDifficultyOrdering(t *testing.T) {
	// The presets must preserve the paper's difficulty ordering:
	// FMNIST easiest, CIFAR-10 hardest. We compare the ratio of
	// between-class prototype distance to noise.
	sep := func(cfg SynthConfig) float64 {
		cfg.TrainPerClass, cfg.TestPerClass = 40, 1
		tr, _ := Generate(cfg)
		dim := tr.Dim()
		means := make([][]float64, cfg.Classes)
		counts := make([]int, cfg.Classes)
		for k := range means {
			means[k] = make([]float64, dim)
		}
		for i := 0; i < tr.Len(); i++ {
			y := tr.Y[i]
			counts[y]++
			for j, v := range tr.X.Row(i) {
				means[y][j] += v
			}
		}
		var avg float64
		n := 0
		for a := 0; a < cfg.Classes; a++ {
			for j := range means[a] {
				means[a][j] /= float64(counts[a])
			}
		}
		for a := 0; a < cfg.Classes; a++ {
			for b := a + 1; b < cfg.Classes; b++ {
				var d float64
				for j := range means[a] {
					dv := means[a][j] - means[b][j]
					d += dv * dv
				}
				avg += math.Sqrt(d / float64(dim))
				n++
			}
		}
		return avg / float64(n) / cfg.Noise
	}
	cifar, fmnist, svhn := sep(SynthCIFAR10(5)), sep(SynthFMNIST(5)), sep(SynthSVHN(5))
	if !(fmnist > svhn && svhn > cifar) {
		t.Fatalf("difficulty ordering violated: cifar=%v svhn=%v fmnist=%v", cifar, svhn, fmnist)
	}
}

func TestSynthConfigValidate(t *testing.T) {
	bad := SynthFMNIST(1)
	bad.Classes = 1
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Generate(bad)
}

func TestGenerateExtraSharesPrototypes(t *testing.T) {
	cfg := SynthFMNIST(9)
	cfg.TrainPerClass, cfg.TestPerClass = 40, 10
	train, _ := Generate(cfg)
	extra := GenerateExtra(cfg, 0xabc, 40)
	extra.Validate()
	if extra.Len() != 400 {
		t.Fatalf("extra length = %d", extra.Len())
	}
	// Same prototypes: per-class means of the two splits must be close
	// (both are prototype + noise/sqrt(n)).
	meanOf := func(d *Dataset, class int) []float64 {
		m := make([]float64, d.Dim())
		n := 0
		for i := 0; i < d.Len(); i++ {
			if d.Y[i] != class {
				continue
			}
			n++
			for j, v := range d.X.Row(i) {
				m[j] += v
			}
		}
		for j := range m {
			m[j] /= float64(n)
		}
		return m
	}
	var dist, scale float64
	for k := 0; k < cfg.Classes; k++ {
		a, b := meanOf(train, k), meanOf(extra, k)
		for j := range a {
			d := a[j] - b[j]
			dist += d * d
			scale += a[j] * a[j]
		}
	}
	if dist > 0.25*scale {
		t.Fatalf("extra split means diverge from train means: %v vs scale %v", dist, scale)
	}
}

func TestGenerateExtraIndependentOfTrain(t *testing.T) {
	cfg := SynthFMNIST(10)
	cfg.TrainPerClass, cfg.TestPerClass = 10, 5
	train, _ := Generate(cfg)
	extra := GenerateExtra(cfg, 0xdef, 10)
	// The raw samples must differ (fresh noise), even though prototypes
	// are shared.
	same := 0
	for i := 0; i < train.Len() && i < extra.Len(); i++ {
		if train.X.At(i, 0) == extra.X.At(i, 0) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("extra split duplicates train samples (%d matches)", same)
	}
}

func TestGenerateExtraReservedLabelReproducesTrain(t *testing.T) {
	cfg := SynthSVHN(11)
	cfg.TrainPerClass, cfg.TestPerClass = 8, 4
	train, _ := Generate(cfg)
	same := GenerateExtra(cfg, 0x7a, 8)
	if !tensor.Equal(train.X, same.X, 0) {
		t.Fatal("stream label 0x7a should reproduce the train split")
	}
}

func TestGenerateExtraValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("perClass=0 did not panic")
		}
	}()
	GenerateExtra(SynthFMNIST(1), 0x1, 0)
}

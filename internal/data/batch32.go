package data

import (
	"fmt"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

// Batch32 is one float32 minibatch: inputs plus labels.
type Batch32 struct {
	X *tensor.Tensor32
	Y []int
}

// Batcher32 is the float32 mirror of Batcher: it cuts the dataset into
// shuffled minibatch views over one persistent float32 buffer, reading
// rows from the dataset's lazily built float32 feature copy. Reset
// consumes exactly the same shuffle draws as Batcher.Reset, so for the
// same epoch RNG the float32 path sees identical batch composition.
type Batcher32 struct {
	d     *Dataset
	size  int
	order []int
	pos   int
	full  *tensor.Tensor32
	tail  *tensor.Tensor32
	y     []int
}

// features32 returns the dataset's float32 feature matrix, building it
// on first use (one rounding per scalar; the float64 X stays canonical).
func (d *Dataset) features32() []float32 {
	if d.x32 == nil {
		d.x32 = make([]float32, len(d.X.Data))
		for i, v := range d.X.Data {
			d.x32[i] = float32(v)
		}
	}
	return d.x32
}

// Batcher32 returns the dataset's cached float32 batcher for the given
// size, building it on first use — the float32 analogue of Batcher.
func (d *Dataset) Batcher32(size int) *Batcher32 {
	for _, b := range d.batchers32 {
		if b.size == size {
			return b
		}
	}
	b := newBatcher32(d, size)
	d.batchers32 = append(d.batchers32, b)
	return b
}

// newBatcher32 sizes the backing buffer and batch views for the dataset.
func newBatcher32(d *Dataset, size int) *Batcher32 {
	if size <= 0 {
		panic(fmt.Sprintf("data: batch size must be positive, got %d", size))
	}
	n, dim := d.Len(), d.Dim()
	rows := size
	if n < size {
		rows = n
	}
	b := &Batcher32{
		d: d, size: size,
		order: make([]int, n),
		pos:   n, // exhausted until the first Reset
		y:     make([]int, rows),
	}
	buf := make([]float32, rows*dim)
	if n >= size {
		b.full = tensor.FromSlice32(buf, size, dim)
	}
	if rem := n % size; rem != 0 {
		b.tail = tensor.FromSlice32(buf[:rem*dim], rem, dim)
	}
	return b
}

// Reset rewinds the batcher for a new epoch, reshuffling with r exactly
// as Batcher.Reset does (identical stream consumption). A nil rng yields
// deterministic order.
func (b *Batcher32) Reset(r *rng.Rng) {
	b.pos = 0
	for i := range b.order {
		b.order[i] = i
	}
	if r != nil {
		r.Shuffle(len(b.order), func(i, j int) { b.order[i], b.order[j] = b.order[j], b.order[i] })
	}
}

// Next copies the next minibatch into the reused view and returns it, or
// ok=false when the epoch is exhausted.
func (b *Batcher32) Next() (batch Batch32, ok bool) {
	n := b.d.Len()
	if b.pos >= n {
		return Batch32{}, false
	}
	feats := b.d.features32()
	dim := b.d.Dim()
	hi := b.pos + b.size
	x := b.full
	if hi > n {
		hi = n
		x = b.tail
	}
	count := hi - b.pos
	for i := 0; i < count; i++ {
		src := b.order[b.pos+i]
		copy(x.Row(i), feats[src*dim:(src+1)*dim])
		b.y[i] = b.d.Y[src]
	}
	b.pos = hi
	return Batch32{X: x, Y: b.y[:count]}, true
}

// Package core implements FedClust, the paper's contribution: one-shot
// weight-driven client clustering for federated learning on non-IID data.
//
// The algorithm (paper §III, Fig. 2):
//
//  1. The server broadcasts initial global weights to all clients.
//  2. Each client trains locally for a few epochs and uploads only its
//     final-layer (classifier) weights — the "strategically selected
//     partial model weights" that implicitly encode the client's label
//     distribution (paper §II, Fig. 1).
//  3. The server builds the Euclidean proximity matrix over the uploaded
//     partial weights.
//  4. Agglomerative hierarchical clustering groups the clients — in one
//     communication round, with no predefined cluster count (the
//     dendrogram is cut at the silhouette-optimal level, preferring
//     coarser cuts when scores are comparable).
//  5. From then on each cluster trains independently with FedAvg.
//  6. Newcomers train locally once, upload final-layer weights, and are
//     assigned to the nearest cluster centroid in real time.
package core

import (
	"fmt"
	"math"

	"fedclust/internal/cluster"
	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/linalg"
	"fedclust/internal/nn"
	"fedclust/internal/tensor"
)

// Config controls the FedClust trainer. The zero value selects the
// paper's defaults: final-layer weights, Euclidean distance, average
// linkage, automatic (silhouette-based) cluster-count selection.
type Config struct {
	// WarmupEpochs is how many local epochs precede the one-shot
	// clustering upload (default: the environment's local epochs).
	WarmupEpochs int
	// WeightLayer selects which weight layer to cluster on (0-based
	// index into nn.WeightLayers) when ExplicitLayer is true. With
	// ExplicitLayer false (the zero-value default) the final/classifier
	// layer is used, as in the paper. The layer-ablation experiment sets
	// ExplicitLayer to probe other layers.
	WeightLayer   int
	ExplicitLayer bool
	// Metric is the proximity metric over partial weights (default
	// Euclidean, as in the paper).
	Metric linalg.Metric
	// Linkage for the HC step (default Average).
	Linkage cluster.Linkage
	// NumClusters, when > 0, fixes the dendrogram cut; otherwise the
	// silhouette-optimal count is chosen automatically (the paper's "no
	// predefined number of clusters" property).
	NumClusters int
	// MaxClusters bounds the automatic cut (default n/2, at least 2).
	MaxClusters int
	// Selector picks the automatic cluster-count rule used when
	// NumClusters is 0 (default SelectSilhouette).
	Selector Selector
	// RawFeatures disables the default feature normalization. By default
	// the clustering feature is the selected layer's *update* (weights
	// minus the shared initialization) scaled to unit norm: with a common
	// w₀ the update direction carries the label-distribution signal,
	// while its magnitude mostly reflects the client's local batch count
	// (dataset size), which would otherwise dominate the Euclidean
	// proximity matrix. RawFeatures=true uses the raw layer weights
	// exactly as uploaded (the ablation variant).
	RawFeatures bool
}

// Selector identifies an automatic cluster-count rule.
type Selector int

const (
	// SelectSilhouette cuts at the smallest k whose mean silhouette is
	// within cluster.SilhouetteTolerance of the best — the default.
	SelectSilhouette Selector = iota
	// SelectLargestGap cuts before the largest jump in merge distances.
	SelectLargestGap
)

// String returns the selector name.
func (s Selector) String() string {
	switch s {
	case SelectSilhouette:
		return "silhouette"
	case SelectLargestGap:
		return "largest-gap"
	default:
		return fmt.Sprintf("Selector(%d)", int(s))
	}
}

// FedClust is the fl.Trainer implementing the paper's method.
type FedClust struct {
	Cfg Config
	// State is populated by Run with the fitted server-side clustering
	// (features, centroids, cluster models) so newcomers can be
	// incorporated afterwards.
	State *ClusterState
}

// Name implements fl.Trainer.
func (*FedClust) Name() string { return "FedClust" }

// ClusterState is the server-side state after the one-shot clustering
// phase. It is everything needed to serve existing clients and to
// incorporate newcomers without re-clustering.
type ClusterState struct {
	// Labels maps each founding client to its cluster (0..K-1).
	Labels []int
	// K is the number of clusters.
	K int
	// Features holds each founding client's uploaded partial weight
	// vector (the clustering features).
	Features [][]float64
	// Centroids holds the mean feature vector per cluster — the
	// newcomer assignment rule compares against these.
	Centroids [][]float64
	// Models holds the current flat parameters of each cluster's model.
	Models [][]float64
	// Dendrogram is the full agglomeration history (for diagnostics and
	// threshold re-cuts).
	Dendrogram *cluster.Dendrogram
	// Metric is the proximity metric the state was fitted with.
	Metric linalg.Metric
	// InitLayer is the selected layer's parameters under the shared
	// initialization; newcomer features are extracted against it.
	InitLayer []float64
	// Cfg is the configuration the state was fitted with.
	Cfg Config
}

// NewcomerFeature extracts the clustering feature from a newcomer's
// locally trained model, consistent with how the founding features were
// built (same layer, same reference init, same normalization).
func (s *ClusterState) NewcomerFeature(model *nn.Sequential) []float64 {
	return FeatureOf(model, s.InitLayer, s.Cfg)
}

// Run implements fl.Trainer: one-shot clustering, then per-cluster FedAvg.
func (f *FedClust) Run(env *fl.Env) *fl.Result {
	d := engine.New(env, "FedClust")
	cfg := f.Cfg
	n := len(env.Clients)
	if cfg.WarmupEpochs == 0 {
		cfg.WarmupEpochs = env.Local.Epochs
	}
	if cfg.MaxClusters == 0 {
		cfg.MaxClusters = n / 2
		if cfg.MaxClusters < 2 {
			cfg.MaxClusters = 2
		}
	}
	res := d.Res

	// A pending checkpoint for this method resumes past the one-shot
	// phase: the assignment and cluster models come back from the
	// checkpoint, and the warmup traffic plus formation bookkeeping (and
	// the round-0 comm snapshot) live in its restored Result. The
	// diagnostic ClusterState (features, centroids, dendrogram) is not
	// persisted — f.State stays nil on a resumed run (see DESIGN.md §9).
	if labels, k, models, ok := d.ResumeClustered(); ok {
		return d.RunClusteredFedAvg(labels, k, models)
	}

	// --- Steps ①–②: broadcast w₀; local warmup; upload partial weights.
	init := d.InitParams()
	features, initLayer, downB, upB := collectPartialWeights(env, cfg, init, d.Pool().Get)
	if downB == nil {
		res.Comm.Download(n, d.NumParams) // step ① broadcast
		// Step ② uploads only the final layer, but it is still a full
		// framed message — and it always travels dense (sparsification
		// applies to full-parameter uplinks only), so it is charged under
		// the dense downlink codec, never the sparse uplink pricing.
		res.Comm.UploadDense(n, len(features[0]), res.Comm.Pricing.Down)
	} else {
		// Remote warmup traffic is measured off the transport; the scalar
		// estimate covers only the clients that trained in-process.
		nLocal := 0
		var down, up int64
		for i := 0; i < n; i++ {
			if !env.Remote.Owns(i) {
				nLocal++
			}
			down += downB[i]
			up += upB[i]
		}
		res.Comm.Download(nLocal, d.NumParams)
		res.Comm.UploadDense(nLocal, len(features[0]), res.Comm.Pricing.Down)
		res.Comm.DownloadBytes(down)
		res.Comm.UploadBytes(up)
	}

	// --- Steps ③–④: proximity matrix + hierarchical clustering.
	prox := linalg.PairwiseDistances(cfg.Metric, features)
	den := cluster.Agglomerate(prox, cfg.Linkage)
	var labels []int
	switch {
	case cfg.NumClusters > 0:
		labels = den.CutK(cfg.NumClusters)
	case cfg.Selector == SelectLargestGap:
		labels = den.CutLargestGap(1, cfg.MaxClusters)
	default:
		// Parameter-free cut: the smallest cluster count whose mean
		// silhouette is within tolerance of the best (no predefined K, no
		// distance threshold — the paper's flexibility claim).
		labels = den.CutBestSilhouette(prox, 2, cfg.MaxClusters, cluster.SilhouetteTolerance)
	}
	k := cluster.NumClusters(labels)

	st := &ClusterState{
		Labels:     labels,
		K:          k,
		Features:   features,
		Centroids:  centroids(features, labels, k),
		Dendrogram: den,
		Metric:     cfg.Metric,
		InitLayer:  initLayer,
		Cfg:        cfg,
	}
	res.Clusters = labels
	res.ClusterFormationRound = 0 // formed before round 1, in one shot
	res.ClusterFormationUpBytes = res.Comm.UpBytes
	res.Comm.EndRound(0)

	// --- Step ⑤: per-cluster FedAvg.
	st.Models = make([][]float64, k)
	for c := range st.Models {
		st.Models[c] = append([]float64(nil), init...)
	}
	f.State = st
	return d.RunClusteredFedAvg(labels, k, st.Models)
}

// layerVector extracts the configured layer's parameters from a model.
func layerVector(model *nn.Sequential, cfg Config) []float64 {
	if cfg.ExplicitLayer {
		return nn.LayerParamVector(model, cfg.WeightLayer)
	}
	return nn.FinalLayerVector(model)
}

// InitLayerVector returns the selected layer's parameters under the
// environment's shared initialization — the reference point for feature
// extraction.
func InitLayerVector(env *fl.Env, cfg Config) []float64 {
	return layerVector(env.NewModel(), cfg)
}

// FeatureOf turns a locally trained model into its clustering feature:
// the selected layer's update from initLayer, unit-normalized (see
// Config.RawFeatures for the raw-weights variant).
func FeatureOf(model *nn.Sequential, initLayer []float64, cfg Config) []float64 {
	return FeatureFromVector(layerVector(model, cfg), initLayer, cfg)
}

// FeatureFromVector is FeatureOf on an already-extracted layer vector —
// what a remote client puts on the wire (it uploads only the partial
// weights, never the whole model). With RawFeatures the result aliases
// vec.
func FeatureFromVector(vec, initLayer []float64, cfg Config) []float64 {
	if cfg.RawFeatures {
		return vec
	}
	if len(vec) != len(initLayer) {
		panic(fmt.Sprintf("core: feature length %d != init layer %d", len(vec), len(initLayer)))
	}
	delta := make([]float64, len(vec))
	var norm float64
	for i := range vec {
		delta[i] = vec[i] - initLayer[i]
		norm += delta[i] * delta[i]
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		inv := 1 / norm
		for i := range delta {
			delta[i] *= inv
		}
	}
	return delta
}

// WarmupRound is the out-of-band round id keying the deterministic RNG
// stream of the one-shot warmup pass (far above any real round number,
// so warmup draws never collide with training rounds). Remote executors
// receive it as the request's round and derive the identical stream.
const WarmupRound = 1 << 20

// CollectPartialWeights performs the warmup phase: every client trains
// locally from the given initial weights for cfg.WarmupEpochs and the
// selected layer's update is extracted as that client's clustering
// feature. Runs clients in parallel over per-worker reused models.
func CollectPartialWeights(env *fl.Env, cfg Config, init []float64) [][]float64 {
	pool := engine.NewModelPool(env)
	features, _, _, _ := collectPartialWeights(env, cfg, init, pool.Get)
	return features
}

// collectPartialWeights is CollectPartialWeights over a caller-provided
// per-worker model source (FedClust.Run passes its round engine's pool so
// no extra networks are built). It also returns the selected layer's
// parameters under init — the reference every feature is extracted
// against — and, when the environment routes clients through a
// RemoteTrainer, the per-client measured wire bytes of the warmup
// exchange (nil slices otherwise). Remote clients upload only the
// selected layer, preserving the paper's partial-upload property on the
// wire. A remote warmup request is retried a few times (a deployment
// would simply re-ask for the tiny once-ever upload); a client whose
// every attempt fails is fatal — the one-shot clustering phase cannot
// proceed with missing features — and panics from the submitting
// goroutine once the parallel phase has drained.
func collectPartialWeights(env *fl.Env, cfg Config, init []float64, model func(worker int) *nn.Sequential) (features [][]float64, initLayer []float64, downBytes, upBytes []int64) {
	n := len(env.Clients)
	features = make([][]float64, n)
	local := env.Local
	if cfg.WarmupEpochs > 0 {
		local.Epochs = cfg.WarmupEpochs
	}
	ref := model(0)
	nn.LoadParams(ref, init)
	initLayer = layerVector(ref, cfg)
	var errs []error
	if env.Remote != nil {
		downBytes = make([]int64, n)
		upBytes = make([]int64, n)
		errs = make([]error, n)
	}
	layerSel := fl.FinalLayer
	if cfg.ExplicitLayer {
		layerSel = cfg.WeightLayer
	}
	scratches := make([]fl.TrainScratch, env.WorkerCount())
	for w := range scratches {
		scratches[w].DType = env.DType
	}
	// Hostile scenarios reach the warmup too: label-noise attackers train
	// their features on poisoned data, wire-level attackers corrupt the
	// uploaded layer vector (a byzantine client lies in the clustering
	// round as well). This is where FedClust's isolation property comes
	// from — corrupted features cluster together, away from honest
	// cohorts. Drift never applies at warmup (round 0 predates DriftRound
	// by construction; Config.Check enforces DriftRound ≥ 0).
	hs, hostileOn := env.Participation.Scenario.(fl.HostileScenario)
	env.ParallelClientsWorker(n, func(w, i int) {
		if rt := env.Remote; rt != nil && rt.Owns(i) {
			vec := make([]float64, len(initLayer))
			req := fl.RemoteRequest{
				Client: i, Round: WarmupRound, Cluster: -1,
				Layer: layerSel, Cfg: local, Start: init,
			}
			const attempts = 3 // ride out a transiently slow node
			var err error
			for a := 0; a < attempts; a++ {
				var down, up int64
				down, up, err = rt.Train(&req, vec)
				downBytes[i] += down
				upBytes[i] += up
				if err == nil {
					break
				}
			}
			errs[i] = err
			if err == nil {
				if hostileOn {
					hs.CorruptUpdate(i, WarmupRound, vec, initLayer)
				}
				features[i] = FeatureFromVector(vec, initLayer, cfg)
			}
			return
		}
		m := model(w)
		nn.LoadParams(m, init)
		train := env.Clients[i].Train
		if hostileOn {
			train = hs.TrainData(i, 0, train)
		}
		scratches[w].LocalUpdate(m, train, local, env.ClientRng(i, WarmupRound))
		if hostileOn {
			vec := layerVector(m, cfg) // fresh copy; corrupting it never touches the pooled model
			hs.CorruptUpdate(i, WarmupRound, vec, initLayer)
			features[i] = FeatureFromVector(vec, initLayer, cfg)
			return
		}
		features[i] = FeatureOf(m, initLayer, cfg)
	})
	for i, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("core: remote warmup upload for client %d failed: %v", i, err))
		}
	}
	return features, initLayer, downBytes, upBytes
}

// centroids computes per-cluster mean feature vectors.
func centroids(features [][]float64, labels []int, k int) [][]float64 {
	dim := len(features[0])
	out := make([][]float64, k)
	counts := make([]int, k)
	for c := range out {
		out[c] = make([]float64, dim)
	}
	for i, f := range features {
		c := labels[i]
		counts[c]++
		for j, v := range f {
			out[c][j] += v
		}
	}
	for c := range out {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range out[c] {
			out[c][j] *= inv
		}
	}
	return out
}

// AssignNewcomer returns the cluster whose centroid is nearest (under the
// fitted metric) to the newcomer's partial weight feature — the paper's
// step ⑥, executed in real time without re-clustering.
func (s *ClusterState) AssignNewcomer(feature []float64) int {
	if len(s.Centroids) == 0 {
		panic("core: AssignNewcomer on empty state")
	}
	if len(feature) != len(s.Centroids[0]) {
		panic(fmt.Sprintf("core: newcomer feature length %d, want %d", len(feature), len(s.Centroids[0])))
	}
	best, bestD := 0, linalg.VecDistance(s.Metric, feature, s.Centroids[0])
	for c := 1; c < len(s.Centroids); c++ {
		if d := linalg.VecDistance(s.Metric, feature, s.Centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// AddNewcomer assigns the newcomer and folds its feature into the chosen
// cluster's centroid (so subsequent arrivals see the updated centroid).
// Returns the assigned cluster.
func (s *ClusterState) AddNewcomer(feature []float64) int {
	c := s.AssignNewcomer(feature)
	oldCount := 0
	for _, l := range s.Labels {
		if l == c {
			oldCount++
		}
	}
	newCount := float64(oldCount + 1)
	for j := range s.Centroids[c] {
		s.Centroids[c][j] = (s.Centroids[c][j]*float64(oldCount) + feature[j]) / newCount
	}
	s.Labels = append(s.Labels, c)
	s.Features = append(s.Features, append([]float64(nil), feature...))
	return c
}

// ProximityMatrix exposes the fitted pairwise feature distances (used by
// diagnostics and the Fig-1 style visualizations).
func (s *ClusterState) ProximityMatrix() *tensor.Tensor {
	return linalg.PairwiseDistances(s.Metric, s.Features)
}

package core

import (
	"testing"

	"fedclust/internal/cluster"
	"fedclust/internal/linalg"
)

// TestFedClustFullyDeterministic: two runs with the same seed must agree
// bit-for-bit on clusters, accuracy, and communication — the property the
// whole experiment harness rests on.
func TestFedClustFullyDeterministic(t *testing.T) {
	run := func() (labels []int, acc float64, up int64) {
		env, _ := groupEnv(t, 3, 3, 55)
		f := &FedClust{}
		res := f.Run(env)
		return res.Clusters, res.FinalAcc, res.Comm.UpBytes
	}
	l1, a1, u1 := run()
	l2, a2, u2 := run()
	if a1 != a2 || u1 != u2 {
		t.Fatalf("runs diverged: acc %v vs %v, up %d vs %d", a1, a2, u1, u2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("cluster assignments diverged: %v vs %v", l1, l2)
		}
	}
}

// TestFedClustMaxClustersBound: the automatic cut must never exceed the
// configured ceiling.
func TestFedClustMaxClustersBound(t *testing.T) {
	env, _ := groupEnv(t, 4, 1, 56)
	f := &FedClust{Cfg: Config{MaxClusters: 2}}
	res := f.Run(env)
	if k := cluster.NumClusters(res.Clusters); k > 2 {
		t.Fatalf("MaxClusters=2 violated: k=%d", k)
	}
}

// TestProximityMatrixProperties: symmetric, zero-diagonal, non-negative.
func TestProximityMatrixProperties(t *testing.T) {
	env, _ := groupEnv(t, 2, 1, 57)
	f := &FedClust{}
	f.Run(env)
	prox := f.State.ProximityMatrix()
	n := prox.Shape[0]
	if n != len(env.Clients) {
		t.Fatalf("proximity matrix size %d", n)
	}
	for i := 0; i < n; i++ {
		if prox.At(i, i) != 0 {
			t.Fatal("non-zero diagonal")
		}
		for j := 0; j < n; j++ {
			if prox.At(i, j) < 0 || prox.At(i, j) != prox.At(j, i) {
				t.Fatal("proximity matrix not symmetric non-negative")
			}
		}
	}
}

// TestFedClustCosineMetricVariant: the configurable metric must flow
// through to the fitted state and still recover planted groups.
func TestFedClustCosineMetricVariant(t *testing.T) {
	env, truth := groupEnv(t, 3, 2, 58)
	f := &FedClust{Cfg: Config{Metric: linalg.Cosine}}
	res := f.Run(env)
	if f.State.Metric != linalg.Cosine {
		t.Fatal("metric not recorded in state")
	}
	if ari := cluster.ARI(res.Clusters, truth); ari < 0.99 {
		t.Fatalf("cosine-metric FedClust ARI = %v", ari)
	}
}

// TestFeatureOfNormalization: default features are unit-norm updates;
// RawFeatures returns the layer weights verbatim.
func TestFeatureOfNormalization(t *testing.T) {
	env, _ := groupEnv(t, 2, 1, 59)
	init := make([]float64, 0)
	model := env.NewModel()
	initLayer := InitLayerVector(env, Config{})
	_ = init
	// Perturb the classifier by a known vector.
	wl := model.Layers
	_ = wl
	feat := FeatureOf(model, initLayer, Config{})
	// Untrained model minus its own init: zero delta → zero vector kept
	// at zero norm (no NaNs).
	var norm float64
	for _, v := range feat {
		norm += v * v
	}
	if norm != 0 {
		t.Fatalf("feature of unperturbed model should be zero, norm²=%v", norm)
	}
	raw := FeatureOf(model, initLayer, Config{RawFeatures: true})
	for i, v := range initLayer {
		if raw[i] != v {
			t.Fatal("RawFeatures should return layer weights verbatim")
		}
	}
}

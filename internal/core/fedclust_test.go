package core

import (
	"testing"

	"fedclust/internal/cluster"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/linalg"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

// groupEnv builds the canonical two-group scenario (classes {0,1} vs
// {2,3}) used throughout the core tests.
func groupEnv(t testing.TB, clientsPerGroup, rounds int, seed uint64) (*fl.Env, []int) {
	t.Helper()
	cfg := data.SynthConfig{
		Name: "core4", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: 60, TestPerClass: 24,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
	}
	train, test := data.Generate(cfg)
	r := rng.New(seed)
	clients, truth := fl.BuildGroupClients(train, test,
		[][]int{{0, 1}, {2, 3}}, []int{clientsPerGroup, clientsPerGroup}, r)
	env := &fl.Env{
		Clients: clients,
		Factory: func(fr *rng.Rng) *nn.Sequential { return nn.MLP(fr, 64, 24, 4) },
		Rounds:  rounds,
		Local:   fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1},
		Seed:    seed,
	}
	return env, truth
}

func TestFedClustRecoversGroupsOneShot(t *testing.T) {
	env, truth := groupEnv(t, 3, 4, 1)
	f := &FedClust{}
	res := f.Run(env)
	if res.Method != "FedClust" {
		t.Fatalf("method = %q", res.Method)
	}
	if ari := cluster.ARI(res.Clusters, truth); ari < 0.99 {
		t.Fatalf("FedClust cluster ARI = %v (clusters %v)", ari, res.Clusters)
	}
	if res.ClusterFormationRound != 0 {
		t.Fatalf("clustering must be one-shot, got round %d", res.ClusterFormationRound)
	}
	if f.State == nil || f.State.K != 2 {
		t.Fatalf("state K = %v", f.State)
	}
}

func TestFedClustAutoDetectsClusterCount(t *testing.T) {
	// Three groups with disjoint classes; no NumClusters given.
	cfg := data.SynthConfig{
		Name: "core6", C: 1, H: 8, W: 8, Classes: 6,
		TrainPerClass: 50, TestPerClass: 20,
		ClassSep: 1.8, Noise: 0.6, SharedBG: 0.3, Smooth: 1, Seed: 2,
	}
	train, test := data.Generate(cfg)
	r := rng.New(2)
	clients, truth := fl.BuildGroupClients(train, test,
		[][]int{{0, 1}, {2, 3}, {4, 5}}, []int{3, 3, 3}, r)
	env := &fl.Env{
		Clients: clients,
		Factory: func(fr *rng.Rng) *nn.Sequential { return nn.MLP(fr, 64, 24, 6) },
		Rounds:  2,
		Local:   fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1},
		Seed:    2,
	}
	f := &FedClust{}
	res := f.Run(env)
	if k := cluster.NumClusters(res.Clusters); k != 3 {
		t.Fatalf("auto cut found %d clusters, want 3 (%v)", k, res.Clusters)
	}
	if ari := cluster.ARI(res.Clusters, truth); ari < 0.99 {
		t.Fatalf("3-group ARI = %v", ari)
	}
}

func TestFedClustPartialUploadIsSmall(t *testing.T) {
	env, _ := groupEnv(t, 2, 2, 3)
	f := &FedClust{}
	res := f.Run(env)
	model := env.NewModel()
	finalLayerParams := len(nn.FinalLayerVector(model))
	n := len(env.Clients)
	wantRound0Up := int64(n) * (fl.CommPricing{}).UploadBytesFor(finalLayerParams)
	if res.ClusterFormationUpBytes != wantRound0Up {
		t.Fatalf("round-0 upload = %d, want %d (final layer only, framed)",
			res.ClusterFormationUpBytes, wantRound0Up)
	}
	full := int64(n) * (fl.CommPricing{}).UploadBytesFor(model.NumParams())
	if res.ClusterFormationUpBytes >= full {
		t.Fatal("partial upload not smaller than full model upload")
	}
}

func TestFedClustBeatsFedAvgOnGroupedData(t *testing.T) {
	// The headline Table-I comparison in miniature.
	envA, _ := groupEnv(t, 3, 5, 4)
	envB, _ := groupEnv(t, 3, 5, 4)
	fedclust := (&FedClust{}).Run(envA)

	// Local FedAvg baseline without importing internal/methods (avoids a
	// dependency cycle in tests): single global model, full aggregation.
	global := nn.FlattenParams(envB.NewModel())
	weights := envB.TrainSizes()
	n := len(envB.Clients)
	locals := make([][]float64, n)
	for round := 0; round < envB.Rounds; round++ {
		envB.ParallelClients(n, func(i int) {
			m := envB.NewModel()
			nn.LoadParams(m, global)
			fl.LocalUpdate(m, envB.Clients[i].Train, envB.Local, envB.ClientRng(i, round))
			locals[i] = nn.FlattenParams(m)
		})
		global = fl.WeightedAverage(locals, weights)
	}
	served := envB.NewModel()
	nn.LoadParams(served, global)
	_, avgAcc, _ := envB.EvaluatePersonalized(func(int) *nn.Sequential { return served })

	if fedclust.FinalAcc <= avgAcc {
		t.Fatalf("FedClust (%v) should beat FedAvg (%v) on grouped data",
			fedclust.FinalAcc, avgAcc)
	}
}

func TestFedClustFixedNumClusters(t *testing.T) {
	env, _ := groupEnv(t, 3, 2, 5)
	f := &FedClust{Cfg: Config{NumClusters: 3}}
	res := f.Run(env)
	if k := cluster.NumClusters(res.Clusters); k != 3 {
		t.Fatalf("fixed K=3 gave %d clusters", k)
	}
}

func TestFedClustExplicitLayerFeature(t *testing.T) {
	// Clustering on the FIRST weight layer should be far less informative
	// than on the final layer — the paper's §II observation.
	envFinal, truth := groupEnv(t, 3, 2, 6)
	envFirst, _ := groupEnv(t, 3, 2, 6)
	final := &FedClust{}
	first := &FedClust{Cfg: Config{ExplicitLayer: true, WeightLayer: 0, NumClusters: 2}}
	resFinal := final.Run(envFinal)
	resFirst := first.Run(envFirst)
	ariFinal := cluster.ARI(resFinal.Clusters, truth)
	ariFirst := cluster.ARI(resFirst.Clusters, truth)
	if ariFinal < 0.99 {
		t.Fatalf("final-layer ARI = %v", ariFinal)
	}
	if ariFirst > ariFinal {
		t.Fatalf("first-layer clustering (ARI %v) should not beat final-layer (ARI %v)",
			ariFirst, ariFinal)
	}
}

func TestCollectPartialWeightsShape(t *testing.T) {
	env, _ := groupEnv(t, 2, 1, 7)
	init := nn.FlattenParams(env.NewModel())
	features := CollectPartialWeights(env, Config{}, init)
	if len(features) != len(env.Clients) {
		t.Fatalf("features = %d", len(features))
	}
	want := len(nn.FinalLayerVector(env.NewModel()))
	for i, f := range features {
		if len(f) != want {
			t.Fatalf("client %d feature length %d, want %d", i, len(f), want)
		}
	}
}

func TestCollectPartialWeightsDeterministic(t *testing.T) {
	env, _ := groupEnv(t, 2, 1, 8)
	init := nn.FlattenParams(env.NewModel())
	a := CollectPartialWeights(env, Config{}, init)
	b := CollectPartialWeights(env, Config{}, init)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("partial weight collection not deterministic")
			}
		}
	}
}

func TestAssignNewcomerNearestCentroid(t *testing.T) {
	st := &ClusterState{
		Labels:    []int{0, 0, 1},
		K:         2,
		Features:  [][]float64{{0, 0}, {0.2, 0}, {10, 10}},
		Centroids: [][]float64{{0.1, 0}, {10, 10}},
		Metric:    linalg.Euclidean,
	}
	if got := st.AssignNewcomer([]float64{0.3, 0.1}); got != 0 {
		t.Fatalf("newcomer near cluster 0 assigned to %d", got)
	}
	if got := st.AssignNewcomer([]float64{9, 11}); got != 1 {
		t.Fatalf("newcomer near cluster 1 assigned to %d", got)
	}
}

func TestAssignNewcomerBadFeaturePanics(t *testing.T) {
	st := &ClusterState{Centroids: [][]float64{{0, 0}}, Metric: linalg.Euclidean}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong feature length did not panic")
		}
	}()
	st.AssignNewcomer([]float64{1})
}

func TestAddNewcomerUpdatesCentroid(t *testing.T) {
	st := &ClusterState{
		Labels:    []int{0, 1},
		K:         2,
		Features:  [][]float64{{0}, {10}},
		Centroids: [][]float64{{0}, {10}},
		Metric:    linalg.Euclidean,
	}
	c := st.AddNewcomer([]float64{2})
	if c != 0 {
		t.Fatalf("newcomer assigned to %d", c)
	}
	if st.Centroids[0][0] != 1 { // (0 + 2) / 2
		t.Fatalf("centroid not updated: %v", st.Centroids[0])
	}
	if len(st.Labels) != 3 || st.Labels[2] != 0 {
		t.Fatalf("labels = %v", st.Labels)
	}
}

func TestNewcomerEndToEnd(t *testing.T) {
	// Paper step ⑥ end to end: run FedClust on the two-group population,
	// then arrive a new client from group 1; it must be routed to the
	// cluster holding group 1's founding clients.
	env, truth := groupEnv(t, 3, 3, 9)
	f := &FedClust{}
	res := f.Run(env)

	// Build the newcomer: a fresh client drawn from group 1's classes.
	cfg := data.SynthConfig{
		Name: "core4", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: 60, TestPerClass: 24,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: 99,
	}
	train, _ := data.Generate(cfg)
	newTrain := train.FilterClasses([]int{2, 3})
	newClient := &fl.Client{ID: 999, Train: newTrain}

	// Newcomer protocol: download w₀, train locally, upload the
	// final-layer feature.
	model := env.NewModel()
	fl.LocalUpdate(model, newClient.Train, env.Local, rng.New(77))
	feature := f.State.NewcomerFeature(model)
	assigned := f.State.AssignNewcomer(feature)

	// Which cluster holds group-1 founders?
	var group1Cluster int
	for i, g := range truth {
		if g == 1 {
			group1Cluster = res.Clusters[i]
			break
		}
	}
	if assigned != group1Cluster {
		t.Fatalf("newcomer from group 1 assigned to cluster %d, want %d", assigned, group1Cluster)
	}
}

func TestProximityMatrixBlockStructure(t *testing.T) {
	// After fitting on grouped data, intra-group feature distances must
	// be smaller than inter-group ones (the Fig-1 block structure).
	env, truth := groupEnv(t, 3, 2, 10)
	f := &FedClust{}
	f.Run(env)
	prox := f.State.ProximityMatrix()
	var intra, inter float64
	var nIntra, nInter int
	n := len(truth)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if truth[i] == truth[j] {
				intra += prox.At(i, j)
				nIntra++
			} else {
				inter += prox.At(i, j)
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra >= inter {
		t.Fatalf("no block structure: intra %v >= inter %v", intra, inter)
	}
}

func TestFedClustHistoryAndComm(t *testing.T) {
	env, _ := groupEnv(t, 2, 3, 11)
	env.EvalEvery = 1
	res := (&FedClust{}).Run(env)
	if len(res.History) != 3 {
		t.Fatalf("history = %d entries, want 3", len(res.History))
	}
	// Round-0 comm entry plus 3 training rounds.
	if len(res.Comm.PerRound) != 4 {
		t.Fatalf("per-round comm entries = %d, want 4", len(res.Comm.PerRound))
	}
	if res.Comm.PerRound[0].Round != 0 {
		t.Fatal("first comm entry should be the clustering round 0")
	}
}

func TestSelectorString(t *testing.T) {
	if SelectSilhouette.String() != "silhouette" || SelectLargestGap.String() != "largest-gap" {
		t.Fatal("selector names wrong")
	}
}

func TestFedClustLargestGapSelector(t *testing.T) {
	env, truth := groupEnv(t, 3, 2, 31)
	f := &FedClust{Cfg: Config{Selector: SelectLargestGap}}
	res := f.Run(env)
	// On cleanly separated groups the gap rule also recovers them.
	if ari := cluster.ARI(res.Clusters, truth); ari < 0.99 {
		t.Fatalf("largest-gap selector ARI = %v (clusters %v)", ari, res.Clusters)
	}
}

func TestFedClustRawFeaturesAblation(t *testing.T) {
	// The raw-weights variant must run end to end; on balanced group
	// populations (equal client sizes) it should still find 2 groups.
	env, truth := groupEnv(t, 3, 2, 32)
	f := &FedClust{Cfg: Config{RawFeatures: true, NumClusters: 2}}
	res := f.Run(env)
	if ari := cluster.ARI(res.Clusters, truth); ari < 0.5 {
		t.Fatalf("raw-feature variant ARI = %v on balanced groups", ari)
	}
}

package methods

import (
	"testing"

	"fedclust/internal/fl"
)

func TestFedAvgPartialParticipationComm(t *testing.T) {
	env, _ := groupEnv(t, 5, 4, 21) // 10 clients
	env.Participation = fl.Participation{Fraction: 0.5}
	res := FedAvg{}.Run(env)
	nParams := env.NewModel().NumParams()
	wantUp := int64(env.Rounds) * 5 * (fl.CommPricing{}).UploadBytesFor(nParams)
	if res.Comm.UpBytes != wantUp {
		t.Fatalf("partial participation uplink = %d, want %d", res.Comm.UpBytes, wantUp)
	}
	if res.FinalAcc < 0.4 {
		t.Fatalf("partial participation accuracy %v", res.FinalAcc)
	}
}

func TestFedAvgSurvivesDropouts(t *testing.T) {
	env, _ := groupEnv(t, 3, 5, 22)
	env.Participation = fl.Participation{DropRate: 0.5}
	res := FedAvg{}.Run(env)
	if res.FinalAcc < 0.4 {
		t.Fatalf("accuracy under 50%% dropout = %v", res.FinalAcc)
	}
	// Uplink must be strictly below the no-failure volume.
	nParams := env.NewModel().NumParams()
	visits := int64(env.Rounds) * int64(len(env.Clients))
	fullUp := visits * (fl.CommPricing{}).UploadBytesFor(nParams)
	fullDown := visits * (fl.CommPricing{}).DownloadBytesFor(nParams)
	if res.Comm.UpBytes >= fullUp {
		t.Fatalf("uplink %d not reduced by drops (full %d)", res.Comm.UpBytes, fullUp)
	}
	if res.Comm.DownBytes != fullDown {
		t.Fatalf("downlink %d should still cover all invited clients (%d)", res.Comm.DownBytes, fullDown)
	}
}

func TestFedAvgExtremeDropoutStillProgresses(t *testing.T) {
	env, _ := groupEnv(t, 3, 6, 23)
	env.Participation = fl.Participation{DropRate: 0.89}
	res := FedAvg{}.Run(env)
	if res.FinalAcc <= 0.25 {
		t.Fatalf("accuracy under extreme dropout = %v (chance ≈ 0.25 on 4 classes)", res.FinalAcc)
	}
}

package methods

import (
	"fedclust/internal/cluster"
	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/linalg"
	"fedclust/internal/tensor"
)

// PACFL (Vahidian et al. 2022) clusters clients before training by
// comparing the principal subspaces of their raw data: each client sends
// the top-P left singular vectors of its (features × samples) data matrix;
// the server computes pairwise principal angles between those subspaces,
// runs agglomerative hierarchical clustering on the angle matrix, and then
// trains one FedAvg model per cluster.
//
// Simplification vs. the original (recorded in DESIGN.md): PACFL sends one
// subspace per local class; we send one subspace per client over its whole
// local dataset. The mechanism — subspace sketch, principal angles, HC —
// is identical, and under label-skew partitions the whole-data subspace is
// dominated by the client's class mixture, which is exactly the signal
// being clustered.
type PACFL struct {
	// P is the number of singular vectors per client sketch (default 3).
	P int
	// Linkage for the HC step (default Average).
	Linkage cluster.Linkage
	// NumClusters, when > 0, fixes the HC cut; otherwise the largest-gap
	// heuristic picks it (bounded to at most MaxClusters).
	NumClusters int
	// MaxClusters bounds the automatic cut (default n/2).
	MaxClusters int
	// SketchSamples caps how many examples enter each client's SVD
	// (default 100; keeps the one-shot preprocessing cheap).
	SketchSamples int
}

// Name implements fl.Trainer.
func (PACFL) Name() string { return "PACFL" }

func (p PACFL) defaults(n int) PACFL {
	if p.P == 0 {
		p.P = 3
	}
	if p.SketchSamples == 0 {
		p.SketchSamples = 100
	}
	if p.MaxClusters == 0 {
		p.MaxClusters = n / 2
		if p.MaxClusters < 2 {
			p.MaxClusters = 2
		}
	}
	return p
}

// Run implements fl.Trainer.
func (p PACFL) Run(env *fl.Env) *fl.Result {
	d := engine.New(env, "PACFL")
	n := len(env.Clients)
	p = p.defaults(n)
	res := d.Res

	// A pending checkpoint for this method already paid for the one-shot
	// clustering: the assignment and per-cluster models come back from the
	// checkpoint, and the sketch-upload traffic plus formation bookkeeping
	// live in its restored Result. Skip straight to the round schedule.
	if labels, k, models, ok := d.ResumeClustered(); ok {
		return d.RunClusteredFedAvg(labels, k, models)
	}

	// --- One-shot clustering phase (before any training round). ---
	bases := make([]*tensor.Tensor, n)
	env.ParallelClients(n, func(i int) {
		bases[i] = clientSubspace(env, i, p.P, p.SketchSamples)
	})
	// Uplink: each client sends P basis vectors of length dim — a dense
	// one-shot sketch, framed like any other message but never
	// sparsified, so it prices under the run's dense (downlink) codec.
	dim := env.Clients[0].Train.Dim()
	res.Comm.UploadDense(n, p.P*dim, res.Comm.Pricing.Down)

	prox := linalg.PairwiseFromFunc(n, func(i, j int) float64 {
		return linalg.SubspaceDistance(bases[i], bases[j])
	})
	den := cluster.Agglomerate(prox, p.Linkage)
	var labels []int
	if p.NumClusters > 0 {
		labels = den.CutK(p.NumClusters)
	} else {
		labels = den.CutLargestGap(1, p.MaxClusters)
	}
	k := cluster.NumClusters(labels)
	res.Clusters = labels
	res.ClusterFormationRound = 0 // formed before round 1
	res.ClusterFormationUpBytes = res.Comm.UpBytes

	// --- Per-cluster FedAvg. ---
	models := make([][]float64, k)
	for c := range models {
		models[c] = d.InitParams()
	}
	return d.RunClusteredFedAvg(labels, k, models)
}

// clientSubspace computes an orthonormal basis of the top-P left singular
// vectors of client i's (dim × samples) data matrix, subsampled to at most
// maxSamples columns.
func clientSubspace(env *fl.Env, i, p, maxSamples int) *tensor.Tensor {
	d := env.Clients[i].Train
	m := d.Len()
	if m > maxSamples {
		m = maxSamples
	}
	if p > m {
		p = m
	}
	r := envRng(env, 0x9acf1, uint64(i))
	pick := r.Perm(d.Len())[:m]
	dim := d.Dim()
	a := tensor.New(dim, m)
	for col, row := range pick {
		src := d.X.Row(row)
		for j := 0; j < dim; j++ {
			a.Set(src[j], j, col)
		}
	}
	svd := linalg.ComputeSVD(a)
	return svd.TruncateU(p)
}

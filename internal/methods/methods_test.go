package methods

import (
	"testing"

	"fedclust/internal/cluster"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

// groupEnv builds a 2-group scenario: groupsA clients hold classes {0,1},
// groupsB clients hold classes {2,3}, on small synthetic images. Cluster
// methods should discover the two groups; the returned truth is the
// ground-truth group per client.
func groupEnv(t testing.TB, clientsPerGroup, rounds int, seed uint64) (*fl.Env, []int) {
	t.Helper()
	cfg := data.SynthConfig{
		Name: "test4", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: 60, TestPerClass: 24,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
	}
	train, test := data.Generate(cfg)
	r := rng.New(seed)
	clients, truth := fl.BuildGroupClients(train, test,
		[][]int{{0, 1}, {2, 3}}, []int{clientsPerGroup, clientsPerGroup}, r)
	env := &fl.Env{
		Clients: clients,
		Factory: func(fr *rng.Rng) *nn.Sequential { return nn.MLP(fr, 64, 24, 4) },
		Rounds:  rounds,
		Local:   fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1},
		Seed:    seed,
	}
	return env, truth
}

// dirichletEnv builds a Dir(0.1) scenario over 4 classes.
func dirichletEnv(t testing.TB, nClients, rounds int, seed uint64) *fl.Env {
	t.Helper()
	cfg := data.SynthConfig{
		Name: "testdir", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: 60, TestPerClass: 24,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
	}
	train, test := data.Generate(cfg)
	clients := fl.BuildDirichletClients(train, test, nClients, 0.1, rng.New(seed))
	return &fl.Env{
		Clients: clients,
		Factory: func(fr *rng.Rng) *nn.Sequential { return nn.MLP(fr, 64, 24, 4) },
		Rounds:  rounds,
		Local:   fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1},
		Seed:    seed,
	}
}

func checkBasicResult(t *testing.T, res *fl.Result, env *fl.Env) {
	t.Helper()
	if res.FinalAcc < 0 || res.FinalAcc > 1 {
		t.Fatalf("%s accuracy %v out of range", res.Method, res.FinalAcc)
	}
	if len(res.PerClientAcc) != len(env.Clients) {
		t.Fatalf("%s per-client accuracies %d, want %d", res.Method, len(res.PerClientAcc), len(env.Clients))
	}
	if len(res.History) == 0 {
		t.Fatalf("%s recorded no history", res.Method)
	}
	last := res.History[len(res.History)-1]
	if last.Round != env.Rounds || last.MeanAcc != res.FinalAcc {
		t.Fatalf("%s final history entry inconsistent: %+v vs %v", res.Method, last, res.FinalAcc)
	}
	if res.Comm.UpBytes <= 0 || res.Comm.DownBytes <= 0 {
		t.Fatalf("%s comm not accounted: %+v", res.Method, res.Comm)
	}
}

func TestFedAvgRunsAndLearns(t *testing.T) {
	env, _ := groupEnv(t, 3, 4, 1)
	res := FedAvg{}.Run(env)
	checkBasicResult(t, res, env)
	if res.Clusters != nil || res.ClusterFormationRound != -1 {
		t.Fatal("FedAvg must not report clusters")
	}
	// Better than chance (0.25 over 4 classes; personalized sets have 2).
	if res.FinalAcc < 0.4 {
		t.Fatalf("FedAvg accuracy %v too low", res.FinalAcc)
	}
}

func TestFedAvgCommAccounting(t *testing.T) {
	env, _ := groupEnv(t, 2, 3, 2)
	res := FedAvg{}.Run(env)
	nParams := env.NewModel().NumParams()
	n := int64(len(env.Clients))
	wantUp := int64(env.Rounds) * n * (fl.CommPricing{}).UploadBytesFor(nParams)
	wantDown := int64(env.Rounds) * n * (fl.CommPricing{}).DownloadBytesFor(nParams)
	if res.Comm.UpBytes != wantUp || res.Comm.DownBytes != wantDown {
		t.Fatalf("comm = %+v, want up %d down %d", res.Comm, wantUp, wantDown)
	}
	if len(res.Comm.PerRound) != env.Rounds {
		t.Fatalf("per-round entries = %d", len(res.Comm.PerRound))
	}
}

func TestFedAvgDeterministic(t *testing.T) {
	env1, _ := groupEnv(t, 2, 2, 3)
	env2, _ := groupEnv(t, 2, 2, 3)
	r1 := FedAvg{}.Run(env1)
	r2 := FedAvg{}.Run(env2)
	if r1.FinalAcc != r2.FinalAcc {
		t.Fatalf("FedAvg not deterministic: %v vs %v", r1.FinalAcc, r2.FinalAcc)
	}
}

func TestFedProxRuns(t *testing.T) {
	env, _ := groupEnv(t, 2, 3, 4)
	res := FedProx{Mu: 0.1}.Run(env)
	checkBasicResult(t, res, env)
	if res.Method != "FedProx" {
		t.Fatalf("method name = %q", res.Method)
	}
	// The caller's env must not be mutated by the prox wrapper.
	if env.Local.ProxMu != 0 {
		t.Fatal("FedProx mutated the shared env")
	}
}

func TestIFCARecoverGroups(t *testing.T) {
	env, truth := groupEnv(t, 3, 5, 5)
	res := IFCA{K: 2}.Run(env)
	checkBasicResult(t, res, env)
	if res.Clusters == nil {
		t.Fatal("IFCA must report clusters")
	}
	if ari := cluster.ARI(res.Clusters, truth); ari < 0.9 {
		t.Fatalf("IFCA cluster ARI = %v (clusters %v)", ari, res.Clusters)
	}
}

func TestIFCADownlinkCarriesKModels(t *testing.T) {
	env, _ := groupEnv(t, 2, 2, 6)
	res := IFCA{K: 3}.Run(env)
	nParams := env.NewModel().NumParams()
	n := int64(len(env.Clients))
	wantDown := int64(env.Rounds) * n * (fl.CommPricing{}).DownloadBytesFor(3*nParams)
	if res.Comm.DownBytes != wantDown {
		t.Fatalf("IFCA downlink = %d, want %d (K models per round)", res.Comm.DownBytes, wantDown)
	}
}

func TestIFCAK1DegeneratesToFedAvg(t *testing.T) {
	env1, _ := groupEnv(t, 2, 3, 7)
	env2, _ := groupEnv(t, 2, 3, 7)
	avg := FedAvg{}.Run(env1)
	one := IFCA{K: 1}.Run(env2)
	if diff := avg.FinalAcc - one.FinalAcc; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("IFCA K=1 accuracy %v != FedAvg %v", one.FinalAcc, avg.FinalAcc)
	}
}

func TestCFLRunsAndReportsValidResult(t *testing.T) {
	env, _ := groupEnv(t, 3, 6, 8)
	res := CFL{}.Run(env)
	checkBasicResult(t, res, env)
	if res.Clusters == nil || len(res.Clusters) != len(env.Clients) {
		t.Fatal("CFL must report a cluster per client")
	}
	k := cluster.NumClusters(res.Clusters)
	if k < 1 || k > len(env.Clients) {
		t.Fatalf("CFL clusters = %d", k)
	}
}

// conflictEnv builds the classic CFL splitting scenario: both groups see
// the same input distribution but with permuted labels, so one global
// model cannot fit both and updates anti-correlate.
func conflictEnv(t testing.TB, clientsPerGroup, rounds int, seed uint64) (*fl.Env, []int) {
	t.Helper()
	cfg := data.SynthConfig{
		Name: "conflict", C: 1, H: 8, W: 8, Classes: 2,
		TrainPerClass: 80, TestPerClass: 30,
		ClassSep: 1.8, Noise: 0.6, SharedBG: 0.2, Smooth: 1, Seed: seed,
	}
	train, test := data.Generate(cfg)
	r := rng.New(seed)
	n := 2 * clientsPerGroup
	assignTrain := make([][]int, n)
	perm := r.Perm(train.Len())
	for i, row := range perm {
		assignTrain[i%n] = append(assignTrain[i%n], row)
	}
	truth := make([]int, n)
	clients := make([]*fl.Client, n)
	permTest := r.Perm(test.Len())
	for i := 0; i < n; i++ {
		tr := train.Subset(assignTrain[i])
		var teIdx []int
		for j, row := range permTest {
			if j%n == i {
				teIdx = append(teIdx, row)
			}
		}
		te := test.Subset(teIdx)
		if i >= clientsPerGroup { // group B: flip labels
			truth[i] = 1
			for k := range tr.Y {
				tr.Y[k] = 1 - tr.Y[k]
			}
			for k := range te.Y {
				te.Y[k] = 1 - te.Y[k]
			}
		}
		clients[i] = &fl.Client{ID: i, Train: tr, Test: te}
	}
	env := &fl.Env{
		Clients: clients,
		Factory: func(fr *rng.Rng) *nn.Sequential { return nn.MLP(fr, 64, 16, 2) },
		Rounds:  rounds,
		Local:   fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1},
		Seed:    seed,
	}
	return env, truth
}

func TestCFLSplitsConflictingClients(t *testing.T) {
	env, truth := conflictEnv(t, 3, 12, 9)
	res := CFL{WarmupRounds: 2}.Run(env)
	if k := cluster.NumClusters(res.Clusters); k < 2 {
		t.Fatalf("CFL never split conflicting clients (k=%d)", k)
	}
	if ari := cluster.ARI(res.Clusters, truth); ari < 0.9 {
		t.Fatalf("CFL split ARI = %v (clusters %v)", ari, res.Clusters)
	}
	if res.ClusterFormationRound < 1 {
		t.Fatalf("CFL cluster formation round = %d, want >=1 (multi-round formation)", res.ClusterFormationRound)
	}
	// After splitting, each side should fit its own labels well.
	if res.FinalAcc < 0.8 {
		t.Fatalf("CFL post-split accuracy = %v", res.FinalAcc)
	}
}

func TestPACFLRecoverGroupsFromSubspaces(t *testing.T) {
	env, truth := groupEnv(t, 3, 4, 10)
	p := PACFL{P: 3}
	res := p.Run(env)
	checkBasicResult(t, res, env)
	if ari := cluster.ARI(res.Clusters, truth); ari < 0.9 {
		t.Fatalf("PACFL cluster ARI = %v (clusters %v)", ari, res.Clusters)
	}
	if res.ClusterFormationRound != 0 {
		t.Fatal("PACFL clustering should be one-shot (round 0)")
	}
}

func TestPACFLFixedK(t *testing.T) {
	env, _ := groupEnv(t, 2, 2, 11)
	res := PACFL{P: 2, NumClusters: 3}.Run(env)
	if k := cluster.NumClusters(res.Clusters); k != 3 {
		t.Fatalf("PACFL fixed K=3 gave %d clusters", k)
	}
}

func TestPACFLSketchUplinkSmall(t *testing.T) {
	env, _ := groupEnv(t, 2, 1, 12)
	res := PACFL{P: 3}.Run(env)
	nParams := env.NewModel().NumParams()
	n := len(env.Clients)
	// Round-0 sketch upload must be far below one full model per client.
	sketchBytes := res.ClusterFormationUpBytes
	fullBytes := int64(n) * (fl.CommPricing{}).UploadBytesFor(nParams)
	if sketchBytes >= fullBytes {
		t.Fatalf("PACFL sketch upload %d not below full model upload %d", sketchBytes, fullBytes)
	}
}

func TestClusteredBeatGlobalOnGroupedData(t *testing.T) {
	// The paper's central comparison in miniature: on two-group data,
	// IFCA/PACFL (served cluster models) must beat FedAvg (one global
	// model) in personalized accuracy.
	envA, _ := groupEnv(t, 3, 5, 13)
	envB, _ := groupEnv(t, 3, 5, 13)
	avg := FedAvg{}.Run(envA)
	ifca := IFCA{K: 2}.Run(envB)
	if ifca.FinalAcc <= avg.FinalAcc {
		t.Fatalf("IFCA (%v) should beat FedAvg (%v) on grouped data", ifca.FinalAcc, avg.FinalAcc)
	}
}

package methods

import (
	"math"

	"fedclust/internal/fl"
	"fedclust/internal/nn"
)

// IFCA (Iterative Federated Clustering Algorithm, Ghosh et al. 2020)
// maintains K cluster models. Every round the server broadcasts all K
// models; each client picks the one with the lowest loss on its local
// training data, trains it, and the server aggregates per cluster.
//
// IFCA's limitations — the ones FedClust targets — surface directly here:
// K must be chosen in advance, and the downlink carries K full models per
// client per round.
type IFCA struct {
	// K is the predefined number of clusters.
	K int
}

// Name implements fl.Trainer.
func (f IFCA) Name() string { return "IFCA" }

// Run implements fl.Trainer.
func (f IFCA) Run(env *fl.Env) *fl.Result {
	env.Validate()
	if f.K < 1 {
		panic("methods: IFCA requires K >= 1")
	}
	res := &fl.Result{Method: "IFCA"}
	n := len(env.Clients)
	// Initialize the K cluster models: model 0 from the canonical shared
	// initialization (so K=1 degenerates exactly to FedAvg) and the rest
	// from distinct random draws, per standard IFCA practice.
	models := make([][]float64, f.K)
	models[0] = nn.FlattenParams(env.NewModel())
	for k := 1; k < f.K; k++ {
		m := env.Factory(envRng(env, 0x1fca, uint64(k)))
		models[k] = nn.FlattenParams(m)
	}
	nParams := len(models[0])
	choice := make([]int, n)
	locals := make([][]float64, n)
	losses := make([]float64, n)
	prevChoice := make([]int, n)
	for i := range prevChoice {
		prevChoice[i] = -1
	}
	lastChange := 0

	for round := 0; round < env.Rounds; round++ {
		// Broadcast all K models to every client.
		res.Comm.Download(n, f.K*nParams)
		env.ParallelClients(n, func(i int) {
			c := env.Clients[i]
			model := env.NewModel()
			// Pick the cluster with lowest local training loss.
			best, bestLoss := 0, math.Inf(1)
			for k := 0; k < f.K; k++ {
				nn.LoadParams(model, models[k])
				l, _ := fl.Evaluate(model, c.Train, 64)
				if l < bestLoss {
					best, bestLoss = k, l
				}
			}
			choice[i] = best
			nn.LoadParams(model, models[best])
			losses[i] = fl.LocalUpdate(model, c.Train, env.Local, env.ClientRng(i, round))
			locals[i] = nn.FlattenParams(model)
		})
		res.Comm.Upload(n, nParams)
		// Track when the clustering last changed (cluster-formation cost).
		for i := range choice {
			if choice[i] != prevChoice[i] {
				lastChange = round + 1
				break
			}
		}
		copy(prevChoice, choice)
		// Aggregate per cluster (clusters with no members keep their model).
		weights := env.TrainSizes()
		for k := 0; k < f.K; k++ {
			var vecs [][]float64
			var ws []float64
			for i := 0; i < n; i++ {
				if choice[i] == k {
					vecs = append(vecs, locals[i])
					ws = append(ws, weights[i])
				}
			}
			if len(vecs) > 0 {
				models[k] = fl.WeightedAverage(vecs, ws)
			}
		}
		res.Comm.EndRound(round + 1)

		if env.ShouldEval(round) {
			served := make([]*nn.Sequential, f.K)
			for k := range served {
				served[k] = env.NewModel()
				nn.LoadParams(served[k], models[k])
			}
			per, acc, loss := env.EvaluatePersonalized(func(i int) *nn.Sequential { return served[choice[i]] })
			res.History = append(res.History, fl.RoundMetrics{Round: round + 1, MeanAcc: acc, MeanLoss: loss})
			res.PerClientAcc, res.FinalAcc, res.FinalLoss = per, acc, loss
		}
	}
	res.Clusters = append([]int(nil), choice...)
	res.ClusterFormationRound = lastChange
	res.ClusterFormationUpBytes = clusterFormationUp(&res.Comm, lastChange)
	return res
}

// clusterFormationUp sums uplink bytes over the first `rounds` rounds.
func clusterFormationUp(c *fl.CommStats, rounds int) int64 {
	var up int64
	for _, r := range c.PerRound {
		if r.Round > rounds {
			break
		}
		up += r.UpBytes
	}
	return up
}

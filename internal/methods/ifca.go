package methods

import (
	"math"

	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/nn"
)

// IFCA (Iterative Federated Clustering Algorithm, Ghosh et al. 2020)
// maintains K cluster models. Every round the server broadcasts all K
// models; each client picks the one with the lowest loss on its local
// training data, trains it, and the server aggregates per cluster.
//
// IFCA's limitations — the ones FedClust targets — surface directly here:
// K must be chosen in advance, and the downlink carries K full models per
// client per round.
type IFCA struct {
	// K is the predefined number of clusters.
	K int
}

// Name implements fl.Trainer.
func (f IFCA) Name() string { return "IFCA" }

// Run implements fl.Trainer.
func (f IFCA) Run(env *fl.Env) *fl.Result {
	if f.K < 1 {
		panic("methods: IFCA requires K >= 1")
	}
	d := engine.New(env, "IFCA")
	d.FullParticipation = true
	n := len(env.Clients)
	// Initialize the K cluster models: model 0 from the canonical shared
	// initialization (so K=1 degenerates exactly to FedAvg) and the rest
	// from distinct random draws, per standard IFCA practice.
	models := make([][]float64, f.K)
	models[0] = d.InitParams()
	for k := 1; k < f.K; k++ {
		m := env.Factory(envRng(env, 0x1fca, uint64(k)))
		models[k] = nn.FlattenParams(m)
	}
	choice := make([]int, n)
	prevChoice := make([]int, n)
	for i := range prevChoice {
		prevChoice[i] = -1
	}
	lastChange := 0

	// Broadcast all K models to every client.
	d.Hooks.DownlinkPerClient = func(int) int { return f.K * d.NumParams }
	d.Hooks.Local = func(ctx *engine.ClientCtx) {
		// The hostile view (if any): cluster selection and training both
		// read the data the client actually holds this round.
		train := ctx.TrainData()
		// Pick the cluster with lowest local training loss.
		best, bestLoss := 0, math.Inf(1)
		for k := 0; k < f.K; k++ {
			nn.LoadParams(ctx.Model, models[k])
			l, _ := ctx.Scratch.Evaluate(ctx.Model, train, 64)
			if l < bestLoss {
				best, bestLoss = k, l
			}
		}
		choice[ctx.Client] = best
		nn.LoadParams(ctx.Model, models[best])
		ctx.Scratch.LocalUpdate(ctx.Model, train, ctx.LocalConfig(), ctx.VisitRng())
		nn.FlattenParamsInto(ctx.Model, ctx.Out)
		// IFCA sets no Broadcast hook, so give compression and corruption
		// their proper reference point: the cluster model the client
		// trained from. (The K-model selection pass itself stays exact —
		// IFCA never routes remote, so there is no wire image of the
		// evaluation downloads to mirror.)
		ctx.Start = models[best]
		ctx.CompressUplink()
		ctx.CorruptUplink()
		ctx.Start = nil
	}
	d.Hooks.Aggregate = func(round int, reported []int) {
		// Track when the clustering last changed (cluster-formation cost).
		for i := range choice {
			if choice[i] != prevChoice[i] {
				lastChange = round + 1
				break
			}
		}
		copy(prevChoice, choice)
		// Aggregate per cluster (clusters with no members keep their model).
		for k := 0; k < f.K; k++ {
			vecs, ws := d.GatherCluster(choice, k)
			if len(vecs) > 0 {
				d.Combine(models[k], vecs, ws)
			}
		}
	}
	d.Hooks.Served = func(i int) []float64 { return models[choice[i]] }
	// Checkpoint state: the K cluster models, the current and previous
	// round's picks, and the formation tracker. choice itself feeds both
	// Served (this round's picks) and the next round's change detection,
	// so both slices are state.
	d.Hooks.SaveState = func(ck *fl.Checkpoint) {
		flat := make([]float64, 0, f.K*d.NumParams)
		for _, m := range models {
			flat = append(flat, m...)
		}
		ck.SetVec("ifca/models", flat)
		ck.SetIntSlice("ifca/choice", choice)
		ck.SetIntSlice("ifca/prev", prevChoice)
		ck.SetInts("ifca/meta", []int64{int64(lastChange)})
	}
	d.Hooks.LoadState = func(ck *fl.Checkpoint) error {
		flat, err := ck.Vec("ifca/models", f.K*d.NumParams)
		if err != nil {
			return err
		}
		ch, err := ck.IntSlice("ifca/choice", n)
		if err != nil {
			return err
		}
		prev, err := ck.IntSlice("ifca/prev", n)
		if err != nil {
			return err
		}
		meta, err := ck.Ints("ifca/meta", 1)
		if err != nil {
			return err
		}
		for k := range models {
			copy(models[k], flat[k*d.NumParams:(k+1)*d.NumParams])
		}
		copy(choice, ch)
		copy(prevChoice, prev)
		lastChange = int(meta[0])
		return nil
	}

	res := d.Run()
	res.Clusters = append([]int(nil), choice...)
	res.ClusterFormationRound = lastChange
	res.ClusterFormationUpBytes = clusterFormationUp(&res.Comm, lastChange)
	return res
}

// clusterFormationUp sums uplink bytes over the first `rounds` rounds.
func clusterFormationUp(c *fl.CommStats, rounds int) int64 {
	var up int64
	for _, r := range c.PerRound {
		if r.Round > rounds {
			break
		}
		up += r.UpBytes
	}
	return up
}

package methods

import (
	"fmt"
	"math"

	"fedclust/internal/engine"
	"fedclust/internal/fl"
)

// FedAvgStale is FedAvg with stale-update decay: the server caches every
// client's most recent model *update* (its delta against the weights it
// was sent) and each round moves the global by the weighted mean of all
// cached updates, with a client's weight decayed by Beta per round of
// staleness. Fresh reports refresh their cache entry at staleness 0, so
// with everyone on time the step equals FedAvg's exactly (the weighted
// mean of client parameters is the broadcast point plus the weighted
// mean of their deltas); under dropout, missing clients keep steering
// the global through their decayed last-known direction instead of
// vanishing from the average — the memory-augmented FedAvg family
// (MIFA-style).
type FedAvgStale struct {
	// Beta is the per-round staleness decay of cached updates (default
	// 0.5): an update s rounds old counts with Beta^s of its weight.
	Beta float64
	// MaxStaleness discards cached updates older than this many rounds
	// (default 5).
	MaxStaleness int
}

// Name implements fl.Trainer.
func (s FedAvgStale) Name() string { return "FedAvgStale" }

func (s FedAvgStale) defaults() FedAvgStale {
	if s.Beta == 0 {
		s.Beta = 0.5
	}
	if s.MaxStaleness == 0 {
		s.MaxStaleness = 5
	}
	return s
}

// Run implements fl.Trainer.
func (s FedAvgStale) Run(env *fl.Env) *fl.Result {
	s = s.defaults()
	d := engine.New(env, "FedAvgStale")
	// Rounds where every device misses the deadline still step the
	// global from the cached updates (they age, the mean shifts).
	d.AggregateEmptyRounds = true
	d.Res.ClusterFormationRound = -1
	global := d.InitGlobal()
	starts := d.StartsBuf()
	n := len(env.Clients)

	// cache[i] is client i's last reported update (delta against the
	// weights it trained from; one arena), cachedAt[i] the round it
	// reported (-1: never).
	arena := make([]float64, n*d.NumParams)
	cache := make([][]float64, n)
	cachedAt := make([]int, n)
	cacheW := make([]float64, n) // report weight at caching time (partial work)
	for i := range cache {
		cache[i] = arena[i*d.NumParams : (i+1)*d.NumParams]
		cachedAt[i] = -1
	}
	sum := make([]float64, d.NumParams)
	// Robust-mode gather scratch: the eligible cached deltas and their
	// decayed weights, handed to the environment's Aggregator.
	var rvecs [][]float64
	var rws []float64

	d.Hooks.Broadcast = func(round int) [][]float64 {
		for i := range starts {
			starts[i] = global
		}
		return starts
	}
	d.Hooks.Aggregate = func(round int, reported []int) {
		// Refresh the cache from this round's reports. global still holds
		// the broadcast weights during Aggregate (it moves only below),
		// so Locals[i] − global is the update the client computed.
		for _, i := range reported {
			fl.DeltaInto(cache[i], d.Locals[i], global)
			cachedAt[i] = round
			cacheW[i] = d.ReportWeight(i)
		}
		// Step by the staleness-decayed weighted mean of all cached
		// updates. Fresh entries (age 0, decay 1) carry their partial-
		// work-scaled weight; stale ones fade by Beta per round and are
		// dropped past MaxStaleness.
		if env.Aggregator != nil {
			// Robust path: the step is the Aggregator's combine of the
			// eligible cached deltas under the same decayed weights —
			// a poisoned cache entry keeps steering a plain mean for
			// MaxStaleness rounds, so the defense matters doubly here.
			rvecs, rws = rvecs[:0], rws[:0]
			var totalW float64
			for i := 0; i < n; i++ {
				if cachedAt[i] < 0 || round-cachedAt[i] > s.MaxStaleness {
					continue
				}
				w := cacheW[i]
				if age := round - cachedAt[i]; age > 0 {
					w *= math.Pow(s.Beta, float64(age))
				}
				totalW += w
				rvecs = append(rvecs, cache[i])
				rws = append(rws, w)
			}
			if len(rvecs) == 0 || totalW <= 0 {
				return
			}
			// Combine treats dst as the combine's starting point; the
			// cached entries are already deltas, so the start is zero.
			for j := range sum {
				sum[j] = 0
			}
			d.Combine(sum, rvecs, rws)
			for j := range global {
				global[j] += sum[j]
			}
			return
		}
		var totalW float64
		for j := range sum {
			sum[j] = 0
		}
		for i := 0; i < n; i++ {
			if cachedAt[i] < 0 {
				continue
			}
			age := round - cachedAt[i]
			if age > s.MaxStaleness {
				continue
			}
			w := cacheW[i]
			if age > 0 {
				w *= math.Pow(s.Beta, float64(age))
			}
			totalW += w
			for j, v := range cache[i] {
				sum[j] += w * v
			}
		}
		if totalW <= 0 {
			return
		}
		for j := range global {
			global[j] += sum[j] / totalW
		}
	}
	d.Hooks.Served = func(int) []float64 { return global }
	// Checkpoint state: the global model plus the whole staleness cache —
	// every client's last update, when it reported, and the weight it
	// carried. sum is per-Aggregate scratch, not state.
	d.Hooks.SaveState = func(ck *fl.Checkpoint) {
		ck.SetVec(secGlobal, global)
		ck.SetVec("stale/cache", arena)
		ck.SetIntSlice("stale/cached_at", cachedAt)
		ck.SetVec("stale/cache_w", cacheW)
	}
	d.Hooks.LoadState = func(ck *fl.Checkpoint) error {
		g, err := ck.Vec(secGlobal, d.NumParams)
		if err != nil {
			return err
		}
		ca, err := ck.Vec("stale/cache", n*d.NumParams)
		if err != nil {
			return err
		}
		at, err := ck.IntSlice("stale/cached_at", n)
		if err != nil {
			return err
		}
		cw, err := ck.Vec("stale/cache_w", n)
		if err != nil {
			return err
		}
		copy(global, g)
		copy(arena, ca)
		copy(cachedAt, at)
		copy(cacheW, cw)
		return nil
	}
	return d.Run()
}

// FedBuff is a buffered semi-asynchronous FedAvg (after Nguyen et al.'s
// FedBuff): the server never waits for stragglers. Clients train their
// full local pass against the global model of the round they started;
// on-time updates arrive immediately, slow clients' updates arrive lag
// rounds later. Every arrival pushes a model delta into a buffer, and
// whenever the buffer holds Goal updates the server applies their
// staleness-decayed weighted mean: w ← w + ServerLR · Σ βˢᵢwᵢΔᵢ / Σ βˢᵢwᵢ.
//
// Runs under a Participation.Scenario in the engine's Async mode; without
// a scenario every update arrives on time and FedBuff is a buffered
// delta-form FedAvg.
type FedBuff struct {
	// Goal is the buffer size that triggers a server step (default:
	// half the population, at least 1).
	Goal int
	// Beta is the per-round staleness decay of a buffered delta's weight
	// (default 0.5).
	Beta float64
	// ServerLR scales the applied buffered mean delta. Default Goal/n,
	// so the n/Goal server steps of a fully-on-time round move the
	// global by one full mean update — matching FedAvg's step size.
	ServerLR float64
}

// Name implements fl.Trainer.
func (f FedBuff) Name() string { return "FedBuff" }

// pendingUpdate is one in-flight client update: the delta it will
// deliver, the round it will arrive, and the round it trained on.
type pendingUpdate struct {
	delta   []float64
	arrives int
	trained int
}

// Run implements fl.Trainer.
func (f FedBuff) Run(env *fl.Env) *fl.Result {
	n := len(env.Clients)
	if f.Goal == 0 {
		f.Goal = n / 2
	}
	if f.Goal < 1 {
		f.Goal = 1
	}
	if f.Beta == 0 {
		f.Beta = 0.5
	}
	if f.ServerLR == 0 {
		f.ServerLR = float64(f.Goal) / float64(n)
	}
	d := engine.New(env, "FedBuff")
	d.Async = true
	d.Res.ClusterFormationRound = -1
	global := d.InitGlobal()
	starts := d.StartsBuf()
	// base is the broadcast snapshot deltas are taken against; the global
	// itself moves mid-schedule whenever the buffer flushes.
	base := make([]float64, d.NumParams)

	// One update slot per client. A device stays busy from the moment it
	// finishes a pass until the server folds that update in — a busy
	// device's new training rounds are discarded (it was working on the
	// old pass), which also keeps the slot's delta stable while a
	// buffered entry still references it.
	pending := make([]pendingUpdate, n)
	pendArena := make([]float64, n*d.NumParams)
	for i := range pending {
		pending[i] = pendingUpdate{delta: pendArena[i*d.NumParams : (i+1)*d.NumParams], arrives: -1}
	}
	busy := make([]bool, n)
	rep := make([]bool, n) // this round's reported set, rebuilt per Aggregate
	type buffered struct {
		client    int
		staleness int
	}
	var buffer []buffered
	sum := make([]float64, d.NumParams)
	// Robust-mode gather scratch for the buffered deltas.
	var rvecs [][]float64
	var rws []float64

	flush := func() {
		if env.Aggregator != nil {
			// Robust path: the buffered deltas go through the Aggregator
			// under their staleness-decayed weights, and the server steps
			// by ServerLR times the robust combine — a garbage delta
			// sitting in the buffer cannot own the flush.
			rvecs, rws = rvecs[:0], rws[:0]
			var totalW float64
			for _, b := range buffer {
				w := d.Weights[b.client] * math.Pow(f.Beta, float64(b.staleness))
				totalW += w
				rvecs = append(rvecs, pending[b.client].delta)
				rws = append(rws, w)
				busy[b.client] = false
			}
			if totalW <= 0 {
				return
			}
			// The buffered entries are already deltas: zero start.
			for j := range sum {
				sum[j] = 0
			}
			d.Combine(sum, rvecs, rws)
			for j := range global {
				global[j] += f.ServerLR * sum[j]
			}
			return
		}
		var totalW float64
		for j := range sum {
			sum[j] = 0
		}
		for _, b := range buffer {
			w := d.Weights[b.client] * math.Pow(f.Beta, float64(b.staleness))
			totalW += w
			for j, v := range pending[b.client].delta {
				sum[j] += w * v
			}
			busy[b.client] = false
		}
		if totalW <= 0 {
			return
		}
		scale := f.ServerLR / totalW
		for j := range global {
			global[j] += scale * sum[j]
		}
	}

	d.Hooks.Broadcast = func(round int) [][]float64 {
		copy(base, global)
		for i := range starts {
			starts[i] = global
		}
		return starts
	}
	// Busy devices (an undelivered earlier pass) skip this round's
	// training outright — Aggregate would discard it anyway, and local
	// passes dominate simulation cost. busy only changes in Aggregate,
	// after the parallel phase, so concurrent reads here are safe and
	// worker-count independent.
	d.Hooks.Local = func(ctx *engine.ClientCtx) {
		if busy[ctx.Client] {
			return
		}
		engine.DefaultLocal(ctx)
	}
	d.Hooks.Aggregate = func(round int, reported []int) {
		// Deliveries due this round from passes started earlier, in
		// client order so the fold is independent of executor scheduling.
		// The engine's uplink accounting covers only on-time reports, so
		// late arrivals are charged here — stragglers' updates cost their
		// bytes in the round they land.
		late := 0
		for i := 0; i < n; i++ {
			if pending[i].arrives != round {
				continue
			}
			buffer = append(buffer, buffered{client: i, staleness: round - pending[i].trained})
			pending[i].arrives = -1
			late++
		}
		d.Res.Comm.Upload(late, d.NumParams)
		// This round's trainees: on-time clients deliver immediately,
		// slow ones go in flight for lag rounds. Busy devices (an earlier
		// pass not yet folded in) discard this round's work. On-time
		// delivery additionally requires membership in the engine's
		// reported set, so Participation.DropRate crash losses hit FedBuff
		// like every other method; in-flight deliveries model the
		// transport the crash draw does not cover.
		for i := range rep {
			rep[i] = false
		}
		for _, i := range reported {
			rep[i] = true
		}
		busySkipped := 0
		for _, i := range d.InvitedThisRound() {
			_, lag := d.ScenarioOutcome(i)
			if lag == 0 && rep[i] && busy[i] {
				busySkipped++ // charged as reporting, but delivered nothing
			}
			if lag < 0 || busy[i] || (lag == 0 && !rep[i]) {
				continue
			}
			fl.DeltaInto(pending[i].delta, d.Locals[i], base)
			pending[i].trained = round
			busy[i] = true
			if lag == 0 {
				buffer = append(buffer, buffered{client: i, staleness: 0})
			} else {
				pending[i].arrives = round + lag
			}
		}
		// The engine charged every reported client's upload; busy devices
		// skipped training and sent nothing, so refund theirs.
		d.Res.Comm.Upload(-busySkipped, d.NumParams)
		// Apply server steps for every full buffer; the final round
		// flushes whatever has arrived so late work is not silently lost.
		for len(buffer) >= f.Goal {
			rest := buffer[f.Goal:]
			buffer = buffer[:f.Goal]
			flush()
			buffer = append(buffer[:0], rest...)
		}
		if round == env.Rounds-1 && len(buffer) > 0 {
			flush()
			buffer = buffer[:0]
		}
	}
	d.Hooks.Served = func(int) []float64 { return global }
	// Checkpoint state: the global model, every in-flight pass (delta
	// arena + arrival/training rounds + busy flags), and the undersized
	// buffer awaiting its Goal-th entry. base is rebuilt by the next
	// round's Broadcast and sum is scratch, so neither is state.
	d.Hooks.SaveState = func(ck *fl.Checkpoint) {
		ck.SetVec(secGlobal, global)
		ck.SetVec("fedbuff/deltas", pendArena)
		arrives := make([]int64, n)
		trained := make([]int64, n)
		busyW := make([]int64, n)
		for i := 0; i < n; i++ {
			arrives[i] = int64(pending[i].arrives)
			trained[i] = int64(pending[i].trained)
			if busy[i] {
				busyW[i] = 1
			}
		}
		ck.SetInts("fedbuff/arrives", arrives)
		ck.SetInts("fedbuff/trained", trained)
		ck.SetInts("fedbuff/busy", busyW)
		bufClient := make([]int64, len(buffer))
		bufStale := make([]int64, len(buffer))
		for i, b := range buffer {
			bufClient[i], bufStale[i] = int64(b.client), int64(b.staleness)
		}
		ck.SetInts("fedbuff/buf_client", bufClient)
		ck.SetInts("fedbuff/buf_stale", bufStale)
	}
	d.Hooks.LoadState = func(ck *fl.Checkpoint) error {
		g, err := ck.Vec(secGlobal, d.NumParams)
		if err != nil {
			return err
		}
		deltas, err := ck.Vec("fedbuff/deltas", n*d.NumParams)
		if err != nil {
			return err
		}
		arrives, err := ck.Ints("fedbuff/arrives", n)
		if err != nil {
			return err
		}
		trained, err := ck.Ints("fedbuff/trained", n)
		if err != nil {
			return err
		}
		busyW, err := ck.Ints("fedbuff/busy", n)
		if err != nil {
			return err
		}
		bufClient, err := ck.Ints("fedbuff/buf_client", -1)
		if err != nil {
			return err
		}
		bufStale, err := ck.Ints("fedbuff/buf_stale", len(bufClient))
		if err != nil {
			return err
		}
		for _, c := range bufClient {
			if c < 0 || int(c) >= n {
				return fmt.Errorf("fedbuff: checkpoint buffers unknown client %d", c)
			}
		}
		copy(global, g)
		copy(pendArena, deltas)
		for i := 0; i < n; i++ {
			pending[i].arrives = int(arrives[i])
			pending[i].trained = int(trained[i])
			busy[i] = busyW[i] != 0
		}
		buffer = buffer[:0]
		for i := range bufClient {
			buffer = append(buffer, buffered{client: int(bufClient[i]), staleness: int(bufStale[i])})
		}
		return nil
	}
	return d.Run()
}

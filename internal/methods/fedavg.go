// Package methods implements the baseline federated-learning algorithms
// the paper compares FedClust against: FedAvg (McMahan et al. 2017),
// FedProx (Li et al. 2020), CFL (Sattler et al. 2020), IFCA (Ghosh et al.
// 2020), and PACFL (Vahidian et al. 2022). All of them run on the shared
// fl.Env substrate so comparisons are apples to apples.
package methods

import (
	"fedclust/internal/fl"
	"fedclust/internal/nn"
)

// FedAvg is the classic single-global-model algorithm: every round all
// clients train locally from the global weights and the server takes the
// sample-weighted average.
type FedAvg struct{}

// Name implements fl.Trainer.
func (FedAvg) Name() string { return "FedAvg" }

// Run implements fl.Trainer. It honors the environment's Participation
// settings: each round a (possibly partial) client set is invited, some
// invited clients may fail to report, and the server averages whoever
// reported (McMahan et al.'s original protocol).
func (FedAvg) Run(env *fl.Env) *fl.Result {
	env.Validate()
	res := &fl.Result{Method: "FedAvg", ClusterFormationRound: -1}
	global := nn.FlattenParams(env.NewModel())
	nParams := len(global)
	n := len(env.Clients)
	weights := env.TrainSizes()
	locals := make([][]float64, n)

	for round := 0; round < env.Rounds; round++ {
		invited, reported := env.SampleRound(round)
		res.Comm.Download(len(invited), nParams)
		env.ParallelClients(len(invited), func(j int) {
			i := invited[j]
			model := env.NewModel()
			nn.LoadParams(model, global)
			fl.LocalUpdate(model, env.Clients[i].Train, env.Local, env.ClientRng(i, round))
			locals[i] = nn.FlattenParams(model)
		})
		res.Comm.Upload(len(reported), nParams)
		vecs := make([][]float64, len(reported))
		ws := make([]float64, len(reported))
		for j, i := range reported {
			vecs[j], ws[j] = locals[i], weights[i]
		}
		global = fl.WeightedAverage(vecs, ws)
		res.Comm.EndRound(round + 1)

		if env.ShouldEval(round) {
			model := env.NewModel()
			nn.LoadParams(model, global)
			per, acc, loss := env.EvaluatePersonalized(func(int) *nn.Sequential { return model })
			res.History = append(res.History, fl.RoundMetrics{Round: round + 1, MeanAcc: acc, MeanLoss: loss})
			res.PerClientAcc, res.FinalAcc, res.FinalLoss = per, acc, loss
		}
	}
	return res
}

// FedProx is FedAvg with a proximal term μ/2·‖w − w_global‖² added to each
// client's local objective, stabilizing training under heterogeneity.
type FedProx struct {
	// Mu is the proximal coefficient (the paper's baseline; typical
	// values 0.01–1).
	Mu float64
}

// Name implements fl.Trainer.
func (p FedProx) Name() string { return "FedProx" }

// Run implements fl.Trainer.
func (p FedProx) Run(env *fl.Env) *fl.Result {
	// FedProx is FedAvg with the proximal term switched on in the local
	// config; reuse the FedAvg loop with an adjusted environment.
	proxEnv := *env
	proxEnv.Local.ProxMu = p.Mu
	res := FedAvg{}.Run(&proxEnv)
	res.Method = "FedProx"
	return res
}

// Package methods implements the baseline federated-learning algorithms
// the paper compares FedClust against: FedAvg (McMahan et al. 2017),
// FedProx (Li et al. 2020), CFL (Sattler et al. 2020), IFCA (Ghosh et al.
// 2020), and PACFL (Vahidian et al. 2022). All of them run on the shared
// fl.Env substrate through engine.RoundDriver, so comparisons are apples
// to apples and every method inherits the engine's model pool and
// flat-parameter arenas.
package methods

import (
	"fedclust/internal/engine"
	"fedclust/internal/fl"
)

// secGlobal is the checkpoint section holding a single-global-model
// method's server state.
const secGlobal = "global"

// runGlobalModel is the shared single-global-model loop behind FedAvg and
// FedProx: broadcast the global weights, average whoever reported, serve
// the global model to everyone — with the global vector as the only
// cross-round server state, checkpointed under one section.
func runGlobalModel(env *fl.Env, name string) *fl.Result {
	d := engine.New(env, name)
	d.Res.ClusterFormationRound = -1
	// Both buffers are per-environment scratch recycled across runs, so
	// a warm run allocates no server-side state.
	global := d.InitGlobal()
	starts := d.StartsBuf()

	d.Hooks.Broadcast = func(round int) [][]float64 {
		for i := range starts {
			starts[i] = global
		}
		return starts
	}
	d.Hooks.Aggregate = func(round int, reported []int) {
		vecs, ws := d.Gather(reported)
		// The clients read global only during the (finished) parallel
		// phase and report into separate arena slots, so averaging in
		// place is safe.
		d.Combine(global, vecs, ws)
	}
	d.Hooks.Served = func(int) []float64 { return global }
	d.Hooks.SaveState = func(c *fl.Checkpoint) { c.SetVec(secGlobal, global) }
	d.Hooks.LoadState = func(c *fl.Checkpoint) error {
		v, err := c.Vec(secGlobal, d.NumParams)
		if err != nil {
			return err
		}
		copy(global, v)
		return nil
	}
	return d.Run()
}

// FedAvg is the classic single-global-model algorithm: every round all
// clients train locally from the global weights and the server takes the
// sample-weighted average.
type FedAvg struct{}

// Name implements fl.Trainer.
func (FedAvg) Name() string { return "FedAvg" }

// Run implements fl.Trainer. It honors the environment's Participation
// settings: each round a (possibly partial) client set is invited, some
// invited clients may fail to report, and the server averages whoever
// reported (McMahan et al.'s original protocol).
func (FedAvg) Run(env *fl.Env) *fl.Result {
	return runGlobalModel(env, "FedAvg")
}

// FedProx is FedAvg with a proximal term μ/2·‖w − w_global‖² added to each
// client's local objective, stabilizing training under heterogeneity.
type FedProx struct {
	// Mu is the proximal coefficient (the paper's baseline; typical
	// values 0.01–1).
	Mu float64
}

// Name implements fl.Trainer.
func (p FedProx) Name() string { return "FedProx" }

// Run implements fl.Trainer.
func (p FedProx) Run(env *fl.Env) *fl.Result {
	// FedProx is FedAvg with the proximal term switched on in the local
	// config; reuse the shared loop with an adjusted environment. Create
	// the shared scratch holder before copying so the copy shares it —
	// otherwise the cached engine runtime would land on the throwaway
	// copy and be rebuilt every run. Running under the method's own name
	// (instead of renaming afterward) also stamps checkpoints correctly.
	env.Shared()
	proxEnv := *env
	proxEnv.Local.ProxMu = p.Mu
	return runGlobalModel(&proxEnv, "FedProx")
}

package methods

import (
	"fmt"

	"fedclust/internal/cluster"
	"fedclust/internal/engine"
	"fedclust/internal/fl"
	"fedclust/internal/linalg"
	"fedclust/internal/tensor"
)

// CFL (Clustered Federated Learning, Sattler et al. 2020) starts with all
// clients in one FedAvg cluster and recursively bi-partitions a cluster
// when its aggregate update has nearly converged (‖mean Δ‖ small) while
// individual clients still disagree (max ‖Δᵢ‖ large). The split uses the
// sign structure of the pairwise cosine similarity of client updates.
//
// Because splits can only happen after a cluster's mean update stalls,
// stable clusters take many rounds to form — the communication-cost
// weakness the paper contrasts FedClust against.
type CFL struct {
	// Eps1 is the disagreement threshold: a cluster is split only when
	// ‖mean Δ‖ / max‖Δᵢ‖ < Eps1, i.e. individual clients still push hard
	// in directions that cancel in the average (default 0.12). Sattler et
	// al. split only near such stationary points, which is what makes
	// CFL's cluster formation slow — the property the paper critiques.
	Eps1 float64
	// Eps2 guards against splitting after genuine convergence: a split
	// also requires max‖Δᵢ‖ > Eps2 · (round-0 max update norm), so
	// clusters whose members have all stopped moving are left alone
	// (default 0.4).
	Eps2 float64
	// MinClusterSize blocks splits that would create clusters smaller
	// than this (default 2).
	MinClusterSize int
	// WarmupRounds disables splitting for the first rounds (default 5).
	WarmupRounds int
}

// Name implements fl.Trainer.
func (CFL) Name() string { return "CFL" }

func (c CFL) defaults() CFL {
	if c.Eps1 == 0 {
		c.Eps1 = 0.12
	}
	if c.Eps2 == 0 {
		c.Eps2 = 0.4
	}
	if c.MinClusterSize == 0 {
		c.MinClusterSize = 2
	}
	if c.WarmupRounds == 0 {
		c.WarmupRounds = 5
	}
	return c
}

// Run implements fl.Trainer.
func (c CFL) Run(env *fl.Env) *fl.Result {
	c = c.defaults()
	d := engine.New(env, "CFL")
	d.FullParticipation = true
	n := len(env.Clients)
	// assign[i] = cluster id of client i; models[id] = flat params.
	assign := make([]int, n)
	models := map[int][]float64{0: d.InitParams()}
	starts := make([][]float64, n)
	// deltas[i] is client i's update this round, in one contiguous arena.
	deltaArena := make([]float64, n*d.NumParams)
	deltas := make([][]float64, n)
	for i := range deltas {
		deltas[i] = deltaArena[i*d.NumParams : (i+1)*d.NumParams]
	}
	lastChange := 0
	// refNorm is the max client-update norm of the first aggregated
	// round: the scale reference for the Eps2 convergence guard. Without
	// a scenario that is always round 0; under one, the first round where
	// anything arrived (a round with no reports skips Aggregate, and
	// anchoring on it would freeze refNorm at 0 and disable splitting
	// forever).
	refRound := -1
	var refNorm float64

	d.Hooks.Broadcast = func(round int) [][]float64 {
		for i := range starts {
			starts[i] = models[assign[i]]
		}
		return starts
	}
	d.Hooks.Local = func(ctx *engine.ClientCtx) {
		engine.DefaultLocal(ctx)
		fl.DeltaInto(deltas[ctx.Client], ctx.Out, ctx.Start)
	}
	d.Hooks.Aggregate = func(round int, reported []int) {
		if refRound < 0 {
			refRound = round
		}
		// Aggregate per cluster, then consider splitting each cluster.
		ids := clusterIDs(assign)
		for _, id := range ids {
			members := membersOf(assign, id)
			// Split statistics may only use updates that actually
			// arrived this round — deltas of scenario stragglers,
			// dropouts, and transport-failed remote visits are stale
			// (or never written). Reported covers all three (and is
			// uniformly true on a plain round, making this a no-op);
			// membersOf returns a fresh slice, so filtering in place
			// is safe.
			arrived := members[:0]
			for _, i := range members {
				if d.Reported(i) {
					arrived = append(arrived, i)
				}
			}
			members = arrived
			vecs, ws := d.GatherCluster(assign, id)
			if len(vecs) == 0 {
				continue // every member missed the deadline this round
			}
			d.Combine(models[id], vecs, ws)

			// Split criterion on this cluster's updates.
			meanDelta := meanOf(deltas, members)
			meanNorm := fl.L2Norm(meanDelta)
			maxNorm := 0.0
			for _, i := range members {
				if v := fl.L2Norm(deltas[i]); v > maxNorm {
					maxNorm = v
				}
			}
			if round == refRound && maxNorm > refNorm {
				refNorm = maxNorm
			}
			if round < c.WarmupRounds || len(members) < 2*c.MinClusterSize || refNorm == 0 || maxNorm == 0 {
				continue
			}
			if meanNorm/maxNorm < c.Eps1 && maxNorm > c.Eps2*refNorm {
				// Bi-partition members by cosine similarity of updates.
				sim := cosineSimilarity(deltas, members)
				split := cluster.SpectralBipartition(sim)
				sizeA, sizeB := 0, 0
				for _, s := range split {
					if s == 0 {
						sizeA++
					} else {
						sizeB++
					}
				}
				if sizeA < c.MinClusterSize || sizeB < c.MinClusterSize {
					continue
				}
				newID := maxID(assign) + 1
				for j, i := range members {
					if split[j] == 1 {
						assign[i] = newID
					}
				}
				models[newID] = append([]float64(nil), models[id]...)
				lastChange = round + 1
			}
		}
	}
	d.Hooks.Served = func(i int) []float64 { return models[assign[i]] }
	// Checkpoint state: the assignment, every live cluster model (in
	// ascending-id order so the layout is deterministic), and the split
	// machinery's reference scale. The deltas arena is per-round scratch —
	// fully rewritten before Aggregate reads it — so it is not state.
	d.Hooks.SaveState = func(ck *fl.Checkpoint) {
		ids := clusterIDs(assign)
		ck.SetIntSlice("cfl/ids", ids)
		ck.SetIntSlice("cfl/assign", assign)
		flat := make([]float64, 0, len(ids)*d.NumParams)
		for _, id := range ids {
			flat = append(flat, models[id]...)
		}
		ck.SetVec("cfl/models", flat)
		ck.SetInts("cfl/meta", []int64{int64(lastChange), int64(refRound)})
		ck.SetVec("cfl/ref", []float64{refNorm})
	}
	d.Hooks.LoadState = func(ck *fl.Checkpoint) error {
		ids, err := ck.IntSlice("cfl/ids", -1)
		if err != nil {
			return err
		}
		asg, err := ck.IntSlice("cfl/assign", n)
		if err != nil {
			return err
		}
		flat, err := ck.Vec("cfl/models", len(ids)*d.NumParams)
		if err != nil {
			return err
		}
		meta, err := ck.Ints("cfl/meta", 2)
		if err != nil {
			return err
		}
		ref, err := ck.Vec("cfl/ref", 1)
		if err != nil {
			return err
		}
		live := make(map[int]bool, len(ids))
		for _, id := range ids {
			live[id] = true
		}
		for _, a := range asg {
			if !live[a] {
				return fmt.Errorf("cfl: checkpoint assigns a client to unknown cluster %d", a)
			}
		}
		copy(assign, asg)
		for id := range models {
			delete(models, id)
		}
		for j, id := range ids {
			models[id] = append([]float64(nil), flat[j*d.NumParams:(j+1)*d.NumParams]...)
		}
		lastChange, refRound, refNorm = int(meta[0]), int(meta[1]), ref[0]
		return nil
	}

	res := d.Run()
	res.Clusters = canonicalLabels(assign)
	res.ClusterFormationRound = lastChange
	res.ClusterFormationUpBytes = clusterFormationUp(&res.Comm, lastChange)
	return res
}

// clusterIDs returns the distinct ids present, ascending.
func clusterIDs(assign []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, id := range assign {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	// insertion sort (few clusters)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func membersOf(assign []int, id int) []int {
	var out []int
	for i, a := range assign {
		if a == id {
			out = append(out, i)
		}
	}
	return out
}

func maxID(assign []int) int {
	m := 0
	for _, a := range assign {
		if a > m {
			m = a
		}
	}
	return m
}

func meanOf(vecs [][]float64, members []int) []float64 {
	out := make([]float64, len(vecs[members[0]]))
	for _, i := range members {
		for j, v := range vecs[i] {
			out[j] += v
		}
	}
	inv := 1 / float64(len(members))
	for j := range out {
		out[j] *= inv
	}
	return out
}

// cosineSimilarity builds the members×members cosine similarity matrix of
// their update vectors.
func cosineSimilarity(deltas [][]float64, members []int) *tensor.Tensor {
	m := len(members)
	sim := tensor.New(m, m)
	for a := 0; a < m; a++ {
		sim.Set(1, a, a)
		for b := a + 1; b < m; b++ {
			// cosine similarity = 1 - cosine distance
			d := linalg.VecDistance(linalg.Cosine, deltas[members[a]], deltas[members[b]])
			sim.Set(1-d, a, b)
			sim.Set(1-d, b, a)
		}
	}
	return sim
}

// canonicalLabels renumbers arbitrary ids to 0..k-1 by first appearance.
func canonicalLabels(assign []int) []int {
	out := make([]int, len(assign))
	next := 0
	seen := map[int]int{}
	for i, a := range assign {
		l, ok := seen[a]
		if !ok {
			l = next
			seen[a] = l
			next++
		}
		out[i] = l
	}
	return out
}

package methods

import (
	"fedclust/internal/fl"
	"fedclust/internal/rng"
)

// envRng derives a deterministic method-local stream from the
// environment's seed and the given labels.
func envRng(env *fl.Env, labels ...uint64) *rng.Rng {
	return rng.New(env.Seed).Derive(labels...)
}

package methods

import (
	"math"
	"testing"

	"fedclust/internal/fl"
	"fedclust/internal/scenario"
)

// TestFedAvgStaleMatchesFedAvgWhenIdeal: with every client on time and a
// full cache refresh each round, the stale-decay step is algebraically
// FedAvg's (broadcast point plus the weighted mean delta equals the
// weighted mean of client parameters). Floating-point association
// differs, so the accuracies must agree to tight tolerance rather than
// bit-exactly.
func TestFedAvgStaleMatchesFedAvgWhenIdeal(t *testing.T) {
	env, _ := groupEnv(t, 3, 4, 31)
	avg := FedAvg{}.Run(env)
	stale := FedAvgStale{}.Run(env)
	if math.Abs(avg.FinalAcc-stale.FinalAcc) > 1e-9 {
		t.Fatalf("ideal-world FedAvgStale diverged from FedAvg: %v vs %v",
			stale.FinalAcc, avg.FinalAcc)
	}
	if math.Abs(avg.FinalLoss-stale.FinalLoss) > 1e-6 {
		t.Fatalf("ideal-world loss diverged: %v vs %v", stale.FinalLoss, avg.FinalLoss)
	}
}

// TestFedAvgStaleSurvivesScenarioDropout: under heavy scenario dropout
// the cached-update server must keep learning.
func TestFedAvgStaleSurvivesScenarioDropout(t *testing.T) {
	env, _ := groupEnv(t, 3, 6, 32)
	env.Participation.Scenario = scenario.New(scenario.Config{
		StragglerFrac: 0.3, SlowdownMax: 4, DropoutRate: 0.5,
	}, 32, len(env.Clients))
	res := FedAvgStale{}.Run(env)
	checkBasicResult(t, res, env)
	if res.FinalAcc < 0.4 {
		t.Fatalf("accuracy under 50%% scenario dropout = %v", res.FinalAcc)
	}
	// Uplink shrinks with the reporting set.
	full := int64(env.Rounds) * int64(len(env.Clients)) *
		(fl.CommPricing{}).UploadBytesFor(env.NewModel().NumParams())
	if res.Comm.UpBytes >= full {
		t.Fatalf("uplink %d not reduced by scenario dropouts (full %d)", res.Comm.UpBytes, full)
	}
}

// TestFedBuffLearnsWhenEveryClientIsLate: with a deadline shorter than
// any client's full pass, the synchronous reported set is empty in async
// mode every round — progress can only come from late deliveries folding
// through the buffer. The run must still clear chance by a wide margin,
// proving the pending/arrival machinery works.
func TestFedBuffLearnsWhenEveryClientIsLate(t *testing.T) {
	env, _ := groupEnv(t, 3, 8, 33)
	env.Participation.Scenario = scenario.New(scenario.Config{
		StragglerFrac: 0, Deadline: 0.5, // nominal pass takes 1 > 0.5: all late
	}, 33, len(env.Clients))
	res := FedBuff{}.Run(env)
	checkBasicResult(t, res, env)
	if res.FinalAcc < 0.5 {
		t.Fatalf("FedBuff with all-late delivery reached only %v", res.FinalAcc)
	}
	// Nobody reports on time — all uplink bytes come from the late-
	// arrival accounting, and can never exceed one update per client per
	// round.
	full := int64(env.Rounds) * int64(len(env.Clients)) *
		(fl.CommPricing{}).UploadBytesFor(env.NewModel().NumParams())
	if res.Comm.UpBytes <= 0 || res.Comm.UpBytes >= full {
		t.Fatalf("late-arrival uplink %d outside (0, %d)", res.Comm.UpBytes, full)
	}
}

// TestFedBuffIdealApproximatesFedAvg: without a scenario FedBuff is a
// buffered delta-form FedAvg (Goal-sized server steps whose total per
// round matches one mean update); it should land near FedAvg, not match
// it bit-for-bit.
func TestFedBuffIdealApproximatesFedAvg(t *testing.T) {
	env, _ := groupEnv(t, 3, 6, 34)
	avg := FedAvg{}.Run(env)
	buff := FedBuff{}.Run(env)
	checkBasicResult(t, buff, env)
	if math.Abs(avg.FinalAcc-buff.FinalAcc) > 0.15 {
		t.Fatalf("ideal-world FedBuff too far from FedAvg: %v vs %v",
			buff.FinalAcc, avg.FinalAcc)
	}
}

// TestStragglersReportPartialWork: with a straggler cohort and no
// dropouts, stragglers report fewer completed epochs; the partial-work
// weighting keeps the run healthy, traffic stays at full participation,
// and the run is reproducible.
func TestStragglersReportPartialWork(t *testing.T) {
	env, _ := groupEnv(t, 3, 6, 35)
	m := scenario.New(scenario.Config{
		StragglerFrac: 0.5, SlowdownMax: 2, // pass ≤ 2: every straggler finishes ≥ 1 of 2 epochs
	}, 35, len(env.Clients))
	env.Participation.Scenario = m
	if m.Stragglers() == 0 {
		t.Skip("seed drew no stragglers")
	}
	// All stragglers complete at least one epoch under SlowdownMax 2, so
	// everyone reports and the uplink equals full participation.
	res := FedAvg{}.Run(env)
	checkBasicResult(t, res, env)
	full := int64(env.Rounds) * int64(len(env.Clients)) *
		(fl.CommPricing{}).UploadBytesFor(env.NewModel().NumParams())
	if res.Comm.UpBytes != full {
		t.Fatalf("uplink %d, want full %d: a straggler failed to report", res.Comm.UpBytes, full)
	}
	if res.FinalAcc < 0.4 {
		t.Fatalf("accuracy with partial-work stragglers = %v", res.FinalAcc)
	}
}

// onceScenario reports every client on time in round 0 and nobody ever
// after — the worst case for a synchronous server.
type onceScenario struct{}

func (onceScenario) Outcome(client, round, epochs int) (done, lag int) {
	if round == 0 {
		return epochs, 0
	}
	return 0, 1
}

// TestFedAvgStaleStepsOnEmptyRounds: rounds where nobody reports must
// still move the global — the cached round-0 updates keep stepping it
// (AggregateEmptyRounds). A frozen server would evaluate identically at
// every post-0 round.
func TestFedAvgStaleStepsOnEmptyRounds(t *testing.T) {
	env, _ := groupEnv(t, 3, 4, 36)
	env.EvalEvery = 1
	env.Participation.Scenario = onceScenario{}
	res := FedAvgStale{}.Run(env)
	if len(res.History) != env.Rounds {
		t.Fatalf("recorded %d evals, want %d", len(res.History), env.Rounds)
	}
	moved := false
	for i := 2; i < len(res.History); i++ {
		if res.History[i].MeanLoss != res.History[i-1].MeanLoss {
			moved = true
		}
	}
	if !moved {
		t.Fatal("global frozen across report-free rounds: cached updates not applied")
	}
	// Uplink reflects the single reporting round.
	nParams := env.NewModel().NumParams()
	if want := int64(len(env.Clients)) * (fl.CommPricing{}).UploadBytesFor(nParams); res.Comm.UpBytes != want {
		t.Fatalf("uplink %d, want one full reporting round %d", res.Comm.UpBytes, want)
	}
}

// TestFedBuffHonorsDropRate: Participation crash losses must affect the
// buffered aggregation — a crashed client's update never reaches the
// server, so runs at different drop rates must produce different models
// (a regression guard: an earlier draft folded every invited client's
// delta regardless of the reported set).
func TestFedBuffHonorsDropRate(t *testing.T) {
	run := func(drop float64) *fl.Result {
		env, _ := groupEnv(t, 3, 5, 37)
		env.Participation = fl.Participation{DropRate: drop}
		return FedBuff{}.Run(env)
	}
	clean := run(0)
	lossy := run(0.6)
	if clean.FinalAcc == lossy.FinalAcc && clean.FinalLoss == lossy.FinalLoss {
		t.Fatal("drop rate had no effect on FedBuff aggregation")
	}
	if lossy.Comm.UpBytes >= clean.Comm.UpBytes {
		t.Fatalf("lossy uplink %d not below clean %d", lossy.Comm.UpBytes, clean.Comm.UpBytes)
	}
	if lossy.FinalAcc < 0.4 {
		t.Fatalf("FedBuff under 60%% crash loss reached only %v", lossy.FinalAcc)
	}
}

package wire

// Tests for the float32-source encode fast path and the Quant8
// degenerate-range contract. EncodeFloat32Into's whole claim is
// bit-identity with the widen-then-EncodeInto route — these tests pin
// the bytes, not just the decoded values, including NaN payloads and
// ±Inf where a sloppy double conversion could quietly differ.

import (
	"bytes"
	"math"
	"testing"

	"fedclust/internal/rng"
)

func f32Vec(n int, seed uint64) []float32 {
	r := rng.New(seed)
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func widen(v []float32) []float64 {
	w := make([]float64, len(v))
	for i, x := range v {
		w[i] = float64(x)
	}
	return w
}

func TestEncodeFloat32IntoBitIdentical(t *testing.T) {
	vecs := [][]float32{
		nil,
		{0},
		f32Vec(257, 3),
		{
			float32(math.Inf(1)), float32(math.Inf(-1)),
			math.Float32frombits(0x7fc00001), // quiet NaN with payload
			math.Float32frombits(0x80000000), // negative zero
			math.MaxFloat32, -math.SmallestNonzeroFloat32,
		},
	}
	for _, v := range vecs {
		fast := EncodeFloat32Into(nil, v)
		slow := EncodeInto(nil, Float32, widen(v))
		if !bytes.Equal(fast, slow) {
			t.Errorf("EncodeFloat32Into diverged from widen+EncodeInto for %d values:\n got %x\nwant %x",
				len(v), fast, slow)
		}
		dec, err := Decode(fast)
		if err != nil {
			t.Fatalf("decode of fast-path frame: %v", err)
		}
		for i := range v {
			if math.Float32bits(float32(dec[i])) != math.Float32bits(v[i]) {
				t.Errorf("value %d: decoded bits %#x, want %#x", i,
					math.Float32bits(float32(dec[i])), math.Float32bits(v[i]))
			}
		}
	}
}

// TestEncodeFloat32IntoMidBuffer checks the append contract: the frame
// may land after other bytes and its checksum covers only its own.
func TestEncodeFloat32IntoMidBuffer(t *testing.T) {
	v := f32Vec(9, 5)
	prefix := []byte{0xde, 0xad, 0xbe, 0xef}
	buf := EncodeFloat32Into(append([]byte(nil), prefix...), v)
	if !bytes.Equal(buf[:len(prefix)], prefix) {
		t.Fatal("prefix bytes were overwritten")
	}
	if !bytes.Equal(buf[len(prefix):], EncodeFloat32Into(nil, v)) {
		t.Error("mid-buffer frame differs from a fresh encode")
	}
}

func TestEncodeFloat32IntoZeroAlloc(t *testing.T) {
	v := f32Vec(512, 7)
	dst := EncodeFloat32Into(nil, v)
	allocs := testing.AllocsPerRun(100, func() {
		dst = EncodeFloat32Into(dst[:0], v)
	})
	if allocs != 0 {
		t.Errorf("warm EncodeFloat32Into allocated %.1f times per call", allocs)
	}
}

// TestQuant8DegenerateRanges pins the clamping contract for inputs the
// linear quantizer cannot represent: constant vectors reconstruct
// exactly (min carries the value), and NaN/±Inf clamp deterministically
// into the finite range — same bytes every encode, always-finite
// decode — instead of feeding NaN through a float→byte conversion.
func TestQuant8DegenerateRanges(t *testing.T) {
	for _, c := range []float64{0, math.Copysign(0, -1), 1, -3.75, 1e-300, 1e300} {
		vec := []float64{c, c, c, c}
		dec, err := Decode(Encode(Quant8, vec))
		if err != nil {
			t.Fatalf("constant %g: %v", c, err)
		}
		for i, d := range dec {
			if d != c {
				t.Errorf("constant %g: value %d decoded to %g", c, i, d)
			}
		}
	}

	vec := []float64{1, math.NaN(), 4, math.Inf(1), 2, math.Inf(-1)}
	a, b := Encode(Quant8, vec), Encode(Quant8, vec)
	if !bytes.Equal(a, b) {
		t.Fatalf("Quant8 encode of non-finite input is not deterministic:\n %x\n %x", a, b)
	}
	dec, err := Decode(a)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, d := range dec {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("value %d decoded non-finite (%g) — the header must stay finite", i, d)
		}
	}
	// The finite range is [1, 4]: NaN and -Inf clamp to the bottom byte
	// (exactly lo), +Inf to the top, and finite values stay within half
	// a quantization step.
	if dec[1] != 1 || dec[5] != 1 {
		t.Errorf("NaN/-Inf decoded to %g/%g, want the range minimum 1", dec[1], dec[5])
	}
	if d := math.Abs(dec[3] - 4); d > 1e-12 {
		t.Errorf("+Inf decoded to %g, want the range maximum 4", dec[3])
	}
	step := (4.0 - 1.0) / 255
	for _, i := range []int{0, 2, 4} {
		if d := math.Abs(dec[i] - vec[i]); d > step/2+1e-12 {
			t.Errorf("finite value %g reconstructed as %g (err %g > step/2)", vec[i], dec[i], d)
		}
	}

	// No finite value at all: the range collapses to [0, 0] and the
	// result is still deterministic and finite.
	allBad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	a, b = Encode(Quant8, allBad), Encode(Quant8, allBad)
	if !bytes.Equal(a, b) {
		t.Fatalf("all-non-finite encode not deterministic:\n %x\n %x", a, b)
	}
	dec, err = Decode(a)
	if err != nil {
		t.Fatalf("all-non-finite decode: %v", err)
	}
	for i, d := range dec {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Errorf("all-non-finite value %d decoded non-finite (%g)", i, d)
		}
	}
}

// The float32-source encode pair: the uplink fast path holds float32
// shadow parameters, so the benchmark question is what skipping the
// widen-and-round trip is worth on a full-size parameter vector.
const benchEncodeN = 1594 // MLP(64,20,4) parameter count

func BenchmarkEncodeFloat32From64(b *testing.B) {
	vec := widen(f32Vec(benchEncodeN, 9))
	dst := EncodeInto(nil, Float32, vec)
	b.SetBytes(int64(len(dst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EncodeInto(dst[:0], Float32, vec)
	}
}

func BenchmarkEncodeFloat32From32(b *testing.B) {
	vec := f32Vec(benchEncodeN, 9)
	dst := EncodeFloat32Into(nil, vec)
	b.SetBytes(int64(len(dst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EncodeFloat32Into(dst[:0], vec)
	}
}

package wire

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"fedclust/internal/rng"
)

// sparseFixture builds a frame for the k largest-magnitude coordinates
// of vec, the way a compressing uplink would.
func sparseFixture(c Codec, vec []float64, k int) (frame []byte, idx []uint32, val []float64) {
	scores := make([]float64, len(vec))
	for i, v := range vec {
		scores[i] = math.Abs(v)
	}
	idx, _ = TopKSelect(nil, nil, scores, k)
	val = make([]float64, len(idx))
	for i, ix := range idx {
		val[i] = vec[ix]
	}
	return EncodeSparseInto(nil, c, len(vec), idx, val), idx, val
}

func TestSparseRoundTripTopK(t *testing.T) {
	vec := randVec(rng.New(41), 257)
	frame, idx, val := sparseFixture(TopK, vec, 16)
	if want := EncodedSizeSparse(TopK, len(vec), len(idx)); len(frame) != want {
		t.Fatalf("frame is %d bytes, EncodedSizeSparse says %d", len(frame), want)
	}
	dec, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(vec) {
		t.Fatalf("decoded %d coordinates, want %d", len(dec), len(vec))
	}
	kept := make(map[uint32]float64, len(idx))
	for i, ix := range idx {
		kept[ix] = val[i]
	}
	for i, v := range dec {
		if want, ok := kept[uint32(i)]; ok {
			if v != want {
				t.Errorf("kept coordinate %d decoded %v, want exact %v", i, v, want)
			}
		} else if v != 0 {
			t.Errorf("dropped coordinate %d decoded %v, want 0", i, v)
		}
	}
}

func TestSparseRoundTripTopKQuant8(t *testing.T) {
	vec := randVec(rng.New(42), 300)
	frame, idx, val := sparseFixture(TopKQuant8, vec, 24)
	if want := EncodedSizeSparse(TopKQuant8, len(vec), len(idx)); len(frame) != want {
		t.Fatalf("frame is %d bytes, EncodedSizeSparse says %d", len(frame), want)
	}
	dec, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Kept values ride the same 8-bit range quantizer as Quant8: error
	// bounded by half a step of the kept values' range.
	lo, hi := val[0], val[0]
	for _, v := range val {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	bound := (hi - lo) / 255
	for i, ix := range idx {
		if d := math.Abs(dec[ix] - val[i]); d > bound {
			t.Errorf("kept coordinate %d error %v exceeds quantizer bound %v", ix, d, bound)
		}
	}
}

func TestApplySparseOverlaysReference(t *testing.T) {
	vec := randVec(rng.New(43), 120)
	start := randVec(rng.New(44), 120)
	frame, idx, val := sparseFixture(TopK, vec, 10)
	got := append([]float64(nil), start...)
	if err := ApplySparseInto(got, frame); err != nil {
		t.Fatal(err)
	}
	kept := make(map[uint32]float64, len(idx))
	for i, ix := range idx {
		kept[ix] = val[i]
	}
	for i := range got {
		want, ok := kept[uint32(i)]
		if !ok {
			want = start[i] // unsent coordinates keep the reference
		}
		if got[i] != want {
			t.Errorf("coordinate %d: got %v, want %v (kept=%v)", i, got[i], want, ok)
		}
	}
	// Length mismatch is an error and must leave dst untouched.
	short := append([]float64(nil), start[:119]...)
	before := append([]float64(nil), short...)
	if err := ApplySparseInto(short, frame); err == nil {
		t.Fatal("ApplySparseInto accepted a reference of the wrong length")
	}
	for i := range short {
		if short[i] != before[i] {
			t.Fatalf("errored ApplySparseInto modified dst at %d", i)
		}
	}
}

// TestSparseFracOneCarriesEverything: frac 1.0 keeps all n coordinates,
// and TopK carries raw float64 bits — the frame reconstructs the vector
// bit-exactly, the degenerate case the engine's golden equivalence test
// leans on.
func TestSparseFracOneCarriesEverything(t *testing.T) {
	vec := randVec(rng.New(45), 97)
	k := TopKCount(len(vec), 1.0)
	if k != len(vec) {
		t.Fatalf("TopKCount(n, 1.0) = %d, want n = %d", k, len(vec))
	}
	frame, _, _ := sparseFixture(TopK, vec, k)
	dec, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vec {
		if dec[i] != vec[i] {
			t.Fatalf("coordinate %d not bit-exact under frac 1.0: %v vs %v", i, dec[i], vec[i])
		}
	}
}

func TestTopKCount(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{0, 0.5, 0},    // empty vector: nothing to keep
		{100, 0.01, 1}, // round(1) = 1
		{1000, 0.01, 10},
		{100, 0.005, 1}, // rounds to 0, clamped up
		{10, 0.26, 3},   // round(2.6) = 3
		{10, 5, 10},     // clamped to n
		{10, 1, 10},
	}
	for _, c := range cases {
		if got := TopKCount(c.n, c.frac); got != c.want {
			t.Errorf("TopKCount(%d, %g) = %d, want %d", c.n, c.frac, got, c.want)
		}
	}
}

// TestTopKSelectDeterministicTies: surplus threshold-valued coordinates
// are taken lowest-index-first, so the selection is a pure function of
// the scores — never of quickselect's partition order.
func TestTopKSelectDeterministicTies(t *testing.T) {
	scores := []float64{3, 1, 3, 3, 2, 3, 0, 3} // five 3s, keep 3 of them
	idx, _ := TopKSelect(nil, nil, scores, 3)
	want := []uint32{0, 2, 3}
	if len(idx) != len(want) {
		t.Fatalf("kept %d indices, want %d", len(idx), len(want))
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("tie-break selected %v, want %v", idx, want)
		}
	}
}

// TestTopKSelectNaNRanksHighest: a NaN score must be selected ahead of
// everything finite — a poisoned coordinate has to reach the server's
// masking layer, not hide in the residual.
func TestTopKSelectNaNRanksHighest(t *testing.T) {
	scores := []float64{1, math.NaN(), 5, 2}
	idx, _ := TopKSelect(nil, nil, scores, 2)
	has := func(w uint32) bool {
		for _, ix := range idx {
			if ix == w {
				return true
			}
		}
		return false
	}
	if !has(1) || !has(2) {
		t.Fatalf("TopKSelect kept %v, want the NaN (1) and the 5 (2)", idx)
	}
}

func TestTopKSelectAscendingOrder(t *testing.T) {
	r := rng.New(46)
	scores := randVec(r, 500)
	for _, k := range []int{1, 5, 250, 499, 500} {
		idx, _ := TopKSelect(nil, nil, scores, k)
		if len(idx) != k {
			t.Fatalf("k=%d: kept %d", k, len(idx))
		}
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				t.Fatalf("k=%d: indices not strictly ascending at %d: %d then %d", k, i, idx[i-1], idx[i])
			}
		}
	}
}

// TestSparseDecodeRejectsHostileFrames: every malformed sparse frame is
// an error, never a panic or a bad read — remote peers have proven
// nothing.
func TestSparseDecodeRejectsHostileFrames(t *testing.T) {
	vec := randVec(rng.New(47), 64)
	frame, _, _ := sparseFixture(TopK, vec, 8)
	reseal := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		return b
	}
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), frame...))
	}
	cases := map[string][]byte{
		"truncated header":   frame[:7],
		"truncated payload":  frame[:len(frame)-20],
		"truncated checksum": frame[:len(frame)-1],
		"flipped bit": mutate(func(b []byte) []byte {
			b[headerLen+10] ^= 0x40
			return b
		}),
		"k exceeds n": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 65)
			return reseal(b)
		}),
		"index out of range": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerLen+4+4*7:], 64)
			return reseal(b)
		}),
		"duplicate index": mutate(func(b []byte) []byte {
			copy(b[headerLen+4+4:], b[headerLen+4:headerLen+4+4])
			return reseal(b)
		}),
		"descending indices": mutate(func(b []byte) []byte {
			first := append([]byte(nil), b[headerLen+4:headerLen+4+4]...)
			copy(b[headerLen+4:], b[headerLen+4+4:headerLen+4+8])
			copy(b[headerLen+4+4:], first)
			return reseal(b)
		}),
		"allocation bomb": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 1<<30)
			return reseal(b)
		}),
	}
	for name, bad := range cases {
		if _, err := Decode(bad); err == nil {
			t.Errorf("%s: Decode accepted the frame", name)
		}
		ref := make([]float64, 64)
		if err := ApplySparseInto(ref, bad); err == nil {
			t.Errorf("%s: ApplySparseInto accepted the frame", name)
		}
	}
	// The original still decodes — the mutations, not the fixture, are
	// what the rejections prove.
	if _, err := Decode(frame); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

func TestMaxErrorRefusesSparse(t *testing.T) {
	for _, c := range []Codec{TopK, TopKQuant8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MaxError(%s) did not panic", c)
				}
			}()
			MaxError(c, []float64{1, 2, 3})
		}()
	}
}

func TestMaxErrorKept(t *testing.T) {
	vec := randVec(rng.New(48), 200)
	if e := MaxErrorKept(TopK, vec, 20); e != 0 {
		t.Errorf("TopK kept-value error %v, want 0 (raw float64 bits)", e)
	}
	lo, hi := vec[0], vec[0]
	for _, v := range vec {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	// All 200 coordinates kept: the quantizer bound is over the full range.
	if e, bound := MaxErrorKept(TopKQuant8, vec, 200), (hi-lo)/255; e > bound {
		t.Errorf("TopKQuant8 kept-value error %v exceeds range-quantizer bound %v", e, bound)
	}
	// Dense codecs defer to MaxError.
	if e := MaxErrorKept(Float64, vec, 20); e != 0 {
		t.Errorf("MaxErrorKept(Float64) = %v, want MaxError's 0", e)
	}
}

// TestSparseEncodeDecodeZeroAllocWarm: the warm uplink path — encode a
// sparse frame into a grown buffer, overlay it onto a resident vector —
// is allocation-free, same contract as the dense codecs.
func TestSparseApplyZeroAllocWarm(t *testing.T) {
	vec := randVec(rng.New(49), 2048)
	ref := randVec(rng.New(50), 2048)
	scores := make([]float64, len(vec))
	for i, v := range vec {
		scores[i] = math.Abs(v)
	}
	k := TopKCount(len(vec), 0.01)
	var idx []uint32
	var sel []float64
	val := make([]float64, 0, k)
	var buf []byte
	for _, c := range []Codec{TopK, TopKQuant8} {
		if allocs := testing.AllocsPerRun(20, func() {
			idx, sel = TopKSelect(idx, sel, scores, k)
			val = val[:0]
			for _, ix := range idx {
				val = append(val, vec[ix])
			}
			buf = EncodeSparseInto(buf[:0], c, len(vec), idx, val)
			if err := ApplySparseInto(ref, buf); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: warm select+encode+apply allocated %.1f times", c, allocs)
		}
	}
}

func BenchmarkEncodeSparseTopK(b *testing.B) {
	benchmarkEncodeSparse(b, TopK)
}

func BenchmarkEncodeSparseTopKQuant8(b *testing.B) {
	benchmarkEncodeSparse(b, TopKQuant8)
}

func benchmarkEncodeSparse(b *testing.B, c Codec) {
	vec := randVec(rng.New(51), 1<<16)
	scores := make([]float64, len(vec))
	for i, v := range vec {
		scores[i] = math.Abs(v)
	}
	k := TopKCount(len(vec), 0.01)
	var idx []uint32
	var sel []float64
	val := make([]float64, 0, k)
	var buf []byte
	// Warm the reused scratch: steady-state encoding is allocation-free.
	idx, sel = TopKSelect(idx, sel, scores, k)
	buf = EncodeSparseInto(buf[:0], c, len(vec), idx, val[:k])
	b.ReportAllocs()
	b.SetBytes(int64(EncodedSizeSparse(c, len(vec), k)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, sel = TopKSelect(idx, sel, scores, k)
		val = val[:0]
		for _, ix := range idx {
			val = append(val, vec[ix])
		}
		buf = EncodeSparseInto(buf[:0], c, len(vec), idx, val)
	}
}

func BenchmarkApplySparse(b *testing.B) {
	vec := randVec(rng.New(52), 1<<16)
	ref := randVec(rng.New(53), 1<<16)
	frame, _, _ := sparseFixture(TopK, vec, TopKCount(len(vec), 0.01))
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ApplySparseInto(ref, frame); err != nil {
			b.Fatal(err)
		}
	}
}

// Sparse parameter frames: top-k sparsification. A sparse frame carries
// only the k largest-change coordinates of an n-vector as (index, value)
// pairs — the uplink compression that makes federated communication
// budgets real. Layout:
//
//	magic (2B) | codec (1B) | reserved (1B) | count n (4B LE) |
//	kept k (4B LE) | [TopKQuant8: min f64 | scale f64] |
//	indices (4B LE × k, strictly ascending, < n) |
//	values (8B f64 × k, or 1B × k under TopKQuant8) |
//	crc32 of everything before it (4B)
//
// A sparse frame is an *overlay*, not a vector: the receiver holds the
// coordinates that were not sent (the start vector it broadcast) and
// ApplySparseInto patches the kept values over it. DecodeInto, for
// uniformity with the dense codecs, materializes the overlay against a
// zero vector. Dropped-coordinate error is the sender's problem — the
// error-feedback accumulator in internal/fl carries it into the next
// round — which is why MaxError refuses sparse codecs (see MaxErrorKept).
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// maxSparseDecode bounds the dense vector DecodeInto will materialize
// from a sparse frame's count field. Unlike dense frames, a sparse
// frame's n is decoupled from its byte length (k is what's on the wire),
// so a hostile 50-byte frame could otherwise claim n in the billions and
// drive an allocation bomb. The cap matches the largest model a dense
// transport frame can carry (MaxFrame/8 float64s). ApplySparseInto never
// allocates and is not subject to it.
const maxSparseDecode = 1 << 24

// Sparse reports whether the codec produces sparse (index, value)
// frames rather than dense payloads.
func (c Codec) Sparse() bool { return c == TopK || c == TopKQuant8 }

// Downlink returns the codec used for server→client broadcast under an
// uplink codec c. Sparsification is an uplink technique — the server
// model moves everywhere each round, so a sparse downlink would discard
// it — so the sparse codecs broadcast dense Float64; dense codecs are
// symmetric.
func (c Codec) Downlink() Codec {
	if c.Sparse() {
		return Float64
	}
	return c
}

// ParseCodec maps a codec name (as printed by Codec.String) back to the
// codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "float64":
		return Float64, nil
	case "float32":
		return Float32, nil
	case "quant8":
		return Quant8, nil
	case "topk":
		return TopK, nil
	case "topk-quant8":
		return TopKQuant8, nil
	default:
		return 0, fmt.Errorf("wire: unknown codec %q (float64, float32, quant8, topk, topk-quant8)", s)
	}
}

// TopKCount returns the kept-coordinate count for an n-vector under
// fraction frac: round(frac·n) clamped to [1, n]. Zero only for an
// empty vector.
func TopKCount(n int, frac float64) int {
	if n <= 0 {
		return 0
	}
	k := int(math.Round(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// EncodedSizeSparse returns the total frame size for an n-vector with k
// kept coordinates under codec c. Dense codecs ignore k and defer to
// EncodedSize, so transports can price any uplink through one formula.
func EncodedSizeSparse(c Codec, n, k int) int {
	switch c {
	case TopK:
		return headerLen + 4 + 12*k + 4
	case TopKQuant8:
		return headerLen + 4 + 16 + 5*k + 4
	default:
		return EncodedSize(c, n)
	}
}

// EncodeSparseInto appends a sparse frame carrying the (idx, val) pairs
// of an n-vector to dst and returns the extended slice. idx must be
// strictly ascending with every entry < n (TopKSelect produces exactly
// this); violations panic — producers are in-process and trusted, unlike
// decoders. Under TopKQuant8 the kept values ride the same 8-bit range
// quantizer as Quant8.
func EncodeSparseInto(dst []byte, c Codec, n int, idx []uint32, val []float64) []byte {
	if !c.Sparse() {
		panic(fmt.Sprintf("wire: EncodeSparseInto with dense codec %s", c))
	}
	k := len(idx)
	if k != len(val) {
		panic(fmt.Sprintf("wire: %d indices but %d values", k, len(val)))
	}
	if k > n {
		panic(fmt.Sprintf("wire: %d kept coordinates in an %d-vector", k, n))
	}
	start := len(dst)
	out := append(dst, byte(magic>>8), byte(magic&0xff), byte(c), 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint32(out, uint32(k))
	var lo, scale float64
	if c == TopKQuant8 {
		var hi float64
		lo, hi = rangeOf(val)
		scale = (hi - lo) / 255
		if scale == 0 {
			scale = 1
		}
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(lo))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(scale))
	}
	prev := -1
	for _, ix := range idx {
		i := int(ix)
		if i <= prev || i >= n {
			panic(fmt.Sprintf("wire: sparse index %d out of order or outside [0,%d)", i, n))
		}
		prev = i
		out = binary.LittleEndian.AppendUint32(out, ix)
	}
	switch c {
	case TopK:
		for _, v := range val {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	case TopKQuant8:
		for _, v := range val {
			q := math.Round((v - lo) / scale)
			if !(q > 0) {
				q = 0
			}
			if q > 255 {
				q = 255
			}
			out = append(out, byte(q))
		}
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out[start:]))
	return out
}

// sparseFrame is a validated view into a sparse frame's sections.
type sparseFrame struct {
	c         Codec
	n, k      int
	lo, scale float64
	idx       []byte // 4k bytes
	val       []byte // 8k or k bytes
}

// parseSparse validates a sparse frame end to end — length, magic,
// checksum, codec, counts, and the strictly-ascending in-range index
// contract — without allocating. Every failure is an error, never a
// panic: sparse frames arrive off the wire from peers that have proven
// nothing.
func parseSparse(frame []byte) (sparseFrame, error) {
	var sf sparseFrame
	if len(frame) < headerLen+4+4 {
		return sf, fmt.Errorf("wire: sparse frame too short (%d bytes)", len(frame))
	}
	if frame[0] != byte(magic>>8) || frame[1] != byte(magic&0xff) {
		return sf, fmt.Errorf("wire: bad magic %#x%02x", frame[0], frame[1])
	}
	body, sum := frame[:len(frame)-4], binary.LittleEndian.Uint32(frame[len(frame)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return sf, fmt.Errorf("wire: checksum mismatch")
	}
	sf.c = Codec(frame[2])
	if !sf.c.Sparse() {
		return sf, fmt.Errorf("wire: codec %s is not sparse", sf.c)
	}
	sf.n = int(binary.LittleEndian.Uint32(frame[4:8]))
	sf.k = int(binary.LittleEndian.Uint32(frame[8:12]))
	if sf.k > sf.n {
		return sf, fmt.Errorf("wire: %d kept coordinates in an %d-vector", sf.k, sf.n)
	}
	if want := EncodedSizeSparse(sf.c, sf.n, sf.k); want != len(frame) {
		return sf, fmt.Errorf("wire: frame length %d, want %d for %s %d/%d", len(frame), want, sf.c, sf.k, sf.n)
	}
	off := headerLen + 4
	if sf.c == TopKQuant8 {
		sf.lo = math.Float64frombits(binary.LittleEndian.Uint64(frame[off:]))
		sf.scale = math.Float64frombits(binary.LittleEndian.Uint64(frame[off+8:]))
		off += 16
	}
	sf.idx = frame[off : off+4*sf.k]
	sf.val = frame[off+4*sf.k : len(frame)-4]
	prev := -1
	for i := 0; i < sf.k; i++ {
		ix := int(binary.LittleEndian.Uint32(sf.idx[4*i:]))
		if ix <= prev {
			return sf, fmt.Errorf("wire: sparse index %d at position %d not strictly ascending", ix, i)
		}
		if ix >= sf.n {
			return sf, fmt.Errorf("wire: sparse index %d outside [0,%d)", ix, sf.n)
		}
		prev = ix
	}
	return sf, nil
}

// value returns the i-th kept value of a parsed frame.
func (sf *sparseFrame) value(i int) float64 {
	if sf.c == TopK {
		return math.Float64frombits(binary.LittleEndian.Uint64(sf.val[8*i:]))
	}
	return sf.lo + sf.scale*float64(sf.val[i])
}

// ApplySparseInto overlays a sparse frame's kept values onto dst, which
// must hold the receiver's reference vector (the broadcast start) at
// full length — the frame's count must equal len(dst). Coordinates the
// frame does not carry keep their dst values. It validates the frame
// completely and never allocates; on error dst is unmodified.
func ApplySparseInto(dst []float64, frame []byte) error {
	sf, err := parseSparse(frame)
	if err != nil {
		return err
	}
	if sf.n != len(dst) {
		return fmt.Errorf("wire: sparse frame over %d coordinates, reference holds %d", sf.n, len(dst))
	}
	for i := 0; i < sf.k; i++ {
		dst[binary.LittleEndian.Uint32(sf.idx[4*i:])] = sf.value(i)
	}
	return nil
}

// decodeSparseInto materializes a sparse frame against a zero reference
// (DecodeInto's uniform contract). The count cap keeps a hostile frame
// from claiming a multi-gigabyte vector its bytes never carry.
func decodeSparseInto(dst []float64, frame []byte) ([]float64, error) {
	sf, err := parseSparse(frame)
	if err != nil {
		return nil, err
	}
	if sf.n > maxSparseDecode {
		return nil, fmt.Errorf("wire: sparse frame claims %d coordinates, decode cap %d", sf.n, maxSparseDecode)
	}
	if cap(dst) < sf.n {
		dst = make([]float64, sf.n)
	}
	out := dst[:sf.n]
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < sf.k; i++ {
		out[binary.LittleEndian.Uint32(sf.idx[4*i:])] = sf.value(i)
	}
	return out, nil
}

// TopKSelect writes the indices of the k largest scores into idx, in
// ascending index order, and returns the (possibly grown) slices for
// reuse. Selection is deterministic under ties: the threshold is the
// k-th largest value and surplus threshold-valued coordinates are taken
// lowest-index-first — independent of the internal partition order. NaN
// scores rank as +Inf (a non-finite coordinate is exactly what the
// server must see, so the masking layer can catch it). scratch backs the
// destructive selection; scores is never modified. Zero allocations once
// both slices have capacity.
func TopKSelect(idx []uint32, scratch, scores []float64, k int) ([]uint32, []float64) {
	n := len(scores)
	if k > n {
		k = n
	}
	idx = idx[:0]
	if k <= 0 {
		return idx, scratch
	}
	if cap(idx) < k {
		idx = make([]uint32, 0, k)
	}
	if k == n {
		for i := 0; i < n; i++ {
			idx = append(idx, uint32(i))
		}
		return idx, scratch
	}
	scratch = scratch[:0]
	for _, s := range scores {
		if math.IsNaN(s) {
			s = math.Inf(1)
		}
		scratch = append(scratch, s)
	}
	thr := selectKthLargest(scratch, k)
	greater := 0
	for _, s := range scores {
		if math.IsNaN(s) {
			s = math.Inf(1)
		}
		if s > thr {
			greater++
		}
	}
	atThr := k - greater
	for i, s := range scores {
		if math.IsNaN(s) {
			s = math.Inf(1)
		}
		if s > thr {
			idx = append(idx, uint32(i))
		} else if s == thr && atThr > 0 {
			idx = append(idx, uint32(i))
			atThr--
		}
	}
	return idx, scratch
}

// selectKthLargest returns the k-th largest element of a (1-based k,
// 1 ≤ k ≤ len(a)), partially reordering a in place. Median-of-three
// Hoare quickselect; the returned *value* is order-independent, which is
// what makes TopKSelect deterministic regardless of partition behavior.
func selectKthLargest(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	target := k - 1 // selecting in descending order
	for lo < hi {
		// Median-of-three pivot to a[lo].
		mid := lo + (hi-lo)/2
		if a[mid] > a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] > a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] > a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		a[lo], a[mid] = a[mid], a[lo]
		pivot := a[lo]
		i, j := lo, hi+1
		for {
			for {
				i++
				if i > hi || a[i] <= pivot {
					break
				}
			}
			for {
				j--
				if a[j] >= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
		}
		a[lo], a[j] = a[j], a[lo]
		switch {
		case j == target:
			return a[j]
		case j < target:
			lo = j + 1
		default:
			hi = j - 1
		}
	}
	return a[lo]
}

// MaxErrorKept returns the worst-case reconstruction error of codec c
// over the coordinates a top-k frame actually carries: the k largest
// magnitudes of vec are encoded and decoded, and the maximum kept-value
// error is reported (0 for TopK — float64 values ride exactly; the 8-bit
// range-quantizer bound for TopKQuant8). Dropped coordinates are outside
// the codec's contract entirely — their error equals the coordinate's
// magnitude and is carried by the error-feedback accumulator, which is
// why MaxError refuses sparse codecs instead of reporting a vacuous
// bound. Dense codecs defer to MaxError.
func MaxErrorKept(c Codec, vec []float64, k int) float64 {
	if !c.Sparse() {
		return MaxError(c, vec)
	}
	scores := make([]float64, len(vec))
	for i, v := range vec {
		scores[i] = math.Abs(v)
	}
	idx, _ := TopKSelect(nil, nil, scores, k)
	val := make([]float64, len(idx))
	for i, ix := range idx {
		val[i] = vec[ix]
	}
	frame := EncodeSparseInto(nil, c, len(vec), idx, val)
	sf, err := parseSparse(frame)
	if err != nil {
		panic(err) // encode→parse of a valid vector cannot fail
	}
	var m float64
	for i := range val {
		if d := math.Abs(val[i] - sf.value(i)); d > m {
			m = d
		}
	}
	return m
}

package wire

// Fuzz coverage for the frame decoder: a server must survive arbitrary
// client uploads, so Decode must never panic — it returns an error for
// every malformed frame. The seed corpus (testdata/fuzz/FuzzDecode)
// checks in the interesting shapes: valid frames under every codec,
// truncations at each boundary, and corrupt length prefixes (zero,
// oversized, and overflow-adjacent counts) so even the plain `go test`
// run exercises them.

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode asserts Decode is total: any byte string either decodes to
// exactly the count its header promises or fails with an error. A valid
// Float64 frame must also re-encode to identical bytes (its decoded
// values round-trip bit-exactly; the narrowing codecs are excluded — a
// checksum-valid crafted frame can hold float32 NaN payloads that the
// f32→f64→f32 trip quiets, or a Quant8 (min, scale) header that differs
// from the decoded values' own range).
func FuzzDecode(f *testing.F) {
	for _, c := range []Codec{Float64, Float32, Quant8} {
		f.Add(Encode(c, nil))
		f.Add(Encode(c, []float64{1.5, -2.25, 3e8, 0}))
	}
	valid := Encode(Float64, []float64{7, -7})
	f.Add(valid[:0])            // empty input
	f.Add(valid[:headerLen-1])  // truncated inside the fixed header
	f.Add(valid[:headerLen+3])  // truncated inside the payload
	f.Add(valid[:len(valid)-1]) // truncated checksum
	oversized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(oversized[4:8], 1<<31-1) // count ≫ payload
	f.Add(oversized)
	undersized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(undersized[4:8], 0) // count < payload
	f.Add(undersized)
	badCodec := append([]byte(nil), valid...)
	badCodec[2] = 0x7f
	f.Add(badCodec)
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 0
	f.Add(badMagic)

	f.Fuzz(func(t *testing.T, frame []byte) {
		vec, err := Decode(frame) // must not panic, whatever the input
		if err != nil {
			return
		}
		if want := int(binary.LittleEndian.Uint32(frame[4:8])); len(vec) != want {
			t.Fatalf("decoded %d values, header promised %d", len(vec), want)
		}
		if c := Codec(frame[2]); c == Float64 {
			if got := Encode(c, vec); string(got) != string(frame) {
				t.Fatalf("re-encode of a valid frame diverged:\n got %x\nwant %x", got, frame)
			}
		}
	})
}

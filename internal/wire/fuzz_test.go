package wire

// Fuzz coverage for the frame decoder: a server must survive arbitrary
// client uploads, so Decode must never panic — it returns an error for
// every malformed frame. The seed corpus (testdata/fuzz/FuzzDecode)
// checks in the interesting shapes: valid frames under every codec,
// truncations at each boundary, and corrupt length prefixes (zero,
// oversized, and overflow-adjacent counts) so even the plain `go test`
// run exercises them.

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzDecode asserts Decode is total: any byte string either decodes to
// exactly the count its header promises or fails with an error. A valid
// Float64 frame must also re-encode to identical bytes (its decoded
// values round-trip bit-exactly; the narrowing codecs are excluded — a
// checksum-valid crafted frame can hold float32 NaN payloads that the
// f32→f64→f32 trip quiets, or a Quant8 (min, scale) header that differs
// from the decoded values' own range).
func FuzzDecode(f *testing.F) {
	for _, c := range []Codec{Float64, Float32, Quant8} {
		f.Add(Encode(c, nil))
		f.Add(Encode(c, []float64{1.5, -2.25, 3e8, 0}))
	}
	valid := Encode(Float64, []float64{7, -7})
	f.Add(valid[:0])            // empty input
	f.Add(valid[:headerLen-1])  // truncated inside the fixed header
	f.Add(valid[:headerLen+3])  // truncated inside the payload
	f.Add(valid[:len(valid)-1]) // truncated checksum
	oversized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(oversized[4:8], 1<<31-1) // count ≫ payload
	f.Add(oversized)
	undersized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(undersized[4:8], 0) // count < payload
	f.Add(undersized)
	badCodec := append([]byte(nil), valid...)
	badCodec[2] = 0x7f
	f.Add(badCodec)
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 0
	f.Add(badMagic)

	// Sparse frames: their count field is decoupled from the byte length
	// (k is what's on the wire), so they get their own seed shapes —
	// valid overlays, truncations, index-contract violations (duplicate,
	// descending, out-of-range), and an allocation-bomb count.
	sparseVec := []float64{0.5, -1.25, 2, -3, 0.75, 4.5}
	for _, c := range []Codec{TopK, TopKQuant8} {
		f.Add(EncodeSparseInto(nil, c, len(sparseVec), []uint32{1, 3, 5}, []float64{-1.25, -3, 4.5}))
	}
	sv := EncodeSparseInto(nil, TopK, len(sparseVec), []uint32{1, 3, 5}, []float64{-1.25, -3, 4.5})
	f.Add(sv[:headerLen+2]) // truncated inside the kept count
	f.Add(sv[:headerLen+9]) // truncated inside the index section
	f.Add(sv[:len(sv)-3])   // truncated inside the checksum
	reseal := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		return b
	}
	dupIdx := append([]byte(nil), sv...)
	copy(dupIdx[headerLen+4+4:], dupIdx[headerLen+4:headerLen+4+4]) // index 1 twice
	f.Add(reseal(dupIdx))
	descIdx := append([]byte(nil), sv...)
	copy(descIdx[headerLen+4:], []byte{5, 0, 0, 0}) // 5, 3, 5
	f.Add(reseal(descIdx))
	rangeIdx := append([]byte(nil), sv...)
	binary.LittleEndian.PutUint32(rangeIdx[headerLen+4+4*2:], uint32(len(sparseVec))) // == n
	f.Add(reseal(rangeIdx))
	bombCount := append([]byte(nil), sv...)
	binary.LittleEndian.PutUint32(bombCount[4:8], 1<<30) // n ≫ maxSparseDecode
	f.Add(reseal(bombCount))

	f.Fuzz(func(t *testing.T, frame []byte) {
		vec, err := Decode(frame) // must not panic, whatever the input
		if err != nil {
			return
		}
		if want := int(binary.LittleEndian.Uint32(frame[4:8])); len(vec) != want {
			t.Fatalf("decoded %d values, header promised %d", len(vec), want)
		}
		if c := Codec(frame[2]); c == Float64 {
			if got := Encode(c, vec); string(got) != string(frame) {
				t.Fatalf("re-encode of a valid frame diverged:\n got %x\nwant %x", got, frame)
			}
		}
	})
}

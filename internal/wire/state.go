package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// State frames carry vectors of raw 64-bit words — counters, indices,
// rng positions, flags — under the same framing discipline as parameter
// frames: magic, section kind, little-endian count, payload, trailing
// crc32. Checkpoints are built from them (plus Float64 parameter frames
// for model state), so every piece of persisted run state inherits the
// wire layer's corruption detection.
//
//	magic (2B) | kind (1B) | reserved (1B) | count (4B LE) |
//	count × u64 LE | crc32 of everything before it (4B)
const stateMagic = 0xFC5B // parameter frames use 0xFC5A

// stateHeaderLen is the fixed state-frame prefix length.
const stateHeaderLen = 2 + 1 + 1 + 4

// StateFrameSize returns the total frame size for n words.
func StateFrameSize(n int) int { return stateHeaderLen + 8*n + 4 }

// AppendStateFrame appends a state frame tagged kind carrying words to
// dst and returns the extended slice. Like EncodeInto, the frame may land
// mid-buffer: its checksum covers only the bytes this call appends.
func AppendStateFrame(dst []byte, kind uint8, words []uint64) []byte {
	start := len(dst)
	out := append(dst, byte(stateMagic>>8), byte(stateMagic&0xff), kind, 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(words)))
	for _, w := range words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out[start:]))
}

// StateFrameLen inspects a buffer that begins with a state frame and
// returns the full frame length, so back-to-back frames in one buffer
// (a checkpoint file) can be sliced apart before decoding. maxLen bounds
// the answer: a hostile count field yields an error, never a giant
// allocation downstream. The buffer may be longer than the frame.
func StateFrameLen(buf []byte, maxLen int) (int, error) {
	if len(buf) < stateHeaderLen {
		return 0, fmt.Errorf("wire: state frame header truncated (%d bytes)", len(buf))
	}
	if buf[0] != byte(stateMagic>>8) || buf[1] != byte(stateMagic&0xff) {
		return 0, fmt.Errorf("wire: bad state magic %#x%02x", buf[0], buf[1])
	}
	n := int64(binary.LittleEndian.Uint32(buf[4:8]))
	size := int64(stateHeaderLen) + 8*n + 4
	if size > int64(maxLen) {
		return 0, fmt.Errorf("wire: state frame of %d words exceeds limit %d", n, maxLen)
	}
	return int(size), nil
}

// DecodeStateFrame parses a complete state frame, returning its kind and
// words. It never panics: truncation, bad magic, length mismatches, and
// checksum failures are errors — checkpoint files arrive from disk with
// no more provenance than a network peer.
func DecodeStateFrame(frame []byte) (kind uint8, words []uint64, err error) {
	return DecodeStateFrameInto(nil, frame)
}

// DecodeStateFrameInto is DecodeStateFrame writing into dst (grown when
// too small); the returned slice aliases dst's backing array when it fits.
func DecodeStateFrameInto(dst []uint64, frame []byte) (kind uint8, words []uint64, err error) {
	if len(frame) < stateHeaderLen+4 {
		return 0, nil, fmt.Errorf("wire: state frame too short (%d bytes)", len(frame))
	}
	if frame[0] != byte(stateMagic>>8) || frame[1] != byte(stateMagic&0xff) {
		return 0, nil, fmt.Errorf("wire: bad state magic %#x%02x", frame[0], frame[1])
	}
	body, sum := frame[:len(frame)-4], binary.LittleEndian.Uint32(frame[len(frame)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, fmt.Errorf("wire: state frame checksum mismatch")
	}
	n := int(binary.LittleEndian.Uint32(frame[4:8]))
	if n < 0 || StateFrameSize(n) != len(frame) {
		return 0, nil, fmt.Errorf("wire: state frame length %d, want %d for %d words", len(frame), StateFrameSize(n), n)
	}
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	words = dst[:n]
	payload := frame[stateHeaderLen:]
	for i := 0; i < n; i++ {
		words[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return frame[2], words, nil
}

// FrameLen is StateFrameLen for parameter frames: the full length of the
// Encode-produced frame a buffer begins with, bounded by maxLen.
func FrameLen(buf []byte, maxLen int) (int, error) {
	c, err := FrameCodec(buf)
	if err != nil {
		return 0, err
	}
	n := int64(binary.LittleEndian.Uint32(buf[4:8]))
	var size int64
	switch c {
	case Float64:
		size = int64(headerLen) + 8*n + 4
	case Float32:
		size = int64(headerLen) + 4*n + 4
	case Quant8:
		size = int64(headerLen) + 16 + n + 4
	}
	if size > int64(maxLen) {
		return 0, fmt.Errorf("wire: frame of %d values exceeds limit %d", n, maxLen)
	}
	return int(size), nil
}

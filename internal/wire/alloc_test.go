//go:build !race

package wire

import (
	"testing"

	"fedclust/internal/rng"
)

// TestEncodeDecodeIntoZeroAlloc: the warm transport path — EncodeInto
// over a grown buffer, DecodeInto over a grown vector — must not touch
// the heap. This is the contract that lets the TCP transport ship one
// frame per client visit without per-message garbage.
func TestEncodeDecodeIntoZeroAlloc(t *testing.T) {
	v := randVec(rng.New(9), 4096)
	for _, c := range []Codec{Float64, Float32, Quant8} {
		buf := make([]byte, 0, EncodedSize(c, len(v)))
		dst := make([]float64, len(v))
		if allocs := testing.AllocsPerRun(20, func() {
			buf = EncodeInto(buf[:0], c, v)
			var err error
			dst, err = DecodeInto(dst, buf)
			if err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: warm EncodeInto+DecodeInto allocated %.1f times", c, allocs)
		}
	}
}
